package mlid_test

import (
	"strings"
	"testing"

	"mlid"
)

func TestFacadeMADAndBatch(t *testing.T) {
	tree, err := mlid.NewTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := mlid.ConfigureViaMAD(tree, mlid.MLID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mlid.SimulateBatch(mlid.BatchConfig{
		Subnet:   sn,
		Messages: mlid.GatherMessages(tree, 0, 1024),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanNs <= 0 || res.Packets != int64((tree.Nodes()-1)*4) {
		t.Fatalf("%+v", res)
	}
	a2a := mlid.AllToAllMessages(tree, 256)
	if len(a2a) != tree.Nodes()*(tree.Nodes()-1) {
		t.Fatalf("%d messages", len(a2a))
	}
}

func TestFacadeDeadlockAndRepair(t *testing.T) {
	tree, _ := mlid.NewTree(4, 2)
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mlid.CheckDeadlockFree(sn)
	if err != nil || !rep.Free() {
		t.Fatalf("deadlock: %v %+v", err, rep)
	}
	faults := mlid.NewFaultSet()
	leaf, _ := tree.NodeAttachment(0)
	faults.FailLink(tree, leaf, tree.DownPorts(leaf))
	remapped, _, err := mlid.RepairSubnet(sn, faults)
	if err != nil || remapped == 0 {
		t.Fatalf("repair: %v remapped %d", err, remapped)
	}
	p, err := mlid.TraceSubnet(sn, 0, sn.Endports[7].Base)
	if err != nil || p.Dst != 7 {
		t.Fatalf("TraceSubnet: %v %+v", err, p)
	}
}

func TestFacadeComparisonAndHistogram(t *testing.T) {
	tree, _ := mlid.NewTree(8, 2)
	ft := tree.FamilyStats()
	kary, err := mlid.KaryNTreeStats(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := mlid.FormatFamilyComparison(ft, kary)
	if !strings.Contains(out, "k-ary") {
		t.Errorf("comparison:\n%s", out)
	}
	h := mlid.NewHistogram(100, 16)
	h.Add(250)
	if h.Total() != 1 {
		t.Error("histogram")
	}
}

func TestFacadePatternsAndPolicies(t *testing.T) {
	p := mlid.MultiHotspotTraffic(16, []int{1, 2}, 0.5)
	if p.Name() == "" {
		t.Error("multi-hotspot name")
	}
	l := mlid.LocalTraffic(16, 4, 0.8)
	if l.Name() == "" {
		t.Error("local name")
	}
	if mlid.SelectRank().Name() == mlid.SelectRandom().Name() {
		t.Error("path policies collide")
	}
	if got := len(mlid.SelectorNames()); got != 5 {
		t.Errorf("SelectorNames: %d names, want 5", got)
	}
	if _, err := mlid.SelectorByName("adaptive"); err != nil {
		t.Errorf("SelectorByName(adaptive): %v", err)
	}
	if mlid.VLRoundRobin == mlid.VLByDLID {
		t.Error("VL policies collide")
	}
	if mlid.SwitchingVCT == mlid.SwitchingSAF {
		t.Error("switching modes collide")
	}
}

func TestFacadeObservationsAndReport(t *testing.T) {
	spec, err := mlid.EvalFigureByID("F5")
	if err != nil {
		t.Fatal(err)
	}
	spec.Network = mlid.EvalNetwork{M: 4, N: 2}
	spec.Loads = []float64{0.2, 0.6}
	spec.VLs = []int{1}
	spec.WarmupNs = 5_000
	spec.MeasureNs = 20_000
	fig, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	obs := mlid.CheckObservations([]mlid.EvalFigure{fig})
	if len(obs) != 5 {
		t.Fatalf("%d observations", len(obs))
	}
	rep, err := mlid.EvalReport([]mlid.EvalFigure{fig}, obs)
	if err != nil || !strings.Contains(rep, "Reproduction report") {
		t.Fatalf("report: %v", err)
	}
}

func TestFacadeSimKnobs(t *testing.T) {
	tree, _ := mlid.NewTree(4, 2)
	sn, err := mlid.Configure(tree, mlid.SLID())
	if err != nil {
		t.Fatal(err)
	}
	hist := mlid.NewHistogram(64, 20)
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:           sn,
		Pattern:          mlid.UniformTraffic(tree.Nodes()),
		OfferedLoad:      0.2,
		Reception:        mlid.ReceptionLink,
		PathSelect:       mlid.SelectRandom(),
		VLSelect:         mlid.VLByDLID,
		Switching:        mlid.SwitchingSAF,
		LatencyHist:      hist,
		CollectPortStats: true,
		TracePackets:     2,
		WarmupNs:         5_000,
		MeasureNs:        30_000,
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWindow == 0 || hist.Total() == 0 || len(res.PortStats) == 0 || len(res.Traces) != 2 {
		t.Fatalf("knobs not honored: %+v", res)
	}
}

func TestFacadeExportImport(t *testing.T) {
	tree, _ := mlid.NewTree(4, 2)
	sn, err := mlid.Configure(tree, mlid.SLID())
	if err != nil {
		t.Fatal(err)
	}
	data, err := mlid.ExportSubnet(sn)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mlid.ImportSubnet(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Engine.Name() != "SLID" || back.LIDSpace() != sn.LIDSpace() {
		t.Fatalf("imported %s space %d", back.Engine.Name(), back.LIDSpace())
	}
	if _, err := mlid.ImportSubnet([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestFacadeOptimizePaths(t *testing.T) {
	tree, _ := mlid.NewTree(8, 2)
	flows := []mlid.Flow{{Src: 0, Dst: 25, Weight: 5}, {Src: 4, Dst: 26, Weight: 5}}
	plan, err := mlid.OptimizePaths(tree, flows)
	if err != nil || plan.Planned() != 2 {
		t.Fatalf("OptimizePaths: %v", err)
	}
	sn, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mlid.SimulateBatch(mlid.BatchConfig{
		Subnet:   sn,
		Messages: []mlid.Message{{Src: 0, Dst: 25, Bytes: 1024}, {Src: 4, Dst: 26, Bytes: 1024}},
		DLIDFunc: func(src, dst mlid.NodeID) mlid.LID {
			return plan.DLID(tree, mlid.MLID(), src, dst)
		},
		Seed: 1,
	})
	if err != nil || res.Packets != 8 {
		t.Fatalf("batch over plan: %v %+v", err, res)
	}
}
