package mlid_test

import (
	"testing"

	"mlid"
)

// TestQuickstartFlow exercises the documented end-to-end usage of the public
// API: build a tree, configure the subnet, simulate, inspect results.
func TestQuickstartFlow(t *testing.T) {
	tree, err := mlid.NewTree(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 32 || tree.Switches() != 12 {
		t.Fatalf("FT(8,2): %d nodes, %d switches", tree.Nodes(), tree.Switches())
	}
	subnet, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:      subnet,
		Pattern:     mlid.UniformTraffic(tree.Nodes()),
		OfferedLoad: 0.2,
		WarmupNs:    10_000,
		MeasureNs:   50_000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < 0.18 || res.Accepted > 0.22 {
		t.Errorf("accepted = %v", res.Accepted)
	}
	if res.MeanLatencyNs <= 0 {
		t.Errorf("latency = %v", res.MeanLatencyNs)
	}
}

func TestFacadeSchemesAndPatterns(t *testing.T) {
	if mlid.MLID().Name() != "MLID" || mlid.SLID().Name() != "SLID" {
		t.Error("scheme names")
	}
	if len(mlid.Schemes()) != 2 {
		t.Error("Schemes()")
	}
	if _, err := mlid.SchemeByName("MLID"); err != nil {
		t.Error(err)
	}
	if _, err := mlid.SchemeByName("x"); err == nil {
		t.Error("bad scheme accepted")
	}
	for _, name := range []string{"uniform", "centric", "bitreversal"} {
		if _, err := mlid.PatternByName(name, 8, 0); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if p := mlid.CentricTraffic(16, 3, 0.5); p.Name() == "" {
		t.Error("centric name")
	}
}

func TestFacadeRoutingAndAnalysis(t *testing.T) {
	tree, _ := mlid.NewTree(4, 3)
	p, err := mlid.Trace(tree, mlid.MLID(), 0, 9)
	if err != nil || p.Dst != 9 {
		t.Fatalf("Trace: %v %+v", err, p)
	}
	paths, err := mlid.AllPaths(tree, mlid.MLID(), 0, 9)
	if err != nil || len(paths) == 0 {
		t.Fatalf("AllPaths: %v", err)
	}
	rep, err := mlid.LinkLoad(tree, mlid.SLID(), mlid.AllToOne(tree, 9))
	if err != nil || rep.Max <= 0 {
		t.Fatalf("LinkLoad: %v %+v", err, rep)
	}
	faults := mlid.NewFaultSet()
	lid, _, ok := mlid.SelectDLID(tree, mlid.MLID(), 0, 9, faults)
	if !ok || lid == 0 {
		t.Fatalf("SelectDLID: %v %v", lid, ok)
	}
}

func TestFacadeEvalHarness(t *testing.T) {
	if len(mlid.EvalFigures()) != 8 || len(mlid.EvalQuickFigures()) != 8 {
		t.Error("figure counts")
	}
	if len(mlid.EvalNetworks()) != 4 {
		t.Error("network count")
	}
	rows, err := mlid.EvalTable1(mlid.EvalNetworks())
	if err != nil || len(rows) != 4 {
		t.Fatalf("Table1: %v", err)
	}
	if _, err := mlid.EvalFigureByID("F8"); err != nil {
		t.Error(err)
	}
}

func TestFacadeReceptionConstants(t *testing.T) {
	if mlid.ReceptionIdeal == mlid.ReceptionLink {
		t.Error("reception constants collide")
	}
}
