package mlid_test

import (
	"fmt"
	"log"

	"mlid"
)

// ExampleNewTree shows the m-port n-tree counting formulas.
func ExampleNewTree() {
	tree, err := mlid.NewTree(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)
	fmt.Printf("height %d, %d links, bisection %d\n", tree.N()+1, tree.Links(), tree.BisectionLinks())
	// Output:
	// FT(4,3): 16 nodes, 20 switches
	// height 4, 48 links, bisection 8
}

// ExampleMLID reproduces the paper's Figure 10 LID assignment for P(010).
func ExampleMLID() {
	tree, _ := mlid.NewTree(4, 3)
	subnet, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		log.Fatal(err)
	}
	node, _ := tree.NodeFromDigits([]int{0, 1, 0})
	fmt.Printf("%s owns %s\n", tree.NodeLabel(node), subnet.Endports[node])
	// Output:
	// P(010) owns LIDs 9..12 (LMC 2)
}

// ExampleTrace resolves the Section 4.3 route from P(000) to P(100).
func ExampleTrace() {
	tree, _ := mlid.NewTree(4, 3)
	path, err := mlid.Trace(tree, mlid.MLID(), 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLID %d: %s\n", path.DLID, path.Render(tree))
	// Output:
	// DLID 17: P(000) -> SW<00,2>:2 -> SW<00,1>:2 -> SW<00,0>:1 -> SW<10,1>:0 -> SW<10,2>:0 -> P(100)
}

// ExampleAllPaths enumerates the four LMC-selectable routes between two
// maximally distant nodes of the 4-port 3-tree.
func ExampleAllPaths() {
	tree, _ := mlid.NewTree(4, 3)
	paths, err := mlid.AllPaths(tree, mlid.MLID(), 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d distinct routes through %d roots\n", len(paths), len(paths))
	// Output:
	// 4 distinct routes through 4 roots
}

// ExampleSimulate runs one operating point and checks it against the
// closed-form expectation: at 20% uniform load the fabric is far from
// saturation, so accepted tracks offered.
func ExampleSimulate() {
	tree, _ := mlid.NewTree(8, 2)
	subnet, err := mlid.Configure(tree, mlid.MLID())
	if err != nil {
		log.Fatal(err)
	}
	res, err := mlid.Simulate(mlid.SimConfig{
		Subnet:      subnet,
		Pattern:     mlid.UniformTraffic(tree.Nodes()),
		OfferedLoad: 0.2,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saturated: %v\n", res.Saturated)
	fmt.Printf("accepted within 2%% of offered: %v\n",
		res.Accepted > 0.98*res.OfferedLoad && res.Accepted < 1.02*res.OfferedLoad)
	// Output:
	// saturated: false
	// accepted within 2% of offered: true
}

// ExampleSelectDLID shows LMC multipath failover around a failed link.
func ExampleSelectDLID() {
	tree, _ := mlid.NewTree(4, 3)
	canonical, _ := mlid.Trace(tree, mlid.MLID(), 0, 4)

	faults := mlid.NewFaultSet()
	faults.FailLink(tree, canonical.Hops[0].Switch, canonical.Hops[0].OutPort)

	lid, _, ok := mlid.SelectDLID(tree, mlid.MLID(), 0, 4, faults)
	fmt.Printf("failover found: %v (DLID %d instead of %d)\n", ok, lid, canonical.DLID)
	// Output:
	// failover found: true (DLID 18 instead of 17)
}
