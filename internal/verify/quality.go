package verify

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// checkQuality computes the static routing-quality metrics for the default
// all-to-all matrix plus any supplied matrices: per-link maximal load (the
// congestion bound simulation throughput cannot beat), path dilation
// against the minimal up*/down* path, and the root-link balance spread.
// Only flows whose selected route actually reaches the destination carry
// load — a flow dying at a dead link contributes to Unrouted, not to
// congestion. Metrics are reported as Info findings and in Stats.Quality;
// quality never fails a fabric on its own.
func (f *fabric) checkQuality(rep *Report, opt Options) {
	n := f.t.Nodes()
	f.qualityMatrix(rep, "all-to-all", func(visit func(src, dst topology.NodeID, w float64)) {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					visit(topology.NodeID(s), topology.NodeID(d), 1)
				}
			}
		}
	})
	for _, m := range opt.Matrices {
		flows := m.Flows
		f.qualityMatrix(rep, m.Name, func(visit func(src, dst topology.NodeID, w float64)) {
			for _, fl := range flows {
				if fl.Src != fl.Dst {
					visit(fl.Src, fl.Dst, fl.Weight)
				}
			}
		})
	}
}

// qualityMatrix traces every flow of one matrix through the live tables and
// folds the loads and dilations into a QualityReport.
func (f *fabric) qualityMatrix(rep *Report, name string, each func(func(src, dst topology.NodeID, w float64))) {
	t := f.t
	numChan := t.Switches() * f.m
	load := make([]float64, numChan)
	scratch := make([]int32, 0, 2*t.N()+2)
	q := QualityReport{Matrix: name}
	var dilSum float64
	routed := 0

	each(func(src, dst topology.NodeID, w float64) {
		q.Flows++
		dlid, ok := f.selectDLID(src, dst)
		if !ok {
			q.Unrouted++
			return
		}
		path, reached := f.tracePath(src, dst, dlid, scratch)
		if !reached {
			q.Unrouted++
			return
		}
		routed++
		// The final hop is the destination's attachment link; it is loaded
		// identically by every scheme (all of dst's demand), so the
		// congestion metrics cover the inter-switch hops only.
		for _, c := range path[:len(path)-1] {
			load[c] += w
		}
		hops := len(path)
		min := f.minSwitches(src, dst)
		if min > 0 {
			d := float64(hops) / float64(min)
			dilSum += d
			if d > q.MaxDilation {
				q.MaxDilation = d
			}
		}
	})
	if routed > 0 {
		q.MeanDilation = dilSum / float64(routed)
	}

	// Inter-switch load summary; ascending channel-id scan keeps the float
	// fold and the max tie-break deterministic.
	usedLinks := 0
	var sum float64
	maxAt := -1
	for c := 0; c < numChan; c++ {
		v := load[c]
		if v == 0 {
			continue
		}
		usedLinks++
		sum += v
		if v > q.MaxLoad {
			q.MaxLoad = v
			maxAt = c
		}
	}
	if usedLinks > 0 {
		q.MeanLoad = sum / float64(usedLinks)
	}
	if maxAt >= 0 {
		q.MaxLink = f.linkLabel(topology.SwitchID(maxAt/f.m), maxAt%f.m)
	}

	// Root-link balance: the descending links out of root switches, dead
	// links excluded. The MLID root-per-LID assignment is designed to keep
	// this spread flat; SLID concentrates destinations on fixed roots.
	rootLinks := 0
	var rootSum float64
	first := true
	for sw := 0; sw < t.Switches(); sw++ {
		if !t.IsRoot(topology.SwitchID(sw)) {
			continue
		}
		for p := 0; p < f.m; p++ {
			if f.deadAt(topology.SwitchID(sw), p) {
				continue
			}
			v := load[sw*f.m+p]
			rootLinks++
			rootSum += v
			if v > q.RootLinkMax {
				q.RootLinkMax = v
			}
			if first || v < q.RootLinkMin {
				q.RootLinkMin = v
				first = false
			}
		}
	}
	if rootLinks > 0 {
		q.RootLinkMean = rootSum / float64(rootLinks)
	}

	rep.Stats.Quality = append(rep.Stats.Quality, q)
	rep.add(f.cap, Finding{
		Analyzer: "quality",
		Severity: Info,
		Location: t.String(),
		Message: fmt.Sprintf("%s: max inter-switch load %.1f at %s (mean %.1f), dilation mean %.3f, root links max/mean/min %.1f/%.1f/%.1f, %d/%d flows unrouted",
			name, q.MaxLoad, q.MaxLink, q.MeanLoad, q.MeanDilation,
			q.RootLinkMax, q.RootLinkMean, q.RootLinkMin, q.Unrouted, q.Flows),
		Witness: nil,
	})
}

// selectDLID resolves the DLID a source uses toward dst: the explicit
// override, the engine's path selection, or the destination's base LID.
func (f *fabric) selectDLID(src, dst topology.NodeID) (ib.LID, bool) {
	if f.in.SelectDLID != nil {
		return f.in.SelectDLID(src, dst)
	}
	if f.in.Engine != nil {
		return f.in.Engine.DLID(f.t, src, dst), true
	}
	return f.in.Endports[dst].Base, true
}

// tracePath walks the tables from src's leaf toward dlid and returns the
// out-channels crossed (reusing scratch) and whether the walk delivered to
// dst. Any defect — dead end, dead link, loop, misdelivery — is a failed
// trace here; reachability owns the findings.
func (f *fabric) tracePath(src, dst topology.NodeID, dlid ib.LID, scratch []int32) ([]int32, bool) {
	t := f.t
	if int(dlid) <= 0 || int(dlid) >= f.space {
		return scratch[:0], false
	}
	path := scratch[:0]
	sw, _ := t.NodeAttachment(src)
	maxSwitches := 2*t.N() + 2
	for hops := 0; hops < maxSwitches; hops++ {
		phys := f.in.LFTs[sw].Port(dlid)
		if phys == ib.PortNone || phys == 0 || int(phys) > f.m {
			return path, false
		}
		ab := int(phys) - 1
		if f.deadAt(sw, ab) {
			return path, false
		}
		path = append(path, int32(int(sw)*f.m+ab))
		ref := t.SwitchNeighbor(sw, ab)
		switch ref.Kind {
		case topology.KindNone:
			return path, false
		case topology.KindNode:
			return path, ref.Node == dst
		}
		sw = ref.Switch
	}
	return path, false
}

// minSwitches is the minimal number of switches an up*/down* path between
// the pair crosses: 1 on a shared leaf, else up to the least common
// ancestor level and back down — 2*(n-1-alpha)+1 for prefix length alpha.
func (f *fabric) minSwitches(src, dst topology.NodeID) int {
	alpha := f.t.GCPLen(src, dst)
	if alpha >= f.t.N()-1 {
		return 1
	}
	return 2*(f.t.N()-1-alpha) + 1
}
