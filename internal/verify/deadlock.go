package verify

import (
	"fmt"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// checkDeadlock builds the channel-dependency graph each virtual lane's
// traffic induces — an edge from channel A to channel B whenever some route
// can hold A while requesting B — and searches it for cycles (Dally &
// Seitz: acyclic proves deadlock freedom under credit-based flow control).
//
// It generalizes core.CheckDeadlockFree in two ways the fault path needs:
// routes through broken tables contribute the dependencies of the hops they
// actually traverse instead of failing the whole check (a packet heading
// into a dead link drops there instantly, holding nothing further, so the
// dead hop forms no edge), and the cycle witness is the shortest one in the
// graph, not the first one a DFS stumbles into.
func (f *fabric) checkDeadlock(rep *Report, opt Options) {
	if opt.VLOf == nil {
		// Every lane carries every route: one graph proves all lanes.
		f.deadlockGraph(rep, -1, opt)
		return
	}
	for vl := 0; vl < opt.VLs; vl++ {
		f.deadlockGraph(rep, vl, opt)
	}
}

// deadlockGraph accumulates and checks the dependency graph of one lane
// (vl < 0: the shared graph of all lanes).
func (f *fabric) deadlockGraph(rep *Report, vl int, opt Options) {
	t := f.t
	numChan := t.Switches() * f.m
	edges := make(map[int64]struct{})
	used := make([]bool, numChan)

	for sw := 0; sw < t.Switches(); sw++ {
		leaf := topology.SwitchID(sw)
		if !t.IsLeaf(leaf) {
			continue
		}
		for p := 0; p < t.Nodes(); p++ {
			r := f.in.Endports[p]
			for off := 0; off < r.Count(); off++ {
				lid := int(r.Base) + off
				if lid <= 0 || lid >= f.space || f.owner[lid] != int32(p) {
					continue
				}
				if vl >= 0 && opt.VLOf(ib.LID(lid), opt.VLs) != vl {
					continue
				}
				f.routeDeps(leaf, lid, edges, used)
			}
		}
	}

	channels := 0
	for _, u := range used {
		if u {
			channels++
		}
	}
	if channels > rep.Stats.Channels {
		rep.Stats.Channels = channels
	}
	if len(edges) > rep.Stats.Dependencies {
		rep.Stats.Dependencies = len(edges)
	}

	adj := buildAdjacency(edges, numChan)
	cycle := shortestCycle(adj, numChan)
	if cycle == nil {
		return
	}
	witness := make([]string, len(cycle))
	for i, c := range cycle {
		witness[i] = f.linkLabel(topology.SwitchID(c/f.m), c%f.m)
	}
	lane := "every VL (no VL transitions)"
	if vl >= 0 {
		lane = fmt.Sprintf("VL %d", vl)
	}
	rep.add(f.cap, Finding{
		Analyzer: "deadlock",
		Severity: Error,
		Location: witness[0],
		Message:  fmt.Sprintf("channel-dependency cycle of %d links on %s: credit deadlock possible", len(cycle), lane),
		Witness:  witness,
	})
}

// routeDeps walks one route and records its channel dependencies: each
// consecutive pair of live out-links forms an edge. The walk stops silently
// at any defect — reachability owns the findings.
func (f *fabric) routeDeps(leaf topology.SwitchID, lid int, edges map[int64]struct{}, used []bool) {
	t := f.t
	maxSwitches := 2*t.N() + 2
	sw := leaf
	prev := -1
	for hops := 0; hops < maxSwitches; hops++ {
		phys := f.in.LFTs[sw].Port(ib.LID(lid))
		if phys == ib.PortNone || phys == 0 || int(phys) > f.m {
			return
		}
		ab := int(phys) - 1
		if f.deadAt(sw, ab) {
			return // the packet drops at sw; the dead channel is never held
		}
		cur := int(sw)*f.m + ab
		used[cur] = true
		if prev >= 0 {
			edges[int64(prev)<<32|int64(cur)] = struct{}{}
		}
		ref := t.SwitchNeighbor(sw, ab)
		if ref.Kind != topology.KindSwitch {
			return
		}
		sw = ref.Switch
		prev = cur
	}
}

// buildAdjacency turns the edge set into sorted adjacency lists, so every
// later traversal is deterministic.
func buildAdjacency(edges map[int64]struct{}, numChan int) [][]int32 {
	keys := make([]int64, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	adj := make([][]int32, numChan)
	for _, k := range keys {
		a, b := int(k>>32), int32(k&0xffffffff)
		adj[a] = append(adj[a], b)
	}
	return adj
}

// shortestCycle returns the shortest directed cycle in the graph (nil if
// acyclic). A cheap DFS 3-coloring decides existence first; only when a
// cycle exists does the quadratic shortest-search run (per-node BFS back to
// itself), so the healthy-fabric path stays linear.
func shortestCycle(adj [][]int32, numChan int) []int {
	if !hasCycle(adj, numChan) {
		return nil
	}
	var best []int
	dist := make([]int32, numChan)
	parent := make([]int32, numChan)
	queue := make([]int32, 0, numChan)
	for start := 0; start < numChan; start++ {
		if len(adj[start]) == 0 {
			continue
		}
		if best != nil && len(best) == 2 {
			break // nothing shorter than a 2-cycle can follow (self-loops handled below)
		}
		// Self-loop: the shortest possible cycle.
		for _, nb := range adj[start] {
			if int(nb) == start {
				return []int{start}
			}
		}
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		queue = queue[:0]
		for _, nb := range adj[start] {
			if dist[nb] < 0 {
				dist[nb] = 1
				parent[nb] = int32(start)
				queue = append(queue, nb)
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if best != nil && int(dist[v]) >= len(best) {
				break
			}
			for _, nb := range adj[v] {
				if int(nb) == start {
					cyc := []int{start}
					for u := v; u != int32(start); u = parent[u] {
						cyc = append(cyc, int(u))
					}
					// Reverse into walk order: start -> ... -> v -> start.
					for i, j := 1, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					if best == nil || len(cyc) < len(best) {
						best = cyc
					}
					break
				}
				if dist[nb] < 0 {
					dist[nb] = dist[v] + 1
					parent[nb] = v
					queue = append(queue, nb)
				}
			}
		}
	}
	return best
}

// hasCycle is an iterative DFS 3-coloring over the whole graph.
func hasCycle(adj [][]int32, numChan int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, numChan)
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for start := 0; start < numChan; start++ {
		if color[start] != white || len(adj[start]) == 0 {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: int32(start)})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.next >= len(adj[fr.node]) {
				color[fr.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			nb := adj[fr.node][fr.next]
			fr.next++
			switch color[nb] {
			case gray:
				return true
			case white:
				color[nb] = gray
				stack = append(stack, frame{node: nb})
			}
		}
	}
	return false
}
