package verify

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Walk outcomes, per (leaf switch, assigned LID) route.
const (
	walkReached  = iota // delivered to the owning node
	walkDeadLink        // blocked by a recorded dead link (observable drop)
	walkDefect          // error-severity defect, finding already emitted
)

// checkReachability walks every (leaf switch, assigned LID) route through
// the live tables — every packet enters the fabric at a leaf, so these walks
// cover every forwardable (source, DLID) pair. Loops, dead ends,
// misdeliveries and fall-offs are errors with the walked path as witness;
// entries pointing at recorded dead links are warnings (the drop is the
// documented fate of an unrepaireable entry); a destination whose every LID
// is dead from some leaf gets one aggregated unreachability warning.
func (f *fabric) checkReachability(rep *Report) {
	t := f.t
	// Per-entry dedup: a broken entry at switch S for LID L is one finding,
	// not one per source leaf that reaches it.
	type entryKey struct {
		sw  int32
		lid int
	}
	seen := make(map[entryKey]bool)
	dedup := func(sw topology.SwitchID, lid int) bool {
		k := entryKey{int32(sw), lid}
		if seen[k] {
			return true
		}
		seen[k] = true
		return false
	}
	for sw := 0; sw < t.Switches(); sw++ {
		leaf := topology.SwitchID(sw)
		if !t.IsLeaf(leaf) {
			continue
		}
		for p := 0; p < t.Nodes(); p++ {
			r := f.in.Endports[p]
			reached, deadBlocked, defects, routes := 0, 0, 0, 0
			for off := 0; off < r.Count(); off++ {
				lid := int(r.Base) + off
				if lid <= 0 || lid >= f.space || f.owner[lid] != int32(p) {
					continue // addressing already flagged the inconsistency
				}
				routes++
				rep.Stats.RoutesChecked++
				switch f.walkRoute(rep, dedup, leaf, lid, int32(p)) {
				case walkReached:
					reached++
				case walkDeadLink:
					deadBlocked++
				case walkDefect:
					defects++
				}
			}
			// Aggregate unreachability: only when every failure is
			// fault-explained (defects already carry their own errors).
			if routes > 0 && reached == 0 && deadBlocked == routes {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Warning,
					Location: t.SwitchLabel(leaf),
					Message: fmt.Sprintf("destination %s unreachable: all %d of its LIDs hit dead links from this leaf",
						t.NodeLabel(topology.NodeID(p)), routes),
					Witness: nil,
				})
			}
		}
	}
}

// walkRoute follows one (leaf, LID) route hop by hop and reports its
// outcome, emitting findings for defects along the way.
func (f *fabric) walkRoute(rep *Report, dedup func(topology.SwitchID, int) bool, leaf topology.SwitchID, lid int, dst int32) int {
	t := f.t
	maxSwitches := 2*t.N() + 2 // longest legal up*/down* path, plus slack
	var path []topology.SwitchID
	var ports []int
	witness := func() []string {
		out := make([]string, len(path))
		for i, sw := range path {
			out[i] = f.linkLabel(sw, ports[i])
		}
		return out
	}
	sw := leaf
	for {
		for i, prev := range path {
			if prev == sw {
				if !dedup(sw, lid) {
					cyc := make([]string, 0, len(path)-i+1)
					for j := i; j < len(path); j++ {
						cyc = append(cyc, f.linkLabel(path[j], ports[j]))
					}
					rep.add(f.cap, Finding{
						Analyzer: "reachability",
						Severity: Error,
						Location: t.SwitchLabel(sw),
						Message:  fmt.Sprintf("forwarding loop for DLID %d (%d switches)", lid, len(cyc)),
						Witness:  cyc,
					})
				}
				return walkDefect
			}
		}
		if len(path) >= maxSwitches {
			if !dedup(sw, lid) {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("route for DLID %d exceeds %d switches without delivery", lid, maxSwitches),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		phys := f.in.LFTs[sw].Port(ib.LID(lid))
		if phys == ib.PortNone {
			if !dedup(sw, lid) {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("dead end: no forwarding entry for assigned DLID %d", lid),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		if phys == 0 || int(phys) > f.m {
			if !dedup(sw, lid) {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("DLID %d routed to invalid physical port %d", lid, phys),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		ab := int(phys) - 1
		path = append(path, sw)
		ports = append(ports, ab)
		if f.deadAt(sw, ab) {
			if !dedup(sw, lid) {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Warning,
					Location: f.linkLabel(sw, ab),
					Message:  fmt.Sprintf("entry for DLID %d points at a down link (packets drop here)", lid),
					Witness:  witness(),
				})
			}
			return walkDeadLink
		}
		ref := t.SwitchNeighbor(sw, ab)
		switch ref.Kind {
		case topology.KindNone:
			if !dedup(sw, lid) {
				rep.add(f.cap, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: f.linkLabel(sw, ab),
					Message:  fmt.Sprintf("route for DLID %d falls off the fabric (unwired port)", lid),
					Witness:  witness(),
				})
			}
			return walkDefect
		case topology.KindNode:
			if int32(ref.Node) != dst {
				if !dedup(sw, lid) {
					rep.add(f.cap, Finding{
						Analyzer: "reachability",
						Severity: Error,
						Location: f.linkLabel(sw, ab),
						Message: fmt.Sprintf("misdelivery: DLID %d owned by %s delivered to %s",
							lid, t.NodeLabel(topology.NodeID(dst)), t.NodeLabel(ref.Node)),
						Witness: witness(),
					})
				}
				return walkDefect
			}
			return walkReached
		}
		sw = ref.Switch
	}
}
