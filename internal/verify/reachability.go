package verify

import (
	"fmt"
	"sync"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Walk outcomes, per (leaf switch, assigned LID) route.
const (
	walkReached  = iota // delivered to the owning node
	walkDeadLink        // blocked by a recorded dead link (observable drop)
	walkDefect          // error-severity defect, finding already emitted
)

// entryKey dedups per-entry findings: a broken entry at switch S for LID L
// is one finding, not one per source leaf that reaches it.
type entryKey struct {
	sw  int32
	lid int
}

// reachCandidate is one finding recorded during a leaf's walk, before the
// cross-leaf dedup of the canonical merge. hasKey marks per-entry findings
// (deduped globally); aggregate per-(leaf, node) warnings carry no key.
type reachCandidate struct {
	hasKey bool
	key    entryKey
	f      Finding
}

// reachRecorder accumulates one leaf's walk output: candidates in emission
// order, a local first-encounter dedup (the slice of what this leaf would
// emit if it ran first), and the routes-checked count.
type reachRecorder struct {
	seen   map[entryKey]bool
	cands  []reachCandidate
	routes int
}

// claim reports whether (sw, lid) is new to this recorder, marking it seen.
// Callers check claim before building a finding at all — constructing the
// message and witness strings for an entry another route already flagged is
// the dominant cost of a walk over a heavily-degraded fabric.
func (r *reachRecorder) claim(sw topology.SwitchID, lid int) bool {
	k := entryKey{int32(sw), lid}
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	return true
}

// entry records a claimed per-entry finding.
func (r *reachRecorder) entry(sw topology.SwitchID, lid int, f Finding) {
	k := entryKey{int32(sw), lid}
	r.cands = append(r.cands, reachCandidate{hasKey: true, key: k, f: f})
}

// plain records an undeduped finding (the aggregate unreachability warning).
func (r *reachRecorder) plain(f Finding) {
	r.cands = append(r.cands, reachCandidate{f: f})
}

// checkReachability walks every (leaf switch, assigned LID) route through
// the live tables — every packet enters the fabric at a leaf, so these walks
// cover every forwardable (source, DLID) pair. Loops, dead ends,
// misdeliveries and fall-offs are errors with the walked path as witness;
// entries pointing at recorded dead links are warnings (the drop is the
// documented fate of an unrepaireable entry); a destination whose every LID
// is dead from some leaf gets one aggregated unreachability warning.
//
// Leaves are independent sources, so with par > 1 their walks run on a
// worker pool; each leaf records into its own slot and a serial merge in
// ascending-leaf order applies the global first-leaf-wins dedup and the
// finding cap, so the report is byte-identical to the serial walk no matter
// the worker count or scheduling.
func (f *fabric) checkReachability(rep *Report, par int) {
	t := f.t
	var leaves []topology.SwitchID
	for sw := 0; sw < t.Switches(); sw++ {
		if t.IsLeaf(topology.SwitchID(sw)) {
			leaves = append(leaves, topology.SwitchID(sw))
		}
	}
	if par > len(leaves) {
		par = len(leaves)
	}
	if par <= 1 {
		// Serial: one recorder shared by every leaf, so the global
		// first-encounter dedup gates finding construction itself — a
		// duplicate entry never builds its witness strings at all.
		rec := &reachRecorder{seen: make(map[entryKey]bool)}
		for _, leaf := range leaves {
			f.walkLeaf(rec, leaf)
		}
		rep.Stats.RoutesChecked += rec.routes
		for _, c := range rec.cands {
			rep.add(f.cap, c.f)
		}
		return
	}
	recs := make([]*reachRecorder, len(leaves))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rec := &reachRecorder{seen: make(map[entryKey]bool)}
				f.walkLeaf(rec, leaves[i])
				recs[i] = rec
			}
		}()
	}
	for i := range leaves {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Canonical merge: ascending leaves, per-leaf emission order, global
	// first-leaf-wins dedup.
	seen := make(map[entryKey]bool)
	for _, rec := range recs {
		rep.Stats.RoutesChecked += rec.routes
		for _, c := range rec.cands {
			if c.hasKey {
				if seen[c.key] {
					continue
				}
				seen[c.key] = true
			}
			rep.add(f.cap, c.f)
		}
	}
}

// walkLeaf walks every (node, assigned LID offset) route out of one leaf.
func (f *fabric) walkLeaf(rec *reachRecorder, leaf topology.SwitchID) {
	t := f.t
	for p := 0; p < t.Nodes(); p++ {
		r := f.in.Endports[p]
		reached, deadBlocked, routes := 0, 0, 0
		for off := 0; off < r.Count(); off++ {
			lid := int(r.Base) + off
			if lid <= 0 || lid >= f.space || f.owner[lid] != int32(p) {
				continue // addressing already flagged the inconsistency
			}
			routes++
			rec.routes++
			switch f.walkRoute(rec, leaf, lid, int32(p)) {
			case walkReached:
				reached++
			case walkDeadLink:
				deadBlocked++
			}
		}
		// Aggregate unreachability: only when every failure is
		// fault-explained (defects already carry their own errors).
		if routes > 0 && reached == 0 && deadBlocked == routes {
			rec.plain(Finding{
				Analyzer: "reachability",
				Severity: Warning,
				Location: t.SwitchLabel(leaf),
				Message: fmt.Sprintf("destination %s unreachable: all %d of its LIDs hit dead links from this leaf",
					t.NodeLabel(topology.NodeID(p)), routes),
				Witness: nil,
			})
		}
	}
}

// walkRoute follows one (leaf, LID) route hop by hop and reports its
// outcome, recording findings for defects along the way.
func (f *fabric) walkRoute(rec *reachRecorder, leaf topology.SwitchID, lid int, dst int32) int {
	t := f.t
	maxSwitches := 2*t.N() + 2 // longest legal up*/down* path, plus slack
	var path []topology.SwitchID
	var ports []int
	witness := func() []string {
		out := make([]string, len(path))
		for i, sw := range path {
			out[i] = f.linkLabel(sw, ports[i])
		}
		return out
	}
	sw := leaf
	for {
		for i, prev := range path {
			if prev == sw {
				cyc := make([]string, 0, len(path)-i+1)
				for j := i; j < len(path); j++ {
					cyc = append(cyc, f.linkLabel(path[j], ports[j]))
				}
				if rec.claim(sw, lid) {
					rec.entry(sw, lid, Finding{
						Analyzer: "reachability",
						Severity: Error,
						Location: t.SwitchLabel(sw),
						Message:  fmt.Sprintf("forwarding loop for DLID %d (%d switches)", lid, len(cyc)),
						Witness:  cyc,
					})
				}
				return walkDefect
			}
		}
		if len(path) >= maxSwitches {
			if rec.claim(sw, lid) {
				rec.entry(sw, lid, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("route for DLID %d exceeds %d switches without delivery", lid, maxSwitches),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		phys := f.in.LFTs[sw].Port(ib.LID(lid))
		if phys == ib.PortNone {
			if rec.claim(sw, lid) {
				rec.entry(sw, lid, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("dead end: no forwarding entry for assigned DLID %d", lid),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		if phys == 0 || int(phys) > f.m {
			if rec.claim(sw, lid) {
				rec.entry(sw, lid, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: t.SwitchLabel(sw),
					Message:  fmt.Sprintf("DLID %d routed to invalid physical port %d", lid, phys),
					Witness:  witness(),
				})
			}
			return walkDefect
		}
		ab := int(phys) - 1
		path = append(path, sw)
		ports = append(ports, ab)
		if f.deadAt(sw, ab) {
			if rec.claim(sw, lid) {
				rec.entry(sw, lid, Finding{
					Analyzer: "reachability",
					Severity: Warning,
					Location: f.linkLabel(sw, ab),
					Message:  fmt.Sprintf("entry for DLID %d points at a down link (packets drop here)", lid),
					Witness:  witness(),
				})
			}
			return walkDeadLink
		}
		ref := t.SwitchNeighbor(sw, ab)
		switch ref.Kind {
		case topology.KindNone:
			if rec.claim(sw, lid) {
				rec.entry(sw, lid, Finding{
					Analyzer: "reachability",
					Severity: Error,
					Location: f.linkLabel(sw, ab),
					Message:  fmt.Sprintf("route for DLID %d falls off the fabric (unwired port)", lid),
					Witness:  witness(),
				})
			}
			return walkDefect
		case topology.KindNode:
			if int32(ref.Node) != dst {
				if rec.claim(sw, lid) {
					rec.entry(sw, lid, Finding{
						Analyzer: "reachability",
						Severity: Error,
						Location: f.linkLabel(sw, ab),
						Message: fmt.Sprintf("misdelivery: DLID %d owned by %s delivered to %s",
							lid, t.NodeLabel(topology.NodeID(dst)), t.NodeLabel(ref.Node)),
						Witness: witness(),
					})
				}
				return walkDefect
			}
			return walkReached
		}
		sw = ref.Switch
	}
}
