// Package verify is a whole-fabric static analyzer for compiled forwarding
// state: it proves (or refutes) the properties the paper's MLID scheme
// stakes its claims on — every (source, assigned-DLID) route reaches its
// destination, the up*/down* tables induce no credit-loop, the LID
// addressing is consistent and fits the 16-bit space, and load spreads
// evenly across root links — without simulating a single packet.
//
// Four analyzer families emit typed findings (severity, fabric location,
// witness path) through a shared reporter:
//
//   - reachability: walks every (leaf switch, assigned LID) route through
//     the live tables; flags forwarding loops (with the cycle as witness),
//     dead-end entries, entries pointing at down links, misdeliveries, and
//     destinations left unreachable.
//   - deadlock: builds the per-virtual-lane channel-dependency graph from
//     the same walks — generalizing core.CheckDeadlockFree to arbitrary
//     fault-repaired tables, which may legally contain broken entries —
//     and reports the shortest witness cycle if one exists.
//   - addressing: LID-space exhaustion (MLID on FT(16,3) needs 65,537
//     LIDs, one past the 16-bit space), LMC-block overlap, duplicate and
//     orphaned LID assignments.
//   - quality: per-link maximal load under all-to-all and supplied traffic
//     matrices, path dilation against the minimal up*/down* path, and the
//     root-link balance spread.
//
// Severity follows one rule: a defect a recorded dead link explains is a
// Warning (the packet drops observably — the documented fate of
// RepairSubnet's broken descending entries); anything the faults do not
// explain — a loop, a cycle, a dead end or misdelivery on a healthy route —
// is an Error. A fabric with no dead links must therefore verify with zero
// findings above Info, and a mid-repair fabric must verify with zero
// errors. See DESIGN.md, "Static guarantees".
package verify

import (
	"fmt"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Matrix is one named traffic matrix for the quality analyzer.
type Matrix struct {
	Name  string
	Flows []core.Flow
}

// Input is the forwarding state under verification. It is deliberately a
// plain bundle — callers hand over live tables (the simulator's mid-repair
// view), repaired tables (core.RepairSubnet output), or a freshly
// configured subnet (FromSubnet) without conversion.
type Input struct {
	Tree *topology.Tree
	// Endports[p] is node p's LID range — the addressing under test.
	Endports []ib.LIDRange
	// LFTs[s] is switch s's forwarding table — the routing under test.
	LFTs []*ib.LFT
	// Engine, when non-nil, enables the scheme-level addressing checks
	// (LID-space sizing, LMC bounds) and provides the default path
	// selection for the quality analyzer.
	Engine ib.RoutingEngine
	// DeadLinks lists known-down links by their switch-side endpoints
	// (switch id, abstract port), the same naming sim's fault machinery
	// uses. Defects these links explain are warnings, not errors.
	DeadLinks [][2]int32
	// SelectDLID, when non-nil, overrides path selection for the quality
	// analyzer: the DLID a source actually places on packets to dst
	// (ok=false skips the flow). Used to verify fault-avoiding reselection.
	SelectDLID func(src, dst topology.NodeID) (ib.LID, bool)
}

// FromSubnet bundles a configured subnet for verification.
func FromSubnet(sn *ib.Subnet) Input {
	return Input{Tree: sn.Tree, Endports: sn.Endports, LFTs: sn.LFTs, Engine: sn.Engine}
}

// Options tunes a Run.
type Options struct {
	// VLs is the data virtual-lane count to prove deadlock freedom for;
	// zero means 1.
	VLs int
	// VLOf, when non-nil, is the static DLID-to-lane mapping (the VLByDLID
	// policy); nil means every lane carries every route, so one lane's
	// proof covers all of them.
	VLOf func(dlid ib.LID, vls int) int
	// Matrices are extra traffic matrices for the quality analyzer, on top
	// of the default all-to-all.
	Matrices []Matrix
	// SkipQuality drops the quality analyzer — the right call inside the
	// simulator's per-epoch hook, where only the safety properties matter.
	SkipQuality bool
	// MaxFindings caps findings per analyzer (excess is counted in
	// Stats.Suppressed); zero means 64.
	MaxFindings int
	// Parallelism bounds the worker count of the reachability walk, whose
	// per-leaf sources are independent (findings merge in canonical order,
	// so the report is byte-identical at any setting). <= 1 runs serial —
	// the right call inside the simulator's per-epoch hook, which is itself
	// invoked from sharded runs.
	Parallelism int
}

// fabric is the resolved view of an Input the analyzers share.
type fabric struct {
	in    Input
	t     *topology.Tree
	m     int
	space int     // LID table size
	owner []int32 // LID -> owning node, or -1
	dead  []bool  // global port id (sw*m+port) -> endpoint of a dead link
	cap   int     // per-analyzer finding cap
}

// Run executes every analyzer over the input and returns the combined
// report. The error covers unusable input only (nil tree, mismatched table
// set); defects in the forwarding state itself are findings, never errors.
func Run(in Input, opt Options) (*Report, error) {
	if in.Tree == nil {
		return nil, fmt.Errorf("verify: Input.Tree is required")
	}
	t := in.Tree
	if len(in.Endports) != t.Nodes() {
		return nil, fmt.Errorf("verify: %d endport ranges for %d nodes", len(in.Endports), t.Nodes())
	}
	if len(in.LFTs) != t.Switches() {
		return nil, fmt.Errorf("verify: %d forwarding tables for %d switches", len(in.LFTs), t.Switches())
	}
	for s, lft := range in.LFTs {
		if lft == nil {
			return nil, fmt.Errorf("verify: switch %d has no forwarding table", s)
		}
	}
	if opt.VLs <= 0 {
		opt.VLs = 1
	}
	if opt.MaxFindings == 0 {
		opt.MaxFindings = 64
	}

	f := &fabric{in: in, t: t, m: t.M(), cap: opt.MaxFindings}
	f.space = 0
	for _, lft := range in.LFTs {
		if lft.Size() > f.space {
			f.space = lft.Size()
		}
	}
	f.dead = make([]bool, t.Switches()*f.m)
	for _, e := range in.DeadLinks {
		sw, port := topology.SwitchID(e[0]), int(e[1])
		if !t.ValidSwitch(sw) || port < 0 || port >= f.m {
			continue
		}
		f.dead[int(sw)*f.m+port] = true
		if ref := t.SwitchNeighbor(sw, port); ref.Kind == topology.KindSwitch {
			f.dead[int(ref.Switch)*f.m+ref.Port] = true
		}
	}

	rep := &Report{}
	rep.Stats.VLs = opt.VLs
	f.checkAddressing(rep)
	f.checkReachability(rep, opt.Parallelism)
	f.checkDeadlock(rep, opt)
	if !opt.SkipQuality {
		f.checkQuality(rep, opt)
	}
	return rep, nil
}

// deadAt reports whether the link out of (sw, abstract port) is down.
func (f *fabric) deadAt(sw topology.SwitchID, port int) bool {
	return f.dead[int(sw)*f.m+port]
}

// linkLabel names a directed link by its transmitting switch endpoint.
func (f *fabric) linkLabel(sw topology.SwitchID, port int) string {
	return fmt.Sprintf("%s:%d", f.t.SwitchLabel(sw), port)
}
