package verify

import (
	"encoding/json"
	"fmt"
	"io"
)

// Severity grades a finding. Error findings are violations of properties the
// schemes guarantee (a loop, a credit cycle, an unexplained dead end);
// Warning findings are conditions a recorded fault explains (an entry left
// pointing at a down link drops packets observably, it does not misroute
// them); Info findings carry metrics with no pass/fail meaning.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the lowercase names String produces.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("verify: unknown severity %q", name)
	}
	return nil
}

// Finding is one typed result of a static analyzer: what was found, how bad
// it is, where in the fabric it sits, and the witness that proves it (a
// forwarding path for reachability findings, a channel cycle for deadlock
// findings). Every construction must set Severity and Witness explicitly —
// the findingfmt ibvet analyzer enforces it — so a reader never has to guess
// whether an omitted field means "info" or "forgotten".
type Finding struct {
	// Analyzer names the family that produced the finding: "reachability",
	// "deadlock", "addressing" or "quality".
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	// Location names the fabric element the finding anchors to, using the
	// topology's labels (e.g. "SW2,3:1" or "P1,0,2").
	Location string `json:"location"`
	Message  string `json:"message"`
	// Witness is the evidence trail: the hops of a broken route, the
	// channels of a dependency cycle, the owners of a duplicated LID. Nil
	// when the message is self-contained.
	Witness []string `json:"witness,omitempty"`
}

// String renders one finding in the human format WriteHuman uses.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s: %s", f.Severity, f.Analyzer, f.Location, f.Message)
	if len(f.Witness) > 0 {
		s += fmt.Sprintf(" [witness: %s]", joinWitness(f.Witness))
	}
	return s
}

func joinWitness(w []string) string {
	out := ""
	for i, h := range w {
		if i > 0 {
			out += " -> "
		}
		out += h
	}
	return out
}

// QualityReport is the quality analyzer's metric block for one traffic
// matrix: the static congestion and path-stretch measures the paper's
// evaluation ranks routings by.
type QualityReport struct {
	// Matrix names the traffic matrix ("all-to-all" or a supplied name).
	Matrix string `json:"matrix"`
	// Flows is the number of traced (src, dst) flows; Unrouted counts the
	// flows whose selected route did not reach the destination (they carry
	// no load).
	Flows    int `json:"flows"`
	Unrouted int `json:"unrouted"`
	// MaxLoad is the heaviest directed inter-switch link's accumulated
	// weight — the static congestion bound (throughput <= demand / MaxLoad
	// for unit-capacity links); MaxLink names one link attaining it.
	MaxLoad  float64 `json:"max_load"`
	MaxLink  string  `json:"max_link"`
	MeanLoad float64 `json:"mean_load"`
	// MeanDilation / MaxDilation compare each routed flow's switch count to
	// the minimal up*/down* path for the pair (1.0 = every flow shortest).
	MeanDilation float64 `json:"mean_dilation"`
	MaxDilation  float64 `json:"max_dilation"`
	// RootLinkMax / RootLinkMin / RootLinkMean summarize the load on the
	// root switches' descending links — the spread the MLID scheme's
	// root-per-LID assignment is designed to keep flat.
	RootLinkMax  float64 `json:"root_link_max"`
	RootLinkMin  float64 `json:"root_link_min"`
	RootLinkMean float64 `json:"root_link_mean"`
}

// Stats summarizes what a Run proved and how much work it did.
type Stats struct {
	// RoutesChecked counts the (leaf switch, assigned LID) routes the
	// reachability analyzer walked.
	RoutesChecked int `json:"routes_checked"`
	// VLs is the virtual-lane count the deadlock analyzer proved freedom
	// for; Channels / Dependencies size the largest per-VL graph.
	VLs          int `json:"vls"`
	Channels     int `json:"channels"`
	Dependencies int `json:"dependencies"`
	// Suppressed counts findings dropped by the per-analyzer cap.
	Suppressed int `json:"suppressed"`
	// Quality carries one metric block per traffic matrix (empty when the
	// quality analyzer was skipped).
	Quality []QualityReport `json:"quality,omitempty"`
}

// Report collects every analyzer's findings plus run statistics.
type Report struct {
	Findings []Finding `json:"findings"`
	Stats    Stats     `json:"stats"`
}

// add appends a finding unless the per-analyzer cap is exhausted, in which
// case it is counted as suppressed.
func (r *Report) add(capacity int, f Finding) {
	n := 0
	for _, g := range r.Findings {
		if g.Analyzer == f.Analyzer {
			n++
		}
	}
	if capacity > 0 && n >= capacity {
		r.Stats.Suppressed++
		return
	}
	r.Findings = append(r.Findings, f)
}

// Errors counts error-severity findings.
func (r *Report) Errors() int { return r.count(Error) }

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return r.count(Warning) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// Clean reports whether no error-severity finding exists: the verified
// properties hold (warnings may still document fault-explained degradation).
func (r *Report) Clean() bool { return r.Errors() == 0 }

// WriteHuman renders the report for terminals: findings first (errors,
// warnings, then infos, each in discovery order), then a one-line summary
// and the quality metric blocks.
func (r *Report) WriteHuman(w io.Writer) {
	for _, sev := range []Severity{Error, Warning, Info} {
		for _, f := range r.Findings {
			if f.Severity == sev {
				fmt.Fprintln(w, f.String())
			}
		}
	}
	fmt.Fprintf(w, "verified %d routes, %d VLs (%d channels, %d dependencies): %d errors, %d warnings",
		r.Stats.RoutesChecked, r.Stats.VLs, r.Stats.Channels, r.Stats.Dependencies, r.Errors(), r.Warnings())
	if r.Stats.Suppressed > 0 {
		fmt.Fprintf(w, " (%d findings suppressed)", r.Stats.Suppressed)
	}
	fmt.Fprintln(w)
	for _, q := range r.Stats.Quality {
		fmt.Fprintf(w, "quality[%s]: flows %d (unrouted %d), max load %.2f at %s, mean %.2f, dilation mean %.3f max %.2f, root links max/mean/min %.2f/%.2f/%.2f\n",
			q.Matrix, q.Flows, q.Unrouted, q.MaxLoad, q.MaxLink, q.MeanLoad,
			q.MeanDilation, q.MaxDilation, q.RootLinkMax, q.RootLinkMean, q.RootLinkMin)
	}
}

// WriteJSON renders findings as JSON lines (one object per finding, the
// shape cmd/ibverify -json emits and the CI problem matcher parses),
// followed by one {"stats": ...} trailer object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, f := range r.Findings {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return enc.Encode(struct {
		Stats Stats `json:"stats"`
	}{r.Stats})
}
