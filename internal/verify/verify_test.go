package verify_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/verify"
)

func configured(t *testing.T, m, n int, eng ib.RoutingEngine) *ib.Subnet {
	t.Helper()
	tr, err := topology.New(m, n)
	if err != nil {
		t.Fatalf("topology.New(%d,%d): %v", m, n, err)
	}
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: eng}).Configure()
	if err != nil {
		t.Fatalf("Configure %s on FT(%d,%d): %v", eng.Name(), m, n, err)
	}
	return sn
}

// portTo returns the abstract port of from wired to switch to, or -1.
func portTo(tr *topology.Tree, from, to topology.SwitchID) int {
	for p := 0; p < tr.M(); p++ {
		if ref := tr.SwitchNeighbor(from, p); ref.Kind == topology.KindSwitch && ref.Switch == to {
			return p
		}
	}
	return -1
}

// findingWith returns the first finding of the analyzer whose message
// contains the substring.
func findingWith(rep *verify.Report, analyzer, substr string) (verify.Finding, bool) {
	for _, f := range rep.Findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
			return f, true
		}
	}
	var zero verify.Finding
	return zero, false
}

// TestGoldenFabricsVerifyClean proves the headline property: every golden
// fabric, both schemes, verifies with zero findings above Info — full
// reachability, deadlock freedom on every VL, consistent addressing.
func TestGoldenFabricsVerifyClean(t *testing.T) {
	for _, net := range [][2]int{{4, 4}, {8, 3}, {16, 2}, {32, 2}} {
		for _, eng := range []ib.RoutingEngine{core.NewSLID(), core.NewMLID()} {
			sn := configured(t, net[0], net[1], eng)
			rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{VLs: 4})
			if err != nil {
				t.Fatalf("FT(%d,%d) %s: %v", net[0], net[1], eng.Name(), err)
			}
			if rep.Errors() != 0 || rep.Warnings() != 0 {
				rep.WriteHuman(testWriter{t})
				t.Fatalf("FT(%d,%d) %s: %d errors, %d warnings on a healthy fabric",
					net[0], net[1], eng.Name(), rep.Errors(), rep.Warnings())
			}
			if rep.Stats.RoutesChecked == 0 || rep.Stats.Channels == 0 || rep.Stats.Dependencies == 0 {
				t.Fatalf("FT(%d,%d) %s: empty stats %+v", net[0], net[1], eng.Name(), rep.Stats)
			}
			if len(rep.Stats.Quality) == 0 || rep.Stats.Quality[0].Unrouted != 0 {
				t.Fatalf("FT(%d,%d) %s: quality missing or unrouted flows: %+v",
					net[0], net[1], eng.Name(), rep.Stats.Quality)
			}
		}
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestVerifyDeterministic runs the verifier twice over the same input and
// requires identical reports.
func TestVerifyDeterministic(t *testing.T) {
	sn := configured(t, 8, 3, core.NewMLID())
	a, err := verify.Run(verify.FromSubnet(sn), verify.Options{VLs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := verify.Run(verify.FromSubnet(sn), verify.Options{VLs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("verify not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestForwardingLoopFinding corrupts a spine entry to bounce a DLID between
// a leaf and a root and expects a loop finding with the cycle as witness.
func TestForwardingLoopFinding(t *testing.T) {
	sn := configured(t, 4, 2, core.NewMLID())
	tr := sn.Tree
	// dst on a different leaf than node 0's.
	leaf0, _ := tr.NodeAttachment(0)
	dst := topology.NodeID(tr.Nodes() - 1)
	leafD, _ := tr.NodeAttachment(dst)
	lid := sn.Endports[dst].Base
	var root topology.SwitchID
	for sw := 0; sw < tr.Switches(); sw++ {
		if tr.IsRoot(topology.SwitchID(sw)) {
			root = topology.SwitchID(sw)
			break
		}
	}
	// leaf0 -> root -> leaf0 -> ... : a two-switch forwarding loop.
	mustSet(t, sn.LFTs[leaf0], lid, portTo(tr, leaf0, root))
	mustSet(t, sn.LFTs[root], lid, portTo(tr, root, leaf0))
	_ = leafD

	rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := findingWith(rep, "reachability", "forwarding loop")
	if !ok {
		t.Fatalf("no forwarding-loop finding in %+v", rep.Findings)
	}
	if f.Severity != verify.Error || len(f.Witness) < 2 {
		t.Fatalf("loop finding not an error with cycle witness: %+v", f)
	}
}

// TestDeadEndFinding erases the destination leaf's entry for an assigned
// LID and expects a dead-end error.
func TestDeadEndFinding(t *testing.T) {
	sn := configured(t, 4, 2, core.NewSLID())
	dst := topology.NodeID(0)
	leaf, _ := sn.Tree.NodeAttachment(dst)
	lid := sn.Endports[dst].Base
	if err := sn.LFTs[leaf].Set(lid, ib.PortNone); err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := findingWith(rep, "reachability", "dead end")
	if !ok {
		t.Fatalf("no dead-end finding in %+v", rep.Findings)
	}
	if f.Severity != verify.Error {
		t.Fatalf("dead end not an error: %+v", f)
	}
}

// TestMisdeliveryFinding points a destination leaf's entry at the wrong
// node and expects a misdelivery error.
func TestMisdeliveryFinding(t *testing.T) {
	sn := configured(t, 4, 2, core.NewSLID())
	tr := sn.Tree
	dst := topology.NodeID(0)
	leaf, attach := tr.NodeAttachment(dst)
	// The other node on the same leaf sits on a different down port.
	wrong := -1
	for p := 0; p < tr.DownPorts(leaf); p++ {
		if p != attach {
			wrong = p
			break
		}
	}
	mustSet(t, sn.LFTs[leaf], sn.Endports[dst].Base, wrong)
	rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := findingWith(rep, "reachability", "misdelivery"); !ok || f.Severity != verify.Error {
		t.Fatalf("no misdelivery error in %+v", rep.Findings)
	}
}

// TestCreditCycleFinding rewires two DLIDs into down-up kinks that deliver
// correctly (reachability stays clean) but close a channel-dependency
// cycle; the deadlock analyzer must report the shortest witness cycle.
func TestCreditCycleFinding(t *testing.T) {
	sn := configured(t, 4, 2, core.NewMLID())
	tr := sn.Tree
	var leaves, roots []topology.SwitchID
	for sw := 0; sw < tr.Switches(); sw++ {
		id := topology.SwitchID(sw)
		if tr.IsLeaf(id) {
			leaves = append(leaves, id)
		} else if tr.IsRoot(id) {
			roots = append(roots, id)
		}
	}
	if len(leaves) < 4 || len(roots) < 2 {
		t.Fatalf("unexpected FT(4,2) shape: %d leaves, %d roots", len(leaves), len(roots))
	}
	A, B, C, D := leaves[0], leaves[1], leaves[2], leaves[3]
	R0, R1 := roots[0], roots[1]
	nodeOn := func(leaf topology.SwitchID) topology.NodeID {
		for p := 0; p < tr.Nodes(); p++ {
			if sw, _ := tr.NodeAttachment(topology.NodeID(p)); sw == leaf {
				return topology.NodeID(p)
			}
		}
		t.Fatalf("no node on leaf %d", leaf)
		return 0
	}
	// lid1 -> node on B, routed A -> R0 -> C -> R1 -> B (kink at C).
	lid1 := sn.Endports[nodeOn(B)].Base
	mustSet(t, sn.LFTs[A], lid1, portTo(tr, A, R0))
	mustSet(t, sn.LFTs[R0], lid1, portTo(tr, R0, C))
	mustSet(t, sn.LFTs[C], lid1, portTo(tr, C, R1))
	mustSet(t, sn.LFTs[R1], lid1, portTo(tr, R1, B))
	// lid2 -> node on C, routed D -> R1 -> B -> R0 -> C (kink at B).
	lid2 := sn.Endports[nodeOn(C)].Base
	mustSet(t, sn.LFTs[D], lid2, portTo(tr, D, R1))
	mustSet(t, sn.LFTs[R1], lid2, portTo(tr, R1, B))
	mustSet(t, sn.LFTs[B], lid2, portTo(tr, B, R0))
	mustSet(t, sn.LFTs[R0], lid2, portTo(tr, R0, C))

	rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "reachability" && f.Severity == verify.Error {
			t.Fatalf("corruption was meant to deliver correctly, got %+v", f)
		}
	}
	f, ok := findingWith(rep, "deadlock", "channel-dependency cycle")
	if !ok {
		t.Fatalf("no deadlock finding in %+v", rep.Findings)
	}
	if f.Severity != verify.Error {
		t.Fatalf("deadlock finding not an error: %+v", f)
	}
	if len(f.Witness) != 4 {
		t.Fatalf("expected the shortest (4-channel) witness cycle, got %d: %v", len(f.Witness), f.Witness)
	}
}

// TestLIDOverflowFinding: MLID on FT(16,3) needs 65,537 LIDs — one past the
// 16-bit space — and must surface as an addressing error, not a panic.
func TestLIDOverflowFinding(t *testing.T) {
	tr, err := topology.New(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	fs := verify.AddressingScheme(tr, core.NewMLID())
	if len(fs) == 0 {
		t.Fatal("no addressing findings for MLID on FT(16,3)")
	}
	f := fs[0]
	if f.Severity != verify.Error || !strings.Contains(f.Message, "LID-space exhaustion") {
		t.Fatalf("unexpected finding: %+v", f)
	}
	if len(f.Witness) == 0 || !strings.Contains(f.Witness[0], "65537") {
		t.Fatalf("witness should carry the needed LID space: %+v", f.Witness)
	}
	// SLID fits the same fabric.
	if fs := verify.AddressingScheme(tr, core.NewSLID()); len(fs) != 0 {
		t.Fatalf("SLID on FT(16,3) should be clean, got %+v", fs)
	}
}

// TestDeadLinkEntriesAreWarnings: stale entries pointing at a recorded dead
// link are fault-explained warnings, never errors; with the link dead and
// tables unrepaired, the fabric must still be loop- and deadlock-free.
func TestDeadLinkEntriesAreWarnings(t *testing.T) {
	sn := configured(t, 4, 2, core.NewMLID())
	leaf, _ := sn.Tree.NodeAttachment(0)
	up := sn.Tree.DownPorts(leaf) // first ascending port
	in := verify.FromSubnet(sn)
	in.DeadLinks = [][2]int32{{int32(leaf), int32(up)}}
	rep, err := verify.Run(in, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Fatalf("dead-link entries produced errors: %+v", rep.Findings)
	}
	if rep.Warnings() == 0 {
		t.Fatal("expected down-link warnings for stale entries")
	}
	if _, ok := findingWith(rep, "reachability", "down link"); !ok {
		t.Fatalf("no down-link finding in %+v", rep.Findings)
	}
}

// TestRepairedTablesVerifyClean: after core.RepairSubnet the MLID fabric
// must verify with zero errors (broken descending entries remain warnings)
// and fault-avoiding reselection must leave no flow unrouted.
func TestRepairedTablesVerifyClean(t *testing.T) {
	sn := configured(t, 4, 2, core.NewMLID())
	tr := sn.Tree
	leaf, _ := tr.NodeAttachment(0)
	up := tr.DownPorts(leaf)
	fs := core.NewFaultSet()
	fs.FailLink(tr, leaf, up)
	if _, _, err := core.RepairSubnet(sn, fs); err != nil {
		t.Fatal(err)
	}
	scheme := core.NewMLID()
	in := verify.FromSubnet(sn)
	in.DeadLinks = [][2]int32{{int32(leaf), int32(up)}}
	in.SelectDLID = func(src, dst topology.NodeID) (ib.LID, bool) {
		lid, _, ok := core.SelectDLID(tr, scheme, src, dst, fs)
		return lid, ok
	}
	rep, err := verify.Run(in, verify.Options{VLs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		rep.WriteHuman(testWriter{t})
		t.Fatalf("repaired MLID tables produced %d errors", rep.Errors())
	}
	if len(rep.Stats.Quality) == 0 || rep.Stats.Quality[0].Unrouted != 0 {
		t.Fatalf("MLID reselection should route every flow around one dead spine link: %+v", rep.Stats.Quality)
	}
}

// TestDuplicateAndOrphanLIDFindings: an overlapping LMC block is an
// addressing error; a routed-but-unowned LID is an orphan warning.
func TestDuplicateAndOrphanLIDFindings(t *testing.T) {
	sn := configured(t, 4, 2, core.NewMLID())
	// Overlap: node 1's block moved onto node 0's.
	in := verify.FromSubnet(sn)
	in.Endports = append([]ib.LIDRange(nil), sn.Endports...)
	in.Endports[1] = ib.LIDRange{Base: sn.Endports[0].Base, LMC: sn.Endports[0].LMC}
	rep, err := verify.Run(in, verify.Options{SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := findingWith(rep, "addressing", "LMC blocks overlap"); !ok || f.Severity != verify.Error {
		t.Fatalf("no overlap error in %+v", rep.Findings)
	}

	// Orphan: shrink node 0's range so its second LID is routed but unowned.
	in2 := verify.FromSubnet(sn)
	in2.Endports = append([]ib.LIDRange(nil), sn.Endports...)
	in2.Endports[0] = ib.LIDRange{Base: sn.Endports[0].Base, LMC: 0}
	rep2, err := verify.Run(in2, verify.Options{SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := findingWith(rep2, "addressing", "orphaned LID")
	if !ok || f.Severity != verify.Warning {
		t.Fatalf("no orphan warning in %+v", rep2.Findings)
	}
}

// TestReportJSON round-trips findings through the JSON-lines encoding.
func TestReportJSON(t *testing.T) {
	sn := configured(t, 4, 2, core.NewSLID())
	leaf, _ := sn.Tree.NodeAttachment(0)
	if err := sn.LFTs[leaf].Set(sn.Endports[0].Base, ib.PortNone); err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Run(verify.FromSubnet(sn), verify.Options{SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Findings)+1 {
		t.Fatalf("want %d JSON lines, got %d", len(rep.Findings)+1, len(lines))
	}
	var back verify.Finding
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatalf("finding line not JSON: %v", err)
	}
	if back.Severity != verify.Error || back.Analyzer == "" {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
}

// mustSet writes an LFT entry from an abstract port, failing the test on a
// wiring mistake.
func mustSet(t *testing.T, lft *ib.LFT, lid ib.LID, abstract int) {
	t.Helper()
	if abstract < 0 {
		t.Fatal("portTo found no wire")
	}
	if err := lft.Set(lid, uint8(abstract+1)); err != nil {
		t.Fatal(err)
	}
}
