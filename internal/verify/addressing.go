package verify

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// lidSpaceLimit is the exclusive upper bound of the 16-bit LID space.
const lidSpaceLimit = 1 << 16

// AddressingScheme checks a routing engine's LID plan against a fabric
// before any table exists: the LMC must fit the 3-bit field and the LID
// space must fit 16 bits. It is the check cmd/ibverify runs up front, so a
// scheme that cannot be configured at all (MLID on FT(16,3) needs 65,537
// LIDs, one past the space) surfaces as a finding instead of a fatal
// configuration error.
func AddressingScheme(t *topology.Tree, eng ib.RoutingEngine) []Finding {
	var out []Finding
	lmc := eng.LMC(t)
	if lmc > ib.MaxLMC {
		out = append(out, Finding{
			Analyzer: "addressing",
			Severity: Error,
			Location: t.String(),
			Message: fmt.Sprintf("scheme %s requires LMC %d > architectural maximum %d",
				eng.Name(), lmc, ib.MaxLMC),
			Witness: []string{fmt.Sprintf("LMC field is 3 bits, max %d", ib.MaxLMC)},
		})
	}
	if space := eng.LIDSpace(t); space > lidSpaceLimit {
		out = append(out, Finding{
			Analyzer: "addressing",
			Severity: Error,
			Location: t.String(),
			Message: fmt.Sprintf("LID-space exhaustion: scheme %s needs %d LIDs, %d past the 16-bit space",
				eng.Name(), space, space-lidSpaceLimit),
			Witness: []string{
				fmt.Sprintf("LIDSpace=%d", space),
				fmt.Sprintf("16-bit limit=%d", lidSpaceLimit),
			},
		})
	}
	return out
}

// checkAddressing validates the LID assignment — and, as a side effect,
// builds f.owner, the LID-to-node index every later analyzer walks routes
// with. A duplicated LID keeps its first owner so the walk stays defined.
func (f *fabric) checkAddressing(rep *Report) {
	if f.in.Engine != nil {
		for _, fd := range AddressingScheme(f.t, f.in.Engine) {
			rep.add(f.cap, fd)
		}
	}
	f.owner = make([]int32, f.space)
	for i := range f.owner {
		f.owner[i] = -1
	}
	for p, r := range f.in.Endports {
		node := f.t.NodeLabel(topology.NodeID(p))
		if r.Base == 0 {
			rep.add(f.cap, Finding{
				Analyzer: "addressing",
				Severity: Error,
				Location: node,
				Message:  "assigned the reserved base LID 0",
				Witness:  nil,
			})
			continue
		}
		for off := 0; off < r.Count(); off++ {
			lid := int(r.Base) + off
			if lid >= f.space {
				rep.add(f.cap, Finding{
					Analyzer: "addressing",
					Severity: Error,
					Location: node,
					Message: fmt.Sprintf("LID %d beyond the forwarding-table size %d (LMC block overflows the table)",
						lid, f.space),
					Witness: []string{r.String()},
				})
				break
			}
			if prev := f.owner[lid]; prev >= 0 {
				rep.add(f.cap, Finding{
					Analyzer: "addressing",
					Severity: Error,
					Location: node,
					Message:  fmt.Sprintf("LID %d already owned by %s (LMC blocks overlap)", lid, f.t.NodeLabel(topology.NodeID(prev))),
					Witness: []string{
						fmt.Sprintf("%s owns %s", f.t.NodeLabel(topology.NodeID(prev)), f.in.Endports[prev].String()),
						fmt.Sprintf("%s owns %s", node, r.String()),
					},
				})
				continue
			}
			f.owner[lid] = int32(p)
		}
	}
	// Orphaned entries: a switch routes a LID no endport owns. Harmless to
	// live traffic (no source addresses it) but a sign of table drift, so a
	// warning, aggregated per LID.
	for lid := 1; lid < f.space; lid++ {
		if f.owner[lid] >= 0 {
			continue
		}
		routed := 0
		var first topology.SwitchID
		for sw, lft := range f.in.LFTs {
			if lft.Port(ib.LID(lid)) != ib.PortNone {
				if routed == 0 {
					first = topology.SwitchID(sw)
				}
				routed++
			}
		}
		if routed > 0 {
			rep.add(f.cap, Finding{
				Analyzer: "addressing",
				Severity: Warning,
				Location: f.t.SwitchLabel(first),
				Message:  fmt.Sprintf("orphaned LID %d routed on %d switches but owned by no endport", lid, routed),
				Witness:  nil,
			})
		}
	}
}
