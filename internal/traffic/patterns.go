package traffic

import (
	"fmt"
	"math/rand"
)

// MultiHotspot generalizes Centric to several hotspots: with probability
// Fraction the destination is drawn uniformly from the hotspot set,
// otherwise uniformly from all other nodes. Spreading the concentration
// over k destinations multiplies the aggregate sink capacity by k, which is
// how real systems dilute the single-sink bound the centric pattern hits.
type MultiHotspot struct {
	Nodes    int
	Hotspots []int
	Fraction float64
}

// Name implements Pattern.
func (m MultiHotspot) Name() string {
	return fmt.Sprintf("hotspot%dx%.0f%%", len(m.Hotspots), m.Fraction*100)
}

// Dest implements Pattern. A source that is itself a hotspot draws among the
// remaining hotspots, so every source realizes the configured Fraction toward
// the hotspot set (src being the only hotspot is the sole exception).
func (m MultiHotspot) Dest(src int, rng *rand.Rand) int {
	if len(m.Hotspots) > 0 && rng.Float64() < m.Fraction {
		if d, ok := m.drawHotspot(src, rng); ok {
			return d
		}
	}
	for {
		d := rng.Intn(m.Nodes - 1)
		if d >= src {
			d++
		}
		if d != src {
			return d
		}
	}
}

// drawHotspot draws uniformly over the hotspot set excluding src; ok=false
// when src is the only hotspot.
func (m MultiHotspot) drawHotspot(src int, rng *rand.Rand) (int, bool) {
	self := -1
	for i, h := range m.Hotspots {
		if h == src {
			self = i
			break
		}
	}
	if self < 0 {
		return m.Hotspots[rng.Intn(len(m.Hotspots))], true
	}
	if len(m.Hotspots) == 1 {
		return 0, false
	}
	i := rng.Intn(len(m.Hotspots) - 1)
	if i >= self {
		i++
	}
	return m.Hotspots[i], true
}

// Local draws destinations with a bias toward nearby nodes: with probability
// Locality the destination shares the source's leaf switch (PID block of
// size m/2); otherwise it is uniform. Locality stresses the short intra-leaf
// paths the fat-tree serves without any ascent.
type Local struct {
	Nodes    int
	LeafSize int // nodes per leaf switch (m/2)
	Locality float64
}

// Name implements Pattern.
func (l Local) Name() string { return fmt.Sprintf("local%.0f%%", l.Locality*100) }

// Dest implements Pattern. The biased draw covers only the leaf block's
// valid nodes, so a partial last leaf (Nodes not a multiple of LeafSize)
// still realizes the configured Locality; a source alone on its leaf falls
// back to uniform.
func (l Local) Dest(src int, rng *rand.Rand) int {
	if l.LeafSize > 1 && rng.Float64() < l.Locality {
		base := src - src%l.LeafSize
		end := base + l.LeafSize
		if end > l.Nodes {
			end = l.Nodes
		}
		if peers := end - base - 1; peers > 0 {
			d := base + rng.Intn(peers)
			if d >= src {
				d++
			}
			return d
		}
	}
	for {
		d := rng.Intn(l.Nodes - 1)
		if d >= src {
			d++
		}
		if d != src {
			return d
		}
	}
}

// Tornado sends every packet halfway around the PID space:
// dst = (src + N/2) mod N — the classic adversarial permutation for
// direct networks, benign on fat-trees but useful as a regression workload.
func Tornado(nodes int) PermutationPattern {
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = (i + nodes/2) % nodes
	}
	return PermutationPattern{Label: "tornado", Perm: perm}
}
