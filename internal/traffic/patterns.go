package traffic

import (
	"fmt"
	"math/rand"
)

// MultiHotspot generalizes Centric to several hotspots: with probability
// Fraction the destination is drawn uniformly from the hotspot set,
// otherwise uniformly from all other nodes. Spreading the concentration
// over k destinations multiplies the aggregate sink capacity by k, which is
// how real systems dilute the single-sink bound the centric pattern hits.
type MultiHotspot struct {
	Nodes    int
	Hotspots []int
	Fraction float64
}

// Name implements Pattern.
func (m MultiHotspot) Name() string {
	return fmt.Sprintf("hotspot%dx%.0f%%", len(m.Hotspots), m.Fraction*100)
}

// Dest implements Pattern.
func (m MultiHotspot) Dest(src int, rng *rand.Rand) int {
	if len(m.Hotspots) > 0 && rng.Float64() < m.Fraction {
		d := m.Hotspots[rng.Intn(len(m.Hotspots))]
		if d != src {
			return d
		}
	}
	for {
		d := rng.Intn(m.Nodes - 1)
		if d >= src {
			d++
		}
		if d != src {
			return d
		}
	}
}

// Local draws destinations with a bias toward nearby nodes: with probability
// Locality the destination shares the source's leaf switch (PID block of
// size m/2); otherwise it is uniform. Locality stresses the short intra-leaf
// paths the fat-tree serves without any ascent.
type Local struct {
	Nodes    int
	LeafSize int // nodes per leaf switch (m/2)
	Locality float64
}

// Name implements Pattern.
func (l Local) Name() string { return fmt.Sprintf("local%.0f%%", l.Locality*100) }

// Dest implements Pattern.
func (l Local) Dest(src int, rng *rand.Rand) int {
	if l.LeafSize > 1 && rng.Float64() < l.Locality {
		base := src - src%l.LeafSize
		d := base + rng.Intn(l.LeafSize-1)
		if d >= src {
			d++
		}
		if d < l.Nodes && d != src {
			return d
		}
	}
	for {
		d := rng.Intn(l.Nodes - 1)
		if d >= src {
			d++
		}
		if d != src {
			return d
		}
	}
}

// Tornado sends every packet halfway around the PID space:
// dst = (src + N/2) mod N — the classic adversarial permutation for
// direct networks, benign on fat-trees but useful as a regression workload.
func Tornado(nodes int) PermutationPattern {
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = (i + nodes/2) % nodes
	}
	return PermutationPattern{Label: "tornado", Perm: perm}
}
