package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformNeverSelf(t *testing.T) {
	u := Uniform{Nodes: 16}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 16)
	for i := 0; i < 20000; i++ {
		src := i % 16
		d := u.Dest(src, rng)
		if d == src || d < 0 || d >= 16 {
			t.Fatalf("Dest(%d) = %d", src, d)
		}
		counts[d]++
	}
	// Roughly uniform: each node receives ~20000/16 = 1250.
	for n, c := range counts {
		if c < 1000 || c > 1500 {
			t.Errorf("node %d received %d, expected ~1250", n, c)
		}
	}
}

func TestCentricFraction(t *testing.T) {
	c := Centric{Nodes: 32, Hotspot: 5, Fraction: 0.5}
	rng := rand.New(rand.NewSource(2))
	hot := 0
	total := 60000
	for i := 0; i < total; i++ {
		src := i % 32
		if src == c.Hotspot {
			continue
		}
		if d := c.Dest(src, rng); d == c.Hotspot {
			hot++
		}
	}
	sent := total - total/32
	frac := float64(hot) / float64(sent)
	// 50% to the hotspot plus the uniform residue (0.5 * 1/31).
	want := 0.5 + 0.5/31.0
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("hotspot fraction = %.3f, want ~%.3f", frac, want)
	}
}

func TestCentricHotspotSource(t *testing.T) {
	c := Centric{Nodes: 8, Hotspot: 3, Fraction: 1.0}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if d := c.Dest(3, rng); d == 3 {
			t.Fatal("hotspot sent to itself")
		}
	}
	// Non-hotspot sources always hit the hotspot at Fraction 1.
	for i := 0; i < 100; i++ {
		if d := c.Dest(0, rng); d != 3 {
			t.Fatalf("Fraction=1 sent to %d", d)
		}
	}
}

func TestPermutations(t *testing.T) {
	for _, nodes := range []int{8, 16, 32} {
		bc := BitComplement(nodes)
		for i := 0; i < nodes; i++ {
			if bc.Perm[i] != nodes-1-i {
				t.Fatalf("bitcomplement[%d] = %d", i, bc.Perm[i])
			}
		}
		br := BitReversal(nodes)
		seen := map[int]bool{}
		for i := 0; i < nodes; i++ {
			d := br.Perm[i]
			if d < 0 || d >= nodes {
				t.Fatalf("bitreversal[%d] = %d", i, d)
			}
			seen[d] = true
		}
		if len(seen) != nodes { // power-of-two sizes: a true permutation
			t.Fatalf("bitreversal over %d nodes hits only %d destinations", nodes, len(seen))
		}
		sh := Shift(nodes, 1)
		if sh.Perm[nodes-1] != 0 || sh.Perm[0] != 1 {
			t.Fatalf("shift wrong: %v", sh.Perm[:2])
		}
	}
}

func TestPermutationPatternFixedPointFallback(t *testing.T) {
	p := PermutationPattern{Label: "id", Perm: []int{0, 1, 2, 3}}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		if d := p.Dest(2, rng); d == 2 {
			t.Fatal("fixed point returned itself")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "centric", "bitcomplement", "bitreversal", "shift"} {
		p, err := ByName(name, 16, 0)
		if err != nil || p == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("pattern %q has empty name", name)
		}
	}
	if _, err := ByName("nope", 16, 0); err == nil {
		t.Error("ByName(nope): expected error")
	}
	if _, err := ByName("uniform", 1, 0); err == nil {
		t.Error("ByName with 1 node: expected error")
	}
}

// Property: every pattern always returns a valid non-self destination.
func TestQuickValidDestinations(t *testing.T) {
	nodes := 64
	pats := []Pattern{
		Uniform{Nodes: nodes},
		Centric{Nodes: nodes, Hotspot: 7, Fraction: 0.5},
		BitComplement(nodes),
		BitReversal(nodes),
		Shift(nodes, 3),
	}
	rng := rand.New(rand.NewSource(9))
	for _, p := range pats {
		f := func(rawSrc uint16) bool {
			src := int(rawSrc) % nodes
			d := p.Dest(src, rng)
			return d >= 0 && d < nodes && d != src
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(10))}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
