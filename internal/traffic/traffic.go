// Package traffic provides the destination-selection patterns the paper's
// evaluation uses — uniform random and p%-centric (hotspot) — plus the
// permutation patterns commonly used to stress fat-tree routing, and
// deterministic per-source random streams so simulations are reproducible.
package traffic

import (
	"fmt"
	"math/rand"
)

// Pattern selects, for each generated packet, its destination node.
// Implementations must be safe for concurrent use only if every source uses
// its own *rand.Rand, which is how the simulator drives them.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest returns the destination for a packet generated at src, in
	// [0, nodes) and != src. rng is the source's private random stream.
	Dest(src int, rng *rand.Rand) int
}

// Uniform is the paper's uniform traffic pattern: every packet goes to a
// destination drawn uniformly from all other nodes.
type Uniform struct {
	Nodes int
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *rand.Rand) int {
	d := rng.Intn(u.Nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Centric is the paper's hotspot pattern: with probability Fraction the
// destination is the fixed Hotspot node; otherwise it is uniform over the
// remaining nodes. The paper simulates Fraction = 0.5 ("50 out of 100
// packets are sent from all source processing nodes to this particular
// processing node"). A source equal to the hotspot falls back to uniform.
type Centric struct {
	Nodes    int
	Hotspot  int
	Fraction float64
}

// Name implements Pattern.
func (c Centric) Name() string {
	return fmt.Sprintf("centric%.0f%%", c.Fraction*100)
}

// Dest implements Pattern.
func (c Centric) Dest(src int, rng *rand.Rand) int {
	if src != c.Hotspot && rng.Float64() < c.Fraction {
		return c.Hotspot
	}
	for {
		d := rng.Intn(c.Nodes - 1)
		if d >= src {
			d++
		}
		if d != src {
			return d
		}
	}
}

// PermutationPattern sends every packet of a source to the fixed destination
// perm[src]. Sources whose image is themselves send uniformly instead (so
// the open-loop generator never stalls on a fixed point).
type PermutationPattern struct {
	Label string
	Perm  []int
}

// Name implements Pattern.
func (p PermutationPattern) Name() string { return p.Label }

// Dest implements Pattern.
func (p PermutationPattern) Dest(src int, rng *rand.Rand) int {
	d := p.Perm[src]
	if d == src {
		d = rng.Intn(len(p.Perm) - 1)
		if d >= src {
			d++
		}
	}
	return d
}

// BitComplement returns the PID-complement permutation dst = N-1-src, which
// makes every pair maximally distant (gcp length 0).
func BitComplement(nodes int) PermutationPattern {
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = nodes - 1 - i
	}
	return PermutationPattern{Label: "bitcomplement", Perm: perm}
}

// BitReversal returns the bit-reversal permutation over PIDs, padded to the
// next power of two and reduced modulo the node count; a classic adversary
// for tree ascents.
func BitReversal(nodes int) PermutationPattern {
	bits := 0
	for 1<<bits < nodes {
		bits++
	}
	perm := make([]int, nodes)
	for i := range perm {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		perm[i] = r % nodes
	}
	return PermutationPattern{Label: "bitreversal", Perm: perm}
}

// Shift returns the cyclic shift permutation dst = (src + k) mod N.
func Shift(nodes, k int) PermutationPattern {
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = ((i+k)%nodes + nodes) % nodes
	}
	return PermutationPattern{Label: fmt.Sprintf("shift%+d", k), Perm: perm}
}

// ByName builds one of the named patterns: "uniform", "centric" (50% to node
// hotspot), "bitcomplement", "bitreversal", "shift".
func ByName(name string, nodes, hotspot int) (Pattern, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 nodes, got %d", nodes)
	}
	switch name {
	case "uniform":
		return Uniform{Nodes: nodes}, nil
	case "centric":
		return Centric{Nodes: nodes, Hotspot: hotspot, Fraction: 0.5}, nil
	case "bitcomplement":
		return BitComplement(nodes), nil
	case "bitreversal":
		return BitReversal(nodes), nil
	case "shift":
		return Shift(nodes, 1), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}
