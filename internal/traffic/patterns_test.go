package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiHotspotDistribution(t *testing.T) {
	m := MultiHotspot{Nodes: 32, Hotspots: []int{3, 9, 20}, Fraction: 0.6}
	rng := rand.New(rand.NewSource(1))
	hits := map[int]int{}
	total := 60000
	for i := 0; i < total; i++ {
		src := i % 32
		d := m.Dest(src, rng)
		if d == src || d < 0 || d >= 32 {
			t.Fatalf("Dest(%d) = %d", src, d)
		}
		hits[d]++
	}
	hot := hits[3] + hits[9] + hits[20]
	frac := float64(hot) / float64(total)
	if math.Abs(frac-0.62) > 0.05 { // 0.6 direct + uniform residue
		t.Errorf("hotspot fraction %.3f", frac)
	}
	// The three hotspots receive comparable shares.
	for _, h := range []int{3, 9, 20} {
		if hits[h] < hot/3-2000 || hits[h] > hot/3+2000 {
			t.Errorf("hotspot %d received %d of %d", h, hits[h], hot)
		}
	}
	if m.Name() != "hotspot3x60%" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMultiHotspotNoHotspots(t *testing.T) {
	m := MultiHotspot{Nodes: 8, Fraction: 0.9}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		if d := m.Dest(1, rng); d == 1 || d < 0 || d >= 8 {
			t.Fatalf("Dest = %d", d)
		}
	}
}

func TestMultiHotspotSelfHotspot(t *testing.T) {
	// A source that is itself the only hotspot falls back to uniform.
	m := MultiHotspot{Nodes: 8, Hotspots: []int{2}, Fraction: 1.0}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if d := m.Dest(2, rng); d == 2 {
			t.Fatal("hotspot sent to itself")
		}
	}
}

// TestMultiHotspotMemberFraction pins the realized hotspot fraction for a
// source that is itself a hotspot: the draw must redirect to the remaining
// hotspots instead of falling through to uniform (which diluted the
// configured fraction for hotspot members).
func TestMultiHotspotMemberFraction(t *testing.T) {
	m := MultiHotspot{Nodes: 32, Hotspots: []int{3, 9, 20}, Fraction: 0.6}
	rng := rand.New(rand.NewSource(6))
	hits := map[int]int{}
	total := 60000
	for i := 0; i < total; i++ {
		d := m.Dest(3, rng) // src 3 is a hotspot
		if d == 3 || d < 0 || d >= 32 {
			t.Fatalf("Dest(3) = %d", d)
		}
		hits[d]++
	}
	hot := hits[9] + hits[20]
	frac := float64(hot) / float64(total)
	// 0.6 direct (split over the two other hotspots) + uniform residue
	// 0.4 * 2/31. Tolerance 0.02 ≫ 3σ of the binomial at 60k draws — the
	// pre-fix fallthrough realized ≈0.43 here and fails decisively.
	want := 0.6 + 0.4*2.0/31.0
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("hotspot-member realized fraction %.3f, want %.3f", frac, want)
	}
	// The redraw spreads evenly over the remaining hotspots.
	if diff := hits[9] - hits[20]; diff < -2000 || diff > 2000 {
		t.Errorf("remaining hotspots imbalanced: %d vs %d", hits[9], hits[20])
	}
}

func TestLocalPattern(t *testing.T) {
	l := Local{Nodes: 32, LeafSize: 4, Locality: 0.8}
	rng := rand.New(rand.NewSource(4))
	local, total := 0, 40000
	for i := 0; i < total; i++ {
		src := i % 32
		d := l.Dest(src, rng)
		if d == src || d < 0 || d >= 32 {
			t.Fatalf("Dest(%d) = %d", src, d)
		}
		if d/4 == src/4 {
			local++
		}
	}
	frac := float64(local) / float64(total)
	// 0.8 direct plus the uniform residue landing in-leaf (0.2 * 3/31).
	if math.Abs(frac-0.82) > 0.05 {
		t.Errorf("local fraction %.3f", frac)
	}
	if l.Name() != "local80%" {
		t.Errorf("Name = %q", l.Name())
	}
}

// TestLocalPartialLeaf pins the realized locality when Nodes is not a
// multiple of LeafSize: sources on the truncated last leaf must draw within
// the valid leaf block instead of silently falling back to uniform.
func TestLocalPartialLeaf(t *testing.T) {
	// Last leaf block is [8, 10): two nodes, one in-leaf peer each.
	l := Local{Nodes: 10, LeafSize: 4, Locality: 0.8}
	rng := rand.New(rand.NewSource(7))
	local, total := 0, 40000
	for i := 0; i < total; i++ {
		d := l.Dest(9, rng)
		if d == 9 || d < 0 || d >= 10 {
			t.Fatalf("Dest(9) = %d", d)
		}
		if d == 8 {
			local++
		}
	}
	frac := float64(local) / float64(total)
	// 0.8 direct to the single valid peer + uniform residue 0.2 * 1/9. The
	// pre-fix fallback realized ≈0.31 (the biased draw survived only when it
	// happened to land on node 8 before the d >= Nodes check).
	want := 0.8 + 0.2/9.0
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("partial-leaf locality %.3f, want %.3f", frac, want)
	}
	// A full leaf keeps its exact locality too.
	localFull := 0
	for i := 0; i < total; i++ {
		if d := l.Dest(1, rng); d/4 == 0 {
			localFull++
		}
	}
	fullFrac := float64(localFull) / float64(total)
	if wantFull := 0.8 + 0.2*3.0/9.0; math.Abs(fullFrac-wantFull) > 0.02 {
		t.Errorf("full-leaf locality %.3f, want %.3f", fullFrac, wantFull)
	}
}

func TestLocalDegenerateLeaf(t *testing.T) {
	l := Local{Nodes: 8, LeafSize: 1, Locality: 1.0}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if d := l.Dest(0, rng); d == 0 {
			t.Fatal("self destination")
		}
	}
}

func TestTornado(t *testing.T) {
	tor := Tornado(16)
	for i := 0; i < 16; i++ {
		if tor.Perm[i] != (i+8)%16 {
			t.Fatalf("tornado[%d] = %d", i, tor.Perm[i])
		}
	}
	if tor.Label != "tornado" {
		t.Error("label")
	}
}
