// Package stats collects and summarizes the simulator's performance metrics:
// the paper's two reported quantities — accepted traffic in bytes/ns per
// processing node and average message latency in nanoseconds — plus latency
// percentiles, throughput accounting, and curve assembly for the figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram geometry of the streaming LatencyCollector: log-linear (HDR
// style) buckets with 2^latSubBits linear subbuckets per power-of-two
// octave. A sample v >= 1 in [2^E, 2^(E+1)) lands in the subbucket whose
// width is 2^E / 2^latSubBits, so the bucket's lower edge underestimates v
// by at most one part in 2^latSubBits — a relative quantization error
// bounded by 2^-10 < 0.1% on every reported percentile. Samples below 1 ns
// clamp into the first bucket (no simulated latency is sub-nanosecond);
// octaves cover E in [0, latOctaves), far beyond any simulated horizon.
const (
	latSubBits = 10
	latSubs    = 1 << latSubBits
	latOctaves = 64
	latBuckets = latOctaves * latSubs
)

// latIndex maps a sample to its bucket. The exponent and mantissa come
// straight from the float64 bit pattern: the top latSubBits mantissa bits
// are the linear subbucket within the sample's octave.
func latIndex(v float64) int {
	if v < 1 {
		return 0
	}
	b := math.Float64bits(v)
	e := int(b>>52&0x7ff) - 1023
	sub := int(b >> (52 - latSubBits) & (latSubs - 1))
	i := e<<latSubBits | sub
	if i >= latBuckets {
		return latBuckets - 1
	}
	return i
}

// latValue returns the lower edge of bucket i — the representative value a
// percentile query reports for samples binned there.
func latValue(i int) float64 {
	return math.Ldexp(1+float64(i&(latSubs-1))/latSubs, i>>latSubBits)
}

// LatencyCollector accumulates per-packet latencies (ns) inside the
// measurement window. The zero value is a streaming collector: Add is O(1)
// and allocation-free after the first call, Mean/Count/Max/Min are exact,
// and Percentile answers from a log-linear histogram with relative
// quantization error below 0.1% (see latSubBits). Memory is a fixed bucket
// array, independent of the sample count — the simulator's hot path retains
// no samples. NewExactLatencyCollector returns a sample-retaining collector
// with exact nearest-rank percentiles, for tests and offline analysis.
type LatencyCollector struct {
	count int64
	sum   float64
	min   float64
	max   float64
	// counts is the streaming histogram, allocated on first Add.
	counts []int64
	// exact marks a sample-retaining collector; samples holds insertion
	// order, sorted is the lazily rebuilt ascending copy (never the samples
	// themselves: Percentile must not disturb insertion order).
	exact   bool
	samples []float64
	sorted  []float64
}

// NewExactLatencyCollector returns a collector that retains every sample
// and answers Percentile by exact nearest-rank. Memory grows with the
// sample count; the streaming zero value is the simulator's choice.
func NewExactLatencyCollector() *LatencyCollector {
	return &LatencyCollector{exact: true}
}

// Add records one latency sample.
func (c *LatencyCollector) Add(ns float64) {
	c.count++
	c.sum += ns
	if c.count == 1 || ns > c.max {
		c.max = ns
	}
	if c.count == 1 || ns < c.min {
		c.min = ns
	}
	if c.exact {
		c.samples = append(c.samples, ns)
		c.sorted = nil
		return
	}
	if c.counts == nil {
		c.counts = make([]int64, latBuckets)
	}
	c.counts[latIndex(ns)]++
}

// Merge folds another collector's samples into c, as if every sample had
// been Added to c directly. Count, Min, Max and the histogram are exactly
// order-independent; Sum (and so Mean) is exact whenever the samples are
// integer-valued with a total below 2^53 — true for the simulator, whose
// latencies are integer nanosecond differences — which makes Merge safe for
// combining per-shard collectors without perturbing results. Both collectors
// must be the same mode (streaming or exact).
func (c *LatencyCollector) Merge(o *LatencyCollector) {
	if o == nil || o.count == 0 {
		return
	}
	if o.exact != c.exact {
		panic("stats: merging collectors of different modes")
	}
	if c.count == 0 || o.max > c.max {
		c.max = o.max
	}
	if c.count == 0 || o.min < c.min {
		c.min = o.min
	}
	c.count += o.count
	c.sum += o.sum
	if c.exact {
		c.samples = append(c.samples, o.samples...)
		c.sorted = nil
		return
	}
	if c.counts == nil {
		c.counts = make([]int64, latBuckets)
	}
	for i, n := range o.counts {
		c.counts[i] += n
	}
}

// Count returns the number of samples.
func (c *LatencyCollector) Count() int { return int(c.count) }

// Mean returns the average latency, or 0 with no samples.
func (c *LatencyCollector) Mean() float64 {
	if c.count == 0 {
		return 0
	}
	return c.sum / float64(c.count)
}

// Percentile returns the q-quantile (q in [0,1]) by nearest-rank, or 0 with
// no samples. The extreme ranks (the minimum and maximum sample) are always
// exact; interior ranks on a streaming collector carry the histogram's
// sub-0.1% quantization error.
func (c *LatencyCollector) Percentile(q float64) float64 {
	if c.count == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(c.count)))
	if want < 1 {
		want = 1
	}
	if want >= c.count {
		return c.max
	}
	if want == 1 {
		return c.min
	}
	if c.exact {
		if c.sorted == nil {
			c.sorted = append([]float64(nil), c.samples...)
			sort.Float64s(c.sorted)
		}
		return c.sorted[want-1]
	}
	var acc int64
	for i, n := range c.counts {
		acc += n
		if acc >= want {
			return latValue(i)
		}
	}
	return c.max
}

// Max returns the largest sample, or 0 with no samples. Tracked streaming
// in both modes — no sort, no pass over retained samples.
func (c *LatencyCollector) Max() float64 { return c.max }

// Min returns the smallest sample, or 0 with no samples.
func (c *LatencyCollector) Min() float64 {
	if c.count == 0 {
		return 0
	}
	return c.min
}

// Point is one measured operating point of a latency/throughput curve.
type Point struct {
	// OfferedLoad is the injection rate the generators attempted, in
	// bytes/ns per node.
	OfferedLoad float64
	// Accepted is the delivered traffic, in bytes/ns per node — the paper's
	// x-axis.
	Accepted float64
	// MeanLatencyNs is the average generation-to-delivery latency of packets
	// delivered in the measurement window — the paper's y-axis.
	MeanLatencyNs float64
	// P99LatencyNs is the 99th-percentile latency.
	P99LatencyNs float64
	// Delivered and Generated count packets in the measurement window.
	Delivered, Generated int64
	// Saturated marks points where accepted traffic fell visibly below
	// offered traffic (the run crossed the saturation knee).
	Saturated bool
}

// Curve is a labelled series of points, e.g. "MLID 2 VL" on one network.
type Curve struct {
	Label  string
	Points []Point
}

// PeakAccepted returns the curve's maximum accepted traffic — the throughput
// number used in the paper's Observations ("the throughput of the MLID
// scheme is higher...").
func (c Curve) PeakAccepted() float64 {
	var m float64
	for _, p := range c.Points {
		if p.Accepted > m {
			m = p.Accepted
		}
	}
	return m
}

// LowLoadLatency returns the mean latency of the curve's lowest offered-load
// point, or 0 for an empty curve.
func (c Curve) LowLoadLatency() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.OfferedLoad < best.OfferedLoad {
			best = p
		}
	}
	return best.MeanLatencyNs
}

// CSV renders the curves in long form: label,offered,accepted,latency,p99.
func CSV(curves []Curve) string {
	var b strings.Builder
	b.WriteString("series,offered_bytes_per_ns_node,accepted_bytes_per_ns_node,mean_latency_ns,p99_latency_ns,delivered,generated,saturated\n")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%s,%.6f,%.6f,%.2f,%.2f,%d,%d,%t\n",
				c.Label, p.OfferedLoad, p.Accepted, p.MeanLatencyNs, p.P99LatencyNs,
				p.Delivered, p.Generated, p.Saturated)
		}
	}
	return b.String()
}

// ASCIIChart renders accepted-traffic vs latency curves as a fixed-size text
// chart, mirroring the paper's figures for terminal inspection. Each curve
// gets a distinct marker; the x-axis is accepted traffic and the y-axis is
// mean latency (log10 scale, since latencies diverge at saturation).
func ASCIIChart(title string, curves []Curve, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 20
	}
	var maxX, maxY, minY float64
	minY = math.Inf(1)
	any := false
	for _, c := range curves {
		for _, p := range c.Points {
			if p.Accepted > maxX {
				maxX = p.Accepted
			}
			if p.MeanLatencyNs > maxY {
				maxY = p.MeanLatencyNs
			}
			if p.MeanLatencyNs > 0 && p.MeanLatencyNs < minY {
				minY = p.MeanLatencyNs
			}
			any = true
		}
	}
	if !any || maxX == 0 || maxY == 0 {
		return title + ": (no data)\n"
	}
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	if logMax-logMin < 1e-9 {
		logMax = logMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'M', 'S', 'o', 'x', '+', '*', '#', '@'}
	for ci, c := range curves {
		mark := markers[ci%len(markers)]
		for _, p := range c.Points {
			if p.MeanLatencyNs <= 0 {
				continue
			}
			x := int(p.Accepted / maxX * float64(width-1))
			y := int((math.Log10(p.MeanLatencyNs) - logMin) / (logMax - logMin) * float64(height-1))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\nlatency ns (log) %.0f..%.0f | accepted bytes/ns/node 0..%.4f\n", title, minY, maxY, maxX)
	for i, row := range grid {
		marker := "|"
		if i == height-1 {
			marker = "+"
		}
		fmt.Fprintf(&b, "%s%s\n", marker, string(row))
	}
	b.WriteString(" " + strings.Repeat("-", width) + "\n")
	for ci, c := range curves {
		fmt.Fprintf(&b, "  %c = %s (peak %.4f B/ns/node)\n", markers[ci%len(markers)], c.Label, c.PeakAccepted())
	}
	return b.String()
}
