package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestExactModeMax is the regression for the old Max, which sorted the whole
// sample slice to read the last element: Max must answer streaming, before
// any Percentile call, and must not depend on sort state.
func TestExactModeMax(t *testing.T) {
	c := NewExactLatencyCollector()
	for _, v := range []float64{40, 10, 50, 20, 30} {
		c.Add(v)
	}
	if got := c.Max(); got != 50 {
		t.Errorf("Max before any Percentile = %v, want 50", got)
	}
	if got := c.Min(); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
	c.Add(60)
	if got := c.Max(); got != 60 {
		t.Errorf("Max after Add = %v, want 60", got)
	}
}

// TestExactModePercentileDoesNotMutate is the regression for the old
// Percentile, which sorted the retained samples in place and destroyed
// insertion order.
func TestExactModePercentileDoesNotMutate(t *testing.T) {
	c := NewExactLatencyCollector()
	in := []float64{40, 10, 50, 20, 30}
	for _, v := range in {
		c.Add(v)
	}
	if got := c.Percentile(0.5); got != 30 {
		t.Errorf("P50 = %v, want 30", got)
	}
	for i, v := range c.samples {
		if v != in[i] {
			t.Fatalf("Percentile mutated samples: got %v, want %v", c.samples, in)
		}
	}
	// A later Add must invalidate the sorted cache.
	c.Add(5)
	if got := c.Percentile(0.0); got != 5 {
		t.Errorf("P0 after Add = %v, want 5", got)
	}
}

func TestStreamingModeRetainsNoSamples(t *testing.T) {
	var c LatencyCollector
	for i := 0; i < 1000; i++ {
		c.Add(float64(100 + i))
	}
	if c.samples != nil {
		t.Error("streaming collector retained samples")
	}
	if len(c.counts) != latBuckets {
		t.Errorf("histogram size = %d, want %d", len(c.counts), latBuckets)
	}
}

func TestLatIndexValueRoundTrip(t *testing.T) {
	// Every sample must bin into a bucket whose lower edge is <= the sample
	// and within one part in 2^latSubBits of it.
	for _, v := range []float64{1, 1.0009, 2, 3, 100, 111, 1054, 65536.5, 1e9, 3.7e12} {
		i := latIndex(v)
		lo := latValue(i)
		if lo > v {
			t.Errorf("latValue(latIndex(%v)) = %v > sample", v, lo)
		}
		if rel := (v - lo) / v; rel >= 1.0/latSubs {
			t.Errorf("quantization error for %v: edge %v, rel %v", v, lo, rel)
		}
	}
	// Sub-1 samples clamp into bucket 0; out-of-range samples clamp into the
	// last bucket instead of indexing out of bounds.
	if latIndex(0.25) != 0 || latIndex(0) != 0 {
		t.Error("sub-1 samples must clamp to bucket 0")
	}
	if latIndex(math.MaxFloat64) != latBuckets-1 {
		t.Error("huge samples must clamp to the last bucket")
	}
}

// exactNearestRank is the reference quantile: nearest-rank over a sorted
// copy, matching the pre-histogram collector semantics.
func exactNearestRank(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestStreamingPercentileErrorBound is the seeded quick-check: adversarial
// distributions through the streaming histogram, P99/P999 compared against
// exact nearest-rank, relative error asserted below the documented 0.1%.
func TestStreamingPercentileErrorBound(t *testing.T) {
	const n = 20000
	gens := map[string]func(r *rand.Rand) float64{
		// Two tight modes three decades apart: P99 sits inside the far mode.
		"bimodal": func(r *rand.Rand) float64 {
			if r.Float64() < 0.97 {
				return 200 + 20*r.Float64()
			}
			return 150000 + 5000*r.Float64()
		},
		// Pareto-style heavy tail: the top ranks spread over many octaves.
		"heavy-tail": func(r *rand.Rand) float64 {
			return 100 / math.Pow(1-r.Float64(), 1.5)
		},
		// Degenerate: every sample identical, percentiles must be exact.
		"constant": func(r *rand.Rand) float64 { return 1234.5 },
		// Uniform over a wide range, non-integer samples.
		"uniform": func(r *rand.Rand) float64 { return 1 + 1e6*r.Float64() },
	}
	for name, gen := range gens {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			var c LatencyCollector
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := gen(r)
				c.Add(v)
				samples = append(samples, v)
			}
			for _, q := range []float64{0.99, 0.999} {
				want := exactNearestRank(samples, q)
				got := c.Percentile(q)
				rel := math.Abs(got-want) / want
				if rel > 0.001 {
					t.Errorf("%s seed %d P%g: got %v, want %v, rel err %v > 0.1%%",
						name, seed, q*100, got, want, rel)
				}
			}
			// Exact aggregates must be exact regardless of distribution.
			if c.Max() != exactNearestRank(samples, 1) {
				t.Errorf("%s seed %d: Max = %v, want %v", name, seed, c.Max(), exactNearestRank(samples, 1))
			}
			if c.Count() != n {
				t.Errorf("%s seed %d: Count = %d", name, seed, c.Count())
			}
		}
	}
}
