package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(100, 16)
	if h.Total() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram not zeroed")
	}
	if !strings.Contains(h.Render(20), "no samples") {
		t.Error("empty render")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(100, 8)
	h.Add(50)   // under
	h.Add(150)  // bucket 0: [100,200)
	h.Add(350)  // bucket 1: [200,400)
	h.Add(350)  // bucket 1
	h.Add(1e12) // clamped to last bucket
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if _, _, c := h.Bucket(0); c != 1 {
		t.Errorf("bucket 0 count %d", c)
	}
	if _, _, c := h.Bucket(1); c != 2 {
		t.Errorf("bucket 1 count %d", c)
	}
	if _, _, c := h.Bucket(7); c != 1 {
		t.Errorf("last bucket count %d", c)
	}
	if h.Max() != 1e12 {
		t.Errorf("Max = %v", h.Max())
	}
	lo, hi, _ := h.Bucket(2)
	if lo != 400 || hi != 800 {
		t.Errorf("bucket 2 range %v-%v", lo, hi)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100, 20)
	for i := 0; i < 90; i++ {
		h.Add(150) // bucket 0, hi = 200
	}
	for i := 0; i < 10; i++ {
		h.Add(10_000)
	}
	if q := h.Quantile(0.5); q != 200 {
		t.Errorf("Q50 = %v, want 200", q)
	}
	if q := h.Quantile(0.99); q < 10_000 {
		t.Errorf("Q99 = %v, want >= 10000", q)
	}
	// All-under case.
	h2 := NewHistogram(1000, 4)
	h2.Add(5)
	if q := h2.Quantile(0.9); q != 1000 {
		t.Errorf("under-only Q90 = %v", q)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(100, 8)
	h.Add(50)
	for i := 0; i < 30; i++ {
		h.Add(300)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "<100ns") {
		t.Errorf("render:\n%s", out)
	}
	if h.Render(0) == "" {
		t.Error("zero-width render empty")
	}
}

func TestHistogramDefensiveConstruction(t *testing.T) {
	h := NewHistogram(-5, 0)
	h.Add(3)
	if h.Total() != 1 {
		t.Error("defensive construction broken")
	}
}

// Property: quantile is monotone in q and bounded by Max-or-bucket-edge.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(10, 24)
	for i := 0; i < 500; i++ {
		h.Add(10 + rng.Float64()*1e6)
	}
	f := func(a, b uint8) bool {
		qa, qb := float64(a)/255, float64(b)/255
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: total equals the sum over buckets plus the under-count.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(vals []uint32) bool {
		h := NewHistogram(100, 16)
		for _, v := range vals {
			h.Add(float64(v % 1_000_000))
		}
		var sum int64 = h.under
		for i := range h.counts {
			sum += h.counts[i]
		}
		return sum == h.Total() && h.Total() == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
