package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-scaled latency histogram: bucket i counts samples in
// [base * 2^i, base * 2^(i+1)). Log buckets fit latency distributions whose
// tails stretch by orders of magnitude at saturation.
type Histogram struct {
	base    float64
	counts  []int64
	under   int64
	total   int64
	sum     float64
	maxSeen float64
}

// NewHistogram returns a histogram whose first bucket starts at base (ns)
// and which carries the given number of doubling buckets.
func NewHistogram(base float64, buckets int) *Histogram {
	if base <= 0 {
		base = 1
	}
	if buckets < 1 {
		buckets = 32
	}
	return &Histogram{base: base, counts: make([]int64, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.base {
		h.under++
		return
	}
	i := int(math.Log2(v / h.base))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.maxSeen }

// Bucket returns bucket i's range and count.
func (h *Histogram) Bucket(i int) (lo, hi float64, count int64) {
	lo = h.base * math.Pow(2, float64(i))
	return lo, lo * 2, h.counts[i]
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from the
// bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	want := int64(math.Ceil(q * float64(h.total)))
	if want < 1 {
		want = 1
	}
	acc := h.under
	if acc >= want {
		return h.base
	}
	for i, c := range h.counts {
		acc += c
		if acc >= want {
			_, hi, _ := h.Bucket(i)
			return hi
		}
	}
	return h.maxSeen
}

// Render draws the histogram as text bars, skipping empty leading and
// trailing buckets.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	if h.total == 0 {
		return "(no samples)\n"
	}
	first, last := -1, -1
	var peak int64
	for i, c := range h.counts {
		if c > 0 {
			if first == -1 {
				first = i
			}
			last = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s  %8d\n", fmt.Sprintf("<%.0fns", h.base), h.under)
		if h.under > peak {
			peak = h.under
		}
	}
	if first == -1 {
		return b.String()
	}
	for i := first; i <= last; i++ {
		lo, hi, c := h.Bucket(i)
		bar := strings.Repeat("#", int(float64(width)*float64(c)/float64(peak)))
		fmt.Fprintf(&b, "%6.0f-%-6.0f %8d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
