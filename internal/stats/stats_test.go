package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLatencyCollectorEmpty(t *testing.T) {
	var c LatencyCollector
	if c.Count() != 0 || c.Mean() != 0 || c.Percentile(0.5) != 0 || c.Max() != 0 {
		t.Error("empty collector not zeroed")
	}
}

func TestLatencyCollectorStats(t *testing.T) {
	var c LatencyCollector
	for _, v := range []float64{10, 20, 30, 40, 50} {
		c.Add(v)
	}
	if c.Count() != 5 {
		t.Errorf("Count = %d", c.Count())
	}
	if c.Mean() != 30 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if got := c.Percentile(0.5); got != 30 {
		t.Errorf("P50 = %v", got)
	}
	if got := c.Percentile(1.0); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := c.Percentile(0.0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if c.Max() != 50 {
		t.Errorf("Max = %v", c.Max())
	}
	// Adding after a sort must re-sort.
	c.Add(5)
	if got := c.Percentile(0.0); got != 5 {
		t.Errorf("P0 after Add = %v", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var c LatencyCollector
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Percentile(0.99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := c.Percentile(0.01); got != 1 {
		t.Errorf("P1 = %v, want 1", got)
	}
}

func TestCurveSummaries(t *testing.T) {
	c := Curve{Label: "MLID 1VL", Points: []Point{
		{OfferedLoad: 0.1, Accepted: 0.1, MeanLatencyNs: 500},
		{OfferedLoad: 0.5, Accepted: 0.45, MeanLatencyNs: 900},
		{OfferedLoad: 0.9, Accepted: 0.48, MeanLatencyNs: 9000, Saturated: true},
	}}
	if got := c.PeakAccepted(); got != 0.48 {
		t.Errorf("PeakAccepted = %v", got)
	}
	if got := c.LowLoadLatency(); got != 500 {
		t.Errorf("LowLoadLatency = %v", got)
	}
	if (Curve{}).LowLoadLatency() != 0 || (Curve{}).PeakAccepted() != 0 {
		t.Error("empty curve summaries not zero")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]Curve{{Label: "S", Points: []Point{{OfferedLoad: 0.25, Accepted: 0.2, MeanLatencyNs: 123.4, Delivered: 10, Generated: 12}}}})
	if !strings.HasPrefix(out, "series,") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "S,0.250000,0.200000,123.40") {
		t.Errorf("bad row: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("%d lines", len(lines))
	}
}

func TestASCIIChart(t *testing.T) {
	curves := []Curve{
		{Label: "MLID", Points: []Point{{Accepted: 0.1, MeanLatencyNs: 400}, {Accepted: 0.5, MeanLatencyNs: 2000}}},
		{Label: "SLID", Points: []Point{{Accepted: 0.1, MeanLatencyNs: 450}, {Accepted: 0.3, MeanLatencyNs: 5000}}},
	}
	out := ASCIIChart("test fig", curves, 40, 10)
	if !strings.Contains(out, "test fig") || !strings.Contains(out, "M = MLID") || !strings.Contains(out, "S = SLID") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "M") {
		t.Error("no markers plotted")
	}
	// Degenerate inputs.
	if got := ASCIIChart("empty", nil, 0, 0); !strings.Contains(got, "no data") {
		t.Errorf("empty chart: %q", got)
	}
	one := []Curve{{Label: "x", Points: []Point{{Accepted: 0.2, MeanLatencyNs: 100}}}}
	if got := ASCIIChart("one", one, 0, 0); got == "" || strings.Contains(got, "NaN") {
		t.Errorf("single-point chart: %q", got)
	}
	if math.IsNaN(one[0].PeakAccepted()) {
		t.Error("NaN peak")
	}
}

func TestLatencyCollectorMerge(t *testing.T) {
	samples := []float64{120, 45, 3000, 45, 990, 17, 256000, 64}
	var whole LatencyCollector
	for _, v := range samples {
		whole.Add(v)
	}
	var a, b, empty LatencyCollector
	for i, v := range samples {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	a.Merge(&empty)
	a.Merge(nil)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged summary differs: count=%d/%d mean=%v/%v min=%v/%v max=%v/%v",
			a.Count(), whole.Count(), a.Mean(), whole.Mean(),
			a.Min(), whole.Min(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Percentile(q), whole.Percentile(q); got != want {
			t.Errorf("p%v: merged %v, whole %v", q*100, got, want)
		}
	}
	// Merging into an empty collector adopts min/max from the source.
	var c LatencyCollector
	c.Merge(&whole)
	if c.Min() != whole.Min() || c.Max() != whole.Max() || c.Count() != whole.Count() {
		t.Error("merge into empty collector lost summary state")
	}

	// Exact-mode collectors merge by sample retention.
	ea, eb := NewExactLatencyCollector(), NewExactLatencyCollector()
	ea.Add(10)
	eb.Add(30)
	eb.Add(20)
	ea.Merge(eb)
	if ea.Count() != 3 || ea.Percentile(0.5) != 20 {
		t.Errorf("exact merge: count=%d p50=%v", ea.Count(), ea.Percentile(0.5))
	}
}
