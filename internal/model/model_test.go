package model

import (
	"math"
	"testing"

	"mlid/internal/topology"
)

func TestDefaults(t *testing.T) {
	p := DefaultParams()
	if p.SerNs() != 256 {
		t.Errorf("SerNs = %v", p.SerNs())
	}
	if got := (Params{}).SerNs(); got != 256 {
		t.Errorf("zero params SerNs = %v", got)
	}
	eff := p.ChainEfficiency()
	if math.Abs(eff-256.0/276.0) > 1e-12 {
		t.Errorf("ChainEfficiency = %v", eff)
	}
	// Deeper buffers amortize the credit turnaround.
	deep := Params{BufPackets: 4}.ChainEfficiency()
	if deep <= eff {
		t.Errorf("4-credit efficiency %v <= 1-credit %v", deep, eff)
	}
	// More VLs amortize it the same way.
	if p.LinkEfficiency(4) != deep {
		t.Errorf("4 VLs (%v) != 4 credits (%v)", p.LinkEfficiency(4), deep)
	}
}

func TestUncontendedLatency(t *testing.T) {
	p := DefaultParams()
	// The worked constants from the simulator tests.
	if got := p.UncontendedLatency(3); got != 596 {
		t.Errorf("3 switches: %v, want 596", got)
	}
	if got := p.UncontendedLatency(1); got != 376 {
		t.Errorf("1 switch: %v, want 376", got)
	}
}

func TestPairAndMeanLatency(t *testing.T) {
	tr := topology.MustNew(4, 2)
	p := DefaultParams()
	if got := PairLatency(tr, p, 0, 1); got != 376 {
		t.Errorf("same leaf: %v", got)
	}
	if got := PairLatency(tr, p, 0, topology.NodeID(tr.Nodes()-1)); got != 596 {
		t.Errorf("max distance: %v", got)
	}
	// Mean via closed form equals brute force.
	var total, pairs float64
	for a := 0; a < tr.Nodes(); a++ {
		for b := 0; b < tr.Nodes(); b++ {
			if a != b {
				total += PairLatency(tr, p, topology.NodeID(a), topology.NodeID(b))
				pairs++
			}
		}
	}
	want := total / pairs
	if got := MeanUniformLatency(tr, p); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanUniformLatency %v, brute force %v", got, want)
	}
}

func TestHotspotKneeFormulas(t *testing.T) {
	tr := topology.MustNew(8, 2) // N=32, h=4
	p := DefaultParams()

	slid, err := HotspotKnee(tr, p, "SLID", 0.5, ReceptionIdeal)
	if err != nil {
		t.Fatal(err)
	}
	mlid, err := HotspotKnee(tr, p, "MLID", 0.5, ReceptionIdeal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlid/slid-HotspotRatio(tr)) > 1e-9 {
		t.Errorf("ratio %v, want %v", mlid/slid, HotspotRatio(tr))
	}
	// SLID: eff / (0.5 * 28).
	if want := p.ChainEfficiency() / 14; math.Abs(slid-want) > 1e-12 {
		t.Errorf("SLID knee %v, want %v", slid, want)
	}
	// Link-limited reception: scheme-independent.
	a, _ := HotspotKnee(tr, p, "SLID", 0.5, ReceptionLink)
	b, _ := HotspotKnee(tr, p, "MLID", 0.5, ReceptionLink)
	if a != b {
		t.Errorf("link-limited knees differ: %v vs %v", a, b)
	}
	if want := 1.0 / 16.0; math.Abs(a-want) > 1e-12 {
		t.Errorf("link knee %v, want %v", a, want)
	}
}

func TestHotspotKneeErrors(t *testing.T) {
	tr := topology.MustNew(8, 2)
	p := DefaultParams()
	if _, err := HotspotKnee(tr, p, "MLID", 0, ReceptionIdeal); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := HotspotKnee(tr, p, "MLID", 1.5, ReceptionIdeal); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := HotspotKnee(tr, p, "XLID", 0.5, ReceptionIdeal); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestUniformKneeBound(t *testing.T) {
	p := DefaultParams()
	if got := UniformKneeBound(p, 1); got <= 0.9 || got >= 1 {
		t.Errorf("UniformKneeBound(1) = %v", got)
	}
	if UniformKneeBound(p, 4) <= UniformKneeBound(p, 1) {
		t.Error("bound not increasing in VLs")
	}
}
