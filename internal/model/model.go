// Package model provides closed-form performance predictions for m-port
// n-tree InfiniBand networks under the two routing schemes: uncontended
// latency, link-capacity efficiency under credit-based flow control, and the
// saturation knees (the offered load where accepted traffic stops tracking
// offered traffic) for the uniform and hotspot patterns.
//
// The predictions serve two purposes: they cross-validate the discrete-event
// simulator (the test suite requires the measured knees to fall near the
// predicted ones), and they explain the paper's results structurally — e.g.
// the hotspot knee ratio between MLID and SLID is exactly the number of
// descending paths into the hotspot leaf, (m/2), under ideal reception.
package model

import (
	"fmt"

	"mlid/internal/topology"
)

// Params are the timing constants of the simulated network; zero values take
// the paper's settings.
type Params struct {
	FlyNs      float64 // link flying time (paper: 10)
	RouteNs    float64 // crossbar routing time (paper: 100)
	NsPerByte  float64 // byte injection interval (paper: 1)
	PacketSize float64 // packet size in bytes (paper: 256)
	BufPackets float64 // per-VL buffer depth in packets (paper: 1)
}

// DefaultParams returns the paper's model constants.
func DefaultParams() Params {
	return Params{FlyNs: 10, RouteNs: 100, NsPerByte: 1, PacketSize: 256, BufPackets: 1}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.FlyNs == 0 {
		p.FlyNs = d.FlyNs
	}
	if p.RouteNs == 0 {
		p.RouteNs = d.RouteNs
	}
	if p.NsPerByte == 0 {
		p.NsPerByte = d.NsPerByte
	}
	if p.PacketSize == 0 {
		p.PacketSize = d.PacketSize
	}
	if p.BufPackets == 0 {
		p.BufPackets = d.BufPackets
	}
	return p
}

// SerNs returns the serialization time of one packet.
func (p Params) SerNs() float64 {
	p = p.withDefaults()
	return p.PacketSize * p.NsPerByte
}

// ChainEfficiency is the sustainable utilization of a single (link, VL)
// chain under credit-based flow control with BufPackets credits: after a
// packet's tail leaves the receiver's input buffer, the credit flies back
// (FlyNs) and the next transmission's head flies forward (FlyNs), so each
// buffer turnaround costs 2*FlyNs beyond the serialization time. With k
// credits the gap amortizes over k packets.
func (p Params) ChainEfficiency() float64 { return p.LinkEfficiency(1) }

// LinkEfficiency generalizes ChainEfficiency to several data VLs: a link
// interleaves lanes, so the credit-turnaround gap amortizes over
// BufPackets * dataVLs outstanding packets.
func (p Params) LinkEfficiency(dataVLs int) float64 {
	p = p.withDefaults()
	ser := p.SerNs()
	outstanding := p.BufPackets * float64(dataVLs)
	return ser / (ser + 2*p.FlyNs/outstanding)
}

// UncontendedLatency returns the generation-to-delivery latency of a packet
// crossing s switches with no contention:
//
//	s*RouteNs + (s+1)*FlyNs + SerNs
func (p Params) UncontendedLatency(switches int) float64 {
	p = p.withDefaults()
	return float64(switches)*p.RouteNs + float64(switches+1)*p.FlyNs + p.SerNs()
}

// PairLatency returns the uncontended latency between two distinct nodes.
func PairLatency(t *topology.Tree, p Params, a, b topology.NodeID) float64 {
	return p.UncontendedLatency(t.Distance(a, b))
}

// MeanUniformLatency returns the expected uncontended latency of the uniform
// pattern: the average of PairLatency over all ordered pairs, computed in
// closed form from the gcpg populations.
func MeanUniformLatency(t *topology.Tree, p Params) float64 {
	n := float64(t.Nodes())
	if t.Nodes() < 2 {
		return 0
	}
	var total float64
	for alpha := 0; alpha < t.N(); alpha++ {
		peers := float64(t.GCPGSize(alpha)-1) - float64(t.GCPGSize(alpha+1)-1)
		total += peers * p.UncontendedLatency(2*(t.N()-alpha)-1)
	}
	return total / (n - 1)
}

// Reception mirrors the simulator's endnode consumption models.
type Reception int

const (
	// ReceptionIdeal consumes packets at the destination leaf switch.
	ReceptionIdeal Reception = iota
	// ReceptionLink shares the terminal switch-to-node link.
	ReceptionLink
)

// HotspotKnee predicts the offered load (bytes/ns per node) at which the
// named scheme saturates under the centric pattern where every node sends
// `fraction` of its packets to one fixed destination.
//
// Under ReceptionLink the terminal link is the binding constraint for every
// scheme: it carries fraction*(N-1)*r of hotspot traffic plus (1-fraction)*r
// of uniform traffic, so the knee is capacity / (fraction*(N-1)+(1-fraction))
// — which is why single-hotspot experiments cannot distinguish routing
// schemes under link-limited reception.
//
// Under ReceptionIdeal the binding constraints are the descending links into
// the hotspot's leaf switch. SLID sends all external hotspot traffic down
// ONE such link; MLID spreads it over all m/2 of them:
//
//	SLID: knee = eff           / (fraction * (N - m/2))
//	MLID: knee = eff * (m/2)   / (fraction * (N - m/2))
//
// The predicted MLID/SLID throughput ratio is therefore exactly m/2 — the
// structural content of the paper's Observation 3, and the reason the gap
// widens with the switch port count (Observation 5).
func HotspotKnee(t *topology.Tree, p Params, scheme string, fraction float64, rec Reception) (float64, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("model: fraction must be in (0,1], got %v", fraction)
	}
	p = p.withDefaults()
	n := float64(t.Nodes())
	h := float64(t.H())
	if rec == ReceptionLink {
		// The terminal link is fed from several input buffers in turn, so
		// it sustains near-full utilization.
		return 1 / (fraction*(n-1) + (1 - fraction)), nil
	}
	eff := p.ChainEfficiency()
	external := fraction * (n - h)
	if external <= 0 {
		return 0, fmt.Errorf("model: degenerate hotspot (all nodes share the leaf)")
	}
	switch scheme {
	case "SLID", "slid":
		return eff / external, nil
	case "MLID", "mlid":
		return eff * h / external, nil
	}
	return 0, fmt.Errorf("model: unknown scheme %q", scheme)
}

// HotspotRatio predicts the MLID/SLID peak-throughput ratio under the
// centric pattern with ideal reception: m/2.
func HotspotRatio(t *topology.Tree) float64 { return float64(t.H()) }

// UniformKneeBound returns an upper bound on the uniform-pattern saturation
// load: injection is limited by each source's link, and the fabric is
// rearrangeably non-blocking (full bisection), so the bound is the link
// efficiency at the given VL count. Contention and head-of-line blocking
// push the real knee below this; measurements on the paper's networks land
// at 55-90% of it.
func UniformKneeBound(p Params, dataVLs int) float64 { return p.LinkEfficiency(dataVLs) }
