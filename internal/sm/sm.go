// Package sm implements a full subnet manager over the management plane:
// unlike ib.SubnetManager (which reads the topology object directly, as an
// oracle), this SM brings a fabric up the way a real one does —
//
//  1. it explores the fabric with directed-route NodeInfo probes, learning
//     only GUIDs, port counts and link endpoints (package discover);
//  2. it recognizes the discovered graph as an m-port n-tree, recovering
//     the FT(m, n) labeling from the edges' port numbers;
//  3. it assigns every endport its base LID and LMC with PortInfo Set SMPs;
//  4. it programs every switch's linear forwarding table with 64-entry
//     LinearForwardingTable blocks, computed by the routing engine over the
//     recognized tree; and
//  5. it reads the tables back and cross-checks them before declaring the
//     subnet operational.
//
// The result is an ib.Subnet equivalent to the oracle SM's, but produced
// with zero out-of-band knowledge — the strongest end-to-end evidence that
// the addressing, path-selection and forwarding-table equations only need
// what a real InfiniBand subnet manager can see.
package sm

import (
	"fmt"
	"sort"

	"mlid/internal/discover"
	"mlid/internal/ib"
	"mlid/internal/topology"
)

// sortedNodeGUIDs and sortedSwitchGUIDs fix the order every bring-up phase
// walks the fabric in. The labeling maps are keyed by GUID, and Go
// randomizes map iteration — fine for the resulting tables (each entry is
// written exactly once), but the *management traffic* would then leave the
// SM in a different order every run, which breaks SMP-trace reproducibility
// and makes bring-up regressions undiffable. GUID order is the canonical
// sweep order.
func sortedNodeGUIDs(lab *discover.Labeling) []uint64 {
	guids := make([]uint64, 0, len(lab.NodeID))
	for guid := range lab.NodeID {
		guids = append(guids, guid)
	}
	sort.Slice(guids, func(i, j int) bool { return guids[i] < guids[j] })
	return guids
}

func sortedSwitchGUIDs(lab *discover.Labeling) []uint64 {
	guids := make([]uint64, 0, len(lab.SwitchID))
	for guid := range lab.SwitchID {
		guids = append(guids, guid)
	}
	sort.Slice(guids, func(i, j int) bool { return guids[i] < guids[j] })
	return guids
}

// BringupStats counts the management traffic one Configure run needed — a
// measure of SM cost that scales with fabric size.
type BringupStats struct {
	// Probes counts discovery NodeInfo Gets; Gets and Sets the remaining
	// SMPs (PortInfo, SwitchInfo, LFT blocks) by method.
	Probes, Gets, Sets int
	// MaxHops is the longest directed route used.
	MaxHops int
}

// Total returns the number of SMPs exchanged.
func (b BringupStats) Total() int { return b.Probes + b.Gets + b.Sets }

// MADSubnetManager configures a fabric exclusively through SMPs.
type MADSubnetManager struct {
	// Fabric is the management plane (agents + directed-route transport).
	Fabric *ib.SMAFabric
	// Origin is the channel adapter hosting the SM.
	Origin topology.NodeID
	// Engine computes the LID assignment and forwarding entries.
	Engine ib.RoutingEngine
	// Stats is filled by Configure.
	Stats BringupStats

	// Cached discovery from the last Configure, reused by Reconfigure.
	lastGraph  *discover.Graph
	lastLabels *discover.Labeling
}

// prober adapts the SMP transport to discover.Prober.
type prober struct {
	fabric *ib.SMAFabric
	origin topology.NodeID
	stats  *BringupStats
}

// Probe implements discover.Prober with a NodeInfo SubnGet.
func (p prober) Probe(path []uint8) (discover.Device, error) {
	smp := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrNodeInfo}
	if len(path) >= ib.MaxHops {
		return discover.Device{}, fmt.Errorf("sm: probe path too long (%d hops)", len(path))
	}
	smp.HopCount = uint8(len(path))
	copy(smp.InitialPath[1:], path)
	p.stats.Probes++
	if len(path) > p.stats.MaxHops {
		p.stats.MaxHops = len(path)
	}
	if err := p.fabric.Send(p.origin, smp); err != nil {
		return discover.Device{}, err
	}
	if smp.Status != ib.StatusOK {
		return discover.Device{}, fmt.Errorf("sm: NodeInfo probe failed with status %#x", smp.Status)
	}
	ni := ib.DecodeNodeInfo(&smp.Data)
	return discover.Device{
		GUID:        ni.GUID,
		IsSwitch:    ni.Type == ib.NodeTypeSwitch,
		NumPorts:    int(ni.NumPorts),
		ArrivalPort: int(ni.LocalPort),
	}, nil
}

// send delivers one SMP along a stored route and checks its status.
func (sm *MADSubnetManager) send(path []uint8, smp *ib.SMP) error {
	smp.HopCount = uint8(len(path))
	copy(smp.InitialPath[1:], path)
	if smp.Method == ib.MethodSet {
		sm.Stats.Sets++
	} else {
		sm.Stats.Gets++
	}
	if len(path) > sm.Stats.MaxHops {
		sm.Stats.MaxHops = len(path)
	}
	if err := sm.Fabric.Send(sm.Origin, smp); err != nil {
		return err
	}
	if smp.Status != ib.StatusOK {
		return fmt.Errorf("sm: %s(%s) failed with status %#x", smp.Method, smp.Attribute, smp.Status)
	}
	return nil
}

// Configure runs the five bring-up phases and returns the operational
// subnet, built over the *recognized* tree.
func (sm *MADSubnetManager) Configure() (*ib.Subnet, error) {
	// Phase 1: exploration.
	sm.Stats = BringupStats{}
	graph, err := discover.Explore(prober{fabric: sm.Fabric, origin: sm.Origin, stats: &sm.Stats}, 0)
	if err != nil {
		return nil, err
	}
	// Phase 2: recognition.
	lab, err := discover.Recognize(graph)
	if err != nil {
		return nil, err
	}
	t := lab.Tree
	eng := sm.Engine

	lmc := eng.LMC(t)
	if lmc > ib.MaxLMC {
		return nil, fmt.Errorf("sm: scheme %s requires LMC %d > maximum %d", eng.Name(), lmc, ib.MaxLMC)
	}
	space := eng.LIDSpace(t)
	if space > 1<<16 {
		return nil, fmt.Errorf("%w: scheme %s needs %d LIDs, beyond the 16-bit space",
			ib.ErrLIDSpaceExhausted, eng.Name(), space)
	}

	// Phase 3: endport addressing.
	for _, guid := range sortedNodeGUIDs(lab) {
		nodeID := lab.NodeID[guid]
		ca := graph.CAs[guid]
		smp := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrPortInfo, AttrMod: 1}
		ib.PortInfo{LID: eng.BaseLID(t, nodeID), LMC: lmc, State: 4}.Encode(&smp.Data)
		if err := sm.send(ca.Path, smp); err != nil {
			return nil, fmt.Errorf("sm: assigning LID to CA %#x: %w", guid, err)
		}
	}

	// Phase 4: forwarding tables, block by block.
	blocks := (space + ib.LFTBlockSize - 1) / ib.LFTBlockSize
	for _, guid := range sortedSwitchGUIDs(lab) {
		swID := lab.SwitchID[guid]
		swDesc := graph.Switches[guid]
		// Announce the table size.
		siSMP := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrSwitchInfo}
		ib.SwitchInfo{LinearFDBTop: uint16(space - 1)}.Encode(&siSMP.Data)
		if err := sm.send(swDesc.Path, siSMP); err != nil {
			return nil, fmt.Errorf("sm: switch %#x SwitchInfo: %w", guid, err)
		}
		for block := 0; block < blocks; block++ {
			var b ib.LFTBlock
			dirty := false
			for i := 0; i < ib.LFTBlockSize; i++ {
				lid := block*ib.LFTBlockSize + i
				b.Ports[i] = ib.PortNone
				if lid == 0 || lid >= space {
					continue
				}
				abstract, ok := eng.OutPortAbstract(t, swID, ib.LID(lid))
				if !ok {
					continue
				}
				b.Ports[i] = uint8(abstract + 1)
				dirty = true
			}
			if !dirty {
				continue
			}
			smp := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrLFTBlock, AttrMod: uint32(block)}
			b.Encode(&smp.Data)
			if err := sm.send(swDesc.Path, smp); err != nil {
				return nil, fmt.Errorf("sm: switch %#x LFT block %d: %w", guid, block, err)
			}
		}
	}

	// Phase 5: read-back verification and subnet assembly.
	sn := &ib.Subnet{
		Tree:     t,
		Engine:   eng,
		Endports: make([]ib.LIDRange, t.Nodes()),
		LFTs:     make([]*ib.LFT, t.Switches()),
	}
	for _, guid := range sortedNodeGUIDs(lab) {
		nodeID := lab.NodeID[guid]
		ca := graph.CAs[guid]
		smp := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrPortInfo, AttrMod: 1}
		if err := sm.send(ca.Path, smp); err != nil {
			return nil, err
		}
		pi := ib.DecodePortInfo(&smp.Data)
		if pi.LID != eng.BaseLID(t, nodeID) || pi.LMC != lmc {
			return nil, fmt.Errorf("sm: CA %#x read-back mismatch: %v", guid, pi)
		}
		sn.Endports[nodeID] = ib.LIDRange{Base: pi.LID, LMC: pi.LMC}
	}
	for _, guid := range sortedSwitchGUIDs(lab) {
		swID := lab.SwitchID[guid]
		swDesc := graph.Switches[guid]
		lft := ib.NewLFT(space)
		for block := 0; block < blocks; block++ {
			smp := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrLFTBlock, AttrMod: uint32(block)}
			if err := sm.send(swDesc.Path, smp); err != nil {
				return nil, err
			}
			b := ib.DecodeLFTBlock(&smp.Data)
			for i := 0; i < ib.LFTBlockSize; i++ {
				lid := block*ib.LFTBlockSize + i
				if lid == 0 || lid >= space || b.Ports[i] == ib.PortNone {
					continue
				}
				if err := lft.Set(ib.LID(lid), b.Ports[i]); err != nil {
					return nil, fmt.Errorf("sm: switch %#x read-back: %w", guid, err)
				}
			}
		}
		sn.LFTs[swID] = lft
	}
	if err := sn.FinishAssembly(); err != nil {
		return nil, err
	}
	sm.lastGraph = graph
	sm.lastLabels = lab
	return sn, nil
}

// Reconfigure reprograms the fabric for a (possibly different) routing
// engine, reusing the previous bring-up's discovery and sending only the
// LFT blocks that actually changed — the way an SM handles a routing-policy
// change without a full sweep. It requires a prior Configure on the same
// manager and returns the new subnet plus the number of blocks written
// versus the full-programming block count.
func (sm *MADSubnetManager) Reconfigure(engine ib.RoutingEngine) (sn *ib.Subnet, written, total int, err error) {
	if sm.lastGraph == nil || sm.lastLabels == nil {
		return nil, 0, 0, fmt.Errorf("sm: Reconfigure requires a prior Configure")
	}
	graph, lab := sm.lastGraph, sm.lastLabels
	t := lab.Tree

	lmc := engine.LMC(t)
	if lmc > ib.MaxLMC {
		return nil, 0, 0, fmt.Errorf("sm: scheme %s requires LMC %d > maximum %d", engine.Name(), lmc, ib.MaxLMC)
	}
	space := engine.LIDSpace(t)
	if space > 1<<16 {
		return nil, 0, 0, fmt.Errorf("sm: scheme %s needs %d LIDs", engine.Name(), space)
	}

	// Endports: set only when the range changes.
	for _, guid := range sortedNodeGUIDs(lab) {
		nodeID := lab.NodeID[guid]
		ca := graph.CAs[guid]
		get := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrPortInfo, AttrMod: 1}
		if err := sm.send(ca.Path, get); err != nil {
			return nil, 0, 0, err
		}
		cur := ib.DecodePortInfo(&get.Data)
		want := ib.PortInfo{LID: engine.BaseLID(t, nodeID), LMC: lmc, State: 4}
		if cur.LID == want.LID && cur.LMC == want.LMC {
			continue
		}
		set := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrPortInfo, AttrMod: 1}
		want.Encode(&set.Data)
		if err := sm.send(ca.Path, set); err != nil {
			return nil, 0, 0, err
		}
	}

	// LFT blocks: read-compare-write.
	blocks := (space + ib.LFTBlockSize - 1) / ib.LFTBlockSize
	for _, guid := range sortedSwitchGUIDs(lab) {
		swID := lab.SwitchID[guid]
		swDesc := graph.Switches[guid]
		siSMP := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrSwitchInfo}
		ib.SwitchInfo{LinearFDBTop: uint16(space - 1)}.Encode(&siSMP.Data)
		if err := sm.send(swDesc.Path, siSMP); err != nil {
			return nil, 0, 0, err
		}
		for block := 0; block < blocks; block++ {
			total++
			var want ib.LFTBlock
			for i := 0; i < ib.LFTBlockSize; i++ {
				lid := block*ib.LFTBlockSize + i
				want.Ports[i] = ib.PortNone
				if lid == 0 || lid >= space {
					continue
				}
				if abstract, ok := engine.OutPortAbstract(t, swID, ib.LID(lid)); ok {
					want.Ports[i] = uint8(abstract + 1)
				}
			}
			get := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrLFTBlock, AttrMod: uint32(block)}
			if err := sm.send(swDesc.Path, get); err != nil {
				return nil, 0, 0, err
			}
			if ib.DecodeLFTBlock(&get.Data) == want {
				continue
			}
			set := &ib.SMP{Method: ib.MethodSet, Attribute: ib.AttrLFTBlock, AttrMod: uint32(block)}
			want.Encode(&set.Data)
			if err := sm.send(swDesc.Path, set); err != nil {
				return nil, 0, 0, err
			}
			written++
		}
	}

	// Assemble the resulting subnet from the engine (the agents now hold
	// exactly these tables; TestReconfigure verifies the equivalence).
	out := &ib.Subnet{
		Tree:     t,
		Engine:   engine,
		Endports: make([]ib.LIDRange, t.Nodes()),
		LFTs:     make([]*ib.LFT, t.Switches()),
	}
	for _, nodeID := range lab.NodeID {
		out.Endports[nodeID] = ib.LIDRange{Base: engine.BaseLID(t, nodeID), LMC: lmc}
	}
	for _, swID := range lab.SwitchID {
		lft := ib.NewLFT(space)
		for lid := 1; lid < space; lid++ {
			if abstract, ok := engine.OutPortAbstract(t, swID, ib.LID(lid)); ok {
				if err := lft.Set(ib.LID(lid), uint8(abstract+1)); err != nil {
					return nil, 0, 0, err
				}
			}
		}
		out.LFTs[swID] = lft
	}
	if err := out.FinishAssembly(); err != nil {
		return nil, 0, 0, err
	}
	sm.Engine = engine
	return out, written, total, nil
}
