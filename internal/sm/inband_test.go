package sm

import (
	"reflect"
	"testing"
)

func txnCfg() TxnConfig {
	return TxnConfig{BaseTimeoutNs: 1000, BackoffMult: 2, MaxTimeoutNs: 4000, MaxRetries: 2}
}

func TestTxnTimeoutBackoffAndCap(t *testing.T) {
	cfg := txnCfg()
	want := []int64{1000, 2000, 4000, 4000, 4000}
	for attempts, w := range want {
		if got := cfg.Timeout(attempts); got != w {
			t.Errorf("Timeout(%d) = %d, want %d", attempts, got, w)
		}
	}
}

func TestTxnLifecycle(t *testing.T) {
	m := NewTxnManager(txnCfg())
	idx := m.Open()
	if idx != 0 || m.Len() != 1 {
		t.Fatalf("Open = %d, Len = %d", idx, m.Len())
	}

	gen1, to1 := m.Send(idx)
	if to1 != 1000 {
		t.Fatalf("first send timeout = %d, want 1000", to1)
	}
	if m.Attempts(idx) != 1 {
		t.Fatalf("attempts after first send = %d", m.Attempts(idx))
	}
	// A stale generation is ignored.
	if out := m.Expire(idx, gen1-1); out != TxnStale {
		t.Fatalf("stale-generation expiry = %v, want TxnStale", out)
	}
	// The live timer asks for a resend while budget remains.
	if out := m.Expire(idx, gen1); out != TxnResend {
		t.Fatalf("first expiry = %v, want TxnResend", out)
	}
	gen2, to2 := m.Send(idx)
	if gen2 == gen1 {
		t.Fatal("resend did not bump the timer generation")
	}
	if to2 != 2000 {
		t.Fatalf("second send timeout = %d, want 2000 (backed off)", to2)
	}
	// gen1's timer, still in flight, is now stale.
	if out := m.Expire(idx, gen1); out != TxnStale {
		t.Fatalf("superseded timer = %v, want TxnStale", out)
	}

	// Apply is idempotent: only the first copy executes.
	if !m.Apply(idx) || m.Apply(idx) {
		t.Fatal("Apply must report true exactly once")
	}
	// Ack closes the transaction and invalidates the timer.
	if !m.Ack(idx) || m.Ack(idx) {
		t.Fatal("Ack must report true exactly once")
	}
	if !m.Acked(idx) {
		t.Fatal("Acked = false after Ack")
	}
	if out := m.Expire(idx, gen2); out != TxnStale {
		t.Fatalf("post-ack expiry = %v, want TxnStale", out)
	}
}

func TestTxnExhaustionAndReset(t *testing.T) {
	m := NewTxnManager(txnCfg()) // MaxRetries = 2: 3 transmissions total
	idx := m.Open()
	var gen uint32
	for i := 0; i < 3; i++ {
		gen, _ = m.Send(idx)
		if i < 2 {
			if out := m.Expire(idx, gen); out != TxnResend {
				t.Fatalf("expiry %d = %v, want TxnResend", i, out)
			}
		}
	}
	if out := m.Expire(idx, gen); out != TxnExhausted {
		t.Fatalf("budget-exhausted expiry = %v, want TxnExhausted", out)
	}
	// A parked transaction's late timers are stale, and it shows up for the
	// sweep's re-drive.
	if out := m.Expire(idx, gen); out != TxnStale {
		t.Fatalf("post-park expiry = %v, want TxnStale", out)
	}
	if got := m.Parked(); !reflect.DeepEqual(got, []int{idx}) {
		t.Fatalf("Parked = %v, want [%d]", got, idx)
	}
	// Reset restarts the budget at the base timeout.
	m.Reset(idx)
	if got := m.Parked(); got != nil {
		t.Fatalf("Parked after Reset = %v, want none", got)
	}
	if _, to := m.Send(idx); to != 1000 {
		t.Fatalf("post-reset send timeout = %d, want base 1000", to)
	}
	// An acked transaction never re-drives.
	m.Ack(idx)
	if got := m.Parked(); got != nil {
		t.Fatalf("Parked after Ack = %v, want none", got)
	}
}

func TestDiffDeadLinks(t *testing.T) {
	known := [][2]int32{{1, 0}, {2, 3}, {5, 1}}
	discovered := [][2]int32{{2, 3}, {7, 0}, {1, 0}, {9, 2}}
	added, removed := DiffDeadLinks(known, discovered)
	// Outputs preserve source order: added in discovery order, removed in
	// known order.
	if want := [][2]int32{{7, 0}, {9, 2}}; !reflect.DeepEqual(added, want) {
		t.Errorf("added = %v, want %v", added, want)
	}
	if want := [][2]int32{{5, 1}}; !reflect.DeepEqual(removed, want) {
		t.Errorf("removed = %v, want %v", removed, want)
	}
	if a, r := DiffDeadLinks(nil, nil); a != nil || r != nil {
		t.Errorf("empty diff = %v, %v", a, r)
	}
}

func TestFailoverStickiness(t *testing.T) {
	f := NewFailover(0, 7)
	if f.Active() != 0 {
		t.Fatalf("initial active = %d, want master 0", f.Active())
	}
	// Master alive: nothing moves, standby state irrelevant.
	if sw, up := f.Observe(true, false); sw || !up {
		t.Fatalf("healthy master: switched=%v anyUp=%v", sw, up)
	}
	// Master dies, standby alive: takeover.
	if sw, up := f.Observe(false, true); !sw || !up || f.Active() != 7 {
		t.Fatalf("takeover: switched=%v anyUp=%v active=%d", sw, up, f.Active())
	}
	// Master revives: mastership is sticky, no failback.
	if sw, up := f.Observe(true, true); sw || !up || f.Active() != 7 {
		t.Fatalf("failback must not happen: switched=%v active=%d", sw, f.Active())
	}
	// Standby (now active) dies, master alive: takeover back.
	if sw, up := f.Observe(true, false); !sw || !up || f.Active() != 0 {
		t.Fatalf("reverse takeover: switched=%v active=%d", sw, f.Active())
	}
	// Both dead: no SM can serve; mastership does not move.
	if sw, up := f.Observe(false, false); sw || up || f.Active() != 0 {
		t.Fatalf("both dead: switched=%v anyUp=%v active=%d", sw, up, f.Active())
	}
}
