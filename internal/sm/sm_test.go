package sm

import (
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
)

// TestMADConfigureEqualsOracle is the headline test of the management plane:
// the MAD-based subnet manager — which sees only GUIDs, port counts and
// SMP responses — must produce exactly the subnet the oracle SM computes
// from the topology object: same endport LID ranges, same forwarding table
// in every switch.
func TestMADConfigureEqualsOracle(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {16, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		for _, scheme := range core.Schemes() {
			oracle, err := (&ib.SubnetManager{Tree: tr, Engine: scheme}).Configure()
			if err != nil {
				t.Fatal(err)
			}
			mad := &MADSubnetManager{
				Fabric: ib.NewSMAFabric(tr),
				Origin: 0,
				Engine: scheme,
			}
			got, err := mad.Configure()
			if err != nil {
				t.Fatalf("%s %s: %v", tr, scheme.Name(), err)
			}
			if got.Tree.M() != tr.M() || got.Tree.N() != tr.N() {
				t.Fatalf("%s %s: recognized FT(%d,%d)", tr, scheme.Name(), got.Tree.M(), got.Tree.N())
			}
			if !reflect.DeepEqual(got.Endports, oracle.Endports) {
				t.Fatalf("%s %s: endport ranges differ", tr, scheme.Name())
			}
			for s := range got.LFTs {
				a, b := got.LFTs[s].Entries(), oracle.LFTs[s].Entries()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s %s: switch %d LFT differs", tr, scheme.Name(), s)
				}
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s %s: %v", tr, scheme.Name(), err)
			}
		}
	}
}

// TestMADConfigureFromAnyOrigin: the bring-up must not depend on which CA
// hosts the subnet manager.
func TestMADConfigureFromAnyOrigin(t *testing.T) {
	tr := topology.MustNew(4, 2)
	var base *ib.Subnet
	for origin := 0; origin < tr.Nodes(); origin++ {
		mad := &MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: topology.NodeID(origin), Engine: core.NewMLID()}
		sn, err := mad.Configure()
		if err != nil {
			t.Fatalf("origin %d: %v", origin, err)
		}
		if base == nil {
			base = sn
			continue
		}
		if !reflect.DeepEqual(sn.Endports, base.Endports) {
			t.Fatalf("origin %d: endports differ", origin)
		}
		for s := range sn.LFTs {
			if !reflect.DeepEqual(sn.LFTs[s].Entries(), base.LFTs[s].Entries()) {
				t.Fatalf("origin %d: switch %d LFT differs", origin, s)
			}
		}
	}
}

// TestMADConfigureAgentsHoldState: after the bring-up the device agents
// themselves carry the configuration (not just the SM's local copy).
func TestMADConfigureAgentsHoldState(t *testing.T) {
	tr := topology.MustNew(8, 2)
	fabric := ib.NewSMAFabric(tr)
	mad := &MADSubnetManager{Fabric: fabric, Origin: 3, Engine: core.NewMLID()}
	sn, err := mad.Configure()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < tr.Nodes(); p++ {
		pi := fabric.NodeAgent(topology.NodeID(p)).PortInfo()
		if pi.LID != sn.Endports[p].Base || pi.LMC != sn.Endports[p].LMC {
			t.Fatalf("node %d agent holds %v, subnet says %v", p, pi, sn.Endports[p])
		}
	}
	for s := 0; s < tr.Switches(); s++ {
		agentLFT := fabric.SwitchAgent(topology.SwitchID(s)).LFT()
		for lid := 1; lid < sn.LIDSpace(); lid++ {
			want, werr := sn.LFTs[s].Lookup(ib.LID(lid))
			got, gerr := agentLFT.Lookup(ib.LID(lid))
			if (werr == nil) != (gerr == nil) || (werr == nil && want != got) {
				t.Fatalf("switch %d lid %d: agent %d/%v, subnet %d/%v", s, lid, got, gerr, want, werr)
			}
		}
	}
}

// TestMADConfigureRejectsOversizedScheme: LMC overflow surfaces through the
// MAD path as well.
func TestMADConfigureRejectsOversizedScheme(t *testing.T) {
	tr := topology.MustNew(8, 5) // MLID needs LMC 8 > 7
	mad := &MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: 0, Engine: core.NewMLID()}
	if _, err := mad.Configure(); err == nil || !strings.Contains(err.Error(), "LMC") {
		t.Fatalf("expected LMC error, got %v", err)
	}
}

// TestMADSubnetRoutesEndToEnd: packets forwarded by the MAD-programmed
// tables reach their destinations.
func TestMADSubnetRoutesEndToEnd(t *testing.T) {
	tr := topology.MustNew(4, 3)
	mad := &MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: 0, Engine: core.NewMLID()}
	sn, err := mad.Configure()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < tr.Nodes(); a++ {
		for b := 0; b < tr.Nodes(); b++ {
			if a == b {
				continue
			}
			dlid := sn.DLID(topology.NodeID(a), topology.NodeID(b))
			p, err := core.TraceSubnet(sn, topology.NodeID(a), dlid)
			if err != nil {
				t.Fatal(err)
			}
			if p.Dst != topology.NodeID(b) {
				t.Fatalf("%d->%d delivered to %d", a, b, p.Dst)
			}
		}
	}
}

// TestBringupStats: the SMP counts of a bring-up match the closed forms —
// probes = 2 + switches*m (origin, first switch, then every switch port),
// and per-switch programming is 1 SwitchInfo + ceil(space/64) LFT sets plus
// the same number of read-back gets.
func TestBringupStats(t *testing.T) {
	tr := topology.MustNew(8, 2)
	mad := &MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: 0, Engine: core.NewMLID()}
	sn, err := mad.Configure()
	if err != nil {
		t.Fatal(err)
	}
	st := mad.Stats
	wantProbes := 2 + tr.Switches()*tr.M()
	if st.Probes != wantProbes {
		t.Errorf("probes %d, want %d", st.Probes, wantProbes)
	}
	blocks := (sn.LIDSpace() + ib.LFTBlockSize - 1) / ib.LFTBlockSize
	wantSets := tr.Nodes() + tr.Switches()*(1+blocks)
	if st.Sets != wantSets {
		t.Errorf("sets %d, want %d", st.Sets, wantSets)
	}
	wantGets := tr.Nodes() + tr.Switches()*blocks
	if st.Gets != wantGets {
		t.Errorf("gets %d, want %d", st.Gets, wantGets)
	}
	if st.MaxHops < tr.N()+1 || st.MaxHops >= 2*(tr.N()+1)+1 {
		t.Errorf("max hops %d implausible for height %d", st.MaxHops, tr.N()+1)
	}
	if st.Total() != st.Probes+st.Gets+st.Sets {
		t.Error("Total mismatch")
	}
}

// TestReconfigureDelta: switching the routing engine via Reconfigure writes
// only changed LFT blocks, leaves agents holding the new tables, and the
// result equals a fresh oracle configuration. Reconfiguring to the SAME
// engine writes nothing.
func TestReconfigureDelta(t *testing.T) {
	tr := topology.MustNew(8, 2)
	fabric := ib.NewSMAFabric(tr)
	mad := &MADSubnetManager{Fabric: fabric, Origin: 0, Engine: core.NewMLID()}
	if _, err := mad.Configure(); err != nil {
		t.Fatal(err)
	}

	// Same engine: zero blocks rewritten.
	_, written, total, err := mad.Reconfigure(core.NewMLID())
	if err != nil {
		t.Fatal(err)
	}
	if written != 0 || total == 0 {
		t.Fatalf("idempotent reconfigure wrote %d/%d blocks", written, total)
	}

	// Switch to SLID: some blocks change, and the agents' tables match the
	// oracle SLID subnet exactly.
	slidSubnet, written, total, err := mad.Reconfigure(core.NewSLID())
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 || written > total {
		t.Fatalf("SLID reconfigure wrote %d/%d blocks", written, total)
	}
	oracle, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewSLID()}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slidSubnet.Endports, oracle.Endports) {
		t.Fatal("endports differ from oracle after reconfigure")
	}
	for s := 0; s < tr.Switches(); s++ {
		agent := fabric.SwitchAgent(topology.SwitchID(s)).LFT()
		for lid := 1; lid < oracle.LIDSpace(); lid++ {
			want, werr := oracle.LFTs[s].Lookup(ib.LID(lid))
			got, gerr := agent.Lookup(ib.LID(lid))
			if (werr == nil) != (gerr == nil) || (werr == nil && want != got) {
				t.Fatalf("switch %d lid %d: agent %d/%v vs oracle %d/%v", s, lid, got, gerr, want, werr)
			}
		}
	}
}

// TestReconfigureRequiresConfigure: no cached discovery, no delta.
func TestReconfigureRequiresConfigure(t *testing.T) {
	tr := topology.MustNew(4, 2)
	mad := &MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: 0, Engine: core.NewMLID()}
	if _, _, _, err := mad.Reconfigure(core.NewSLID()); err == nil {
		t.Error("reconfigure without configure accepted")
	}
}
