// In-band subnet-management state machines: the SMP set-transaction manager
// (timeout/retransmit with capped exponential backoff and a retry budget),
// the deterministic master/standby failover automaton, and the sweep's
// dead-link diff. All three are pure — no clocks, no entropy, no I/O — so the
// simulator can drive them from its event loop and stay bit-deterministic
// across scheduler paths and shard counts; they live here (not in the
// simulator) because they are subnet-manager policy, the in-band counterpart
// of this package's directed-route bring-up.
package sm

// TxnConfig parameterizes SMP set-transaction retransmission. It mirrors the
// reliable transport's policy — capped exponential backoff plus a retry
// budget — but for management datagrams, whose loss is recovered by the SM's
// periodic sweep rather than by an end-to-end Failed count.
type TxnConfig struct {
	// BaseTimeoutNs is the response timeout of a transaction's first send.
	BaseTimeoutNs int64
	// BackoffMult multiplies the timeout after every retransmission.
	BackoffMult float64
	// MaxTimeoutNs caps the backed-off timeout.
	MaxTimeoutNs int64
	// MaxRetries is the retransmission budget: after this many resends the
	// next expiry parks the transaction (TxnExhausted) instead of retrying.
	MaxRetries int
}

// Timeout returns the backed-off response timeout after the given number of
// retransmissions: min(Base * Mult^attempts, Cap). Pure in the config, so
// the SMP schedule is deterministic.
func (c TxnConfig) Timeout(attempts int) int64 {
	t := float64(c.BaseTimeoutNs)
	for i := 0; i < attempts; i++ {
		t *= c.BackoffMult
		if int64(t) >= c.MaxTimeoutNs {
			return c.MaxTimeoutNs
		}
	}
	if int64(t) > c.MaxTimeoutNs {
		return c.MaxTimeoutNs
	}
	return int64(t)
}

// TxnOutcome classifies a fired transaction timer.
type TxnOutcome int

const (
	// TxnStale: the timer was superseded (the transaction was resent, acked,
	// or reset since the timer was armed) — ignore it.
	TxnStale TxnOutcome = iota
	// TxnResend: budget remains — retransmit and re-arm.
	TxnResend
	// TxnExhausted: the retry budget ran out — park the transaction until a
	// sweep re-drives it.
	TxnExhausted
)

// txn is one SMP set transaction (one staged per-switch table update).
type txn struct {
	// attempts counts transmissions (first send included).
	attempts int
	// gen invalidates outstanding timers: every send and every terminal
	// state change bumps it, and a timer carrying an older generation is
	// stale. The same generation-counter idiom as the transport's txFlow.
	gen uint32
	// applied marks the target switch having executed the update (set once;
	// retransmitted copies are idempotent). acked marks the SM having seen
	// the response. parked marks an exhausted budget awaiting a sweep.
	applied bool
	acked   bool
	parked  bool
}

// TxnManager tracks the SM's open SMP set transactions, one per staged
// table update, indexed densely in open order.
type TxnManager struct {
	cfg  TxnConfig
	txns []txn
}

// NewTxnManager returns an empty manager with the given retry policy.
func NewTxnManager(cfg TxnConfig) *TxnManager {
	return &TxnManager{cfg: cfg}
}

// Len returns the number of transactions ever opened.
func (m *TxnManager) Len() int { return len(m.txns) }

// Open registers a new transaction and returns its index.
func (m *TxnManager) Open() int {
	m.txns = append(m.txns, txn{})
	return len(m.txns) - 1
}

// Send records one transmission of the transaction and returns the timer
// generation to arm with and the backed-off timeout for it. attempts counts
// transmissions, so the first send arms Timeout(0).
func (m *TxnManager) Send(idx int) (gen uint32, timeoutNs int64) {
	t := &m.txns[idx]
	timeoutNs = m.cfg.Timeout(t.attempts)
	t.attempts++
	t.gen++
	return t.gen, timeoutNs
}

// Expire classifies a fired timer carrying the given generation.
func (m *TxnManager) Expire(idx int, gen uint32) TxnOutcome {
	t := &m.txns[idx]
	if t.gen != gen || t.acked || t.parked {
		return TxnStale
	}
	if t.attempts > m.cfg.MaxRetries {
		t.parked = true
		t.gen++
		return TxnExhausted
	}
	return TxnResend
}

// Apply records the target switch executing the update; it reports true only
// the first time, so retransmitted copies stay idempotent at the target.
func (m *TxnManager) Apply(idx int) bool {
	t := &m.txns[idx]
	if t.applied {
		return false
	}
	t.applied = true
	return true
}

// Ack records the SM receiving the response, closing the transaction and
// invalidating its outstanding timer. Reports true only the first time.
func (m *TxnManager) Ack(idx int) bool {
	t := &m.txns[idx]
	if t.acked {
		return false
	}
	t.acked = true
	t.gen++
	return true
}

// Acked reports whether the transaction has closed.
func (m *TxnManager) Acked(idx int) bool { return m.txns[idx].acked }

// Attempts returns the transmissions performed so far.
func (m *TxnManager) Attempts(idx int) int { return m.txns[idx].attempts }

// Parked returns the indices of transactions whose budget ran out without an
// acknowledgment, in ascending order — the set a sweep re-drives.
func (m *TxnManager) Parked() []int {
	var out []int
	for i := range m.txns {
		if m.txns[i].parked && !m.txns[i].acked {
			out = append(out, i)
		}
	}
	return out
}

// Reset re-opens a parked transaction for a sweep's re-drive: the attempt
// counter restarts (the fabric may have changed; the old budget tells us
// nothing about the new path) and any stray timer is invalidated.
func (m *TxnManager) Reset(idx int) {
	t := &m.txns[idx]
	t.parked = false
	t.attempts = 0
	t.gen++
}

// DiffDeadLinks diffs the fabric's discovered dead-link state against the
// SM's known view: added holds discovered links the SM did not know dead,
// removed the links the SM believes dead that discovery no longer reports.
// Both outputs preserve their source slice's order (the inputs are
// event-ordered slices, not maps), so a sweep acting on the diff stays
// deterministic.
func DiffDeadLinks(known, discovered [][2]int32) (added, removed [][2]int32) {
	inKnown := make(map[[2]int32]bool, len(known))
	for _, e := range known {
		inKnown[e] = true
	}
	inDisc := make(map[[2]int32]bool, len(discovered))
	for _, e := range discovered {
		inDisc[e] = true
	}
	for _, e := range discovered {
		if !inKnown[e] {
			added = append(added, e)
		}
	}
	for _, e := range known {
		if !inDisc[e] {
			removed = append(removed, e)
		}
	}
	return added, removed
}

// SameDeadLinks reports whether two dead-link views name the same link set,
// order-insensitively. This is the SM's memoization test: repair targets are
// a pure function of the dead set, so an unchanged set means the previous
// recomputation still holds and the whole repair pass can be skipped — the
// common case when several traps from one fault burst coalesce at the same
// instant.
func SameDeadLinks(a, b [][2]int32) bool {
	added, removed := DiffDeadLinks(a, b)
	return len(added) == 0 && len(removed) == 0
}

// Failover is the deterministic master/standby election automaton. Mastership
// is sticky: the active SM serves while its attach point is alive, and moves
// to the other instance only when the active one's attach point is dead and
// the other's is alive — no automatic failback, so a flapping master cannot
// bounce mastership (the IBA's master/standby SMInfo handover, reduced to
// the liveness signal the sweep can observe).
type Failover struct {
	master  int32
	standby int32
	active  int32
}

// NewFailover returns the automaton with the master initially active.
func NewFailover(master, standby int32) *Failover {
	return &Failover{master: master, standby: standby, active: master}
}

// Active returns the node hosting the currently-active SM instance.
func (f *Failover) Active() int32 { return f.active }

// Observe feeds one sweep's liveness observation (is each instance's attach
// point alive?) into the automaton. switched reports a takeover this
// observation; anyUp whether any instance can currently reach the fabric.
func (f *Failover) Observe(masterUp, standbyUp bool) (switched, anyUp bool) {
	activeUp, otherUp, other := masterUp, standbyUp, f.standby
	if f.active == f.standby {
		activeUp, otherUp, other = standbyUp, masterUp, f.master
	}
	if activeUp {
		return false, true
	}
	if otherUp {
		f.active = other
		return true, true
	}
	return false, false
}
