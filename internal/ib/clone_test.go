package ib_test

import (
	"math/rand"
	"testing"

	"mlid/internal/ib"
)

// TestLFTClonePropertyNoAliasing is a seeded property test of LFT.Clone:
// over random table sizes and contents, mutating the clone never shows
// through the original, mutating the original never shows through the
// clone, and Entries() hands out an independent copy too. The live
// simulator leans on exactly this — it clones every switch's table when
// fault injection is on, then rewrites the clones mid-run while the
// caller's pristine subnet must stay byte-identical (smTrap re-repairs
// from it at every trap).
func TestLFTClonePropertyNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		size := 2 + rng.Intn(512)
		orig := ib.NewLFT(size)
		for lid := 1; lid < size; lid++ {
			if rng.Intn(2) == 0 {
				if err := orig.Set(ib.LID(lid), uint8(rng.Intn(64)+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
		before := orig.Entries()

		clone := orig.Clone()
		if clone.Size() != orig.Size() {
			t.Fatalf("trial %d: clone size %d != %d", trial, clone.Size(), orig.Size())
		}
		// Mutate the clone at random positions; the original must not move.
		for k := 0; k < 32; k++ {
			lid := ib.LID(1 + rng.Intn(size-1))
			if err := clone.Set(lid, uint8(rng.Intn(64)+1)); err != nil {
				t.Fatal(err)
			}
		}
		for lid := 0; lid < size; lid++ {
			if got := orig.Port(ib.LID(lid)); got != before[lid] {
				t.Fatalf("trial %d: clone mutation aliased original at LID %d: %d -> %d",
					trial, lid, before[lid], got)
			}
		}
		// And the other direction: freeze the clone, mutate the original.
		frozen := clone.Entries()
		for k := 0; k < 32; k++ {
			lid := ib.LID(1 + rng.Intn(size-1))
			if err := orig.Set(lid, uint8(rng.Intn(64)+1)); err != nil {
				t.Fatal(err)
			}
		}
		for lid := 0; lid < size; lid++ {
			if got := clone.Port(ib.LID(lid)); got != frozen[lid] {
				t.Fatalf("trial %d: original mutation aliased clone at LID %d", trial, lid)
			}
		}
		// Entries() must be a copy, not a view.
		snap := orig.Entries()
		was := orig.Port(1)
		snap[1] = was + 1
		if orig.Port(1) != was {
			t.Fatalf("trial %d: Entries() aliases the table", trial)
		}
	}
}
