package ib_test

import (
	"errors"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
)

func TestDiscoverCounts(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {16, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		sm := &ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}
		sw, ep, err := sm.Discover()
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if sw != tr.Switches() || ep != tr.Nodes() {
			t.Errorf("%s: discovered %d/%d, want %d/%d", tr, sw, ep, tr.Switches(), tr.Nodes())
		}
	}
}

func TestConfigureBothSchemes(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}, {16, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		for _, s := range core.Schemes() {
			sm := &ib.SubnetManager{Tree: tr, Engine: s}
			sn, err := sm.Configure()
			if err != nil {
				t.Fatalf("%s %s: %v", tr, s.Name(), err)
			}
			if err := sn.Validate(); err != nil {
				t.Fatalf("%s %s: validate: %v", tr, s.Name(), err)
			}
			// Every endport range matches the engine.
			for p := 0; p < tr.Nodes(); p++ {
				r := sn.Endports[p]
				if r.Base != s.BaseLID(tr, topology.NodeID(p)) || r.LMC != s.LMC(tr) {
					t.Fatalf("%s %s node %d: range %v", tr, s.Name(), p, r)
				}
				own, ok := sn.OwnerOf(r.Base)
				if !ok || own != topology.NodeID(p) {
					t.Fatalf("%s %s: OwnerOf(%d) = %d,%v", tr, s.Name(), r.Base, own, ok)
				}
			}
			if _, ok := sn.OwnerOf(0); ok {
				t.Fatalf("%s %s: LID 0 has an owner", tr, s.Name())
			}
		}
	}
}

// TestLFTMatchesEngine checks the programmed tables agree entry-by-entry with
// the scheme's closed-form forwarding function, modulo the abstract->physical
// port shift.
func TestLFTMatchesEngine(t *testing.T) {
	tr := topology.MustNew(8, 2)
	for _, s := range core.Schemes() {
		sn, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
		if err != nil {
			t.Fatal(err)
		}
		for sw := 0; sw < tr.Switches(); sw++ {
			for lid := 1; lid < sn.LIDSpace(); lid++ {
				abstract, ok := s.OutPortAbstract(tr, topology.SwitchID(sw), ib.LID(lid))
				phys, err := sn.OutPort(topology.SwitchID(sw), ib.LID(lid))
				if _, owned := sn.OwnerOf(ib.LID(lid)); !owned {
					if err == nil {
						t.Fatalf("%s sw%d lid%d: routed unowned LID", s.Name(), sw, lid)
					}
					continue
				}
				if !ok {
					if err == nil {
						t.Fatalf("%s sw%d lid%d: table routes what engine refuses", s.Name(), sw, lid)
					}
					continue
				}
				if err != nil || int(phys) != abstract+1 {
					t.Fatalf("%s sw%d lid%d: table %d/%v, engine abstract %d", s.Name(), sw, lid, phys, err, abstract)
				}
			}
		}
	}
}

// TestConfigureRejectsLMCTooLarge: FT(8,5) needs LMC = 4*log2(4) = 8 > 7.
func TestConfigureRejectsLMCTooLarge(t *testing.T) {
	tr := topology.MustNew(8, 5)
	_, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	if err == nil || !strings.Contains(err.Error(), "LMC") {
		t.Fatalf("expected LMC error, got %v", err)
	}
	// The SLID baseline still configures (LMC 0).
	if _, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewSLID()}).Configure(); err != nil {
		t.Fatalf("SLID on FT(8,5): %v", err)
	}
}

// TestConfigureRejectsLIDSpaceOverflow: FT(16,3) under MLID needs
// 1024*64 + 1 = 65537 LIDs, one more than the 16-bit space. The failure is
// the typed ib.ErrLIDSpaceExhausted — never a silent truncation (ib.LID is
// uint16, so an unchecked BaseLID would wrap around) and never a panic —
// and the message still names the sizes for humans. SLID (one LID per node)
// configures the same fabric fine.
func TestConfigureRejectsLIDSpaceOverflow(t *testing.T) {
	tr := topology.MustNew(16, 3)
	_, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	if err == nil || !errors.Is(err, ib.ErrLIDSpaceExhausted) {
		t.Fatalf("expected ErrLIDSpaceExhausted, got %v", err)
	}
	if !strings.Contains(err.Error(), "65537") || !strings.Contains(err.Error(), "16-bit") {
		t.Fatalf("overflow error should name the sizes, got %v", err)
	}
	if _, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewSLID()}).Configure(); err != nil {
		t.Fatalf("SLID on FT(16,3): %v", err)
	}
}

// TestSubnetDLIDDelivery: for every pair, looking up the subnet's forwarding
// tables hop by hop delivers the packet to the destination. This exercises
// the physical-port path (LFT entries), not the engine shortcut.
func TestSubnetDLIDDelivery(t *testing.T) {
	for _, dims := range [][2]int{{4, 2}, {4, 3}, {8, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		for _, s := range core.Schemes() {
			sn, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
			if err != nil {
				t.Fatal(err)
			}
			for a := 0; a < tr.Nodes(); a++ {
				for b := 0; b < tr.Nodes(); b++ {
					if a == b {
						continue
					}
					dlid := sn.DLID(topology.NodeID(a), topology.NodeID(b))
					sw, _ := tr.NodeAttachment(topology.NodeID(a))
					var arrived topology.NodeID = -1
					for hop := 0; hop < 2*tr.N()+2; hop++ {
						phys, err := sn.OutPort(sw, dlid)
						if err != nil {
							t.Fatalf("%s %s: %v", tr, s.Name(), err)
						}
						ref := tr.SwitchNeighbor(sw, int(phys)-1)
						if ref.Kind == topology.KindNode {
							arrived = ref.Node
							break
						}
						sw = ref.Switch
					}
					if arrived != topology.NodeID(b) {
						t.Fatalf("%s %s: %d->%d arrived at %d", tr, s.Name(), a, b, arrived)
					}
				}
			}
		}
	}
}
