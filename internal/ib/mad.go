package ib

import (
	"encoding/binary"
	"fmt"
)

// This file models the subset of InfiniBand subnet management packets (SMPs)
// a subnet manager needs to bring up a fabric: directed-route SubnGet /
// SubnSet of the NodeInfo, PortInfo, SwitchInfo and LinearForwardingTable
// attributes. Directed routing lets the SM address devices that have no LID
// yet: the packet carries an explicit list of exit ports, walked hop by hop
// by the switches' subnet management agents.

// Method is the management datagram method.
type Method uint8

// SMP methods (IBA 13.4.5, abridged).
const (
	MethodGet     Method = 0x01
	MethodSet     Method = 0x02
	MethodGetResp Method = 0x81
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodGet:
		return "SubnGet"
	case MethodSet:
		return "SubnSet"
	case MethodGetResp:
		return "SubnGetResp"
	}
	return fmt.Sprintf("Method(0x%02x)", uint8(m))
}

// Attribute identifies the management attribute an SMP reads or writes.
type Attribute uint16

// SMP attributes (IBA 14.2.5, abridged).
const (
	AttrNodeInfo   Attribute = 0x0011
	AttrSwitchInfo Attribute = 0x0012
	AttrPortInfo   Attribute = 0x0015
	AttrLFTBlock   Attribute = 0x0019
)

// String names the attribute.
func (a Attribute) String() string {
	switch a {
	case AttrNodeInfo:
		return "NodeInfo"
	case AttrSwitchInfo:
		return "SwitchInfo"
	case AttrPortInfo:
		return "PortInfo"
	case AttrLFTBlock:
		return "LinearForwardingTable"
	}
	return fmt.Sprintf("Attr(0x%04x)", uint16(a))
}

// SMP status codes.
const (
	StatusOK               uint16 = 0
	StatusUnsupportedAttr  uint16 = 0x001C
	StatusInvalidAttrValue uint16 = 0x001D
	StatusBadMethod        uint16 = 0x0008
)

// MaxHops bounds the directed-route path length, as the IBA does (64).
const MaxHops = 64

// LFTBlockSize is the number of forwarding entries carried per
// LinearForwardingTable attribute block (IBA: 64).
const LFTBlockSize = 64

// SMP is a directed-route subnet management packet. The payload is a fixed
// 64-byte attribute data field, encoded and decoded by the attribute types
// below.
type SMP struct {
	Method    Method
	Attribute Attribute
	// AttrMod is the attribute modifier: the port number for PortInfo and
	// the block index for LinearForwardingTable.
	AttrMod uint32
	// HopCount is the directed-route length; InitialPath[1..HopCount] are
	// the exit ports, physical numbering, per hop. Entry 0 is unused, as in
	// the IBA.
	HopCount    uint8
	InitialPath [MaxHops]uint8
	// Status is filled by the responding agent.
	Status uint16
	// Data is the 64-byte attribute payload.
	Data [64]byte
}

// NodeType discriminates the two device types of a subnet.
type NodeType uint8

// Node types (IBA: 1 = channel adapter, 2 = switch; routers not modelled).
const (
	NodeTypeCA     NodeType = 1
	NodeTypeSwitch NodeType = 2
)

// NodeInfo is the discovery attribute: who a device is and how many ports
// it has.
type NodeInfo struct {
	Type     NodeType
	NumPorts uint8
	// GUID is the device's globally unique identifier.
	GUID uint64
	// LocalPort is the port the SMP arrived on — how the SM learns the
	// reverse topology.
	LocalPort uint8
}

// Encode serializes the attribute into an SMP payload.
func (n NodeInfo) Encode(data *[64]byte) {
	data[0] = byte(n.Type)
	data[1] = n.NumPorts
	binary.BigEndian.PutUint64(data[2:10], n.GUID)
	data[10] = n.LocalPort
}

// DecodeNodeInfo parses a NodeInfo payload.
func DecodeNodeInfo(data *[64]byte) NodeInfo {
	return NodeInfo{
		Type:      NodeType(data[0]),
		NumPorts:  data[1],
		GUID:      binary.BigEndian.Uint64(data[2:10]),
		LocalPort: data[10],
	}
}

// PortInfo carries per-port state; Set(PortInfo) on a CA's port assigns its
// LID and LMC, which is how the addressing scheme reaches the endports.
type PortInfo struct {
	LID   LID
	LMC   uint8
	State uint8 // 0 = down, 4 = active (abridged)
}

// Encode serializes the attribute.
func (p PortInfo) Encode(data *[64]byte) {
	binary.BigEndian.PutUint16(data[0:2], uint16(p.LID))
	data[2] = p.LMC
	data[3] = p.State
}

// DecodePortInfo parses a PortInfo payload.
func DecodePortInfo(data *[64]byte) PortInfo {
	return PortInfo{
		LID:   LID(binary.BigEndian.Uint16(data[0:2])),
		LMC:   data[2],
		State: data[3],
	}
}

// SwitchInfo describes a switch's forwarding capability.
type SwitchInfo struct {
	// LinearFDBCap is the number of LFT entries the switch supports.
	LinearFDBCap uint16
	// LinearFDBTop is the highest DLID the switch will look up.
	LinearFDBTop uint16
}

// Encode serializes the attribute.
func (s SwitchInfo) Encode(data *[64]byte) {
	binary.BigEndian.PutUint16(data[0:2], s.LinearFDBCap)
	binary.BigEndian.PutUint16(data[2:4], s.LinearFDBTop)
}

// DecodeSwitchInfo parses a SwitchInfo payload.
func DecodeSwitchInfo(data *[64]byte) SwitchInfo {
	return SwitchInfo{
		LinearFDBCap: binary.BigEndian.Uint16(data[0:2]),
		LinearFDBTop: binary.BigEndian.Uint16(data[2:4]),
	}
}

// LFTBlock is one 64-entry block of a linear forwarding table; block i
// covers DLIDs [64*i, 64*i+63].
type LFTBlock struct {
	Ports [LFTBlockSize]uint8
}

// Encode serializes the attribute.
func (b LFTBlock) Encode(data *[64]byte) { copy(data[:], b.Ports[:]) }

// DecodeLFTBlock parses an LFT block payload.
func DecodeLFTBlock(data *[64]byte) LFTBlock {
	var b LFTBlock
	copy(b.Ports[:], data[:])
	return b
}
