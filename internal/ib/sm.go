package ib

import (
	"fmt"

	"mlid/internal/topology"
)

// SubnetManager plays the role of the IBA subnet manager (SM) for a simulated
// subnet: it discovers the fabric, assigns each endport its base LID and LMC,
// and programs every switch's linear forwarding table according to a routing
// engine. The paper's MLID and SLID schemes both run underneath this SM.
type SubnetManager struct {
	// Tree is the fabric the SM manages.
	Tree *topology.Tree
	// Engine computes LID assignments and forwarding entries.
	Engine RoutingEngine
}

// Discover sweeps the fabric the way an SM walks direct routes from its own
// port: a breadth-first traversal over switch ports starting at the switch
// attached to node 0. It returns the number of switches and endports found
// and an error if the sweep sees an inconsistency (an unwired port or an
// asymmetric link).
func (sm *SubnetManager) Discover() (switches, endports int, err error) {
	t := sm.Tree
	start, _ := t.NodeAttachment(0)
	seenSwitch := make([]bool, t.Switches())
	seenNode := make([]bool, t.Nodes())
	queue := []topology.SwitchID{start}
	seenSwitch[start] = true
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		switches++
		for k := 0; k < t.M(); k++ {
			ref := t.SwitchNeighbor(sw, k)
			switch ref.Kind {
			case topology.KindNone:
				return 0, 0, fmt.Errorf("ib: discovery found unwired port %d on %s", k, t.SwitchLabel(sw))
			case topology.KindNode:
				if !seenNode[ref.Node] {
					seenNode[ref.Node] = true
					endports++
				}
			case topology.KindSwitch:
				back := t.SwitchNeighbor(ref.Switch, ref.Port)
				if back.Kind != topology.KindSwitch || back.Switch != sw || back.Port != k {
					return 0, 0, fmt.Errorf("ib: asymmetric link at %s port %d", t.SwitchLabel(sw), k)
				}
				if !seenSwitch[ref.Switch] {
					seenSwitch[ref.Switch] = true
					queue = append(queue, ref.Switch)
				}
			}
		}
	}
	return switches, endports, nil
}

// Configure runs the full subnet bring-up: discovery, LID assignment, and
// forwarding-table programming. The returned subnet is validated.
func (sm *SubnetManager) Configure() (*Subnet, error) {
	t := sm.Tree
	eng := sm.Engine

	switches, endports, err := sm.Discover()
	if err != nil {
		return nil, err
	}
	if switches != t.Switches() || endports != t.Nodes() {
		return nil, fmt.Errorf("ib: discovery found %d switches / %d endports, topology declares %d / %d",
			switches, endports, t.Switches(), t.Nodes())
	}

	lmc := eng.LMC(t)
	if lmc > MaxLMC {
		return nil, fmt.Errorf("ib: scheme %s requires LMC %d > architectural maximum %d (fabric names more paths than the 3-bit LMC field can address)",
			eng.Name(), lmc, MaxLMC)
	}
	space := eng.LIDSpace(t)
	if space > 1<<16 {
		return nil, fmt.Errorf("%w: scheme %s needs %d LIDs, beyond the 16-bit space (%d)",
			ErrLIDSpaceExhausted, eng.Name(), space, 1<<16)
	}

	sn := &Subnet{
		Tree:     t,
		Engine:   eng,
		Endports: make([]LIDRange, t.Nodes()),
		LFTs:     make([]*LFT, t.Switches()),
		lidOwner: make([]int32, space),
	}
	for i := range sn.lidOwner {
		sn.lidOwner[i] = -1
	}
	for p := 0; p < t.Nodes(); p++ {
		r := LIDRange{Base: eng.BaseLID(t, topology.NodeID(p)), LMC: lmc}
		sn.Endports[p] = r
		for off := 0; off < r.Count(); off++ {
			lid := int(r.Base) + off
			if lid >= space {
				return nil, fmt.Errorf("ib: node %d LID %d beyond declared space %d", p, lid, space)
			}
			if sn.lidOwner[lid] >= 0 {
				return nil, fmt.Errorf("ib: LID %d assigned twice (nodes %d, %d)", lid, sn.lidOwner[lid], p)
			}
			sn.lidOwner[lid] = int32(p)
		}
	}
	for s := 0; s < t.Switches(); s++ {
		lft := NewLFT(space)
		for lid := 1; lid < space; lid++ {
			if sn.lidOwner[lid] < 0 {
				continue
			}
			abstract, ok := eng.OutPortAbstract(t, topology.SwitchID(s), LID(lid))
			if !ok {
				continue
			}
			if abstract < 0 || abstract >= t.M() {
				return nil, fmt.Errorf("ib: scheme %s routed LID %d at switch %d to abstract port %d",
					eng.Name(), lid, s, abstract)
			}
			if err := lft.Set(LID(lid), uint8(abstract+1)); err != nil {
				return nil, err
			}
		}
		sn.LFTs[s] = lft
	}
	if err := sn.Validate(); err != nil {
		return nil, err
	}
	return sn, nil
}
