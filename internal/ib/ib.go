// Package ib models the InfiniBand Architecture (IBA) mechanisms the routing
// scheme and simulator depend on: 16-bit local identifiers (LIDs), the LID
// Mask Control (LMC) multipath mechanism, linear forwarding tables (LFTs),
// the local route header (LRH) fields of a packet, and a subnet abstraction
// assembled by a subnet manager (see package ib's SubnetManager).
//
// Conventions taken from the IBA specification and used throughout:
//
//   - LID 0 is reserved and never assigned to an endport.
//   - An endport with LMC value c responds to the 2^c LIDs
//     [BaseLID, BaseLID + 2^c - 1]; the LMC field is 3 bits, so at most
//     2^7 = 128 paths can be named per endport.
//   - Switch port 0 is the internal management port; external ports are
//     numbered from 1. The topology package's "abstract" port k is the
//     physical external port k+1.
//   - A switch forwards a packet by indexing its linear forwarding table with
//     the packet's DLID; the entry is the physical output port.
package ib

import (
	"errors"
	"fmt"
)

// LID is an InfiniBand local identifier. Valid unicast LIDs are 1..0xBFFF;
// this model only requires them to be non-zero and within 16 bits.
type LID uint16

// MaxLMC is the largest LMC value the 3-bit LMC field can carry; an endport
// can therefore own at most 1<<MaxLMC = 128 LIDs.
const MaxLMC = 7

// PortNone is the LFT entry marking an unreachable DLID, following the IBA
// convention of 255 for invalid forwarding entries.
const PortNone = 0xFF

var (
	// ErrLIDOutOfRange reports an LFT access beyond the table.
	ErrLIDOutOfRange = errors.New("ib: LID out of forwarding-table range")
	// ErrNoRoute reports a DLID with no forwarding entry on some switch.
	ErrNoRoute = errors.New("ib: no route for DLID")
	// ErrLIDSpaceExhausted reports a routing scheme whose LID plan does not
	// fit the 16-bit LID space (e.g. MLID on FT(16,3) needs 65,537 LIDs,
	// one past the limit). Configure returns it wrapped with the sizes, so
	// callers can branch with errors.Is instead of parsing the message.
	ErrLIDSpaceExhausted = errors.New("ib: LID space exhausted")
)

// LFT is a linear forwarding table: a dense map from DLID to physical output
// port. Entry PortNone marks an unrouted DLID. Index 0 (the reserved LID) is
// always PortNone.
type LFT struct {
	ports []uint8
}

// NewLFT returns a table covering DLIDs [0, size).
func NewLFT(size int) *LFT {
	t := &LFT{ports: make([]uint8, size)}
	for i := range t.ports {
		t.ports[i] = PortNone
	}
	return t
}

// Size returns the number of entries (the exclusive upper bound on DLIDs).
func (t *LFT) Size() int { return len(t.ports) }

// Set records that packets destined to lid leave through the given physical
// port. Setting LID 0 or an out-of-range LID is rejected.
func (t *LFT) Set(lid LID, physPort uint8) error {
	if lid == 0 {
		return fmt.Errorf("%w: LID 0 is reserved", ErrLIDOutOfRange)
	}
	if int(lid) >= len(t.ports) {
		return fmt.Errorf("%w: %d >= %d", ErrLIDOutOfRange, lid, len(t.ports))
	}
	t.ports[lid] = physPort
	return nil
}

// Lookup returns the physical output port for a DLID. It returns ErrNoRoute
// for unrouted or reserved DLIDs and ErrLIDOutOfRange beyond the table.
func (t *LFT) Lookup(lid LID) (uint8, error) {
	if int(lid) >= len(t.ports) {
		return PortNone, fmt.Errorf("%w: %d >= %d", ErrLIDOutOfRange, lid, len(t.ports))
	}
	p := t.ports[lid]
	if p == PortNone || lid == 0 {
		return PortNone, fmt.Errorf("%w: %d", ErrNoRoute, lid)
	}
	return p, nil
}

// Port returns the raw entry for lid without error construction: PortNone
// for unrouted, out-of-range, or reserved LIDs. It exists for the
// simulator's forwarding-table compiler, which scans every (switch, DLID)
// pair and must not allocate per miss; interactive callers should prefer
// Lookup and its diagnostics.
func (t *LFT) Port(lid LID) uint8 {
	if lid == 0 || int(lid) >= len(t.ports) {
		return PortNone
	}
	return t.ports[lid]
}

// Clone returns an independent copy of the table. The live simulator clones
// every switch's LFT when fault injection is configured, so timed table
// updates never mutate the caller's subnet.
func (t *LFT) Clone() *LFT {
	c := &LFT{ports: make([]uint8, len(t.ports))}
	copy(c.ports, t.ports)
	return c
}

// Entries returns a copy of the raw table, for inspection and serialization.
func (t *LFT) Entries() []uint8 {
	out := make([]uint8, len(t.ports))
	copy(out, t.ports)
	return out
}

// LIDRange describes the LID block an endport owns under an LMC assignment.
type LIDRange struct {
	Base LID
	LMC  uint8
}

// Count returns the number of LIDs in the range (2^LMC).
func (r LIDRange) Count() int { return 1 << r.LMC }

// Contains reports whether lid falls inside the range.
func (r LIDRange) Contains(lid LID) bool {
	return lid >= r.Base && int(lid) < int(r.Base)+r.Count()
}

// Offset returns lid - Base; the caller must ensure Contains(lid).
func (r LIDRange) Offset(lid LID) int { return int(lid) - int(r.Base) }

// String implements fmt.Stringer.
func (r LIDRange) String() string {
	if r.LMC == 0 {
		return fmt.Sprintf("LID %d", r.Base)
	}
	return fmt.Sprintf("LIDs %d..%d (LMC %d)", r.Base, int(r.Base)+r.Count()-1, r.LMC)
}

// Packet carries the local route header (LRH) fields that drive subnet
// forwarding, plus bookkeeping used by the simulator and by route tracing.
type Packet struct {
	// SLID and DLID are the source and destination local identifiers from
	// the LRH. The DLID alone determines the path.
	SLID, DLID LID
	// VL is the virtual lane the packet travels on (data VLs start at 0 in
	// this model; the management VL15 is not simulated).
	VL uint8
	// Size is the packet length in bytes, including headers.
	Size int

	// Seq is a unique sequence number assigned at generation time.
	Seq uint64
	// Src and Dst are the endpoint indices (PIDs), for statistics.
	Src, Dst int32
	// GenTime and InjectTime record when the packet was created and when it
	// first left its source endport, in simulator nanoseconds.
	GenTime, InjectTime int64
}
