package ib

import (
	"testing"

	"mlid/internal/topology"
)

func TestAttributeRoundTrips(t *testing.T) {
	var data [64]byte
	ni := NodeInfo{Type: NodeTypeSwitch, NumPorts: 8, GUID: 0xdeadbeef01020304, LocalPort: 5}
	ni.Encode(&data)
	if got := DecodeNodeInfo(&data); got != ni {
		t.Errorf("NodeInfo: %+v != %+v", got, ni)
	}
	pi := PortInfo{LID: 1234, LMC: 3, State: 4}
	pi.Encode(&data)
	if got := DecodePortInfo(&data); got != pi {
		t.Errorf("PortInfo: %+v != %+v", got, pi)
	}
	si := SwitchInfo{LinearFDBCap: 4096, LinearFDBTop: 129}
	si.Encode(&data)
	if got := DecodeSwitchInfo(&data); got != si {
		t.Errorf("SwitchInfo: %+v != %+v", got, si)
	}
	var b LFTBlock
	for i := range b.Ports {
		b.Ports[i] = uint8(i * 3)
	}
	b.Encode(&data)
	if got := DecodeLFTBlock(&data); got != b {
		t.Errorf("LFTBlock mismatch")
	}
}

func TestMethodAndAttributeStrings(t *testing.T) {
	if MethodGet.String() != "SubnGet" || MethodSet.String() != "SubnSet" || MethodGetResp.String() != "SubnGetResp" {
		t.Error("method strings")
	}
	if Method(0x55).String() == "" {
		t.Error("unknown method string empty")
	}
	for _, a := range []Attribute{AttrNodeInfo, AttrPortInfo, AttrSwitchInfo, AttrLFTBlock, Attribute(0x999)} {
		if a.String() == "" {
			t.Errorf("attribute %d string empty", a)
		}
	}
}

func sendGet(t *testing.T, f *SMAFabric, origin topology.NodeID, attr Attribute, mod uint32, path ...uint8) *SMP {
	t.Helper()
	smp := &SMP{Method: MethodGet, Attribute: attr, AttrMod: mod, HopCount: uint8(len(path))}
	copy(smp.InitialPath[1:], path)
	if err := f.Send(origin, smp); err != nil {
		t.Fatal(err)
	}
	return smp
}

func TestSMPDirectedRouteWalk(t *testing.T) {
	tr := topology.MustNew(4, 2)
	f := NewSMAFabric(tr)

	// Empty path: the origin CA answers.
	smp := sendGet(t, f, 0, AttrNodeInfo, 0)
	if smp.Status != StatusOK {
		t.Fatalf("status %#x", smp.Status)
	}
	ni := DecodeNodeInfo(&smp.Data)
	if ni.Type != NodeTypeCA || ni.GUID != f.NodeAgent(0).GUID() {
		t.Fatalf("origin NodeInfo: %+v", ni)
	}

	// One hop: the origin's leaf switch.
	smp = sendGet(t, f, 0, AttrNodeInfo, 0, 1)
	ni = DecodeNodeInfo(&smp.Data)
	leaf, port := tr.NodeAttachment(0)
	if ni.Type != NodeTypeSwitch || ni.GUID != f.SwitchAgent(leaf).GUID() {
		t.Fatalf("leaf NodeInfo: %+v", ni)
	}
	if int(ni.LocalPort) != port+1 {
		t.Fatalf("arrival port %d, want %d", ni.LocalPort, port+1)
	}
	if int(ni.NumPorts) != tr.M() {
		t.Fatalf("ports %d", ni.NumPorts)
	}

	// Two hops: out the leaf's first up-port to a root.
	up := uint8(tr.DownPorts(leaf) + 1) // physical
	smp = sendGet(t, f, 0, AttrNodeInfo, 0, 1, up)
	ni = DecodeNodeInfo(&smp.Data)
	ref := tr.SwitchNeighbor(leaf, int(up)-1)
	if ni.GUID != f.SwitchAgent(ref.Switch).GUID() || int(ni.LocalPort) != ref.Port+1 {
		t.Fatalf("root NodeInfo: %+v, want switch %d port %d", ni, ref.Switch, ref.Port+1)
	}
}

func TestSMPBadRoutes(t *testing.T) {
	tr := topology.MustNew(4, 2)
	f := NewSMAFabric(tr)
	// Invalid CA exit port.
	smp := &SMP{Method: MethodGet, Attribute: AttrNodeInfo, HopCount: 1}
	smp.InitialPath[1] = 3
	if err := f.Send(0, smp); err == nil {
		t.Error("CA exit port 3 accepted")
	}
	// Invalid switch exit port.
	smp = &SMP{Method: MethodGet, Attribute: AttrNodeInfo, HopCount: 2}
	smp.InitialPath[1] = 1
	smp.InitialPath[2] = uint8(tr.M() + 1)
	if err := f.Send(0, smp); err == nil {
		t.Error("switch exit port m+1 accepted")
	}
	// Invalid origin.
	if err := f.Send(-1, &SMP{}); err == nil {
		t.Error("invalid origin accepted")
	}
	if err := f.Send(topology.NodeID(tr.Nodes()), &SMP{}); err == nil {
		t.Error("out-of-range origin accepted")
	}
}

func TestSMASetAndGetPortInfo(t *testing.T) {
	tr := topology.MustNew(4, 2)
	f := NewSMAFabric(tr)
	set := &SMP{Method: MethodSet, Attribute: AttrPortInfo, AttrMod: 1}
	PortInfo{LID: 42, LMC: 2, State: 4}.Encode(&set.Data)
	if err := f.Send(0, set); err != nil || set.Status != StatusOK {
		t.Fatalf("set: %v status %#x", err, set.Status)
	}
	got := sendGet(t, f, 0, AttrPortInfo, 1)
	pi := DecodePortInfo(&got.Data)
	if pi.LID != 42 || pi.LMC != 2 {
		t.Fatalf("read back %+v", pi)
	}
	// Reserved LID 0 rejected.
	bad := &SMP{Method: MethodSet, Attribute: AttrPortInfo, AttrMod: 1}
	PortInfo{LID: 0}.Encode(&bad.Data)
	f.Send(0, bad)
	if bad.Status != StatusInvalidAttrValue {
		t.Fatalf("LID 0 set status %#x", bad.Status)
	}
	// LMC beyond the 3-bit field rejected.
	bad2 := &SMP{Method: MethodSet, Attribute: AttrPortInfo, AttrMod: 1}
	PortInfo{LID: 9, LMC: 8}.Encode(&bad2.Data)
	f.Send(0, bad2)
	if bad2.Status != StatusInvalidAttrValue {
		t.Fatalf("LMC 8 set status %#x", bad2.Status)
	}
}

func TestSMALFTBlocks(t *testing.T) {
	tr := topology.MustNew(4, 2)
	f := NewSMAFabric(tr)

	// Announce the table size on node 0's leaf switch.
	si := &SMP{Method: MethodSet, Attribute: AttrSwitchInfo, HopCount: 1}
	si.InitialPath[1] = 1
	SwitchInfo{LinearFDBTop: 130}.Encode(&si.Data)
	if err := f.Send(0, si); err != nil || si.Status != StatusOK {
		t.Fatalf("SwitchInfo set: %v status %#x", err, si.Status)
	}
	// Write block 1 (LIDs 64..127).
	set := &SMP{Method: MethodSet, Attribute: AttrLFTBlock, AttrMod: 1, HopCount: 1}
	set.InitialPath[1] = 1
	var b LFTBlock
	for i := range b.Ports {
		b.Ports[i] = uint8(1 + i%4)
	}
	b.Encode(&set.Data)
	if err := f.Send(0, set); err != nil || set.Status != StatusOK {
		t.Fatalf("LFT set: %v status %#x", err, set.Status)
	}
	// Read it back.
	get := sendGet(t, f, 0, AttrLFTBlock, 1, 1)
	rb := DecodeLFTBlock(&get.Data)
	if rb != b {
		t.Fatal("LFT block read-back mismatch")
	}
	// The agent's LFT view reflects it.
	leaf, _ := tr.NodeAttachment(0)
	lft := f.SwitchAgent(leaf).LFT()
	p, err := lft.Lookup(70)
	if err != nil || p != b.Ports[6] {
		t.Fatalf("agent LFT lookup: %d %v", p, err)
	}
	// Out-of-range port in a block is rejected.
	bad := &SMP{Method: MethodSet, Attribute: AttrLFTBlock, AttrMod: 0, HopCount: 1}
	bad.InitialPath[1] = 1
	var bb LFTBlock
	bb.Ports[1] = uint8(tr.M() + 1)
	bb.Encode(&bad.Data)
	f.Send(0, bad)
	if bad.Status != StatusInvalidAttrValue {
		t.Fatalf("bad port set status %#x", bad.Status)
	}
	// Out-of-cap block index rejected.
	far := &SMP{Method: MethodSet, Attribute: AttrLFTBlock, AttrMod: 1 << 12, HopCount: 1}
	far.InitialPath[1] = 1
	bb = LFTBlock{}
	bb.Encode(&far.Data)
	f.Send(0, far)
	if far.Status != StatusInvalidAttrValue {
		t.Fatalf("far block set status %#x", far.Status)
	}
}

func TestSMAUnsupported(t *testing.T) {
	tr := topology.MustNew(4, 2)
	f := NewSMAFabric(tr)
	// Unknown attribute on a CA.
	smp := &SMP{Method: MethodGet, Attribute: Attribute(0x777)}
	f.Send(0, smp)
	if smp.Status != StatusUnsupportedAttr {
		t.Errorf("CA unknown attr status %#x", smp.Status)
	}
	// Bad method on a switch.
	smp = &SMP{Method: Method(0x7), Attribute: AttrNodeInfo, HopCount: 1}
	smp.InitialPath[1] = 1
	f.Send(0, smp)
	if smp.Status != StatusBadMethod {
		t.Errorf("switch bad method status %#x", smp.Status)
	}
	// SwitchInfo get works and reports capacity.
	smp = sendGet(t, f, 0, AttrSwitchInfo, 0, 1)
	si := DecodeSwitchInfo(&smp.Data)
	if si.LinearFDBCap == 0 {
		t.Error("zero FDB capacity")
	}
	// PortInfo get on a switch reports an active state.
	smp = sendGet(t, f, 0, AttrPortInfo, 2, 1)
	if DecodePortInfo(&smp.Data).State != 4 {
		t.Error("switch port not active")
	}
}
