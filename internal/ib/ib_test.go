package ib

import (
	"errors"
	"testing"
)

func TestLFTBasics(t *testing.T) {
	lft := NewLFT(8)
	if lft.Size() != 8 {
		t.Fatalf("Size = %d", lft.Size())
	}
	if _, err := lft.Lookup(3); !errors.Is(err, ErrNoRoute) {
		t.Errorf("unset lookup: %v", err)
	}
	if err := lft.Set(3, 5); err != nil {
		t.Fatal(err)
	}
	p, err := lft.Lookup(3)
	if err != nil || p != 5 {
		t.Errorf("Lookup(3) = %d, %v", p, err)
	}
}

func TestLFTRejectsReservedAndOutOfRange(t *testing.T) {
	lft := NewLFT(4)
	if err := lft.Set(0, 1); err == nil {
		t.Error("Set(0) accepted reserved LID")
	}
	if err := lft.Set(4, 1); !errors.Is(err, ErrLIDOutOfRange) {
		t.Errorf("Set(4): %v", err)
	}
	if _, err := lft.Lookup(9); !errors.Is(err, ErrLIDOutOfRange) {
		t.Errorf("Lookup(9): %v", err)
	}
	if _, err := lft.Lookup(0); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Lookup(0): %v", err)
	}
}

func TestLFTEntriesCopy(t *testing.T) {
	lft := NewLFT(4)
	lft.Set(1, 2)
	e := lft.Entries()
	if e[1] != 2 || e[0] != PortNone || e[3] != PortNone {
		t.Errorf("Entries = %v", e)
	}
	e[1] = 7 // mutate the copy
	if p, _ := lft.Lookup(1); p != 2 {
		t.Error("Entries returned aliased storage")
	}
}

func TestLIDRange(t *testing.T) {
	r := LIDRange{Base: 9, LMC: 2}
	if r.Count() != 4 {
		t.Errorf("Count = %d", r.Count())
	}
	for lid := LID(9); lid <= 12; lid++ {
		if !r.Contains(lid) {
			t.Errorf("Contains(%d) = false", lid)
		}
	}
	if r.Contains(8) || r.Contains(13) {
		t.Error("Contains accepted out-of-range LID")
	}
	if r.Offset(11) != 2 {
		t.Errorf("Offset(11) = %d", r.Offset(11))
	}
	if r.String() != "LIDs 9..12 (LMC 2)" {
		t.Errorf("String = %q", r.String())
	}
	if (LIDRange{Base: 5}).String() != "LID 5" {
		t.Errorf("LMC-0 String = %q", LIDRange{Base: 5}.String())
	}
}
