package ib

import (
	"fmt"

	"mlid/internal/topology"
)

// RoutingEngine is implemented by a routing scheme (package core provides the
// paper's MLID scheme and the SLID baseline). The subnet manager consults it
// to size the LID space, to hand out endport LID ranges, and to fill each
// switch's linear forwarding table.
type RoutingEngine interface {
	// Name identifies the scheme ("MLID", "SLID", ...).
	Name() string
	// LMC returns the LID Mask Control value every endport is configured
	// with; each endport owns 1<<LMC consecutive LIDs.
	LMC(t *topology.Tree) uint8
	// BaseLID returns the first LID of the node's range. Base LIDs must be
	// non-zero, aligned so ranges do not overlap, and distinct per node.
	BaseLID(t *topology.Tree, n topology.NodeID) LID
	// LIDSpace returns the exclusive upper bound of assigned LIDs, i.e. the
	// size every forwarding table must have.
	LIDSpace(t *topology.Tree) int
	// OutPortAbstract returns the abstract (0-based) output port a switch
	// uses for the DLID, or ok=false when the scheme does not route that LID.
	OutPortAbstract(t *topology.Tree, sw topology.SwitchID, lid LID) (port int, ok bool)
	// DLID performs the scheme's path selection: the destination LID a
	// source uses when sending to dst. src == dst is allowed and returns the
	// destination's base LID.
	DLID(t *topology.Tree, src, dst topology.NodeID) LID
}

// Subnet is a fully configured InfiniBand subnet over an FT(m, n) fabric:
// every endport has its LID range and every switch its forwarding table.
type Subnet struct {
	Tree   *topology.Tree
	Engine RoutingEngine

	// Endports[p] is the LID range of processing node p.
	Endports []LIDRange
	// LFTs[s] is the linear forwarding table of switch s.
	LFTs []*LFT

	lidOwner []int32 // LID -> node PID, or -1
}

// FinishAssembly rebuilds the subnet's LID-ownership index from its endport
// ranges and validates the result. It is used by subnet managers that
// assemble a Subnet from device read-backs (see package sm) rather than
// through Configure.
func (s *Subnet) FinishAssembly() error {
	space := 0
	for _, lft := range s.LFTs {
		if lft == nil {
			return fmt.Errorf("ib: subnet assembly missing a forwarding table")
		}
		if lft.Size() > space {
			space = lft.Size()
		}
	}
	for _, r := range s.Endports {
		if end := int(r.Base) + r.Count(); end > space {
			space = end
		}
	}
	s.lidOwner = make([]int32, space)
	for i := range s.lidOwner {
		s.lidOwner[i] = -1
	}
	for p, r := range s.Endports {
		for off := 0; off < r.Count(); off++ {
			lid := int(r.Base) + off
			if lid >= space {
				return fmt.Errorf("ib: node %d LID %d beyond assembled space %d", p, lid, space)
			}
			if s.lidOwner[lid] >= 0 {
				return fmt.Errorf("ib: LID %d owned by nodes %d and %d", lid, s.lidOwner[lid], p)
			}
			s.lidOwner[lid] = int32(p)
		}
	}
	return s.Validate()
}

// OwnerOf returns the node owning the LID, if any.
func (s *Subnet) OwnerOf(lid LID) (topology.NodeID, bool) {
	if int(lid) >= len(s.lidOwner) || s.lidOwner[lid] < 0 {
		return 0, false
	}
	return topology.NodeID(s.lidOwner[lid]), true
}

// OutPort looks up the physical output port a switch forwards the DLID to.
func (s *Subnet) OutPort(sw topology.SwitchID, dlid LID) (uint8, error) {
	return s.LFTs[sw].Lookup(dlid)
}

// DLID is the subnet-level path selection: the LID a source should place in
// the DLID field when sending to dst.
func (s *Subnet) DLID(src, dst topology.NodeID) LID {
	return s.Engine.DLID(s.Tree, src, dst)
}

// LIDSpace returns the size of the subnet's LID table.
func (s *Subnet) LIDSpace() int { return len(s.lidOwner) }

// Validate cross-checks the subnet invariants: non-overlapping LID ranges,
// complete tables, and table entries within each switch's physical ports.
func (s *Subnet) Validate() error {
	t := s.Tree
	owner := make([]int32, s.LIDSpace())
	for i := range owner {
		owner[i] = -1
	}
	for p, r := range s.Endports {
		if r.Base == 0 {
			return fmt.Errorf("ib: node %d assigned reserved base LID 0", p)
		}
		for off := 0; off < r.Count(); off++ {
			lid := int(r.Base) + off
			if lid >= s.LIDSpace() {
				return fmt.Errorf("ib: node %d LID %d beyond table size %d", p, lid, s.LIDSpace())
			}
			if owner[lid] >= 0 {
				return fmt.Errorf("ib: LID %d owned by both node %d and node %d", lid, owner[lid], p)
			}
			owner[lid] = int32(p)
		}
	}
	for sw, lft := range s.LFTs {
		if lft.Size() != s.LIDSpace() {
			return fmt.Errorf("ib: switch %d table size %d != %d", sw, lft.Size(), s.LIDSpace())
		}
		for lid := 1; lid < lft.Size(); lid++ {
			port := lft.ports[lid]
			if port == PortNone {
				if owner[lid] >= 0 {
					return fmt.Errorf("ib: switch %d has no route for assigned LID %d", sw, lid)
				}
				continue
			}
			if port == 0 || int(port) > t.M() {
				return fmt.Errorf("ib: switch %d LID %d routed to invalid physical port %d", sw, lid, port)
			}
		}
	}
	return nil
}
