package ib_test

import (
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
)

func TestExportImportRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{4, 2}, {8, 2}, {4, 3}} {
		tr := topology.MustNew(dims[0], dims[1])
		for _, s := range core.Schemes() {
			orig, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
			if err != nil {
				t.Fatal(err)
			}
			data, err := orig.Export()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ib.Import(data, s)
			if err != nil {
				t.Fatalf("%s %s: %v", tr, s.Name(), err)
			}
			if !reflect.DeepEqual(back.Endports, orig.Endports) {
				t.Fatalf("%s %s: endports differ", tr, s.Name())
			}
			for i := range back.LFTs {
				if !reflect.DeepEqual(back.LFTs[i].Entries(), orig.LFTs[i].Entries()) {
					t.Fatalf("%s %s: switch %d differs", tr, s.Name(), i)
				}
			}
			// The imported subnet routes.
			dlid := back.DLID(0, topology.NodeID(tr.Nodes()-1))
			if _, err := back.OutPort(0, dlid); err != nil {
				// Switch 0 may not be on the path; just check the DLID is owned.
				if _, ok := back.OwnerOf(dlid); !ok {
					t.Fatalf("%s %s: imported subnet broken", tr, s.Name())
				}
			}
		}
	}
}

func TestImportRejectsMismatchedEngine(t *testing.T) {
	tr := topology.MustNew(4, 2)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sn.Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ib.Import(data, core.NewSLID()); err == nil {
		t.Error("scheme mismatch accepted")
	}
	if _, err := ib.Import(data, nil); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ib.Import([]byte("not json"), core.NewMLID()); err == nil {
		t.Error("garbage accepted")
	}
	tr := topology.MustNew(4, 2)
	sn, _ := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	data, _ := sn.Export()
	// Corrupt the topology parameters.
	bad := strings.Replace(string(data), `"m": 4`, `"m": 3`, 1)
	if bad == string(data) {
		t.Skip("json layout changed; update the corruption")
	}
	if _, err := ib.Import([]byte(bad), core.NewMLID()); err == nil {
		t.Error("corrupted parameters accepted")
	}
}
