package ib

import (
	"fmt"

	"mlid/internal/topology"
)

// This file implements the subnet management agents (SMAs) that live in
// every InfiniBand device, and a directed-route transport that walks SMPs
// across the physical fabric. Together with mad.go it lets a subnet manager
// bring up the network the way a real SM does — by exchanging packets with
// anonymous devices — instead of reading the topology object directly.

// SwitchSMA is the management agent of one switch: its GUID, port count and
// forwarding state, addressable only through SMPs.
type SwitchSMA struct {
	guid     uint64
	numPorts uint8
	fdbCap   int
	fdbTop   int
	lft      []uint8
}

// NodeSMA is the management agent of a channel adapter (processing node).
type NodeSMA struct {
	guid uint64
	port PortInfo
}

// GUID returns the device GUID (exposed for harness bookkeeping; the subnet
// manager itself only learns GUIDs from NodeInfo responses).
func (a *SwitchSMA) GUID() uint64 { return a.guid }

// GUID returns the device GUID.
func (a *NodeSMA) GUID() uint64 { return a.guid }

// PortInfo returns the CA's current port state (LID, LMC).
func (a *NodeSMA) PortInfo() PortInfo { return a.port }

// LFT copies the switch's programmed forwarding table into an LFT sized to
// its FDB top.
func (a *SwitchSMA) LFT() *LFT {
	t := NewLFT(a.fdbTop + 1)
	for lid := 1; lid <= a.fdbTop && lid < len(a.lft); lid++ {
		if a.lft[lid] != PortNone {
			// Entries were validated on Set; ignore the impossible error.
			_ = t.Set(LID(lid), a.lft[lid])
		}
	}
	return t
}

func (a *SwitchSMA) process(smp *SMP, arrival uint8) {
	switch {
	case smp.Method == MethodGet && smp.Attribute == AttrNodeInfo:
		NodeInfo{Type: NodeTypeSwitch, NumPorts: a.numPorts, GUID: a.guid, LocalPort: arrival}.Encode(&smp.Data)
	case smp.Method == MethodGet && smp.Attribute == AttrSwitchInfo:
		SwitchInfo{LinearFDBCap: uint16(a.fdbCap), LinearFDBTop: uint16(a.fdbTop)}.Encode(&smp.Data)
	case smp.Method == MethodSet && smp.Attribute == AttrSwitchInfo:
		si := DecodeSwitchInfo(&smp.Data)
		if int(si.LinearFDBTop) >= a.fdbCap {
			smp.Status = StatusInvalidAttrValue
			return
		}
		a.fdbTop = int(si.LinearFDBTop)
		a.ensureLFT()
	case smp.Attribute == AttrLFTBlock && (smp.Method == MethodGet || smp.Method == MethodSet):
		block := int(smp.AttrMod)
		lo := block * LFTBlockSize
		if lo >= a.fdbCap {
			smp.Status = StatusInvalidAttrValue
			return
		}
		a.ensureLFT()
		if smp.Method == MethodSet {
			b := DecodeLFTBlock(&smp.Data)
			for i, port := range b.Ports {
				lid := lo + i
				if lid >= len(a.lft) {
					break
				}
				if port != PortNone && (port == 0 || port > a.numPorts) {
					smp.Status = StatusInvalidAttrValue
					return
				}
				a.lft[lid] = port
			}
		} else {
			var b LFTBlock
			for i := range b.Ports {
				lid := lo + i
				if lid < len(a.lft) {
					b.Ports[i] = a.lft[lid]
				} else {
					b.Ports[i] = PortNone
				}
			}
			b.Encode(&smp.Data)
		}
	case smp.Method == MethodGet && smp.Attribute == AttrPortInfo:
		// Switch external ports carry no LID in this model; report state.
		PortInfo{State: 4}.Encode(&smp.Data)
	case smp.Method != MethodGet && smp.Method != MethodSet:
		smp.Status = StatusBadMethod
		return
	default:
		smp.Status = StatusUnsupportedAttr
		return
	}
	smp.Status = StatusOK
	smp.Method = MethodGetResp
}

func (a *SwitchSMA) ensureLFT() {
	need := a.fdbTop + 1
	if need < LFTBlockSize {
		need = LFTBlockSize
	}
	for len(a.lft) < need {
		a.lft = append(a.lft, PortNone)
	}
}

func (a *NodeSMA) process(smp *SMP, arrival uint8) {
	switch {
	case smp.Method == MethodGet && smp.Attribute == AttrNodeInfo:
		NodeInfo{Type: NodeTypeCA, NumPorts: 1, GUID: a.guid, LocalPort: arrival}.Encode(&smp.Data)
	case smp.Method == MethodGet && smp.Attribute == AttrPortInfo:
		a.port.Encode(&smp.Data)
	case smp.Method == MethodSet && smp.Attribute == AttrPortInfo:
		p := DecodePortInfo(&smp.Data)
		if p.LID == 0 || p.LMC > MaxLMC {
			smp.Status = StatusInvalidAttrValue
			return
		}
		a.port = p
	case smp.Method != MethodGet && smp.Method != MethodSet:
		smp.Status = StatusBadMethod
		return
	default:
		smp.Status = StatusUnsupportedAttr
		return
	}
	smp.Status = StatusOK
	smp.Method = MethodGetResp
}

// SMAFabric is the physical management plane of a fabric: one agent per
// device, plus the directed-route walker that carries SMPs between them.
// GUIDs are arbitrary unique 64-bit values; the subnet manager must treat
// them as opaque.
type SMAFabric struct {
	tree     *topology.Tree
	switches []*SwitchSMA
	nodes    []*NodeSMA
}

// NewSMAFabric builds the agents for every device of the tree.
func NewSMAFabric(t *topology.Tree) *SMAFabric {
	f := &SMAFabric{
		tree:     t,
		switches: make([]*SwitchSMA, t.Switches()),
		nodes:    make([]*NodeSMA, t.Nodes()),
	}
	for s := range f.switches {
		f.switches[s] = &SwitchSMA{
			// An arbitrary vendor-style GUID block; the SM never parses it.
			guid:     0x0002_c900_0000_0000 | uint64(s),
			numPorts: uint8(t.M()),
			// The largest block-aligned capacity the 16-bit SwitchInfo
			// field can report.
			fdbCap: 0xFFC0,
		}
	}
	for p := range f.nodes {
		f.nodes[p] = &NodeSMA{guid: 0x0008_f100_0000_0000 | uint64(p)}
	}
	return f
}

// SwitchAgent exposes a switch's agent for harness bookkeeping.
func (f *SMAFabric) SwitchAgent(id topology.SwitchID) *SwitchSMA { return f.switches[id] }

// NodeAgent exposes a CA's agent for harness bookkeeping.
func (f *SMAFabric) NodeAgent(id topology.NodeID) *NodeSMA { return f.nodes[id] }

// Send walks the SMP's directed route starting at the channel adapter
// `origin` and delivers it to the device at the end of the path, whose
// agent processes it in place (the response travels the reversed path,
// which this model folds into the call). Path entries are physical port
// numbers; entry 0 is unused. An empty path (HopCount 0) addresses the
// origin CA itself.
func (f *SMAFabric) Send(origin topology.NodeID, smp *SMP) error {
	if !f.tree.ValidNode(origin) {
		return fmt.Errorf("ib: SMP origin node %d invalid", origin)
	}
	if int(smp.HopCount) >= MaxHops {
		return fmt.Errorf("ib: SMP hop count %d exceeds maximum", smp.HopCount)
	}
	type device struct {
		sw   *SwitchSMA
		node *NodeSMA
		id   int32
	}
	cur := device{node: f.nodes[origin], id: int32(origin)}
	arrival := uint8(0)
	for hop := 1; hop <= int(smp.HopCount); hop++ {
		exit := smp.InitialPath[hop]
		if cur.node != nil {
			// A CA has a single external port, physical 1.
			if exit != 1 {
				return fmt.Errorf("ib: SMP hop %d exits CA via invalid port %d", hop, exit)
			}
			sw, port := f.tree.NodeAttachment(topology.NodeID(cur.id))
			cur = device{sw: f.switches[sw], id: int32(sw)}
			arrival = uint8(port + 1)
			continue
		}
		if exit == 0 || int(exit) > f.tree.M() {
			return fmt.Errorf("ib: SMP hop %d exits switch via invalid port %d", hop, exit)
		}
		ref := f.tree.SwitchNeighbor(topology.SwitchID(cur.id), int(exit)-1)
		switch ref.Kind {
		case topology.KindNode:
			cur = device{node: f.nodes[ref.Node], id: int32(ref.Node)}
			arrival = 1
		case topology.KindSwitch:
			cur = device{sw: f.switches[ref.Switch], id: int32(ref.Switch)}
			arrival = uint8(ref.Port + 1)
		default:
			return fmt.Errorf("ib: SMP hop %d fell off the fabric", hop)
		}
	}
	if cur.sw != nil {
		cur.sw.process(smp, arrival)
	} else {
		cur.node.process(smp, arrival)
	}
	return nil
}
