package ib

import (
	"encoding/json"
	"fmt"

	"mlid/internal/topology"
)

// subnetJSON is the serialized form of a configured subnet: enough to
// reconstruct the fabric parameters, every endport's LID range and every
// switch's forwarding table. Forwarding tables serialize as byte slices
// (base64 in JSON).
type subnetJSON struct {
	M        int       `json:"m"`
	N        int       `json:"n"`
	Scheme   string    `json:"scheme"`
	LIDSpace int       `json:"lid_space"`
	Base     []LID     `json:"base_lids"`
	LMC      uint8     `json:"lmc"`
	LFTs     [][]uint8 `json:"lfts"`
}

// Export serializes the subnet for offline inspection, diffing, or
// re-import; see Import.
func (s *Subnet) Export() ([]byte, error) {
	out := subnetJSON{
		M:        s.Tree.M(),
		N:        s.Tree.N(),
		LIDSpace: s.LIDSpace(),
		Base:     make([]LID, len(s.Endports)),
		LFTs:     make([][]uint8, len(s.LFTs)),
	}
	if s.Engine != nil {
		out.Scheme = s.Engine.Name()
	}
	for i, r := range s.Endports {
		out.Base[i] = r.Base
		out.LMC = r.LMC
	}
	for i, lft := range s.LFTs {
		out.LFTs[i] = lft.Entries()
	}
	return json.MarshalIndent(out, "", " ")
}

// Import reconstructs a subnet from Export's output. The engine must match
// the stored scheme name (it provides path selection for the reconstructed
// subnet); the imported tables are validated before use.
func Import(data []byte, engine RoutingEngine) (*Subnet, error) {
	var in subnetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("ib: import: %w", err)
	}
	if engine == nil || engine.Name() != in.Scheme {
		name := "<nil>"
		if engine != nil {
			name = engine.Name()
		}
		return nil, fmt.Errorf("ib: import: engine %s does not match stored scheme %q", name, in.Scheme)
	}
	t, err := topology.New(in.M, in.N)
	if err != nil {
		return nil, fmt.Errorf("ib: import: %w", err)
	}
	if len(in.Base) != t.Nodes() || len(in.LFTs) != t.Switches() {
		return nil, fmt.Errorf("ib: import: %d endports / %d tables for FT(%d,%d)",
			len(in.Base), len(in.LFTs), in.M, in.N)
	}
	sn := &Subnet{
		Tree:     t,
		Engine:   engine,
		Endports: make([]LIDRange, t.Nodes()),
		LFTs:     make([]*LFT, t.Switches()),
	}
	for i, base := range in.Base {
		sn.Endports[i] = LIDRange{Base: base, LMC: in.LMC}
	}
	for i, entries := range in.LFTs {
		if len(entries) != in.LIDSpace {
			return nil, fmt.Errorf("ib: import: switch %d table size %d != %d", i, len(entries), in.LIDSpace)
		}
		lft := NewLFT(in.LIDSpace)
		for lid := 1; lid < len(entries); lid++ {
			if entries[lid] == PortNone {
				continue
			}
			if err := lft.Set(LID(lid), entries[lid]); err != nil {
				return nil, fmt.Errorf("ib: import: switch %d: %w", i, err)
			}
		}
		sn.LFTs[i] = lft
	}
	if err := sn.FinishAssembly(); err != nil {
		return nil, fmt.Errorf("ib: import: %w", err)
	}
	return sn, nil
}
