package topology

import "fmt"

// Adjacency is a fully materialized wiring table of a tree, used by the
// validator, the subnet-manager discovery sweep and by tests. Entry
// [switch][port] is the peer of that abstract port.
type Adjacency struct {
	// SwitchPeers[s][k] is the peer of switch s, abstract port k.
	SwitchPeers [][]PortRef
	// NodePeers[p] is the (switch, port) a node attaches to.
	NodePeers []PortRef
}

// BuildAdjacency materializes the wiring of the whole tree.
func (t *Tree) BuildAdjacency() *Adjacency {
	a := &Adjacency{
		SwitchPeers: make([][]PortRef, t.switches),
		NodePeers:   make([]PortRef, t.nodes),
	}
	for s := 0; s < t.switches; s++ {
		row := make([]PortRef, t.m)
		for k := 0; k < t.m; k++ {
			row[k] = t.SwitchNeighbor(SwitchID(s), k)
		}
		a.SwitchPeers[s] = row
	}
	for p := 0; p < t.nodes; p++ {
		sw, port := t.NodeAttachment(NodeID(p))
		a.NodePeers[p] = PortRef{Kind: KindSwitch, Switch: sw, Port: port}
	}
	return a
}

// Validate checks the structural invariants of the constructed tree:
//
//   - every link is bidirectional and consistent (A's view of B matches B's
//     view of A);
//   - every switch has exactly m wired ports, split into the documented
//     down/up ranges;
//   - every node attaches to exactly one leaf-switch port, and every
//     leaf-switch down port holds exactly one node;
//   - level populations and totals match the closed-form counts.
//
// It returns nil when the topology is sound.
func (t *Tree) Validate() error {
	adj := t.BuildAdjacency()

	// Node attachments.
	seen := make(map[[2]int32]NodeID)
	for p := 0; p < t.nodes; p++ {
		ref := adj.NodePeers[p]
		if ref.Kind != KindSwitch {
			return fmt.Errorf("node %d attaches to non-switch %v", p, ref)
		}
		if !t.ValidSwitch(ref.Switch) {
			return fmt.Errorf("node %d attaches to invalid switch %d", p, ref.Switch)
		}
		if lvl := t.SwitchLevel(ref.Switch); lvl != t.n-1 {
			return fmt.Errorf("node %d attaches to level-%d switch %s", p, lvl, t.SwitchLabel(ref.Switch))
		}
		key := [2]int32{int32(ref.Switch), int32(ref.Port)}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("nodes %d and %d share %s port %d", prev, p, t.SwitchLabel(ref.Switch), ref.Port)
		}
		seen[key] = NodeID(p)
		// Reverse view.
		back := adj.SwitchPeers[ref.Switch][ref.Port]
		if back.Kind != KindNode || back.Node != NodeID(p) {
			return fmt.Errorf("asymmetric node link: node %d -> %s port %d -> %v", p, t.SwitchLabel(ref.Switch), ref.Port, back)
		}
	}

	// Switch wiring.
	for s := 0; s < t.switches; s++ {
		id := SwitchID(s)
		level := t.SwitchLevel(id)
		down := t.DownPorts(id)
		for k := 0; k < t.m; k++ {
			ref := adj.SwitchPeers[s][k]
			switch ref.Kind {
			case KindNone:
				return fmt.Errorf("%s port %d unwired", t.SwitchLabel(id), k)
			case KindNode:
				if level != t.n-1 {
					return fmt.Errorf("%s (level %d) port %d holds a node", t.SwitchLabel(id), level, k)
				}
				if k >= down {
					return fmt.Errorf("%s up-port %d holds a node", t.SwitchLabel(id), k)
				}
			case KindSwitch:
				peerLevel := t.SwitchLevel(ref.Switch)
				wantPeer := level + 1
				if k >= down {
					wantPeer = level - 1
				}
				if peerLevel != wantPeer {
					return fmt.Errorf("%s port %d connects level %d, want %d", t.SwitchLabel(id), k, peerLevel, wantPeer)
				}
				back := adj.SwitchPeers[ref.Switch][ref.Port]
				if back.Kind != KindSwitch || back.Switch != id || back.Port != k {
					return fmt.Errorf("asymmetric link: %s port %d -> %s port %d -> %v",
						t.SwitchLabel(id), k, t.SwitchLabel(ref.Switch), ref.Port, back)
				}
			}
		}
	}

	// Level populations.
	counts := make([]int, t.n)
	for s := 0; s < t.switches; s++ {
		counts[t.SwitchLevel(SwitchID(s))]++
	}
	for lvl, c := range counts {
		if c != t.SwitchesInLevel(lvl) {
			return fmt.Errorf("level %d has %d switches, want %d", lvl, c, t.SwitchesInLevel(lvl))
		}
	}
	return nil
}
