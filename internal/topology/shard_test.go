package topology

import "testing"

func TestShardAssignment(t *testing.T) {
	for _, tc := range []struct{ m, n, leaves int }{
		{4, 2, 4}, {8, 2, 8}, {32, 2, 32}, {8, 3, 32}, {16, 3, 128}, {4, 1, 1},
	} {
		tr := MustNew(tc.m, tc.n)
		if got := tr.MaxShards(); got != tc.leaves {
			t.Errorf("FT(%d,%d): MaxShards = %d, want %d", tc.m, tc.n, got, tc.leaves)
		}
		for _, shards := range []int{1, 2, 4, tc.leaves} {
			if shards > tc.leaves {
				continue
			}
			// Every switch maps into range; per-level assignment is
			// monotone non-decreasing in label order and covers every shard.
			seen := make(map[int]bool)
			for sw := 0; sw < tr.Switches(); sw++ {
				sh := tr.ShardOfSwitch(shards, SwitchID(sw))
				if sh < 0 || sh >= shards {
					t.Fatalf("FT(%d,%d) shards=%d: switch %d -> shard %d out of range",
						tc.m, tc.n, shards, sw, sh)
				}
				if tr.SwitchLevel(SwitchID(sw)) == tr.Levels()-1 {
					seen[sh] = true
				}
			}
			if len(seen) != shards {
				t.Errorf("FT(%d,%d) shards=%d: leaf level covers %d shards",
					tc.m, tc.n, shards, len(seen))
			}
			// A node always shares its leaf switch's shard, so the
			// attachment link never crosses shards.
			for i := 0; i < tr.Nodes(); i++ {
				sw, _ := tr.NodeAttachment(NodeID(i))
				if got, want := tr.ShardOfNode(shards, NodeID(i)), tr.ShardOfSwitch(shards, sw); got != want {
					t.Fatalf("FT(%d,%d) shards=%d: node %d shard %d != leaf switch shard %d",
						tc.m, tc.n, shards, i, got, want)
				}
			}
		}
	}
}
