package topology

import (
	"strings"
	"testing"
)

func TestFamilyStatsFT(t *testing.T) {
	tr := MustNew(8, 3)
	s := tr.FamilyStats()
	if s.Nodes != 128 || s.Switches != 80 || s.SwitchPorts != 8 {
		t.Fatalf("%+v", s)
	}
	if s.Bisection != 64 || s.MaxDistPaths != 16 {
		t.Fatalf("%+v", s)
	}
	if s.SwitchesPerNode != 80.0/128.0 {
		t.Errorf("sw/node %v", s.SwitchesPerNode)
	}
	if s.Links != tr.Links() {
		t.Errorf("links %d", s.Links)
	}
}

func TestKaryNTreeStats(t *testing.T) {
	// 4-ary 3-tree: 64 nodes, 3*16 = 48 switches of 8 ports, 192 links.
	s, err := KaryNTreeStats(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 64 || s.Switches != 48 || s.SwitchPorts != 8 || s.Links != 192 {
		t.Fatalf("%+v", s)
	}
	if s.Bisection != 32 || s.MaxDistPaths != 16 {
		t.Fatalf("%+v", s)
	}
	if _, err := KaryNTreeStats(1, 3); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KaryNTreeStats(4, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestMPortTreeIsCheaperPerNode verifies the paper's hardware-efficiency
// argument: built from the same switches, FT(m, n) needs fewer switches and
// fewer ports per processing node than the k-ary n-tree.
func TestMPortTreeIsCheaperPerNode(t *testing.T) {
	for _, dims := range [][2]int{{4, 2}, {4, 3}, {8, 2}, {8, 3}, {16, 2}} {
		tr := MustNew(dims[0], dims[1])
		ft, kary, err := tr.CompareWithKaryNTree()
		if err != nil {
			t.Fatal(err)
		}
		if ft.SwitchPorts != kary.SwitchPorts {
			t.Fatalf("%s: port mismatch %d vs %d", tr, ft.SwitchPorts, kary.SwitchPorts)
		}
		if ft.Nodes != 2*kary.Nodes {
			t.Errorf("%s: FT should host double the nodes (%d vs %d)", tr, ft.Nodes, kary.Nodes)
		}
		if ft.SwitchesPerNode >= kary.SwitchesPerNode {
			t.Errorf("%s: FT sw/node %.3f >= k-ary %.3f", tr, ft.SwitchesPerNode, kary.SwitchesPerNode)
		}
		if ft.PortsPerNode >= kary.PortsPerNode {
			t.Errorf("%s: FT ports/node %.3f >= k-ary %.3f", tr, ft.PortsPerNode, kary.PortsPerNode)
		}
		// Same path diversity at maximum distance.
		if ft.MaxDistPaths != kary.MaxDistPaths {
			t.Errorf("%s: path diversity %d vs %d", tr, ft.MaxDistPaths, kary.MaxDistPaths)
		}
	}
}

func TestFormatComparison(t *testing.T) {
	tr := MustNew(4, 2)
	ft, kary, err := tr.CompareWithKaryNTree()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(ft, kary)
	if !strings.Contains(out, "m-port n-tree") || !strings.Contains(out, "k-ary n-tree") {
		t.Errorf("table:\n%s", out)
	}
}
