package topology

import (
	"fmt"
	"strings"
)

// FamilyStats summarizes one interconnect family instance for hardware-cost
// comparison, in the spirit of the paper's Section 3 discussion of building
// fat-trees from fixed-arity switches.
type FamilyStats struct {
	Family      string
	Nodes       int
	Switches    int
	SwitchPorts int
	Links       int
	Levels      int
	Bisection   int
	// MaxDistPaths is the number of distinct shortest paths between two
	// maximally distant nodes.
	MaxDistPaths int64
	// SwitchesPerNode is the hardware cost metric: switches / nodes.
	SwitchesPerNode float64
	// PortsPerNode counts total switch ports per processing node.
	PortsPerNode float64
}

// FamilyStats computes the comparison metrics for this FT(m, n).
func (t *Tree) FamilyStats() FamilyStats {
	return FamilyStats{
		Family:          fmt.Sprintf("m-port n-tree FT(%d,%d)", t.m, t.n),
		Nodes:           t.nodes,
		Switches:        t.switches,
		SwitchPorts:     t.m,
		Links:           t.Links(),
		Levels:          t.n,
		Bisection:       t.BisectionLinks(),
		MaxDistPaths:    t.hPow[t.n-1],
		SwitchesPerNode: float64(t.switches) / float64(t.nodes),
		PortsPerNode:    float64(t.switches*t.m) / float64(t.nodes),
	}
}

// KaryNTreeStats computes, analytically, the same metrics for the k-ary
// n-tree of Petrini and Vanneschi (the paper's reference [10]): k^n
// processing nodes, n stages of k^(n-1) switches of arity 2k.
func KaryNTreeStats(k, n int) (FamilyStats, error) {
	if k < 2 || n < 1 {
		return FamilyStats{}, fmt.Errorf("topology: k-ary n-tree needs k >= 2, n >= 1 (got %d, %d)", k, n)
	}
	pow := func(b, e int) int {
		v := 1
		for i := 0; i < e; i++ {
			v *= b
		}
		return v
	}
	nodes := pow(k, n)
	switches := n * pow(k, n-1)
	// One k^n link bundle below each stage: node attachments plus n-1
	// inter-stage boundaries.
	links := n * nodes
	return FamilyStats{
		Family:          fmt.Sprintf("k-ary n-tree (%d-ary %d-tree)", k, n),
		Nodes:           nodes,
		Switches:        switches,
		SwitchPorts:     2 * k,
		Links:           links,
		Levels:          n,
		Bisection:       nodes / 2,
		MaxDistPaths:    int64(pow(k, n-1)),
		SwitchesPerNode: float64(switches) / float64(nodes),
		PortsPerNode:    float64(switches*2*k) / float64(nodes),
	}, nil
}

// CompareWithKaryNTree contrasts this FT(m, n) with the k-ary n-tree built
// from the same switches (k = m/2, same n). The m-port n-tree connects
// twice the nodes by using all m root ports downward, at the cost of
// (2n-1)/n times the switch count — fewer switches per node whenever n >= 1.
func (t *Tree) CompareWithKaryNTree() (ft, kary FamilyStats, err error) {
	kary, err = KaryNTreeStats(t.h, t.n)
	if err != nil {
		return FamilyStats{}, FamilyStats{}, err
	}
	return t.FamilyStats(), kary, nil
}

// FormatComparison renders family stats side by side.
func FormatComparison(stats ...FamilyStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %9s %6s %7s %10s %12s %9s\n",
		"family", "nodes", "switches", "ports", "links", "bisection", "sw/node", "paths")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-28s %8d %9d %6d %7d %10d %12.3f %9d\n",
			s.Family, s.Nodes, s.Switches, s.SwitchPorts, s.Links, s.Bisection, s.SwitchesPerNode, s.MaxDistPaths)
	}
	return b.String()
}
