package topology

import (
	"fmt"
	"strings"
)

// DOT renders the tree in Graphviz dot format: switches as boxes ranked by
// level, processing nodes as ellipses, one edge per bidirectional link
// labelled with its two port numbers. Render with, e.g.,
//
//	go run ./cmd/ibtopo -m 4 -n 2 -dot | dot -Tsvg > ft.svg
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("graph ft {\n")
	fmt.Fprintf(&b, "  label=\"FT(%d,%d)\";\n", t.m, t.n)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	// One subgraph per level keeps the drawing layered.
	for lvl := 0; lvl < t.n; lvl++ {
		fmt.Fprintf(&b, "  { rank=same;")
		for s := 0; s < t.switches; s++ {
			if t.SwitchLevel(SwitchID(s)) == lvl {
				fmt.Fprintf(&b, " sw%d;", s)
			}
		}
		b.WriteString(" }\n")
	}
	b.WriteString("  { rank=same;")
	for p := 0; p < t.nodes; p++ {
		fmt.Fprintf(&b, " n%d;", p)
	}
	b.WriteString(" }\n")
	for s := 0; s < t.switches; s++ {
		fmt.Fprintf(&b, "  sw%d [label=\"%s\"];\n", s, t.SwitchLabel(SwitchID(s)))
	}
	for p := 0; p < t.nodes; p++ {
		fmt.Fprintf(&b, "  n%d [shape=ellipse,label=\"%s\"];\n", p, t.NodeLabel(NodeID(p)))
	}
	// Emit each link once, from the canonical (upper or switch) side.
	for s := 0; s < t.switches; s++ {
		id := SwitchID(s)
		for k := 0; k < t.m; k++ {
			ref := t.SwitchNeighbor(id, k)
			switch ref.Kind {
			case KindNode:
				fmt.Fprintf(&b, "  sw%d -- n%d [taillabel=\"%d\"];\n", s, ref.Node, k+1)
			case KindSwitch:
				if t.SwitchLevel(ref.Switch) > t.SwitchLevel(id) {
					fmt.Fprintf(&b, "  sw%d -- sw%d [taillabel=\"%d\",headlabel=\"%d\"];\n",
						s, ref.Switch, k+1, ref.Port+1)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// PathDOT renders the tree with one route highlighted (bold red edges),
// given the ordered list of (switch, outPort) hops of a traced path and its
// endpoints.
func (t *Tree) PathDOT(src, dst NodeID, hops []struct {
	Switch  SwitchID
	OutPort int
}) string {
	highlight := map[string]bool{}
	for _, h := range hops {
		ref := t.SwitchNeighbor(h.Switch, h.OutPort)
		switch ref.Kind {
		case KindNode:
			highlight[fmt.Sprintf("sw%d -- n%d", h.Switch, ref.Node)] = true
		case KindSwitch:
			a, b := h.Switch, ref.Switch
			if t.SwitchLevel(b) < t.SwitchLevel(a) {
				a, b = b, a
			}
			highlight[fmt.Sprintf("sw%d -- sw%d", a, b)] = true
		}
	}
	// Source and destination attachment links are part of the route.
	sw, _ := t.NodeAttachment(src)
	highlight[fmt.Sprintf("sw%d -- n%d", sw, src)] = true

	// At most one edge key can prefix a given DOT line, so membership is
	// order-independent; keeping the scan a pure predicate keeps the output
	// writes out of the map range.
	highlighted := func(trimmed string) bool {
		for edge := range highlight {
			if strings.HasPrefix(trimmed, edge+" ") {
				return true
			}
		}
		return false
	}

	base := t.DOT()
	var out strings.Builder
	for _, line := range strings.Split(base, "\n") {
		if highlighted(strings.TrimSpace(line)) {
			out.WriteString(strings.Replace(line, "];", ",color=red,penwidth=3];", 1))
		} else {
			out.WriteString(line)
		}
		out.WriteString("\n")
	}
	return strings.TrimSuffix(out.String(), "\n")
}
