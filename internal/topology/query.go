package topology

import "fmt"

// GCPLen returns the length alpha of the greatest common prefix of the labels
// of the two nodes (Definition 1 of the paper). alpha == n means a == b.
func (t *Tree) GCPLen(a, b NodeID) int {
	for i := 0; i < t.n; i++ {
		if t.NodeDigit(a, i) != t.NodeDigit(b, i) {
			return i
		}
	}
	return t.n
}

// GCP returns the greatest common prefix digits of the two node labels.
func (t *Tree) GCP(a, b NodeID) []int {
	alpha := t.GCPLen(a, b)
	d := t.NodeDigits(a)
	return d[:alpha]
}

// LCAs returns the set of least common ancestors of two distinct nodes
// (Definition 2): all level-alpha switches whose leading alpha digits equal
// the nodes' greatest common prefix. There are (m/2)^(n-1-alpha) of them.
func (t *Tree) LCAs(a, b NodeID) []SwitchID {
	alpha := t.GCPLen(a, b)
	if alpha == t.n {
		// Identical nodes: the paper leaves this undefined; by convention the
		// single attachment leaf switch is the only "ancestor" of interest.
		sw, _ := t.NodeAttachment(a)
		return []SwitchID{sw}
	}
	prefix := t.NodeDigits(a)[:alpha]
	return t.SwitchesWithPrefix(prefix, alpha)
}

// SwitchesWithPrefix returns all switches of the given level whose leading
// len(prefix) label digits equal prefix. level must be >= len(prefix) for the
// result to be non-empty under the paper's ancestor relation, but any level
// is accepted.
func (t *Tree) SwitchesWithPrefix(prefix []int, level int) []SwitchID {
	free := t.n - 1 - len(prefix)
	if free < 0 {
		free = 0
	}
	count := int(t.pow(t.h, free))
	out := make([]SwitchID, 0, count)
	d := make([]int, t.n-1)
	copy(d, prefix)
	var rec func(i int)
	rec = func(i int) {
		if i == t.n-1 {
			id, err := t.SwitchFromDigits(d, level)
			if err == nil {
				out = append(out, id)
			}
			return
		}
		limit := t.h
		if i == 0 && level >= 1 {
			limit = t.m
		}
		if i < len(prefix) {
			rec(i + 1)
			return
		}
		for v := 0; v < limit; v++ {
			d[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func (t *Tree) pow(base, exp int) int64 {
	v := int64(1)
	for i := 0; i < exp; i++ {
		v *= int64(base)
	}
	return v
}

// GCPGSize returns the number of processing nodes in a greatest-common-prefix
// group gcpg(x, alpha) (Definition 3): 2*(m/2)^n for alpha == 0 and
// (m/2)^(n-alpha) otherwise.
func (t *Tree) GCPGSize(alpha int) int {
	if alpha == 0 {
		return t.nodes
	}
	return int(t.hPow[t.n-alpha])
}

// GCPG enumerates the members of gcpg(prefix, len(prefix)) in rank order.
func (t *Tree) GCPG(prefix []int) ([]NodeID, error) {
	alpha := len(prefix)
	if alpha > t.n {
		return nil, fmt.Errorf("topology: prefix longer than node label: %d > %d", alpha, t.n)
	}
	d := make([]int, t.n)
	copy(d, prefix)
	out := make([]NodeID, 0, t.GCPGSize(alpha))
	var rec func(i int)
	var err error
	rec = func(i int) {
		if err != nil {
			return
		}
		if i == t.n {
			id, e := t.NodeFromDigits(d)
			if e != nil {
				err = e
				return
			}
			out = append(out, id)
			return
		}
		if i < alpha {
			rec(i + 1)
			return
		}
		limit := t.h
		if i == 0 {
			limit = t.m
		}
		for v := 0; v < limit; v++ {
			d[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Rank returns the rank of the node within gcpg(x, alpha), where x is the
// node's own leading alpha digits (Definition 4):
//
//	rank = sum_{i >= alpha} p_i * (m/2)^(n-1-i)
//
// Rank(id, 0) equals the node's PID, which equals the NodeID itself.
func (t *Tree) Rank(id NodeID, alpha int) int64 {
	var r int64
	for i := alpha; i < t.n; i++ {
		r += int64(t.NodeDigit(id, i)) * t.nodeWeight[i]
	}
	return r
}

// PID returns the processing-node identifier of the node: its rank in
// gcpg(epsilon, 0). NodeIDs are defined to equal PIDs, so this is the
// identity; it exists to mirror the paper's vocabulary.
func (t *Tree) PID(id NodeID) int64 { return int64(id) }

// PathCount returns the number of distinct shortest paths between two
// distinct nodes: (m/2)^(n-1-alpha), one per least common ancestor.
func (t *Tree) PathCount(a, b NodeID) int64 {
	alpha := t.GCPLen(a, b)
	if alpha >= t.n {
		return 0
	}
	return t.hPow[t.n-1-alpha]
}
