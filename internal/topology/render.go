package topology

import (
	"fmt"
	"strings"
)

// Render draws the tree level by level as text, in the style of the paper's
// Figure 5: each switch with its label, and the leaf level followed by the
// attached processing nodes. Intended for small fabrics; levels wider than
// maxWidth characters are elided with a count.
func (t *Tree) Render(maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 100
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t)
	for lvl := 0; lvl < t.n; lvl++ {
		var cells []string
		for s := 0; s < t.switches; s++ {
			if t.SwitchLevel(SwitchID(s)) == lvl {
				cells = append(cells, t.SwitchLabel(SwitchID(s)))
			}
		}
		line := strings.Join(cells, " ")
		if len(line) > maxWidth {
			line = fmt.Sprintf("%s ... (%d switches)", cells[0], len(cells))
		}
		fmt.Fprintf(&b, "level %d: %s\n", lvl, line)
	}
	var nodes []string
	for p := 0; p < t.nodes; p++ {
		nodes = append(nodes, t.NodeLabel(NodeID(p)))
	}
	line := strings.Join(nodes, " ")
	if len(line) > maxWidth {
		line = fmt.Sprintf("%s ... (%d nodes)", nodes[0], len(nodes))
	}
	fmt.Fprintf(&b, "nodes:   %s\n", line)
	return b.String()
}

// DescribeSwitch renders one switch's wiring: every port and its peer.
func (t *Tree) DescribeSwitch(id SwitchID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (level %d, %d down ports)\n", t.SwitchLabel(id), t.SwitchLevel(id), t.DownPorts(id))
	for k := 0; k < t.m; k++ {
		ref := t.SwitchNeighbor(id, k)
		dir := "down"
		if k >= t.DownPorts(id) {
			dir = "up"
		}
		switch ref.Kind {
		case KindNode:
			fmt.Fprintf(&b, "  port %2d (phys %2d, %-4s) -> %s\n", k, k+1, dir, t.NodeLabel(ref.Node))
		case KindSwitch:
			fmt.Fprintf(&b, "  port %2d (phys %2d, %-4s) -> %s port %d\n",
				k, k+1, dir, t.SwitchLabel(ref.Switch), ref.Port)
		default:
			fmt.Fprintf(&b, "  port %2d (phys %2d) unwired\n", k, k+1)
		}
	}
	return b.String()
}

// Distance returns the minimal number of switch hops between two nodes:
// 2*(n-alpha)-1 for distinct nodes, 0 for identical ones.
func (t *Tree) Distance(a, b NodeID) int {
	if a == b {
		return 0
	}
	return 2*(t.n-t.GCPLen(a, b)) - 1
}

// AverageDistance returns the mean switch-hop distance over all ordered
// pairs of distinct nodes, computed in closed form from the gcpg sizes.
func (t *Tree) AverageDistance() float64 {
	n := float64(t.nodes)
	if t.nodes < 2 {
		return 0
	}
	var total float64
	// For a fixed node, the number of peers with gcp length exactly alpha:
	// peers sharing alpha digits minus peers sharing alpha+1 digits.
	for alpha := 0; alpha < t.n; alpha++ {
		shareAlpha := float64(t.GCPGSize(alpha) - 1)
		shareNext := float64(0)
		if alpha+1 <= t.n {
			shareNext = float64(t.GCPGSize(alpha+1) - 1)
		}
		peers := shareAlpha - shareNext
		total += peers * float64(2*(t.n-alpha)-1)
	}
	return total / (n - 1)
}

// BisectionLinks returns the number of links crossing the bisection that
// separates the first half of the processing nodes (PIDs < N/2) from the
// second: the up-links of the top level on one side, h^(n-1) * (m/2) / ...
// For an m-port n-tree this equals (m/2)^n: every root switch has exactly
// half its down-links in each half, so (m/2)^(n-1) roots x m/2 links each.
func (t *Tree) BisectionLinks() int {
	// Roots have m down-links; those with digit-0 paths into the lower half
	// are the links to level-1 switches whose first digit < m/2.
	return t.perLevel * t.h
}
