package topology

import (
	"testing"
)

// mustNode is a test helper converting digit labels to NodeIDs.
func mustNode(t *testing.T, tr *Tree, d ...int) NodeID {
	t.Helper()
	id, err := tr.NodeFromDigits(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestPaperGCPAndLCA verifies the paper's Definitions 1-4 worked example in
// the 4-port 3-tree: gcp(P(100), P(111)) = "1", lca = {SW<10,1>, SW<11,1>},
// both are in gcpg("1", 1) which has 4 members, ranks 0 and 3, PIDs 4 and 7.
func TestPaperGCPAndLCA(t *testing.T) {
	tr := MustNew(4, 3)
	a := mustNode(t, tr, 1, 0, 0)
	b := mustNode(t, tr, 1, 1, 1)

	if alpha := tr.GCPLen(a, b); alpha != 1 {
		t.Fatalf("GCPLen = %d, want 1", alpha)
	}
	if gcp := tr.GCP(a, b); len(gcp) != 1 || gcp[0] != 1 {
		t.Fatalf("GCP = %v, want [1]", gcp)
	}

	lcas := tr.LCAs(a, b)
	if len(lcas) != 2 {
		t.Fatalf("LCAs = %d switches, want 2", len(lcas))
	}
	labels := map[string]bool{}
	for _, s := range lcas {
		labels[tr.SwitchLabel(s)] = true
	}
	if !labels["SW<10,1>"] || !labels["SW<11,1>"] {
		t.Fatalf("LCAs = %v, want {SW<10,1>, SW<11,1>}", labels)
	}

	group, err := tr.GCPG([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 4 || tr.GCPGSize(1) != 4 {
		t.Fatalf("gcpg(1,1) size = %d/%d, want 4", len(group), tr.GCPGSize(1))
	}
	want := []NodeID{
		mustNode(t, tr, 1, 0, 0), mustNode(t, tr, 1, 0, 1),
		mustNode(t, tr, 1, 1, 0), mustNode(t, tr, 1, 1, 1),
	}
	for i, w := range want {
		if group[i] != w {
			t.Fatalf("gcpg member %d = %d, want %d", i, group[i], w)
		}
	}

	if r := tr.Rank(a, 1); r != 0 {
		t.Errorf("rank(P(100), alpha=1) = %d, want 0", r)
	}
	if r := tr.Rank(b, 1); r != 3 {
		t.Errorf("rank(P(111), alpha=1) = %d, want 3", r)
	}
	if tr.PID(a) != 4 || tr.PID(b) != 7 {
		t.Errorf("PIDs = %d,%d, want 4,7", tr.PID(a), tr.PID(b))
	}
}

func TestGCPLenIdenticalAndDisjoint(t *testing.T) {
	tr := MustNew(4, 3)
	a := mustNode(t, tr, 2, 1, 0)
	if got := tr.GCPLen(a, a); got != 3 {
		t.Errorf("GCPLen(a,a) = %d, want n=3", got)
	}
	b := mustNode(t, tr, 3, 1, 0)
	if got := tr.GCPLen(a, b); got != 0 {
		t.Errorf("GCPLen disjoint = %d, want 0", got)
	}
}

func TestLCACount(t *testing.T) {
	for _, tr := range testTrees() {
		for a := 0; a < tr.Nodes(); a++ {
			for b := 0; b < tr.Nodes(); b++ {
				if a == b {
					continue
				}
				alpha := tr.GCPLen(NodeID(a), NodeID(b))
				lcas := tr.LCAs(NodeID(a), NodeID(b))
				want := tr.PathCount(NodeID(a), NodeID(b))
				if int64(len(lcas)) != want {
					t.Fatalf("%s: |lca(%d,%d)| = %d, want %d (alpha=%d)",
						tr, a, b, len(lcas), want, alpha)
				}
				for _, s := range lcas {
					if tr.SwitchLevel(s) != alpha {
						t.Fatalf("%s: lca %s not at level %d", tr, tr.SwitchLabel(s), alpha)
					}
					d, _ := tr.SwitchDigits(s)
					for i := 0; i < alpha; i++ {
						if d[i] != tr.NodeDigit(NodeID(a), i) {
							t.Fatalf("%s: lca %s prefix mismatch", tr, tr.SwitchLabel(s))
						}
					}
				}
			}
			if tr.Nodes() > 32 {
				break // keep the quadratic sweep bounded on larger trees
			}
		}
	}
}

func TestLCAsIdenticalNodes(t *testing.T) {
	tr := MustNew(4, 2)
	n := mustNode(t, tr, 2, 1)
	lcas := tr.LCAs(n, n)
	sw, _ := tr.NodeAttachment(n)
	if len(lcas) != 1 || lcas[0] != sw {
		t.Errorf("LCAs(n,n) = %v, want [%d]", lcas, sw)
	}
}

func TestGCPGSizes(t *testing.T) {
	tr := MustNew(8, 3)
	if got := tr.GCPGSize(0); got != tr.Nodes() {
		t.Errorf("GCPGSize(0) = %d, want %d", got, tr.Nodes())
	}
	if got := tr.GCPGSize(1); got != 16 { // (8/2)^(3-1)
		t.Errorf("GCPGSize(1) = %d, want 16", got)
	}
	if got := tr.GCPGSize(3); got != 1 {
		t.Errorf("GCPGSize(3) = %d, want 1", got)
	}
	all, err := tr.GCPG(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != tr.Nodes() {
		t.Errorf("GCPG(nil) = %d nodes, want %d", len(all), tr.Nodes())
	}
	for i, id := range all {
		if int(id) != i {
			t.Fatalf("GCPG(nil) not in PID order at %d: %d", i, id)
		}
	}
	if _, err := tr.GCPG([]int{0, 0, 0, 0}); err == nil {
		t.Error("over-long prefix: expected error")
	}
}

func TestRankIsGroupLocalIndex(t *testing.T) {
	tr := MustNew(4, 3)
	for alpha := 1; alpha <= tr.N(); alpha++ {
		// Enumerate all prefixes of length alpha via nodes and check that the
		// rank enumerates each group 0..size-1 in order.
		seen := map[string][]int64{}
		for id := 0; id < tr.Nodes(); id++ {
			d := tr.NodeDigits(NodeID(id))
			key := digitString(d[:alpha])
			seen[key] = append(seen[key], tr.Rank(NodeID(id), alpha))
		}
		for key, ranks := range seen {
			if len(ranks) != tr.GCPGSize(alpha) {
				t.Fatalf("alpha=%d group %s has %d members, want %d",
					alpha, key, len(ranks), tr.GCPGSize(alpha))
			}
			for i, r := range ranks {
				if r != int64(i) {
					t.Fatalf("alpha=%d group %s rank[%d] = %d", alpha, key, i, r)
				}
			}
		}
	}
}

func TestPathCount(t *testing.T) {
	tr := MustNew(4, 3)
	a := mustNode(t, tr, 0, 0, 0)
	b := mustNode(t, tr, 1, 0, 0)            // alpha = 0
	if got := tr.PathCount(a, b); got != 4 { // h^(n-1) = 2^2
		t.Errorf("PathCount disjoint = %d, want 4", got)
	}
	c := mustNode(t, tr, 0, 1, 0) // alpha = 1
	if got := tr.PathCount(a, c); got != 2 {
		t.Errorf("PathCount alpha=1 = %d, want 2", got)
	}
	d := mustNode(t, tr, 0, 0, 1) // alpha = 2, same leaf
	if got := tr.PathCount(a, d); got != 1 {
		t.Errorf("PathCount same leaf = %d, want 1", got)
	}
	if got := tr.PathCount(a, a); got != 0 {
		t.Errorf("PathCount(a,a) = %d, want 0", got)
	}
}

func TestSwitchesWithPrefix(t *testing.T) {
	tr := MustNew(4, 3)
	// All roots.
	roots := tr.SwitchesWithPrefix(nil, 0)
	if len(roots) != 4 {
		t.Fatalf("roots = %d, want 4", len(roots))
	}
	// Level-2 switches with prefix "3": digit0 = 3 fixed, digit1 free in [0,2).
	leaves := tr.SwitchesWithPrefix([]int{3}, 2)
	if len(leaves) != 2 {
		t.Fatalf("prefix-3 leaves = %d, want 2", len(leaves))
	}
	for _, s := range leaves {
		d, lvl := tr.SwitchDigits(s)
		if lvl != 2 || d[0] != 3 {
			t.Errorf("bad switch %s", tr.SwitchLabel(s))
		}
	}
	// A prefix impossible at level 0 yields nothing.
	if got := tr.SwitchesWithPrefix([]int{3}, 0); len(got) != 0 {
		t.Errorf("impossible prefix produced %d switches", len(got))
	}
}
