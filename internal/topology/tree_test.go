package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct{ m, n int }{
		{0, 2}, {2, 2}, {3, 2}, {6, 2}, {5, 2}, {-4, 2}, {4, 0}, {4, -1}, {7, 3},
	}
	for _, c := range cases {
		if _, err := New(c.m, c.n); err == nil {
			t.Errorf("New(%d,%d): expected error", c.m, c.n)
		}
	}
}

func TestNewAcceptsValidParams(t *testing.T) {
	cases := []struct{ m, n int }{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {16, 2}, {32, 2}, {64, 1}}
	for _, c := range cases {
		if _, err := New(c.m, c.n); err != nil {
			t.Errorf("New(%d,%d): %v", c.m, c.n, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3,1) did not panic")
		}
	}()
	MustNew(3, 1)
}

// TestPaperCounts verifies the counting formulas against the paper's 4-port
// 3-tree example: 16 processing nodes, 20 communication switches, with level
// populations 4/8/8.
func TestPaperCounts(t *testing.T) {
	tr := MustNew(4, 3)
	if got := tr.Nodes(); got != 16 {
		t.Errorf("Nodes() = %d, want 16", got)
	}
	if got := tr.Switches(); got != 20 {
		t.Errorf("Switches() = %d, want 20", got)
	}
	if got := tr.SwitchesInLevel(0); got != 4 {
		t.Errorf("SwitchesInLevel(0) = %d, want 4", got)
	}
	for lvl := 1; lvl <= 2; lvl++ {
		if got := tr.SwitchesInLevel(lvl); got != 8 {
			t.Errorf("SwitchesInLevel(%d) = %d, want 8", lvl, got)
		}
	}
}

func TestCountsTable(t *testing.T) {
	cases := []struct {
		m, n            int
		nodes, switches int
	}{
		{4, 1, 4, 1},
		{4, 2, 8, 6},
		{4, 3, 16, 20},
		{4, 4, 32, 56},
		{8, 2, 32, 12},
		{8, 3, 128, 80},
		{16, 2, 128, 24},
		{32, 2, 512, 48},
	}
	for _, c := range cases {
		tr := MustNew(c.m, c.n)
		if tr.Nodes() != c.nodes || tr.Switches() != c.switches {
			t.Errorf("FT(%d,%d): got %d nodes %d switches, want %d/%d",
				c.m, c.n, tr.Nodes(), tr.Switches(), c.nodes, c.switches)
		}
		if tr.Levels() != c.n {
			t.Errorf("FT(%d,%d): Levels() = %d, want %d", c.m, c.n, tr.Levels(), c.n)
		}
	}
}

func TestNodeDigitsRoundTrip(t *testing.T) {
	for _, tr := range testTrees() {
		for id := 0; id < tr.Nodes(); id++ {
			d := tr.NodeDigits(NodeID(id))
			back, err := tr.NodeFromDigits(d)
			if err != nil {
				t.Fatalf("%s node %d digits %v: %v", tr, id, d, err)
			}
			if back != NodeID(id) {
				t.Fatalf("%s node %d round-trips to %d via %v", tr, id, back, d)
			}
			for i := range d {
				if got := tr.NodeDigit(NodeID(id), i); got != d[i] {
					t.Fatalf("%s NodeDigit(%d,%d) = %d, want %d", tr, id, i, got, d[i])
				}
			}
		}
	}
}

func TestNodeDigitRanges(t *testing.T) {
	for _, tr := range testTrees() {
		for id := 0; id < tr.Nodes(); id++ {
			d := tr.NodeDigits(NodeID(id))
			if d[0] < 0 || d[0] >= tr.M() {
				t.Fatalf("%s node %d digit 0 = %d out of [0,%d)", tr, id, d[0], tr.M())
			}
			for i := 1; i < len(d); i++ {
				if d[i] < 0 || d[i] >= tr.H() {
					t.Fatalf("%s node %d digit %d = %d out of [0,%d)", tr, id, i, d[i], tr.H())
				}
			}
		}
	}
}

func TestNodeFromDigitsRejects(t *testing.T) {
	tr := MustNew(4, 3)
	bad := [][]int{
		{0, 0},       // too short
		{0, 0, 0, 0}, // too long
		{4, 0, 0},    // digit 0 too large (m = 4 allows 0..3)
		{-1, 0, 0},   // negative
		{0, 2, 0},    // digit 1 too large (h = 2 allows 0..1)
		{0, 0, 2},    // digit 2 too large
	}
	for _, d := range bad {
		if _, err := tr.NodeFromDigits(d); err == nil {
			t.Errorf("NodeFromDigits(%v): expected error", d)
		}
	}
	if _, err := tr.NodeFromDigits([]int{3, 1, 1}); err != nil {
		t.Errorf("NodeFromDigits(311): %v", err)
	}
}

func TestSwitchDigitsRoundTrip(t *testing.T) {
	for _, tr := range testTrees() {
		for id := 0; id < tr.Switches(); id++ {
			d, lvl := tr.SwitchDigits(SwitchID(id))
			back, err := tr.SwitchFromDigits(d, lvl)
			if err != nil {
				t.Fatalf("%s switch %d digits %v level %d: %v", tr, id, d, lvl, err)
			}
			if back != SwitchID(id) {
				t.Fatalf("%s switch %d round-trips to %d", tr, id, back)
			}
		}
	}
}

func TestSwitchFromDigitsRejects(t *testing.T) {
	tr := MustNew(4, 3)
	if _, err := tr.SwitchFromDigits([]int{0}, 0); err == nil {
		t.Error("short label: expected error")
	}
	if _, err := tr.SwitchFromDigits([]int{0, 0}, 3); err == nil {
		t.Error("level 3: expected error")
	}
	if _, err := tr.SwitchFromDigits([]int{0, 0}, -1); err == nil {
		t.Error("level -1: expected error")
	}
	// Level 0 restricts digit 0 to [0, h).
	if _, err := tr.SwitchFromDigits([]int{2, 0}, 0); err == nil {
		t.Error("level-0 digit 0 = 2: expected error")
	}
	// Level >= 1 allows digit 0 in [0, m).
	if _, err := tr.SwitchFromDigits([]int{3, 1}, 1); err != nil {
		t.Errorf("level-1 digit 0 = 3: %v", err)
	}
	if _, err := tr.SwitchFromDigits([]int{0, 2}, 1); err == nil {
		t.Error("digit 1 = 2: expected error")
	}
}

// TestPaperLevelSets verifies the level-0/1/2 switch label sets of the paper's
// 4-port 3-tree example.
func TestPaperLevelSets(t *testing.T) {
	tr := MustNew(4, 3)
	// Level 0: {<00,0>, <01,0>, <10,0>, <11,0>} (digits in [0,2)).
	want0 := map[string]bool{"SW<00,0>": true, "SW<01,0>": true, "SW<10,0>": true, "SW<11,0>": true}
	// Levels 1 and 2: digit 0 in [0,4), digit 1 in [0,2): 8 switches each.
	got := map[int]map[string]bool{0: {}, 1: {}, 2: {}}
	for id := 0; id < tr.Switches(); id++ {
		lbl := tr.SwitchLabel(SwitchID(id))
		got[tr.SwitchLevel(SwitchID(id))][lbl] = true
	}
	if len(got[0]) != 4 || len(got[1]) != 8 || len(got[2]) != 8 {
		t.Fatalf("level sizes = %d/%d/%d, want 4/8/8", len(got[0]), len(got[1]), len(got[2]))
	}
	for lbl := range want0 {
		if !got[0][lbl] {
			t.Errorf("missing level-0 switch %s", lbl)
		}
	}
	for _, lbl := range []string{"SW<30,1>", "SW<31,2>", "SW<00,1>", "SW<21,2>"} {
		found := false
		for lvl := 0; lvl < 3; lvl++ {
			if got[lvl][lbl] {
				found = true
			}
		}
		if !found {
			t.Errorf("missing switch %s", lbl)
		}
	}
}

// TestPaperEdgeExample verifies the paper's worked connection example for the
// 4-port 3-tree: SW<w,l> and SW<w',l+1> are connected with k = w'_l and
// k' = w_l + m/2, and leaf port p[n-1] holds node P(p).
func TestPaperEdgeExample(t *testing.T) {
	tr := MustNew(4, 3)
	// Take SW<01,0> (level 0). Its port k connects to level-1 switch with
	// digit 0 replaced by k: SW<k 1, 1>, arriving on port w_0 + h = 0 + 2.
	s0, err := tr.SwitchFromDigits([]int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		ref := tr.SwitchNeighbor(s0, k)
		if ref.Kind != KindSwitch {
			t.Fatalf("SW<01,0> port %d: %v", k, ref)
		}
		want, _ := tr.SwitchFromDigits([]int{k, 1}, 1)
		if ref.Switch != want || ref.Port != 0+2 {
			t.Fatalf("SW<01,0> port %d = %s port %d, want %s port 2",
				k, tr.SwitchLabel(ref.Switch), ref.Port, tr.SwitchLabel(want))
		}
	}
	// Leaf attachment: SW<11,2> port 1 holds P(111).
	leaf, err := tr.SwitchFromDigits([]int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := tr.SwitchNeighbor(leaf, 1)
	node, _ := tr.NodeFromDigits([]int{1, 1, 1})
	if ref.Kind != KindNode || ref.Node != node {
		t.Fatalf("SW<11,2> port 1 = %v, want node P(111) (%d)", ref, node)
	}
}

func TestValidateAll(t *testing.T) {
	for _, tr := range testTrees() {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr, err)
		}
	}
}

func TestNodeAttachmentMatchesNeighbor(t *testing.T) {
	for _, tr := range testTrees() {
		for id := 0; id < tr.Nodes(); id++ {
			sw, port := tr.NodeAttachment(NodeID(id))
			ref := tr.SwitchNeighbor(sw, port)
			if ref.Kind != KindNode || ref.Node != NodeID(id) {
				t.Fatalf("%s node %d attach %s port %d, reverse %v",
					tr, id, tr.SwitchLabel(sw), port, ref)
			}
		}
	}
}

func TestSwitchNeighborOutOfRange(t *testing.T) {
	tr := MustNew(4, 2)
	if ref := tr.SwitchNeighbor(0, -1); ref.Kind != KindNone {
		t.Errorf("port -1: %v", ref)
	}
	if ref := tr.SwitchNeighbor(0, 4); ref.Kind != KindNone {
		t.Errorf("port 4: %v", ref)
	}
}

func TestLinksCount(t *testing.T) {
	for _, tr := range testTrees() {
		adj := tr.BuildAdjacency()
		// Count each bidirectional link once from the canonical side.
		count := 0
		for s := range adj.SwitchPeers {
			for k, ref := range adj.SwitchPeers[s] {
				switch ref.Kind {
				case KindNode:
					count++
				case KindSwitch:
					// Count downward links only (peer level greater).
					if tr.SwitchLevel(ref.Switch) > tr.SwitchLevel(SwitchID(s)) {
						count++
					}
				}
				_ = k
			}
		}
		if count != tr.Links() {
			t.Errorf("%s: counted %d links, Links() = %d", tr, count, tr.Links())
		}
	}
}

func TestLabels(t *testing.T) {
	tr := MustNew(4, 3)
	n, _ := tr.NodeFromDigits([]int{3, 0, 1})
	if got := tr.NodeLabel(n); got != "P(301)" {
		t.Errorf("NodeLabel = %q, want P(301)", got)
	}
	s, _ := tr.SwitchFromDigits([]int{2, 1}, 1)
	if got := tr.SwitchLabel(s); got != "SW<21,1>" {
		t.Errorf("SwitchLabel = %q, want SW<21,1>", got)
	}
	// Wide digits get dot separators.
	wide := MustNew(32, 2)
	wn, _ := wide.NodeFromDigits([]int{31, 15})
	if got := wide.NodeLabel(wn); got != "P(31.15)" {
		t.Errorf("wide NodeLabel = %q, want P(31.15)", got)
	}
}

func TestStringAndKindString(t *testing.T) {
	tr := MustNew(4, 2)
	if tr.String() != "FT(4,2): 8 nodes, 6 switches" {
		t.Errorf("String() = %q", tr.String())
	}
	if KindNode.String() != "node" || KindSwitch.String() != "switch" || KindNone.String() != "none" {
		t.Error("Kind.String mismatch")
	}
	ref := PortRef{Kind: KindNode, Node: 3}
	if ref.String() == "" {
		t.Error("empty PortRef string")
	}
	if (PortRef{Kind: KindNone}).String() != "none" {
		t.Error("none PortRef string")
	}
	if (PortRef{Kind: KindSwitch, Switch: 1, Port: 2}).String() == "" {
		t.Error("switch PortRef string")
	}
}

// Property: node digit round-trip over random ids on a larger tree.
func TestQuickNodeRoundTrip(t *testing.T) {
	tr := MustNew(16, 3)
	f := func(raw uint32) bool {
		id := NodeID(raw % uint32(tr.Nodes()))
		d := tr.NodeDigits(id)
		back, err := tr.NodeFromDigits(d)
		return err == nil && back == id
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: link symmetry on random (switch, port) pairs of a larger tree.
func TestQuickLinkSymmetry(t *testing.T) {
	tr := MustNew(16, 3)
	f := func(rawS, rawK uint32) bool {
		s := SwitchID(rawS % uint32(tr.Switches()))
		k := int(rawK % uint32(tr.M()))
		ref := tr.SwitchNeighbor(s, k)
		switch ref.Kind {
		case KindSwitch:
			back := tr.SwitchNeighbor(ref.Switch, ref.Port)
			return back.Kind == KindSwitch && back.Switch == s && back.Port == k
		case KindNode:
			sw, port := tr.NodeAttachment(ref.Node)
			return sw == s && port == k
		}
		return false
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: every up/down port pairing respects the paper's k' = w_l + h rule:
// ascending via port k from a switch at level l lands on a parent whose
// reciprocal port is a down port, and vice versa.
func TestQuickPortDirection(t *testing.T) {
	tr := MustNew(8, 3)
	f := func(rawS, rawK uint32) bool {
		s := SwitchID(rawS % uint32(tr.Switches()))
		k := int(rawK % uint32(tr.M()))
		ref := tr.SwitchNeighbor(s, k)
		if ref.Kind != KindSwitch {
			return true
		}
		down := k < tr.DownPorts(s)
		peerDown := ref.Port < tr.DownPorts(ref.Switch)
		return down != peerDown // one side descends, the other ascends
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func testTrees() []*Tree {
	return []*Tree{
		MustNew(4, 1), MustNew(4, 2), MustNew(4, 3), MustNew(4, 4),
		MustNew(8, 2), MustNew(8, 3), MustNew(16, 2),
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(1))}
}
