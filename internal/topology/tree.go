// Package topology implements the m-port n-tree family of fat-trees, FT(m, n),
// proposed by Lin, Chung and Huang ("A Multiple LID Routing Scheme for
// Fat-Tree-Based InfiniBand Networks", IPDPS 2004) as the substrate for
// fat-tree-based InfiniBand networks.
//
// An FT(m, n) has height n+1 and is built entirely from fixed-arity m-port
// switches. Writing h = m/2:
//
//   - there are 2*h^n processing nodes, labelled P(p0 p1 ... p[n-1]) with
//     p0 in [0, m) and pi in [0, h) for i >= 1;
//   - there are (2n-1)*h^(n-1) switches, labelled SW<w0 ... w[n-2], l> with
//     level l in [0, n); level 0 (the roots) has h^(n-1) switches whose
//     digits are all in [0, h); every other level has 2*h^(n-1) switches
//     with w0 in [0, m) and the remaining digits in [0, h).
//
// Links follow the paper's connection rule: switch SW<w, l> port k connects
// to switch SW<w', l+1> port k' if and only if w and w' agree on every digit
// except position l, k = w'_l, and k' = w_l + h. A leaf switch SW<w, n-1>
// connects its port k to processing node P(p) when w = p0..p[n-2] and
// k = p[n-1]. Ports in this package are "abstract" ports numbered 0..m-1;
// the InfiniBand instantiation maps abstract port k to physical port k+1
// because physical port 0 of an InfiniBand switch is the management port.
//
// The package represents nodes and switches by dense integer identifiers and
// computes all adjacency arithmetically, so a multi-thousand-port fabric
// costs no memory beyond its parameters.
package topology

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a processing node. NodeIDs are dense in [0, Tree.Nodes())
// and equal the node's PID (rank in gcpg(épsilon, 0)) as defined by the paper.
type NodeID int32

// SwitchID identifies a communication switch. SwitchIDs are dense in
// [0, Tree.Switches()), ordered by level and then by label.
type SwitchID int32

// Kind discriminates the two endpoint types of a link.
type Kind uint8

const (
	// KindNode marks a processing-node endpoint.
	KindNode Kind = iota
	// KindSwitch marks a switch endpoint.
	KindSwitch
	// KindNone marks the absence of an endpoint (an unwired port).
	KindNone
)

// String returns a short human-readable name for the endpoint kind.
func (k Kind) String() string {
	switch k {
	case KindNode:
		return "node"
	case KindSwitch:
		return "switch"
	default:
		return "none"
	}
}

// PortRef names one endpoint of a link: an entity and one of its ports.
// Processing nodes have a single port (0); switches have m abstract ports.
type PortRef struct {
	Kind Kind
	// Node is valid when Kind == KindNode.
	Node NodeID
	// Switch is valid when Kind == KindSwitch.
	Switch SwitchID
	// Port is the abstract port number on the endpoint.
	Port int
}

// String renders the endpoint as, e.g., "SW<102,1>:3" or "P(010)".
func (p PortRef) String() string {
	switch p.Kind {
	case KindNode:
		return fmt.Sprintf("node %d port %d", p.Node, p.Port)
	case KindSwitch:
		return fmt.Sprintf("switch %d port %d", p.Switch, p.Port)
	default:
		return "none"
	}
}

// Tree is an immutable description of an FT(m, n) fat-tree.
type Tree struct {
	m int // switch arity (ports per switch); power of two, >= 4
	n int // tree "dimension"; height is n+1
	h int // m/2: down-degree of non-root switches

	logH int // log2(h)

	nodes        int     // 2*h^n
	switches     int     // (2n-1)*h^(n-1)
	perLevel     int     // h^(n-1): switches in level 0
	perMidLevel  int     // 2*h^(n-1): switches in each level >= 1
	hPow         []int64 // hPow[i] = h^i, i in [0, n]
	nodeWeight   []int64 // nodeWeight[i] = h^(n-1-i): PID weight of digit i
	switchWeight []int64 // switchWeight[i] = h^(n-2-i): label weight of digit i (n >= 2)
}

// New constructs the FT(m, n) fat-tree description.
//
// m must be a power of two with m >= 4 (the paper requires a power of two so
// that the LMC addressing of the MLID scheme partitions the LID space), and
// n must be >= 1. FT(m, 1) degenerates to a single m-port crossbar switch
// connecting m nodes.
func New(m, n int) (*Tree, error) {
	if m < 4 || m&(m-1) != 0 {
		return nil, fmt.Errorf("topology: m must be a power of two >= 4, got %d", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: n must be >= 1, got %d", n)
	}
	h := m / 2
	// Guard against overflow of the dense ID spaces.
	if float64(n)*float64(bits.Len(uint(h))-1) > 28 {
		return nil, fmt.Errorf("topology: FT(%d,%d) is too large (more than 2^29 nodes)", m, n)
	}
	t := &Tree{m: m, n: n, h: h, logH: bits.Len(uint(h)) - 1}
	t.hPow = make([]int64, n+1)
	t.hPow[0] = 1
	for i := 1; i <= n; i++ {
		t.hPow[i] = t.hPow[i-1] * int64(h)
	}
	t.perLevel = int(t.hPow[n-1])
	t.perMidLevel = 2 * t.perLevel
	t.nodes = 2 * int(t.hPow[n])
	t.switches = (2*n - 1) * t.perLevel
	t.nodeWeight = make([]int64, n)
	for i := 0; i < n; i++ {
		t.nodeWeight[i] = t.hPow[n-1-i]
	}
	if n >= 2 {
		t.switchWeight = make([]int64, n-1)
		for i := 0; i < n-1; i++ {
			t.switchWeight[i] = t.hPow[n-2-i]
		}
	}
	return t, nil
}

// MustNew is New, panicking on invalid parameters. It is intended for tests
// and examples with constant arguments.
func MustNew(m, n int) *Tree {
	t, err := New(m, n)
	if err != nil {
		panic(err)
	}
	return t
}

// M returns the switch arity (number of ports per switch).
func (t *Tree) M() int { return t.m }

// N returns the tree dimension n; the tree height is n+1.
func (t *Tree) N() int { return t.n }

// H returns m/2, the down-degree of non-root switches.
func (t *Tree) H() int { return t.h }

// Nodes returns the number of processing nodes, 2*(m/2)^n.
func (t *Tree) Nodes() int { return t.nodes }

// Switches returns the number of switches, (2n-1)*(m/2)^(n-1).
func (t *Tree) Switches() int { return t.switches }

// Levels returns the number of switch levels, n. Level 0 holds the roots and
// level n-1 the leaf switches that attach processing nodes.
func (t *Tree) Levels() int { return t.n }

// SwitchesInLevel returns the number of switches in the given level:
// (m/2)^(n-1) for level 0 and 2*(m/2)^(n-1) otherwise.
func (t *Tree) SwitchesInLevel(level int) int {
	if level == 0 {
		return t.perLevel
	}
	return t.perMidLevel
}

// Links returns the total number of bidirectional links, counting both
// switch-switch and switch-node links.
func (t *Tree) Links() int {
	// Every switch level below the roots contributes one up-link per
	// (switch, up-port); equivalently, each non-root switch has h up-links.
	interSwitch := (t.n - 1) * t.perMidLevel * t.h
	return interSwitch + t.nodes
}

// String implements fmt.Stringer.
func (t *Tree) String() string {
	return fmt.Sprintf("FT(%d,%d): %d nodes, %d switches", t.m, t.n, t.nodes, t.switches)
}

// ValidNode reports whether id names a processing node of the tree.
func (t *Tree) ValidNode(id NodeID) bool { return id >= 0 && int(id) < t.nodes }

// ValidSwitch reports whether id names a switch of the tree.
func (t *Tree) ValidSwitch(id SwitchID) bool { return id >= 0 && int(id) < t.switches }

// NodeDigits returns the label digits p0..p[n-1] of a node. The NodeID is the
// PID, i.e. the mixed-radix value of the digits with weights (m/2)^(n-1-i).
func (t *Tree) NodeDigits(id NodeID) []int {
	d := make([]int, t.n)
	t.nodeDigitsInto(id, d)
	return d
}

func (t *Tree) nodeDigitsInto(id NodeID, d []int) {
	v := int64(id)
	for i := 0; i < t.n; i++ {
		d[i] = int(v / t.nodeWeight[i])
		v %= t.nodeWeight[i]
	}
}

// NodeDigit returns digit i of the node label without allocating.
func (t *Tree) NodeDigit(id NodeID, i int) int {
	if i == 0 {
		return int(int64(id) / t.nodeWeight[0])
	}
	return int(int64(id) / t.nodeWeight[i] % int64(t.h))
}

// NodeFromDigits returns the NodeID with the given label digits.
// It returns an error if a digit is out of range.
func (t *Tree) NodeFromDigits(d []int) (NodeID, error) {
	if len(d) != t.n {
		return 0, fmt.Errorf("topology: node label needs %d digits, got %d", t.n, len(d))
	}
	if d[0] < 0 || d[0] >= t.m {
		return 0, fmt.Errorf("topology: node digit 0 out of range [0,%d): %d", t.m, d[0])
	}
	var v int64
	v = int64(d[0]) * t.nodeWeight[0]
	for i := 1; i < t.n; i++ {
		if d[i] < 0 || d[i] >= t.h {
			return 0, fmt.Errorf("topology: node digit %d out of range [0,%d): %d", i, t.h, d[i])
		}
		v += int64(d[i]) * t.nodeWeight[i]
	}
	return NodeID(v), nil
}

// NodeLabel renders the node label as the paper writes it, e.g. "P(010)".
// Digits of two or more decimal places are separated by dots.
func (t *Tree) NodeLabel(id NodeID) string {
	return "P(" + digitString(t.NodeDigits(id)) + ")"
}

// SwitchLevel returns the level of the switch, in [0, n).
func (t *Tree) SwitchLevel(id SwitchID) int {
	if int(id) < t.perLevel {
		return 0
	}
	return 1 + (int(id)-t.perLevel)/t.perMidLevel
}

// SwitchDigits returns the label digits w0..w[n-2] and the level of a switch.
// For n == 1 the digit slice is empty.
func (t *Tree) SwitchDigits(id SwitchID) (digits []int, level int) {
	digits = make([]int, t.n-1)
	level = t.switchDigitsInto(id, digits)
	return digits, level
}

// SwitchDigitsInto decodes the label digits into d, which must have length
// n-1, and returns the level. It is the allocation-free form of SwitchDigits
// for callers on hot paths (routing-table compilation walks every
// (switch, LID) pair).
func (t *Tree) SwitchDigitsInto(id SwitchID, d []int) (level int) {
	return t.switchDigitsInto(id, d)
}

func (t *Tree) switchDigitsInto(id SwitchID, d []int) (level int) {
	idx := int64(id)
	if idx < int64(t.perLevel) {
		level = 0
	} else {
		idx -= int64(t.perLevel)
		level = 1 + int(idx/int64(t.perMidLevel))
		idx %= int64(t.perMidLevel)
	}
	// Digit 0 has weight h^(n-2) and range [0, m) at levels >= 1, [0, h) at
	// level 0; the remaining digits have range [0, h). Both cases decode with
	// the same mixed-radix division.
	for i := 0; i < t.n-1; i++ {
		d[i] = int(idx / t.switchWeight[i])
		idx %= t.switchWeight[i]
	}
	return level
}

// SwitchFromDigits returns the SwitchID with the given label digits and level.
func (t *Tree) SwitchFromDigits(d []int, level int) (SwitchID, error) {
	if len(d) != t.n-1 {
		return 0, fmt.Errorf("topology: switch label needs %d digits, got %d", t.n-1, len(d))
	}
	if level < 0 || level >= t.n {
		return 0, fmt.Errorf("topology: switch level out of range [0,%d): %d", t.n, level)
	}
	limit0 := t.h
	if level >= 1 {
		limit0 = t.m
	}
	var idx int64
	for i := 0; i < t.n-1; i++ {
		limit := t.h
		if i == 0 {
			limit = limit0
		}
		if d[i] < 0 || d[i] >= limit {
			return 0, fmt.Errorf("topology: switch digit %d out of range [0,%d): %d", i, limit, d[i])
		}
		idx += int64(d[i]) * t.switchWeight[i]
	}
	if level == 0 {
		return SwitchID(idx), nil
	}
	return SwitchID(int64(t.perLevel) + int64(level-1)*int64(t.perMidLevel) + idx), nil
}

// SwitchLabel renders the switch label as the paper writes it, e.g. "SW<10,1>".
func (t *Tree) SwitchLabel(id SwitchID) string {
	d, l := t.SwitchDigits(id)
	return fmt.Sprintf("SW<%s,%d>", digitString(d), l)
}

func digitString(d []int) string {
	wide := false
	for _, v := range d {
		if v > 9 {
			wide = true
			break
		}
	}
	s := ""
	for i, v := range d {
		if wide && i > 0 {
			s += "."
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}

// IsLeaf reports whether the switch is a leaf switch (level n-1), i.e. has
// processing nodes attached.
func (t *Tree) IsLeaf(id SwitchID) bool { return t.SwitchLevel(id) == t.n-1 }

// IsRoot reports whether the switch is a root switch (level 0).
func (t *Tree) IsRoot(id SwitchID) bool { return t.SwitchLevel(id) == 0 }

// DownPorts returns the number of downward abstract ports of the switch:
// m for a root switch and m/2 otherwise. Downward ports are 0..DownPorts-1;
// the remaining ports (if any) are upward.
func (t *Tree) DownPorts(id SwitchID) int {
	if t.SwitchLevel(id) == 0 {
		return t.m
	}
	return t.h
}

// NodeAttachment returns the leaf switch and abstract port to which the node
// attaches: SW<p0..p[n-2], n-1> port p[n-1].
func (t *Tree) NodeAttachment(id NodeID) (SwitchID, int) {
	// The leaf-switch label digits are the first n-1 node digits, and the
	// port is the final node digit. Because NodeID is a mixed-radix value
	// whose lowest weight is 1, the port is id mod h... except for n == 1,
	// where the single digit p0 in [0, m) is the port on the sole switch.
	if t.n == 1 {
		return 0, int(id)
	}
	// The final node digit is the attachment port, and the leading n-1 node
	// digits are exactly the leaf-switch label (both are mixed-radix values
	// over the same digit ranges), so the label offset is id / h.
	port := int(int64(id) % int64(t.h))
	prefix := int64(id) / int64(t.h)
	sw := SwitchID(int64(t.perLevel) + int64(t.n-2)*int64(t.perMidLevel) + prefix)
	return sw, port
}

// SwitchNeighbor returns the entity wired to the given abstract port of the
// switch. Ports carry:
//
//   - leaf switches (level n-1): ports 0..h-1 attach nodes; for n == 1 the
//     single root/leaf switch attaches all m nodes on ports 0..m-1;
//   - root switches (level 0, n >= 2): ports 0..m-1 go down to level 1;
//   - other switches: ports 0..h-1 go down to level+1, ports h..m-1 go up to
//     level-1.
func (t *Tree) SwitchNeighbor(id SwitchID, port int) PortRef {
	if port < 0 || port >= t.m {
		return PortRef{Kind: KindNone}
	}
	var d [32]int
	digits := d[:t.n-1]
	level := t.switchDigitsInto(id, digits)

	if t.n == 1 {
		// Single switch; every port holds a node whose PID is the port.
		return PortRef{Kind: KindNode, Node: NodeID(port), Port: 0}
	}

	down := t.h
	if level == 0 {
		down = t.m
	}
	if port < down {
		// Downward.
		if level == t.n-1 {
			// Leaf: port k attaches node P(w0..w[n-2] k).
			pid := int64(0)
			pid = 0
			for i := 0; i < t.n-1; i++ {
				pid += int64(digits[i]) * t.nodeWeight[i]
			}
			pid += int64(port)
			return PortRef{Kind: KindNode, Node: NodeID(pid), Port: 0}
		}
		// Child at level+1 agrees on all digits except position `level`,
		// where the child's digit equals this port; the child's up-port is
		// our digit at position `level` plus h.
		childDigits := digits
		old := childDigits[level]
		childDigits[level] = port
		child, err := t.SwitchFromDigits(childDigits, level+1)
		childDigits[level] = old
		if err != nil {
			return PortRef{Kind: KindNone}
		}
		return PortRef{Kind: KindSwitch, Switch: child, Port: old + t.h}
	}
	// Upward: port h..m-1 selects the parent's digit at position level-1.
	parentDigits := digits
	old := parentDigits[level-1]
	parentDigits[level-1] = port - t.h
	parent, err := t.SwitchFromDigits(parentDigits, level-1)
	parentDigits[level-1] = old
	if err != nil {
		return PortRef{Kind: KindNone}
	}
	return PortRef{Kind: KindSwitch, Switch: parent, Port: old}
}
