package topology

import (
	"strings"
	"testing"
)

func TestDOTStructure(t *testing.T) {
	tr := MustNew(4, 2)
	out := tr.DOT()
	if !strings.HasPrefix(out, "graph ft {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a dot graph:\n%s", out)
	}
	// All devices present.
	for s := 0; s < tr.Switches(); s++ {
		if !strings.Contains(out, tr.SwitchLabel(SwitchID(s))) {
			t.Errorf("missing switch %d", s)
		}
	}
	for p := 0; p < tr.Nodes(); p++ {
		if !strings.Contains(out, tr.NodeLabel(NodeID(p))) {
			t.Errorf("missing node %d", p)
		}
	}
	// One edge line per link.
	if got := strings.Count(out, " -- "); got != tr.Links() {
		t.Errorf("%d edges, want %d", got, tr.Links())
	}
}

func TestPathDOTHighlights(t *testing.T) {
	tr := MustNew(4, 2)
	// Route 0 -> 7: leaf up, root, leaf down, node.
	hops := []struct {
		Switch  SwitchID
		OutPort int
	}{}
	sw, _ := tr.NodeAttachment(0)
	// Ascend via first up-port, descend to node 7's leaf and port.
	ref := tr.SwitchNeighbor(sw, tr.DownPorts(sw))
	hops = append(hops, struct {
		Switch  SwitchID
		OutPort int
	}{sw, tr.DownPorts(sw)})
	root := ref.Switch
	leaf7, port7 := tr.NodeAttachment(7)
	for k := 0; k < tr.M(); k++ {
		if r := tr.SwitchNeighbor(root, k); r.Kind == KindSwitch && r.Switch == leaf7 {
			hops = append(hops, struct {
				Switch  SwitchID
				OutPort int
			}{root, k})
			break
		}
	}
	hops = append(hops, struct {
		Switch  SwitchID
		OutPort int
	}{leaf7, port7})

	out := tr.PathDOT(0, 7, hops)
	if got := strings.Count(out, "color=red"); got < 3 {
		t.Errorf("%d highlighted edges, want >= 3:\n%s", got, out)
	}
	if strings.Count(out, " -- ") != tr.Links() {
		t.Error("highlighting changed the edge count")
	}
}
