package topology

// Shard assignment for the parallel simulation engine (internal/sim).
//
// The fabric is partitioned into contiguous leaf-switch groups: every level is
// sliced into `shards` equal-as-possible runs of label order, and a processing
// node always lands in the shard of its leaf switch (so the node-attachment
// link — and with it every generation, injection, delivery and reception event
// of the node — is shard-local). Because labels at every level are mixed-radix
// encodings of the same digit alphabet, slicing each level by label order
// keeps a shard's switches concentrated under a common prefix: most of a
// shard's traffic crosses shard boundaries only on inter-switch links.
//
// The assignment is a pure function of (tree, shards, id) — no hashing, no
// runtime state — so a simulation's shard layout is deterministic across runs,
// machines and shard-count choices, which the simulator's bit-for-bit
// determinism guarantee builds on.

// MaxShards returns the number of leaf-switch groups the tree can be
// partitioned into — the upper bound on useful simulation shards: one shard
// per leaf switch.
func (t *Tree) MaxShards() int {
	return t.SwitchesInLevel(t.n - 1)
}

// ShardOfSwitch returns the shard index in [0, shards) owning the switch,
// for any shards in [1, MaxShards()]. Switches of every level are divided
// into contiguous label-order runs, so the i-th shard owns switches
// [i*count/shards, (i+1)*count/shards) of each level.
func (t *Tree) ShardOfSwitch(shards int, id SwitchID) int {
	if shards <= 1 {
		return 0
	}
	level := t.SwitchLevel(id)
	idx := int(id)
	if level > 0 {
		idx -= t.perLevel + (level-1)*t.perMidLevel
	}
	return idx * shards / t.SwitchesInLevel(level)
}

// ShardOfNode returns the shard owning the processing node: the shard of its
// leaf switch, so the attachment link never crosses a shard boundary.
func (t *Tree) ShardOfNode(shards int, id NodeID) int {
	if shards <= 1 {
		return 0
	}
	sw, _ := t.NodeAttachment(id)
	return t.ShardOfSwitch(shards, sw)
}
