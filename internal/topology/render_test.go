package topology

import (
	"strings"
	"testing"
)

func TestRenderSmallTree(t *testing.T) {
	tr := MustNew(4, 2)
	out := tr.Render(200)
	for _, want := range []string{"FT(4,2)", "level 0:", "level 1:", "nodes:", "SW<0,0>", "P(30)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderElidesWideLevels(t *testing.T) {
	tr := MustNew(16, 2)
	out := tr.Render(40)
	if !strings.Contains(out, "... (128 nodes)") {
		t.Errorf("wide node row not elided:\n%s", out)
	}
	if !strings.Contains(out, "switches)") {
		t.Errorf("wide switch row not elided:\n%s", out)
	}
	// Zero width falls back to a sane default.
	if tr.Render(0) == "" {
		t.Error("Render(0) empty")
	}
}

func TestDescribeSwitch(t *testing.T) {
	tr := MustNew(4, 2)
	leaf, _ := tr.NodeAttachment(0)
	out := tr.DescribeSwitch(leaf)
	if !strings.Contains(out, "P(00)") || !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("DescribeSwitch:\n%s", out)
	}
	root := tr.SwitchesWithPrefix(nil, 0)[0]
	if strings.Contains(tr.DescribeSwitch(root), " up") {
		t.Error("root switch described with up ports")
	}
}

func TestDistance(t *testing.T) {
	tr := MustNew(4, 3)
	a := NodeID(0)
	if tr.Distance(a, a) != 0 {
		t.Error("self distance")
	}
	b, _ := tr.NodeFromDigits([]int{0, 0, 1}) // same leaf
	if got := tr.Distance(a, b); got != 1 {
		t.Errorf("same-leaf distance %d", got)
	}
	c, _ := tr.NodeFromDigits([]int{3, 1, 1}) // alpha 0
	if got := tr.Distance(a, c); got != 5 {
		t.Errorf("max distance %d", got)
	}
}

func TestAverageDistanceMatchesEnumeration(t *testing.T) {
	for _, tr := range []*Tree{MustNew(4, 1), MustNew(4, 2), MustNew(4, 3), MustNew(8, 2)} {
		var total, pairs float64
		for a := 0; a < tr.Nodes(); a++ {
			for b := 0; b < tr.Nodes(); b++ {
				if a == b {
					continue
				}
				total += float64(tr.Distance(NodeID(a), NodeID(b)))
				pairs++
			}
		}
		want := total / pairs
		got := tr.AverageDistance()
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: AverageDistance %v, enumerated %v", tr, got, want)
		}
	}
}

func TestBisectionLinks(t *testing.T) {
	cases := []struct{ m, n, want int }{
		{4, 1, 2}, {4, 2, 4}, {4, 3, 8}, {8, 2, 16}, {16, 2, 64},
	}
	for _, c := range cases {
		tr := MustNew(c.m, c.n)
		if got := tr.BisectionLinks(); got != c.want {
			t.Errorf("FT(%d,%d): bisection %d, want %d", c.m, c.n, got, c.want)
		}
		// Full bisection bandwidth: N/2 links for half the nodes.
		if got := tr.BisectionLinks(); got != tr.Nodes()/2 {
			t.Errorf("FT(%d,%d): bisection %d != N/2", c.m, c.n, got)
		}
	}
}
