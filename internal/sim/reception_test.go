package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestReceptionModels contrasts the two endnode consumption models under
// 50%-centric traffic. Under ReceptionLink the destination's single terminal
// link pins every scheme to the same hotspot sink rate, so MLID and SLID
// accept nearly the same traffic. Under ReceptionIdeal (the paper-faithful
// model) the hotspot leaf drains its multiple descending paths concurrently,
// and MLID's path spreading translates into far higher accepted traffic —
// the paper's Observation 3.
func TestReceptionModels(t *testing.T) {
	run := func(s core.Scheme, rec ReceptionModel) Result {
		sn := mustSubnet(t, 8, 2, s)
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
			OfferedLoad: 0.4,
			Reception:   rec,
			WarmupNs:    60_000,
			MeasureNs:   200_000,
			Seed:        17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	mLink := run(core.NewMLID(), ReceptionLink)
	sLink := run(core.NewSLID(), ReceptionLink)
	mIdeal := run(core.NewMLID(), ReceptionIdeal)
	sIdeal := run(core.NewSLID(), ReceptionIdeal)

	// Link-limited: both schemes within 10% of each other (terminal link
	// dominates either way).
	ratioLink := mLink.Accepted / sLink.Accepted
	if ratioLink < 0.90 || ratioLink > 1.10 {
		t.Errorf("ReceptionLink: MLID/SLID = %.3f, expected ~1 (terminal link pins both)", ratioLink)
	}
	// Ideal: MLID at least 1.5x SLID (the paper reports "much higher").
	if mIdeal.Accepted < 1.5*sIdeal.Accepted {
		t.Errorf("ReceptionIdeal: MLID %.4f not >> SLID %.4f", mIdeal.Accepted, sIdeal.Accepted)
	}
	// Ideal reception can only help.
	if mIdeal.Accepted < mLink.Accepted*0.95 {
		t.Errorf("ideal reception reduced MLID throughput: %.4f < %.4f", mIdeal.Accepted, mLink.Accepted)
	}
}

// TestReceptionLinkLatencyIdenticalAtLowLoad: with no contention the two
// reception models produce identical per-packet timing.
func TestReceptionLinkLatencyIdenticalAtLowLoad(t *testing.T) {
	for _, rec := range []ReceptionModel{ReceptionIdeal, ReceptionLink} {
		sn := mustSubnet(t, 4, 2, core.NewMLID())
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.BitComplement(sn.Tree.Nodes()),
			OfferedLoad: 0.004,
			Reception:   rec,
			WarmupNs:    20_000,
			MeasureNs:   300_000,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		const ideal = 3*100 + 4*10 + 256
		if res.MeanLatencyNs < ideal || res.MeanLatencyNs > ideal*1.1 {
			t.Errorf("reception %d: latency %.1f, want ~%d", rec, res.MeanLatencyNs, ideal)
		}
	}
}

// TestUniformMLIDBeatsSLIDIdeal: Observation 1 — under uniform traffic the
// MLID peak throughput exceeds SLID's on an 8-port network.
func TestUniformMLIDBeatsSLIDIdeal(t *testing.T) {
	run := func(s core.Scheme) Result {
		sn := mustSubnet(t, 8, 2, s)
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.9,
			WarmupNs:    60_000,
			MeasureNs:   200_000,
			Seed:        21,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m, sl := run(core.NewMLID()), run(core.NewSLID())
	if m.Accepted <= sl.Accepted {
		t.Errorf("uniform saturation: MLID %.4f <= SLID %.4f", m.Accepted, sl.Accepted)
	}
}

func TestInvalidReceptionRejected(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	_, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		Reception:   ReceptionModel(9),
	})
	if err == nil {
		t.Error("invalid reception model accepted")
	}
}
