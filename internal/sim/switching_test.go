package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestSAFLatencyMatchesModel: store-and-forward pays one serialization per
// switch. On FT(4,2) with bit-complement traffic (3 switches per route) the
// uncontended latency is 4*fly + 4*ser + 3*route = 40 + 1024 + 300 = 1364 ns,
// versus virtual cut-through's 596 ns.
func TestSAFLatencyMatchesModel(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	run := func(mode SwitchingMode) Result {
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.BitComplement(sn.Tree.Nodes()),
			OfferedLoad: 0.004,
			Switching:   mode,
			WarmupNs:    20_000,
			MeasureNs:   400_000,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	saf := run(SwitchingSAF)
	const idealSAF = 4*10 + 4*256 + 3*100
	if saf.MeanLatencyNs < idealSAF || saf.MeanLatencyNs > idealSAF*1.1 {
		t.Errorf("SAF latency %.1f, want ~%d", saf.MeanLatencyNs, idealSAF)
	}
	vct := run(SwitchingVCT)
	const idealVCT = 4*10 + 256 + 3*100
	if vct.MeanLatencyNs < idealVCT || vct.MeanLatencyNs > idealVCT*1.1 {
		t.Errorf("VCT latency %.1f, want ~%d", vct.MeanLatencyNs, idealVCT)
	}
	if saf.MeanLatencyNs <= vct.MeanLatencyNs {
		t.Error("SAF not slower than VCT")
	}
}

// TestSAFStillDeliversUnderLoad: the mode changes timing, not correctness.
func TestSAFStillDeliversUnderLoad(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.5,
		Switching:   SwitchingSAF,
		WarmupNs:    30_000,
		MeasureNs:   100_000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWindow == 0 || res.TotalDelivered > res.TotalGenerated {
		t.Fatalf("SAF run broken: %+v", res)
	}
}

func TestSwitchingValidation(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	_, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		Switching:   SwitchingMode(7),
	})
	if err == nil {
		t.Error("invalid switching mode accepted")
	}
}
