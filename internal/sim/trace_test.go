package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// TestPacketTraceMatchesRoute: a traced packet's hop sequence equals the
// routing scheme's traced path, and its timestamps follow the model's
// per-hop deltas at zero contention.
func TestPacketTraceMatchesRoute(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:       sn,
		Pattern:      traffic.BitComplement(sn.Tree.Nodes()),
		OfferedLoad:  0.004,
		TracePackets: 8,
		WarmupNs:     5_000,
		MeasureNs:    200_000,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 8 {
		t.Fatalf("%d traces", len(res.Traces))
	}
	for _, tr := range res.Traces {
		if tr.DeliverNs == 0 {
			t.Fatalf("trace %d undelivered at near-zero load", tr.Seq)
		}
		// Same switches as the closed-form route.
		want, err := core.TraceLID(sn.Tree, sn.Engine, topology.NodeID(tr.Src), ib.LID(tr.DLID))
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Hops) != want.Len() {
			t.Fatalf("trace %d has %d hops, route has %d", tr.Seq, len(tr.Hops), want.Len())
		}
		for i, h := range tr.Hops {
			if h.Switch != int32(want.Hops[i].Switch) {
				t.Fatalf("trace %d hop %d at switch %d, want %d", tr.Seq, i, h.Switch, want.Hops[i].Switch)
			}
			if h.DepartNs < h.ArriveNs {
				t.Fatalf("trace %d hop %d departs before arriving", tr.Seq, i)
			}
			// Uncontended: routing takes exactly RouteNs.
			if h.DepartNs-h.ArriveNs != DefaultRouteNs {
				t.Fatalf("trace %d hop %d dwell %d, want %d", tr.Seq, i, h.DepartNs-h.ArriveNs, DefaultRouteNs)
			}
		}
		// Injection follows generation immediately at idle.
		if tr.InjectNs < tr.GenNs {
			t.Fatal("inject before generation")
		}
		// First hop arrival = injection + fly.
		if tr.Hops[0].ArriveNs != tr.InjectNs+DefaultFlyNs {
			t.Fatalf("first hop arrival %d, want inject+fly %d", tr.Hops[0].ArriveNs, tr.InjectNs+DefaultFlyNs)
		}
		// Delivery = last departure + fly + serialization.
		last := tr.Hops[len(tr.Hops)-1]
		if tr.DeliverNs != last.DepartNs+DefaultFlyNs+DefaultPacketSize {
			t.Fatalf("delivery %d, want %d", tr.DeliverNs, last.DepartNs+DefaultFlyNs+DefaultPacketSize)
		}
	}
}

func TestPacketTraceOffByDefault(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		WarmupNs:    5_000,
		MeasureNs:   20_000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 0 {
		t.Errorf("%d traces without opting in", len(res.Traces))
	}
}
