package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestSeriesConservation: the time series' totals equal the run's totals
// over [0, end), and the bins are correctly aligned.
func TestSeriesConservation(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:           sn,
		Pattern:          traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad:      0.3,
		WarmupNs:         20_000,
		MeasureNs:        80_000,
		SeriesIntervalNs: 10_000,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || len(res.Series) > 10 {
		t.Fatalf("%d series bins", len(res.Series))
	}
	var delivered int64
	for i, sp := range res.Series {
		if sp.StartNs != Time(i)*10_000 {
			t.Fatalf("bin %d starts at %d", i, sp.StartNs)
		}
		if sp.Delivered > 0 && sp.MeanLatencyNs <= 0 {
			t.Fatalf("bin %d has deliveries without latency", i)
		}
		if sp.Accepted < 0 || sp.Accepted > 1.1 {
			t.Fatalf("bin %d accepted %v", i, sp.Accepted)
		}
		delivered += sp.Delivered
	}
	// Series covers the whole run (warmup included); it must hold at least
	// the window deliveries and at most the total.
	if delivered < res.DeliveredWindow || delivered > res.TotalDelivered {
		t.Fatalf("series delivered %d, window %d, total %d", delivered, res.DeliveredWindow, res.TotalDelivered)
	}
}

// TestSeriesShowsCongestionOnset: under hotspot overload the early bins
// deliver more than the late bins' SLID throughput... more precisely, the
// binned latency grows over time as the backlog builds.
func TestSeriesShowsCongestionOnset(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewSLID())
	res, err := Run(Config{
		Subnet:           sn,
		Pattern:          traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
		OfferedLoad:      0.4,
		WarmupNs:         0,
		MeasureNs:        200_000,
		SeriesIntervalNs: 20_000,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 5 {
		t.Fatalf("%d bins", len(res.Series))
	}
	first, last := res.Series[1], res.Series[len(res.Series)-1]
	if last.MeanLatencyNs <= first.MeanLatencyNs {
		t.Errorf("no congestion onset visible: bin1 latency %.0f, last %.0f",
			first.MeanLatencyNs, last.MeanLatencyNs)
	}
}

func TestSeriesOffByDefault(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		WarmupNs:    5_000,
		MeasureNs:   20_000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Error("series without opting in")
	}
}
