package sim

import (
	"reflect"
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

func TestNetLatencyExcludesSourceQueueing(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	// Deep saturation: the source queue dominates total latency, while the
	// in-fabric latency stays bounded by the fabric depth.
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 1.2,
		WarmupNs:    20_000,
		MeasureNs:   100_000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanNetLatencyNs <= 0 {
		t.Fatal("no net latency recorded")
	}
	if res.MeanNetLatencyNs >= res.MeanLatencyNs {
		t.Errorf("net latency %.0f >= total latency %.0f under saturation",
			res.MeanNetLatencyNs, res.MeanLatencyNs)
	}
	// At saturation total latency is dominated by queueing: at least 10x.
	if res.MeanLatencyNs < 10*res.MeanNetLatencyNs {
		t.Errorf("expected queueing-dominated latency: total %.0f, net %.0f",
			res.MeanLatencyNs, res.MeanNetLatencyNs)
	}
}

func TestNetLatencyEqualsTotalAtLowLoad(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.BitComplement(sn.Tree.Nodes()),
		OfferedLoad: 0.004,
		WarmupNs:    20_000,
		MeasureNs:   300_000,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.MeanLatencyNs - res.MeanNetLatencyNs; diff < 0 || diff > 5 {
		t.Errorf("low-load total %.1f vs net %.1f", res.MeanLatencyNs, res.MeanNetLatencyNs)
	}
}

func TestLinkUtilizationBounds(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	lo, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		WarmupNs:    10_000,
		MeasureNs:   100_000,
		Seed:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.8,
		WarmupNs:    10_000,
		MeasureNs:   100_000,
		Seed:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{lo, hi} {
		if r.MaxLinkUtilization < 0 || r.MaxLinkUtilization > 1.0001 {
			t.Fatalf("max utilization %v out of [0,1]", r.MaxLinkUtilization)
		}
		if r.MeanLinkUtilization < 0 || r.MeanLinkUtilization > r.MaxLinkUtilization {
			t.Fatalf("mean utilization %v vs max %v", r.MeanLinkUtilization, r.MaxLinkUtilization)
		}
	}
	if hi.MeanLinkUtilization <= lo.MeanLinkUtilization {
		t.Errorf("utilization did not grow with load: %.3f vs %.3f",
			hi.MeanLinkUtilization, lo.MeanLinkUtilization)
	}
	// At 10% uniform load the mean switch-link utilization should be near
	// the analytic value: each packet crosses ~2.6 switch links, so
	// utilization ~ load * nodes * hops / links ~ 0.1*32*2.6/ (12*8) ≈ 0.09.
	if lo.MeanLinkUtilization < 0.03 || lo.MeanLinkUtilization > 0.2 {
		t.Errorf("low-load mean utilization %.3f implausible", lo.MeanLinkUtilization)
	}
}

// TestPathSelectRandomDeliversAndDiffers: the oblivious policy still
// delivers everything correctly, and its results differ from rank selection
// under a pattern where rank selection is perfectly regular.
func TestPathSelectRandom(t *testing.T) {
	sn := mustSubnet(t, 4, 3, core.NewMLID())
	base := Config{
		Subnet:      sn,
		Pattern:     traffic.BitComplement(sn.Tree.Nodes()),
		OfferedLoad: 0.6,
		WarmupNs:    20_000,
		MeasureNs:   100_000,
		Seed:        9,
	}
	rank, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.PathSelect = SelectRandom()
	random, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if random.TotalDelivered == 0 {
		t.Fatal("random policy delivered nothing")
	}
	if reflect.DeepEqual(rank, random) {
		t.Error("random and rank policies produced identical results")
	}
	// Under bit-complement, rank selection gives a perfect permutation of
	// paths (every link load 1); random selection collides and cannot beat
	// it on accepted traffic.
	if random.Accepted > rank.Accepted*1.02 {
		t.Errorf("oblivious random (%.4f) beat rank selection (%.4f) on a permutation",
			random.Accepted, rank.Accepted)
	}
}

func TestPathSelectValidation(t *testing.T) {
	if _, err := SelectorByName("bogus"); err == nil {
		t.Error("unknown selector name accepted")
	}
	for _, name := range SelectorNames() {
		sel, err := SelectorByName(name)
		if err != nil {
			t.Errorf("SelectorByName(%q): %v", name, err)
			continue
		}
		if sel.Name() != name {
			t.Errorf("SelectorByName(%q).Name() = %q", name, sel.Name())
		}
	}
	if sel, err := SelectorByName(""); err != nil || sel.Name() != "rank" {
		t.Errorf("empty selector name: got %v, %v; want rank", sel, err)
	}
}

// TestSLIDRandomEqualsRank: with LMC 0 the random policy degenerates to the
// single LID, so results must be identical.
func TestSLIDRandomEqualsRank(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewSLID())
	base := Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.3,
		WarmupNs:    10_000,
		MeasureNs:   50_000,
		Seed:        4,
	}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.PathSelect = SelectRandom()
	b, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || a.MeanLatencyNs != b.MeanLatencyNs {
		t.Errorf("SLID rank vs random differ: %+v vs %+v", a, b)
	}
}
