package sim

import (
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// transportCfg is the fault scenario of faultCfg with the reliable transport
// enabled: FT(4,2), uniform sub-saturation traffic, and the canonical spine
// link (switch 2, abstract port 2) killed mid-measurement.
func transportCfg(t *testing.T, scheme core.Scheme, plan *FaultPlan, tc *TransportConfig) Config {
	t.Helper()
	cfg := faultCfg(t, scheme, plan)
	cfg.Transport = tc
	return cfg
}

func TestTransportConfigValidation(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	pat := traffic.Uniform{Nodes: sn.Tree.Nodes()}
	base := Config{Subnet: sn, Pattern: pat, OfferedLoad: 0.1}
	bad := []*TransportConfig{
		{BaseTimeoutNs: -5},                       // negative timeout
		{BackoffMult: 0.5},                        // shrinking backoff
		{BaseTimeoutNs: 10_000, MaxTimeoutNs: 50}, // cap below base
		{AckBytes: -1},                            // negative control size
	}
	for i, tc := range bad {
		cfg := base
		cfg.Transport = tc
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad transport config %d accepted", i)
		}
	}
	cfg := base
	cfg.DataVLs = 15 // no room left for the management VL
	cfg.Transport = &TransportConfig{}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "management VL") {
		t.Errorf("DataVLs=15 with Transport: err = %v, want management-VL error", err)
	}
}

func TestTransportTimeoutBackoff(t *testing.T) {
	tc := TransportConfig{
		BaseTimeoutNs: 1_000, BackoffMult: 2, MaxTimeoutNs: 6_000, MaxRetries: 8,
	}
	want := []Time{1_000, 2_000, 4_000, 6_000, 6_000}
	for attempts, w := range want {
		if got := tc.timeout(int32(attempts)); got != w {
			t.Errorf("timeout(%d) = %d, want %d", attempts, got, w)
		}
	}
	// The computed drain default covers one full retry cycle plus slack.
	d := tc.withDefaults()
	var cycle Time
	for i := 0; i <= d.MaxRetries; i++ {
		cycle += d.timeout(int32(i))
	}
	if d.DrainNs != cycle+100_000 {
		t.Errorf("default DrainNs = %d, want cycle %d + 100000", d.DrainNs, cycle)
	}
	// Negative MaxRetries means no retransmissions; negative DrainNs means
	// no drain.
	d = TransportConfig{MaxRetries: -1, DrainNs: -1}.withDefaults()
	if d.MaxRetries != 0 || d.DrainNs != 0 {
		t.Errorf("MaxRetries=-1 DrainNs=-1 defaults to retries=%d drain=%d, want 0,0", d.MaxRetries, d.DrainNs)
	}
}

// TestTransportReceiverDedup drives the receiver's PSN state machine
// directly: in-order accept, gap buffering, the duplicate threshold before a
// NAK (reordering tolerance), the single NAK per gap, gap-fill draining, and
// duplicate suppression.
func TestTransportReceiverDedup(t *testing.T) {
	cfg := transportCfg(t, core.NewMLID(), nil, &TransportConfig{}).withDefaults()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	s := build(cfg)
	s.end = cfg.WarmupNs + cfg.MeasureNs

	mk := func(seq uint32) *pkt {
		p := s.newPkt()
		p.Src, p.Dst = 1, 0
		p.flowSeq = seq
		return p
	}
	// In order: 1 accepted.
	if !s.rxAccept(0, mk(1)) {
		t.Fatal("seq 1 not accepted")
	}
	// Gap: 3, 4 and 5 buffer out of order. The first two arrivals above the
	// gap look like plain multipath reordering — no NAK yet; the third crosses
	// nakDupThreshold and NAKs missing seq 2 exactly once.
	if !s.rxAccept(0, mk(3)) || !s.rxAccept(0, mk(4)) {
		t.Fatal("out-of-order packets not accepted")
	}
	if s.transport.naksSent != 0 {
		t.Fatalf("naksSent = %d after %d arrivals, want 0 (below duplicate threshold)",
			s.transport.naksSent, nakDupThreshold-1)
	}
	if !s.rxAccept(0, mk(5)) {
		t.Fatal("out-of-order seq 5 not accepted")
	}
	if s.transport.naksSent != 1 {
		t.Fatalf("naksSent = %d, want 1 (one NAK per gap)", s.transport.naksSent)
	}
	// Duplicate of a buffered packet.
	if s.rxAccept(0, mk(3)) {
		t.Fatal("duplicate of buffered seq 3 accepted twice")
	}
	// Gap fills: cum jumps over the buffered packets.
	if !s.rxAccept(0, mk(2)) {
		t.Fatal("gap-filling seq 2 not accepted")
	}
	f := &s.transport.rx[s.flowIdx(1, 0)]
	if f.cum != 5 || f.oooCount != 0 {
		t.Fatalf("after gap fill: cum = %d (want 5), oooCount = %d (want 0)", f.cum, f.oooCount)
	}
	// Duplicate below the watermark.
	if s.rxAccept(0, mk(2)) {
		t.Fatal("duplicate below watermark accepted")
	}
	if s.transport.dupDeliveries != 2 {
		t.Errorf("dupDeliveries = %d, want 2", s.transport.dupDeliveries)
	}
	if s.transport.acksSent == 0 {
		t.Error("no ACKs sent")
	}
}

// TestTransportReliableRecovery is the tentpole acceptance scenario: a spine
// link dies permanently mid-measurement under MLID with fault-avoiding
// reselection. Packets drop at the dead link, but every drop is retransmitted
// onto a surviving LID: the run ends with zero silent loss, zero failures and
// nothing in flight.
func TestTransportReliableRecovery(t *testing.T) {
	const downNs = 50_000
	plan := &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: downNs}},
		Reselect: true,
	}
	res, err := Run(transportCfg(t, core.NewMLID(), plan, &TransportConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedTotal == 0 {
		t.Fatal("expected drops at the dead link before the trap")
	}
	if res.Retransmits == 0 {
		t.Fatal("expected retransmissions to recover the drops")
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d, want 0: every MLID flow has a surviving path", res.Failed)
	}
	if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("conservation: delivered+failed+inflight = %d, generated = %d", got, res.TotalGenerated)
	}
	if res.InFlightAtEnd != 0 {
		t.Errorf("InFlightAtEnd = %d, want 0 after the drain", res.InFlightAtEnd)
	}
	if res.LastRecoveredNs <= downNs {
		t.Errorf("LastRecoveredNs = %d, want after the failure at %d", res.LastRecoveredNs, downNs)
	}
	if res.AcksSent == 0 || res.CtrlBytesSent == 0 {
		t.Errorf("no acknowledgment traffic: acks=%d bytes=%d", res.AcksSent, res.CtrlBytesSent)
	}
	if res.P999LatencyNs < res.P99LatencyNs {
		t.Errorf("p999 %f below p99 %f", res.P999LatencyNs, res.P99LatencyNs)
	}
}

// TestTransportMLIDBeatsSLID is the issue's acceptance comparison: on the
// same seed and fault, retransmissions re-enter path selection, so MLID
// steers retries onto surviving LIDs while SLID hammers its single dead path
// — strictly fewer retransmissions, and no exhausted retry budgets.
func TestTransportMLIDBeatsSLID(t *testing.T) {
	const downNs = 50_000
	run := func(scheme core.Scheme) Result {
		t.Helper()
		plan := &FaultPlan{
			Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: downNs}},
			Reselect: true,
		}
		res, err := Run(transportCfg(t, scheme, plan, &TransportConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
			t.Errorf("conservation: delivered+failed+inflight = %d, generated = %d", got, res.TotalGenerated)
		}
		return res
	}
	slid := run(core.NewSLID())
	mlid := run(core.NewMLID())
	if mlid.Retransmits >= slid.Retransmits {
		t.Errorf("MLID retransmits %d, SLID %d: want strictly fewer under MLID",
			mlid.Retransmits, slid.Retransmits)
	}
	if mlid.Failed != 0 {
		t.Errorf("MLID Failed = %d, want 0", mlid.Failed)
	}
	if slid.Failed == 0 && slid.InFlightAtEnd == 0 {
		t.Errorf("SLID rode through a permanent fault unscathed (failed=0, inflight=0): fault did not bite")
	}
}

// TestTransportNoFaultClean proves the transport is quiet on a healthy
// fabric: everything delivers, nothing fails, nothing is left in flight.
func TestTransportNoFaultClean(t *testing.T) {
	res, err := Run(transportCfg(t, core.NewMLID(), nil, &TransportConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d on a healthy fabric", res.Failed)
	}
	if res.InFlightAtEnd != 0 {
		t.Errorf("InFlightAtEnd = %d, want 0 after drain", res.InFlightAtEnd)
	}
	if res.TotalDelivered != res.TotalGenerated {
		t.Errorf("delivered %d != generated %d", res.TotalDelivered, res.TotalGenerated)
	}
	if res.AcksSent < res.TotalDelivered {
		t.Errorf("acks %d below deliveries %d: every accepted packet is acknowledged",
			res.AcksSent, res.TotalDelivered)
	}
}

// TestTransportRetryBudget forces failure: a node's attachment link dies
// permanently, so no retry can ever reach it; with reselection off and a tiny
// budget, every packet to that node must exhaust its retries and count
// Failed, never hang in flight.
func TestTransportRetryBudget(t *testing.T) {
	leaf := int32(2) // node 0's leaf switch; abstract port 0 is its attachment
	plan := &FaultPlan{
		Faults: []LinkFault{{Switch: leaf, Port: 0, DownNs: 30_000}},
	}
	// Retry cycles resolve sequentially per flow (only the oldest
	// unacknowledged packet retransmits), so give the drain room for a
	// whole backlog of failures.
	tc := &TransportConfig{
		BaseTimeoutNs: 2_000, MaxTimeoutNs: 4_000, MaxRetries: 2,
		DrainNs: 500_000,
	}
	res, err := Run(transportCfg(t, core.NewMLID(), plan, tc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("no Failed packets despite an unreachable node and a tiny retry budget")
	}
	if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("conservation: delivered+failed+inflight = %d, generated = %d", got, res.TotalGenerated)
	}
	if res.InFlightAtEnd != 0 {
		t.Errorf("InFlightAtEnd = %d, want 0: failures must resolve within the drain", res.InFlightAtEnd)
	}
}

// TestTransportDeterminism runs the transport fault scenario twice on the
// calendar path, once on the heap-only path via the package hook, and once
// via the exported Config.HeapOnlyScheduler switch: all four results must be
// identical.
func TestTransportDeterminism(t *testing.T) {
	run := func(heapOnlyCfg bool) Result {
		t.Helper()
		plan := &FaultPlan{
			Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000, UpNs: 90_000}},
			Reselect: true,
		}
		cfg := transportCfg(t, core.NewMLID(), plan, &TransportConfig{})
		cfg.HeapOnlyScheduler = heapOnlyCfg
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(false)
	b := run(false)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("transport run is not deterministic")
	}
	heap := withHeapOnlyEngine(t, func() Result { return run(false) })
	if !reflect.DeepEqual(a, heap) {
		t.Fatal("calendar and heap-only scheduler paths disagree under transport")
	}
	if cfgHeap := run(true); !reflect.DeepEqual(a, cfgHeap) {
		t.Fatal("Config.HeapOnlyScheduler path disagrees with the calendar path")
	}
}
