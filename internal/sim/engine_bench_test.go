package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// BenchmarkEngineSchedule measures the raw scheduler: schedule+pop cycles
// through the calendar fast path and the heap fallback, reporting ns/event so
// engine regressions are visible independently of the figure benchmarks.
func BenchmarkEngineSchedule(b *testing.B) {
	bench := func(b *testing.B, horizon Time, heapOnly bool) {
		var e engine
		e.heapOnly = heapOnly
		// Keep a standing population of 64 events so pops never drain the
		// queue to a trivial state.
		const standing = 64
		for i := 0; i < standing; i++ {
			e.schedule(e.now+Time(i%int(horizon))+1, event{kind: evKick})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev, ok := e.pop(1 << 62)
			if !ok {
				b.Fatal("queue drained")
			}
			_ = ev
			e.schedule(e.now+Time(i%int(horizon))+1, event{kind: evKick})
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
	}
	b.Run("calendar/near", func(b *testing.B) { bench(b, 256, false) })
	b.Run("calendar/mixed", func(b *testing.B) { bench(b, 2*calSize, false) })
	b.Run("heap", func(b *testing.B) { bench(b, 256, true) })
}

func benchSubnet(b *testing.B, m, n int) *ib.Subnet {
	b.Helper()
	tr := topology.MustNew(m, n)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	if err != nil {
		b.Fatal(err)
	}
	return sn
}

// BenchmarkRunSmall measures one full small simulation, reporting ns/event
// and allocs/op for the whole hot path (engine + model + packet pool).
func BenchmarkRunSmall(b *testing.B) {
	sn := benchSubnet(b, 8, 2)
	cfg := Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		DataVLs:     2,
		OfferedLoad: 0.6,
		WarmupNs:    10_000,
		MeasureNs:   50_000,
		Seed:        1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}
