package sim

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Reliable end-to-end transport, modelled on the IBA Reliable Connection
// service: every data packet of a (source, destination) flow carries a packet
// sequence number (PSN), the receiver acknowledges in-order progress and
// reports gaps, and the sender retransmits on NAK or on a timeout with
// exponential backoff until a retry budget runs out. Retransmissions re-enter
// path selection (selectDLID), so a source with multiple LIDs per destination
// can steer each retry onto a surviving path while a single-LID source must
// hammer the one configured path — the mechanism that turns MLID's path
// diversity into shorter recovery tails under faults.
//
// Control packets (ACK/NAK) travel on a dedicated management virtual lane —
// the last VL index, claimed on top of Config.DataVLs — so acknowledgment
// traffic shares link bandwidth with data but never competes for data-VL
// buffers. They are ordinary packets: they serialize, fly, take crossbar time,
// and die on dead links like any other traffic (a lost ACK is recovered by the
// sender's timer).

// Default transport constants. The base timeout is ~17x the zero-load
// end-to-end latency of the default model on the evaluated fabrics, so
// timeouts fire for lost packets, not for queueing.
const (
	DefaultBaseTimeoutNs Time = 10_000
	DefaultBackoffMult        = 2.0
	DefaultMaxRetries         = 8
	DefaultAckBytes           = 20
)

// TransportConfig parameterizes the reliable transport layer.
type TransportConfig struct {
	// BaseTimeoutNs is the retransmit timeout of a packet's first try; zero
	// takes the default.
	BaseTimeoutNs Time
	// BackoffMult multiplies the timeout after every retry (exponential
	// backoff); zero takes the default, values below 1 are rejected.
	BackoffMult float64
	// MaxTimeoutNs caps the backed-off timeout; zero takes 8x the base.
	MaxTimeoutNs Time
	// MaxRetries is the retry budget per packet: after this many
	// retransmissions the next timeout counts the packet Failed instead of
	// retrying forever. Zero takes the default; negative means no
	// retransmissions at all (the first timeout fails the packet).
	MaxRetries int
	// AckBytes is the size of an ACK/NAK control packet; zero takes the
	// default.
	AckBytes int
	// DrainNs extends the run past the generation horizon so outstanding
	// retransmissions can resolve: the run keeps processing events (but
	// generates no new packets) for this long. Zero takes a computed
	// default — one full retry cycle (the sum of every backed-off timeout)
	// plus pipeline slack — and negative disables draining.
	DrainNs Time
}

// withDefaults fills zero fields.
func (tc TransportConfig) withDefaults() TransportConfig {
	if tc.BaseTimeoutNs == 0 {
		tc.BaseTimeoutNs = DefaultBaseTimeoutNs
	}
	if tc.BackoffMult == 0 {
		tc.BackoffMult = DefaultBackoffMult
	}
	if tc.MaxTimeoutNs == 0 {
		tc.MaxTimeoutNs = 8 * tc.BaseTimeoutNs
	}
	switch {
	case tc.MaxRetries == 0:
		tc.MaxRetries = DefaultMaxRetries
	case tc.MaxRetries < 0:
		tc.MaxRetries = 0
	}
	if tc.AckBytes == 0 {
		tc.AckBytes = DefaultAckBytes
	}
	switch {
	case tc.DrainNs == 0:
		// One full head retry cycle plus slack, so a packet that starts
		// timing out right at the horizon can exhaust its budget.
		var cycle Time
		for i := 0; i <= tc.MaxRetries; i++ {
			cycle += tc.timeout(int32(i))
		}
		tc.DrainNs = cycle + 100_000
	case tc.DrainNs < 0:
		tc.DrainNs = 0
	}
	return tc
}

// validate rejects inconsistent transport configurations. Runs after
// withDefaults, so zero-takes-default fields are already filled.
func (tc TransportConfig) validate() error {
	if tc.BaseTimeoutNs <= 0 {
		return fmt.Errorf("sim: Transport.BaseTimeoutNs must be positive, got %d", tc.BaseTimeoutNs)
	}
	if tc.BackoffMult < 1 {
		return fmt.Errorf("sim: Transport.BackoffMult must be >= 1, got %v", tc.BackoffMult)
	}
	if tc.MaxTimeoutNs < tc.BaseTimeoutNs {
		return fmt.Errorf("sim: Transport.MaxTimeoutNs %d below BaseTimeoutNs %d", tc.MaxTimeoutNs, tc.BaseTimeoutNs)
	}
	if tc.MaxRetries < 0 {
		return fmt.Errorf("sim: Transport.MaxRetries must be >= 0 after defaults, got %d", tc.MaxRetries)
	}
	if tc.AckBytes <= 0 {
		return fmt.Errorf("sim: Transport.AckBytes must be positive, got %d", tc.AckBytes)
	}
	return nil
}

// timeout returns the backed-off retransmit timeout after the given number of
// retransmissions: min(Base * Mult^attempts, Cap). Pure in the config, so the
// schedule is deterministic.
func (tc TransportConfig) timeout(attempts int32) Time {
	t := float64(tc.BaseTimeoutNs)
	for i := int32(0); i < attempts; i++ {
		t *= tc.BackoffMult
		if Time(t) >= tc.MaxTimeoutNs {
			return tc.MaxTimeoutNs
		}
	}
	if Time(t) > tc.MaxTimeoutNs {
		return tc.MaxTimeoutNs
	}
	return Time(t)
}

// Control-packet kinds carried in pkt.ctrl.
const (
	ctrlData uint8 = iota // a data packet (the zero value)
	ctrlAck               // cumulative + selective acknowledgment
	ctrlNak               // negative acknowledgment: "cum+1 is missing"
)

// txPkt is one unacknowledged packet at its sender: enough to rebuild a
// retransmission copy without holding the (pooled, recycled) original.
type txPkt struct {
	seq      uint32 // PSN within the flow
	seq64    uint64 // global generation sequence (ib.Packet.Seq)
	genTime  Time   // original generation time: retries keep end-to-end latency honest
	size     int
	attempts int32 // retransmissions performed so far
}

// txFlow is the sender side of one (src, dst) flow. One retransmit timer
// guards the oldest unacknowledged packet; timerGen invalidates a scheduled
// timer when the head changes (the engine has no event deletion).
type txFlow struct {
	unacked  []txPkt // PSN-ascending; head is the retransmit candidate
	timerGen uint32
}

// nakDupThreshold is how many arrivals above a gap the receiver tolerates
// before NAKing the missing PSN. Multipath spreading reorders packets
// constantly — a gap usually means "in flight on a longer path", not "lost" —
// so NAKing the first gap would fast-retransmit (and duplicate) merely-late
// packets, penalizing exactly the schemes with path diversity. Three
// duplicate hints before reacting is the classic transport compromise (TCP
// fast retransmit); the sender's timer remains the backstop for real losses
// on quiet flows.
const nakDupThreshold = 3

// rxFlow is the receiver side of one (src, dst) flow.
type rxFlow struct {
	// cum is the highest PSN received in order: everything <= cum is
	// delivered and acknowledged.
	cum uint32
	// win is a sliding-window ring bitmap over the PSNs received above a
	// gap (membership-only, exactly what the old per-flow map provided,
	// without its per-entry allocation): the bit for PSN p lives at word
	// (p>>6) mod len(win), bit p&63, with len(win) a power of two. The
	// invariant is that only words in the active span — (cum, highest
	// buffered PSN] — hold set bits, so ring aliasing cannot produce false
	// positives; draining clears each bit as cum advances, and a span wider
	// than the ring doubles it with an absolute-word remap (winInsert).
	// Lazily borrowed from the run's pool on the first gap and returned
	// when the gap fully drains (oooCount hits zero).
	win []uint64
	// oooCount is the number of PSNs currently buffered in win.
	oooCount int32
	// nakFor is the missing PSN the receiver already NAKed, rate-limiting
	// NAKs to one per gap (the sender's timer is the fallback if either the
	// NAK or its retransmission dies).
	nakFor uint32
	// gapHits counts arrivals above the current gap since cum last moved;
	// the NAK fires once it reaches nakDupThreshold.
	gapHits int32
}

// winContains reports whether PSN seq is buffered. PSNs at or below cum, or
// beyond the ring's representable span, cannot be stored and answer false
// without touching the bitmap.
func (f *rxFlow) winContains(seq uint32) bool {
	if f.oooCount == 0 || seq <= f.cum {
		return false
	}
	w := seq >> 6
	w0 := (f.cum + 1) >> 6
	if w-w0 >= uint32(len(f.win)) {
		return false
	}
	return f.win[w&uint32(len(f.win)-1)]>>(seq&63)&1 == 1
}

// winClear removes PSN seq from the window (the caller knows it is present).
func (f *rxFlow) winClear(seq uint32) {
	f.win[(seq>>6)&uint32(len(f.win)-1)] &^= 1 << (seq & 63)
	f.oooCount--
}

// winInsert records PSN seq in the window, growing the ring when the span
// from the gap to seq no longer fits.
func (t *transportRun) winInsert(f *rxFlow, seq uint32) {
	w := seq >> 6
	w0 := (f.cum + 1) >> 6
	if span := w - w0 + 1; f.win == nil || span > uint32(len(f.win)) {
		t.winGrow(f, span)
	}
	f.win[w&uint32(len(f.win)-1)] |= 1 << (seq & 63)
	f.oooCount++
}

// winGrow (re)sizes a flow's ring to hold span words, doubling from a small
// floor and remapping every live word of the old ring onto its new slot by
// absolute word index.
func (t *transportRun) winGrow(f *rxFlow, span uint32) {
	newLen := uint32(4)
	for newLen < span {
		newLen <<= 1
	}
	old := f.win
	f.win = t.getWin(int(newLen))
	if old != nil {
		w0 := (f.cum + 1) >> 6
		for i := uint32(0); i < uint32(len(old)); i++ {
			w := w0 + i
			f.win[w&(newLen-1)] = old[w&uint32(len(old)-1)]
		}
		t.putWin(old)
	}
}

// getWin borrows a zeroed ring of exactly n words (n a power of two) from
// the pool, allocating only when the pool has nothing large enough.
func (t *transportRun) getWin(n int) []uint64 {
	if last := len(t.winFree) - 1; last >= 0 {
		w := t.winFree[last]
		t.winFree[last] = nil
		t.winFree = t.winFree[:last]
		if cap(w) >= n {
			w = w[:n]
			clear(w)
			return w
		}
	}
	return make([]uint64, n)
}

// putWin returns a drained ring to the pool for the next gapped flow.
func (t *transportRun) putWin(w []uint64) {
	t.winFree = append(t.winFree, w)
}

// transportRun is the live transport state of one simulation.
type transportRun struct {
	cfg    TransportConfig
	mgmtVL uint8
	// tx / rx are indexed src*nodes+dst: tx at the packet's source, rx at
	// its destination.
	tx []txFlow
	rx []rxFlow
	// winFree pools drained out-of-order ring bitmaps across flows, so the
	// number of live rings tracks the number of concurrently gapped flows,
	// not the number of flows that ever saw a gap.
	winFree [][]uint64

	retransmits     int64
	failed          int64
	dupDeliveries   int64
	acksSent        int64
	naksSent        int64
	ctrlBytes       int64
	lastRecoveredNs Time
}

// flowIdx maps a (src, dst) pair onto the flat flow arrays.
func (s *Sim) flowIdx(src, dst int32) int32 {
	return src*int32(s.tree.Nodes()) + dst
}

// txTrack registers a freshly generated data packet with its sender's flow
// and arms the flow's retransmit timer if it was idle.
func (s *Sim) txTrack(node int32, p *pkt) {
	idx := s.flowIdx(node, p.Dst)
	f := &s.transport.tx[idx]
	f.unacked = append(f.unacked, txPkt{
		seq: p.flowSeq, seq64: p.Seq, genTime: p.GenTime, size: p.Size,
	})
	if len(f.unacked) == 1 {
		s.armTimer(idx, f)
	}
}

// armTimer (re)schedules the flow's retransmit timer for its current head,
// invalidating any previously scheduled one. The timer carries its drain
// classification (pi): whether the in-band SM considered the destination
// unreachable when the timer armed. Like the head's attempt count, the flag
// is frozen between arming and firing — a verdict change takes effect at the
// next re-arm — so the sharded engine can route drain timers to the
// coordinator at scheduling time and both engines degrade identically.
func (s *Sim) armTimer(idx int32, f *txFlow) {
	f.timerGen++
	at := s.now + s.transport.cfg.timeout(f.unacked[0].attempts)
	var drain int32
	if ib := s.faults.inband; ib != nil && ib.unreachable != nil && ib.unreachable[idx] != 0 {
		drain = 1
	}
	s.schedule(at, event{kind: evRexmit, a: idx, b: int32(f.timerGen), pi: drain})
}

// rexmitTimer fires a flow's retransmit timer: retransmit the oldest
// unacknowledged packet, or — budget exhausted — count it Failed and move on.
// A timer armed while the SM declared the destination unreachable instead
// drains the flow's backlog into UnreachableDegraded (graceful degradation:
// no retry burned on a provably dead pair).
func (s *Sim) rexmitTimer(idx int32, gen int32, drain bool) {
	t := s.transport
	f := &t.tx[idx]
	if int32(f.timerGen) != gen || len(f.unacked) == 0 {
		return // stale: the flow re-armed or fully drained since scheduling
	}
	if drain {
		s.drainUnreachable(idx, f)
		return
	}
	head := &f.unacked[0]
	if int(head.attempts) >= t.cfg.MaxRetries {
		// Budget exhausted: the sender gives up on the packet. Failed counts
		// only packets the receiver truly never got (the simulator is
		// omniscient): a packet whose every acknowledgment died is
		// delivered-but-unconfirmed, and counting it Failed would double-
		// count it against the conservation identity.
		rxf := &t.rx[idx]
		delivered := head.seq <= rxf.cum || rxf.winContains(head.seq)
		if !delivered {
			t.failed++
			if iv := s.cfg.SeriesIntervalNs; iv > 0 && s.now < s.end {
				s.seriesFailed[s.seriesBin(s.now)]++
			}
		}
		f.unacked = f.unacked[:copy(f.unacked, f.unacked[1:])]
		if len(f.unacked) > 0 {
			s.armTimer(idx, f)
		}
		return
	}
	s.retransmit(idx, head)
	s.armTimer(idx, f)
}

// retransmit injects a fresh copy of an unacknowledged packet at its source.
// The copy re-enters selectDLID — with fault-avoiding reselection active, an
// MLID source picks a surviving LID for the retry; a SLID source has only its
// single path to repeat.
func (s *Sim) retransmit(idx int32, tp *txPkt) {
	t := s.transport
	tp.attempts++
	t.retransmits++
	if iv := s.cfg.SeriesIntervalNs; iv > 0 && s.now < s.end {
		s.seriesRexmit[s.seriesBin(s.now)]++
	}
	nodes := int32(s.tree.Nodes())
	src, dst := idx/nodes, idx%nodes
	n := &s.nodes[src]
	// The retry carries its original flow sequence number into selection: a
	// spraying selector re-derives the same offset unless the fault mask
	// shrank, in which case the rotation shifts the retry onto a survivor.
	dlid := s.selectDLID(n, topology.NodeID(src), topology.NodeID(dst), tp.seq)
	var vl int
	if s.cfg.VLSelect == VLByDLID {
		vl = int(dlid) % s.cfg.DataVLs
	} else {
		vl = n.nextVL
		n.nextVL = (n.nextVL + 1) % s.cfg.DataVLs
	}
	p := s.newPkt()
	p.Packet = ib.Packet{
		SLID:    s.cfg.Subnet.Endports[src].Base,
		DLID:    dlid,
		VL:      uint8(vl),
		Size:    tp.size,
		Seq:     tp.seq64,
		Src:     src,
		Dst:     dst,
		GenTime: tp.genTime,
	}
	p.flowSeq = tp.seq
	p.rexmit = true
	s.requestTransfer(s.nodePid(src), p)
}

// rxAccept runs the receiver side for a delivered data packet: duplicate and
// gap detection against the flow's PSN state, and the acknowledgment reply.
// It reports whether the packet is a first-time delivery (false: duplicate,
// not to be counted again).
func (s *Sim) rxAccept(node int32, p *pkt) bool {
	t := s.transport
	f := &t.rx[s.flowIdx(p.Src, node)]
	seq := p.flowSeq
	switch {
	case seq <= f.cum:
		// Below the cumulative watermark: a duplicate (late original after
		// a spurious retransmission, or a repeated retransmission). Resync
		// the sender with the current watermark.
		t.dupDeliveries++
		s.sendCtrl(node, p.Src, ctrlAck, f.cum, seq)
		return false
	case seq == f.cum+1:
		// In order: advance the watermark, draining any buffered packets
		// the gap was holding back. A fully drained window returns its ring
		// to the pool.
		f.cum++
		if f.oooCount > 0 {
			for f.winContains(f.cum + 1) {
				f.winClear(f.cum + 1)
				f.cum++
			}
			if f.oooCount == 0 {
				t.putWin(f.win)
				f.win = nil
			}
		}
		f.gapHits = 0
		s.sendCtrl(node, p.Src, ctrlAck, f.cum, seq)
		return true
	default:
		// Above a gap: buffer, and NAK the missing PSN once the gap has
		// survived nakDupThreshold arrivals. Multipath reordering lands
		// here constantly, so out-of-order is accepted (selectively
		// acknowledged), never discarded, and never NAKed on first sight.
		if f.winContains(seq) {
			t.dupDeliveries++
			s.sendCtrl(node, p.Src, ctrlAck, f.cum, seq)
			return false
		}
		t.winInsert(f, seq)
		f.gapHits++
		if f.gapHits >= nakDupThreshold && f.nakFor != f.cum+1 {
			f.nakFor = f.cum + 1
			s.sendCtrl(node, p.Src, ctrlNak, f.cum, seq)
		} else {
			s.sendCtrl(node, p.Src, ctrlAck, f.cum, seq)
		}
		return true
	}
}

// sendCtrl injects one ACK/NAK control packet from node back to the flow's
// sender, on the management VL. Control packets take the same path-selection
// machinery as data (including fault-avoiding reselection), so acknowledgments
// route around known-dead links too.
func (s *Sim) sendCtrl(from, to int32, kind uint8, cum, sack uint32) {
	t := s.transport
	n := &s.nodes[from]
	// Control packets key spraying rotation on the cumulative watermark:
	// it advances with the flow, is deterministic, and needs no extra state.
	dlid := s.selectDLID(n, topology.NodeID(from), topology.NodeID(to), cum)
	p := s.newPkt()
	p.Packet = ib.Packet{
		SLID:    s.cfg.Subnet.Endports[from].Base,
		DLID:    dlid,
		VL:      t.mgmtVL,
		Size:    t.cfg.AckBytes,
		Src:     from,
		Dst:     to,
		GenTime: s.now,
	}
	p.ctrl = kind
	p.cum = cum
	p.sack = sack
	if kind == ctrlAck {
		t.acksSent++
	} else {
		t.naksSent++
	}
	t.ctrlBytes += int64(p.Size)
	s.requestTransfer(s.nodePid(from), p)
}

// ctrlArrive runs the sender side for a delivered ACK/NAK: release every
// packet the cumulative watermark covers plus the selectively acknowledged
// one, then react — a NAK for the current head retransmits it immediately
// (budget permitting); a head change restarts the timer.
func (s *Sim) ctrlArrive(node int32, p *pkt) {
	t := s.transport
	idx := s.flowIdx(node, p.Src)
	f := &t.tx[idx]
	headChanged := false
	i := 0
	for i < len(f.unacked) && f.unacked[i].seq <= p.cum {
		i++
	}
	if i > 0 {
		f.unacked = f.unacked[:copy(f.unacked, f.unacked[i:])]
		headChanged = true
	}
	if p.sack > p.cum {
		for j := range f.unacked {
			if f.unacked[j].seq == p.sack {
				f.unacked = append(f.unacked[:j], f.unacked[j+1:]...)
				if j == 0 {
					headChanged = true
				}
				break
			}
		}
	}
	if len(f.unacked) == 0 {
		f.timerGen++ // invalidate the outstanding timer
		return
	}
	if p.ctrl == ctrlNak && f.unacked[0].seq == p.cum+1 &&
		int(f.unacked[0].attempts) < t.cfg.MaxRetries {
		// Fast retransmit: the receiver named the missing packet; no need
		// to wait out the timer.
		s.retransmit(idx, &f.unacked[0])
		s.armTimer(idx, f)
		return
	}
	if headChanged {
		s.armTimer(idx, f)
	}
}
