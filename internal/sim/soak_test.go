package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestSoakLargeFabric runs the largest evaluation network near saturation
// and checks conservation, ordering and utilization invariants at scale.
// Skipped under -short.
func TestSoakLargeFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	sn := mustSubnet(t, 32, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.7,
		DataVLs:     2,
		WarmupNs:    50_000,
		MeasureNs:   150_000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGenerated < 100_000 {
		t.Fatalf("soak too small: %d packets", res.TotalGenerated)
	}
	if res.TotalDelivered > res.TotalGenerated || res.InFlightAtEnd < 0 {
		t.Fatalf("conservation: %+v", res)
	}
	if res.Accepted < 0.5 {
		t.Errorf("accepted %.3f unexpectedly low at 0.7 offered on 512 nodes", res.Accepted)
	}
	if res.MaxLinkUtilization > 1.0001 {
		t.Errorf("utilization %v > 1", res.MaxLinkUtilization)
	}
	if res.OutOfOrder < 0 {
		t.Error("ordering not tracked on 512 nodes")
	}
}

// TestSoakLargeHotspot: the 512-node centric case (figure F8's regime),
// asserting the headline ordering holds at scale. Skipped under -short.
func TestSoakLargeHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	run := func(s core.Scheme) Result {
		sn := mustSubnet(t, 32, 2, s)
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
			OfferedLoad: 0.3,
			WarmupNs:    60_000,
			MeasureNs:   150_000,
			Seed:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m, sl := run(core.NewMLID()), run(core.NewSLID())
	if m.Accepted < 2*sl.Accepted {
		t.Errorf("512-node hotspot: MLID %.4f not >> SLID %.4f", m.Accepted, sl.Accepted)
	}
}
