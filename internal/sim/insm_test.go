package sim

import (
	"reflect"
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// inbandCfg is the in-band SM demo scenario: FT(4,2) under MLID with
// fault-avoiding reselection, the master SM on node 0 (leaf switch 2) and the
// standby on the defaulted node 7 (leaf switch 5).
func inbandCfg(t *testing.T, plan *FaultPlan) Config {
	t.Helper()
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	return Config{
		Subnet:  sn,
		Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
		DataVLs: 2, OfferedLoad: 0.3,
		WarmupNs: 20_000, MeasureNs: 100_000,
		SeriesIntervalNs: 5_000,
		FaultPlan:        plan,
		VerifyEpochs:     true,
		Seed:             21,
	}
}

// inbandTransport keeps retry cycles short so degradation and exhaustion fit
// inside the drain window.
func inbandTransport() *TransportConfig {
	return &TransportConfig{BaseTimeoutNs: 5_000, MaxRetries: 3, MaxTimeoutNs: 20_000}
}

// TestInBandSMOracleConvergence pins the in-band SM against the oracle on a
// repairable fault with a healthy management plane: the same link dies, the
// trap is delivered (no loss configured, live path to the SM), the repair
// travels as SMPs instead of fiat updates, and the resulting forwarding state
// converges to exactly the oracle's — same updates, same rewritten entries —
// just later (the management round-trips cost time the oracle skips).
func TestInBandSMOracleConvergence(t *testing.T) {
	// 52_000 keeps the fault off the 25k sweep cadence: on the grid, the
	// sweep tick at the same instant (scheduled later, higher seq) would
	// discover the fault with zero trap latency.
	fault := []LinkFault{{Switch: 2, Port: 2, DownNs: 52_000}}

	oracle, err := Run(inbandCfg(t, &FaultPlan{Faults: fault, Reselect: true}))
	if err != nil {
		t.Fatal(err)
	}
	inband, err := Run(inbandCfg(t, &FaultPlan{Faults: fault, Reselect: true, InBandSM: &InBandSMConfig{}}))
	if err != nil {
		t.Fatal(err)
	}

	if oracle.LFTUpdates == 0 {
		t.Fatal("oracle scenario staged no updates; the scenario is broken")
	}
	if inband.LFTUpdates != oracle.LFTUpdates || inband.LFTEntriesRewritten != oracle.LFTEntriesRewritten {
		t.Errorf("in-band repair diverged from oracle: updates %d/%d, entries %d/%d",
			inband.LFTUpdates, oracle.LFTUpdates, inband.LFTEntriesRewritten, oracle.LFTEntriesRewritten)
	}
	if inband.TrapsSent == 0 || inband.TrapsDelivered != inband.TrapsSent || inband.TrapsLost != 0 {
		t.Errorf("healthy management plane must deliver every trap: sent=%d delivered=%d lost=%d",
			inband.TrapsSent, inband.TrapsDelivered, inband.TrapsLost)
	}
	if inband.SMPsSent < inband.LFTUpdates {
		t.Errorf("SMPsSent = %d < applied updates %d", inband.SMPsSent, inband.LFTUpdates)
	}
	if inband.RecoveryNs <= oracle.RecoveryNs {
		t.Errorf("in-band recovery (%d ns) not slower than the oracle's (%d ns); "+
			"management round-trips cost nothing?", inband.RecoveryNs, oracle.RecoveryNs)
	}
	if oracle.TrapsSent != 0 || oracle.SMSweeps != 0 || oracle.SMPsSent != 0 {
		t.Errorf("oracle run leaked in-band counters: %+v", oracle)
	}
}

// TestInBandSMLostTrapSweepRecovery is the lost-trap regression of the issue:
// a leaf's up-links and one node attachment die at the same instant. The
// up-link traps reach the SM via the spine-side peer reporters, but the
// attachment trap's only path crosses the dead up-links and its peer is the
// node itself — the trap is lost, and only the periodic sweep's port-state
// diff recovers the knowledge, within one interval. Repair cannot reconnect
// the severed leaf, so the SM emits a partition finding and sources drain
// flows to the unreachable nodes instead of burning retries.
func TestInBandSMLostTrapSweepRecovery(t *testing.T) {
	const downNs = 52_000 // off the sweep cadence, so traps race no tick
	plan := &FaultPlan{
		Faults: []LinkFault{
			{Switch: 3, Port: 2, DownNs: downNs}, // both up-links of leaf 3...
			{Switch: 3, Port: 3, DownNs: downNs},
			{Switch: 3, Port: 1, DownNs: downNs}, // ...and node 3's attachment
		},
		Reselect: true,
		InBandSM: &InBandSMConfig{},
	}
	cfg := inbandCfg(t, plan)
	cfg.Transport = inbandTransport()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.TrapsSent != 3 || res.TrapsLost != 1 || res.TrapsDelivered != 2 {
		t.Errorf("traps sent/lost/delivered = %d/%d/%d, want 3/1/2 (only the attachment trap dies)",
			res.TrapsSent, res.TrapsLost, res.TrapsDelivered)
	}
	if res.SMSweeps == 0 {
		t.Fatal("no sweeps ran")
	}
	if res.SweepDetections != 1 {
		t.Errorf("SweepDetections = %d, want exactly 1: the first sweep after the fault "+
			"recovers the lost attachment knowledge, later sweeps find nothing new", res.SweepDetections)
	}
	if res.PartitionEvents != 1 {
		t.Errorf("PartitionEvents = %d, want 1 (the isolated leaf partitions the fabric once)",
			res.PartitionEvents)
	}
	if res.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0 (both SM attachments stay alive)", res.Failovers)
	}
	// SMPs to the isolated leaf cannot be delivered: their transactions must
	// exhaust the retry budget (and park for sweep re-drives).
	if res.SMPsSent == 0 || res.SMPFailed == 0 {
		t.Errorf("expected undeliverable SMP transactions to exhaust retries: sent=%d failed=%d",
			res.SMPsSent, res.SMPFailed)
	}
	if res.SMPRetries == 0 {
		t.Errorf("expected SMP retransmissions, got none")
	}
	if res.UnreachableDegraded == 0 {
		t.Error("no packets were written off by partition-aware degradation")
	}
	// The partition verdict lands ~5k ns after the fault — far before any
	// retry budget (~35k ns of backoff) could burn out — so degradation
	// should have spared every doomed flow from exhausting as Failed.
	if res.Failed != 0 {
		t.Errorf("Failed = %d; unreachable flows should drain, not exhaust", res.Failed)
	}
	if got := res.TotalDelivered + res.Failed + res.UnreachableDegraded + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("packet conservation: delivered+failed+unreachable+inflight = %d, generated = %d",
			got, res.TotalGenerated)
	}
	var seriesUnreachable int64
	for _, sp := range res.Series {
		seriesUnreachable += sp.Unreachable
	}
	if seriesUnreachable == 0 {
		t.Error("degradation never showed up in the measurement-window series")
	}
	if seriesUnreachable > res.UnreachableDegraded {
		t.Errorf("series counted %d unreachable > total %d", seriesUnreachable, res.UnreachableDegraded)
	}
}

// TestInBandSMSweepOnlyRecovery silences every trap (TrapLossProb 1): the SM
// then learns of faults exclusively through sweep diffs, and recovery still
// converges to the oracle's table state.
func TestInBandSMSweepOnlyRecovery(t *testing.T) {
	fault := []LinkFault{{Switch: 2, Port: 2, DownNs: 52_000}} // off the sweep cadence
	oracle, err := Run(inbandCfg(t, &FaultPlan{Faults: fault, Reselect: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(inbandCfg(t, &FaultPlan{
		Faults: fault, Reselect: true,
		InBandSM: &InBandSMConfig{TrapLossProb: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapsLost != res.TrapsSent || res.TrapsDelivered != 0 {
		t.Errorf("TrapLossProb 1 must lose every trap: sent=%d lost=%d delivered=%d",
			res.TrapsSent, res.TrapsLost, res.TrapsDelivered)
	}
	if res.SweepDetections == 0 {
		t.Fatal("sweep never detected the fault the lost traps hid")
	}
	if res.LFTUpdates != oracle.LFTUpdates || res.LFTEntriesRewritten != oracle.LFTEntriesRewritten {
		t.Errorf("sweep-only repair diverged from oracle: updates %d/%d, entries %d/%d",
			res.LFTUpdates, oracle.LFTUpdates, res.LFTEntriesRewritten, oracle.LFTEntriesRewritten)
	}
	// Recovery waits for the sweep: strictly slower than trap-driven repair
	// would have been (the fault lands mid-interval).
	if res.RecoveryNs <= oracle.RecoveryNs {
		t.Errorf("sweep-only recovery (%d ns) not slower than oracle (%d ns)",
			res.RecoveryNs, oracle.RecoveryNs)
	}
}

// TestInBandSMFailoverDeterminism kills the master SM's own leaf switch: the
// outage silences every trap (the active SM's attachment is down), the next
// sweep fails over to the standby, which repairs what it discovers; the
// master's later revival must NOT flap mastership back. The scenario must be
// bit-identical across shard counts and on both scheduler paths — all SM
// logic runs coordinator-side between barrier windows.
func TestInBandSMFailoverDeterminism(t *testing.T) {
	plan := &FaultPlan{
		SwitchFaults: []SwitchFault{{Switch: 2, DownNs: 60_000, UpNs: 90_000}},
		Reselect:     true,
		InBandSM:     &InBandSMConfig{},
	}
	base := inbandCfg(t, plan)
	base.Transport = inbandTransport()
	base.VerifyEpochs = false // identical across engines either way; keep the matrix fast

	run := func(shards int) Result {
		cfg := base
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(0)
	if ref.Failovers != 1 {
		t.Fatalf("Failovers = %d, want exactly 1 (takeover at the sweep, sticky through revival)", ref.Failovers)
	}
	if ref.TrapsLost == 0 {
		t.Errorf("outage-time traps must be lost while the active SM is cut off")
	}
	if ref.SweepDetections == 0 {
		t.Errorf("the standby's sweep never discovered the outage")
	}
	if got := ref.TotalDelivered + ref.Failed + ref.UnreachableDegraded + ref.InFlightAtEnd; got != ref.TotalGenerated {
		t.Errorf("packet conservation: delivered+failed+unreachable+inflight = %d, generated = %d",
			got, ref.TotalGenerated)
	}

	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); !reflect.DeepEqual(ref, got) {
			t.Errorf("shards=%d diverged from the classic engine:\n ref: %s\n got: %s",
				shards, fingerprint(ref), fingerprint(got))
		}
	}
	for _, shards := range []int{0, 2, 4, 8} {
		shards := shards
		if got := withHeapOnlyEngine(t, func() Result { return run(shards) }); !reflect.DeepEqual(ref, got) {
			t.Errorf("heap-only engine, shards=%d diverged:\n ref: %s\n got: %s",
				shards, fingerprint(ref), fingerprint(got))
		}
	}
}

// TestInBandSMOffMatchesOracleExactly guards the off-by-default contract: a
// FaultPlan without InBandSM must produce bit-identical results to the same
// plan before this subsystem existed — which TestGoldenDeterminism and the
// fault suite pin — and a nil-plan run must carry zeroed SM counters.
func TestInBandSMOffMatchesOracleExactly(t *testing.T) {
	cfg := inbandCfg(t, &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
		Reselect: true,
	})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("oracle fault run not deterministic")
	}
	if a.TrapsSent != 0 || a.SMSweeps != 0 || a.SMPsSent != 0 || a.Failovers != 0 ||
		a.PartitionEvents != 0 || a.UnreachableDegraded != 0 {
		t.Errorf("in-band counters leaked into an oracle run: %+v", a)
	}
}

// TestInBandSMValidation exercises the configuration contract.
func TestInBandSMValidation(t *testing.T) {
	cases := []struct {
		name string
		sm   InBandSMConfig
		want string
	}{
		{"bad master", InBandSMConfig{MasterNode: 99}, "MasterNode"},
		// StandbyNode equal to MasterNode means "use the default" (the last
		// node), so the collision only manifests when the master IS the
		// last node.
		{"same node", InBandSMConfig{MasterNode: 7, StandbyNode: 7}, "same node"},
		{"shared leaf", InBandSMConfig{MasterNode: 0, StandbyNode: 1}, "share leaf switch"},
		{"bad loss", InBandSMConfig{TrapLossProb: 1.5}, "TrapLossProb"},
		{"bad sweep", InBandSMConfig{SweepIntervalNs: -1}, "SweepIntervalNs"},
		{"bad backoff", InBandSMConfig{SMPBackoffMult: 0.5}, "SMPBackoffMult"},
		{"bad cap", InBandSMConfig{SMPTimeoutNs: 1000, SMPMaxTimeoutNs: 500}, "SMPMaxTimeoutNs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sm := tc.sm
			cfg := inbandCfg(t, &FaultPlan{
				Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
				InBandSM: &sm,
			})
			_, err := Run(cfg)
			if err == nil {
				t.Fatalf("config %+v validated", tc.sm)
			}
			if !containsStr(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// A master on the defaulted standby's leaf (but a different node)
	// collides at the leaf-switch level, not the node level.
	cfg := inbandCfg(t, &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: 52_000}},
		// Equal fields request the default standby (node 7) — which shares
		// leaf 5 with master node 6.
		InBandSM: &InBandSMConfig{MasterNode: 6, StandbyNode: 6},
	})
	if _, err := Run(cfg); err == nil {
		t.Error("master sharing the defaulted standby's leaf must be rejected")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
