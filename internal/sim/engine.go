// Package sim is a discrete-event simulator for fat-tree-based InfiniBand
// subnets, reproducing the network model of the paper's evaluation section:
//
//   - endnodes generate and consume packets; switches forward them through a
//     non-blocking crossbar by linear-forwarding-table lookup;
//   - every switch port has per-virtual-lane input and output buffers of one
//     packet (256 bytes) by default;
//   - links carry 1 byte/ns (a 4X configuration's data rate) with 10 ns
//     flying time between devices;
//   - a packet takes 100 ns from input port to output port of the crossbar
//     (forwarding table lookup, arbitration and startup);
//   - switching is virtual cut-through: a head can leave a switch before its
//     tail has arrived, and a blocked packet collapses into the input buffer;
//   - the IBA credit-based link-level flow control governs every link: a
//     sender transmits on a virtual lane only while it holds a credit for
//     the receiver's input buffer, and credits return when that buffer
//     frees.
//
// Simulated time is integer nanoseconds. Runs are deterministic for a given
// configuration and seed.
//
// The scheduling core is allocation-free on the hot path: events are small
// typed records (no closures), queued in a calendar queue of 1 ns buckets for
// the short-horizon deadlines that dominate a run (link fly times, crossbar
// routing, per-byte transmit completions), with a monomorphic slice-backed
// min-heap as the fallback for far-future deadlines. See DESIGN.md, "Event
// engine internals".
package sim

import "math/bits"

// Time is simulated time in nanoseconds.
type Time = int64

// evKind names the simulator actions an event can trigger. Dispatch is a
// switch in (*Sim).dispatch; adding a kind means adding a case there.
type evKind uint8

const (
	evNone evKind = iota
	// evGenerate creates the next open-loop packet at node a.
	evGenerate
	// evRoute fires when the crossbar routing delay of packet p at switch a
	// elapses: the forwarding table names the output port.
	evRoute
	// evSwArrive is packet p's head reaching input port b of switch a.
	evSwArrive
	// evNodeArrive is packet p's head reaching destination endnode a.
	evNodeArrive
	// evDeliver finalizes packet p at endnode a (tail fully received).
	evDeliver
	// evCredit returns one VL-b credit to the transmitting port with global
	// port id a.
	evCredit
	// evKick re-arbitrates the output port with global port id a when its
	// link frees.
	evKick
	// evRelease frees a VL-b output-buffer slot of the port with global port
	// id a (tail left the switch).
	evRelease
	// evLinkDown kills the bidirectional link at switch a, abstract port b
	// (Config.FaultPlan).
	evLinkDown
	// evLinkUp revives the bidirectional link at switch a, abstract port b.
	evLinkUp
	// evTrap is the subnet-manager model noticing the fabric changed (one
	// trap latency after a link event): it recomputes repaired tables and
	// stages per-switch forwarding-table updates.
	evTrap
	// evLFTUpdate applies the staged forwarding-table delta with index a.
	evLFTUpdate
	// evRexmit fires the retransmit timer of transport flow a; b carries the
	// timer generation that armed it, so a stale timer (the flow re-armed or
	// fully acknowledged since) is ignored (Config.Transport).
	evRexmit
	// evTrapArrive is an in-band trap about the link at switch a, abstract
	// port b reaching the active SM; pi carries the direction flag (1: the
	// link died, 0: it revived). Only scheduled when a live management path
	// existed at emission time (FaultPlan.InBandSM).
	evTrapArrive
	// evSMSweep is the in-band SM's periodic sweep tick: liveness check and
	// failover, port-state discovery diffed against the SM's view, and
	// re-driving parked SMP transactions.
	evSMSweep
	// evSMPArrive is the LFT-update SMP of staged update a reaching its
	// target switch (first copy applies; retransmissions are idempotent).
	evSMPArrive
	// evSMPAck is the target switch's SMP response reaching the active SM,
	// closing transaction a.
	evSMPAck
	// evSMPTimeout fires the response timer of SMP transaction a; b carries
	// the timer generation that armed it, exactly like evRexmit.
	evSMPTimeout
)

// event is one scheduled typed record. The argument fields are a union over
// the kinds: a/b carry small indices (node, switch, global port id, VL) and
// pi carries the packet's slab index (see Sim.pktAt). Keeping the record flat
// and pointer-free — no closure, no interface, no *pkt — makes scheduling
// allocation-free, spares every queue store its write barrier, and leaves the
// calendar slab and heap backing arrays invisible to the garbage collector.
type event struct {
	t    Time
	seq  uint64
	pi   int32
	a    int32
	b    int32
	kind evKind
}

// less orders events by (t, seq); seq makes scheduling order a deterministic
// tiebreak, exactly as the original container/heap engine did.
func (ev event) less(o event) bool {
	if ev.t != o.t {
		return ev.t < o.t
	}
	return ev.seq < o.seq
}

// Calendar geometry: 1 ns ticks, 2^calBits buckets. The window covers every
// deadline the default model's per-hop machinery produces (fly 10 ns, route
// 100 ns, 256 B serialization); far-future deadlines — open-loop
// interarrivals at low load, retransmit timers, jumbo packet serializations —
// fall through to the heap. The window is sized so the whole calendar (bucket
// headers plus the event slab) stays cache-resident: which structure holds an
// event never affects pop order, which is the global (t, seq) minimum.
const (
	calBits = 9
	calSize = 1 << calBits
	calMask = calSize - 1
	// calSlabCap is the initial per-bucket capacity, carved from one shared
	// slab when the calendar materializes. Growing 4096 buckets individually
	// from nil dominated the scheduler's allocation profile; a bucket deeper
	// than the slab cap reallocates off-slab once and keeps the larger
	// backing array for the rest of the run.
	calSlabCap = 16
)

// calBucket is one 1 ns tick of the calendar: a FIFO drained by head index so
// its backing array is reused as the ring wraps.
type calBucket struct {
	evs  []event
	head int
}

// engineHeapOnly, when set before build, routes every event through the
// far-heap fallback. It exists so tests can prove the calendar and heap
// scheduler paths produce identical results.
var engineHeapOnly bool

// engine drives the event loop: a hybrid calendar queue (events within
// calSize ns of now) plus a min-heap (everything later). Because each bucket
// holds exactly one timestamp and seq grows monotonically, append order is
// seq order and buckets need no sorting; cross-structure ties resolve by
// comparing (t, seq) of the two heads.
type engine struct {
	now Time
	seq uint64
	// heapOnly disables the calendar fast path (test hook: the determinism
	// suite proves both scheduler paths agree).
	heapOnly bool
	calCount int
	// scanFrom caches the bucket scan cursor: no calendar event exists in
	// [now, scanFrom).
	scanFrom Time
	// occ is a bitmap over the calendar's buckets — bit b set iff bucket b
	// holds a pending event — so finding the next non-empty bucket is a word
	// scan of one cache line instead of probing bucket headers tick by tick.
	occ     [calSize / 64]uint64
	buckets []calBucket
	far     eventHeap
}

// schedule enqueues ev at time t (clamped to >= now).
func (e *engine) schedule(t Time, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.t = t
	ev.seq = e.seq
	if !e.heapOnly && t-e.now < calSize {
		if e.buckets == nil {
			e.buckets = make([]calBucket, calSize)
			slab := make([]event, calSize*calSlabCap)
			for i := range e.buckets {
				e.buckets[i].evs = slab[i*calSlabCap : i*calSlabCap : (i+1)*calSlabCap]
			}
		}
		bi := int(t & calMask)
		b := &e.buckets[bi]
		b.evs = append(b.evs, ev)
		e.occ[bi>>6] |= 1 << uint(bi&63)
		e.calCount++
		if t < e.scanFrom {
			e.scanFrom = t
		}
		return
	}
	e.far.push(ev)
}

// pop removes and returns the earliest pending event, or ok=false when the
// queue is empty or the earliest event is later than end (it stays queued).
func (e *engine) pop(end Time) (event, bool) {
	var calT Time
	haveCal := e.calCount > 0
	if haveCal {
		// Find the earliest non-empty bucket. All calendar events sit in
		// [now, now+calSize) and each tick owns one bucket, so the nearest
		// set occupancy bit (in circular order from the cursor) is the
		// calendar minimum.
		t := e.scanFrom
		if t < e.now {
			t = e.now
		}
		sb := int(t & calMask)
		w := sb >> 6
		found := e.occ[w] &^ (1<<uint(sb&63) - 1)
		for found == 0 {
			w = (w + 1) % (calSize / 64)
			found = e.occ[w]
		}
		bi := w<<6 + bits.TrailingZeros64(found)
		t += Time((bi - sb) & calMask)
		e.scanFrom = t
		calT = t
	}
	useCal := haveCal
	if haveCal && len(e.far) > 0 {
		b := &e.buckets[int(calT&calMask)]
		useCal = b.evs[b.head].less(e.far[0])
	}
	if useCal {
		if calT > end {
			return event{}, false
		}
		bi := int(calT & calMask)
		b := &e.buckets[bi]
		ev := b.evs[b.head]
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
			e.occ[bi>>6] &^= 1 << uint(bi&63)
		}
		e.calCount--
		e.now = calT
		return ev, true
	}
	if len(e.far) == 0 {
		return event{}, false
	}
	if e.far[0].t > end {
		return event{}, false
	}
	ev := e.far.pop()
	e.now = ev.t
	return ev, true
}

// pending reports the number of queued events.
func (e *engine) pending() int { return e.calCount + len(e.far) }

// insert enqueues an event whose t and seq are already assigned — the sharded
// engine's entry point, where seq is a virtual global sequence number handed
// out by the barrier coordinator rather than this engine's own counter. The
// caller guarantees t >= now and that insertions into any one bucket arrive
// in ascending seq order (the barrier sorts its batch), preserving the
// calendar's append-order-is-seq-order invariant.
func (e *engine) insert(ev event) {
	if !e.heapOnly && ev.t-e.now < calSize {
		if e.buckets == nil {
			e.buckets = make([]calBucket, calSize)
			slab := make([]event, calSize*calSlabCap)
			for i := range e.buckets {
				e.buckets[i].evs = slab[i*calSlabCap : i*calSlabCap : (i+1)*calSlabCap]
			}
		}
		bi := int(ev.t & calMask)
		b := &e.buckets[bi]
		b.evs = append(b.evs, ev)
		e.occ[bi>>6] |= 1 << uint(bi&63)
		e.calCount++
		if ev.t < e.scanFrom {
			e.scanFrom = ev.t
		}
		return
	}
	e.far.push(ev)
}

// peekKey returns the (t, seq) key of the earliest pending event without
// removing it, or ok=false on an empty queue. Like pop it may advance the
// calendar scan cursor, but it never moves now.
func (e *engine) peekKey() (Time, uint64, bool) {
	if e.calCount > 0 {
		t := e.scanFrom
		if t < e.now {
			t = e.now
		}
		sb := int(t & calMask)
		w := sb >> 6
		found := e.occ[w] &^ (1<<uint(sb&63) - 1)
		for found == 0 {
			w = (w + 1) % (calSize / 64)
			found = e.occ[w]
		}
		bi := w<<6 + bits.TrailingZeros64(found)
		t += Time((bi - sb) & calMask)
		e.scanFrom = t
		b := &e.buckets[int(t&calMask)]
		h := b.evs[b.head]
		if len(e.far) > 0 && e.far[0].less(h) {
			return e.far[0].t, e.far[0].seq, true
		}
		return h.t, h.seq, true
	}
	if len(e.far) > 0 {
		return e.far[0].t, e.far[0].seq, true
	}
	return 0, 0, false
}

// popBound is pop with a lexicographic (t, seq) bound instead of a closed
// time bound: it removes and returns the earliest pending event strictly
// below (bt, bseq), or ok=false. The sharded engine's windows end either at
// a time horizon (bseq=0: everything before bt) or just before a specific
// coordinator event (bseq=its sequence number).
func (e *engine) popBound(bt Time, bseq uint64) (event, bool) {
	var calT Time
	haveCal := e.calCount > 0
	if haveCal {
		t := e.scanFrom
		if t < e.now {
			t = e.now
		}
		sb := int(t & calMask)
		w := sb >> 6
		found := e.occ[w] &^ (1<<uint(sb&63) - 1)
		for found == 0 {
			w = (w + 1) % (calSize / 64)
			found = e.occ[w]
		}
		bi := w<<6 + bits.TrailingZeros64(found)
		t += Time((bi - sb) & calMask)
		e.scanFrom = t
		calT = t
	}
	useCal := haveCal
	if haveCal && len(e.far) > 0 {
		b := &e.buckets[int(calT&calMask)]
		useCal = b.evs[b.head].less(e.far[0])
	}
	if useCal {
		bi := int(calT & calMask)
		b := &e.buckets[bi]
		if calT > bt || (calT == bt && b.evs[b.head].seq >= bseq) {
			return event{}, false
		}
		ev := b.evs[b.head]
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
			e.occ[bi>>6] &^= 1 << uint(bi&63)
		}
		e.calCount--
		e.now = calT
		return ev, true
	}
	if len(e.far) == 0 {
		return event{}, false
	}
	if e.far[0].t > bt || (e.far[0].t == bt && e.far[0].seq >= bseq) {
		return event{}, false
	}
	ev := e.far.pop()
	e.now = ev.t
	return ev, true
}

// eventHeap is a monomorphic binary min-heap on (t, seq). Hand-rolled push
// and pop avoid the interface boxing of container/heap: no per-event
// allocation, no dynamic dispatch.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh[i].less(hh[parent]) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	*h = hh[:n]
	hh = hh[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && hh[l].less(hh[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && hh[r].less(hh[small]) {
			small = r
		}
		if small == i {
			break
		}
		hh[i], hh[small] = hh[small], hh[i]
		i = small
	}
	return top
}
