// Package sim is a discrete-event simulator for fat-tree-based InfiniBand
// subnets, reproducing the network model of the paper's evaluation section:
//
//   - endnodes generate and consume packets; switches forward them through a
//     non-blocking crossbar by linear-forwarding-table lookup;
//   - every switch port has per-virtual-lane input and output buffers of one
//     packet (256 bytes) by default;
//   - links carry 1 byte/ns (a 4X configuration's data rate) with 10 ns
//     flying time between devices;
//   - a packet takes 100 ns from input port to output port of the crossbar
//     (forwarding table lookup, arbitration and startup);
//   - switching is virtual cut-through: a head can leave a switch before its
//     tail has arrived, and a blocked packet collapses into the input buffer;
//   - the IBA credit-based link-level flow control governs every link: a
//     sender transmits on a virtual lane only while it holds a credit for
//     the receiver's input buffer, and credits return when that buffer
//     frees.
//
// Simulated time is integer nanoseconds. Runs are deterministic for a given
// configuration and seed.
package sim

import "container/heap"

// Time is simulated time in nanoseconds.
type Time = int64

// event is a scheduled callback.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap on (t, seq); seq makes scheduling order a
// deterministic tiebreak.
type eventQueue struct {
	items []event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].t != q.items[j].t {
		return q.items[i].t < q.items[j].t
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *eventQueue) Push(x any)    { q.items = append(q.items, x.(event)) }
func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// engine drives the event loop.
type engine struct {
	now Time
	q   eventQueue
}

// at schedules fn to run at time t (>= now).
func (e *engine) at(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.q.seq++
	heap.Push(&e.q, event{t: t, seq: e.q.seq, fn: fn})
}

// after schedules fn to run d nanoseconds from now.
func (e *engine) after(d Time, fn func()) { e.at(e.now+d, fn) }

// runUntil processes events in order until the queue is empty or the next
// event is later than end. It returns the number of events processed.
func (e *engine) runUntil(end Time) int64 {
	var n int64
	for e.q.Len() > 0 {
		if e.q.items[0].t > end {
			break
		}
		ev := heap.Pop(&e.q).(event)
		e.now = ev.t
		ev.fn()
		n++
	}
	return n
}
