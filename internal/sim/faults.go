package sim

import (
	"fmt"
	"sort"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sm"
	"mlid/internal/topology"
)

// Default subnet-manager reaction timing for fault injection. The trap
// latency models port-down detection plus trap delivery to the SM; the
// processing time models the SM's path recomputation; the update spacing
// models one LinearForwardingTable SMP round-trip per switch, so table
// updates land staged rather than atomically.
const (
	DefaultTrapLatencyNs Time = 5_000
	DefaultSMProcessNs   Time = 2_000
	DefaultLFTUpdateNs   Time = 500
)

// Default in-band subnet-management timing (FaultPlan.InBandSM). The sweep
// interval is the SM's all-ports discovery cadence — the only recovery path
// when a trap is lost; the SMP timeout ladder follows the capped exponential
// backoff a real MAD layer uses.
const (
	DefaultSMSweepIntervalNs Time = 25_000
	DefaultSMPTimeoutNs      Time = 4_000
	DefaultSMPBackoffMult         = 2.0
	DefaultSMPMaxRetries          = 4
)

// InBandSMConfig switches the subnet-manager model from the default oracle
// (traps and table updates land by fiat, after fixed latencies, regardless of
// fabric state) to in-band management: traps and per-switch LFT-update SMPs
// travel the management VL through the live forwarding tables, so a
// notification whose path crosses a dead link is lost and recovery falls to
// the periodic sweep. It also enables SMP retry/backoff, master/standby SM
// failover, and partition-aware source degradation. Nil keeps the oracle; the
// zero value takes every default below.
type InBandSMConfig struct {
	// MasterNode is the endnode hosting the master SM. Traps and SMP
	// responses are routed to it (while it is the active SM) through the
	// live tables; its attachment dying silences the SM until failover.
	MasterNode int32
	// StandbyNode hosts the standby SM. It must sit on a different leaf
	// switch than the master, so one switch outage cannot take out both.
	// Left equal to MasterNode (e.g. both zero), it defaults to the
	// highest-numbered node.
	StandbyNode int32
	// SweepIntervalNs is the period of the lightweight all-ports sweep that
	// diffs discovered port state against the SM's view, recovering lost
	// traps and re-driving retry-exhausted SMPs. Zero takes the default.
	SweepIntervalNs Time
	// TrapLossProb is an extra independent loss probability applied to each
	// emitted trap, on top of path-based loss, modelling the unacked nature
	// of trap MADs. Must be in [0, 1]; 1 silences every trap, leaving the
	// periodic sweep as the SM's only discovery path — the sweep-only
	// extreme of the recovery-tail study.
	TrapLossProb float64
	// SMPTimeoutNs is the base response timeout of an LFT-update SMP
	// transaction. Zero takes the default.
	SMPTimeoutNs Time
	// SMPBackoffMult multiplies the timeout on each retransmission (capped
	// at SMPMaxTimeoutNs). Zero takes the default; must be >= 1.
	SMPBackoffMult float64
	// SMPMaxTimeoutNs caps the backed-off timeout. Zero takes 8x the base.
	SMPMaxTimeoutNs Time
	// SMPMaxRetries is the retransmission budget after the first send; once
	// spent the transaction parks until a sweep re-drives it. Zero takes
	// the default; negative means no retries.
	SMPMaxRetries int
}

// withDefaults fills zero fields.
func (c InBandSMConfig) withDefaults() InBandSMConfig {
	if c.SweepIntervalNs == 0 {
		c.SweepIntervalNs = DefaultSMSweepIntervalNs
	}
	if c.SMPTimeoutNs == 0 {
		c.SMPTimeoutNs = DefaultSMPTimeoutNs
	}
	if c.SMPBackoffMult == 0 {
		c.SMPBackoffMult = DefaultSMPBackoffMult
	}
	if c.SMPMaxTimeoutNs == 0 {
		c.SMPMaxTimeoutNs = 8 * c.SMPTimeoutNs
	}
	switch {
	case c.SMPMaxRetries == 0:
		c.SMPMaxRetries = DefaultSMPMaxRetries
	case c.SMPMaxRetries < 0:
		c.SMPMaxRetries = 0
	}
	return c
}

// resolvedStandby returns the standby SM's node, applying the
// highest-numbered-node default when StandbyNode was left equal to MasterNode.
func (c *InBandSMConfig) resolvedStandby(t *topology.Tree) int32 {
	if c.StandbyNode != c.MasterNode {
		return c.StandbyNode
	}
	return int32(t.Nodes() - 1)
}

// validate rejects inconsistent in-band SM configurations. Called on the
// defaults-filled copy.
func (c *InBandSMConfig) validate(t *topology.Tree) error {
	if !t.ValidNode(topology.NodeID(c.MasterNode)) {
		return fmt.Errorf("sim: InBandSM.MasterNode %d is not a node of %v", c.MasterNode, t)
	}
	standby := c.resolvedStandby(t)
	if !t.ValidNode(topology.NodeID(standby)) {
		return fmt.Errorf("sim: InBandSM.StandbyNode %d is not a node of %v", standby, t)
	}
	if standby == c.MasterNode {
		return fmt.Errorf("sim: InBandSM master and standby resolve to the same node %d", standby)
	}
	msw, _ := t.NodeAttachment(topology.NodeID(c.MasterNode))
	ssw, _ := t.NodeAttachment(topology.NodeID(standby))
	if msw == ssw {
		return fmt.Errorf("sim: InBandSM master (node %d) and standby (node %d) share leaf switch %d; "+
			"one switch outage would take out both SMs, defeating failover", c.MasterNode, standby, msw)
	}
	if c.TrapLossProb < 0 || c.TrapLossProb > 1 {
		return fmt.Errorf("sim: InBandSM.TrapLossProb %v outside [0, 1]", c.TrapLossProb)
	}
	if c.SweepIntervalNs <= 0 {
		return fmt.Errorf("sim: InBandSM.SweepIntervalNs must be positive, got %d", c.SweepIntervalNs)
	}
	if c.SMPTimeoutNs <= 0 {
		return fmt.Errorf("sim: InBandSM.SMPTimeoutNs must be positive, got %d", c.SMPTimeoutNs)
	}
	if c.SMPBackoffMult < 1 {
		return fmt.Errorf("sim: InBandSM.SMPBackoffMult %v < 1 would shrink timeouts", c.SMPBackoffMult)
	}
	if c.SMPMaxTimeoutNs < c.SMPTimeoutNs {
		return fmt.Errorf("sim: InBandSM.SMPMaxTimeoutNs %d below the base timeout %d", c.SMPMaxTimeoutNs, c.SMPTimeoutNs)
	}
	return nil
}

// LinkFault schedules one bidirectional link outage. The link is named by
// its switch-side endpoint (switch + abstract port), exactly like
// core.FaultSet.FailLink; node-attachment links are named by the leaf-switch
// endpoint. Both directions die and revive together, matching how a port
// pair fails in practice.
type LinkFault struct {
	Switch int32
	Port   int
	// DownNs is the simulated time the link dies.
	DownNs Time
	// UpNs, when positive, is the time the link comes back; zero means the
	// link stays down for the rest of the run.
	UpNs Time
}

// SwitchFault schedules one whole-switch outage: every port of the named
// switch goes down at DownNs and (when UpNs is positive) comes back at UpNs,
// atomically — all link-down events land at the same instant, before the
// single trap they share. Killing a switch severs its attached nodes (leaf)
// or a slice of the fabric's spine capacity (inner/root levels).
type SwitchFault struct {
	Switch int32
	// DownNs is the simulated time the switch dies.
	DownNs Time
	// UpNs, when positive, is the time the switch comes back; zero means it
	// stays down for the rest of the run.
	UpNs Time
}

// FaultPlan schedules live link failures inside a running simulation and
// configures the subnet-manager model's reaction to them. The offline fault
// machinery (core.FaultSet, core.RepairSubnet, core.SelectDLID) rewrites
// tables before a run starts; a FaultPlan instead drives the same repair
// logic from the simulation clock, so the transient — drops before the trap
// fires, staged table updates, source reselection — is observable.
type FaultPlan struct {
	Faults []LinkFault
	// SwitchFaults take every port of a switch down/up atomically; see
	// SwitchFault. A switch fault must not overlap a link fault naming one
	// of the switch's links (validate rejects the ambiguity).
	SwitchFaults []SwitchFault
	// TrapLatencyNs is the delay between a link event and the SM noticing it
	// (port-down detection + trap delivery). Zero takes the default.
	TrapLatencyNs Time
	// SMProcessNs is the SM's path-recomputation time between the trap and
	// the first staged table update. Zero takes the default.
	SMProcessNs Time
	// LFTUpdateNs spaces consecutive per-switch table updates: the i-th
	// switch with a delta is rewritten at trap + SMProcessNs + i*LFTUpdateNs.
	// Zero takes the default.
	LFTUpdateNs Time
	// Reselect enables fault-avoiding source path selection once the first
	// trap has fired: sources re-evaluate the destination's LID range
	// against the live tables and dead links (core.SelectDLID's policy,
	// applied to the running subnet) and steer packets onto surviving
	// paths. Without it, sources keep their configured selection and
	// packets routed onto broken entries drop.
	Reselect bool
	// InBandSM, when set, replaces the oracle SM reaction with in-band
	// subnet management: see InBandSMConfig. TrapLatencyNs then models only
	// local port-down detection (the propagation delay comes from routing
	// the trap), and SMProcessNs/LFTUpdateNs keep their meanings for the
	// SM's local computation and SMP issue spacing.
	InBandSM *InBandSMConfig
}

// withDefaults fills zero timing fields (cloning InBandSM so shared plan
// literals stay untouched).
func (p FaultPlan) withDefaults() FaultPlan {
	if p.TrapLatencyNs == 0 {
		p.TrapLatencyNs = DefaultTrapLatencyNs
	}
	if p.SMProcessNs == 0 {
		p.SMProcessNs = DefaultSMProcessNs
	}
	if p.LFTUpdateNs == 0 {
		p.LFTUpdateNs = DefaultLFTUpdateNs
	}
	if p.InBandSM != nil {
		c := p.InBandSM.withDefaults()
		p.InBandSM = &c
	}
	return p
}

// faultIval is one outage interval of a physical link, attributed back to
// the plan entry that produced it, used by up-front validation.
type faultIval struct {
	key      [2]int32 // canonical switch-side endpoint of the link
	down, up Time     // up == 0 means down forever
	desc     string   // "Faults[2] (switch 3 port 1)" etc.
}

// canonicalLink names a physical link by one agreed switch-side endpoint, so
// faults addressing the same link from either end collide in validation. The
// lower switch ID wins for inter-switch links; node-attachment links have
// only the one switch-side name.
func canonicalLink(t *topology.Tree, sw int32, port int) [2]int32 {
	ref := t.SwitchNeighbor(topology.SwitchID(sw), port)
	if ref.Kind == topology.KindSwitch && int32(ref.Switch) < sw {
		return [2]int32{int32(ref.Switch), int32(ref.Port)}
	}
	return [2]int32{sw, int32(port)}
}

// validate rejects inconsistent plans against the subnet's fabric, up front
// and with a descriptive error — unknown switch or port names, down-after-up
// inversions, duplicate events at the same instant, and overlapping outage
// intervals on the same physical link (including a link fault colliding with
// a switch fault that covers the same link) — instead of misbehaving or
// panicking mid-run.
func (p FaultPlan) validate(t *topology.Tree) error {
	if p.TrapLatencyNs < 0 || p.SMProcessNs < 0 || p.LFTUpdateNs < 0 {
		return fmt.Errorf("sim: negative FaultPlan timing")
	}
	if p.InBandSM != nil {
		if err := p.InBandSM.validate(t); err != nil {
			return err
		}
	}
	ivals := make([]faultIval, 0, len(p.Faults)+len(p.SwitchFaults)*t.M())
	for i, f := range p.Faults {
		if !t.ValidSwitch(topology.SwitchID(f.Switch)) {
			return fmt.Errorf("sim: FaultPlan.Faults[%d] names invalid switch %d", i, f.Switch)
		}
		if f.Port < 0 || f.Port >= t.M() {
			return fmt.Errorf("sim: FaultPlan.Faults[%d] names invalid port %d on switch %d", i, f.Port, f.Switch)
		}
		if f.DownNs < 0 {
			return fmt.Errorf("sim: FaultPlan.Faults[%d] has negative DownNs", i)
		}
		if f.UpNs != 0 && f.UpNs <= f.DownNs {
			return fmt.Errorf("sim: FaultPlan.Faults[%d] revives at %d, not after its failure at %d", i, f.UpNs, f.DownNs)
		}
		ivals = append(ivals, faultIval{
			key: canonicalLink(t, f.Switch, f.Port), down: f.DownNs, up: f.UpNs,
			desc: fmt.Sprintf("Faults[%d] (switch %d port %d)", i, f.Switch, f.Port),
		})
	}
	for i, f := range p.SwitchFaults {
		if !t.ValidSwitch(topology.SwitchID(f.Switch)) {
			return fmt.Errorf("sim: FaultPlan.SwitchFaults[%d] names invalid switch %d", i, f.Switch)
		}
		if f.DownNs < 0 {
			return fmt.Errorf("sim: FaultPlan.SwitchFaults[%d] has negative DownNs", i)
		}
		if f.UpNs != 0 && f.UpNs <= f.DownNs {
			return fmt.Errorf("sim: FaultPlan.SwitchFaults[%d] revives at %d, not after its failure at %d", i, f.UpNs, f.DownNs)
		}
		for port := 0; port < t.M(); port++ {
			ivals = append(ivals, faultIval{
				key: canonicalLink(t, f.Switch, port), down: f.DownNs, up: f.UpNs,
				desc: fmt.Sprintf("SwitchFaults[%d] (switch %d, its link at port %d)", i, f.Switch, port),
			})
		}
	}
	// Per physical link, outage intervals must be disjoint and in strict
	// succession: a second event at the same instant, an overlap, or any
	// event after a forever-down is ambiguous — the live link state would
	// depend on event scheduling order.
	sort.SliceStable(ivals, func(a, b int) bool {
		if ivals[a].key != ivals[b].key {
			if ivals[a].key[0] != ivals[b].key[0] {
				return ivals[a].key[0] < ivals[b].key[0]
			}
			return ivals[a].key[1] < ivals[b].key[1]
		}
		return ivals[a].down < ivals[b].down
	})
	for i := 1; i < len(ivals); i++ {
		prev, cur := ivals[i-1], ivals[i]
		if prev.key != cur.key {
			continue
		}
		switch {
		case prev.down == cur.down:
			return fmt.Errorf("sim: FaultPlan.%s and %s fail the same link at the same instant %d",
				prev.desc, cur.desc, cur.down)
		case prev.up == 0:
			return fmt.Errorf("sim: FaultPlan.%s takes the link down forever at %d, but %s touches it again at %d",
				prev.desc, prev.down, cur.desc, cur.down)
		case cur.down < prev.up:
			return fmt.Errorf("sim: FaultPlan.%s (down %d..%d) overlaps %s (down at %d) on the same link",
				prev.desc, prev.down, prev.up, cur.desc, cur.down)
		case cur.down == prev.up:
			return fmt.Errorf("sim: FaultPlan.%s revives the link at %d, the same instant %s takes it down",
				prev.desc, prev.up, cur.desc)
		}
	}
	return nil
}

// lftDelta is one staged forwarding-table rewrite.
type lftDelta struct {
	lid  ib.LID
	port uint8
}

// stagedLFTUpdate is one switch's pending table delta, applied by a timed
// evLFTUpdate event.
type stagedLFTUpdate struct {
	sw      int32
	entries []lftDelta
}

// faultRun is the live-fault state of one simulation.
type faultRun struct {
	plan FaultPlan
	// deadLinks holds the currently-dead links' canonical switch-side
	// endpoints in event order (a slice, not a map, so SM sweeps iterate
	// deterministically).
	deadLinks [][2]int32
	// epoch counts fabric-knowledge changes visible to sources: it bumps at
	// every trap and every applied table update, invalidating reselection
	// caches. Zero until the first trap — sources react to the SM's sweep,
	// not to the failure itself.
	epoch uint32
	// repair is the SM's incremental view of where each switch's table is
	// heading: the pristine configuration plus every staged-but-unapplied
	// delta, evolved per trap by core.RepairIncremental instead of a full
	// clone-and-rescan. Built lazily at the first trap; smDead is the dead
	// view of the last recomputation, the memoization key.
	repair *core.RepairState
	smDead [][2]int32
	staged []stagedLFTUpdate

	firstDownNs  Time
	lastRepairNs Time
	lastBroken   int

	// Config.VerifyEpochs counters. On the shared faultRun (not the Sim)
	// because only barrier-aligned lane-0 events bump them in a sharded
	// run, so they need no per-lane merge.
	verifiedEpochs int
	verifyWarnings int

	// reselection caches, indexed src*nodes+dst; reselEpoch holds the epoch
	// the cached mask was computed at (0 = unset; valid epochs are >= 1).
	reselMask  []uint64
	reselEpoch []uint32

	// inband is the in-band SM state (insm.go), nil under the oracle. Like
	// the verify counters it lives on the shared faultRun: only
	// barrier-aligned coordinator events touch it in a sharded run.
	inband *inbandRun
}

// scheduleFaults seeds the plan's link events. Called once from Run.
func (s *Sim) scheduleFaults() {
	plan := s.cfg.FaultPlan
	if plan == nil {
		return
	}
	s.faults.plan = *plan
	s.faults.firstDownNs = -1
	s.faults.lastRepairNs = -1
	if plan.Reselect && s.tree.Nodes() <= 4096 {
		n := s.tree.Nodes()
		s.faults.reselMask = make([]uint64, n*n)
		s.faults.reselEpoch = make([]uint32, n*n)
	}
	// In-band management emits traps from the link events themselves
	// (markLinkDown / linkUp), routed through the live tables; only the
	// oracle gets the fiat evTrap that always reaches the SM.
	oracle := plan.InBandSM == nil
	for _, f := range plan.Faults {
		s.schedule(f.DownNs, event{kind: evLinkDown, a: f.Switch, b: int32(f.Port)})
		if oracle {
			s.schedule(f.DownNs+plan.TrapLatencyNs, event{kind: evTrap})
		}
		if f.UpNs > 0 {
			s.schedule(f.UpNs, event{kind: evLinkUp, a: f.Switch, b: int32(f.Port)})
			if oracle {
				s.schedule(f.UpNs+plan.TrapLatencyNs, event{kind: evTrap})
			}
		}
	}
	// A switch fault is its ports' link events landing atomically: every
	// down (or up) at the same instant, ahead of the single trap they share.
	for _, f := range plan.SwitchFaults {
		for port := 0; port < s.tree.M(); port++ {
			s.schedule(f.DownNs, event{kind: evLinkDown, a: f.Switch, b: int32(port)})
		}
		if oracle {
			s.schedule(f.DownNs+plan.TrapLatencyNs, event{kind: evTrap})
		}
		if f.UpNs > 0 {
			for port := 0; port < s.tree.M(); port++ {
				s.schedule(f.UpNs, event{kind: evLinkUp, a: f.Switch, b: int32(port)})
			}
			if oracle {
				s.schedule(f.UpNs+plan.TrapLatencyNs, event{kind: evTrap})
			}
		}
	}
	if !oracle {
		s.initInBand()
	}
}

// linkEnds returns the global port ids of the transmitting ports of both
// directions of the link at (sw, port): the switch's own out-port plus the
// peer's (switch or endnode source). noPort when a direction has no
// transmitter.
func (s *Sim) linkEnds(sw int32, port int) (a, b int32) {
	a = sw*int32(s.m) + int32(port)
	b = noPort
	ref := s.tree.SwitchNeighbor(topology.SwitchID(sw), port)
	switch ref.Kind {
	case topology.KindSwitch:
		b = int32(ref.Switch)*int32(s.m) + int32(ref.Port)
	case topology.KindNode:
		b = s.nodePid(int32(ref.Node))
	}
	return a, b
}

// linkDown kills both directions of the link: packets buffered on the dead
// out-ports are dropped (their held credits return so upstream state stays
// consistent), and the link is recorded for the next SM sweep. The sharded
// coordinator calls the two halves — killPort on each transmitter's owning
// lane, markLinkDown once — instead of this wrapper.
func (s *Sim) linkDown(sw int32, port int) {
	a, b := s.linkEnds(sw, port)
	s.killPort(a)
	s.killPort(b)
	s.markLinkDown(sw, port)
}

// killPort marks one transmitting port dead and drops everything buffered on
// it. Idempotent; a noPort id is ignored.
func (s *Sim) killPort(pid int32) {
	if pid < 0 || s.ports[pid].dead {
		return
	}
	s.ports[pid].dead = true
	s.flushDead(pid)
}

// markLinkDown records the dead link for the next SM sweep (deduplicated) and
// stamps the first-failure time.
func (s *Sim) markLinkDown(sw int32, port int) {
	for _, e := range s.faults.deadLinks {
		if e == [2]int32{sw, int32(port)} {
			return
		}
	}
	s.faults.deadLinks = append(s.faults.deadLinks, [2]int32{sw, int32(port)})
	if s.faults.firstDownNs < 0 {
		s.faults.firstDownNs = s.now
	}
	if s.faults.inband != nil {
		s.emitTrap(sw, int32(port), true)
	}
}

// linkUp revives both directions. Credit state needs no repair: every credit
// a dead transmitter consumed came back either through normal delivery or
// through dropPkt's credit return, so the port restarts with full credits.
func (s *Sim) linkUp(sw int32, port int) {
	a, b := s.linkEnds(sw, port)
	for _, pid := range [2]int32{a, b} {
		if pid >= 0 {
			s.ports[pid].dead = false
		}
	}
	for i, e := range s.faults.deadLinks {
		if e == [2]int32{sw, int32(port)} {
			s.faults.deadLinks = append(s.faults.deadLinks[:i], s.faults.deadLinks[i+1:]...)
			break
		}
	}
	if s.faults.inband != nil {
		s.emitTrap(sw, int32(port), false)
	}
}

// flushDead drops every packet buffered on a just-killed out-port: the
// output-buffer queues (their occupancy slots free) and the input-buffered
// packets waiting for a slot (their upstream credits return). A packet mid-
// serialization keeps its pending evRelease, which settles the remaining
// occupancy; the packet itself dies at head arrival via the upstream-dead
// check.
func (s *Sim) flushDead(pid int32) {
	base := int(pid) * s.vls
	for vl := 0; vl < s.vls; vl++ {
		i := base + vl
		for s.queues[i].len() > 0 {
			p := s.queues[i].popFront()
			s.cv[i].occupancy--
			s.droppedOnDeadLink++
			s.dropPkt(p)
		}
		for _, p := range s.waiting[i] {
			s.droppedOnDeadLink++
			s.dropPkt(p)
		}
		s.waiting[i] = s.waiting[i][:0]
	}
}

// dropPkt removes a packet from the model at a dead link: the upstream
// credit it still holds (if any) returns as its input buffer frees, the drop
// is counted against the window and the delivery series, and the packet is
// recycled. Callers bump the per-cause counter before calling.
func (s *Sim) dropPkt(p *pkt) {
	s.droppedTotal++
	if s.now >= s.cfg.WarmupNs && s.now < s.end {
		s.droppedWindow++
	}
	s.lastDropNs = s.now
	if iv := s.cfg.SeriesIntervalNs; iv > 0 && s.now < s.end {
		s.seriesDropped[s.seriesBin(s.now)]++
	}
	if p.trace != nil {
		p.trace.DroppedNs = s.now
	}
	if p.upstream >= 0 {
		free := p.arrival + s.serPkt
		if s.now > free {
			free = s.now
		}
		s.schedule(free+s.cfg.FlyNs, event{kind: evCredit, a: p.upstream, b: int32(p.VL)})
		p.upstream = noPort
	}
	s.freePkt(p)
}

// smTrap is the oracle subnet-manager model reacting to a link event, one
// trap latency after it happened: recompute repaired tables against the
// ground-truth dead links and schedule one timed fiat table update per staged
// switch delta.
func (s *Sim) smTrap() {
	staged, ok := s.smRepair(s.faults.deadLinks)
	if !ok {
		return
	}
	for i, idx := range staged {
		at := s.now + s.faults.plan.SMProcessNs + Time(i)*s.faults.plan.LFTUpdateNs
		s.schedule(at, event{kind: evLFTUpdate, a: int32(idx)})
	}
	// Sources learn of the fault from the SM's sweep: reselection activates
	// (and caches invalidate) even when no table could be repaired.
	s.faults.epoch++
	if s.cfg.VerifyEpochs {
		s.verifyEpoch()
	}
}

// smRepair is the SM's path recomputation, shared by the oracle and the
// in-band model: evolve the persistent repair state to deadView and stage
// one table delta per switch whose repair target changed. The state's
// port→LIDs reverse index confines the work to the entries actually routed
// through links in the symmetric difference of the old and new views
// (core.RepairIncremental — RepairSubnet is its equivalence oracle), and the
// staged delta IS the incremental diff, so no shadow tables are cloned or
// rescanned per event. An unchanged dead set short-circuits entirely. It
// returns the indices of the newly staged updates — scheduling their
// application (fiat event or SMP transaction) is the caller's business — and
// ok=false when the run already failed. deadView is the SM's knowledge:
// ground truth for the oracle, the possibly-stale trap/sweep-fed view
// in-band.
func (s *Sim) smRepair(deadView [][2]int32) (staged []int, ok bool) {
	fr := s.faults
	if fr.repair == nil {
		// One-time index build over the pristine configuration; every
		// subsequent trap is delta work only.
		fr.repair = core.NewRepairState(s.cfg.Subnet)
	} else if sm.SameDeadLinks(fr.smDead, deadView) {
		// Memoized early-exit: the repair target is a pure function of the
		// dead set, so nothing can need staging. Callers still bump the
		// epoch, exactly as a recomputation staging zero deltas would.
		return nil, true
	}
	fs := core.NewFaultSet()
	for _, e := range deadView {
		fs.FailLink(s.tree, topology.SwitchID(e[0]), int(e[1]))
	}
	dirty := fr.repair.DirtySwitches(fr.smDead, deadView)
	deltas, err := fr.repair.RepairIncremental(fs, dirty)
	if err != nil {
		s.fail(fmt.Errorf("sim: SM repair at %d ns: %w", s.now, err))
		return nil, false
	}
	fr.smDead = append(fr.smDead[:0:0], deadView...)
	fr.lastBroken = fr.repair.Broken()
	for _, d := range deltas {
		entries := make([]lftDelta, len(d.Entries))
		for i, e := range d.Entries {
			entries[i] = lftDelta{lid: e.LID, port: e.Port}
		}
		idx := len(fr.staged)
		fr.staged = append(fr.staged, stagedLFTUpdate{sw: int32(d.Switch), entries: entries})
		staged = append(staged, idx)
	}
	return staged, true
}

// applyLFTUpdate rewrites one switch's live forwarding table with a staged
// delta — the timed, per-switch (non-atomic) table update of a real SM sweep.
// Each rewritten entry is recompiled into the fused forwarding row, so the
// hot path keeps reading the compiled table through fault recovery.
func (s *Sim) applyLFTUpdate(idx int) {
	u := s.faults.staged[idx]
	lft := s.lfts[u.sw]
	fwdBase := int(u.sw) * s.lftSize
	for _, d := range u.entries {
		if err := lft.Set(d.lid, d.port); err != nil {
			s.fail(fmt.Errorf("sim: applying LFT update to switch %d: %w", u.sw, err))
			return
		}
		s.setFwd(fwdBase+int(d.lid), s.compileEntry(u.sw, d.port))
	}
	s.lftUpdates++
	s.lftEntriesRewritten += int64(len(u.entries))
	s.faults.lastRepairNs = s.now
	s.faults.epoch++
	if s.cfg.VerifyEpochs {
		s.verifyEpoch()
	}
}

// reselectActive reports whether fault-avoiding source selection is in
// force: a plan with Reselect set, after the first trap fired.
func (s *Sim) reselectActive() bool {
	return s.cfg.FaultPlan != nil && s.faults.plan.Reselect && s.faults.epoch > 0
}

// usableMask computes which of the destination's LID offsets currently name
// a surviving path from src through the live tables — core.SelectDLID's
// fault avoidance evaluated against the running subnet, including partially
// applied repairs. Offsets beyond 64 are not tracked (no evaluated network
// needs them); the mask is cached per (src, dst) until the next epoch bump.
func (s *Sim) usableMask(src, dst topology.NodeID) uint64 {
	idx := -1
	if s.faults.reselEpoch != nil {
		idx = int(src)*s.tree.Nodes() + int(dst)
		if s.faults.reselEpoch[idx] == s.faults.epoch {
			return s.faults.reselMask[idx]
		}
	}
	r := s.cfg.Subnet.Endports[dst]
	count := r.Count()
	if count > 64 {
		count = 64
	}
	var mask uint64
	for off := 0; off < count; off++ {
		if s.pathAlive(src, r.Base+ib.LID(off), dst) {
			mask |= 1 << uint(off)
		}
	}
	if idx >= 0 {
		s.faults.reselMask[idx] = mask
		s.faults.reselEpoch[idx] = s.faults.epoch
	}
	return mask
}

// pathAlive walks the compiled live forwarding rows from src toward dlid and
// reports whether the route reaches dst without crossing a dead link. The
// compiled table mirrors every applied update (applyLFTUpdate recompiles),
// so this sees exactly what the forwarding hot path sees.
func (s *Sim) pathAlive(src topology.NodeID, dlid ib.LID, dst topology.NodeID) bool {
	if s.ports[s.nodePid(int32(src))].dead {
		return false
	}
	if int(dlid) >= s.lftSize {
		return false
	}
	sw, _ := s.tree.NodeAttachment(src)
	maxHops := 2*s.tree.N() + 1
	for hop := 0; hop <= maxHops; hop++ {
		pid := s.fwdAt(int(sw)*s.lftSize + int(dlid))
		if pid < 0 {
			return false
		}
		pt := &s.ports[pid]
		if pt.dead {
			return false
		}
		if pt.destNode >= 0 {
			return topology.NodeID(pt.destNode) == dst
		}
		sw = topology.SwitchID(pt.destSw)
	}
	return false
}

// noteReroute counts one packet steered off a faulty path by reselection.
func (s *Sim) noteReroute() {
	s.reroutes++
	if iv := s.cfg.SeriesIntervalNs; iv > 0 && s.now < s.end {
		s.seriesReroutes[s.seriesBin(s.now)]++
	}
}
