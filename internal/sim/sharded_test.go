package sim

import (
	"reflect"
	"testing"

	"mlid/internal/core"
	"mlid/internal/stats"
	"mlid/internal/traffic"
)

// shardMatrixCases are the configurations the sharded engine must reproduce
// bit-for-bit at every shard count: plain uniform traffic, a hotspot, a live
// fault plan with SM repair and source reselection, and the reliable
// transport riding over a mid-run outage (retransmits, ACK/NAK control
// traffic, exhausted-budget failures).
func shardMatrixCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	mlid82 := mustSubnet(t, 8, 2, core.NewMLID())
	slid82 := mustSubnet(t, 8, 2, core.NewSLID())
	return []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{
			Subnet: mlid82, Pattern: traffic.Uniform{Nodes: mlid82.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.5, WarmupNs: 10_000, MeasureNs: 40_000,
			SeriesIntervalNs: 10_000, CollectPortStats: true, Seed: 7,
		}},
		{"hotspot", Config{
			Subnet: mlid82, Pattern: traffic.Centric{Nodes: mlid82.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
			DataVLs: 4, OfferedLoad: 0.6, WarmupNs: 10_000, MeasureNs: 40_000,
			Switching: SwitchingSAF, Reception: ReceptionLink, Seed: 3,
		}},
		{"faults-reselect", Config{
			Subnet: slid82, Pattern: traffic.Uniform{Nodes: slid82.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.4, WarmupNs: 10_000, MeasureNs: 40_000,
			SeriesIntervalNs: 10_000, Seed: 11,
			FaultPlan: &FaultPlan{
				Faults: []LinkFault{
					{Switch: 0, Port: 1, DownNs: 12_000, UpNs: 32_000},
					{Switch: 9, Port: 3, DownNs: 18_000},
				},
				Reselect: true,
			},
			// Epoch verification runs on lane 0 under the barrier; its
			// counters land in the Result, so DeepEqual across shard
			// counts also proves the hook is shard-deterministic.
			VerifyEpochs: true,
		}},
		{"transport-fault", Config{
			Subnet: mlid82, Pattern: traffic.Uniform{Nodes: mlid82.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.5, WarmupNs: 5_000, MeasureNs: 25_000,
			Seed: 19,
			FaultPlan: &FaultPlan{
				Faults: []LinkFault{{Switch: 2, Port: 0, DownNs: 8_000, UpNs: 20_000}},
			},
			VerifyEpochs: true,
			Transport:    &TransportConfig{MaxRetries: 2, DrainNs: 120_000},
		}},
		// The pluggable selectors: flowspray's per-flow pins live in the
		// shared selState array (written only by the owning lane), adaptive
		// reads the congestion view of the source's leaf-switch ports
		// (mutated only on that same lane), and pktspray keys its rotation
		// on the lane-local flow sequence — each must reproduce the
		// single-engine result at every shard count.
		{"flowspray", Config{
			Subnet: mlid82, Pattern: traffic.Uniform{Nodes: mlid82.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.5, WarmupNs: 10_000, MeasureNs: 40_000,
			PathSelect: SelectFlowSpray(), Seed: 23,
		}},
		{"adaptive-faults", Config{
			Subnet: mlid82, Pattern: traffic.Centric{Nodes: mlid82.Tree.Nodes(), Hotspot: 5, Fraction: 0.4},
			DataVLs: 2, OfferedLoad: 0.5, WarmupNs: 10_000, MeasureNs: 40_000,
			SeriesIntervalNs: 10_000, PathSelect: SelectAdaptive(), Seed: 29,
			FaultPlan: &FaultPlan{
				Faults:   []LinkFault{{Switch: 4, Port: 4, DownNs: 15_000, UpNs: 35_000}},
				Reselect: true,
			},
			VerifyEpochs: true,
		}},
		{"pktspray-transport-fault", Config{
			Subnet: mlid82, Pattern: traffic.Uniform{Nodes: mlid82.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.5, WarmupNs: 5_000, MeasureNs: 25_000,
			PathSelect: SelectPktSpray(), Seed: 31,
			FaultPlan: &FaultPlan{
				Faults:   []LinkFault{{Switch: 2, Port: 0, DownNs: 8_000, UpNs: 20_000}},
				Reselect: true,
			},
			VerifyEpochs: true,
			Transport:    &TransportConfig{MaxRetries: 2, DrainNs: 120_000},
		}},
	}
}

// TestShardDeterminismMatrix asserts bit-identical results for shards in
// {1, 2, 4, 8} against the classic single-engine path, on both scheduler
// paths (calendar+heap and heap-only). The 8-ary 2-tree has 8 leaf groups,
// so 8 shards exercises the maximum partition.
func TestShardDeterminismMatrix(t *testing.T) {
	for _, tc := range shardMatrixCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, heapOnly := range []bool{false, true} {
				runAt := func(shards int) Result {
					cfg := tc.cfg
					cfg.Shards = shards
					cfg.HeapOnlyScheduler = heapOnly
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("shards=%d heapOnly=%t: %v", shards, heapOnly, err)
					}
					return res
				}
				base := runAt(1)
				if base.TotalDelivered == 0 {
					t.Fatalf("heapOnly=%t: baseline delivered nothing", heapOnly)
				}
				for _, shards := range []int{2, 4, 8} {
					got := runAt(shards)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("heapOnly=%t: shards=%d diverges from shards=1\n base: %s\n got:  %s",
							heapOnly, shards, fingerprint(base), fingerprint(got))
					}
				}
			}
		})
	}
}

// TestShardDeterminismRepeated runs the same sharded configuration twice:
// worker goroutines must not introduce run-to-run nondeterminism.
func TestShardDeterminismRepeated(t *testing.T) {
	cfg := shardMatrixCases(t)[0].cfg
	cfg.Shards = 4
	run := func() Result {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same sharded config, different results:\n a: %s\n b: %s",
			fingerprint(a), fingerprint(b))
	}
}

// TestEffectiveShards pins the single-engine fallbacks and the leaf-group
// clamp.
func TestEffectiveShards(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID()) // 8 leaf groups
	base := Config{
		Subnet: sn, Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.5, Shards: 4,
	}.withDefaults()
	if got := base.effectiveShards(); got != 4 {
		t.Errorf("effectiveShards = %d, want 4", got)
	}
	clamp := base
	clamp.Shards = 64
	if got := clamp.effectiveShards(); got != 8 {
		t.Errorf("effectiveShards with 64 requested = %d, want 8 (leaf groups)", got)
	}
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"shards-0", func(c *Config) { c.Shards = 0 }},
		{"shards-1", func(c *Config) { c.Shards = 1 }},
		{"tracing", func(c *Config) { c.TracePackets = 2 }},
		{"latency-hist", func(c *Config) { c.LatencyHist = stats.NewHistogram(2, 32) }},
		{"sub-ns-fly", func(c *Config) { c.FlyNs = 0 }},
	} {
		cfg := base
		tc.mod(&cfg)
		if tc.name == "sub-ns-fly" {
			cfg.FlyNs = 0 // bypass withDefaults: model a sub-1ns link directly
		}
		if got := cfg.effectiveShards(); got != 1 {
			t.Errorf("%s: effectiveShards = %d, want 1", tc.name, got)
		}
	}
}

// TestShardedMatchesLegacyWithValidationError checks the sharded path rejects
// bad configurations identically to the classic path.
func TestShardedMatchesLegacyWithValidationError(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	cfg := Config{
		Subnet: sn, Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.5, Shards: -1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative Shards accepted")
	}
}
