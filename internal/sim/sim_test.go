package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

func mustSubnet(t *testing.T, m, n int, s core.Scheme) *ib.Subnet {
	t.Helper()
	tr := topology.MustNew(m, n)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

func TestConfigValidation(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	pat := traffic.Uniform{Nodes: sn.Tree.Nodes()}
	bad := []Config{
		{Pattern: pat, OfferedLoad: 0.1},                             // no subnet
		{Subnet: sn, OfferedLoad: 0.1},                               // no pattern
		{Subnet: sn, Pattern: pat},                                   // no load
		{Subnet: sn, Pattern: pat, OfferedLoad: -1},                  // negative load
		{Subnet: sn, Pattern: pat, OfferedLoad: 0.1, DataVLs: 16},    // too many VLs
		{Subnet: sn, Pattern: pat, OfferedLoad: 0.1, DataVLs: -1},    // negative VLs
		{Subnet: sn, Pattern: pat, OfferedLoad: 0.1, PacketSize: -5}, // bad size
		{Subnet: sn, Pattern: pat, OfferedLoad: 0.1, BufPackets: -1}, // bad buffers
		{Subnet: sn, Pattern: pat, OfferedLoad: 0.1, WarmupNs: -1},   // bad window
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestLowLoadLatencyMatchesModel: with bit-complement traffic on FT(4,2)
// every pair has gcp length 0, so an uncontended packet crosses exactly 3
// switches: latency = 3*route + 4*fly + serialization = 300+40+256 = 596 ns.
// At near-zero load the mean must sit within a few collisions of that.
func TestLowLoadLatencyMatchesModel(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.BitComplement(sn.Tree.Nodes()),
		OfferedLoad: 0.004,
		WarmupNs:    20_000,
		MeasureNs:   400_000,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWindow < 20 {
		t.Fatalf("too few deliveries: %+v", res)
	}
	const ideal = 3*100 + 4*10 + 256
	if res.MeanLatencyNs < ideal || res.MeanLatencyNs > ideal*1.1 {
		t.Errorf("mean latency %.1f, want ~%d ns", res.MeanLatencyNs, ideal)
	}
	if res.Saturated {
		t.Error("saturated at 0.004 load")
	}
}

// TestSameLeafLatency: a shift-by-one pattern restricted to one leaf pair...
// use FT(4,2) where nodes 0 and 1 share a leaf: a custom pattern sending
// everyone to their leaf partner crosses exactly 1 switch:
// latency = 100 + 2*10 + 256 = 376 ns.
func TestSameLeafLatency(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	n := sn.Tree.Nodes()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i ^ 1 // leaf partner: last digit flipped
	}
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.PermutationPattern{Label: "leafpair", Perm: perm},
		OfferedLoad: 0.004,
		WarmupNs:    20_000,
		MeasureNs:   400_000,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const ideal = 100 + 2*10 + 256
	if res.MeanLatencyNs < ideal || res.MeanLatencyNs > ideal*1.1 {
		t.Errorf("mean latency %.1f, want ~%d ns", res.MeanLatencyNs, ideal)
	}
}

func TestConservation(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	for _, load := range []float64{0.05, 0.4, 1.5} {
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: load,
			WarmupNs:    10_000,
			MeasureNs:   60_000,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalDelivered > res.TotalGenerated {
			t.Fatalf("load %v: delivered %d > generated %d", load, res.TotalDelivered, res.TotalGenerated)
		}
		if res.InFlightAtEnd != res.TotalGenerated-res.TotalDelivered || res.InFlightAtEnd < 0 {
			t.Fatalf("load %v: conservation violated: %+v", load, res)
		}
		if res.TotalGenerated == 0 || res.Events == 0 {
			t.Fatalf("load %v: nothing happened: %+v", load, res)
		}
	}
}

func TestDeterminism(t *testing.T) {
	sn := mustSubnet(t, 4, 3, core.NewMLID())
	run := func(seed int64) Result {
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.3,
			DataVLs:     2,
			WarmupNs:    10_000,
			MeasureNs:   50_000,
			Seed:        seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	c := run(6)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

// TestOfferedMatchesAcceptedBelowSaturation: at modest uniform load the
// fabric delivers what is offered.
func TestOfferedMatchesAcceptedBelowSaturation(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		WarmupNs:    20_000,
		MeasureNs:   100_000,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("saturated at 10%% load: %+v", res)
	}
	if res.Accepted < 0.095 || res.Accepted > 0.105 {
		t.Errorf("accepted %.4f, want ~0.1", res.Accepted)
	}
}

// TestSaturationCapsAccepted: offered load beyond link capacity cannot be
// accepted; the run must flag saturation and accepted must stay below 1.
func TestSaturationCapsAccepted(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 1.5,
		WarmupNs:    10_000,
		MeasureNs:   100_000,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Errorf("not saturated at 150%% load: %+v", res)
	}
	if res.Accepted >= 1.0 {
		t.Errorf("accepted %.3f exceeds link capacity", res.Accepted)
	}
	if res.InFlightAtEnd == 0 {
		t.Error("saturated run ended with empty queues")
	}
}

// TestHotspotMLIDBeatsSLID is the paper's headline result as an integration
// test: under 50%-centric traffic at high load, MLID accepts strictly more
// traffic than SLID with the same single VL.
func TestHotspotMLIDBeatsSLID(t *testing.T) {
	run := func(s core.Scheme) Result {
		sn := mustSubnet(t, 8, 2, s)
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
			OfferedLoad: 0.4,
			WarmupNs:    20_000,
			MeasureNs:   150_000,
			Seed:        17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m, s := run(core.NewMLID()), run(core.NewSLID())
	if m.Accepted <= s.Accepted {
		t.Errorf("hotspot: MLID accepted %.4f <= SLID %.4f", m.Accepted, s.Accepted)
	}
}

// TestVLsHelpSLIDHotspot: adding virtual lanes relieves head-of-line
// blocking, so SLID with 4 VLs must beat SLID with 1 VL under uniform
// traffic at high load.
func TestVLsHelpSLIDUniform(t *testing.T) {
	run := func(vls int) Result {
		sn := mustSubnet(t, 8, 2, core.NewSLID())
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.8,
			DataVLs:     vls,
			WarmupNs:    20_000,
			MeasureNs:   150_000,
			Seed:        19,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := run(1), run(4)
	if four.Accepted <= one.Accepted {
		t.Errorf("uniform: SLID 4VL accepted %.4f <= 1VL %.4f", four.Accepted, one.Accepted)
	}
}

// TestMisdeliveryDetected: corrupting a leaf switch's forwarding entry so a
// DLID lands on the wrong node must abort the run with an error.
func TestMisdeliveryDetected(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewSLID())
	tr := sn.Tree
	// Node 7's LID is 8 (PID+1). Its leaf switch forwards LID 8 down its
	// attachment port; rewire that entry to node 6's port.
	sw, port7 := tr.NodeAttachment(7)
	_, port6 := tr.NodeAttachment(6)
	if port6 == port7 {
		t.Fatal("test setup: ports equal")
	}
	if err := sn.LFTs[sw].Set(8, uint8(port6+1)); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.PermutationPattern{Label: "allto7", Perm: []int{7, 7, 7, 7, 7, 7, 7, 0}},
		OfferedLoad: 0.05,
		WarmupNs:    1_000,
		MeasureNs:   30_000,
		Seed:        23,
	})
	if err == nil || !strings.Contains(err.Error(), "delivered to node") {
		t.Fatalf("misdelivery not detected: %v", err)
	}
}

// TestUnroutedDLIDDetected: wiping an entry makes the switch unable to
// forward, which must surface as an error, not a hang.
func TestUnroutedDLIDDetected(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewSLID())
	// Corrupt every switch's entry for LID 8 by marking it unreachable.
	for _, lft := range sn.LFTs {
		if err := lft.Set(8, ib.PortNone); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.PermutationPattern{Label: "allto7", Perm: []int{7, 7, 7, 7, 7, 7, 7, 0}},
		OfferedLoad: 0.05,
		WarmupNs:    1_000,
		MeasureNs:   30_000,
		Seed:        29,
	})
	if err == nil || !strings.Contains(err.Error(), "cannot forward") {
		t.Fatalf("unrouted DLID not detected: %v", err)
	}
}

// TestBufferDepthImprovesThroughput: deeper per-VL buffers absorb more
// contention; accepted traffic at saturation must not decrease.
func TestBufferDepthImprovesThroughput(t *testing.T) {
	run := func(buf int) Result {
		sn := mustSubnet(t, 4, 3, core.NewMLID())
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.9,
			BufPackets:  buf,
			WarmupNs:    20_000,
			MeasureNs:   100_000,
			Seed:        31,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shallow, deep := run(1), run(4)
	if deep.Accepted < shallow.Accepted*0.98 {
		t.Errorf("deeper buffers hurt: %.4f (4 pkts) vs %.4f (1 pkt)", deep.Accepted, shallow.Accepted)
	}
}

// TestDefaultsApplied: zero-valued optional fields pick the paper's model
// constants and the run behaves.
func TestDefaultsApplied(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.05,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWindow == 0 {
		t.Fatalf("no deliveries with defaults: %+v", res)
	}
}

// TestQuickNoHangRandomConfigs: random small configurations always terminate
// and conserve packets. Guards against event-loop deadlocks.
func TestQuickNoHangRandomConfigs(t *testing.T) {
	sn4 := mustSubnet(t, 4, 2, core.NewMLID())
	sn8 := mustSubnet(t, 8, 2, core.NewSLID())
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		sn := sn4
		if rng.Intn(2) == 0 {
			sn = sn8
		}
		pats := []traffic.Pattern{
			traffic.Uniform{Nodes: sn.Tree.Nodes()},
			traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: rng.Intn(sn.Tree.Nodes()), Fraction: 0.5},
			traffic.BitReversal(sn.Tree.Nodes()),
		}
		cfg := Config{
			Subnet:      sn,
			Pattern:     pats[rng.Intn(len(pats))],
			OfferedLoad: 0.05 + rng.Float64()*1.2,
			DataVLs:     1 + rng.Intn(4),
			BufPackets:  1 + rng.Intn(3),
			PacketSize:  64 << rng.Intn(3),
			WarmupNs:    5_000,
			MeasureNs:   30_000,
			Seed:        int64(i),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if res.TotalDelivered > res.TotalGenerated || res.InFlightAtEnd < 0 {
			t.Fatalf("cfg %d: conservation: %+v", i, res)
		}
		if res.DeliveredWindow > 0 && res.MeanLatencyNs <= 0 {
			t.Fatalf("cfg %d: deliveries without latency: %+v", i, res)
		}
	}
}
