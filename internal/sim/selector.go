// Path selection as a pluggable policy. The paper's MLID scheme gives every
// destination a contiguous LID range (one LID per ascending path); which LID a
// source places in a packet's DLID field is a pure source-side choice, and
// this file makes that choice an interface instead of the former two-value
// enum. A Selector sees only the SelectContext — the candidate offsets, the
// fault-filtered usable mask, the flow identity and per-packet sequence
// number, the source node's seeded RNG stream, and a read-only CongestionView
// over the first-hop port state — never the Sim itself, which is what keeps
// every policy bit-for-bit deterministic across shard counts (the selectorpure
// analyzer polices this contract; see DESIGN.md, "Path-selection policy
// layer").
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Selector chooses among a destination's LID offsets for each outgoing
// packet. Implementations must be pure functions of the SelectContext (plus
// the per-flow state word stateful selectors read and write through it): no
// wall clock, no global RNG, no simulator state beyond the CongestionView.
// Randomness must come from SelectContext.RNG — the source node's seeded
// stream — so a run is reproducible and identical at every shard count.
//
// A Selector value is shared by concurrent runs (it is configuration, not run
// state); per-run mutable state lives in the run's flow-state array, reached
// only through the context.
type Selector interface {
	// Name identifies the selector in CLI flags and experiment tables.
	Name() string
	// NeedsFlowState reports whether runs must allocate the per-(src,dst)
	// flow-state array the selector pins choices in. Stateful selectors are
	// limited to fabrics of at most 4096 nodes (validate enforces this).
	NeedsFlowState() bool
	// Select picks a LID offset in [0, c.Count) whose mask bit is set
	// (c.Mask is never zero), and reports whether the choice counts as a
	// fault reroute (Result.Reroutes).
	Select(c *SelectContext) (off int, rerouted bool)
}

// SelectContext is everything a Selector may consult for one packet.
type SelectContext struct {
	// Src and Dst identify the flow.
	Src, Dst topology.NodeID
	// Seq is the packet's sequence number within the flow: the generation
	// index for fresh packets (a retransmission carries its original index),
	// the cumulative-acknowledgment watermark for transport control packets.
	Seq uint32
	// RNG is the source node's seeded lane-local stream — the only
	// randomness a selector may draw.
	RNG *rand.Rand
	// Base..Base+Count-1 are the destination's LIDs; Count is capped at 64
	// to match the usable mask's width.
	Base ib.LID
	// Count is the number of candidate offsets.
	Count int
	// Mask has bit i set when offset i names a path not known to be dead.
	// With fault reselection inactive (or every tracked path dead) it is the
	// full mask over Count offsets; it is never zero.
	Mask uint64
	// Full reports Mask == the full mask: no candidate is masked out.
	Full bool
	// Canonical is the paper's rank-based offset for (Src, Dst) — the
	// scheme's static choice, always in [0, Count).
	Canonical int
	// View exposes the congestion state of the candidates' first-hop ports.
	View CongestionView

	// state is the flow's word in the run's selector-state array (selectors
	// with NeedsFlowState; nil otherwise). Zero means unset; stateful
	// selectors store offset+1.
	state *uint32
}

// CongestionView is the one window a Selector has onto live simulator state:
// the occupancy and credit counters (the vlFlow arrays) of the ports that
// candidate offsets route onto at the source's leaf switch. Every mutation of
// those counters happens on the leaf switch's own shard lane — the same lane
// that runs the source's generation events — so reads through the view are
// bit-deterministic at every shard count.
type CongestionView struct {
	s *Sim
	// fwdBase indexes the leaf switch's compiled forwarding row at the
	// destination's base LID: entry fwdBase+off is offset off's first-hop
	// output port.
	fwdBase int
	dataVLs int
	// maxCred is the full credit pool of one port's data VLs
	// (DataVLs * BufPackets), the normalizer Load uses.
	maxCred int
}

// congestionUnreachable is the occupancy/load reported for an offset whose
// first-hop entry names no usable port (unrouted, or a dead link): worse than
// any live port can be.
const congestionUnreachable = 1 << 30

// Occupancy sums the packets resident in the first-hop output buffer that
// offset off routes onto, over the data VLs. Unrouted or dead: a huge value.
func (v CongestionView) Occupancy(off int) int {
	if v.s == nil {
		return 0 // static evaluation: an idle fabric
	}
	pid := v.s.fwdAt(v.fwdBase + off)
	if pid < 0 || v.s.ports[pid].dead {
		return congestionUnreachable
	}
	base := int(pid) * v.s.vls
	occ := 0
	for vl := 0; vl < v.dataVLs; vl++ {
		occ += int(v.s.cv[base+vl].occupancy)
	}
	return occ
}

// Credits sums the flow-control credits the first-hop port holds for its
// downstream input buffers, over the data VLs. Unrouted or dead: zero.
func (v CongestionView) Credits(off int) int {
	if v.s == nil {
		return v.maxCred // static evaluation: full credit pools
	}
	pid := v.s.fwdAt(v.fwdBase + off)
	if pid < 0 || v.s.ports[pid].dead {
		return 0
	}
	base := int(pid) * v.s.vls
	cred := 0
	for vl := 0; vl < v.dataVLs; vl++ {
		cred += int(v.s.cv[base+vl].credits)
	}
	return cred
}

// Load folds both signals into one ordering: buffered packets dominate
// (each occupancy unit outweighs the whole credit pool), exhausted downstream
// credits refine. Lower is less congested; unreachable offsets are +huge.
func (v CongestionView) Load(off int) int {
	occ := v.Occupancy(off)
	if occ >= congestionUnreachable {
		return congestionUnreachable
	}
	return occ*(v.maxCred+1) + (v.maxCred - v.Credits(off))
}

// nthSetBit returns the position of the k-th set bit of mask (k < popcount).
func nthSetBit(mask uint64, k int) int {
	for m := mask; ; m &= m - 1 {
		if k == 0 {
			return bits.TrailingZeros64(m)
		}
		k--
	}
}

// rankSelector is the paper's policy: the scheme's DLID function (the source's
// rank within its gcpg names the ascending path). Under faults it keeps the
// canonical offset while it survives and otherwise scans cyclically for the
// nearest survivor — exactly the pre-interface reselect behavior, so every
// golden fixture is bit-identical.
type rankSelector struct{}

func (rankSelector) Name() string         { return "rank" }
func (rankSelector) NeedsFlowState() bool { return false }

func (rankSelector) Select(c *SelectContext) (int, bool) {
	off := c.Canonical
	if c.Mask&(1<<uint(off)) != 0 {
		return off, false
	}
	for i := 1; i < c.Count; i++ {
		o := (off + i) % c.Count
		if c.Mask&(1<<uint(o)) != 0 {
			return o, true
		}
	}
	return off, false // unreachable: Mask is never zero
}

// randomSelector is the oblivious ablation: every packet draws a uniformly
// random usable offset. Draw-compatible with the pre-interface code: one
// Intn(alive) per packet when more than one candidate survives.
type randomSelector struct{}

func (randomSelector) Name() string         { return "random" }
func (randomSelector) NeedsFlowState() bool { return false }

func (randomSelector) Select(c *SelectContext) (int, bool) {
	alive := bits.OnesCount64(c.Mask)
	k := 0
	if alive > 1 {
		k = c.RNG.Intn(alive)
	}
	return nthSetBit(c.Mask, k), !c.Full
}

// flowSpraySelector pins each (src, dst) flow to one uniformly drawn offset at
// the flow's first packet — randomized load balancing without reordering: a
// flow never changes path unless a fault kills its pin, in which case it
// re-draws among the survivors (counted as a reroute).
type flowSpraySelector struct{}

func (flowSpraySelector) Name() string         { return "flowspray" }
func (flowSpraySelector) NeedsFlowState() bool { return true }

func (flowSpraySelector) Select(c *SelectContext) (int, bool) {
	displaced := false
	if st := *c.state; st != 0 {
		if off := int(st) - 1; off < c.Count && c.Mask&(1<<uint(off)) != 0 {
			return off, false
		}
		displaced = true
	}
	alive := bits.OnesCount64(c.Mask)
	k := 0
	if alive > 1 {
		k = c.RNG.Intn(alive)
	}
	off := nthSetBit(c.Mask, k)
	*c.state = uint32(off) + 1
	return off, displaced
}

// adaptiveHysteresisPackets is how many whole buffered packets of Load
// difference a candidate must show over the flow's current path before
// adaptive switches to it. One packet is maxCred+1 Load units, so the
// threshold (in units) is packets*(maxCred+1)+1: a single-packet or
// credit-level imbalance — ordinary queueing noise, gone by the time the
// rerouted packet arrives — never moves a flow off its path. Anything less
// makes every flow chase the same transient and the policy herds.
const adaptiveHysteresisPackets = 1

// adaptiveSelector picks the least-loaded usable offset from the congestion
// view. Each flow starts on its canonical (rank) path; ties among equally
// loaded candidates resolve to the smallest cyclic distance from the
// canonical offset, so flows sharing a least-loaded first-hop port still fan
// out over the deeper paths the scheme's static assignment spreads them
// across (several offsets map onto each physical up-port on trees with
// n > 2). A flow switches only when the best candidate undercuts its current
// path by more than adaptiveHysteresisPackets buffered packets — all
// deterministic, no RNG draws.
type adaptiveSelector struct{}

func (adaptiveSelector) Name() string         { return "adaptive" }
func (adaptiveSelector) NeedsFlowState() bool { return true }

func (adaptiveSelector) Select(c *SelectContext) (int, bool) {
	best, bestLoad, bestDist := -1, congestionUnreachable+1, 0
	for m := c.Mask; m != 0; m &= m - 1 {
		off := bits.TrailingZeros64(m)
		load := c.View.Load(off)
		dist := off - c.Canonical
		if dist < 0 {
			dist += c.Count
		}
		if load < bestLoad || (load == bestLoad && dist < bestDist) {
			best, bestLoad, bestDist = off, load, dist
		}
	}
	cur, displaced := -1, false
	if st := *c.state; st != 0 {
		cur = int(st) - 1
		if cur >= c.Count || c.Mask&(1<<uint(cur)) == 0 {
			cur, displaced = -1, true // the pinned path died: forced move
		}
	} else if c.Mask&(1<<uint(c.Canonical)) != 0 {
		cur = c.Canonical
	}
	hysteresis := adaptiveHysteresisPackets*(c.View.maxCred+1) + 1
	if cur >= 0 && cur != best && c.View.Load(cur)-bestLoad < hysteresis {
		best = cur
	}
	*c.state = uint32(best) + 1
	return best, displaced
}

// pktSpraySelector sprays every packet of a flow round-robin over the usable
// offsets: offset index (flowPhase + Seq) mod alive, where the phase is a hash
// of the flow identity so flows sharing a source decorrelate. Deterministic
// (no RNG draws), perfectly balanced per flow, and reordering by construction
// — it leans on the reliable transport's out-of-order buffering (PR 4) for
// resequencing, or on the OutOfOrder metric to quantify the damage without it.
type pktSpraySelector struct{}

func (pktSpraySelector) Name() string         { return "pktspray" }
func (pktSpraySelector) NeedsFlowState() bool { return false }

func (pktSpraySelector) Select(c *SelectContext) (int, bool) {
	alive := bits.OnesCount64(c.Mask)
	k := 0
	if alive > 1 {
		phase := uint32(c.Src)*0x9E3779B1 + uint32(c.Dst)*0x85EBCA77
		k = int((phase + c.Seq) % uint32(alive))
	}
	return nthSetBit(c.Mask, k), !c.Full
}

// The built-in selectors are stateless singletons: safe to share across
// concurrent runs and cheap to compare.
var (
	rankSingleton      Selector = rankSelector{}
	randomSingleton    Selector = randomSelector{}
	flowSpraySingleton Selector = flowSpraySelector{}
	adaptiveSingleton  Selector = adaptiveSelector{}
	pktSpraySingleton  Selector = pktSpraySelector{}
)

// SelectRank returns the paper's rank-based selection (the default policy).
func SelectRank() Selector { return rankSingleton }

// SelectRandom returns the oblivious per-packet random selection.
func SelectRandom() Selector { return randomSingleton }

// SelectFlowSpray returns per-flow random pinning.
func SelectFlowSpray() Selector { return flowSpraySingleton }

// SelectAdaptive returns congestion-aware least-loaded selection.
func SelectAdaptive() Selector { return adaptiveSingleton }

// SelectPktSpray returns per-packet round-robin spraying.
func SelectPktSpray() Selector { return pktSpraySingleton }

// StaticSelect evaluates a selector outside a running simulation — the
// static verifier's quality pass uses it to trace what sources would send.
// The congestion view is empty (every candidate reports an idle fabric), so
// adaptive reduces to its canonical start; the per-flow state word is
// call-local, so stateful selectors report their first-packet choice and no
// state leaks between pairs. mask must be nonzero and rng non-nil for
// selectors that draw.
func StaticSelect(sel Selector, src, dst topology.NodeID, base ib.LID, count, canonical int, mask uint64, rng *rand.Rand) int {
	var state uint32
	full := mask == ^uint64(0)>>uint(64-count)
	off, _ := sel.Select(&SelectContext{
		Src: src, Dst: dst, RNG: rng, Base: base, Count: count,
		Mask: mask, Full: full, Canonical: canonical, state: &state,
	})
	return off
}

// SelectorByName resolves a built-in selector from its CLI name.
func SelectorByName(name string) (Selector, error) {
	switch name {
	case "rank", "":
		return rankSingleton, nil
	case "random":
		return randomSingleton, nil
	case "flowspray":
		return flowSpraySingleton, nil
	case "adaptive":
		return adaptiveSingleton, nil
	case "pktspray":
		return pktSpraySingleton, nil
	}
	return nil, fmt.Errorf("sim: unknown selector %q (have %v)", name, SelectorNames())
}

// SelectorNames lists the built-in selectors, sorted.
func SelectorNames() []string {
	names := []string{"rank", "random", "flowspray", "adaptive", "pktspray"}
	sort.Strings(names)
	return names
}
