package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/stats"
	"mlid/internal/traffic"
)

func TestPortStatsCollection(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewSLID())
	res, err := Run(Config{
		Subnet:           sn,
		Pattern:          traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
		OfferedLoad:      0.3,
		CollectPortStats: true,
		WarmupNs:         20_000,
		MeasureNs:        100_000,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PortStats) == 0 {
		t.Fatal("no port stats collected")
	}
	// Sorted busiest-first, utilizations within [0, 1].
	for i, ps := range res.PortStats {
		if ps.Utilization < 0 || ps.Utilization > 1.0001 {
			t.Fatalf("stat %d: utilization %v", i, ps.Utilization)
		}
		if ps.Packets <= 0 || ps.BusyNs <= 0 {
			t.Fatalf("stat %d: empty entry %+v", i, ps)
		}
		if i > 0 && ps.BusyNs > res.PortStats[i-1].BusyNs {
			t.Fatal("port stats not sorted by busy time")
		}
	}
	// Under SLID centric, the busiest directed link must be on the hotspot
	// path: a switch link, not an injection link.
	if res.PortStats[0].IsNode {
		t.Errorf("busiest link is an injection link: %+v", res.PortStats[0])
	}
	// Off by default.
	res2, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.1,
		WarmupNs:    5_000,
		MeasureNs:   20_000,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PortStats != nil {
		t.Error("port stats collected without opting in")
	}
}

func TestLatencyHistogramSink(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	hist := stats.NewHistogram(100, 24)
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.3,
		LatencyHist: hist,
		WarmupNs:    10_000,
		MeasureNs:   60_000,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Total() != res.DeliveredWindow {
		t.Errorf("histogram holds %d samples, window delivered %d", hist.Total(), res.DeliveredWindow)
	}
	if m := hist.Mean(); m < res.MeanLatencyNs*0.999 || m > res.MeanLatencyNs*1.001 {
		t.Errorf("histogram mean %v vs result mean %v", m, res.MeanLatencyNs)
	}
}
