package sim

import (
	"fmt"
	"reflect"
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestDropPktCreditReturnAcrossVLs exercises dropPkt's credit return on 1, 2
// and 4 virtual lanes (the fault suite's scenarios only run the 2-VL
// default). A mid-run outage with revival flushes buffered packets on every
// VL; if any held credit failed to return, the post-revival traffic would
// trip the simulator's credit overflow/underflow checks (which abort the run
// with an error) or strand capacity. ReceptionLink puts the node-attachment
// links under credit flow control too, so their drops are covered as well.
func TestDropPktCreditReturnAcrossVLs(t *testing.T) {
	for _, vls := range []int{1, 2, 4} {
		vls := vls
		t.Run(fmt.Sprintf("%dVL", vls), func(t *testing.T) {
			sn := mustSubnet(t, 4, 2, core.NewMLID())
			cfg := Config{
				Subnet:  sn,
				Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
				DataVLs: vls, OfferedLoad: 0.5, // high enough to keep buffers occupied
				WarmupNs: 20_000, MeasureNs: 100_000,
				Reception:        ReceptionLink,
				SeriesIntervalNs: 5_000,
				FaultPlan: &FaultPlan{
					Faults: []LinkFault{
						{Switch: 2, Port: 2, DownNs: 40_000, UpNs: 70_000},
						// A node-attachment link outage: its drops return
						// credits on the terminal link.
						{Switch: 2, Port: 0, DownNs: 50_000, UpNs: 60_000},
					},
					Reselect: true,
				},
				VerifyEpochs: true,
				Seed:         21,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.DroppedTotal == 0 {
				t.Fatal("no drops: the scenario exercises nothing")
			}
			if res.DroppedOnDeadLink == 0 {
				t.Error("no buffered/flying victims: flushDead never ran, credits untested")
			}
			if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
				t.Errorf("conservation: delivered+dropped+inflight = %d, generated = %d",
					got, res.TotalGenerated)
			}
			// Traffic must flow again after both revivals: deliveries in the
			// final series bins prove the revived links still have credits.
			var tailDelivered int64
			for _, sp := range res.Series {
				if sp.StartNs >= 100_000 {
					tailDelivered += sp.Delivered
				}
			}
			if tailDelivered == 0 {
				t.Error("no deliveries after revival: a link lost credits for good")
			}

			res2, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, res2) {
				t.Error("run is not deterministic")
			}

			// The same scenario with the reliable transport adds the
			// management VL on top (so 2, 3 and 5 lanes of credit state) and
			// must drain to zero in flight with every loss explicit.
			cfg.Transport = &TransportConfig{DrainNs: 500_000}
			rt, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := rt.TotalDelivered + rt.Failed + rt.InFlightAtEnd; got != rt.TotalGenerated {
				t.Errorf("transport conservation: delivered+failed+inflight = %d, generated = %d",
					got, rt.TotalGenerated)
			}
			if rt.InFlightAtEnd != 0 {
				t.Errorf("transport InFlightAtEnd = %d, want 0", rt.InFlightAtEnd)
			}
		})
	}
}
