package sim

// In-band subnet management (FaultPlan.InBandSM): the SM loses its oracle.
//
// The default fault model delivers traps and table updates by fiat — a link
// event always reaches the SM after TrapLatencyNs, and staged LFT rewrites
// always land. With InBandSM set, those notifications become management
// packets routed through the same live forwarding state as data traffic:
//
//   - A link event raises a trap at the observing switch, walked hop by hop
//     toward the active SM's endnode through the compiled tables. A trap
//     whose path crosses a dead link — including the link it reports — is
//     LOST. The peer switch of an inter-switch link raises the trap too, so
//     a single link death rarely silences itself; a trap about a node's
//     attachment link has no second reporter.
//   - Lost knowledge is recovered only by the SM's periodic lightweight
//     sweep, which reads ground-truth port state (an all-ports discovery
//     does not depend on routed traps) and diffs it against the SM's view.
//   - Table repairs travel as per-switch LFT-update SMP transactions with
//     timeout, capped exponential backoff, and a retry budget
//     (sm.TxnManager); a retry-exhausted transaction parks until the next
//     sweep re-drives it.
//   - A standby SM on a distinct leaf switch takes over (sm.Failover,
//     observed at sweep ticks) when the master's attachment dies; mastership
//     is sticky, so recovery of the old master does not flap it back.
//   - When repair cannot restore reachability the SM computes a typed
//     partition finding (core.DetectPartitions) over its knowledge, and
//     senders degrade gracefully: a retransmit timer armed while the
//     destination is declared unreachable drains the flow's backlog into
//     UnreachableDegraded instead of burning its retry budget.
//
// Modelling notes, deliberately simple but stated:
//
//   - Management packets do not occupy link buffers; they cost per-hop time
//     (RouteNs + FlyNs per hop, on top of the plan's latency constants) and
//     die on dead links, which is the failure coupling the tentpole needs,
//     without perturbing data-plane credit state.
//   - Traps are LID-routed: their path liveness is evaluated by walking the
//     compiled forwarding rows toward the SM node's base LID, so broken
//     tables can silence the very trap that reports them. LFT-update SMPs
//     are DIRECTED-ROUTE, as in InfiniBand — the SM lists the exit ports
//     hop by hop, consulting no forwarding table — precisely so they can
//     reconfigure switches whose LID-routed state is broken. The SM plans
//     the shortest route through links it believes alive (its possibly
//     stale knownDead view); the packet still dies on links that are
//     actually dead, so a stale view routes SMPs into holes until a trap
//     or sweep refreshes it. Links die bidirectionally, so the response
//     retracing the directed route lives iff the request route lives.
//   - Both SM instances share the trap-fed knowledge base (knownDead), the
//     transaction table and the staged updates — SM database replication —
//     so a takeover resumes, not restarts, recovery.
//
// Every handler below runs as a coordinator (barrier-aligned) event in a
// sharded run and mutates only the shared faultRun/inbandRun state plus
// lane-0 tables, so shard counts 1/2/4/8 stay bit-identical; the one
// handler that touches per-lane transport state (drainUnreachable) runs on
// the flow's owning lane under the barrier (see route's evRexmit case).

import (
	"fmt"
	"math/rand"

	"mlid/internal/core"
	"mlid/internal/sm"
	"mlid/internal/topology"
)

// inbandRun is the live in-band SM state, nested in faultRun (shared across
// a sharded run's lanes; only barrier-aligned coordinator events mutate it).
type inbandRun struct {
	cfg     InBandSMConfig
	standby int32 // resolved standby node
	// rng draws trap losses only. Private to the SM model so enabling
	// TrapLossProb never perturbs traffic generation or path selection.
	rng  *rand.Rand
	fo   *sm.Failover
	txns *sm.TxnManager
	// knownDead is the SM's view of the dead links (canonical switch-side
	// endpoints, event order), fed by delivered traps and sweep diffs; it
	// lags ground truth (faultRun.deadLinks) whenever a trap was lost.
	knownDead [][2]int32
	// finding is the latest partition verdict over knownDead; partitioned
	// tracks its Partitioned() state across repairs so transitions into a
	// partitioned fabric count once.
	finding     core.PartitionFinding
	partitioned bool
	// unreachable flags flows (src*nodes+dst) whose destination the SM
	// declared unreachable; senders drain instead of retrying. Allocated
	// only when the transport layer runs.
	unreachable []uint8

	trapsSent           int64
	trapsLost           int64
	trapsDelivered      int64
	sweeps              int64
	sweepDetections     int64
	smpSent             int64
	smpRetries          int64
	smpFailed           int64
	failovers           int64
	partitionEvents     int64
	unreachableDegraded int64
}

// initInBand builds the in-band SM state and schedules the first sweep tick.
// Called once from scheduleFaults when the plan carries an InBandSM config.
func (s *Sim) initInBand() {
	cfg := *s.faults.plan.InBandSM
	ib := &inbandRun{
		cfg:     cfg,
		standby: cfg.resolvedStandby(s.tree),
		rng:     rand.New(rand.NewSource(s.cfg.Seed*9_176_941 + 17)),
		txns: sm.NewTxnManager(sm.TxnConfig{
			BaseTimeoutNs: int64(cfg.SMPTimeoutNs),
			BackoffMult:   cfg.SMPBackoffMult,
			MaxTimeoutNs:  int64(cfg.SMPMaxTimeoutNs),
			MaxRetries:    cfg.SMPMaxRetries,
		}),
	}
	ib.fo = sm.NewFailover(cfg.MasterNode, ib.standby)
	if s.transport != nil && s.tree.Nodes() <= 4096 {
		// Same size guard as the reselection caches: the flag array is
		// nodes^2 bytes.
		ib.unreachable = make([]uint8, s.tree.Nodes()*s.tree.Nodes())
	}
	s.faults.inband = ib
	s.schedule(cfg.SweepIntervalNs, event{kind: evSMSweep})
}

// smNodeUp reports whether an SM endnode can send and receive: its
// attachment link is alive.
func (s *Sim) smNodeUp(node int32) bool {
	return !s.ports[s.nodePid(node)].dead
}

// mgmtHopNs is the per-hop cost of a management packet: one routing decision
// plus one link flight. Management packets skip buffer occupancy by design
// (see the package comment above).
func (s *Sim) mgmtHopNs() Time {
	return s.cfg.RouteNs + s.cfg.FlyNs
}

// mgmtWalkFrom walks the compiled live forwarding rows from switch sw toward
// the SM endnode's base LID and returns the hop count, or ok=false when the
// route crosses a dead link, dead-ends, or the SM's own attachment is down.
func (s *Sim) mgmtWalkFrom(sw int32, smNode int32) (hops int, ok bool) {
	if !s.smNodeUp(smNode) {
		return 0, false
	}
	dlid := s.cfg.Subnet.Endports[smNode].Base
	if int(dlid) >= s.lftSize {
		return 0, false
	}
	cur := int(sw)
	maxHops := 2*s.tree.N() + 1
	for hop := 0; hop <= maxHops; hop++ {
		pid := s.fwdAt(cur*s.lftSize + int(dlid))
		if pid < 0 {
			return 0, false
		}
		pt := &s.ports[pid]
		if pt.dead {
			return 0, false
		}
		if pt.destNode >= 0 {
			if pt.destNode == smNode {
				return hop + 1, true
			}
			return 0, false
		}
		cur = int(pt.destSw)
	}
	return 0, false
}

// smpRouteHops plans and walks the directed route of an LFT-update SMP from
// the active SM to the target switch. Directed-route packets consult no
// forwarding table — the SM lists the exit ports hop by hop — which is what
// lets them repair a switch whose own LID-routed entries are broken (a
// LID-routed walk from such a switch dead-ends on the very entry the SMP
// carries the fix for). The route is planned as the shortest path over the
// links the SM BELIEVES alive — its possibly stale knownDead view — via a
// deterministic BFS (ascending port order); the packet then dies on any
// link that is ACTUALLY dead, so stale knowledge routes SMPs into holes
// until a trap or sweep refreshes it. Hop count includes the SM's
// attachment link.
func (s *Sim) smpRouteHops(smNode, target int32) (hops int, ok bool) {
	if !s.smNodeUp(smNode) {
		return 0, false
	}
	ib := s.faults.inband
	believed := core.NewFaultSet()
	for _, l := range ib.knownDead {
		believed.FailLink(s.tree, topology.SwitchID(l[0]), int(l[1]))
	}
	start, _ := s.tree.NodeAttachment(topology.NodeID(smNode))
	m := s.tree.M()
	// BFS over the believed-alive switch graph; prev[sw] records the
	// (switch, exit port) that reached sw, for route reconstruction.
	type hop struct {
		sw   int32
		port int32
	}
	prev := make([]hop, s.tree.Switches())
	seen := make([]bool, s.tree.Switches())
	seen[start] = true
	queue := []int32{int32(start)}
	for len(queue) > 0 && !seen[target] {
		cur := queue[0]
		queue = queue[1:]
		for port := 0; port < m; port++ {
			ref := s.tree.SwitchNeighbor(topology.SwitchID(cur), port)
			if ref.Kind != topology.KindSwitch || seen[ref.Switch] || believed.Dead(topology.SwitchID(cur), port) {
				continue
			}
			seen[ref.Switch] = true
			prev[ref.Switch] = hop{cur, int32(port)}
			queue = append(queue, int32(ref.Switch))
		}
	}
	if !seen[target] {
		return 0, false // the SM believes the switch unreachable: nothing sent
	}
	// Walk the planned route backwards against ground truth: each planned
	// exit port that is actually dead kills the packet.
	hops = 1 // the SM's attachment link (alive per smNodeUp above)
	for cur := target; cur != int32(start); cur = prev[cur].sw {
		h := prev[cur]
		if s.ports[h.sw*int32(m)+h.port].dead {
			return 0, false
		}
		hops++
	}
	return hops, true
}

// emitTrap raises a trap about the link at (sw, port) — down or revived —
// and routes it toward the active SM. The trap dies to the configured loss
// probability or to a broken management path; a lost trap is recovered only
// by a later sweep. For an inter-switch link the peer switch reports too
// (either observer reaching the SM suffices); a node-attachment link has a
// single reporter.
func (s *Sim) emitTrap(sw, port int32, down bool) {
	ib := s.faults.inband
	ib.trapsSent++
	if ib.cfg.TrapLossProb > 0 && ib.rng.Float64() < ib.cfg.TrapLossProb {
		ib.trapsLost++
		return
	}
	active := ib.fo.Active()
	hops, ok := s.mgmtWalkFrom(sw, active)
	if !ok {
		if ref := s.tree.SwitchNeighbor(topology.SwitchID(sw), int(port)); ref.Kind == topology.KindSwitch {
			hops, ok = s.mgmtWalkFrom(int32(ref.Switch), active)
		}
	}
	if !ok {
		ib.trapsLost++
		return
	}
	var flag int32
	if down {
		flag = 1
	}
	at := s.now + s.faults.plan.TrapLatencyNs + Time(hops)*s.mgmtHopNs()
	s.schedule(at, event{kind: evTrapArrive, pi: flag, a: sw, b: port})
}

// trapArrive is a delivered trap updating the SM's knowledge base; a change
// triggers repair. Revival traps remove the link from the view, so the SM
// re-converges toward the pristine tables.
func (s *Sim) trapArrive(sw, port int32, down bool) {
	ib := s.faults.inband
	ib.trapsDelivered++
	key := [2]int32{sw, port}
	changed := false
	if down {
		known := false
		for _, e := range ib.knownDead {
			if e == key {
				known = true
				break
			}
		}
		if !known {
			ib.knownDead = append(ib.knownDead, key)
			changed = true
		}
	} else {
		for i, e := range ib.knownDead {
			if e == key {
				ib.knownDead = append(ib.knownDead[:i], ib.knownDead[i+1:]...)
				changed = true
				break
			}
		}
	}
	if changed {
		s.inbandRepair()
	}
}

// inbandRepair runs the SM's path recomputation against its current
// knowledge and opens one SMP transaction per staged switch delta, then
// refreshes the partition verdict. The in-band counterpart of the oracle's
// smTrap.
func (s *Sim) inbandRepair() {
	ib := s.faults.inband
	staged, ok := s.smRepair(ib.knownDead)
	if !ok {
		return
	}
	for i, idx := range staged {
		// Transactions and staged updates share indices: every staged
		// update is created here and nowhere else in in-band mode.
		if got := ib.txns.Open(); got != idx {
			s.fail(fmt.Errorf("sim: in-band SMP transaction %d opened for staged update %d (SM bug)", got, idx))
			return
		}
		s.sendSMP(idx, s.now+s.faults.plan.SMProcessNs+Time(i)*s.faults.plan.LFTUpdateNs)
	}
	// Reselection activates and caches invalidate on the SM's knowledge
	// change, exactly like the oracle's trap epoch.
	s.faults.epoch++
	if s.cfg.VerifyEpochs {
		s.verifyEpoch()
	}
	s.refreshPartition()
}

// sendSMP transmits (or retransmits) the LFT-update SMP of transaction idx
// at time at: the update arrives at its switch if the management path holds,
// and the response timer is armed regardless — timeouts, not deliveries, are
// what the transaction machine runs on.
func (s *Sim) sendSMP(idx int, at Time) {
	ib := s.faults.inband
	gen, timeoutNs := ib.txns.Send(idx)
	ib.smpSent++
	if ib.txns.Attempts(idx) > 1 {
		ib.smpRetries++
	}
	if hops, ok := s.smpRouteHops(ib.fo.Active(), s.faults.staged[idx].sw); ok {
		s.schedule(at+Time(hops)*s.mgmtHopNs(), event{kind: evSMPArrive, a: int32(idx)})
	}
	s.schedule(at+Time(timeoutNs), event{kind: evSMPTimeout, a: int32(idx), b: int32(gen)})
}

// smpArrive is the SMP reaching its target switch: the first copy applies
// the table delta (retransmissions are absorbed idempotently), and the
// response walks back to the SM — its loss leaves the timer to expire.
func (s *Sim) smpArrive(idx int) {
	ib := s.faults.inband
	if ib.txns.Apply(idx) {
		s.applySMP(idx)
	}
	// The response retraces the directed route; links die bidirectionally,
	// so replanning from the SM side keeps the symmetry honest.
	if hops, ok := s.smpRouteHops(ib.fo.Active(), s.faults.staged[idx].sw); ok {
		s.schedule(s.now+Time(hops)*s.mgmtHopNs(), event{kind: evSMPAck, a: int32(idx)})
	}
}

// smpAck closes the transaction at the SM.
func (s *Sim) smpAck(idx int) {
	s.faults.inband.txns.Ack(idx)
}

// smpTimeout fires a transaction's response timer: retransmit under budget,
// park over it (the sweep re-drives parked transactions).
func (s *Sim) smpTimeout(idx int, gen int32) {
	ib := s.faults.inband
	switch ib.txns.Expire(idx, uint32(gen)) {
	case sm.TxnResend:
		s.sendSMP(idx, s.now)
	case sm.TxnExhausted:
		ib.smpFailed++
	}
}

// applySMP rewrites the target switch's live table for the lids of staged
// update idx. Unlike the oracle's applyLFTUpdate it writes the repair
// state's CURRENT target value per lid, not the delta recorded at staging
// time: the SMP carries the table block as the SM now intends it, so
// out-of-order arrivals of overlapping repairs converge on the SM's latest
// intent instead of resurrecting a stale delta.
func (s *Sim) applySMP(idx int) {
	u := s.faults.staged[idx]
	lft := s.lfts[u.sw]
	target := s.faults.repair
	fwdBase := int(u.sw) * s.lftSize
	for _, d := range u.entries {
		port := target.TargetPort(topology.SwitchID(u.sw), d.lid)
		if err := lft.Set(d.lid, port); err != nil {
			s.fail(fmt.Errorf("sim: applying SMP to switch %d: %w", u.sw, err))
			return
		}
		s.setFwd(fwdBase+int(d.lid), s.compileEntry(u.sw, port))
	}
	s.lftUpdates++
	s.lftEntriesRewritten += int64(len(u.entries))
	s.faults.lastRepairNs = s.now
	s.faults.epoch++
	if s.cfg.VerifyEpochs {
		s.verifyEpoch()
	}
}

// smSweep is the periodic SM tick: observe both SM nodes' liveness and fail
// over if the active one is dead, discover ground-truth port state and diff
// it against the SM's view (the only recovery path for lost traps), and
// re-drive parked SMP transactions.
func (s *Sim) smSweep() {
	ib := s.faults.inband
	ib.sweeps++
	switched, anyUp := ib.fo.Observe(s.smNodeUp(ib.cfg.MasterNode), s.smNodeUp(ib.standby))
	if switched {
		ib.failovers++
	}
	s.schedule(s.now+ib.cfg.SweepIntervalNs, event{kind: evSMSweep})
	if !anyUp {
		// No SM can reach the fabric; the tick keeps running so a revival
		// is noticed.
		return
	}
	// Capture the re-drive list before the repair below opens new
	// transactions (a fresh transaction is never parked, but the slice must
	// not alias a growing table).
	redrive := ib.txns.Parked()
	added, removed := sm.DiffDeadLinks(ib.knownDead, s.faults.deadLinks)
	if len(added) > 0 || len(removed) > 0 {
		ib.sweepDetections++
		ib.knownDead = append(ib.knownDead[:0:0], s.faults.deadLinks...)
		s.inbandRepair()
	}
	for i, idx := range redrive {
		ib.txns.Reset(idx)
		s.sendSMP(idx, s.now+s.faults.plan.SMProcessNs+Time(i)*s.faults.plan.LFTUpdateNs)
	}
}

// refreshPartition recomputes the partition finding over the SM's knowledge
// after a repair, counts transitions into a partitioned fabric, and updates
// the per-flow unreachability flags that drive graceful degradation. Flags
// take effect at each flow's next timer re-arm (see armTimer), so no timer
// state is touched here.
func (s *Sim) refreshPartition() {
	ib := s.faults.inband
	fs := core.NewFaultSet()
	for _, e := range ib.knownDead {
		fs.FailLink(s.tree, topology.SwitchID(e[0]), int(e[1]))
	}
	ib.finding = core.DetectPartitions(s.tree, fs)
	if ib.finding.Partitioned() && !ib.partitioned {
		ib.partitionEvents++
	}
	ib.partitioned = ib.finding.Partitioned()
	if ib.unreachable == nil {
		return
	}
	n := s.tree.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			var u uint8
			if !ib.finding.Reachable(topology.NodeID(src), topology.NodeID(dst)) {
				u = 1
			}
			ib.unreachable[src*n+dst] = u
		}
	}
}

// drainUnreachable empties a flow whose destination the SM declared
// unreachable: every packet the receiver never got counts
// UnreachableDegraded — a loss the transport will not retry, kept apart from
// Failed (budget exhaustion) — while delivered-but-unconfirmed packets
// simply leave the sender's books (the simulator is omniscient; counting
// them too would break conservation). Runs on the flow's owning lane under
// the coordinator barrier in a sharded run.
func (s *Sim) drainUnreachable(idx int32, f *txFlow) {
	ib := s.faults.inband
	rxf := &s.transport.rx[idx]
	for i := range f.unacked {
		tp := &f.unacked[i]
		if tp.seq <= rxf.cum || rxf.winContains(tp.seq) {
			continue
		}
		ib.unreachableDegraded++
		if iv := s.cfg.SeriesIntervalNs; iv > 0 && s.now < s.end {
			s.seriesUnreachable[s.seriesBin(s.now)]++
		}
	}
	f.unacked = f.unacked[:0]
	f.timerGen++
}
