package sim

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/stats"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// Default model constants, taken from the paper's simulator settings.
const (
	// DefaultFlyNs is the flying time of a packet between devices
	// (endnode-to-switch and switch-to-switch).
	DefaultFlyNs Time = 10
	// DefaultRouteNs is the routing time of a packet from an input port to
	// an output port of the crossbar (forwarding table lookup, arbitration
	// and message startup).
	DefaultRouteNs Time = 100
	// DefaultNsPerByte is the byte injection interval of a 4X link
	// configuration (~8 Gbit/s of data): one byte per nanosecond.
	DefaultNsPerByte Time = 1
	// DefaultPacketSize is the simulated packet size in bytes.
	DefaultPacketSize = 256
	// DefaultBufPackets is the per-virtual-lane input/output buffer
	// capacity in packets (the paper's buffers hold one packet).
	DefaultBufPackets = 1
)

// ReceptionModel selects how destination endnodes consume packets.
type ReceptionModel int

const (
	// ReceptionIdeal consumes packets at the destination's leaf switch as
	// fast as they are routed: the final switch-to-node hop adds its flying
	// and serialization time to latency but is never a shared bottleneck.
	// This matches the behaviour the paper's results imply: its 50%-centric
	// figures show MLID far ahead of SLID, which is only possible when the
	// destination can drain its multiple descending paths concurrently —
	// with a single contended terminal link, every scheme is pinned to the
	// same hotspot sink rate (see DESIGN.md, "Reception model").
	ReceptionIdeal ReceptionModel = iota
	// ReceptionLink models the switch-to-node link like any other: 1 B/ns,
	// credit flow control, shared by all traffic to that node.
	ReceptionLink
)

// VLPolicy chooses how sources map packets onto data virtual lanes.
type VLPolicy int

const (
	// VLRoundRobin distributes a source's packets over the data VLs in
	// round-robin order — the utilization-oriented policy of the VL
	// literature the paper builds on, and the default. It treats both
	// routing schemes symmetrically: every VL carries every flow.
	VLRoundRobin VLPolicy = iota
	// VLByDLID statically maps a packet to VL = DLID mod #VLs, a
	// destination-pinned (SL-to-VL style) mapping. Under a hotspot this
	// isolates the single-LID scheme's hotspot traffic on one lane, an
	// asymmetry worth studying but not the paper's setting (its
	// observations have MLID ahead at every VL count).
	VLByDLID
)

// SwitchingMode selects the switch forwarding discipline.
type SwitchingMode int

const (
	// SwitchingVCT is virtual cut-through, the paper's model: a packet's
	// head can leave a switch before its tail has arrived.
	SwitchingVCT SwitchingMode = iota
	// SwitchingSAF is store-and-forward: a switch receives the whole
	// packet before routing it, adding one serialization time per hop.
	// Provided as an ablation of the paper's cut-through choice.
	SwitchingSAF
)

// Config describes one simulation run.
type Config struct {
	// Subnet is the configured subnet (topology + LID assignment + LFTs)
	// produced by the subnet manager.
	Subnet *ib.Subnet
	// Pattern selects packet destinations.
	Pattern traffic.Pattern
	// DataVLs is the number of data virtual lanes (the paper simulates
	// 1, 2 and 4). Each VL of a port has its own input and output buffer.
	DataVLs int
	// PacketSize is the packet length in bytes.
	PacketSize int
	// BufPackets is the capacity, in packets, of each per-VL buffer.
	BufPackets int
	// FlyNs, RouteNs, NsPerByte override the paper's timing constants when
	// non-zero.
	FlyNs, RouteNs, NsPerByte Time
	// OfferedLoad is the per-node injection rate in bytes/ns (1.0 is the
	// full link rate). The generator spaces packets deterministically at
	// PacketSize/OfferedLoad nanoseconds, with a random per-node phase.
	OfferedLoad float64
	// WarmupNs and MeasureNs delimit the measurement window: statistics
	// cover deliveries in [WarmupNs, WarmupNs+MeasureNs). Generation stops
	// at the end of the window.
	WarmupNs, MeasureNs Time
	// Reception selects the endnode consumption model; the zero value is
	// ReceptionIdeal, the paper-faithful choice.
	Reception ReceptionModel
	// PathSelect selects the source-side multipath policy: any Selector
	// (SelectRank, SelectRandom, SelectFlowSpray, SelectAdaptive,
	// SelectPktSpray, or a custom implementation). nil is the paper's
	// rank-based selection. Fault reselection (FaultPlan.Reselect) composes
	// with every selector: it filters the candidate offsets to surviving
	// paths, then the selector chooses among them.
	PathSelect Selector
	// DLIDFunc, when non-nil, overrides path selection entirely: it is
	// called per packet with (src, dst) and must return a LID the
	// destination owns. Used for profile-guided path plans
	// (core.OptimizePaths).
	DLIDFunc func(src, dst topology.NodeID) ib.LID
	// VLSelect selects the source-side virtual-lane mapping; the zero
	// value is round-robin.
	VLSelect VLPolicy
	// Switching selects cut-through (default, the paper's model) or
	// store-and-forward.
	Switching SwitchingMode
	// LatencyHist, when non-nil, receives every measured delivery latency
	// (generation to tail, window deliveries only).
	LatencyHist *stats.Histogram
	// CollectPortStats fills Result.PortStats with per-directed-link
	// transmission statistics.
	CollectPortStats bool
	// TracePackets records the hop-by-hop timeline of the first N generated
	// packets into Result.Traces.
	TracePackets int
	// SeriesIntervalNs, when positive, bins deliveries over the whole run
	// into intervals of this many nanoseconds and fills Result.Series — the
	// transient view (congestion onset, drain) the steady-state window
	// averages away.
	SeriesIntervalNs Time
	// FaultPlan, when non-nil, schedules live link failures during the run
	// and enables the subnet-manager recovery model (trap latency, staged
	// forwarding-table updates, optional fault-avoiding source reselection).
	// A nil plan and an empty plan behave identically. See FaultPlan.
	FaultPlan *FaultPlan
	// Transport, when non-nil, enables the reliable end-to-end transport
	// layer: per-flow packet sequence numbers, receiver ACK/NAK on a
	// dedicated management VL, and sender timeout-retransmission with
	// exponential backoff. Off (nil) by default; a disabled run is
	// bit-for-bit identical to one built before the transport existed.
	// See TransportConfig.
	Transport *TransportConfig
	// VerifyEpochs re-runs the static verifier (internal/verify) over the
	// live forwarding tables at every subnet-manager epoch of a FaultPlan
	// run — after each trap sweep and each applied staged table update —
	// and additionally cross-checks the compiled forwarding rows against
	// the live tables. Any error-severity finding (a loop, credit-cycle,
	// dead end, or misdelivery the recorded dead links do not explain)
	// fails the run. Cold path: it costs nothing per packet and does not
	// perturb results. Without a FaultPlan no epochs occur and the flag is
	// inert. See Result.VerifiedEpochs.
	VerifyEpochs bool
	// Seed makes the run reproducible.
	Seed int64
	// Shards partitions the fabric into that many per-leaf-group event
	// engines run on worker goroutines under a conservative time-window
	// barrier (see DESIGN.md, "Sharded engine and conservative lookahead").
	// Results are bit-for-bit identical for every value: 0 or 1 keeps the
	// classic single-engine path, and any N is clamped to the tree's leaf
	// group count. Configurations the sharded path cannot serve exactly
	// (packet tracing, an external LatencyHist sink, FlyNs < 1) silently
	// run single-engine.
	Shards int
	// HeapOnlyScheduler disables the engine's calendar-queue fast path so
	// every event takes the fallback heap. Results must not depend on it:
	// it exists so determinism suites outside this package (the chaos soak)
	// can prove both scheduler paths produce bit-identical results.
	HeapOnlyScheduler bool
}

// SeriesPoint is one time bin of a run's delivery series.
type SeriesPoint struct {
	StartNs Time
	// Accepted is the delivered traffic in the bin, bytes/ns per node.
	Accepted float64
	// MeanLatencyNs averages the bin's delivery latencies (0 if none).
	MeanLatencyNs float64
	Delivered     int64
	// Dropped counts packets lost at dead links in the bin (FaultPlan runs).
	Dropped int64
	// Reroutes counts packets steered off a faulty path by source
	// reselection in the bin (FaultPlan runs with Reselect).
	Reroutes int64
	// Retransmits counts retransmissions injected in the bin; Failed the
	// packets whose retry budget ran out in the bin (Transport runs).
	Retransmits, Failed int64
	// Unreachable counts packets written off by partition-aware degradation
	// in the bin (FaultPlan runs with InBandSM and Transport).
	Unreachable int64
}

// TraceHop is one switch traversal in a packet trace.
type TraceHop struct {
	Switch int32
	// ArriveNs is the head arrival at the switch; DepartNs the start of the
	// next transmission (0 if the packet never left).
	ArriveNs, DepartNs Time
}

// PacketTrace is the recorded life of one packet.
type PacketTrace struct {
	Seq       uint64
	Src, Dst  int32
	DLID      uint16
	VL        uint8
	GenNs     Time
	InjectNs  Time
	DeliverNs Time // 0 if still in flight when the run ended
	// DroppedNs is the time the packet died at a dead link (FaultPlan runs);
	// 0 if it was never dropped.
	DroppedNs Time
	Hops      []TraceHop
}

// PortStat summarizes one directed link's transmissions over a run.
type PortStat struct {
	// IsNode marks an endnode injection link; otherwise Switch/Port name
	// the transmitting switch side (abstract port).
	IsNode  bool
	Node    int32
	Switch  int32
	Port    int
	BusyNs  Time
	Packets int64
	// Utilization is BusyNs over the run length.
	Utilization float64
}

// withDefaults fills zero fields with the paper's constants.
func (c Config) withDefaults() Config {
	if c.DataVLs == 0 {
		c.DataVLs = 1
	}
	if c.PacketSize == 0 {
		c.PacketSize = DefaultPacketSize
	}
	if c.BufPackets == 0 {
		c.BufPackets = DefaultBufPackets
	}
	if c.FlyNs == 0 {
		c.FlyNs = DefaultFlyNs
	}
	if c.RouteNs == 0 {
		c.RouteNs = DefaultRouteNs
	}
	if c.NsPerByte == 0 {
		c.NsPerByte = DefaultNsPerByte
	}
	if c.WarmupNs == 0 {
		c.WarmupNs = 50_000
	}
	if c.MeasureNs == 0 {
		c.MeasureNs = 200_000
	}
	if c.FaultPlan != nil {
		plan := c.FaultPlan.withDefaults()
		c.FaultPlan = &plan
	}
	if c.Transport != nil {
		tc := c.Transport.withDefaults()
		c.Transport = &tc
	}
	return c
}

// validate rejects inconsistent configurations.
func (c Config) validate() error {
	if c.Subnet == nil {
		return fmt.Errorf("sim: Config.Subnet is required")
	}
	if c.Pattern == nil {
		return fmt.Errorf("sim: Config.Pattern is required")
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: Shards must be >= 0, got %d", c.Shards)
	}
	if c.DataVLs < 1 || c.DataVLs > 15 {
		return fmt.Errorf("sim: DataVLs must be 1..15 (IBA allows up to 15 data VLs), got %d", c.DataVLs)
	}
	if c.PacketSize < 1 {
		return fmt.Errorf("sim: PacketSize must be positive, got %d", c.PacketSize)
	}
	if c.BufPackets < 1 {
		return fmt.Errorf("sim: BufPackets must be >= 1, got %d", c.BufPackets)
	}
	if c.OfferedLoad <= 0 {
		return fmt.Errorf("sim: OfferedLoad must be positive, got %v", c.OfferedLoad)
	}
	if c.MeasureNs <= 0 || c.WarmupNs < 0 {
		return fmt.Errorf("sim: bad window: warmup %d, measure %d", c.WarmupNs, c.MeasureNs)
	}
	if c.Reception != ReceptionIdeal && c.Reception != ReceptionLink {
		return fmt.Errorf("sim: unknown reception model %d", c.Reception)
	}
	if c.PathSelect != nil && c.PathSelect.NeedsFlowState() {
		if n := c.Subnet.Tree.Nodes(); n > 4096 {
			return fmt.Errorf("sim: selector %q tracks per-(src,dst) flow state and supports fabrics up to 4096 nodes, got %d", c.PathSelect.Name(), n)
		}
	}
	if c.VLSelect != VLRoundRobin && c.VLSelect != VLByDLID {
		return fmt.Errorf("sim: unknown VL policy %d", c.VLSelect)
	}
	if c.Switching != SwitchingVCT && c.Switching != SwitchingSAF {
		return fmt.Errorf("sim: unknown switching mode %d", c.Switching)
	}
	if c.FaultPlan != nil {
		if err := c.FaultPlan.validate(c.Subnet.Tree); err != nil {
			return err
		}
	}
	if c.Transport != nil {
		if err := c.Transport.validate(); err != nil {
			return err
		}
		if n := c.Subnet.Tree.Nodes(); n > 1024 {
			return fmt.Errorf("sim: Transport tracks per-(src,dst) flow state and supports fabrics up to 1024 nodes, got %d", n)
		}
		if c.DataVLs > 14 {
			return fmt.Errorf("sim: Transport claims one management VL on top of DataVLs; DataVLs must be <= 14, got %d", c.DataVLs)
		}
	}
	return nil
}

// Result reports one run's outcome.
type Result struct {
	// OfferedLoad echoes the configured injection rate (bytes/ns/node).
	OfferedLoad float64
	// Accepted is the delivered traffic within the measurement window, in
	// bytes/ns per node — the paper's x-axis.
	Accepted float64
	// MeanLatencyNs and P99LatencyNs summarize generation-to-delivery
	// latency of packets delivered within the window — the paper's y-axis.
	MeanLatencyNs, P99LatencyNs, MaxLatencyNs float64
	// MeanNetLatencyNs is the mean injection-to-delivery latency: the
	// time inside the fabric, excluding source queueing.
	MeanNetLatencyNs float64
	// MaxLinkUtilization and MeanLinkUtilization summarize the fraction of
	// the run each directed switch-output link spent transmitting
	// (endnode injection links excluded from Mean; Max covers all).
	MaxLinkUtilization, MeanLinkUtilization float64
	// DeliveredWindow / GeneratedWindow count packets inside the window.
	DeliveredWindow, GeneratedWindow int64
	// OutOfOrder counts deliveries that arrived behind a later-generated
	// packet of the same (source, destination) flow — the reordering the
	// IBA's per-path determinism avoids and multipath spreading risks.
	// Tracked for fabrics up to 4096 nodes; -1 means not tracked.
	OutOfOrder int64
	// PortStats carries per-directed-link statistics, busiest first, when
	// Config.CollectPortStats is set.
	PortStats []PortStat
	// Traces carries the recorded packet timelines when Config.TracePackets
	// is positive.
	Traces []*PacketTrace
	// Series carries the delivery time series when
	// Config.SeriesIntervalNs is positive.
	Series []SeriesPoint
	// TotalDelivered / TotalGenerated count packets over the whole run.
	TotalDelivered, TotalGenerated int64
	// InFlightAtEnd = TotalGenerated - TotalDelivered - DroppedTotal:
	// packets still queued or in the fabric when the run stopped.
	InFlightAtEnd int64
	// Events is the number of simulator events processed — typed event
	// records dispatched by the engine loop (generation, routing, arrivals,
	// deliveries, credits, arbitration kicks and buffer releases). The count
	// is deterministic for a configuration and seed, and independent of
	// which scheduler path (calendar queue or fallback heap) carried each
	// event.
	Events int64
	// EndTime is the simulated timestamp the run stopped at.
	EndTime Time
	// Saturated reports whether accepted traffic fell more than 2% below
	// offered traffic, i.e. the operating point is past the knee.
	Saturated bool

	// Fault-injection outcomes; all zero unless Config.FaultPlan ran.

	// DroppedTotal / DroppedWindow count packets lost at dead links over the
	// whole run and inside the measurement window.
	DroppedTotal, DroppedWindow int64
	// DroppedAtDeadLink counts packets a live forwarding table steered onto
	// a dead output port — the fate of RepairSubnet's broken descending
	// entries and of every stale entry before the repair lands.
	DroppedAtDeadLink int64
	// DroppedOnDeadLink counts packets that were buffered on, serializing
	// on, or injected into a link when it died.
	DroppedOnDeadLink int64
	// Reroutes counts packets steered off a faulty path by fault-avoiding
	// source reselection (FaultPlan.Reselect).
	Reroutes int64
	// LFTUpdates counts applied per-switch staged table updates;
	// LFTEntriesRewritten the individual entries they rewrote.
	LFTUpdates, LFTEntriesRewritten int64
	// BrokenEntries is the number of irreparable descending entries the SM's
	// last sweep reported (they keep pointing at the dead link and drop).
	BrokenEntries int
	// FirstFaultNs is the first link-down time; LastDropNs the last drop.
	FirstFaultNs, LastDropNs Time
	// RecoveryNs is the SM convergence time: last staged table update
	// applied minus first link failure. Zero when no update was needed.
	RecoveryNs Time
	// VerifiedEpochs counts the static-verifier passes a
	// Config.VerifyEpochs run executed (one per SM epoch), and
	// VerifyWarnings the warning-severity findings they reported in total —
	// the dead-link-explained defects of mid-repair tables. Error-severity
	// findings never reach the Result: they fail the run instead.
	VerifiedEpochs, VerifyWarnings int

	// Reliable-transport outcomes; all zero unless Config.Transport ran.

	// P999LatencyNs is the 99.9th-percentile generation-to-delivery latency
	// of window deliveries — the recovery tail retransmissions stretch.
	// (Filled for every run, but only interesting with Transport on.)
	P999LatencyNs float64
	// Retransmits counts retransmission injections; every retransmission
	// re-enters path selection, so an MLID source can steer the retry onto
	// a surviving LID while a SLID source repeats the single path.
	Retransmits int64
	// Failed counts packets whose retry budget ran out and that never
	// reached their destination: the transport gave up and the loss is
	// explicit. (A packet that was delivered but whose every acknowledgment
	// died is abandoned by its sender without being counted here — it is
	// delivered, just unconfirmed.) With Transport on,
	// InFlightAtEnd = TotalGenerated - TotalDelivered - Failed (dropped
	// copies are retried, not lost), and a fully-drained run has
	// InFlightAtEnd == 0: zero silent loss.
	Failed int64
	// DupDeliveries counts copies the receiver discarded as duplicates
	// (late originals after a spurious retransmission, or repeated
	// retransmissions racing their ACKs).
	DupDeliveries int64
	// AcksSent / NaksSent count control packets injected on the management
	// VL; CtrlBytesSent is their total size — the ACK traffic overhead.
	AcksSent, NaksSent int64
	CtrlBytesSent      int64
	// LastRecoveredNs is the delivery time of the last accepted
	// retransmission: the time-to-last-recovered-delivery of the run.
	LastRecoveredNs Time
	// DrainedNs is the post-generation drain horizon the run waited for
	// outstanding retransmissions (TransportConfig.DrainNs after defaults).
	DrainedNs Time

	// In-band subnet management counters (FaultPlan.InBandSM; all zero
	// under the oracle SM).
	//
	// TrapsSent counts raised traps; TrapsLost the ones that died to the
	// loss probability or a broken management path; TrapsDelivered the ones
	// that reached the active SM.
	TrapsSent, TrapsLost, TrapsDelivered int64
	// SMSweeps counts periodic sweep ticks; SweepDetections the sweeps
	// whose port-state diff found knowledge the traps had lost.
	SMSweeps, SweepDetections int64
	// SMPsSent counts LFT-update SMP transmissions (first sends and
	// retries); SMPRetries just the retries; SMPFailed the transactions
	// whose retry budget ran out (parked until a sweep re-drove them).
	SMPsSent, SMPRetries, SMPFailed int64
	// Failovers counts standby takeovers (and sticky take-backs).
	Failovers int64
	// PartitionEvents counts the SM's transitions into a partitioned
	// verdict: repair could not restore full reachability.
	PartitionEvents int64
	// UnreachableDegraded counts packets senders wrote off because the SM
	// declared their destination unreachable — graceful degradation instead
	// of burned retries, kept apart from Failed. With Transport on the
	// conservation identity becomes InFlightAtEnd = TotalGenerated -
	// TotalDelivered - Failed - UnreachableDegraded.
	UnreachableDegraded int64
}
