package sim

import "testing"

func TestEngineOrdersByTime(t *testing.T) {
	var e engine
	var got []int
	e.at(30, func() { got = append(got, 3) })
	e.at(10, func() { got = append(got, 1) })
	e.at(20, func() { got = append(got, 2) })
	n := e.runUntil(100)
	if n != 3 {
		t.Fatalf("processed %d events", n)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.now != 30 {
		t.Fatalf("now = %d", e.now)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.at(5, func() { got = append(got, i) })
	}
	e.runUntil(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	var e engine
	ran := false
	e.at(50, func() { ran = true })
	if n := e.runUntil(49); n != 0 || ran {
		t.Fatal("event beyond horizon ran")
	}
	if n := e.runUntil(50); n != 1 || !ran {
		t.Fatal("event at horizon skipped")
	}
}

func TestEngineClampsPastScheduling(t *testing.T) {
	var e engine
	var at Time = -1
	e.at(10, func() {
		// Scheduling in the past clamps to now.
		e.at(3, func() { at = e.now })
	})
	e.runUntil(100)
	if at != 10 {
		t.Fatalf("past event ran at %d, want 10", at)
	}
}

func TestEngineCascade(t *testing.T) {
	var e engine
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.after(7, step)
		}
	}
	e.at(0, step)
	e.runUntil(1000)
	if count != 5 || e.now != 28 {
		t.Fatalf("count=%d now=%d", count, e.now)
	}
}
