package sim

import "testing"

// mark builds a recognizable test event; the engine never interprets fields,
// so evGenerate with a as the payload works as a plain marker.
func mark(v int32) event { return event{kind: evGenerate, a: v} }

// drain pops every event with t <= end and returns the marker payloads.
func drain(e *engine, end Time) []int32 {
	var got []int32
	for {
		ev, ok := e.pop(end)
		if !ok {
			return got
		}
		got = append(got, ev.a)
	}
}

// engineModes runs a subtest against both scheduler paths.
func engineModes(t *testing.T, fn func(t *testing.T, e *engine)) {
	t.Run("calendar", func(t *testing.T) { fn(t, &engine{}) })
	t.Run("heap", func(t *testing.T) { fn(t, &engine{heapOnly: true}) })
}

func TestEngineOrdersByTime(t *testing.T) {
	engineModes(t, func(t *testing.T, e *engine) {
		e.schedule(30, mark(3))
		e.schedule(10, mark(1))
		e.schedule(20, mark(2))
		got := drain(e, 100)
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("order = %v", got)
		}
		if e.now != 30 {
			t.Fatalf("now = %d", e.now)
		}
	})
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	engineModes(t, func(t *testing.T, e *engine) {
		for i := int32(0); i < 10; i++ {
			e.schedule(5, mark(i))
		}
		for i, v := range drain(e, 5) {
			if v != int32(i) {
				t.Fatalf("same-time events reordered at %d: got %d", i, v)
			}
		}
	})
}

func TestEngineStopsAtHorizon(t *testing.T) {
	engineModes(t, func(t *testing.T, e *engine) {
		e.schedule(50, mark(1))
		if _, ok := e.pop(49); ok {
			t.Fatal("event beyond horizon ran")
		}
		if e.pending() != 1 {
			t.Fatal("event dropped by a too-early pop")
		}
		if ev, ok := e.pop(50); !ok || ev.a != 1 {
			t.Fatal("event at horizon skipped")
		}
	})
}

func TestEngineClampsPastScheduling(t *testing.T) {
	engineModes(t, func(t *testing.T, e *engine) {
		e.schedule(10, mark(1))
		ev, _ := e.pop(100)
		if ev.a != 1 || e.now != 10 {
			t.Fatalf("first pop: ev.a=%d now=%d", ev.a, e.now)
		}
		// Scheduling in the past clamps to now.
		e.schedule(3, mark(2))
		ev, ok := e.pop(100)
		if !ok || ev.a != 2 || ev.t != 10 || e.now != 10 {
			t.Fatalf("past event ran at %d (now %d), want 10", ev.t, e.now)
		}
	})
}

func TestEngineCascade(t *testing.T) {
	engineModes(t, func(t *testing.T, e *engine) {
		// Each popped event schedules its successor 7 ns later, as the
		// simulator's generators do.
		e.schedule(0, mark(0))
		count := int32(0)
		for {
			ev, ok := e.pop(1000)
			if !ok {
				break
			}
			count++
			if ev.a < 4 {
				e.schedule(e.now+7, mark(ev.a+1))
			}
		}
		if count != 5 || e.now != 28 {
			t.Fatalf("count=%d now=%d", count, e.now)
		}
	})
}

// TestEngineCalendarHeapInterleave mixes near-horizon calendar events with
// far-future heap events, including an exact time tie across the two
// structures, and requires global (t, seq) order. As time advances, events
// scheduled into the heap (beyond the horizon at schedule time) are popped
// correctly even once they fall inside the calendar window.
func TestEngineCalendarHeapInterleave(t *testing.T) {
	var e engine
	e.schedule(calSize+100, mark(4)) // beyond horizon: heap (seq 1)
	e.schedule(50, mark(1))          // calendar
	e.schedule(calSize+100, mark(5)) // heap, same tick as seq 1: runs after it
	e.schedule(60, mark(2))          // calendar
	e.schedule(calSize-1, mark(3))   // last calendar tick

	want := []int32{1, 2, 3, 4, 5}
	for i, w := range want {
		ev, ok := e.pop(1 << 40)
		if !ok || ev.a != w {
			t.Fatalf("pop %d: got %v (ok=%v), want %d", i, ev.a, ok, w)
		}
		if i == 2 {
			// Calendar is drained; schedule a tie against the heap head at
			// calSize+100: the heap event has the older seq and must win.
			e.schedule(calSize+100, mark(6))
		}
	}
	ev, ok := e.pop(1 << 40)
	if !ok || ev.a != 6 {
		t.Fatalf("tie-broken calendar event: got %v (ok=%v), want 6", ev.a, ok)
	}
	if _, ok := e.pop(1 << 40); ok {
		t.Fatal("queue should be empty")
	}
}
