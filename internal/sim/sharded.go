package sim

import (
	"fmt"
	"sort"
	"sync"

	"mlid/internal/topology"
)

// Sharded parallel execution (Config.Shards > 1).
//
// The fabric is partitioned into per-leaf-group lanes (topology.ShardOfSwitch
// / ShardOfNode): each lane is a shallow copy of one master Sim that owns the
// ports, queues, flow-control state and endnodes of its shard plus a private
// event engine, packet slab and statistics collectors, while sharing the big
// read-mostly arrays (forwarding tables, topology, port metadata) with every
// other lane. Lanes run on worker goroutines under a conservative time-window
// barrier: all pending events across all lanes sit at or after some time T,
// and because every cross-shard event the model can produce travels a link
// (min delay Config.FlyNs), nothing a lane executes inside [T, T+FlyNs) can
// affect another lane inside the same window. Each window, every lane
// executes its local events up to the bound, recording every schedule() call
// it makes; a serial barrier replay then merges the per-lane execution logs
// in global (time, sequence) order and assigns each recorded call the virtual
// global sequence number (VGS) the classic single-engine run would have
// assigned, after which lanes insert the handed-off events — sorted by VGS —
// into their engines and the next window begins.
//
// The VGS replay is what makes the result bit-for-bit identical to the
// single-engine run for every shard count: event keys (t, seq) come out
// exactly equal to the sequential engine's, so every queue, arbiter,
// round-robin pointer and RNG draws in the identical order. Events that read
// state spanning shards — fault injection, SM traps and table updates, and
// exhausted retransmit timers (whose handler reads the receiver's PSN state)
// — never run inside a window: they are "globals", executed by the
// coordinator between windows when every lane has drained strictly below
// their key. See DESIGN.md, "Sharded engine and conservative lookahead".

// laneGlobal marks an event owned by the coordinator, not any lane.
const laneGlobal = -1

// Worker commands (shardCtx.cmds).
const (
	cmdWindow = iota
	cmdDistribute
)

// laneCall is one schedule() call recorded during a window, in call order.
// Its position in the log defines its provisional key (c0 + index + 1); the
// barrier replay fills vgs with the true global sequence number.
type laneCall struct {
	ev     event
	vgs    uint64
	xp     int32 // index into the lane's xpkts for a cross-shard packet copy; -1 otherwise
	target int16 // destination lane, or laneGlobal
	// executed marks a self-targeted call already dispatched inside the same
	// window (via the window heap) — the distribute phase must not re-insert
	// it.
	executed bool
}

// laneExec is one event executed during a window, in local execution order.
// key is the event's engine sequence (a true VGS) or, for an event scheduled
// and executed inside the same window, its provisional key (> the window's
// c0). firstCall/nCalls delimit the schedule() calls its handler made.
type laneExec struct {
	t         Time
	key       uint64
	firstCall int32
	nCalls    int32
}

// shardCtx is a lane's window-recording state plus its link back to the
// coordinator. The master Sim carries one too (id laneGlobal) so its setup
// scheduling routes through the coordinator.
type shardCtx struct {
	id  int
	run *shardedRun

	// Window recording: the call log, the execution log, copies of packets
	// handed across shards, and the per-destination outboxes (indices into
	// calls). globalOut collects calls targeting the coordinator. Other lanes
	// and the coordinator read these buffers, so they are only coherent at
	// barriers (or from the owning lane inside its window); the shardsafe
	// analyzer restricts access to audited protocol functions.
	calls     []laneCall // shardsafe: barrier-only
	execs     []laneExec // shardsafe: barrier-only
	xpkts     []pkt      // shardsafe: barrier-only
	outbox    [][]int32  // shardsafe: barrier-only
	globalOut []int32    // shardsafe: barrier-only

	// winHeap holds self-targeted calls due inside the current window,
	// keyed by (t, provisional sequence).
	winHeap eventHeap

	// insertBuf is the distribute phase's scratch batch, reused across
	// windows.
	insertBuf []event

	// errSeen latches the first window in which the lane's Sim recorded an
	// error; errExec is that window's failing execution-log index, consumed
	// (and reset to -1) by the barrier replay.
	errSeen bool
	errExec int32

	cmds chan int
}

// shardedRun is the coordinator: the master Sim (holds configuration and
// receives the merged results), the lanes, the global event heap, and the
// virtual-global-sequence counter.
type shardedRun struct {
	master *Sim
	lanes  []*Sim
	n      int

	laneOfSw   []int16
	laneOfNode []int16
	laneOfPid  []int16

	// counter is the virtual global sequence: it replicates, across all
	// lanes, exactly the sequence numbering the single engine would have
	// assigned. c0 snapshots it at each window start; boundT/boundSeq is the
	// current window's exclusive (t, seq) bound; recording flips on only
	// while workers execute a window.
	counter   uint64
	c0        uint64
	boundT    Time
	boundSeq  uint64
	recording bool

	// lookahead is the minimum cross-shard event delay: every cross-shard
	// event travels a link, so FlyNs.
	lookahead Time

	// globals holds coordinator-executed events keyed by (t, vgs).
	globals eventHeap

	// maxExecT / events track the merged run's end time and event count.
	maxExecT Time
	events   int64

	curBuf []int

	done chan struct{}
	wg   sync.WaitGroup
}

// effectiveShards resolves Config.Shards to the lane count a run will use:
// 0/1 (or any configuration the sharded path cannot reproduce exactly) is the
// classic single-engine path, anything larger is clamped to the tree's leaf
// group count. Packet tracing and an external LatencyHist observe per-packet
// state in engine order from a single collector, and a FlyNs below 1 ns
// leaves no conservative lookahead window — those run single-engine.
func (c Config) effectiveShards() int {
	n := c.Shards
	if n <= 1 {
		return 1
	}
	if c.TracePackets > 0 || c.LatencyHist != nil || c.FlyNs < 1 {
		return 1
	}
	if max := c.Subnet.Tree.MaxShards(); n > max {
		n = max
	}
	return n
}

// runSharded executes one simulation on n lanes. The setup — fault plan and
// generator seeding — runs single-threaded on the master in exactly the
// classic order, so the virtual global sequence starts out identical; the
// window loop then preserves it event by event.
func runSharded(cfg Config, n int) (Result, error) {
	master := build(cfg)
	master.end = cfg.WarmupNs + cfg.MeasureNs

	r := newShardedRun(master, n)

	master.scheduleFaults()
	ia := master.interarrival()
	for i := range master.nodes {
		nd := &master.nodes[i]
		nd.genPhase = nd.rng.Float64() * ia
		master.schedule(genTimeAt(nd.genPhase, ia, 0), event{kind: evGenerate, a: int32(i)})
	}

	horizon := master.end
	if master.transport != nil {
		horizon += master.transport.cfg.DrainNs
	}
	r.run(horizon)
	r.merge()
	if master.err != nil {
		return Result{}, master.err
	}
	return master.buildResult(horizon, r.events), nil
}

func newShardedRun(master *Sim, n int) *shardedRun {
	t := master.tree
	S, M, N := t.Switches(), t.M(), t.Nodes()
	r := &shardedRun{
		master:     master,
		n:          n,
		laneOfSw:   make([]int16, S),
		laneOfNode: make([]int16, N),
		laneOfPid:  make([]int16, S*M+N),
		lookahead:  master.cfg.FlyNs,
		curBuf:     make([]int, n),
		done:       make(chan struct{}, n),
	}
	for sw := 0; sw < S; sw++ {
		lane := int16(t.ShardOfSwitch(n, topology.SwitchID(sw)))
		r.laneOfSw[sw] = lane
		for k := 0; k < M; k++ {
			r.laneOfPid[sw*M+k] = lane
		}
	}
	for i := 0; i < N; i++ {
		lane := int16(t.ShardOfNode(n, topology.NodeID(i)))
		r.laneOfNode[i] = lane
		r.laneOfPid[int(master.srcBase)+i] = lane
	}
	r.lanes = make([]*Sim, n)
	for id := 0; id < n; id++ {
		r.lanes[id] = r.newLane(id)
	}
	// The master routes its setup scheduling through the coordinator but
	// never executes events itself.
	master.shard = &shardCtx{id: laneGlobal, run: r}
	return r
}

// newLane builds lane id as a shallow copy of the master: shared read-mostly
// arrays and partitioned-by-ownership model state, with a private engine,
// packet slab, statistics and transport counters.
//
// shardsafe: barrier — lanes are constructed before any worker starts.
func (r *shardedRun) newLane(id int) *Sim {
	l := &Sim{}
	*l = *r.master
	l.engine = engine{heapOnly: r.master.engine.heapOnly}
	if r.master.transport != nil {
		tr := *r.master.transport
		l.transport = &tr
	}
	l.shard = &shardCtx{
		id:      id,
		run:     r,
		outbox:  make([][]int32, r.n),
		errExec: -1,
		cmds:    make(chan int, 1),
	}
	return l
}

// route returns the lane owning an event, or laneGlobal for the coordinator:
// fault and SM events (they touch arbitrary shards' ports and the shared
// tables), and a retransmit timer whose budget is exhausted — its handler
// reads the receiver's PSN state, which lives on the destination's lane. The
// head's attempt count is frozen between arming and firing (any change
// re-arms a fresh timer, invalidating this one), so classifying at arm time
// is exact.
func (r *shardedRun) route(s *Sim, ev event) int {
	switch ev.kind {
	case evGenerate, evNodeArrive, evDeliver:
		return int(r.laneOfNode[ev.a])
	case evRoute, evSwArrive:
		return int(r.laneOfSw[ev.a])
	case evCredit, evKick, evRelease:
		return int(r.laneOfPid[ev.a])
	case evRexmit:
		if ev.pi != 0 {
			// A drain timer (destination declared unreachable at arm time)
			// reads the receiver's PSN state and the shared SM counters.
			return laneGlobal
		}
		if tp := s.transport; tp != nil {
			if f := &tp.tx[ev.a]; len(f.unacked) > 0 && int(f.unacked[0].attempts) >= tp.cfg.MaxRetries {
				return laneGlobal
			}
		}
		return int(r.laneOfNode[int(ev.a)/s.tree.Nodes()])
	default:
		return laneGlobal
	}
}

// scheduleSharded is the sharded engine's schedule(): outside a window (setup
// and coordinator-executed globals) it assigns the next virtual global
// sequence number and inserts directly; inside a window it appends to the
// lane's call log under a provisional key, staging self-targeted calls due
// before the bound into the window heap and everything else into an outbox
// for the barrier.
//
// shardsafe: barrier — appends only to the executing lane's own buffers
// inside its window (setup-time calls run with no workers live).
func (sh *shardCtx) scheduleSharded(s *Sim, t Time, ev event) {
	r := sh.run
	if t < s.engine.now {
		t = s.engine.now
	}
	ev.t = t
	tgt := r.route(s, ev)
	if !r.recording {
		r.counter++
		ev.seq = r.counter
		if tgt == laneGlobal {
			r.globals.push(ev)
			return
		}
		r.lanes[tgt].engine.insert(ev)
		return
	}
	ci := int32(len(sh.calls))
	c := laneCall{ev: ev, target: int16(tgt), xp: -1}
	switch {
	case tgt == sh.id:
		if t < r.boundT {
			ev.seq = r.c0 + uint64(ci) + 1
			sh.winHeap.push(ev)
		}
	case tgt == laneGlobal:
		sh.globalOut = append(sh.globalOut, ci)
	default:
		if ev.kind == evSwArrive {
			// The packet changes owner: copy it into the handoff buffer and
			// recycle the handle — the sender never touches it again, and the
			// receiver re-materializes it in its own slab at the barrier.
			p := s.pktAt(ev.pi)
			c.xp = int32(len(sh.xpkts))
			sh.xpkts = append(sh.xpkts, *p)
			s.freePkt(p)
		} else if ev.kind != evCredit {
			s.fail(fmt.Errorf("sim: event kind %d crossed shards outside the barrier (sharding bug)", ev.kind))
		}
		sh.outbox[tgt] = append(sh.outbox[tgt], ci)
	}
	sh.calls = append(sh.calls, c)
}

// shardPopNext removes the lane's earliest pending event strictly below the
// (bt, bseq) bound, considering both the engine (true-VGS keys) and the
// window heap (provisional keys; provisional keys exceed every engine key of
// the window, so at equal times the engine side correctly wins).
func (l *Sim) shardPopNext(bt Time, bseq uint64) (event, bool) {
	sh := l.shard
	et, eseq, eok := l.engine.peekKey()
	if len(sh.winHeap) > 0 {
		w := sh.winHeap[0]
		if !eok || w.t < et || (w.t == et && w.seq < eseq) {
			if w.t > bt || (w.t == bt && w.seq >= bseq) {
				return event{}, false
			}
			ev := sh.winHeap.pop()
			l.engine.now = ev.t
			return ev, true
		}
	}
	if !eok {
		return event{}, false
	}
	return l.engine.popBound(bt, bseq)
}

// shardRunWindow executes the lane's events up to the window bound, logging
// each execution and the calls it makes.
//
// shardsafe: barrier — touches only the executing lane's own logs.
func (l *Sim) shardRunWindow() {
	sh := l.shard
	r := sh.run
	bt, bseq := r.boundT, r.boundSeq
	for {
		ev, ok := l.shardPopNext(bt, bseq)
		if !ok {
			break
		}
		if ev.seq > r.c0 {
			sh.calls[int(ev.seq-r.c0-1)].executed = true
		}
		fc := int32(len(sh.calls))
		l.dispatch(ev)
		if l.err != nil && !sh.errSeen {
			sh.errSeen = true
			sh.errExec = int32(len(sh.execs))
		}
		sh.execs = append(sh.execs, laneExec{
			t: ev.t, key: ev.seq, firstCall: fc, nCalls: int32(len(sh.calls)) - fc,
		})
	}
}

// shardDistribute inserts the lane's share of the window's recorded calls
// into its engine: its own not-yet-executed self-targeted calls plus every
// other lane's outbox for it, sorted by VGS so calendar buckets keep their
// append-order-is-seq-order invariant. Cross-shard packets are
// re-materialized in the receiving lane's slab here.
//
// shardsafe: barrier — runs in the distribute phase, when every lane has
// finished its window and the logs are frozen read-only.
func (l *Sim) shardDistribute() {
	sh := l.shard
	r := sh.run
	buf := sh.insertBuf[:0]
	for i := range sh.calls {
		c := &sh.calls[i]
		if int(c.target) != sh.id || c.executed {
			continue
		}
		ev := c.ev
		ev.seq = c.vgs
		buf = append(buf, ev)
	}
	for _, src := range r.lanes {
		if src == l {
			continue
		}
		ssh := src.shard
		for _, ci := range ssh.outbox[sh.id] {
			c := &ssh.calls[ci]
			ev := c.ev
			ev.seq = c.vgs
			if c.xp >= 0 {
				q := l.newPkt()
				idx := q.idx
				*q = ssh.xpkts[c.xp]
				q.idx = idx
				ev.pi = idx
			}
			buf = append(buf, ev)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	for _, ev := range buf {
		l.engine.insert(ev)
	}
	sh.insertBuf = buf
}

// worker is one lane's goroutine: it parks on its command channel and runs
// window and distribute phases until the channel closes. All coordination is
// single-case channel operations — deterministic, no selects.
func (r *shardedRun) worker(l *Sim) {
	defer r.wg.Done()
	for cmd := range l.shard.cmds {
		if cmd == cmdWindow {
			l.shardRunWindow()
		} else {
			l.shardDistribute()
		}
		r.done <- struct{}{}
	}
}

// replay is the serial barrier step: it merges the lanes' execution logs in
// global (t, key) order — resolving provisional keys through the call log,
// which is always possible because a provisionally-keyed event's scheduler
// sits earlier in the same lane's log — and assigns each recorded call its
// virtual global sequence number in exactly the order the single engine
// would have. It then forwards worker-recorded globals to the coordinator
// heap and settles the window's first error, if any.
//
// shardsafe: barrier — serial coordinator step, all workers parked.
func (r *shardedRun) replay() {
	cur := r.curBuf
	for i := range cur {
		cur[i] = 0
	}
	for {
		best := -1
		var bt Time
		var bk uint64
		for li, l := range r.lanes {
			sh := l.shard
			ci := cur[li]
			if ci >= len(sh.execs) {
				continue
			}
			ex := &sh.execs[ci]
			k := ex.key
			if k > r.c0 {
				k = sh.calls[int(k-r.c0-1)].vgs
			}
			if best < 0 || ex.t < bt || (ex.t == bt && k < bk) {
				best, bt, bk = li, ex.t, k
			}
		}
		if best < 0 {
			break
		}
		sh := r.lanes[best].shard
		ex := &sh.execs[cur[best]]
		for j := int32(0); j < ex.nCalls; j++ {
			r.counter++
			sh.calls[ex.firstCall+j].vgs = r.counter
		}
		r.events++
		if ex.t > r.maxExecT {
			r.maxExecT = ex.t
		}
		cur[best]++
	}
	for _, l := range r.lanes {
		sh := l.shard
		for _, ci := range sh.globalOut {
			c := &sh.calls[ci]
			gev := c.ev
			gev.seq = c.vgs
			r.globals.push(gev)
		}
	}
	if r.master.err == nil {
		best := -1
		var bt Time
		var bk uint64
		for li, l := range r.lanes {
			sh := l.shard
			if sh.errExec < 0 {
				continue
			}
			ex := &sh.execs[sh.errExec]
			k := ex.key
			if k > r.c0 {
				k = sh.calls[int(k-r.c0-1)].vgs
			}
			if best < 0 || ex.t < bt || (ex.t == bt && k < bk) {
				best, bt, bk = li, ex.t, k
			}
		}
		if best >= 0 {
			r.master.err = r.lanes[best].err
		}
	}
	for _, l := range r.lanes {
		l.shard.errExec = -1
	}
}

// window runs one barrier cycle: parallel execution up to the bound, serial
// VGS replay, parallel handoff insertion, serial buffer reset.
//
// shardsafe: barrier — the buffer reset runs after the distribute barrier,
// with all workers parked.
func (r *shardedRun) window(bt Time, bseq uint64) {
	r.c0 = r.counter
	r.boundT, r.boundSeq = bt, bseq
	r.recording = true
	for _, l := range r.lanes {
		l.shard.cmds <- cmdWindow
	}
	for range r.lanes {
		<-r.done
	}
	r.recording = false
	r.replay()
	for _, l := range r.lanes {
		l.shard.cmds <- cmdDistribute
	}
	for range r.lanes {
		<-r.done
	}
	// Reset the window buffers only now: during distribute every lane reads
	// every other lane's call log.
	for _, l := range r.lanes {
		sh := l.shard
		sh.calls = sh.calls[:0]
		sh.execs = sh.execs[:0]
		sh.xpkts = sh.xpkts[:0]
		sh.globalOut = sh.globalOut[:0]
		for i := range sh.outbox {
			sh.outbox[i] = sh.outbox[i][:0]
		}
		sh.winHeap = sh.winHeap[:0]
	}
}

// executeGlobal runs one coordinator event under the barrier: every lane's
// clock advances to its time (every lane has drained strictly below its key,
// so no clock moves backward), and the handler runs on the Sim owning the
// state it touches, so its counters and any events it schedules land on the
// right lane.
func (r *shardedRun) executeGlobal(ev event) {
	for _, l := range r.lanes {
		l.engine.now = ev.t
	}
	if ev.t > r.maxExecT {
		r.maxExecT = ev.t
	}
	r.events++
	l0 := r.lanes[0]
	switch ev.kind {
	case evLinkDown:
		a, b := l0.linkEnds(ev.a, int(ev.b))
		if a >= 0 {
			r.lanes[r.laneOfPid[a]].killPort(a)
		}
		if b >= 0 {
			r.lanes[r.laneOfPid[b]].killPort(b)
		}
		l0.markLinkDown(ev.a, int(ev.b))
	case evLinkUp:
		l0.linkUp(ev.a, int(ev.b))
	case evTrap:
		l0.smTrap()
	case evLFTUpdate:
		l0.applyLFTUpdate(int(ev.a))
	case evRexmit:
		src := ev.a / int32(l0.tree.Nodes())
		r.lanes[r.laneOfNode[src]].rexmitTimer(ev.a, ev.b, ev.pi != 0)
	case evTrapArrive:
		l0.trapArrive(ev.a, ev.b, ev.pi != 0)
	case evSMSweep:
		l0.smSweep()
	case evSMPArrive:
		l0.smpArrive(int(ev.a))
	case evSMPAck:
		l0.smpAck(int(ev.a))
	case evSMPTimeout:
		l0.smpTimeout(int(ev.a), ev.b)
	default:
		l0.fail(fmt.Errorf("sim: unknown event kind %d (engine bug)", ev.kind))
	}
	if r.master.err == nil {
		for _, l := range r.lanes {
			if l.err != nil {
				r.master.err = l.err
				l.shard.errSeen = true
				break
			}
		}
	}
}

// run is the coordinator loop: execute due globals, open a window bounded by
// the lookahead (cut early at the next global's key and capped at the
// horizon), repeat until nothing at or before the horizon remains.
func (r *shardedRun) run(horizon Time) {
	r.wg.Add(r.n)
	for _, l := range r.lanes {
		go r.worker(l)
	}
	defer func() {
		for _, l := range r.lanes {
			close(l.shard.cmds)
		}
		r.wg.Wait()
	}()
	for {
		for len(r.globals) > 0 {
			g := r.globals[0]
			if g.t > horizon {
				break
			}
			if mt, ms, any := r.minLaneKey(); any && (mt < g.t || (mt == g.t && ms < g.seq)) {
				break
			}
			r.globals.pop()
			r.executeGlobal(g)
		}
		mt, _, any := r.minLaneKey()
		if !any || mt > horizon {
			break
		}
		bt := mt + r.lookahead
		var bseq uint64
		if len(r.globals) > 0 && r.globals[0].t < bt {
			bt, bseq = r.globals[0].t, r.globals[0].seq
		}
		if bt > horizon {
			bt, bseq = horizon+1, 0
		}
		r.window(bt, bseq)
	}
}

// minLaneKey returns the smallest pending (t, seq) key across all lanes.
func (r *shardedRun) minLaneKey() (Time, uint64, bool) {
	var bt Time
	var bs uint64
	ok := false
	for _, l := range r.lanes {
		t, sq, has := l.engine.peekKey()
		if !has {
			continue
		}
		if !ok || t < bt || (t == bt && sq < bs) {
			bt, bs, ok = t, sq, true
		}
	}
	return bt, bs, ok
}

// merge folds every lane's counters, collectors and series back into the
// master Sim, which buildResult then reads exactly as on the classic path.
// Sums are order-independent; the latency sums are integer-valued floats, so
// they are exact (see stats.LatencyCollector.Merge).
func (r *shardedRun) merge() {
	m := r.master
	for _, l := range r.lanes {
		m.totalGenerated += l.totalGenerated
		m.totalDelivered += l.totalDelivered
		m.generatedWindow += l.generatedWindow
		m.deliveredWindow += l.deliveredWindow
		m.deliveredBytesWindow += l.deliveredBytesWindow
		m.outOfOrder += l.outOfOrder
		m.warmSink += l.warmSink
		m.lat.Merge(&l.lat)
		m.netLat.Merge(&l.netLat)
		if l.lastDelivery > m.lastDelivery {
			m.lastDelivery = l.lastDelivery
		}
		m.droppedTotal += l.droppedTotal
		m.droppedWindow += l.droppedWindow
		m.droppedAtDeadLink += l.droppedAtDeadLink
		m.droppedOnDeadLink += l.droppedOnDeadLink
		m.reroutes += l.reroutes
		m.lftUpdates += l.lftUpdates
		m.lftEntriesRewritten += l.lftEntriesRewritten
		if l.lastDropNs > m.lastDropNs {
			m.lastDropNs = l.lastDropNs
		}
		if m.transport != nil {
			mt, lt := m.transport, l.transport
			mt.retransmits += lt.retransmits
			mt.failed += lt.failed
			mt.dupDeliveries += lt.dupDeliveries
			mt.acksSent += lt.acksSent
			mt.naksSent += lt.naksSent
			mt.ctrlBytes += lt.ctrlBytes
			if lt.lastRecoveredNs > mt.lastRecoveredNs {
				mt.lastRecoveredNs = lt.lastRecoveredNs
			}
		}
		for len(m.seriesBytes) < len(l.seriesBytes) {
			m.seriesBytes = append(m.seriesBytes, 0)
			m.seriesCount = append(m.seriesCount, 0)
			m.seriesLat = append(m.seriesLat, 0)
			m.seriesDropped = append(m.seriesDropped, 0)
			m.seriesReroutes = append(m.seriesReroutes, 0)
			m.seriesRexmit = append(m.seriesRexmit, 0)
			m.seriesFailed = append(m.seriesFailed, 0)
			m.seriesUnreachable = append(m.seriesUnreachable, 0)
		}
		for i := range l.seriesBytes {
			m.seriesBytes[i] += l.seriesBytes[i]
			m.seriesCount[i] += l.seriesCount[i]
			m.seriesLat[i] += l.seriesLat[i]
			m.seriesDropped[i] += l.seriesDropped[i]
			m.seriesReroutes[i] += l.seriesReroutes[i]
			m.seriesRexmit[i] += l.seriesRexmit[i]
			m.seriesFailed[i] += l.seriesFailed[i]
			m.seriesUnreachable[i] += l.seriesUnreachable[i]
		}
	}
	m.now = r.maxExecT
}
