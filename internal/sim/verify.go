package sim

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/verify"
)

// verifyEpoch runs the static verifier (package verify) over the live
// forwarding tables, called at the end of every subnet-manager epoch — each
// smTrap sweep and each applied staged table update — when
// Config.VerifyEpochs is set. The contract it enforces is the verify
// package's severity rule: mid-repair tables may contain dead-link-explained
// defects (warnings — those packets drop observably), but never a forwarding
// loop, a credit-cycle, a dead end, or a misdelivery the recorded faults do
// not explain. Any error-severity finding fails the run, with the finding as
// the error text.
//
// The pass also cross-checks the compiled forwarding rows against the live
// tables entry by entry, so a recompile bug in applyLFTUpdate (the hot path
// reads only the compiled form) cannot hide behind a clean table.
//
// Everything here is cold path: it runs a handful of times per run, never
// per packet. Under the sharded engine the caller is always lane 0 executing
// a coordinator event under the barrier — every other lane is parked, and
// lfts / fwd16 / faults are shared — so the pass reads a quiescent fabric
// and its counters (kept on the shared faultRun) need no merge.
func (s *Sim) verifyEpoch() {
	if s.err != nil {
		return
	}
	dead := make([][2]int32, len(s.faults.deadLinks))
	copy(dead, s.faults.deadLinks)
	in := verify.Input{
		Tree:      s.tree,
		Endports:  s.cfg.Subnet.Endports,
		LFTs:      s.lfts,
		Engine:    s.cfg.Subnet.Engine,
		DeadLinks: dead,
	}
	opt := verify.Options{VLs: s.cfg.DataVLs, SkipQuality: true}
	if s.cfg.VLSelect == VLByDLID {
		opt.VLOf = func(dlid ib.LID, vls int) int { return int(dlid) % vls }
	}
	rep, err := verify.Run(in, opt)
	if err != nil {
		s.fail(fmt.Errorf("sim: epoch verification at %d ns: %w", s.now, err))
		return
	}
	s.faults.verifiedEpochs++
	s.faults.verifyWarnings += rep.Warnings()
	if n := rep.Errors(); n > 0 {
		for _, f := range rep.Findings {
			if f.Severity == verify.Error {
				s.fail(fmt.Errorf("sim: epoch verification at %d ns found %d error(s); first: %s",
					s.now, n, f.String()))
				return
			}
		}
	}
	s.verifyCompiledRows()
}

// verifyCompiledRows proves the compiled forwarding rows agree with the live
// tables: for every (switch, DLID) the fused row must hold exactly
// compileEntry(switch, LFT entry). This is the static twin of the
// applyLFTUpdate recompile path — the hot path never consults the LFTs, so
// only this check ties what packets experience back to what the SM wrote.
func (s *Sim) verifyCompiledRows() {
	for sw := range s.lfts {
		base := sw * s.lftSize
		lft := s.lfts[sw]
		for lid := 0; lid < s.lftSize; lid++ {
			want := s.compileEntry(int32(sw), lft.Port(ib.LID(lid)))
			if got := s.fwdAt(base + lid); got != want {
				s.fail(fmt.Errorf("sim: epoch verification at %d ns: compiled row of switch %d stale at DLID %d: holds port id %d, table compiles to %d",
					s.now, sw, lid, got, want))
				return
			}
		}
	}
}
