package sim

import "testing"

// withHeapOnlyEngine runs fn with the calendar queue disabled, forcing every
// event through the far-heap fallback path.
func withHeapOnlyEngine[T any](t *testing.T, fn func() T) T {
	t.Helper()
	engineHeapOnly = true
	defer func() { engineHeapOnly = false }()
	return fn()
}
