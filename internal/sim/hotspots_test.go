package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestMultiHotspotDilution: spreading the concentrated fraction over more
// hotspot destinations multiplies the aggregate sink capacity, so accepted
// traffic at a fixed offered load must not decrease with the hotspot count
// and must clearly improve from 1 to 4 hotspots.
func TestMultiHotspotDilution(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	run := func(hotspots []int) Result {
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.MultiHotspot{Nodes: sn.Tree.Nodes(), Hotspots: hotspots, Fraction: 0.5},
			OfferedLoad: 0.5,
			WarmupNs:    50_000,
			MeasureNs:   200_000,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Hotspots on distinct leaves so their sinks do not share links.
	one := run([]int{0})
	four := run([]int{0, 5, 10, 15})
	if four.Accepted < one.Accepted*1.5 {
		t.Errorf("4 hotspots accepted %.4f, 1 hotspot %.4f — expected clear dilution gain",
			four.Accepted, one.Accepted)
	}
}

// TestLocalTrafficBeatsUniform: with strong locality most packets cross a
// single switch, so at a load where uniform traffic saturates, local
// traffic still tracks the offered rate and with much lower latency.
func TestLocalTrafficBeatsUniform(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	run := func(p traffic.Pattern) Result {
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     p,
			OfferedLoad: 0.85,
			WarmupNs:    50_000,
			MeasureNs:   150_000,
			Seed:        5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(traffic.Local{Nodes: sn.Tree.Nodes(), LeafSize: sn.Tree.H(), Locality: 0.9})
	uniform := run(traffic.Uniform{Nodes: sn.Tree.Nodes()})
	if local.Accepted <= uniform.Accepted {
		t.Errorf("local accepted %.4f <= uniform %.4f", local.Accepted, uniform.Accepted)
	}
	if local.MeanLatencyNs >= uniform.MeanLatencyNs {
		t.Errorf("local latency %.0f >= uniform %.0f", local.MeanLatencyNs, uniform.MeanLatencyNs)
	}
}

// TestTornadoIsBenignOnFatTree: tornado is adversarial on tori but a plain
// permutation here; under MLID it must behave like other permutations and
// not collapse.
func TestTornadoIsBenignOnFatTree(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Tornado(sn.Tree.Nodes()),
		OfferedLoad: 0.5,
		WarmupNs:    30_000,
		MeasureNs:   100_000,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Errorf("tornado saturated at 0.5 load: %+v", res)
	}
}
