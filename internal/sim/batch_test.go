package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/topology"
)

func TestBatchSingleMessage(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := RunBatch(BatchConfig{
		Subnet:   sn,
		Messages: []Message{{Src: 0, Dst: 7, Bytes: 256}},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 1 || res.Bytes != 256 {
		t.Fatalf("%+v", res)
	}
	// One uncontended packet across 3 switches: 596 ns.
	if res.MakespanNs != 596 {
		t.Errorf("makespan %d, want 596", res.MakespanNs)
	}
	if res.MeanLatencyNs != 596 {
		t.Errorf("latency %v", res.MeanLatencyNs)
	}
}

func TestBatchMessageSplitsIntoPackets(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := RunBatch(BatchConfig{
		Subnet:   sn,
		Messages: []Message{{Src: 0, Dst: 7, Bytes: 1000}}, // 4 x 256B packets
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 4 || res.Bytes != 4*256 {
		t.Fatalf("%+v", res)
	}
	// Pipelined: first packet 596 ns, each further packet adds one
	// injection serialization plus queueing; makespan must be far below
	// 4 sequential transfers.
	if res.MakespanNs >= 4*596 {
		t.Errorf("makespan %d shows no pipelining", res.MakespanNs)
	}
	if res.MakespanNs <= 596 {
		t.Errorf("makespan %d impossibly fast", res.MakespanNs)
	}
}

func TestBatchValidation(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	if _, err := RunBatch(BatchConfig{Messages: []Message{{Src: 0, Dst: 1, Bytes: 1}}}); err == nil {
		t.Error("nil subnet accepted")
	}
	if _, err := RunBatch(BatchConfig{Subnet: sn}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RunBatch(BatchConfig{Subnet: sn, Messages: []Message{{Src: 0, Dst: 0, Bytes: 1}}}); err == nil {
		t.Error("self message accepted")
	}
	if _, err := RunBatch(BatchConfig{Subnet: sn, Messages: []Message{{Src: 0, Dst: 1, Bytes: 0}}}); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := RunBatch(BatchConfig{Subnet: sn, Messages: []Message{{Src: 0, Dst: 99, Bytes: 1}}}); err == nil {
		t.Error("bad destination accepted")
	}
}

func TestBatchDeadline(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	_, err := RunBatch(BatchConfig{
		Subnet:     sn,
		Messages:   AllToAll(sn.Tree, 4096),
		DeadlineNs: 100, // absurdly short
		Seed:       1,
	})
	if err == nil {
		t.Error("deadline not enforced")
	}
}

// TestBatchGatherMLIDFasterThanSLID: the all-to-one gather is the paper's
// congestion scenario as a collective; MLID's spread ascent and multiple
// descending paths finish it faster.
func TestBatchGatherMLIDFasterThanSLID(t *testing.T) {
	run := func(s core.Scheme) BatchResult {
		sn := mustSubnet(t, 8, 2, s)
		res, err := RunBatch(BatchConfig{
			Subnet:   sn,
			Messages: Gather(sn.Tree, 0, 4*256),
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m, sl := run(core.NewMLID()), run(core.NewSLID())
	if m.MakespanNs >= sl.MakespanNs {
		t.Errorf("gather makespan: MLID %d >= SLID %d", m.MakespanNs, sl.MakespanNs)
	}
}

// TestBatchAllToAllCompletes: the full personalized exchange drains and
// MLID's makespan is no worse than SLID's.
func TestBatchAllToAllCompletes(t *testing.T) {
	run := func(s core.Scheme) BatchResult {
		sn := mustSubnet(t, 8, 2, s)
		res, err := RunBatch(BatchConfig{
			Subnet:   sn,
			Messages: AllToAll(sn.Tree, 256),
			Seed:     5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	m, sl := run(core.NewMLID()), run(core.NewSLID())
	if m.Packets != int64(31*32) {
		t.Fatalf("packets %d", m.Packets)
	}
	if m.MakespanNs > sl.MakespanNs*11/10 {
		t.Errorf("all-to-all makespan: MLID %d much worse than SLID %d", m.MakespanNs, sl.MakespanNs)
	}
	if m.AggregateBandwidth <= 0 {
		t.Error("no aggregate bandwidth")
	}
}

// TestBatchDeterministic: same seed, same makespan.
func TestBatchDeterministic(t *testing.T) {
	sn := mustSubnet(t, 4, 3, core.NewMLID())
	msgs := AllToAll(sn.Tree, 512)
	a, err := RunBatch(BatchConfig{Subnet: sn, Messages: msgs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(BatchConfig{Subnet: sn, Messages: msgs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic batch: %+v vs %+v", a, b)
	}
}

func TestGatherAndAllToAllBuilders(t *testing.T) {
	tr := topology.MustNew(4, 2)
	g := Gather(tr, 3, 100)
	if len(g) != tr.Nodes()-1 {
		t.Fatalf("gather %d messages", len(g))
	}
	for _, m := range g {
		if m.Dst != 3 || m.Src == 3 {
			t.Fatalf("bad gather message %+v", m)
		}
	}
	a := AllToAll(tr, 100)
	if len(a) != tr.Nodes()*(tr.Nodes()-1) {
		t.Fatalf("all-to-all %d messages", len(a))
	}
}
