package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// TestOptimizedPlanBeatsRankDynamically: the profile-guided path plan's
// static max-load win translates into a shorter measured makespan for the
// same skewed workload.
func TestOptimizedPlanBeatsRankDynamically(t *testing.T) {
	scheme := core.NewMLID()
	sn := mustSubnet(t, 8, 2, scheme)
	tr := sn.Tree

	// The adversarial skew from the optimizer tests: per pair, two sources
	// with the same rank digit in different leaves send heavy messages to
	// the same destination leaf, colliding on one root down-link under the
	// rank rule.
	var flows []core.Flow
	var msgs []Message
	for pair := 0; pair < 3; pair++ {
		srcA, _ := tr.NodeFromDigits([]int{2 * pair, 0})
		srcB, _ := tr.NodeFromDigits([]int{2*pair + 1, 0})
		dstA, _ := tr.NodeFromDigits([]int{6, 2 * (pair % 2)})
		dstB, _ := tr.NodeFromDigits([]int{6, 2*(pair%2) + 1})
		flows = append(flows,
			core.Flow{Src: srcA, Dst: dstA, Weight: 1},
			core.Flow{Src: srcB, Dst: dstB, Weight: 1})
		const bytes = 64 * 256
		msgs = append(msgs,
			Message{Src: srcA, Dst: dstA, Bytes: bytes},
			Message{Src: srcB, Dst: dstB, Bytes: bytes})
	}

	run := func(dlidFunc func(src, dst topology.NodeID) ib.LID) BatchResult {
		res, err := RunBatch(BatchConfig{
			Subnet:   sn,
			Messages: msgs,
			DLIDFunc: dlidFunc,
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rank := run(nil)
	plan, err := core.OptimizePaths(tr, scheme, flows)
	if err != nil {
		t.Fatal(err)
	}
	planned := run(func(src, dst topology.NodeID) ib.LID {
		return plan.DLID(tr, scheme, src, dst)
	})
	if planned.MakespanNs >= rank.MakespanNs {
		t.Errorf("planned makespan %d not better than rank %d", planned.MakespanNs, rank.MakespanNs)
	}
	// Roughly a 2x improvement is expected: two colliding transfers per
	// root down-link become one.
	if planned.MakespanNs > rank.MakespanNs*3/4 {
		t.Errorf("plan gain too small: %d vs %d", planned.MakespanNs, rank.MakespanNs)
	}
}

// TestDLIDFuncOpenLoop: the override also applies to open-loop runs and the
// packets still deliver correctly.
func TestDLIDFuncOpenLoop(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:  sn,
		Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
		DLIDFunc: func(src, dst topology.NodeID) ib.LID {
			// Always the base LID: a valid (if unbalanced) selection.
			return sn.Endports[dst].Base
		},
		OfferedLoad: 0.2,
		WarmupNs:    5_000,
		MeasureNs:   30_000,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWindow == 0 {
		t.Fatal("no deliveries with DLIDFunc")
	}
}
