package sim

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// faultCfg is the demo scenario of the fault subsystem: FT(4,2) under MLID,
// uniform traffic at a comfortably sub-saturation load, with the first up-link
// of node 0's leaf (switch 2, abstract port 2, toward spine 0) killed in the
// middle of the measurement window.
func faultCfg(t *testing.T, scheme core.Scheme, plan *FaultPlan) Config {
	t.Helper()
	sn := mustSubnet(t, 4, 2, scheme)
	return Config{
		Subnet:  sn,
		Pattern: traffic.Uniform{Nodes: sn.Tree.Nodes()},
		DataVLs: 2, OfferedLoad: 0.3,
		WarmupNs: 20_000, MeasureNs: 100_000,
		SeriesIntervalNs: 5_000,
		FaultPlan:        plan,
		// Every SM epoch of the fault suite is statically verified: the
		// mid-repair tables must never contain a defect the dead links
		// don't explain (internal/verify's severity contract).
		VerifyEpochs: true,
		Seed:         21,
	}
}

// TestFaultRecoveryTransient is the acceptance scenario for live fault
// injection: a spine link dies mid-measurement, packets drop (and are counted,
// never misrouted) until the SM's trap latency elapses, the staged table
// updates land at trap + processing time, and — under MLID with fault-avoiding
// reselection — accepted traffic returns to its pre-fault level with zero
// drops once the transient drains.
func TestFaultRecoveryTransient(t *testing.T) {
	const downNs = 50_000
	plan := &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: downNs}},
		Reselect: true,
	}
	cfg := faultCfg(t, core.NewMLID(), plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.FirstFaultNs != downNs {
		t.Errorf("FirstFaultNs = %d, want %d", res.FirstFaultNs, downNs)
	}
	if res.DroppedTotal == 0 || res.DroppedWindow == 0 {
		t.Fatalf("expected drops after the link died, got total=%d window=%d",
			res.DroppedTotal, res.DroppedWindow)
	}
	if res.DroppedTotal != res.DroppedAtDeadLink+res.DroppedOnDeadLink {
		t.Errorf("drop causes don't sum: total=%d at=%d on=%d",
			res.DroppedTotal, res.DroppedAtDeadLink, res.DroppedOnDeadLink)
	}
	if res.DroppedAtDeadLink == 0 {
		t.Errorf("expected stale-table drops at the dead link, got none")
	}
	if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("packet conservation: delivered+dropped+inflight = %d, generated = %d",
			got, res.TotalGenerated)
	}

	// Drops must begin before the trap fires: the [downNs, trap) series bins
	// hold losses the SM hasn't heard about yet.
	iv := cfg.SeriesIntervalNs
	trapNs := downNs + DefaultTrapLatencyNs
	var preTrapDrops int64
	for _, sp := range res.Series {
		if sp.StartNs >= downNs && sp.StartNs < trapNs {
			preTrapDrops += sp.Dropped
		}
	}
	if preTrapDrops == 0 {
		t.Errorf("no drops recorded between link death (%d) and trap (%d)", downNs, trapNs)
	}

	// The SM's repair: only the leaf's ascending entries are remappable, so
	// exactly one staged update lands at trap + SMProcessNs; spine 0's
	// descending entries to the leaf's nodes are irreparable.
	if res.LFTUpdates == 0 || res.LFTEntriesRewritten == 0 {
		t.Fatalf("expected staged LFT updates, got updates=%d entries=%d",
			res.LFTUpdates, res.LFTEntriesRewritten)
	}
	if res.BrokenEntries == 0 {
		t.Errorf("expected irreparable descending entries at the spine, got none")
	}
	minRec := DefaultTrapLatencyNs + DefaultSMProcessNs
	maxRec := minRec + Time(cfg.Subnet.Tree.Switches())*DefaultLFTUpdateNs
	if res.RecoveryNs < minRec || res.RecoveryNs > maxRec {
		t.Errorf("RecoveryNs = %d, want within [%d, %d]", res.RecoveryNs, minRec, maxRec)
	}
	if res.Reroutes == 0 {
		t.Errorf("expected reselection to steer packets off the dead spine, got none")
	}

	// Post-recovery, reselection avoids the broken descending paths entirely:
	// zero drops once in-flight stale packets drain (one drain bin of slack
	// after the last repair).
	repairNs := downNs + res.RecoveryNs
	drainNs := ((repairNs+iv)/iv + 1) * iv
	for _, sp := range res.Series {
		if sp.StartNs >= drainNs && sp.Dropped != 0 {
			t.Errorf("bin %d ns: %d drops after recovery under MLID reselection",
				sp.StartNs, sp.Dropped)
		}
	}

	// Accepted traffic recovers: the post-fault window's mean accepted rate is
	// within 5% of the pre-fault window's.
	avg := func(lo, hi Time) float64 {
		var sum float64
		var n int
		for _, sp := range res.Series {
			if sp.StartNs >= lo && sp.StartNs < hi {
				sum += sp.Accepted
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no series bins in [%d, %d)", lo, hi)
		}
		return sum / float64(n)
	}
	pre := avg(25_000, 50_000)
	post := avg(65_000, 115_000)
	if math.Abs(post-pre)/pre > 0.05 {
		t.Errorf("accepted traffic did not recover: pre=%.6f post=%.6f (%.1f%% off)",
			pre, post, 100*math.Abs(post-pre)/pre)
	}
}

// TestFaultSLIDPersistentDrops contrasts the single-LID scheme: with one LID
// per destination there is no surviving path to reselect, the spine's broken
// descending entries keep forwarding onto the dead link, and drops persist for
// the rest of the run — the behaviour the paper's multiple-LID scheme exists
// to avoid.
func TestFaultSLIDPersistentDrops(t *testing.T) {
	const downNs = 50_000
	plan := &FaultPlan{
		Faults: []LinkFault{{Switch: 2, Port: 2, DownNs: downNs}},
	}
	res, err := Run(faultCfg(t, core.NewSLID(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if res.BrokenEntries == 0 {
		t.Fatalf("expected broken descending entries under SLID, got none")
	}
	if res.DroppedWindow == 0 {
		t.Fatalf("expected window drops under SLID, got none")
	}
	// Drops continue long after the SM converged: the last measured bin still
	// loses packets to the broken entries.
	repairNs := downNs + res.RecoveryNs
	var lateDrops int64
	for _, sp := range res.Series {
		if sp.StartNs >= repairNs+20_000 {
			lateDrops += sp.Dropped
		}
	}
	if lateDrops == 0 {
		t.Errorf("expected persistent post-recovery drops under SLID, got none after %d ns",
			repairNs+20_000)
	}
	if res.Reroutes != 0 {
		t.Errorf("SLID plan without Reselect counted %d reroutes", res.Reroutes)
	}
}

// TestFaultLinkRevival kills a spine link and brings it back: the second trap
// restores the original tables and drops cease even without reselection.
func TestFaultLinkRevival(t *testing.T) {
	const downNs, upNs = 30_000, 70_000
	plan := &FaultPlan{
		Faults: []LinkFault{{Switch: 2, Port: 2, DownNs: downNs, UpNs: upNs}},
	}
	res, err := Run(faultCfg(t, core.NewSLID(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedTotal == 0 {
		t.Fatalf("expected drops while the link was down")
	}
	if res.LFTUpdates < 2 {
		t.Errorf("expected table updates from both sweeps (down and up), got %d", res.LFTUpdates)
	}
	// After the revival trap's updates land, the restored tables drop nothing.
	restoredNs := upNs + DefaultTrapLatencyNs + DefaultSMProcessNs +
		Time(res.LFTUpdates)*DefaultLFTUpdateNs + 5_000
	for _, sp := range res.Series {
		if sp.StartNs >= restoredNs && sp.Dropped != 0 {
			t.Errorf("bin %d ns: %d drops after the link revived and tables restored",
				sp.StartNs, sp.Dropped)
		}
	}
	if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("packet conservation: delivered+dropped+inflight = %d, generated = %d",
			got, res.TotalGenerated)
	}
}

// TestFaultNodeAttachment kills a node-attachment link: the node's injections
// drop at the dead source port, traffic destined to it drops at the leaf, and
// the run stays conservative.
func TestFaultNodeAttachment(t *testing.T) {
	plan := &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 0, DownNs: 40_000}},
		Reselect: true,
	}
	cfg := faultCfg(t, core.NewMLID(), plan)
	cfg.Reception = ReceptionLink
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedOnDeadLink == 0 {
		t.Errorf("expected injection/arrival drops on the dead attachment link")
	}
	if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("packet conservation: delivered+dropped+inflight = %d, generated = %d",
			got, res.TotalGenerated)
	}
}

// TestFaultPlanDeterminism requires a faulted run — link death, flushes, SM
// sweeps, staged updates, random-policy reselection — to produce an identical
// Result when repeated, on both scheduler paths.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := &FaultPlan{
		Faults: []LinkFault{
			{Switch: 2, Port: 2, DownNs: 25_000, UpNs: 60_000},
			{Switch: 0, Port: 1, DownNs: 35_000},
		},
		Reselect: true,
	}
	cfg := faultCfg(t, core.NewMLID(), plan)
	cfg.PathSelect = SelectRandom()
	cfg.TracePackets = 4
	cfg.CollectPortStats = true
	run := func() Result {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same faulted config, different results:\n a: %+v\n b: %+v", a, b)
	}
	heapOnly := withHeapOnlyEngine(t, run)
	if !reflect.DeepEqual(a, heapOnly) {
		t.Errorf("calendar and heap-only scheduler paths disagree on a faulted run:\n cal:  %s\n heap: %s",
			fingerprint(a), fingerprint(heapOnly))
	}
}

// TestEmptyFaultPlanMatchesGolden proves an empty FaultPlan is inert: the
// fault machinery (table cloning, default timing, zeroed counters) reproduces
// the recorded golden fixtures bit-for-bit.
func TestEmptyFaultPlanMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_results.txt"))
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update): %v", err)
	}
	fixtures := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		name, fp, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed fixture line %q", line)
		}
		fixtures[name] = fp
	}
	for _, tc := range goldenCases(t) {
		cfg := tc.cfg
		cfg.FaultPlan = &FaultPlan{}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := fingerprint(res); got != fixtures[tc.name] {
			t.Errorf("%s: empty FaultPlan drifted from fixture\n got:  %s\n want: %s",
				tc.name, got, fixtures[tc.name])
		}
		if res.DroppedTotal != 0 || res.LFTUpdates != 0 || res.Reroutes != 0 {
			t.Errorf("%s: empty FaultPlan produced fault activity: %+v", tc.name, res)
		}
	}
}

// TestFaultPlanValidation rejects plans naming nonexistent fabric elements or
// inconsistent times.
func TestFaultPlanValidation(t *testing.T) {
	bad := []*FaultPlan{
		{Faults: []LinkFault{{Switch: 99, Port: 0, DownNs: 1}}},           // bad switch
		{Faults: []LinkFault{{Switch: 0, Port: 7, DownNs: 1}}},            // bad port
		{Faults: []LinkFault{{Switch: 0, Port: -1, DownNs: 1}}},           // bad port
		{Faults: []LinkFault{{Switch: 0, Port: 0, DownNs: -5}}},           // bad time
		{Faults: []LinkFault{{Switch: 0, Port: 0, DownNs: 10, UpNs: 10}}}, // up <= down
		{TrapLatencyNs: -1}, // bad timing
	}
	for i, plan := range bad {
		if _, err := Run(faultCfg(t, core.NewMLID(), plan)); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

// TestNodeArriveNilUpstream is the regression test for the nil-upstream guard:
// an evNodeArrive dispatched for a packet with no upstream port (as ideal
// reception's hand-off produces) must not schedule a credit for the noPort
// sentinel, which would index out of bounds in dispatch.
func TestNodeArriveNilUpstream(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	cfg.Reception = ReceptionLink
	s := build(cfg.withDefaults())
	p := s.newPkt()
	p.Dst = 0
	p.VL = 0
	s.nodeArrive(0, p)
	for {
		ev, ok := s.pop(1 << 30)
		if !ok {
			break
		}
		if ev.kind == evCredit && ev.a < 0 {
			t.Fatalf("nodeArrive scheduled a credit for a negative upstream port id")
		}
		if ev.kind == evCredit {
			continue
		}
		s.dispatch(ev)
	}
	if s.err != nil {
		t.Fatalf("nodeArrive with nil upstream failed: %v", s.err)
	}
	if s.totalDelivered != 1 {
		t.Fatalf("packet was not delivered: %d", s.totalDelivered)
	}
}

// TestGenerationRateDrift is the satellite soak test for the k-based
// generation clock: over ten million packets at several loads the realized
// injection rate stays within 1e-9 of the configured rate, and generation
// times are strictly increasing. (The retired float accumulator drifted by
// one ulp per packet — parts in 1e7 over a soak run.)
func TestGenerationRateDrift(t *testing.T) {
	const packets = 10_000_000
	for _, load := range []float64{0.3, 0.7, 0.123} {
		ia := float64(DefaultPacketSize) / load
		phase := 0.37 * ia
		first := genTimeAt(phase, ia, 0)
		prev := first
		for k := int64(1); k <= packets; k++ {
			tk := genTimeAt(phase, ia, k)
			if tk <= prev {
				t.Fatalf("load %v: generation times not increasing at k=%d: %d <= %d",
					load, k, tk, prev)
			}
			prev = tk
		}
		ideal := phase + float64(packets)*ia
		if math.Abs(float64(prev)-ideal) > 0.5 {
			t.Fatalf("load %v: k-th time off by %v ns", load, float64(prev)-ideal)
		}
		realized := float64(packets) / float64(prev-first)
		wantRate := 1 / ia
		if relErr := math.Abs(realized-wantRate) / wantRate; relErr > 1e-9 {
			t.Errorf("load %v: realized rate error %.3e exceeds 1e-9", load, relErr)
		}
	}
}
