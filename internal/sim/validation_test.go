package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/model"
	"mlid/internal/traffic"
)

// These tests cross-validate the discrete-event simulator against package
// model's closed-form predictions — the strongest correctness evidence the
// repository has beyond unit invariants.

// TestModelMeanUniformLatency: at near-zero load the measured mean latency
// must match the closed-form expectation over the pair-distance distribution
// within a couple of percent.
func TestModelMeanUniformLatency(t *testing.T) {
	for _, dims := range [][2]int{{4, 2}, {8, 2}, {4, 3}} {
		sn := mustSubnet(t, dims[0], dims[1], core.NewMLID())
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.004,
			WarmupNs:    20_000,
			MeasureNs:   600_000,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := model.MeanUniformLatency(sn.Tree, model.DefaultParams())
		if res.MeanLatencyNs < want*0.97 || res.MeanLatencyNs > want*1.06 {
			t.Errorf("FT(%d,%d): measured %.1f, model %.1f", dims[0], dims[1], res.MeanLatencyNs, want)
		}
	}
}

// TestModelHotspotKnees: the measured accepted traffic under the centric
// pattern must (a) track offered load below the predicted knee and (b) stop
// tracking it above, for both schemes and both reception models.
func TestModelHotspotKnees(t *testing.T) {
	p := model.DefaultParams()
	for _, tc := range []struct {
		scheme core.Scheme
		rec    ReceptionModel
		mrec   model.Reception
	}{
		{core.NewMLID(), ReceptionIdeal, model.ReceptionIdeal},
		{core.NewSLID(), ReceptionIdeal, model.ReceptionIdeal},
		{core.NewMLID(), ReceptionLink, model.ReceptionLink},
		{core.NewSLID(), ReceptionLink, model.ReceptionLink},
	} {
		sn := mustSubnet(t, 8, 2, tc.scheme)
		knee, err := model.HotspotKnee(sn.Tree, p, tc.scheme.Name(), 0.5, tc.mrec)
		if err != nil {
			t.Fatal(err)
		}
		run := func(load float64) Result {
			res, err := Run(Config{
				Subnet:      sn,
				Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
				OfferedLoad: load,
				Reception:   tc.rec,
				WarmupNs:    100_000,
				MeasureNs:   300_000,
				Seed:        11,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		below := run(knee * 0.7)
		above := run(knee * 1.6)
		if below.Saturated {
			t.Errorf("%s/rec%d: saturated at 0.7x predicted knee %.4f (accepted %.4f)",
				tc.scheme.Name(), tc.rec, knee, below.Accepted)
		}
		if !above.Saturated {
			t.Errorf("%s/rec%d: not saturated at 1.6x predicted knee %.4f (accepted %.4f)",
				tc.scheme.Name(), tc.rec, knee, above.Accepted)
		}
	}
}

// TestModelHotspotRatio: the measured MLID/SLID peak ratio under ideal
// reception approaches the structural prediction m/2.
func TestModelHotspotRatio(t *testing.T) {
	peak := func(s core.Scheme) float64 {
		sn := mustSubnet(t, 8, 2, s)
		best := 0.0
		for _, load := range []float64{0.1, 0.2, 0.3, 0.5} {
			res, err := Run(Config{
				Subnet:      sn,
				Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
				OfferedLoad: load,
				WarmupNs:    80_000,
				MeasureNs:   250_000,
				Seed:        13,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted > best {
				best = res.Accepted
			}
		}
		return best
	}
	ratio := peak(core.NewMLID()) / peak(core.NewSLID())
	want := 4.0 // m/2 for FT(8,2)
	// The pure-structure prediction ignores the hotspot leaf's local
	// sources and the uniform half of the traffic, both of which compress
	// the measured ratio; accept [0.5x, 1.1x] of the prediction.
	if ratio < want*0.5 || ratio > want*1.1 {
		t.Errorf("measured hotspot ratio %.2f vs structural prediction %.0f", ratio, want)
	}
}

// TestModelUniformBound: uniform saturation never exceeds the chain
// efficiency bound.
func TestModelUniformBound(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 1.4,
		DataVLs:     4,
		WarmupNs:    50_000,
		MeasureNs:   200_000,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1% headroom: deliveries in the window include warmup backlog still
	// draining, which can nudge measured acceptance past the sustained
	// injection bound.
	if bound := model.UniformKneeBound(model.DefaultParams(), 4); res.Accepted > bound*1.01 {
		t.Errorf("accepted %.4f exceeds link-efficiency bound %.4f", res.Accepted, bound)
	}
}
