package sim

import (
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
)

// TestVerifyEpochsCleanRun: the fault suite's demo scenario with epoch
// verification on must complete with one verifier pass per SM epoch (the
// trap sweep plus every applied staged update) and only dead-link-explained
// warnings — the broken descending entries RepairSubnet documents — never an
// error.
func TestVerifyEpochsCleanRun(t *testing.T) {
	plan := &FaultPlan{
		Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
		Reselect: true,
	}
	cfg := faultCfg(t, core.NewMLID(), plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One trap plus at least one applied table update.
	if res.VerifiedEpochs < 2 {
		t.Fatalf("VerifiedEpochs = %d, want >= 2 (trap + staged updates)", res.VerifiedEpochs)
	}
	if res.VerifiedEpochs != int(res.LFTUpdates)+1 {
		t.Errorf("VerifiedEpochs = %d, want LFTUpdates+1 = %d", res.VerifiedEpochs, res.LFTUpdates+1)
	}
	// The spine's descending entries to the severed leaf stay broken: every
	// verified epoch after the fault sees them as dead-link warnings.
	if res.VerifyWarnings == 0 {
		t.Error("VerifyWarnings = 0: the broken descending entries went unreported")
	}
}

// TestVerifyEpochCatchesCorruptedTable corrupts a live forwarding table into
// a dead end before invoking the epoch verifier directly: the run must fail
// with the finding, proving error-severity findings abort the run rather
// than turning into silent packet loss.
func TestVerifyEpochCatchesCorruptedTable(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), &FaultPlan{
		Faults: []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
	})
	s := build(cfg.withDefaults())
	// Erase the destination leaf's entry for node 0's base LID: an owned,
	// healthy LID with no forwarding entry is a dead end no fault explains.
	lid := cfg.Subnet.Endports[0].Base
	sw, _ := cfg.Subnet.Tree.NodeAttachment(0)
	if err := s.lfts[sw].Set(lid, ib.PortNone); err != nil {
		t.Fatal(err)
	}
	s.verifyEpoch()
	if s.err == nil || !strings.Contains(s.err.Error(), "dead end") {
		t.Fatalf("corrupted table not caught: err = %v", s.err)
	}
}

// TestVerifyEpochCatchesStaleCompiledRow desynchronizes one compiled
// forwarding entry from its live table: the cross-check must fail the run.
// This is the guard on applyLFTUpdate's entry-wise recompile — the hot path
// reads only the compiled rows, so nothing else ties them back to the LFTs.
func TestVerifyEpochCatchesStaleCompiledRow(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), &FaultPlan{
		Faults: []LinkFault{{Switch: 2, Port: 2, DownNs: 50_000}},
	})
	s := build(cfg.withDefaults())
	lid := cfg.Subnet.Endports[0].Base
	sw, _ := cfg.Subnet.Tree.NodeAttachment(0)
	idx := int(sw)*s.lftSize + int(lid)
	want := s.fwdAt(idx)
	s.setFwd(idx, want+1) // a different (still in-range) port id
	s.verifyEpoch()
	if s.err == nil || !strings.Contains(s.err.Error(), "stale") {
		t.Fatalf("stale compiled row not caught: err = %v", s.err)
	}
}

// TestCompiledRowsRecompileMatchesFromScratch drives the fault machinery's
// staged table updates (no traffic needed) and then proves the entry-wise
// recompile path left the compiled rows exactly equal to a from-scratch
// compile of the post-repair tables.
func TestCompiledRowsRecompileMatchesFromScratch(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), &FaultPlan{
		Faults: []LinkFault{
			{Switch: 2, Port: 2, DownNs: 30_000},
			{Switch: 3, Port: 3, DownNs: 45_000, UpNs: 70_000},
		},
	})
	cfg = cfg.withDefaults()
	s := build(cfg)
	s.end = cfg.WarmupNs + cfg.MeasureNs
	s.scheduleFaults()
	s.runUntil(s.end)
	if s.err != nil {
		t.Fatal(s.err)
	}
	if s.lftUpdates == 0 {
		t.Fatal("no staged updates applied: the scenario exercises nothing")
	}
	// Snapshot the incrementally-recompiled rows, rebuild every switch from
	// its live table, and demand bit-identical results.
	n := len(s.lfts) * s.lftSize
	got := make([]int32, n)
	for i := 0; i < n; i++ {
		got[i] = s.fwdAt(i)
	}
	for sw := range s.lfts {
		s.compileLFT(int32(sw))
	}
	for i := 0; i < n; i++ {
		if want := s.fwdAt(i); got[i] != want {
			sw, lid := i/s.lftSize, i%s.lftSize
			t.Fatalf("switch %d DLID %d: incremental recompile holds %d, from-scratch %d",
				sw, lid, got[i], want)
		}
	}
}
