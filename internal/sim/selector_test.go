package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// TestDLIDFuncComposesWithReselect is the regression test for the policy
// composition bug: Config.DLIDFunc used to bypass the fault-reselection layer
// entirely, so a custom policy kept steering packets onto LIDs whose paths the
// SM already knew were dead. Composition order is now fixed — reselection
// filters the offsets first, then the custom policy's choice is honored when
// it survives and redirected to the nearest surviving offset when it doesn't.
func TestDLIDFuncComposesWithReselect(t *testing.T) {
	const downNs = 50_000
	run := func(reselect bool) Result {
		plan := &FaultPlan{
			Faults:   []LinkFault{{Switch: 2, Port: 2, DownNs: downNs}},
			Reselect: reselect,
		}
		cfg := faultCfg(t, core.NewMLID(), plan)
		sn := cfg.Subnet
		// The custom policy is the scheme's own canonical choice — the point
		// is that it is routed through the reselection filter, not that it is
		// clever.
		cfg.DLIDFunc = func(src, dst topology.NodeID) ib.LID {
			return sn.DLID(src, dst)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
			t.Errorf("reselect=%v: packet conservation: delivered+dropped+inflight = %d, generated = %d",
				reselect, got, res.TotalGenerated)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.Reroutes == 0 {
		t.Errorf("DLIDFunc under Reselect produced no reroutes: the custom policy bypassed reselection")
	}
	if without.Reroutes != 0 {
		t.Errorf("DLIDFunc without Reselect counted %d reroutes", without.Reroutes)
	}
	if without.DroppedTotal == 0 {
		t.Fatalf("control run without Reselect saw no drops; the fault scenario is inert")
	}
	if with.DroppedTotal >= without.DroppedTotal {
		t.Errorf("DLIDFunc with Reselect dropped %d packets, want fewer than the %d without: "+
			"reselection did not steer the custom policy off the dead link",
			with.DroppedTotal, without.DroppedTotal)
	}
	// Once the SM's repair lands and stale in-flight packets drain, the
	// reselecting run must stop dropping entirely.
	repairNs := downNs + with.RecoveryNs + 10_000
	for _, sp := range with.Series {
		if sp.StartNs >= repairNs && sp.Dropped != 0 {
			t.Errorf("bin %d ns: %d drops after recovery with DLIDFunc under reselection",
				sp.StartNs, sp.Dropped)
		}
	}
}

// TestNilPathSelectIsRank pins the default: a nil Config.PathSelect resolves
// to the rank selector and produces a bit-identical Result.
func TestNilPathSelectIsRank(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	run := func(sel Selector) Result {
		c := cfg
		c.PathSelect = sel
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(nil), run(SelectRank()); !reflect.DeepEqual(a, b) {
		t.Errorf("nil PathSelect differs from SelectRank():\n nil:  %s\n rank: %s",
			fingerprint(a), fingerprint(b))
	}
}

// TestRankSelectorUnit exercises the rank policy's two regimes directly:
// canonical while it survives, nearest cyclic survivor (counted as a reroute)
// when it doesn't.
func TestRankSelectorUnit(t *testing.T) {
	c := &SelectContext{Count: 4, Canonical: 2, Mask: 0b1111, Full: true}
	if off, rr := SelectRank().Select(c); off != 2 || rr {
		t.Errorf("full mask: got (%d, %v), want (2, false)", off, rr)
	}
	// Canonical 2 dead, offset 3 dead too: the cyclic scan from 2 must skip
	// to the nearest survivor, offset 0, and count the move as a reroute.
	c.Mask, c.Full = 0b0011, false
	if off, rr := SelectRank().Select(c); off != 0 || !rr {
		t.Errorf("masked canonical: got (%d, %v), want (0, true)", off, rr)
	}
}

// TestFlowSprayUnit pins the flow-spray contract: the first packet of a flow
// draws a pin, subsequent packets reuse it without touching the RNG, and a
// fault displacing the pin forces one counted redraw among the survivors.
func TestFlowSprayUnit(t *testing.T) {
	var state uint32
	rng := rand.New(rand.NewSource(9))
	c := &SelectContext{Count: 4, Mask: 0b1111, Full: true, RNG: rng, state: &state}
	first, rr := SelectFlowSpray().Select(c)
	if rr {
		t.Errorf("first draw counted as a reroute")
	}
	if state != uint32(first)+1 {
		t.Errorf("pin not stored: state=%d after offset %d", state, first)
	}
	// Later packets must not draw: a nil RNG would panic on any Intn call.
	c.RNG = nil
	for i := 0; i < 3; i++ {
		if off, rr := SelectFlowSpray().Select(c); off != first || rr {
			t.Fatalf("packet %d: got (%d, %v), want pinned (%d, false)", i, off, rr, first)
		}
	}
	// Kill the pinned offset: the redraw is a reroute and lands on a survivor.
	c.RNG = rng
	c.Mask = 0b1111 &^ (1 << uint(first))
	c.Full = false
	off, rr := SelectFlowSpray().Select(c)
	if !rr {
		t.Errorf("displaced pin not counted as a reroute")
	}
	if off == first || c.Mask&(1<<uint(off)) == 0 {
		t.Errorf("redraw landed on %d (mask %04b, dead pin %d)", off, c.Mask, first)
	}
	if state != uint32(off)+1 {
		t.Errorf("new pin not stored: state=%d after offset %d", state, off)
	}
}

// TestPktSprayUnit pins per-packet spraying: consecutive sequence numbers
// rotate round-robin over the usable offsets, visiting each exactly once per
// cycle, with no RNG draws at all (the context carries a nil RNG).
func TestPktSprayUnit(t *testing.T) {
	c := &SelectContext{Src: 3, Dst: 11, Count: 4, Mask: 0b1011, Full: false}
	seen := map[int]int{}
	var prev int
	for seq := uint32(0); seq < 6; seq++ {
		c.Seq = seq
		off, rr := SelectPktSpray().Select(c)
		if c.Mask&(1<<uint(off)) == 0 {
			t.Fatalf("seq %d: offset %d is masked out", seq, off)
		}
		if !rr {
			t.Errorf("seq %d: partial mask not counted as a reroute", seq)
		}
		if seq > 0 && off == prev {
			t.Errorf("seq %d: no rotation (offset %d twice in a row)", seq, off)
		}
		prev = off
		seen[off]++
	}
	// 6 packets over 3 usable offsets: exactly two visits each.
	for _, off := range []int{0, 1, 3} {
		if seen[off] != 2 {
			t.Errorf("offset %d visited %d times in 6 packets, want 2 (%v)", off, seen[off], seen)
		}
	}
	// The full-mask single-candidate case is not a reroute.
	c.Seq, c.Count, c.Mask, c.Full = 0, 1, 1, true
	if off, rr := SelectPktSpray().Select(c); off != 0 || rr {
		t.Errorf("single candidate: got (%d, %v), want (0, false)", off, rr)
	}
}

// TestAdaptiveCongestionSteering drives the adaptive selector through a built
// (but not started) simulator, mutating the first-hop congestion counters
// directly: it starts on the canonical path, switches when another offset's
// Load undercuts it by the hysteresis, holds through sub-hysteresis
// differences, and abandons a pinned path whose first hop dies.
func TestAdaptiveCongestionSteering(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	cfg.PathSelect = SelectAdaptive()
	s := build(cfg.withDefaults())
	if s.err != nil {
		t.Fatal(s.err)
	}
	src, dst := topology.NodeID(0), topology.NodeID(7) // distinct leaves of FT(4,2)
	r := cfg.Subnet.Endports[dst]
	if r.Count() != 2 {
		t.Fatalf("MLID FT(4,2) gives %d LIDs to node 7, want 2", r.Count())
	}
	canonical := int(cfg.Subnet.DLID(src, dst) - r.Base)
	alt := 1 - canonical
	leafSw := int(s.ports[s.nodePid(int32(src))].destSw)
	firstHop := func(off int) int32 {
		return s.fwdAt(leafSw*s.lftSize + int(r.Base) + off)
	}
	pidCanon, pidAlt := firstHop(canonical), firstHop(alt)
	if pidCanon < 0 || pidAlt < 0 || pidCanon == pidAlt {
		t.Fatalf("offsets share or lack first-hop ports: canonical %d, alt %d", pidCanon, pidAlt)
	}
	sel := func() int {
		return int(s.selectDLID(&s.nodes[src], src, dst, 0) - r.Base)
	}

	// Quiet fabric: every load equal, the flow starts (and stays) canonical.
	if got := sel(); got != canonical {
		t.Fatalf("quiet fabric: offset %d, want canonical %d", got, canonical)
	}
	// A single buffered packet on the canonical first hop is within the
	// hysteresis (ordinary queueing noise): the flow must hold its path.
	s.cv[int(pidCanon)*s.vls].occupancy++
	if got := sel(); got != canonical {
		t.Errorf("one-packet imbalance: offset %d, want held canonical %d", got, canonical)
	}
	// A second buffered packet clears the one-packet hysteresis: switch.
	s.cv[int(pidCanon)*s.vls].occupancy++
	if got := sel(); got != alt {
		t.Errorf("congested canonical hop: offset %d, want alt %d", got, alt)
	}
	// Clear it. The pin now trails canonical by one buffered packet — within
	// the switching threshold, so no flap back.
	s.cv[int(pidCanon)*s.vls].occupancy -= 2
	s.cv[int(pidAlt)*s.vls].occupancy++
	if got := sel(); got != alt {
		t.Errorf("sub-hysteresis difference: offset %d, want pinned alt %d", got, alt)
	}
	s.cv[int(pidAlt)*s.vls].occupancy--
	// The pinned first hop dies: unreachable load forces the move home.
	s.ports[pidAlt].dead = true
	if got := sel(); got != canonical {
		t.Errorf("dead pinned hop: offset %d, want canonical %d", got, canonical)
	}
	if s.reroutes != 0 {
		t.Errorf("congestion moves counted %d fault reroutes", s.reroutes)
	}
}

// TestFlowSprayKeepsOrder: per-flow pinning composes with DLID-pinned VLs into
// fully in-order delivery — the spray randomizes across flows, never within
// one.
func TestFlowSprayKeepsOrder(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.7,
		DataVLs:     4,
		VLSelect:    VLByDLID,
		PathSelect:  SelectFlowSpray(),
		WarmupNs:    20_000,
		MeasureNs:   100_000,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelivered == 0 {
		t.Fatal("no deliveries")
	}
	if res.OutOfOrder != 0 {
		t.Errorf("flowspray reordered %d deliveries; per-flow pins must keep order", res.OutOfOrder)
	}
}

// TestPktSprayReorders: per-packet spraying reorders by construction once
// paths with different queueing delays interleave; OutOfOrder quantifies it.
func TestPktSprayReorders(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		OfferedLoad: 0.7,
		DataVLs:     4,
		VLSelect:    VLByDLID,
		PathSelect:  SelectPktSpray(),
		WarmupNs:    20_000,
		MeasureNs:   100_000,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelivered == 0 {
		t.Fatal("no deliveries")
	}
	if res.OutOfOrder == 0 {
		t.Errorf("pktspray delivered everything in order; spraying should reorder under load")
	}
}

// TestSelectorFamilyFaultDeterminism runs every selector through the faulted
// demo scenario twice and on both scheduler paths: identical Results each
// time. (Cross-shard determinism is covered by the sharded matrix.)
func TestSelectorFamilyFaultDeterminism(t *testing.T) {
	for _, name := range SelectorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sel, err := SelectorByName(name)
			if err != nil {
				t.Fatal(err)
			}
			plan := &FaultPlan{
				Faults: []LinkFault{
					{Switch: 2, Port: 2, DownNs: 25_000, UpNs: 60_000},
					{Switch: 0, Port: 1, DownNs: 35_000},
				},
				Reselect: true,
			}
			cfg := faultCfg(t, core.NewMLID(), plan)
			cfg.PathSelect = sel
			run := func() Result {
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: same faulted config, different results:\n a: %s\n b: %s",
					name, fingerprint(a), fingerprint(b))
			}
			heapOnly := withHeapOnlyEngine(t, run)
			if !reflect.DeepEqual(a, heapOnly) {
				t.Errorf("%s: calendar and heap-only schedulers disagree:\n cal:  %s\n heap: %s",
					name, fingerprint(a), fingerprint(heapOnly))
			}
			if a.TotalDelivered == 0 {
				t.Errorf("%s: no deliveries", name)
			}
			if got := a.TotalDelivered + a.DroppedTotal + a.InFlightAtEnd; got != a.TotalGenerated {
				t.Errorf("%s: packet conservation: delivered+dropped+inflight = %d, generated = %d",
					name, got, a.TotalGenerated)
			}
		})
	}
}

// TestPktSprayTransportConservation rides per-packet spraying on the reliable
// transport across a mid-run outage: the spray reorders and the fault drops,
// the transport's out-of-order buffering and retries absorb both, and the
// accounting identity still closes exactly after the drain.
func TestPktSprayTransportConservation(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
		DataVLs:     2,
		OfferedLoad: 0.5,
		PathSelect:  SelectPktSpray(),
		WarmupNs:    5_000, MeasureNs: 25_000,
		Seed: 31,
		FaultPlan: &FaultPlan{
			Faults:   []LinkFault{{Switch: 2, Port: 0, DownNs: 8_000, UpNs: 20_000}},
			Reselect: true,
		},
		Transport: &TransportConfig{MaxRetries: 2, DrainNs: 120_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelivered == 0 {
		t.Fatal("no deliveries")
	}
	if res.Retransmits == 0 {
		t.Errorf("expected retransmissions across the outage, got none")
	}
	if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("transport conservation: delivered+failed+inflight = %d, generated = %d",
			got, res.TotalGenerated)
	}
	if res.InFlightAtEnd != 0 {
		t.Errorf("InFlightAtEnd = %d, want 0 after the drain", res.InFlightAtEnd)
	}
}

// TestStatefulSelectorFabricCap: selectors that pin per-(src,dst) state are
// rejected up front on fabrics beyond the 4096-node flow-state budget.
func TestStatefulSelectorFabricCap(t *testing.T) {
	tr := topology.MustNew(32, 3) // 8192 nodes
	if tr.Nodes() <= 4096 {
		t.Fatalf("test fabric has %d nodes, need > 4096", tr.Nodes())
	}
	// validate rejects before build, so a bare Subnet shell suffices — no
	// table configuration for 8k nodes in a unit test.
	cfg := Config{
		Subnet:      &ib.Subnet{Tree: tr},
		Pattern:     traffic.Uniform{Nodes: tr.Nodes()},
		OfferedLoad: 0.3,
		PathSelect:  SelectFlowSpray(),
	}
	if err := cfg.withDefaults().validate(); err == nil || !strings.Contains(err.Error(), "4096") {
		t.Errorf("flowspray on 8192 nodes: err = %v, want the 4096-node cap", err)
	}
	cfg.PathSelect = SelectPktSpray() // stateless: must pass validation
	if err := cfg.withDefaults().validate(); err != nil {
		t.Errorf("stateless pktspray rejected on a large fabric: %v", err)
	}
}
