package sim

import (
	"testing"

	"mlid/internal/core"
	"mlid/internal/traffic"
)

// TestInOrderWithPinnedVLAndPath: with the paper's rank-based path selection
// and a DLID-pinned VL mapping, every (src, dst) flow travels one path on
// one lane through FIFO buffers — deliveries must be perfectly in order.
// This is the IBA ordering guarantee deterministic DLID routing provides.
func TestInOrderWithPinnedVLAndPath(t *testing.T) {
	for _, s := range core.Schemes() {
		sn := mustSubnet(t, 8, 2, s)
		res, err := Run(Config{
			Subnet:      sn,
			Pattern:     traffic.Uniform{Nodes: sn.Tree.Nodes()},
			OfferedLoad: 0.7,
			DataVLs:     4,
			VLSelect:    VLByDLID,
			PathSelect:  SelectRank(),
			WarmupNs:    20_000,
			MeasureNs:   100_000,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutOfOrder != 0 {
			t.Errorf("%s: %d out-of-order deliveries with pinned VL and path", s.Name(), res.OutOfOrder)
		}
		if res.TotalDelivered == 0 {
			t.Fatalf("%s: no deliveries", s.Name())
		}
	}
}

// TestRandomPathSelectionReorders: per-packet random path offsets send
// consecutive packets of one flow over different paths, so under load some
// must arrive out of order — the known cost of oblivious LMC multipath.
func TestRandomPathSelectionReorders(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
		OfferedLoad: 0.5,
		PathSelect:  SelectRandom(),
		VLSelect:    VLByDLID,
		WarmupNs:    20_000,
		MeasureNs:   150_000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfOrder == 0 {
		t.Error("random multipath under hotspot load produced zero reordering (suspicious)")
	}
}

// TestRankSelectionStaysInOrderUnderHotspot: the paper's scheme keeps each
// flow on one deterministic path, so even the congested hotspot case
// delivers flows in order when VLs are pinned.
func TestRankSelectionStaysInOrderUnderHotspot(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	res, err := Run(Config{
		Subnet:      sn,
		Pattern:     traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
		OfferedLoad: 0.5,
		PathSelect:  SelectRank(),
		VLSelect:    VLByDLID,
		WarmupNs:    20_000,
		MeasureNs:   150_000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfOrder != 0 {
		t.Errorf("rank selection reordered %d deliveries", res.OutOfOrder)
	}
}
