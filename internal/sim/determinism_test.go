package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

// goldenCases are the configurations whose results are pinned bit-for-bit in
// testdata/golden_results.txt. The fixtures were recorded under the original
// container/heap closure engine; the typed-event calendar-queue engine must
// reproduce them exactly — any drift in event ordering shows up here.
func goldenCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	uni42 := mustSubnet(t, 4, 2, core.NewMLID())
	slid82 := mustSubnet(t, 8, 2, core.NewSLID())
	mlid82 := mustSubnet(t, 8, 2, core.NewMLID())
	return []struct {
		name string
		cfg  Config
	}{
		{"mlid-4x2-uniform-vl2", Config{
			Subnet: uni42, Pattern: traffic.Uniform{Nodes: uni42.Tree.Nodes()},
			DataVLs: 2, OfferedLoad: 0.4, WarmupNs: 10_000, MeasureNs: 60_000, Seed: 7,
		}},
		{"slid-8x2-centric-vl1", Config{
			Subnet: slid82, Pattern: traffic.Centric{Nodes: slid82.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
			OfferedLoad: 0.5, WarmupNs: 10_000, MeasureNs: 50_000, Seed: 3,
		}},
		{"mlid-8x2-uniform-vl4-saf", Config{
			Subnet: mlid82, Pattern: traffic.Uniform{Nodes: mlid82.Tree.Nodes()},
			DataVLs: 4, OfferedLoad: 0.6, WarmupNs: 10_000, MeasureNs: 50_000,
			Switching: SwitchingSAF, Reception: ReceptionLink, Seed: 11,
		}},
		{"mlid-4x2-lowload-heapgen", Config{
			// Interarrival 256/0.04 = 6400 ns exceeds the calendar horizon, so
			// generation events take the far-heap path on the new engine.
			Subnet: uni42, Pattern: traffic.Uniform{Nodes: uni42.Tree.Nodes()},
			OfferedLoad: 0.04, WarmupNs: 10_000, MeasureNs: 80_000, Seed: 19,
		}},
	}
}

// fingerprint compacts a Result into a stable, human-diffable line set.
func fingerprint(r Result) string {
	return fmt.Sprintf(
		"accepted=%.9f mean_lat=%.6f p99=%.6f max=%.6f net_lat=%.6f "+
			"delivered=%d generated=%d total_del=%d total_gen=%d inflight=%d "+
			"events=%d end=%d ooo=%d max_util=%.9f mean_util=%.9f",
		r.Accepted, r.MeanLatencyNs, r.P99LatencyNs, r.MaxLatencyNs, r.MeanNetLatencyNs,
		r.DeliveredWindow, r.GeneratedWindow, r.TotalDelivered, r.TotalGenerated, r.InFlightAtEnd,
		r.Events, r.EndTime, r.OutOfOrder, r.MaxLinkUtilization, r.MeanLinkUtilization)
}

// TestGoldenDeterminism pins simulation results against fixtures recorded
// before the engine rewrite. Run with -update to re-record.
func TestGoldenDeterminism(t *testing.T) {
	var lines []string
	for _, tc := range goldenCases(t) {
		res, err := Run(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		lines = append(lines, tc.name+": "+fingerprint(res))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden_results.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("results drifted from recorded fixtures\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunDeterminism requires a config to produce an identical Result
// field-by-field when run twice, on both scheduler paths: the default
// calendar+heap engine and the heap-only fallback (calendar disabled).
func TestRunDeterminism(t *testing.T) {
	sn := mustSubnet(t, 8, 2, core.NewMLID())
	cfg := Config{
		Subnet:  sn,
		Pattern: traffic.Centric{Nodes: sn.Tree.Nodes(), Hotspot: 0, Fraction: 0.5},
		DataVLs: 2, OfferedLoad: 0.5,
		WarmupNs: 10_000, MeasureNs: 50_000,
		TracePackets: 4, SeriesIntervalNs: 10_000,
		CollectPortStats: true, Seed: 5,
	}
	run := func() Result {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config, different results:\n a: %+v\n b: %+v", a, b)
	}
	heapOnly := withHeapOnlyEngine(t, run)
	if !reflect.DeepEqual(a, heapOnly) {
		t.Errorf("calendar and heap-only scheduler paths disagree:\n cal:  %s\n heap: %s",
			fingerprint(a), fingerprint(heapOnly))
	}
}

// TestBatchDeterminism does the same for the closed-workload runner.
func TestBatchDeterminism(t *testing.T) {
	sn := mustSubnet(t, 4, 2, core.NewMLID())
	bc := BatchConfig{
		Subnet:   sn,
		Messages: Gather(sn.Tree, 0, 2048),
		DataVLs:  2,
		Seed:     9,
	}
	run := func() BatchResult {
		res, err := RunBatch(bc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same batch config, different results:\n a: %+v\n b: %+v", a, b)
	}
	heapOnly := withHeapOnlyEngine(t, run)
	if a != heapOnly {
		t.Errorf("calendar and heap-only scheduler paths disagree:\n cal:  %+v\n heap: %+v", a, heapOnly)
	}
}

var _ = topology.MustNew // keep import while cases evolve
