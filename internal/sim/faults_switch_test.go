package sim

import (
	"reflect"
	"strings"
	"testing"

	"mlid/internal/core"
	"mlid/internal/topology"
)

// findSwitch returns the first switch of the tree at the given level.
func findSwitch(t *testing.T, tr *topology.Tree, level int) int32 {
	t.Helper()
	for sw := 0; sw < tr.Switches(); sw++ {
		if tr.SwitchLevel(topology.SwitchID(sw)) == level {
			return int32(sw)
		}
	}
	t.Fatalf("no switch at level %d", level)
	return -1
}

// TestSwitchFaultRootOutage kills one root switch atomically — every port
// down at the same instant, one shared trap — and revives it later. In
// FT(4,2) the second root keeps every destination reachable, so MLID with
// reselection rides through, and revival restores the fabric.
func TestSwitchFaultRootOutage(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	root := findSwitch(t, cfg.Subnet.Tree, 0)
	cfg.FaultPlan = &FaultPlan{
		SwitchFaults: []SwitchFault{{Switch: root, DownNs: 40_000, UpNs: 80_000}},
		Reselect:     true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstFaultNs != 40_000 {
		t.Errorf("FirstFaultNs = %d, want 40000", res.FirstFaultNs)
	}
	if res.DroppedTotal == 0 {
		t.Error("killing a root switch dropped nothing")
	}
	if res.Reroutes == 0 {
		t.Error("no reroutes: reselection never steered off the dead root")
	}
	if got := res.TotalDelivered + res.DroppedTotal + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("conservation: delivered+dropped+inflight = %d, generated = %d", got, res.TotalGenerated)
	}
	// Atomic outage: the switch's ports must all die at the same instant —
	// no drop may be recorded between the first down event and the fault
	// time itself (they coincide).
	if res.LastDropNs <= 40_000 {
		t.Errorf("LastDropNs = %d: drops should continue past the fault instant", res.LastDropNs)
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Error("switch-fault run is not deterministic")
	}
}

// TestSwitchFaultLeafWithTransport kills a leaf switch — severing its
// attached nodes entirely — then revives it. With the reliable transport on,
// traffic to the severed nodes retries through the outage and succeeds after
// revival: zero silent loss, zero failures, nothing left in flight.
func TestSwitchFaultLeafWithTransport(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	leaf := findSwitch(t, cfg.Subnet.Tree, cfg.Subnet.Tree.N()-1)
	cfg.FaultPlan = &FaultPlan{
		SwitchFaults: []SwitchFault{{Switch: leaf, DownNs: 40_000, UpNs: 80_000}},
		Reselect:     true,
	}
	cfg.Transport = &TransportConfig{DrainNs: 500_000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits == 0 {
		t.Fatal("no retransmissions across a 40us leaf outage")
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d, want 0: the leaf revives well within the retry budget", res.Failed)
	}
	if res.InFlightAtEnd != 0 {
		t.Errorf("InFlightAtEnd = %d, want 0", res.InFlightAtEnd)
	}
	if res.LastRecoveredNs < 80_000 {
		t.Errorf("LastRecoveredNs = %d, want after the revival at 80000", res.LastRecoveredNs)
	}
	if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
		t.Errorf("conservation: delivered+failed+inflight = %d, generated = %d", got, res.TotalGenerated)
	}
}

// TestFaultPlanValidationExtended exercises the up-front plan validation:
// unknown names, inversions, duplicate events at the same instant, and
// overlapping outages — including a link fault colliding with a switch fault
// that covers the same link, and the same link addressed from both ends.
func TestFaultPlanValidationExtended(t *testing.T) {
	cfg := faultCfg(t, core.NewMLID(), nil)
	tr := cfg.Subnet.Tree
	// The peer endpoint of the canonical (switch 2, port 2) spine link.
	peer := tr.SwitchNeighbor(topology.SwitchID(2), 2)
	if peer.Kind != topology.KindSwitch {
		t.Fatalf("switch 2 port 2 is not an inter-switch link")
	}
	cases := []struct {
		name string
		plan *FaultPlan
		want string
	}{
		{
			"unknown switch",
			&FaultPlan{SwitchFaults: []SwitchFault{{Switch: 99, DownNs: 1}}},
			"invalid switch",
		},
		{
			"switch up before down",
			&FaultPlan{SwitchFaults: []SwitchFault{{Switch: 0, DownNs: 10, UpNs: 5}}},
			"not after its failure",
		},
		{
			"duplicate link events at the same instant",
			&FaultPlan{Faults: []LinkFault{
				{Switch: 2, Port: 2, DownNs: 10},
				{Switch: 2, Port: 2, DownNs: 10},
			}},
			"same instant",
		},
		{
			"same link from both ends",
			&FaultPlan{Faults: []LinkFault{
				{Switch: 2, Port: 2, DownNs: 10},
				{Switch: int32(peer.Switch), Port: peer.Port, DownNs: 10},
			}},
			"same instant",
		},
		{
			"overlapping outages",
			&FaultPlan{Faults: []LinkFault{
				{Switch: 2, Port: 2, DownNs: 10, UpNs: 50},
				{Switch: 2, Port: 2, DownNs: 30, UpNs: 70},
			}},
			"overlaps",
		},
		{
			"event after forever-down",
			&FaultPlan{Faults: []LinkFault{
				{Switch: 2, Port: 2, DownNs: 10},
				{Switch: 2, Port: 2, DownNs: 50, UpNs: 60},
			}},
			"forever",
		},
		{
			"revive and kill at the same instant",
			&FaultPlan{Faults: []LinkFault{
				{Switch: 2, Port: 2, DownNs: 10, UpNs: 50},
				{Switch: 2, Port: 2, DownNs: 50, UpNs: 60},
			}},
			"same instant",
		},
		{
			"link fault inside a switch fault",
			&FaultPlan{
				Faults:       []LinkFault{{Switch: 2, Port: 2, DownNs: 30, UpNs: 40}},
				SwitchFaults: []SwitchFault{{Switch: 2, DownNs: 10, UpNs: 50}},
			},
			"overlaps",
		},
	}
	for _, c := range cases {
		_, err := Run(faultCfg(t, core.NewMLID(), c.plan))
		if err == nil {
			t.Errorf("%s: plan accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Disjoint outages of the same link in succession are fine.
	ok := &FaultPlan{Faults: []LinkFault{
		{Switch: 2, Port: 2, DownNs: 30_000, UpNs: 50_000},
		{Switch: 2, Port: 2, DownNs: 60_000, UpNs: 70_000},
	}}
	if _, err := Run(faultCfg(t, core.NewMLID(), ok)); err != nil {
		t.Errorf("disjoint repeated outages rejected: %v", err)
	}
}
