package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/stats"
	"mlid/internal/topology"
)

// noPort is the nil value of a global port id (see Sim.ports): a packet not
// yet transmitted by any port, or a compiled forwarding entry with no route.
const noPort int32 = -1

// pktSlabSize is how many packets one backing-array allocation provides to
// newPkt; the free list recycles them for the rest of the run. The size is a
// power of two so a packet's stable slab index (pkt.idx) decomposes into
// (slab, offset) by shift and mask in pktAt.
const (
	pktSlabShift = 8
	pktSlabSize  = 1 << pktSlabShift
)

// pkt is an in-flight packet plus per-hop bookkeeping.
type pkt struct {
	ib.Packet
	// idx is the packet's stable slab index (see Sim.pktAt): events reference
	// packets by this index instead of by pointer, keeping the scheduler's
	// queues pointer-free. Assigned once when the slab is carved; newPkt
	// preserves it across recycling.
	idx int32
	// flowSeq is the packet's generation index within its (src, dst) flow.
	flowSeq uint32
	// arrival is the head-arrival time at the current switch.
	arrival Time
	// inPort is the abstract input port at the current switch; the crossbar
	// arbiter round-robins over input ports.
	inPort int32
	// upstream is the global port id of the output port that transmitted the
	// packet on its last hop; its credit is returned when this hop's input
	// buffer frees. noPort while the packet sits in its source.
	upstream int32
	// trace records the packet's timeline when tracing is on.
	trace *PacketTrace

	// Reliable-transport fields (Config.Transport). ctrl distinguishes data
	// from ACK/NAK control packets; cum/sack are the control packet's
	// cumulative and selective acknowledgments; rexmit marks a
	// retransmission copy.
	ctrl   uint8
	cum    uint32
	sack   uint32
	rexmit bool
}

// pktFIFO is a packet queue drained by head index so its backing array is
// reused instead of re-allocated (append + [1:] reslicing strands capacity).
// Compaction keeps memory bounded when the queue never fully drains.
type pktFIFO struct {
	items []*pkt
	head  int
}

// vlFlow is the link-level flow-control state of one (port, VL): credits the
// transmitter holds for the receiver's input buffer, and packets resident in
// the transmitter's output buffer.
type vlFlow struct {
	credits   int32
	occupancy int32
}

func (q *pktFIFO) push(p *pkt) { q.items = append(q.items, p) }
func (q *pktFIFO) len() int    { return len(q.items) - q.head }

func (q *pktFIFO) popFront() *pkt {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// portState is the scalar state of one transmitting port — a switch output
// port or an endnode source. Ports live in one dense array indexed by global
// port id (switch sw's abstract port k is sw*M+k; node i's source is
// srcBase+i), and all per-(port, VL) state lives in parallel flat slices
// indexed pid*vls+vl (Sim.credits, .occupancy, .queues, .waiting, .rrIn), so
// the per-packet path walks index-addressed arrays instead of chasing
// per-port heap objects.
type portState struct {
	busyUntil Time
	busyAccum Time  // total time this link spent transmitting
	pktCount  int64 // packets transmitted

	// destNode >= 0 marks a link ending at that endnode; otherwise the link
	// ends at input port destPort of switch destSw.
	destNode int32
	destSw   int32
	destPort int32

	rrNext int32 // round-robin pointer over VLs (link arbitration)

	// limited marks switch output buffers (capacity BufPackets per VL);
	// endnode source queues are unbounded (open-loop injection).
	limited  bool
	isSource bool

	// dead marks a link killed by a FaultPlan event: nothing transmits on
	// it, and packets entering or arriving over it are dropped.
	dead      bool
	kickArmed bool
}

// nodeState is one endnode: an open-loop generator plus a sink. The k-th
// generation time is derived from the integer packet count (genTimeAt) rather
// than a float accumulator, so rounding error cannot drift over soak-length
// runs.
type nodeState struct {
	rng      *rand.Rand
	genPhase float64
	genCount int64
	nextVL   int
}

// Sim is one in-progress simulation run.
type Sim struct {
	engine
	cfg  Config
	tree *topology.Tree

	// Struct-of-arrays switch and source state, preallocated once per run.
	// m/vls are the indexing strides; srcBase is the global port id of node
	// 0's source port (switches*m).
	m, vls  int
	srcBase int32
	ports   []portState
	// Per-(port, VL) state, indexed pid*vls+vl. The credit and occupancy
	// counters share one struct so the flow-control updates a packet makes at
	// the same (port, VL) touch one cache line, not two parallel arrays.
	cv      []vlFlow
	queues  []pktFIFO // packets in the output buffer, FIFO
	waiting [][]*pkt  // packets stuck in input buffers upstream of the
	// crossbar, waiting for an output-buffer slot
	rrIn []int32 // round-robin pointer over input ports (crossbar arbitration)

	// lfts holds each switch's live forwarding table; fwd16/fwd32 is its
	// compiled form — one flat row of lftSize entries per switch mapping DLID
	// directly to the global port id of the output port (noPort: no route).
	// Compiled at build and recompiled entry-wise by applyLFTUpdate, so the
	// forwarding step is a single array read with no method call or error
	// construction. fwd16 is used whenever every global port id fits in an
	// int16 (every practical fabric): halving the table's footprint keeps the
	// hot rows cache-resident, and route's load of it is the single most
	// frequent memory access in a run. fwd32 is the fallback for enormous
	// fabrics; exactly one of the two is non-nil.
	lfts    []*ib.LFT
	fwd16   []int16
	fwd32   []int32
	lftSize int
	// warmSink absorbs the hot path's cache-warming reads (swArrive touching
	// the compiled forwarding entry its evRoute will read, nodeArrive and
	// deliverIdeal touching the flow-ordering counter their evDeliver will
	// update). Summing into a field keeps the loads from being eliminated;
	// the value is never consumed.
	warmSink int64

	nodes []nodeState

	// selector is the resolved path-selection policy (Config.PathSelect,
	// rank when nil); selState is the per-(src,dst) flow-state array
	// stateful selectors pin choices in (flowspray's pin, adaptive's current
	// path), allocated only when the selector needs it. Entry (src,dst) is
	// touched only by events on src's lane, so the array — shared by a
	// sharded run's lanes like cv — stays race-free and deterministic.
	// selCtx is the reused per-call context: selectors receive *SelectContext
	// through an interface, and a stack-local would escape to the heap on
	// every packet.
	selector Selector
	selState []uint32
	selCtx   SelectContext

	serPkt Time    // serialization time of a full packet
	ia     float64 // per-node open-loop interarrival in ns
	end    Time    // generation/measurement horizon

	err error

	// counters
	totalGenerated, totalDelivered   int64
	generatedWindow, deliveredWindow int64
	deliveredBytesWindow             int64
	outOfOrder                       int64
	lat                              stats.LatencyCollector
	netLat                           stats.LatencyCollector

	// flowSeq / flowHigh track per-(src,dst) generation sequence numbers
	// and the highest delivered one, for the reordering metric. nil when
	// the fabric is too large to track.
	flowSeq, flowHigh []uint32

	traces []*PacketTrace

	// lastDelivery is the latest tail-delivery timestamp (batch makespan).
	lastDelivery Time

	// pktFree recycles delivered packets, refilled in slabs from pktSlab (the
	// carving tail of the newest entry in pktSlabs, which pktAt indexes by
	// pkt.idx). A pkt on the free list is dead: the model must never
	// reference a packet after its evDeliver dispatched (see DESIGN.md,
	// "Event engine internals").
	pktFree  []*pkt
	pktSlab  []pkt
	pktSlabs [][]pkt

	// series accumulators, indexed by tail / SeriesIntervalNs.
	seriesBytes    []int64
	seriesCount    []int64
	seriesLat      []float64
	seriesDropped  []int64
	seriesReroutes []int64
	seriesRexmit   []int64
	seriesFailed   []int64
	// seriesUnreachable counts packets written off by partition-aware
	// degradation (FaultPlan.InBandSM) per interval; zero-filled otherwise.
	seriesUnreachable []int64

	// reliable-transport state (Config.Transport); nil when disabled.
	transport *transportRun

	// shard is non-nil only inside a sharded run (Config.Shards > 1): the
	// lane's window-recording state plus its link back to the coordinator.
	// nil on the classic single-engine path, whose schedule() then forwards
	// straight to the embedded engine.
	shard *shardCtx

	// live-fault state and counters (Config.FaultPlan). A pointer so the
	// sharded engine's lanes — shallow copies of one master Sim — share a
	// single fault state, which only barrier-aligned coordinator events
	// mutate.
	faults              *faultRun
	droppedTotal        int64
	droppedWindow       int64
	droppedAtDeadLink   int64
	droppedOnDeadLink   int64
	reroutes            int64
	lftUpdates          int64
	lftEntriesRewritten int64
	lastDropNs          Time
}

// nodePid returns the global port id of a node's source port.
func (s *Sim) nodePid(node int32) int32 { return s.srcBase + node }

// schedule enqueues an event, shadowing the embedded engine's method: the
// classic path forwards straight to the engine, while a sharded lane routes
// through its shard context (recording the call for the barrier replay, or —
// outside a window — inserting directly with a coordinator-assigned
// sequence). The single nil check is the sharded engine's only cost on the
// classic hot path.
func (s *Sim) schedule(t Time, ev event) {
	if s.shard == nil {
		s.engine.schedule(t, ev)
		return
	}
	s.shard.scheduleSharded(s, t, ev)
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if n := cfg.effectiveShards(); n > 1 {
		return runSharded(cfg, n)
	}
	s := build(cfg)
	s.end = cfg.WarmupNs + cfg.MeasureNs

	s.scheduleFaults()

	// Start every generator at a random phase within its first interval to
	// avoid lockstep injection.
	ia := s.interarrival()
	for i := range s.nodes {
		n := &s.nodes[i]
		n.genPhase = n.rng.Float64() * ia
		s.schedule(genTimeAt(n.genPhase, ia, 0), event{kind: evGenerate, a: int32(i)})
	}

	// With transport on, the run drains past the generation horizon so
	// outstanding retransmissions resolve into a delivery or a Failed count;
	// without it the horizon is the classic measurement end.
	horizon := s.end
	if s.transport != nil {
		horizon += s.transport.cfg.DrainNs
	}
	events := s.runUntil(horizon)
	if s.err != nil {
		return Result{}, s.err
	}
	return s.buildResult(horizon, events), nil
}

// buildResult assembles a finished run's Result from the Sim's accumulated
// state. Shared by the classic path and the sharded path (which first merges
// every lane's counters and collectors back into the master Sim).
func (s *Sim) buildResult(horizon Time, events int64) Result {
	cfg := s.cfg
	res := Result{
		OfferedLoad:      cfg.OfferedLoad,
		DeliveredWindow:  s.deliveredWindow,
		GeneratedWindow:  s.generatedWindow,
		TotalDelivered:   s.totalDelivered,
		TotalGenerated:   s.totalGenerated,
		InFlightAtEnd:    s.totalGenerated - s.totalDelivered - s.droppedTotal,
		Events:           events,
		EndTime:          s.now,
		MeanLatencyNs:    s.lat.Mean(),
		P99LatencyNs:     s.lat.Percentile(0.99),
		MaxLatencyNs:     s.lat.Max(),
		MeanNetLatencyNs: s.netLat.Mean(),
		OutOfOrder:       s.outOfOrder,
	}
	if s.flowHigh == nil {
		res.OutOfOrder = -1
	}
	if cfg.FaultPlan != nil {
		res.DroppedTotal = s.droppedTotal
		res.DroppedWindow = s.droppedWindow
		res.DroppedAtDeadLink = s.droppedAtDeadLink
		res.DroppedOnDeadLink = s.droppedOnDeadLink
		res.Reroutes = s.reroutes
		res.LFTUpdates = s.lftUpdates
		res.LFTEntriesRewritten = s.lftEntriesRewritten
		res.BrokenEntries = s.faults.lastBroken
		res.VerifiedEpochs = s.faults.verifiedEpochs
		res.VerifyWarnings = s.faults.verifyWarnings
		res.LastDropNs = s.lastDropNs
		if s.faults.firstDownNs >= 0 {
			res.FirstFaultNs = s.faults.firstDownNs
			if s.faults.lastRepairNs >= 0 {
				res.RecoveryNs = s.faults.lastRepairNs - s.faults.firstDownNs
			}
		}
	}
	res.P999LatencyNs = s.lat.Percentile(0.999)
	if t := s.transport; t != nil {
		res.Retransmits = t.retransmits
		res.Failed = t.failed
		res.DupDeliveries = t.dupDeliveries
		res.AcksSent = t.acksSent
		res.NaksSent = t.naksSent
		res.CtrlBytesSent = t.ctrlBytes
		res.LastRecoveredNs = t.lastRecoveredNs
		res.DrainedNs = t.cfg.DrainNs
		// Dropped copies are retried, not lost: the conservation identity is
		// generated = delivered + failed + in-flight.
		res.InFlightAtEnd = s.totalGenerated - s.totalDelivered - t.failed
	}
	if ib := s.faults.inband; ib != nil {
		res.TrapsSent = ib.trapsSent
		res.TrapsLost = ib.trapsLost
		res.TrapsDelivered = ib.trapsDelivered
		res.SMSweeps = ib.sweeps
		res.SweepDetections = ib.sweepDetections
		res.SMPsSent = ib.smpSent
		res.SMPRetries = ib.smpRetries
		res.SMPFailed = ib.smpFailed
		res.Failovers = ib.failovers
		res.PartitionEvents = ib.partitionEvents
		res.UnreachableDegraded = ib.unreachableDegraded
		// Degraded packets left the sender's books without a Failed count:
		// generated = delivered + failed + unreachable-degraded + in-flight.
		res.InFlightAtEnd -= ib.unreachableDegraded
	}
	res.Accepted = float64(s.deliveredBytesWindow) / float64(cfg.MeasureNs) / float64(s.tree.Nodes())
	res.Saturated = res.Accepted < 0.98*cfg.OfferedLoad
	var sum float64
	var links int
	for sw := 0; sw < s.tree.Switches(); sw++ {
		for k := 0; k < s.m; k++ {
			pt := &s.ports[sw*s.m+k]
			u := float64(pt.busyAccum) / float64(horizon)
			if u > res.MaxLinkUtilization {
				res.MaxLinkUtilization = u
			}
			sum += u
			links++
		}
	}
	for i := range s.nodes {
		pt := &s.ports[int(s.srcBase)+i]
		if u := float64(pt.busyAccum) / float64(horizon); u > res.MaxLinkUtilization {
			res.MaxLinkUtilization = u
		}
	}
	if links > 0 {
		res.MeanLinkUtilization = sum / float64(links)
	}
	res.Traces = s.traces
	if iv := cfg.SeriesIntervalNs; iv > 0 {
		for bin := range s.seriesBytes {
			sp := SeriesPoint{
				StartNs:     Time(bin) * iv,
				Accepted:    float64(s.seriesBytes[bin]) / float64(iv) / float64(s.tree.Nodes()),
				Delivered:   s.seriesCount[bin],
				Dropped:     s.seriesDropped[bin],
				Reroutes:    s.seriesReroutes[bin],
				Retransmits: s.seriesRexmit[bin],
				Failed:      s.seriesFailed[bin],
				Unreachable: s.seriesUnreachable[bin],
			}
			if s.seriesCount[bin] > 0 {
				sp.MeanLatencyNs = s.seriesLat[bin] / float64(s.seriesCount[bin])
			}
			res.Series = append(res.Series, sp)
		}
	}
	if cfg.CollectPortStats {
		for sw := 0; sw < s.tree.Switches(); sw++ {
			for port := 0; port < s.m; port++ {
				pt := &s.ports[sw*s.m+port]
				if pt.pktCount == 0 {
					continue
				}
				res.PortStats = append(res.PortStats, PortStat{
					Switch: int32(sw), Port: port,
					BusyNs: pt.busyAccum, Packets: pt.pktCount,
					Utilization: float64(pt.busyAccum) / float64(horizon),
				})
			}
		}
		for ni := range s.nodes {
			pt := &s.ports[int(s.srcBase)+ni]
			if pt.pktCount == 0 {
				continue
			}
			res.PortStats = append(res.PortStats, PortStat{
				IsNode: true, Node: int32(ni),
				BusyNs: pt.busyAccum, Packets: pt.pktCount,
				Utilization: float64(pt.busyAccum) / float64(horizon),
			})
		}
		sort.Slice(res.PortStats, func(i, j int) bool {
			a, b := res.PortStats[i], res.PortStats[j]
			if a.BusyNs != b.BusyNs {
				return a.BusyNs > b.BusyNs
			}
			if a.IsNode != b.IsNode {
				return !a.IsNode
			}
			if a.Switch != b.Switch {
				return a.Switch < b.Switch
			}
			if a.Port != b.Port {
				return a.Port < b.Port
			}
			return a.Node < b.Node
		})
	}
	return res
}

func build(cfg Config) *Sim {
	t := cfg.Subnet.Tree
	S, M, N := t.Switches(), t.M(), t.Nodes()
	s := &Sim{
		cfg:     cfg,
		tree:    t,
		m:       M,
		srcBase: int32(S * M),
		serPkt:  Time(cfg.PacketSize) * cfg.NsPerByte,
		ia:      float64(cfg.PacketSize) * float64(cfg.NsPerByte) / cfg.OfferedLoad,
		faults:  &faultRun{},
	}
	s.engine.heapOnly = engineHeapOnly || cfg.HeapOnlyScheduler
	// The reliable transport claims one management VL for ACK/NAK traffic on
	// top of the data VLs; without it the port arrays keep their classic
	// shape, byte for byte.
	vls := cfg.DataVLs
	if cfg.Transport != nil {
		vls++
	}
	s.vls = vls
	numPorts := S*M + N
	s.ports = make([]portState, numPorts)
	s.cv = make([]vlFlow, numPorts*vls)
	s.queues = make([]pktFIFO, numPorts*vls)
	s.waiting = make([][]*pkt, numPorts*vls)
	s.rrIn = make([]int32, numPorts*vls)
	for i := range s.cv {
		s.cv[i].credits = int32(cfg.BufPackets)
	}
	// Slab-back the FIFOs: a switch output buffer holds at most BufPackets
	// per VL (occupancy-gated), so its backing array is sized exactly;
	// source queues are unbounded (open-loop backlog) and get a modest
	// starting capacity, growing off-slab past it.
	swSlab := make([]*pkt, S*M*vls*cfg.BufPackets)
	for i := 0; i < S*M*vls; i++ {
		s.queues[i].items = swSlab[i*cfg.BufPackets : i*cfg.BufPackets : (i+1)*cfg.BufPackets]
	}
	const srcCap = 16
	srcSlab := make([]*pkt, N*vls*srcCap)
	for i := 0; i < N*vls; i++ {
		s.queues[S*M*vls+i].items = srcSlab[i*srcCap : i*srcCap : (i+1)*srcCap]
	}
	s.lfts = make([]*ib.LFT, S)
	for sw := 0; sw < S; sw++ {
		lft := cfg.Subnet.LFTs[sw]
		if cfg.FaultPlan != nil {
			// Live tables diverge from the configured subnet once the SM
			// model starts applying timed updates; clone so the caller's
			// subnet stays pristine (and serves as the repair baseline).
			lft = lft.Clone()
		}
		s.lfts[sw] = lft
		if n := lft.Size(); n > s.lftSize {
			s.lftSize = n
		}
		for k := 0; k < M; k++ {
			ref := t.SwitchNeighbor(topology.SwitchID(sw), k)
			pt := &s.ports[sw*M+k]
			pt.limited = true
			pt.destNode = -1
			switch ref.Kind {
			case topology.KindNode:
				pt.destNode = int32(ref.Node)
			case topology.KindSwitch:
				pt.destSw = int32(ref.Switch)
				pt.destPort = int32(ref.Port)
			}
		}
	}
	if maxPid := S*M + N - 1; maxPid <= math.MaxInt16 {
		s.fwd16 = make([]int16, S*s.lftSize)
	} else {
		s.fwd32 = make([]int32, S*s.lftSize)
	}
	for sw := 0; sw < S; sw++ {
		s.compileLFT(int32(sw))
	}
	s.nodes = make([]nodeState, N)
	for p := 0; p < N; p++ {
		sw, port := t.NodeAttachment(topology.NodeID(p))
		pt := &s.ports[int(s.srcBase)+p]
		pt.isSource = true
		pt.destNode = -1
		pt.destSw = int32(sw)
		pt.destPort = int32(port)
		s.nodes[p].rng = rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p)))
	}
	if n := t.Nodes(); n <= 4096 {
		s.flowSeq = make([]uint32, n*n)
		s.flowHigh = make([]uint32, n*n)
	}
	s.selector = cfg.PathSelect
	if s.selector == nil {
		s.selector = SelectRank()
	}
	if s.selector.NeedsFlowState() {
		// validate capped stateful selectors at 4096 nodes.
		s.selState = make([]uint32, N*N)
	}
	if cfg.Transport != nil {
		n := t.Nodes()
		s.transport = &transportRun{
			cfg:    *cfg.Transport,
			mgmtVL: uint8(cfg.DataVLs), // last VL index: the one claimed above
			tx:     make([]txFlow, n*n),
			rx:     make([]rxFlow, n*n),
		}
	}
	return s
}

// compileLFT rebuilds one switch's compiled forwarding row from its live
// table. Called at build for every switch; fault-time table rewrites
// recompile entry-wise in applyLFTUpdate instead.
func (s *Sim) compileLFT(sw int32) {
	base := int(sw) * s.lftSize
	lft := s.lfts[sw]
	for lid := 0; lid < s.lftSize; lid++ {
		s.setFwd(base+lid, s.compileEntry(sw, lft.Port(ib.LID(lid))))
	}
}

// fwdAt reads one compiled forwarding entry; setFwd writes one. Only the
// build/recompile paths and the cold fault-probe use these — route inlines
// the fwd16 read directly.
func (s *Sim) fwdAt(i int) int32 {
	if s.fwd16 != nil {
		return int32(s.fwd16[i])
	}
	return s.fwd32[i]
}

func (s *Sim) setFwd(i int, pid int32) {
	if s.fwd16 != nil {
		s.fwd16[i] = int16(pid)
		return
	}
	s.fwd32[i] = pid
}

// compileEntry fuses one raw LFT entry (a 1-based physical port) into the
// global port id of the switch's output port, or noPort when the entry names
// no usable port.
func (s *Sim) compileEntry(sw int32, phys uint8) int32 {
	out := int(phys) - 1
	if phys == ib.PortNone || out < 0 || out >= s.m {
		return noPort
	}
	return sw*int32(s.m) + int32(out)
}

// interarrival returns the per-node packet spacing in ns, computed once at
// build (generate derives every deadline from it; recomputing the division
// per packet was measurable).
func (s *Sim) interarrival() float64 { return s.ia }

// runUntil processes events in order until the queue is empty or the next
// event is later than end. It returns the number of events processed.
func (s *Sim) runUntil(end Time) int64 {
	var n int64
	for {
		ev, ok := s.pop(end)
		if !ok {
			break
		}
		s.dispatch(ev)
		n++
	}
	return n
}

// dispatch runs one typed event. This switch replaces the per-event closure
// of the original engine; it is the single place event kinds gain meaning.
func (s *Sim) dispatch(ev event) {
	switch ev.kind {
	case evGenerate:
		s.generate(ev.a)
	case evRoute:
		s.route(ev.a, s.pktAt(ev.pi))
	case evSwArrive:
		s.swArrive(ev.a, ev.b, s.pktAt(ev.pi))
	case evNodeArrive:
		s.nodeArrive(ev.a, s.pktAt(ev.pi))
	case evDeliver:
		// The event fires exactly at the packet's tail-arrival time.
		p := s.pktAt(ev.pi)
		s.deliver(ev.a, p, s.now)
		s.freePkt(p)
	case evCredit:
		s.creditArrive(ev.a, int(ev.b))
	case evKick:
		s.ports[ev.a].kickArmed = false
		s.kick(ev.a)
	case evRelease:
		s.releaseSlot(ev.a, int(ev.b))
	case evLinkDown:
		s.linkDown(ev.a, int(ev.b))
	case evLinkUp:
		s.linkUp(ev.a, int(ev.b))
	case evTrap:
		s.smTrap()
	case evLFTUpdate:
		s.applyLFTUpdate(int(ev.a))
	case evRexmit:
		s.rexmitTimer(ev.a, ev.b, ev.pi != 0)
	case evTrapArrive:
		s.trapArrive(ev.a, ev.b, ev.pi != 0)
	case evSMSweep:
		s.smSweep()
	case evSMPArrive:
		s.smpArrive(int(ev.a))
	case evSMPAck:
		s.smpAck(int(ev.a))
	case evSMPTimeout:
		s.smpTimeout(int(ev.a), ev.b)
	default:
		s.fail(fmt.Errorf("sim: unknown event kind %d (engine bug)", ev.kind))
	}
}

// newPkt returns a zeroed packet (upstream set to noPort), reusing a
// recycled one when available and refilling from slab-sized allocations
// otherwise, so packet churn costs one allocation per pktSlabSize packets.
func (s *Sim) newPkt() *pkt {
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree = s.pktFree[:n-1]
		idx := p.idx
		*p = pkt{}
		p.idx = idx
		p.upstream = noPort
		return p
	}
	if len(s.pktSlab) == 0 {
		slab := make([]pkt, pktSlabSize)
		base := int32(len(s.pktSlabs)) << pktSlabShift
		for j := range slab {
			slab[j].idx = base + int32(j)
		}
		s.pktSlabs = append(s.pktSlabs, slab)
		s.pktSlab = slab
	}
	p := &s.pktSlab[0]
	s.pktSlab = s.pktSlab[1:]
	p.upstream = noPort
	return p
}

// pktAt resolves a packet's stable slab index (pkt.idx) back to its handle.
// Events store this index instead of a *pkt so the scheduler's backing arrays
// hold no pointers.
func (s *Sim) pktAt(pi int32) *pkt {
	return &s.pktSlabs[pi>>pktSlabShift][pi&(pktSlabSize-1)]
}

// freePkt returns a delivered packet to the free list. The caller guarantees
// no live reference to p remains anywhere in the model.
func (s *Sim) freePkt(p *pkt) {
	s.pktFree = append(s.pktFree, p)
}

// generate creates one packet at the node, enqueues it at the source and
// schedules the next generation.
func (s *Sim) generate(node int32) {
	n := &s.nodes[node]
	dst := s.cfg.Pattern.Dest(int(node), n.rng)
	// The packet's flow sequence number is chosen before path selection so
	// per-packet selectors (pktspray) can key their rotation on it.
	var seq uint32
	if s.flowSeq != nil {
		seq = s.flowSeq[int(node)*s.tree.Nodes()+dst] + 1
	} else {
		seq = uint32(n.genCount)
	}
	dlid := s.selectDLID(n, topology.NodeID(node), topology.NodeID(dst), seq)
	s.totalGenerated++
	if s.now >= s.cfg.WarmupNs && s.now < s.end {
		s.generatedWindow++
	}
	var vl int
	if s.cfg.VLSelect == VLByDLID {
		vl = int(dlid) % s.cfg.DataVLs
	} else {
		vl = n.nextVL
		n.nextVL = (n.nextVL + 1) % s.cfg.DataVLs
	}
	p := s.newPkt()
	p.Packet = ib.Packet{
		SLID:    s.cfg.Subnet.Endports[node].Base,
		DLID:    dlid,
		VL:      uint8(vl),
		Size:    s.cfg.PacketSize,
		Seq:     uint64(s.totalGenerated),
		Src:     node,
		Dst:     int32(dst),
		GenTime: s.now,
	}
	if s.flowSeq != nil {
		s.flowSeq[int(node)*s.tree.Nodes()+dst] = seq
		p.flowSeq = seq
	}
	if len(s.traces) < s.cfg.TracePackets {
		p.trace = &PacketTrace{
			Seq: p.Seq, Src: node, Dst: int32(dst),
			DLID: uint16(dlid), VL: uint8(vl), GenNs: s.now,
		}
		s.traces = append(s.traces, p.trace)
	}
	if s.transport != nil {
		// Track before injecting: a packet dropped at a dead source link is
		// still unacknowledged and will be retried by the flow's timer.
		s.txTrack(node, p)
	}
	s.requestTransfer(s.nodePid(node), p)

	n.genCount++
	next := genTimeAt(n.genPhase, s.ia, n.genCount)
	if next <= s.end {
		s.schedule(next, event{kind: evGenerate, a: node})
	}
}

// genTimeAt returns the k-th generation time of a source with the given
// random phase and interarrival spacing. Deriving each time from the integer
// packet count (rather than accumulating a float) keeps the realized
// injection rate within one rounding of OfferedLoad at any horizon.
func genTimeAt(phase, ia float64, k int64) Time {
	return Time(math.Round(phase + float64(k)*ia))
}

// selectDLID applies the configured path-selection policy for one packet.
// Composition order is fixed: fault-avoiding reselection (FaultPlan.Reselect)
// first filters the destination's LID offsets down to those naming surviving
// paths, then the selector — or Config.DLIDFunc — chooses within the
// survivors. seq is the packet's sequence number within its (src, dst) flow.
func (s *Sim) selectDLID(n *nodeState, src, dst topology.NodeID, seq uint32) ib.LID {
	r := s.cfg.Subnet.Endports[dst]
	count := r.Count()
	if count > 64 {
		count = 64 // the usable mask tracks at most 64 offsets
	}
	fullMask := ^uint64(0) >> uint(64-count)
	mask := fullMask
	if s.reselectActive() {
		if m := s.usableMask(src, dst); m != 0 {
			// A zero mask (every tracked path dead) keeps the full mask:
			// selection proceeds normally and the packet documents the
			// outage by dropping at the dead link.
			mask = m
		}
	}
	if s.cfg.DLIDFunc != nil {
		return s.applyDLIDFunc(src, dst, r.Base, count, mask, fullMask)
	}
	canonical := int(s.cfg.Subnet.DLID(src, dst)) - int(r.Base)
	if canonical < 0 || canonical >= count {
		canonical = 0
	}
	c := &s.selCtx
	*c = SelectContext{
		Src: src, Dst: dst, Seq: seq, RNG: n.rng,
		Base: r.Base, Count: count, Mask: mask, Full: mask == fullMask,
		Canonical: canonical,
		View: CongestionView{
			s:       s,
			fwdBase: int(s.ports[s.nodePid(int32(src))].destSw)*s.lftSize + int(r.Base),
			dataVLs: s.cfg.DataVLs,
			maxCred: s.cfg.DataVLs * s.cfg.BufPackets,
		},
	}
	if s.selState != nil {
		c.state = &s.selState[int(src)*s.tree.Nodes()+int(dst)]
	}
	off, rerouted := s.selector.Select(c)
	if rerouted {
		s.noteReroute()
	}
	return r.Base + ib.LID(off)
}

// applyDLIDFunc routes a custom path plan (Config.DLIDFunc) through fault
// reselection: when the plan's choice names a path the usable mask marks
// dead, the nearest surviving offset (cyclic scan, as in rank failover)
// substitutes and counts as a reroute. Choices outside the tracked offset
// range pass through untouched.
func (s *Sim) applyDLIDFunc(src, dst topology.NodeID, base ib.LID, count int, mask, fullMask uint64) ib.LID {
	dlid := s.cfg.DLIDFunc(src, dst)
	if mask == fullMask {
		return dlid
	}
	off := int(dlid) - int(base)
	if off < 0 || off >= count || mask&(1<<uint(off)) != 0 {
		return dlid
	}
	for i := 1; i < count; i++ {
		o := (off + i) % count
		if mask&(1<<uint(o)) != 0 {
			s.noteReroute()
			return base + ib.LID(o)
		}
	}
	return dlid
}

// swArrive handles a packet head reaching a switch input port: after the
// crossbar routing delay the forwarding table names the output port and the
// packet requests an output-buffer slot.
func (s *Sim) swArrive(sw int32, inPort int32, p *pkt) {
	if p.upstream >= 0 && s.ports[p.upstream].dead {
		// The link died while the packet was flying or serializing on it.
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	p.arrival = s.now
	p.inPort = inPort
	if p.trace != nil {
		p.trace.Hops = append(p.trace.Hops, TraceHop{Switch: sw, ArriveNs: s.now})
	}
	delay := s.cfg.RouteNs
	if s.cfg.Switching == SwitchingSAF {
		// Store-and-forward: the table lookup waits for the tail.
		delay += s.serPkt
	}
	s.schedule(s.now+delay, event{kind: evRoute, a: sw, pi: p.idx})
	// Touch the compiled forwarding entry this packet's evRoute will read, so
	// the cache line is warm when the routing delay elapses. The summed-into-
	// a-sink read cannot be dead-code-eliminated and has no model effect: the
	// authoritative lookup still happens at route time, after any table
	// rewrite that lands in between.
	if i := int(sw)*s.lftSize + int(p.DLID); i < len(s.fwd16) {
		s.warmSink += int64(s.fwd16[i])
	}
}

// warmFlowHigh touches the flow-ordering counter the packet's evDeliver will
// update, so the line is warm at delivery time. No model effect; see warmSink.
func (s *Sim) warmFlowHigh(p *pkt) {
	if s.flowHigh != nil {
		s.warmSink += int64(s.flowHigh[int(p.Src)*s.tree.Nodes()+int(p.Dst)])
	}
}

// route fires when the crossbar routing delay elapses: the compiled
// forwarding row names the output port in one array read and the packet
// requests an output-buffer slot.
func (s *Sim) route(sw int32, p *pkt) {
	if int(p.DLID) >= s.lftSize {
		s.routeFail(sw, p)
		return
	}
	var pid int32
	if i := int(sw)*s.lftSize + int(p.DLID); s.fwd16 != nil {
		pid = int32(s.fwd16[i])
	} else {
		pid = s.fwd32[i]
	}
	if pid < 0 {
		s.routeFail(sw, p)
		return
	}
	pt := &s.ports[pid]
	if pt.dead {
		// The table — stale before the SM's repair lands, or holding an
		// irreparable descending entry after it — forwards onto a dead
		// link. Never silently misroute: count and drop.
		s.droppedAtDeadLink++
		s.dropPkt(p)
		return
	}
	if s.cfg.Reception == ReceptionIdeal && pt.destNode >= 0 {
		s.deliverIdeal(pt.destNode, p)
		return
	}
	s.requestTransfer(pid, p)
}

// routeFail aborts the run on a forwarding miss, reproducing the diagnostics
// of the uncompiled path: the raw table distinguishes a missing entry from
// one naming an out-of-range port.
func (s *Sim) routeFail(sw int32, p *pkt) {
	phys, err := s.lfts[sw].Lookup(p.DLID)
	if err != nil {
		s.fail(fmt.Errorf("sim: switch %d cannot forward DLID %d: %w", sw, p.DLID, err))
		return
	}
	s.fail(fmt.Errorf("sim: switch %d forwards DLID %d to invalid port %d", sw, p.DLID, phys))
}

// requestTransfer asks for an output-buffer slot on (pid, p.VL). If the
// buffer is full the packet waits in its input buffer (virtual cut-through:
// the whole packet collapses there), holding the upstream credit.
func (s *Sim) requestTransfer(pid int32, p *pkt) {
	pt := &s.ports[pid]
	if pt.dead {
		// Injection into a dead link (a source whose attachment link is
		// down, or a flush race); route-time drops are counted separately.
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	i := int(pid)*s.vls + int(p.VL)
	if pt.limited && s.cv[i].occupancy >= int32(s.cfg.BufPackets) {
		s.waiting[i] = append(s.waiting[i], p)
		return
	}
	s.cv[i].occupancy++
	s.completeTransfer(pid, p)
}

// completeTransfer moves the packet across the crossbar into the output
// buffer. The input buffer it came from frees once the tail has both arrived
// (arrival + serialization) and moved on — at which point the credit flies
// back to the upstream transmitter.
func (s *Sim) completeTransfer(pid int32, p *pkt) {
	vl := int(p.VL)
	if p.upstream >= 0 {
		free := p.arrival + s.serPkt
		if s.now > free {
			free = s.now
		}
		s.schedule(free+s.cfg.FlyNs, event{kind: evCredit, a: p.upstream, b: int32(vl)})
		p.upstream = noPort
	}
	s.queues[int(pid)*s.vls+vl].push(p)
	s.kick(pid)
}

// kick runs the output port's arbitration: when the link is idle it starts
// transmitting the next ready packet, picking among virtual lanes with
// queued packets and available credits in round-robin order.
func (s *Sim) kick(pid int32) {
	pt := &s.ports[pid]
	if pt.kickArmed || pt.dead {
		return
	}
	base := int(pid) * s.vls
	n := s.vls
	qs := s.queues[base : base+n]
	if pt.busyUntil > s.now {
		// Re-arbitrate when the link frees, if anything is pending.
		for vl := range qs {
			if qs[vl].len() > 0 {
				pt.kickArmed = true
				s.schedule(pt.busyUntil, event{kind: evKick, a: pid})
				return
			}
		}
		return
	}
	cr := s.cv[base : base+n]
	for i := 0; i < n; i++ {
		vl := (int(pt.rrNext) + i) % n
		if qs[vl].len() > 0 && cr[vl].credits > 0 {
			pt.rrNext = int32((vl + 1) % n)
			s.transmit(pid, vl)
			s.kick(pid) // arm for the next pending packet, if any
			return
		}
	}
}

// transmit starts serializing the head packet of the VL onto the link.
func (s *Sim) transmit(pid int32, vl int) {
	i := int(pid)*s.vls + vl
	p := s.queues[i].popFront()
	s.cv[i].credits--
	if s.cv[i].credits < 0 {
		s.fail(fmt.Errorf("sim: credit underflow on VL %d (model bug)", vl))
		return
	}
	pt := &s.ports[pid]
	start := s.now
	pt.busyUntil = start + s.serPkt
	pt.busyAccum += s.serPkt
	pt.pktCount++
	if pt.isSource {
		p.InjectTime = start
	}
	if p.trace != nil {
		if pt.isSource {
			p.trace.InjectNs = start
		} else if n := len(p.trace.Hops); n > 0 {
			p.trace.Hops[n-1].DepartNs = start
		}
	}
	if pt.limited {
		s.schedule(pt.busyUntil, event{kind: evRelease, a: pid, b: int32(vl)})
	} else {
		s.cv[i].occupancy--
	}
	p.upstream = pid
	if pt.destNode >= 0 {
		s.schedule(start+s.cfg.FlyNs, event{kind: evNodeArrive, a: pt.destNode, pi: p.idx})
	} else {
		s.schedule(start+s.cfg.FlyNs, event{kind: evSwArrive, a: pt.destSw, b: pt.destPort, pi: p.idx})
	}
}

// releaseSlot frees an output-buffer slot when a packet's tail has left the
// switch, admitting one waiting input-buffered packet of that VL. The
// crossbar arbiter serves input ports in round-robin order (ties within an
// input port go to the oldest packet), the way a physical crossbar allocator
// shares an output among its contending inputs.
func (s *Sim) releaseSlot(pid int32, vl int) {
	i := int(pid)*s.vls + vl
	s.cv[i].occupancy--
	if s.cv[i].occupancy < 0 {
		s.fail(fmt.Errorf("sim: output-buffer occupancy underflow on VL %d (model bug)", vl))
		return
	}
	if len(s.waiting[i]) == 0 {
		return
	}
	// Pick the waiting packet whose input port follows the round-robin
	// pointer most closely; the waiting list is in request order, so the
	// first match per input port is that port's oldest packet.
	w := s.waiting[i]
	const big = int(^uint(0) >> 1)
	bestIdx, bestDist := -1, big
	for j, p := range w {
		d := int(p.inPort - s.rrIn[i])
		if d < 0 {
			d += 1 << 16 // any bound larger than the port count works
		}
		if d < bestDist {
			bestIdx, bestDist = j, d
		}
	}
	p := w[bestIdx]
	s.waiting[i] = append(w[:bestIdx], w[bestIdx+1:]...)
	s.rrIn[i] = p.inPort + 1
	s.cv[i].occupancy++
	s.completeTransfer(pid, p)
}

// creditArrive returns one credit to the transmitter and re-arbitrates.
func (s *Sim) creditArrive(pid int32, vl int) {
	i := int(pid)*s.vls + vl
	s.cv[i].credits++
	if s.cv[i].credits > int32(s.cfg.BufPackets) {
		s.fail(fmt.Errorf("sim: credit overflow on VL %d: %d > %d (model bug)",
			vl, s.cv[i].credits, s.cfg.BufPackets))
		return
	}
	s.kick(pid)
}

// deliverIdeal consumes a routed packet at its destination's leaf switch
// under ReceptionIdeal: the final hop contributes its uncontended flying and
// serialization time to latency, the input buffer frees once the tail has
// streamed through, and no shared final-link resource exists.
func (s *Sim) deliverIdeal(node int32, p *pkt) {
	tail := s.now + s.cfg.FlyNs + s.serPkt
	s.schedule(tail, event{kind: evDeliver, a: node, pi: p.idx})
	s.warmFlowHigh(p)
	if p.upstream >= 0 {
		free := p.arrival + s.serPkt
		if s.now > free {
			free = s.now
		}
		s.schedule(free+s.cfg.FlyNs, event{kind: evCredit, a: p.upstream, b: int32(p.VL)})
		p.upstream = noPort
	}
}

// nodeArrive handles a packet head reaching its destination endnode. The
// packet is consumed as it streams in: delivery completes at tail arrival,
// and the input buffer's credit returns immediately after.
func (s *Sim) nodeArrive(node int32, p *pkt) {
	if p.upstream >= 0 && s.ports[p.upstream].dead {
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	tail := s.now + s.serPkt
	up := p.upstream
	vl := int32(p.VL)
	p.upstream = noPort
	s.schedule(tail, event{kind: evDeliver, a: node, pi: p.idx})
	s.warmFlowHigh(p)
	if up >= 0 {
		// Guard against a missing upstream (as deliverIdeal and
		// completeTransfer do): scheduling evCredit for noPort would index
		// out of the port array in dispatch.
		s.schedule(tail+s.cfg.FlyNs, event{kind: evCredit, a: up, b: vl})
	}
}

// deliver finalizes a packet at its destination: correctness check,
// transport processing (ACK/NAK handling, duplicate suppression),
// ordering check, and window statistics.
func (s *Sim) deliver(node int32, p *pkt, tail Time) {
	if p.Dst != node {
		s.fail(fmt.Errorf("sim: packet %d for node %d delivered to node %d (DLID %d)",
			p.Seq, p.Dst, node, p.DLID))
		return
	}
	if s.transport != nil {
		if p.ctrl != ctrlData {
			s.ctrlArrive(node, p)
			return
		}
		if !s.rxAccept(node, p) {
			return // duplicate: counted, not delivered again
		}
		if p.rexmit {
			s.transport.lastRecoveredNs = tail
		}
	}
	s.totalDelivered++
	s.noteDelivery(tail)
	if s.flowHigh != nil {
		idx := int(p.Src)*s.tree.Nodes() + int(p.Dst)
		if p.flowSeq < s.flowHigh[idx] {
			s.outOfOrder++
		} else {
			s.flowHigh[idx] = p.flowSeq
		}
	}
	if iv := s.cfg.SeriesIntervalNs; iv > 0 && tail < s.end {
		bin := s.seriesBin(tail)
		s.seriesBytes[bin] += int64(p.Size)
		s.seriesCount[bin]++
		s.seriesLat[bin] += float64(tail - p.GenTime)
	}
	if p.trace != nil {
		p.trace.DeliverNs = tail
		if n := len(p.trace.Hops); n > 0 && p.trace.Hops[n-1].DepartNs == 0 {
			// Ideal reception consumes at the leaf; mark the hand-off.
			p.trace.Hops[n-1].DepartNs = tail - s.serPkt - s.cfg.FlyNs
		}
	}
	if tail >= s.cfg.WarmupNs && tail < s.end {
		s.deliveredWindow++
		s.deliveredBytesWindow += int64(p.Size)
		s.lat.Add(float64(tail - p.GenTime))
		s.netLat.Add(float64(tail - p.InjectTime))
		if s.cfg.LatencyHist != nil {
			s.cfg.LatencyHist.Add(float64(tail - p.GenTime))
		}
	}
}

// seriesBin returns the series index for a timestamp, growing every series
// accumulator to cover it. Callers must have checked SeriesIntervalNs > 0.
func (s *Sim) seriesBin(t Time) int {
	bin := int(t / s.cfg.SeriesIntervalNs)
	for len(s.seriesBytes) <= bin {
		s.seriesBytes = append(s.seriesBytes, 0)
		s.seriesCount = append(s.seriesCount, 0)
		s.seriesLat = append(s.seriesLat, 0)
		s.seriesDropped = append(s.seriesDropped, 0)
		s.seriesReroutes = append(s.seriesReroutes, 0)
		s.seriesRexmit = append(s.seriesRexmit, 0)
		s.seriesFailed = append(s.seriesFailed, 0)
		s.seriesUnreachable = append(s.seriesUnreachable, 0)
	}
	return bin
}

// fail records the first fatal model error; the run aborts with it.
func (s *Sim) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}
