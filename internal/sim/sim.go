package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/stats"
	"mlid/internal/topology"
)

// pkt is an in-flight packet plus per-hop bookkeeping.
type pkt struct {
	ib.Packet
	// flowSeq is the packet's generation index within its (src, dst) flow.
	flowSeq uint32
	// arrival is the head-arrival time at the current switch.
	arrival Time
	// inPort is the abstract input port at the current switch; the crossbar
	// arbiter round-robins over input ports.
	inPort int
	// upstream is the output port that transmitted the packet on its last
	// hop; its credit is returned when this hop's input buffer frees. nil
	// while the packet sits in its source.
	upstream *outPort
	// trace records the packet's timeline when tracing is on.
	trace *PacketTrace

	// Reliable-transport fields (Config.Transport). ctrl distinguishes data
	// from ACK/NAK control packets; cum/sack are the control packet's
	// cumulative and selective acknowledgments; rexmit marks a
	// retransmission copy.
	ctrl   uint8
	cum    uint32
	sack   uint32
	rexmit bool
}

// pktFIFO is a packet queue drained by head index so its backing array is
// reused instead of re-allocated (append + [1:] reslicing strands capacity).
// Compaction keeps memory bounded when the queue never fully drains.
type pktFIFO struct {
	items []*pkt
	head  int
}

func (q *pktFIFO) push(p *pkt) { q.items = append(q.items, p) }
func (q *pktFIFO) len() int    { return len(q.items) - q.head }

func (q *pktFIFO) popFront() *pkt {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// rxRef names the receiving side of a directed link.
type rxRef struct {
	isNode bool
	node   int32
	sw     int32
	port   int // abstract in-port at the switch
}

// outPort is the transmitting side of a directed link together with the
// per-VL output buffers feeding it and the credit state of the receiver's
// input buffers.
type outPort struct {
	dest rxRef
	// limited marks switch output buffers (capacity BufPackets per VL);
	// endnode source queues are unbounded (open-loop injection).
	limited  bool
	isSource bool

	// dead marks a link killed by a FaultPlan event: nothing transmits on
	// it, and packets entering or arriving over it are dropped.
	dead bool

	busyUntil Time
	credits   []int32   // per VL: receiver input-buffer credits held
	occupancy []int32   // per VL: packets resident in the output buffer
	queue     []pktFIFO // per VL: packets in the output buffer, FIFO
	waiting   [][]*pkt  // per VL: packets stuck in input buffers upstream of
	// the crossbar, waiting for an output-buffer slot
	rrNext    int   // round-robin pointer over VLs (link arbitration)
	rrIn      []int // per VL: round-robin pointer over input ports (crossbar arbitration)
	kickArmed bool
	busyAccum Time  // total time this link spent transmitting
	pktCount  int64 // packets transmitted
}

func newOutPort(dest rxRef, vls, bufPackets int, limited, isSource bool) *outPort {
	op := &outPort{
		dest:      dest,
		limited:   limited,
		isSource:  isSource,
		credits:   make([]int32, vls),
		occupancy: make([]int32, vls),
		queue:     make([]pktFIFO, vls),
		waiting:   make([][]*pkt, vls),
		rrIn:      make([]int, vls),
	}
	for i := range op.credits {
		op.credits[i] = int32(bufPackets)
	}
	return op
}

// switchState is one m-port crossbar switch.
type switchState struct {
	lft *ib.LFT
	out []*outPort // by abstract port
}

// nodeState is one endnode: an open-loop generator plus a sink. The k-th
// generation time is derived from the integer packet count (genTimeAt) rather
// than a float accumulator, so rounding error cannot drift over soak-length
// runs.
type nodeState struct {
	out      *outPort
	rng      *rand.Rand
	genPhase float64
	genCount int64
	nextVL   int
}

// Sim is one in-progress simulation run.
type Sim struct {
	engine
	cfg  Config
	tree *topology.Tree

	switches []*switchState
	nodes    []*nodeState

	serPkt Time // serialization time of a full packet
	end    Time // generation/measurement horizon

	err error

	// counters
	totalGenerated, totalDelivered   int64
	generatedWindow, deliveredWindow int64
	deliveredBytesWindow             int64
	outOfOrder                       int64
	lat                              stats.LatencyCollector
	netLat                           stats.LatencyCollector

	// flowSeq / flowHigh track per-(src,dst) generation sequence numbers
	// and the highest delivered one, for the reordering metric. nil when
	// the fabric is too large to track.
	flowSeq, flowHigh []uint32

	traces []*PacketTrace

	// lastDelivery is the latest tail-delivery timestamp (batch makespan).
	lastDelivery Time

	// pktFree recycles delivered packets. A pkt on this list is dead: the
	// model must never reference a packet after its evDeliver dispatched
	// (see DESIGN.md, "Event engine internals").
	pktFree []*pkt

	// series accumulators, indexed by tail / SeriesIntervalNs.
	seriesBytes    []int64
	seriesCount    []int64
	seriesLat      []float64
	seriesDropped  []int64
	seriesReroutes []int64
	seriesRexmit   []int64
	seriesFailed   []int64

	// reliable-transport state (Config.Transport); nil when disabled.
	transport *transportRun

	// live-fault state and counters (Config.FaultPlan).
	faults              faultRun
	droppedTotal        int64
	droppedWindow       int64
	droppedAtDeadLink   int64
	droppedOnDeadLink   int64
	reroutes            int64
	lftUpdates          int64
	lftEntriesRewritten int64
	lastDropNs          Time
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	s := build(cfg)
	s.end = cfg.WarmupNs + cfg.MeasureNs

	s.scheduleFaults()

	// Start every generator at a random phase within its first interval to
	// avoid lockstep injection.
	ia := s.interarrival()
	for i, n := range s.nodes {
		n.genPhase = n.rng.Float64() * ia
		s.schedule(genTimeAt(n.genPhase, ia, 0), event{kind: evGenerate, a: int32(i)})
	}

	// With transport on, the run drains past the generation horizon so
	// outstanding retransmissions resolve into a delivery or a Failed count;
	// without it the horizon is the classic measurement end.
	horizon := s.end
	if s.transport != nil {
		horizon += s.transport.cfg.DrainNs
	}
	events := s.runUntil(horizon)
	if s.err != nil {
		return Result{}, s.err
	}

	res := Result{
		OfferedLoad:      cfg.OfferedLoad,
		DeliveredWindow:  s.deliveredWindow,
		GeneratedWindow:  s.generatedWindow,
		TotalDelivered:   s.totalDelivered,
		TotalGenerated:   s.totalGenerated,
		InFlightAtEnd:    s.totalGenerated - s.totalDelivered - s.droppedTotal,
		Events:           events,
		EndTime:          s.now,
		MeanLatencyNs:    s.lat.Mean(),
		P99LatencyNs:     s.lat.Percentile(0.99),
		MaxLatencyNs:     s.lat.Max(),
		MeanNetLatencyNs: s.netLat.Mean(),
		OutOfOrder:       s.outOfOrder,
	}
	if s.flowHigh == nil {
		res.OutOfOrder = -1
	}
	if cfg.FaultPlan != nil {
		res.DroppedTotal = s.droppedTotal
		res.DroppedWindow = s.droppedWindow
		res.DroppedAtDeadLink = s.droppedAtDeadLink
		res.DroppedOnDeadLink = s.droppedOnDeadLink
		res.Reroutes = s.reroutes
		res.LFTUpdates = s.lftUpdates
		res.LFTEntriesRewritten = s.lftEntriesRewritten
		res.BrokenEntries = s.faults.lastBroken
		res.LastDropNs = s.lastDropNs
		if s.faults.firstDownNs >= 0 {
			res.FirstFaultNs = s.faults.firstDownNs
			if s.faults.lastRepairNs >= 0 {
				res.RecoveryNs = s.faults.lastRepairNs - s.faults.firstDownNs
			}
		}
	}
	res.P999LatencyNs = s.lat.Percentile(0.999)
	if t := s.transport; t != nil {
		res.Retransmits = t.retransmits
		res.Failed = t.failed
		res.DupDeliveries = t.dupDeliveries
		res.AcksSent = t.acksSent
		res.NaksSent = t.naksSent
		res.CtrlBytesSent = t.ctrlBytes
		res.LastRecoveredNs = t.lastRecoveredNs
		res.DrainedNs = t.cfg.DrainNs
		// Dropped copies are retried, not lost: the conservation identity is
		// generated = delivered + failed + in-flight.
		res.InFlightAtEnd = s.totalGenerated - s.totalDelivered - t.failed
	}
	res.Accepted = float64(s.deliveredBytesWindow) / float64(cfg.MeasureNs) / float64(s.tree.Nodes())
	res.Saturated = res.Accepted < 0.98*cfg.OfferedLoad
	var sum float64
	var links int
	for _, st := range s.switches {
		for _, op := range st.out {
			u := float64(op.busyAccum) / float64(horizon)
			if u > res.MaxLinkUtilization {
				res.MaxLinkUtilization = u
			}
			sum += u
			links++
		}
	}
	for _, n := range s.nodes {
		if u := float64(n.out.busyAccum) / float64(horizon); u > res.MaxLinkUtilization {
			res.MaxLinkUtilization = u
		}
	}
	if links > 0 {
		res.MeanLinkUtilization = sum / float64(links)
	}
	res.Traces = s.traces
	if iv := cfg.SeriesIntervalNs; iv > 0 {
		for bin := range s.seriesBytes {
			sp := SeriesPoint{
				StartNs:     Time(bin) * iv,
				Accepted:    float64(s.seriesBytes[bin]) / float64(iv) / float64(s.tree.Nodes()),
				Delivered:   s.seriesCount[bin],
				Dropped:     s.seriesDropped[bin],
				Reroutes:    s.seriesReroutes[bin],
				Retransmits: s.seriesRexmit[bin],
				Failed:      s.seriesFailed[bin],
			}
			if s.seriesCount[bin] > 0 {
				sp.MeanLatencyNs = s.seriesLat[bin] / float64(s.seriesCount[bin])
			}
			res.Series = append(res.Series, sp)
		}
	}
	if cfg.CollectPortStats {
		for swi, st := range s.switches {
			for port, op := range st.out {
				if op.pktCount == 0 {
					continue
				}
				res.PortStats = append(res.PortStats, PortStat{
					Switch: int32(swi), Port: port,
					BusyNs: op.busyAccum, Packets: op.pktCount,
					Utilization: float64(op.busyAccum) / float64(horizon),
				})
			}
		}
		for ni, n := range s.nodes {
			if n.out.pktCount == 0 {
				continue
			}
			res.PortStats = append(res.PortStats, PortStat{
				IsNode: true, Node: int32(ni),
				BusyNs: n.out.busyAccum, Packets: n.out.pktCount,
				Utilization: float64(n.out.busyAccum) / float64(horizon),
			})
		}
		sort.Slice(res.PortStats, func(i, j int) bool {
			a, b := res.PortStats[i], res.PortStats[j]
			if a.BusyNs != b.BusyNs {
				return a.BusyNs > b.BusyNs
			}
			if a.IsNode != b.IsNode {
				return !a.IsNode
			}
			if a.Switch != b.Switch {
				return a.Switch < b.Switch
			}
			if a.Port != b.Port {
				return a.Port < b.Port
			}
			return a.Node < b.Node
		})
	}
	return res, nil
}

func build(cfg Config) *Sim {
	t := cfg.Subnet.Tree
	s := &Sim{
		cfg:      cfg,
		tree:     t,
		switches: make([]*switchState, t.Switches()),
		nodes:    make([]*nodeState, t.Nodes()),
		serPkt:   Time(cfg.PacketSize) * cfg.NsPerByte,
	}
	s.engine.heapOnly = engineHeapOnly || cfg.HeapOnlyScheduler
	// The reliable transport claims one management VL for ACK/NAK traffic on
	// top of the data VLs; without it the port arrays keep their classic
	// shape, byte for byte.
	vls := cfg.DataVLs
	if cfg.Transport != nil {
		vls++
	}
	for sw := 0; sw < t.Switches(); sw++ {
		lft := cfg.Subnet.LFTs[sw]
		if cfg.FaultPlan != nil {
			// Live tables diverge from the configured subnet once the SM
			// model starts applying timed updates; clone so the caller's
			// subnet stays pristine (and serves as the repair baseline).
			lft = lft.Clone()
		}
		st := &switchState{lft: lft, out: make([]*outPort, t.M())}
		for k := 0; k < t.M(); k++ {
			ref := t.SwitchNeighbor(topology.SwitchID(sw), k)
			var dst rxRef
			switch ref.Kind {
			case topology.KindNode:
				dst = rxRef{isNode: true, node: int32(ref.Node)}
			case topology.KindSwitch:
				dst = rxRef{sw: int32(ref.Switch), port: ref.Port}
			}
			st.out[k] = newOutPort(dst, vls, cfg.BufPackets, true, false)
		}
		s.switches[sw] = st
	}
	for p := 0; p < t.Nodes(); p++ {
		sw, port := t.NodeAttachment(topology.NodeID(p))
		s.nodes[p] = &nodeState{
			out: newOutPort(rxRef{sw: int32(sw), port: port}, vls, cfg.BufPackets, false, true),
			rng: rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(p))),
		}
	}
	if n := t.Nodes(); n <= 4096 {
		s.flowSeq = make([]uint32, n*n)
		s.flowHigh = make([]uint32, n*n)
	}
	if cfg.Transport != nil {
		n := t.Nodes()
		s.transport = &transportRun{
			cfg:    *cfg.Transport,
			mgmtVL: uint8(cfg.DataVLs), // last VL index: the one claimed above
			tx:     make([]txFlow, n*n),
			rx:     make([]rxFlow, n*n),
		}
	}
	return s
}

// interarrival returns the per-node packet spacing in ns (float, accumulated
// without rounding drift).
func (s *Sim) interarrival() float64 {
	return float64(s.cfg.PacketSize) * float64(s.cfg.NsPerByte) / s.cfg.OfferedLoad
}

// runUntil processes events in order until the queue is empty or the next
// event is later than end. It returns the number of events processed.
func (s *Sim) runUntil(end Time) int64 {
	var n int64
	for {
		ev, ok := s.pop(end)
		if !ok {
			break
		}
		s.dispatch(ev)
		n++
	}
	return n
}

// dispatch runs one typed event. This switch replaces the per-event closure
// of the original engine; it is the single place event kinds gain meaning.
func (s *Sim) dispatch(ev event) {
	switch ev.kind {
	case evGenerate:
		s.generate(ev.a)
	case evRoute:
		s.route(ev.a, ev.p)
	case evSwArrive:
		s.swArrive(ev.a, int(ev.b), ev.p)
	case evNodeArrive:
		s.nodeArrive(ev.a, ev.p)
	case evDeliver:
		// The event fires exactly at the packet's tail-arrival time.
		s.deliver(ev.a, ev.p, s.now)
		s.freePkt(ev.p)
	case evCredit:
		s.creditArrive(ev.op, int(ev.b))
	case evKick:
		ev.op.kickArmed = false
		s.kick(ev.op)
	case evRelease:
		s.releaseSlot(ev.op, int(ev.b))
	case evLinkDown:
		s.linkDown(ev.a, int(ev.b))
	case evLinkUp:
		s.linkUp(ev.a, int(ev.b))
	case evTrap:
		s.smTrap()
	case evLFTUpdate:
		s.applyLFTUpdate(int(ev.a))
	case evRexmit:
		s.rexmitTimer(ev.a, ev.b)
	default:
		s.fail(fmt.Errorf("sim: unknown event kind %d (engine bug)", ev.kind))
	}
}

// newPkt returns a zeroed packet, reusing a recycled one when available.
func (s *Sim) newPkt() *pkt {
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree = s.pktFree[:n-1]
		*p = pkt{}
		return p
	}
	return new(pkt)
}

// freePkt returns a delivered packet to the free list. The caller guarantees
// no live reference to p remains anywhere in the model.
func (s *Sim) freePkt(p *pkt) {
	s.pktFree = append(s.pktFree, p)
}

// generate creates one packet at the node, enqueues it at the source and
// schedules the next generation.
func (s *Sim) generate(node int32) {
	n := s.nodes[node]
	dst := s.cfg.Pattern.Dest(int(node), n.rng)
	dlid := s.selectDLID(n, topology.NodeID(node), topology.NodeID(dst))
	s.totalGenerated++
	if s.now >= s.cfg.WarmupNs && s.now < s.end {
		s.generatedWindow++
	}
	var vl int
	if s.cfg.VLSelect == VLByDLID {
		vl = int(dlid) % s.cfg.DataVLs
	} else {
		vl = n.nextVL
		n.nextVL = (n.nextVL + 1) % s.cfg.DataVLs
	}
	p := s.newPkt()
	p.Packet = ib.Packet{
		SLID:    s.cfg.Subnet.Endports[node].Base,
		DLID:    dlid,
		VL:      uint8(vl),
		Size:    s.cfg.PacketSize,
		Seq:     uint64(s.totalGenerated),
		Src:     node,
		Dst:     int32(dst),
		GenTime: s.now,
	}
	if s.flowSeq != nil {
		idx := int(node)*s.tree.Nodes() + dst
		s.flowSeq[idx]++
		p.flowSeq = s.flowSeq[idx]
	}
	if len(s.traces) < s.cfg.TracePackets {
		p.trace = &PacketTrace{
			Seq: p.Seq, Src: node, Dst: int32(dst),
			DLID: uint16(dlid), VL: uint8(vl), GenNs: s.now,
		}
		s.traces = append(s.traces, p.trace)
	}
	if s.transport != nil {
		// Track before injecting: a packet dropped at a dead source link is
		// still unacknowledged and will be retried by the flow's timer.
		s.txTrack(node, p)
	}
	s.requestTransfer(n.out, p)

	n.genCount++
	next := genTimeAt(n.genPhase, s.interarrival(), n.genCount)
	if next <= s.end {
		s.schedule(next, event{kind: evGenerate, a: node})
	}
}

// genTimeAt returns the k-th generation time of a source with the given
// random phase and interarrival spacing. Deriving each time from the integer
// packet count (rather than accumulating a float) keeps the realized
// injection rate within one rounding of OfferedLoad at any horizon.
func genTimeAt(phase, ia float64, k int64) Time {
	return Time(math.Round(phase + float64(k)*ia))
}

// selectDLID applies the configured path-selection policy for one packet.
func (s *Sim) selectDLID(n *nodeState, src, dst topology.NodeID) ib.LID {
	if s.cfg.DLIDFunc != nil {
		return s.cfg.DLIDFunc(src, dst)
	}
	if s.reselectActive() {
		if lid, ok := s.reselect(n, src, dst); ok {
			return lid
		}
	}
	if s.cfg.PathSelect == PathSelectRandom {
		r := s.cfg.Subnet.Endports[dst]
		dlid := r.Base
		if r.Count() > 1 {
			dlid += ib.LID(n.rng.Intn(r.Count()))
		}
		return dlid
	}
	return s.cfg.Subnet.DLID(src, dst)
}

// swArrive handles a packet head reaching a switch input port: after the
// crossbar routing delay the forwarding table names the output port and the
// packet requests an output-buffer slot.
func (s *Sim) swArrive(sw int32, inPort int, p *pkt) {
	if p.upstream != nil && p.upstream.dead {
		// The link died while the packet was flying or serializing on it.
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	p.arrival = s.now
	p.inPort = inPort
	if p.trace != nil {
		p.trace.Hops = append(p.trace.Hops, TraceHop{Switch: sw, ArriveNs: s.now})
	}
	delay := s.cfg.RouteNs
	if s.cfg.Switching == SwitchingSAF {
		// Store-and-forward: the table lookup waits for the tail.
		delay += s.serPkt
	}
	s.schedule(s.now+delay, event{kind: evRoute, a: sw, p: p})
}

// route fires when the crossbar routing delay elapses: the forwarding table
// names the output port and the packet requests an output-buffer slot.
func (s *Sim) route(sw int32, p *pkt) {
	st := s.switches[sw]
	phys, err := st.lft.Lookup(p.DLID)
	if err != nil {
		s.fail(fmt.Errorf("sim: switch %d cannot forward DLID %d: %w", sw, p.DLID, err))
		return
	}
	out := int(phys) - 1
	if out < 0 || out >= len(st.out) {
		s.fail(fmt.Errorf("sim: switch %d forwards DLID %d to invalid port %d", sw, p.DLID, phys))
		return
	}
	op := st.out[out]
	if op.dead {
		// The table — stale before the SM's repair lands, or holding an
		// irreparable descending entry after it — forwards onto a dead
		// link. Never silently misroute: count and drop.
		s.droppedAtDeadLink++
		s.dropPkt(p)
		return
	}
	if s.cfg.Reception == ReceptionIdeal && op.dest.isNode {
		s.deliverIdeal(op.dest.node, p)
		return
	}
	s.requestTransfer(op, p)
}

// requestTransfer asks for an output-buffer slot on (op, p.VL). If the buffer
// is full the packet waits in its input buffer (virtual cut-through: the
// whole packet collapses there), holding the upstream credit.
func (s *Sim) requestTransfer(op *outPort, p *pkt) {
	if op.dead {
		// Injection into a dead link (a source whose attachment link is
		// down, or a flush race); route-time drops are counted separately.
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	vl := int(p.VL)
	if op.limited && op.occupancy[vl] >= int32(s.cfg.BufPackets) {
		op.waiting[vl] = append(op.waiting[vl], p)
		return
	}
	op.occupancy[vl]++
	s.completeTransfer(op, p)
}

// completeTransfer moves the packet across the crossbar into the output
// buffer. The input buffer it came from frees once the tail has both arrived
// (arrival + serialization) and moved on — at which point the credit flies
// back to the upstream transmitter.
func (s *Sim) completeTransfer(op *outPort, p *pkt) {
	vl := int(p.VL)
	if p.upstream != nil {
		free := p.arrival + s.serPkt
		if s.now > free {
			free = s.now
		}
		s.schedule(free+s.cfg.FlyNs, event{kind: evCredit, op: p.upstream, b: int32(vl)})
		p.upstream = nil
	}
	op.queue[vl].push(p)
	s.kick(op)
}

// kick runs the output port's arbitration: when the link is idle it starts
// transmitting the next ready packet, picking among virtual lanes with
// queued packets and available credits in round-robin order.
func (s *Sim) kick(op *outPort) {
	if op.kickArmed || op.dead {
		return
	}
	if op.busyUntil > s.now {
		// Re-arbitrate when the link frees, if anything is pending.
		for vl := range op.queue {
			if op.queue[vl].len() > 0 {
				op.kickArmed = true
				s.schedule(op.busyUntil, event{kind: evKick, op: op})
				return
			}
		}
		return
	}
	n := len(op.queue)
	for i := 0; i < n; i++ {
		vl := (op.rrNext + i) % n
		if op.queue[vl].len() > 0 && op.credits[vl] > 0 {
			op.rrNext = (vl + 1) % n
			s.transmit(op, vl)
			s.kick(op) // arm for the next pending packet, if any
			return
		}
	}
}

// transmit starts serializing the head packet of the VL onto the link.
func (s *Sim) transmit(op *outPort, vl int) {
	p := op.queue[vl].popFront()
	op.credits[vl]--
	if op.credits[vl] < 0 {
		s.fail(fmt.Errorf("sim: credit underflow on VL %d (model bug)", vl))
		return
	}
	start := s.now
	op.busyUntil = start + s.serPkt
	op.busyAccum += s.serPkt
	op.pktCount++
	if op.isSource {
		p.InjectTime = start
	}
	if p.trace != nil {
		if op.isSource {
			p.trace.InjectNs = start
		} else if n := len(p.trace.Hops); n > 0 {
			p.trace.Hops[n-1].DepartNs = start
		}
	}
	if op.limited {
		s.schedule(op.busyUntil, event{kind: evRelease, op: op, b: int32(vl)})
	} else {
		op.occupancy[vl]--
	}
	p.upstream = op
	dest := op.dest
	if dest.isNode {
		s.schedule(start+s.cfg.FlyNs, event{kind: evNodeArrive, a: dest.node, p: p})
	} else {
		s.schedule(start+s.cfg.FlyNs, event{kind: evSwArrive, a: dest.sw, b: int32(dest.port), p: p})
	}
}

// releaseSlot frees an output-buffer slot when a packet's tail has left the
// switch, admitting one waiting input-buffered packet of that VL. The
// crossbar arbiter serves input ports in round-robin order (ties within an
// input port go to the oldest packet), the way a physical crossbar allocator
// shares an output among its contending inputs.
func (s *Sim) releaseSlot(op *outPort, vl int) {
	op.occupancy[vl]--
	if op.occupancy[vl] < 0 {
		s.fail(fmt.Errorf("sim: output-buffer occupancy underflow on VL %d (model bug)", vl))
		return
	}
	if len(op.waiting[vl]) == 0 {
		return
	}
	// Pick the waiting packet whose input port follows the round-robin
	// pointer most closely; the waiting list is in request order, so the
	// first match per input port is that port's oldest packet.
	w := op.waiting[vl]
	const big = int(^uint(0) >> 1)
	bestIdx, bestDist := -1, big
	for i, p := range w {
		d := p.inPort - op.rrIn[vl]
		if d < 0 {
			d += 1 << 16 // any bound larger than the port count works
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	p := w[bestIdx]
	op.waiting[vl] = append(w[:bestIdx], w[bestIdx+1:]...)
	op.rrIn[vl] = p.inPort + 1
	op.occupancy[vl]++
	s.completeTransfer(op, p)
}

// creditArrive returns one credit to the transmitter and re-arbitrates.
func (s *Sim) creditArrive(op *outPort, vl int) {
	op.credits[vl]++
	if op.credits[vl] > int32(s.cfg.BufPackets) {
		s.fail(fmt.Errorf("sim: credit overflow on VL %d: %d > %d (model bug)",
			vl, op.credits[vl], s.cfg.BufPackets))
		return
	}
	s.kick(op)
}

// deliverIdeal consumes a routed packet at its destination's leaf switch
// under ReceptionIdeal: the final hop contributes its uncontended flying and
// serialization time to latency, the input buffer frees once the tail has
// streamed through, and no shared final-link resource exists.
func (s *Sim) deliverIdeal(node int32, p *pkt) {
	tail := s.now + s.cfg.FlyNs + s.serPkt
	s.schedule(tail, event{kind: evDeliver, a: node, p: p})
	if p.upstream != nil {
		free := p.arrival + s.serPkt
		if s.now > free {
			free = s.now
		}
		s.schedule(free+s.cfg.FlyNs, event{kind: evCredit, op: p.upstream, b: int32(p.VL)})
		p.upstream = nil
	}
}

// nodeArrive handles a packet head reaching its destination endnode. The
// packet is consumed as it streams in: delivery completes at tail arrival,
// and the input buffer's credit returns immediately after.
func (s *Sim) nodeArrive(node int32, p *pkt) {
	if p.upstream != nil && p.upstream.dead {
		s.droppedOnDeadLink++
		s.dropPkt(p)
		return
	}
	tail := s.now + s.serPkt
	up := p.upstream
	vl := int32(p.VL)
	p.upstream = nil
	s.schedule(tail, event{kind: evDeliver, a: node, p: p})
	if up != nil {
		// Guard against a nil upstream (as deliverIdeal and completeTransfer
		// do): scheduling evCredit with a nil port panics in dispatch.
		s.schedule(tail+s.cfg.FlyNs, event{kind: evCredit, op: up, b: vl})
	}
}

// deliver finalizes a packet at its destination: correctness check,
// transport processing (ACK/NAK handling, duplicate suppression),
// ordering check, and window statistics.
func (s *Sim) deliver(node int32, p *pkt, tail Time) {
	if p.Dst != node {
		s.fail(fmt.Errorf("sim: packet %d for node %d delivered to node %d (DLID %d)",
			p.Seq, p.Dst, node, p.DLID))
		return
	}
	if s.transport != nil {
		if p.ctrl != ctrlData {
			s.ctrlArrive(node, p)
			return
		}
		if !s.rxAccept(node, p) {
			return // duplicate: counted, not delivered again
		}
		if p.rexmit {
			s.transport.lastRecoveredNs = tail
		}
	}
	s.totalDelivered++
	s.noteDelivery(tail)
	if s.flowHigh != nil {
		idx := int(p.Src)*s.tree.Nodes() + int(p.Dst)
		if p.flowSeq < s.flowHigh[idx] {
			s.outOfOrder++
		} else {
			s.flowHigh[idx] = p.flowSeq
		}
	}
	if iv := s.cfg.SeriesIntervalNs; iv > 0 && tail < s.end {
		bin := s.seriesBin(tail)
		s.seriesBytes[bin] += int64(p.Size)
		s.seriesCount[bin]++
		s.seriesLat[bin] += float64(tail - p.GenTime)
	}
	if p.trace != nil {
		p.trace.DeliverNs = tail
		if n := len(p.trace.Hops); n > 0 && p.trace.Hops[n-1].DepartNs == 0 {
			// Ideal reception consumes at the leaf; mark the hand-off.
			p.trace.Hops[n-1].DepartNs = tail - s.serPkt - s.cfg.FlyNs
		}
	}
	if tail >= s.cfg.WarmupNs && tail < s.end {
		s.deliveredWindow++
		s.deliveredBytesWindow += int64(p.Size)
		s.lat.Add(float64(tail - p.GenTime))
		s.netLat.Add(float64(tail - p.InjectTime))
		if s.cfg.LatencyHist != nil {
			s.cfg.LatencyHist.Add(float64(tail - p.GenTime))
		}
	}
}

// seriesBin returns the series index for a timestamp, growing every series
// accumulator to cover it. Callers must have checked SeriesIntervalNs > 0.
func (s *Sim) seriesBin(t Time) int {
	bin := int(t / s.cfg.SeriesIntervalNs)
	for len(s.seriesBytes) <= bin {
		s.seriesBytes = append(s.seriesBytes, 0)
		s.seriesCount = append(s.seriesCount, 0)
		s.seriesLat = append(s.seriesLat, 0)
		s.seriesDropped = append(s.seriesDropped, 0)
		s.seriesReroutes = append(s.seriesReroutes, 0)
		s.seriesRexmit = append(s.seriesRexmit, 0)
		s.seriesFailed = append(s.seriesFailed, 0)
	}
	return bin
}

// fail records the first fatal model error; the run aborts with it.
func (s *Sim) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}
