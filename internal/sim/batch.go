package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Message is one batch transfer: Bytes from Src to Dst, split into packets.
type Message struct {
	Src, Dst topology.NodeID
	Bytes    int
}

// BatchConfig describes a closed-workload run: every node's messages are
// enqueued up front and the simulation runs until the fabric drains. The
// measured quantity is the makespan — the completion time of a collective
// exchange — rather than the open-loop accepted/latency pair.
type BatchConfig struct {
	Subnet   *ib.Subnet
	Messages []Message
	// DataVLs, PacketSize, BufPackets, FlyNs, RouteNs, NsPerByte, Reception,
	// PathSelect, VLSelect and Switching behave as in Config.
	DataVLs                   int
	PacketSize                int
	BufPackets                int
	FlyNs, RouteNs, NsPerByte Time
	Reception                 ReceptionModel
	PathSelect                Selector
	VLSelect                  VLPolicy
	Switching                 SwitchingMode
	// DLIDFunc overrides path selection, as in Config.DLIDFunc.
	DLIDFunc func(src, dst topology.NodeID) ib.LID
	Seed     int64
	// DeadlineNs aborts a run that has not drained (default 1e9 ns).
	DeadlineNs Time
}

// BatchResult reports a closed-workload run.
type BatchResult struct {
	// MakespanNs is the delivery time of the last packet.
	MakespanNs Time
	// Packets and Bytes count the delivered traffic.
	Packets, Bytes int64
	// AggregateBandwidth is Bytes / MakespanNs (bytes/ns across the fabric).
	AggregateBandwidth float64
	// MeanLatencyNs averages per-packet generation-to-delivery latency.
	MeanLatencyNs float64
	Events        int64
}

// RunBatch executes a closed workload and returns its makespan.
func RunBatch(bc BatchConfig) (BatchResult, error) {
	if bc.Subnet == nil {
		return BatchResult{}, fmt.Errorf("sim: BatchConfig.Subnet is required")
	}
	if len(bc.Messages) == 0 {
		return BatchResult{}, fmt.Errorf("sim: no messages")
	}
	if bc.DeadlineNs == 0 {
		bc.DeadlineNs = 1_000_000_000
	}
	cfg := Config{
		Subnet:      bc.Subnet,
		Pattern:     batchPattern{}, // unused; generation is bypassed
		DataVLs:     bc.DataVLs,
		PacketSize:  bc.PacketSize,
		BufPackets:  bc.BufPackets,
		FlyNs:       bc.FlyNs,
		RouteNs:     bc.RouteNs,
		NsPerByte:   bc.NsPerByte,
		Reception:   bc.Reception,
		PathSelect:  bc.PathSelect,
		VLSelect:    bc.VLSelect,
		Switching:   bc.Switching,
		DLIDFunc:    bc.DLIDFunc,
		OfferedLoad: 1, // satisfies validation; no open-loop generators run
		WarmupNs:    0,
		MeasureNs:   bc.DeadlineNs,
		Seed:        bc.Seed,
	}
	cfg = cfg.withDefaults()
	// Batch runs measure everything from time zero.
	cfg.WarmupNs = 0
	cfg.MeasureNs = bc.DeadlineNs
	if err := cfg.validate(); err != nil {
		return BatchResult{}, err
	}
	s := build(cfg)
	s.end = bc.DeadlineNs

	// Enqueue every message's packets at time zero, in a deterministic
	// source-major order so same-source messages keep their given order.
	msgs := append([]Message{}, bc.Messages...)
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].Src < msgs[j].Src })
	var totalPkts, totalBytes int64
	for _, m := range msgs {
		if !s.tree.ValidNode(m.Src) || !s.tree.ValidNode(m.Dst) || m.Src == m.Dst {
			return BatchResult{}, fmt.Errorf("sim: bad message %d -> %d", m.Src, m.Dst)
		}
		if m.Bytes <= 0 {
			return BatchResult{}, fmt.Errorf("sim: message %d -> %d has %d bytes", m.Src, m.Dst, m.Bytes)
		}
		packets := (m.Bytes + cfg.PacketSize - 1) / cfg.PacketSize
		for p := 0; p < packets; p++ {
			s.enqueueBatchPacket(m.Src, m.Dst)
			totalPkts++
		}
		totalBytes += int64(packets) * int64(cfg.PacketSize)
	}

	events := s.runUntil(bc.DeadlineNs)
	if s.err != nil {
		return BatchResult{}, s.err
	}
	if s.totalDelivered != totalPkts {
		return BatchResult{}, fmt.Errorf("sim: batch did not drain: %d of %d packets delivered by the %d ns deadline",
			s.totalDelivered, totalPkts, bc.DeadlineNs)
	}
	res := BatchResult{
		MakespanNs:    s.lastDelivery,
		Packets:       totalPkts,
		Bytes:         totalBytes,
		MeanLatencyNs: s.lat.Mean(),
		Events:        events,
	}
	if res.MakespanNs > 0 {
		res.AggregateBandwidth = float64(totalBytes) / float64(res.MakespanNs)
	}
	return res, nil
}

// batchPattern satisfies the Pattern interface for configuration validation;
// batch runs never invoke it.
type batchPattern struct{}

func (batchPattern) Name() string { return "batch" }
func (batchPattern) Dest(int, *rand.Rand) int {
	panic("sim: batch pattern must not generate")
}

// enqueueBatchPacket creates one packet at time zero and injects it through
// the node's source queue.
func (s *Sim) enqueueBatchPacket(src, dst topology.NodeID) {
	n := &s.nodes[src]
	var seq uint32
	if s.flowSeq != nil {
		seq = s.flowSeq[int(src)*s.tree.Nodes()+int(dst)] + 1
		s.flowSeq[int(src)*s.tree.Nodes()+int(dst)] = seq
	}
	dlid := s.selectDLID(n, src, dst, seq)
	s.totalGenerated++
	var vl int
	if s.cfg.VLSelect == VLByDLID {
		vl = int(dlid) % s.cfg.DataVLs
	} else {
		vl = n.nextVL
		n.nextVL = (n.nextVL + 1) % s.cfg.DataVLs
	}
	p := s.newPkt()
	p.Packet = ib.Packet{
		SLID:    s.cfg.Subnet.Endports[src].Base,
		DLID:    dlid,
		VL:      uint8(vl),
		Size:    s.cfg.PacketSize,
		Seq:     uint64(s.totalGenerated),
		Src:     int32(src),
		Dst:     int32(dst),
		GenTime: 0,
	}
	s.requestTransfer(s.nodePid(int32(src)), p)
}

// AllToAll builds the classic staggered all-to-all personalized exchange:
// node i sends bytesPer to i+1, i+2, ..., wrapping around.
func AllToAll(t *topology.Tree, bytesPer int) []Message {
	n := t.Nodes()
	msgs := make([]Message, 0, n*(n-1))
	for src := 0; src < n; src++ {
		for step := 1; step < n; step++ {
			msgs = append(msgs, Message{
				Src:   topology.NodeID(src),
				Dst:   topology.NodeID((src + step) % n),
				Bytes: bytesPer,
			})
		}
	}
	return msgs
}

// Gather builds the all-to-one collective: every node sends bytesPer to root.
func Gather(t *topology.Tree, root topology.NodeID, bytesPer int) []Message {
	msgs := make([]Message, 0, t.Nodes()-1)
	for src := 0; src < t.Nodes(); src++ {
		if topology.NodeID(src) == root {
			continue
		}
		msgs = append(msgs, Message{Src: topology.NodeID(src), Dst: root, Bytes: bytesPer})
	}
	return msgs
}

// noteDelivery records the latest tail-delivery timestamp (the makespan).
func (s *Sim) noteDelivery(t Time) {
	if t > s.lastDelivery {
		s.lastDelivery = t
	}
}
