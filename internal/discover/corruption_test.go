package discover

import (
	"math/rand"
	"sort"
	"testing"

	"mlid/internal/topology"
)

// TestQuickSingleCorruptionRejected: any single corruption of a discovered
// graph's port numbers must be rejected by Recognize — the edge-by-edge
// verification pass leaves no silent mislabelings. This is the property
// that makes the recognizer safe to run on a possibly miswired fabric.
func TestQuickSingleCorruptionRejected(t *testing.T) {
	tr := topology.MustNew(8, 2)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		g, _ := explore(t, tr, 0)
		// Pick a deterministic random switch and port to corrupt.
		var guids []uint64
		for guid := range g.Switches {
			guids = append(guids, guid)
		}
		// Map iteration order is random; sort for reproducibility.
		sort.Slice(guids, func(i, j int) bool { return guids[i] < guids[j] })
		sw := g.Switches[guids[rng.Intn(len(guids))]]
		port := 1 + rng.Intn(sw.NumPorts)

		switch rng.Intn(3) {
		case 0:
			// Corrupt the recorded far-end port number.
			old := sw.PeerPort[port]
			repl := 1 + rng.Intn(tr.M())
			if repl == old {
				repl = old%tr.M() + 1
			}
			sw.PeerPort[port] = repl
		case 1:
			// Point the edge at a different device.
			old := sw.PeerGUID[port]
			repl := guids[rng.Intn(len(guids))]
			if repl == old {
				continue // replacing a GUID with itself is not a corruption
			}
			sw.PeerGUID[port] = repl
			sw.PeerIsCA[port] = false
		case 2:
			// Flip the device-type bit.
			sw.PeerIsCA[port] = !sw.PeerIsCA[port]
		}
		if _, err := Recognize(g); err == nil {
			t.Fatalf("trial %d: corrupted graph accepted (switch %#x port %d)", trial, sw.GUID, port)
		}
	}
}

// TestCASwapIsValidRelabeling: exchanging two CAs (e.g. recabling two hosts)
// is NOT a corruption — the recognizer must accept it and simply assign the
// labels the new attachment points imply.
func TestCASwapIsValidRelabeling(t *testing.T) {
	tr := topology.MustNew(8, 2)
	g, f := explore(t, tr, 0)
	// Swap the attachment bookkeeping of two CAs on different leaves.
	a := f.NodeAgent(1).GUID()
	b := f.NodeAgent(9).GUID()
	ca, cb := g.CAs[a], g.CAs[b]
	ca.Switch, cb.Switch = cb.Switch, ca.Switch
	ca.SwitchPort, cb.SwitchPort = cb.SwitchPort, ca.SwitchPort
	ca.Path, cb.Path = cb.Path, ca.Path
	// The leaves' own port records must swap too (the physical recabling).
	swA, swB := g.Switches[ca.Switch], g.Switches[cb.Switch]
	swA.PeerGUID[ca.SwitchPort] = a
	swB.PeerGUID[cb.SwitchPort] = b

	lab, err := Recognize(g)
	if err != nil {
		t.Fatalf("valid recabling rejected: %v", err)
	}
	// The two CAs trade NodeIDs.
	if lab.NodeID[a] != 9 || lab.NodeID[b] != 1 {
		t.Errorf("swap labelled %d/%d, want 9/1", lab.NodeID[a], lab.NodeID[b])
	}
}
