// Package discover explores an anonymous InfiniBand fabric through
// directed-route probes and recognizes it as an m-port n-tree, recovering
// the FT(m, n) labeling the routing scheme needs — the counterpart of what
// OpenSM's fat-tree routing engine does when it infers the tree structure
// from an unlabelled topology.
//
// Exploration (Explore) only assumes a Prober that can deliver a
// NodeInfo-style query along a path of physical exit ports and report what
// answered: device GUID, device type, port count, and the port the probe
// arrived on. Recognition (Recognize) then exploits a structural property
// of the m-port n-tree connection rule
//
//	SW<w,l> port k  <->  SW<w',l+1> port k'   with  k = w'_l, k' = w_l + m/2
//
// every inter-level edge's two port numbers *are* the two endpoints' label
// digits at position l. Walking one ancestor chain and one descendant chain
// from a switch therefore reads off its complete label, and a final pass
// verifies every edge of the discovered graph against the reconstructed
// tree, so a wrong or damaged topology is rejected rather than mislabelled.
package discover

import (
	"fmt"
	"math/bits"
	"sort"

	"mlid/internal/topology"
)

// Device is what a probe learns about the device that answered it.
type Device struct {
	GUID     uint64
	IsSwitch bool
	// NumPorts is the device's external port count.
	NumPorts int
	// ArrivalPort is the physical port the probe arrived on — how the
	// explorer learns the far end of the link it just crossed.
	ArrivalPort int
}

// Prober delivers a discovery query along a directed route of physical exit
// ports (entry i is the exit port of hop i; an empty path addresses the
// origin itself) and returns the answering device.
type Prober interface {
	Probe(path []uint8) (Device, error)
}

// Switch is a discovered switch and its wiring.
type Switch struct {
	GUID     uint64
	NumPorts int
	// Path is a directed route from the subnet manager to this switch.
	Path []uint8
	// PeerGUID / PeerPort record, per physical port, the neighbour and the
	// neighbour's physical port; PeerIsCA marks channel-adapter neighbours.
	PeerGUID map[int]uint64
	PeerPort map[int]int
	PeerIsCA map[int]bool
}

// CA is a discovered channel adapter (processing node endport).
type CA struct {
	GUID uint64
	// Path is a directed route from the subnet manager to this CA.
	Path []uint8
	// Switch and SwitchPort name its attachment point.
	Switch     uint64
	SwitchPort int
}

// Graph is the explored fabric.
type Graph struct {
	// Origin is the GUID of the CA hosting the subnet manager.
	Origin uint64
	// Switches and CAs index the discovered devices by GUID.
	Switches map[uint64]*Switch
	CAs      map[uint64]*CA
}

// Explore walks the fabric breadth-first from the prober's origin CA,
// probing every switch port once. maxDevices bounds the sweep against
// miswired fabrics; 0 means a generous default.
func Explore(p Prober, maxDevices int) (*Graph, error) {
	if maxDevices <= 0 {
		maxDevices = 1 << 20
	}
	self, err := p.Probe(nil)
	if err != nil {
		return nil, fmt.Errorf("discover: probing origin: %w", err)
	}
	if self.IsSwitch {
		return nil, fmt.Errorf("discover: origin device %#x is a switch, want a CA", self.GUID)
	}
	g := &Graph{
		Origin:   self.GUID,
		Switches: make(map[uint64]*Switch),
		CAs:      make(map[uint64]*CA),
	}
	g.CAs[self.GUID] = &CA{GUID: self.GUID}

	first, err := p.Probe([]uint8{1})
	if err != nil {
		return nil, fmt.Errorf("discover: probing origin's switch: %w", err)
	}
	if !first.IsSwitch {
		return nil, fmt.Errorf("discover: origin's neighbour %#x is not a switch", first.GUID)
	}
	root := &Switch{
		GUID:     first.GUID,
		NumPorts: first.NumPorts,
		Path:     []uint8{1},
		PeerGUID: map[int]uint64{},
		PeerPort: map[int]int{},
		PeerIsCA: map[int]bool{},
	}
	g.Switches[first.GUID] = root
	g.CAs[self.GUID].Switch = first.GUID
	g.CAs[self.GUID].SwitchPort = first.ArrivalPort

	queue := []*Switch{root}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		for port := 1; port <= sw.NumPorts; port++ {
			path := append(append([]uint8{}, sw.Path...), uint8(port))
			dev, err := p.Probe(path)
			if err != nil {
				return nil, fmt.Errorf("discover: probing %#x port %d: %w", sw.GUID, port, err)
			}
			sw.PeerGUID[port] = dev.GUID
			sw.PeerPort[port] = dev.ArrivalPort
			sw.PeerIsCA[port] = !dev.IsSwitch
			if dev.IsSwitch {
				if _, seen := g.Switches[dev.GUID]; !seen {
					if len(g.Switches)+len(g.CAs) >= maxDevices {
						return nil, fmt.Errorf("discover: device limit %d exceeded", maxDevices)
					}
					next := &Switch{
						GUID:     dev.GUID,
						NumPorts: dev.NumPorts,
						Path:     path,
						PeerGUID: map[int]uint64{},
						PeerPort: map[int]int{},
						PeerIsCA: map[int]bool{},
					}
					g.Switches[dev.GUID] = next
					queue = append(queue, next)
				}
			} else if _, seen := g.CAs[dev.GUID]; !seen {
				if len(g.Switches)+len(g.CAs) >= maxDevices {
					return nil, fmt.Errorf("discover: device limit %d exceeded", maxDevices)
				}
				g.CAs[dev.GUID] = &CA{GUID: dev.GUID, Path: path, Switch: sw.GUID, SwitchPort: port}
			}
		}
	}
	return g, nil
}

// Labeling maps the discovered devices onto a reconstructed FT(m, n).
type Labeling struct {
	Tree *topology.Tree
	// SwitchID / NodeID map device GUIDs to the tree's dense identifiers.
	SwitchID map[uint64]topology.SwitchID
	NodeID   map[uint64]topology.NodeID
}

// Recognize reconstructs the m-port n-tree labeling of an explored graph,
// or reports why the graph is not a healthy FT(m, n).
func Recognize(g *Graph) (*Labeling, error) {
	if len(g.Switches) == 0 {
		return nil, fmt.Errorf("discover: no switches found")
	}
	// Uniform switch arity, power of two, >= 4. The scan walks GUIDs in
	// sorted order so a mixed-arity fabric always yields the same error.
	swGUIDs := make([]uint64, 0, len(g.Switches))
	for guid := range g.Switches {
		swGUIDs = append(swGUIDs, guid)
	}
	sort.Slice(swGUIDs, func(i, j int) bool { return swGUIDs[i] < swGUIDs[j] })
	m := -1
	for _, guid := range swGUIDs {
		sw := g.Switches[guid]
		if m == -1 {
			m = sw.NumPorts
		}
		if sw.NumPorts != m {
			return nil, fmt.Errorf("discover: mixed switch arities %d and %d", m, sw.NumPorts)
		}
	}
	if m < 4 || m&(m-1) != 0 {
		return nil, fmt.Errorf("discover: switch arity %d is not a power of two >= 4", m)
	}
	h := m / 2

	// The graph must be internally consistent before any structural
	// reasoning: every switch-side peer must itself be a discovered switch.
	for guid, sw := range g.Switches {
		for port := 1; port <= sw.NumPorts; port++ {
			peer, ok := sw.PeerGUID[port]
			if !ok {
				return nil, fmt.Errorf("discover: switch %#x port %d unprobed", guid, port)
			}
			if sw.PeerIsCA[port] {
				continue
			}
			if _, exists := g.Switches[peer]; !exists {
				return nil, fmt.Errorf("discover: switch %#x port %d references unknown switch %#x", guid, port, peer)
			}
		}
	}

	// Levels: multi-source BFS from the leaf switches (those with CAs).
	dist := make(map[uint64]int, len(g.Switches))
	var frontier []uint64
	for guid, sw := range g.Switches {
		for port := 1; port <= sw.NumPorts; port++ {
			if sw.PeerIsCA[port] {
				dist[guid] = 0
				frontier = append(frontier, guid)
				break
			}
		}
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("discover: no leaf switches (no CAs attached)")
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	maxDist := 0
	for len(frontier) > 0 {
		guid := frontier[0]
		frontier = frontier[1:]
		sw := g.Switches[guid]
		for port := 1; port <= sw.NumPorts; port++ {
			peer, ok := sw.PeerGUID[port]
			if !ok || sw.PeerIsCA[port] {
				continue
			}
			if _, seen := dist[peer]; !seen {
				dist[peer] = dist[guid] + 1
				if dist[peer] > maxDist {
					maxDist = dist[peer]
				}
				frontier = append(frontier, peer)
			}
		}
	}
	if len(dist) != len(g.Switches) {
		return nil, fmt.Errorf("discover: %d switches unreachable from the leaf level", len(g.Switches)-len(dist))
	}
	n := maxDist + 1
	if bits.Len(uint(h))-1 == 0 {
		return nil, fmt.Errorf("discover: degenerate arity")
	}
	tree, err := topology.New(m, n)
	if err != nil {
		return nil, fmt.Errorf("discover: recognized parameters rejected: %w", err)
	}
	if len(g.Switches) != tree.Switches() {
		return nil, fmt.Errorf("discover: %d switches, FT(%d,%d) needs %d", len(g.Switches), m, n, tree.Switches())
	}
	if len(g.CAs) != tree.Nodes() {
		return nil, fmt.Errorf("discover: %d CAs, FT(%d,%d) needs %d", len(g.CAs), m, n, tree.Nodes())
	}
	level := func(guid uint64) int { return n - 1 - dist[guid] }

	// Helper: a deterministic choice of a port whose switch peer sits at
	// the wanted level.
	portToLevel := func(sw *Switch, want int) (int, uint64, bool) {
		for port := 1; port <= sw.NumPorts; port++ {
			peer, ok := sw.PeerGUID[port]
			if !ok || sw.PeerIsCA[port] {
				continue
			}
			if level(peer) == want {
				return port, peer, true
			}
		}
		return 0, 0, false
	}

	// Label every switch by reading digits off one ancestor chain and one
	// descendant chain (see the package comment).
	lab := &Labeling{
		Tree:     tree,
		SwitchID: make(map[uint64]topology.SwitchID, len(g.Switches)),
		NodeID:   make(map[uint64]topology.NodeID, len(g.CAs)),
	}
	usedSwitch := make(map[topology.SwitchID]uint64)
	for guid, sw := range g.Switches {
		l := level(guid)
		digits := make([]int, n-1)
		// Ancestor chain fills positions l-1 .. 0: at each step the
		// parent's port toward the current switch is the digit.
		cur := sw
		for pos := l - 1; pos >= 0; pos-- {
			q, parentGUID, ok := portToLevel(cur, pos)
			if !ok {
				return nil, fmt.Errorf("discover: switch %#x (level %d) has no parent at level %d", cur.GUID, level(cur.GUID), pos)
			}
			digits[pos] = cur.PeerPort[q] - 1
			cur = g.Switches[parentGUID]
		}
		// Descendant chain fills positions l .. n-2: at each step the
		// child's port toward the current switch, minus m/2, is the digit.
		cur = sw
		for pos := l; pos <= n-2; pos++ {
			q, childGUID, ok := portToLevel(cur, pos+1)
			if !ok {
				return nil, fmt.Errorf("discover: switch %#x (level %d) has no child at level %d", cur.GUID, level(cur.GUID), pos+1)
			}
			digits[pos] = cur.PeerPort[q] - 1 - h
			cur = g.Switches[childGUID]
		}
		id, err := tree.SwitchFromDigits(digits, l)
		if err != nil {
			return nil, fmt.Errorf("discover: switch %#x labelled %v level %d: %w", guid, digits, l, err)
		}
		if prev, dup := usedSwitch[id]; dup {
			return nil, fmt.Errorf("discover: switches %#x and %#x both labelled %s", prev, guid, tree.SwitchLabel(id))
		}
		usedSwitch[id] = guid
		lab.SwitchID[guid] = id
	}

	// Verify every switch port against the reconstructed tree: switch-side
	// edges must match the FT wiring exactly, and CA-marked ports must sit
	// where the tree attaches a node, hold a discovered CA that agrees
	// about the attachment, and see the CA's only port (1).
	caByGUID := g.CAs
	for guid, sw := range g.Switches {
		id := lab.SwitchID[guid]
		for port := 1; port <= sw.NumPorts; port++ {
			peer := sw.PeerGUID[port]
			want := tree.SwitchNeighbor(id, port-1)
			if sw.PeerIsCA[port] {
				ca, known := caByGUID[peer]
				if want.Kind != topology.KindNode ||
					!known || ca.Switch != guid || ca.SwitchPort != port ||
					sw.PeerPort[port] != 1 {
					return nil, fmt.Errorf("discover: CA attachment at %s port %d does not match FT(%d,%d)", tree.SwitchLabel(id), port, m, n)
				}
				continue
			}
			if want.Kind != topology.KindSwitch ||
				lab.SwitchID[peer] != want.Switch ||
				sw.PeerPort[port]-1 != want.Port {
				return nil, fmt.Errorf("discover: edge %s port %d does not match FT(%d,%d) wiring", tree.SwitchLabel(id), port, m, n)
			}
		}
	}

	// Label the CAs from their attachment point and verify.
	usedNode := make(map[topology.NodeID]uint64)
	for guid, ca := range g.CAs {
		leafID, ok := lab.SwitchID[ca.Switch]
		if !ok {
			return nil, fmt.Errorf("discover: CA %#x attached to unknown switch %#x", guid, ca.Switch)
		}
		want := tree.SwitchNeighbor(leafID, ca.SwitchPort-1)
		if want.Kind != topology.KindNode {
			return nil, fmt.Errorf("discover: CA %#x attached to non-leaf port %s:%d", guid, tree.SwitchLabel(leafID), ca.SwitchPort)
		}
		if prev, dup := usedNode[want.Node]; dup {
			return nil, fmt.Errorf("discover: CAs %#x and %#x both labelled %s", prev, guid, tree.NodeLabel(want.Node))
		}
		usedNode[want.Node] = guid
		lab.NodeID[guid] = want.Node
	}
	return lab, nil
}
