package discover

import (
	"sort"
	"strings"
	"testing"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// fabricProber adapts an SMA fabric to the Prober interface, exactly as the
// MAD subnet manager does.
type fabricProber struct {
	f      *ib.SMAFabric
	origin topology.NodeID
}

func (p fabricProber) Probe(path []uint8) (Device, error) {
	smp := &ib.SMP{Method: ib.MethodGet, Attribute: ib.AttrNodeInfo, HopCount: uint8(len(path))}
	copy(smp.InitialPath[1:], path)
	if err := p.f.Send(p.origin, smp); err != nil {
		return Device{}, err
	}
	ni := ib.DecodeNodeInfo(&smp.Data)
	return Device{
		GUID:        ni.GUID,
		IsSwitch:    ni.Type == ib.NodeTypeSwitch,
		NumPorts:    int(ni.NumPorts),
		ArrivalPort: int(ni.LocalPort),
	}, nil
}

func explore(t *testing.T, tr *topology.Tree, origin topology.NodeID) (*Graph, *ib.SMAFabric) {
	t.Helper()
	f := ib.NewSMAFabric(tr)
	g, err := Explore(fabricProber{f: f, origin: origin}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, f
}

func TestExploreFindsEverything(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}, {16, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		g, f := explore(t, tr, 0)
		if len(g.Switches) != tr.Switches() {
			t.Fatalf("%s: %d switches discovered, want %d", tr, len(g.Switches), tr.Switches())
		}
		if len(g.CAs) != tr.Nodes() {
			t.Fatalf("%s: %d CAs discovered, want %d", tr, len(g.CAs), tr.Nodes())
		}
		if g.Origin != f.NodeAgent(0).GUID() {
			t.Fatalf("%s: wrong origin GUID", tr)
		}
		// Every switch knows all of its ports' peers.
		for guid, sw := range g.Switches {
			if len(sw.PeerGUID) != tr.M() {
				t.Fatalf("%s: switch %#x has %d peers", tr, guid, len(sw.PeerGUID))
			}
		}
	}
}

func TestExploreFromAnyOrigin(t *testing.T) {
	tr := topology.MustNew(4, 3)
	for origin := 0; origin < tr.Nodes(); origin += 5 {
		g, _ := explore(t, tr, topology.NodeID(origin))
		if len(g.Switches) != tr.Switches() || len(g.CAs) != tr.Nodes() {
			t.Fatalf("origin %d: %d/%d discovered", origin, len(g.Switches), len(g.CAs))
		}
	}
}

func TestExploreDeviceLimit(t *testing.T) {
	tr := topology.MustNew(8, 2)
	f := ib.NewSMAFabric(tr)
	_, err := Explore(fabricProber{f: f, origin: 0}, 5)
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("limit not enforced: %v", err)
	}
}

// TestRecognizeRecoversExactLabels: the recovered labeling must match the
// original construction exactly — the edge port numbers fully determine the
// digits.
func TestRecognizeRecoversExactLabels(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}, {16, 2}} {
		tr := topology.MustNew(dims[0], dims[1])
		g, f := explore(t, tr, 0)
		lab, err := Recognize(g)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if lab.Tree.M() != tr.M() || lab.Tree.N() != tr.N() {
			t.Fatalf("%s: recognized FT(%d,%d)", tr, lab.Tree.M(), lab.Tree.N())
		}
		for s := 0; s < tr.Switches(); s++ {
			guid := f.SwitchAgent(topology.SwitchID(s)).GUID()
			if lab.SwitchID[guid] != topology.SwitchID(s) {
				t.Fatalf("%s: switch %d recognized as %d", tr, s, lab.SwitchID[guid])
			}
		}
		for p := 0; p < tr.Nodes(); p++ {
			guid := f.NodeAgent(topology.NodeID(p)).GUID()
			if lab.NodeID[guid] != topology.NodeID(p) {
				t.Fatalf("%s: node %d recognized as %d", tr, p, lab.NodeID[guid])
			}
		}
	}
}

func TestRecognizeRejectsDamage(t *testing.T) {
	tr := topology.MustNew(4, 2)

	// Missing switch.
	g, _ := explore(t, tr, 0)
	for guid := range g.Switches {
		delete(g.Switches, guid)
		break
	}
	if _, err := Recognize(g); err == nil {
		t.Error("graph with missing switch accepted")
	}

	// Swapped port numbers on one edge (miswiring).
	g, _ = explore(t, tr, 0)
	for _, sw := range g.Switches {
		for port := 1; port <= sw.NumPorts; port++ {
			if !sw.PeerIsCA[port] {
				sw.PeerPort[port] = sw.PeerPort[port]%sw.NumPorts + 1
				goto corrupted
			}
		}
	}
corrupted:
	if _, err := Recognize(g); err == nil {
		t.Error("miswired graph accepted")
	}

	// Extra CA on the same leaf port (duplicate attachment).
	g, _ = explore(t, tr, 0)
	caGUIDs := make([]uint64, 0, len(g.CAs))
	for guid := range g.CAs {
		caGUIDs = append(caGUIDs, guid)
	}
	sort.Slice(caGUIDs, func(i, j int) bool { return caGUIDs[i] < caGUIDs[j] })
	var anyCA *CA
	for _, guid := range caGUIDs {
		if ca := g.CAs[guid]; ca.Path != nil {
			anyCA = ca
			break
		}
	}
	g.CAs[0xfeed] = &CA{GUID: 0xfeed, Switch: anyCA.Switch, SwitchPort: anyCA.SwitchPort, Path: anyCA.Path}
	if _, err := Recognize(g); err == nil {
		t.Error("duplicate CA attachment accepted")
	}

	// Empty graph.
	if _, err := Recognize(&Graph{Switches: map[uint64]*Switch{}, CAs: map[uint64]*CA{}}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestRecognizeRejectsMixedArity(t *testing.T) {
	tr := topology.MustNew(4, 2)
	g, _ := explore(t, tr, 0)
	for _, sw := range g.Switches {
		sw.NumPorts = 6
		break
	}
	if _, err := Recognize(g); err == nil || !strings.Contains(err.Error(), "arities") {
		t.Error("mixed arity accepted")
	}
}

func TestRecognizeRejectsNonPowerOfTwo(t *testing.T) {
	g := &Graph{
		Switches: map[uint64]*Switch{1: {GUID: 1, NumPorts: 6, PeerGUID: map[int]uint64{}, PeerPort: map[int]int{}, PeerIsCA: map[int]bool{}}},
		CAs:      map[uint64]*CA{},
	}
	if _, err := Recognize(g); err == nil {
		t.Error("arity 6 accepted")
	}
}
