package core

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// FailedAt reports whether the link at (switch, abstract port) is failed.
func (f *FaultSet) FailedAt(sw topology.SwitchID, port int) bool {
	return f.dead[linkEnd{sw, port}]
}

// BrokenEntry names a forwarding-table entry that cannot be repaired
// locally: the failed link is on the descending phase, where the fat-tree
// offers exactly one child toward the destination. Such DLIDs need
// source-side reselection (SelectDLID) or an SM-level path recomputation.
type BrokenEntry struct {
	Switch topology.SwitchID
	DLID   ib.LID
}

// RepairSubnet rewrites the subnet's forwarding tables around the failed
// links, the way a subnet manager reacts to port-down traps.
//
// The repair uses a fat-tree-specific property of the m-port n-tree: during
// the ascending phase any live up-port is correct, because the case-1
// (descend) test at every level l only inspects switch label digits below l,
// which an ascent detour never alters — the packet simply reaches a
// different least common ancestor and descends from there. Ascending
// entries pointing at failed links are therefore remapped to the next live
// up-port (spread by DLID so repaired traffic does not pile onto one
// survivor). Descending entries have no local alternative and are reported
// as broken; entries for them are left in place pointing at the dead link
// so the damage is observable rather than silently misrouted.
//
// It returns the number of remapped entries and the irreparable ones.
func RepairSubnet(sn *ib.Subnet, faults *FaultSet) (remapped int, broken []BrokenEntry, err error) {
	t := sn.Tree
	for s := 0; s < t.Switches(); s++ {
		sw := topology.SwitchID(s)
		down := t.DownPorts(sw)
		lft := sn.LFTs[s]
		// Collect the live up-ports once per switch.
		var liveUp []int
		for k := down; k < t.M(); k++ {
			if !faults.FailedAt(sw, k) {
				liveUp = append(liveUp, k)
			}
		}
		for lid := 1; lid < lft.Size(); lid++ {
			phys, lookupErr := lft.Lookup(ib.LID(lid))
			if lookupErr != nil {
				continue
			}
			k := int(phys) - 1
			if !faults.FailedAt(sw, k) {
				continue
			}
			if k < down {
				broken = append(broken, BrokenEntry{Switch: sw, DLID: ib.LID(lid)})
				continue
			}
			if len(liveUp) == 0 {
				broken = append(broken, BrokenEntry{Switch: sw, DLID: ib.LID(lid)})
				continue
			}
			alt := liveUp[lid%len(liveUp)]
			if setErr := lft.Set(ib.LID(lid), uint8(alt+1)); setErr != nil {
				return remapped, broken, fmt.Errorf("core: repair switch %d lid %d: %w", s, lid, setErr)
			}
			remapped++
		}
	}
	return remapped, broken, nil
}

// TraceSubnet walks the subnet's programmed forwarding tables (not the
// scheme's closed form) from src for the given DLID — the ground truth for
// repaired or hand-modified tables. It enforces the same loop and
// up*/down* checks as TraceLID.
func TraceSubnet(sn *ib.Subnet, src topology.NodeID, dlid ib.LID) (Path, error) {
	t := sn.Tree
	p := Path{Src: src, DLID: dlid}
	sw, inPort := t.NodeAttachment(src)
	descending := false
	maxHops := 2*t.N() + 1
	for hop := 0; ; hop++ {
		if hop > maxHops {
			return p, fmt.Errorf("core: subnet route for DLID %d exceeds %d hops: %s", dlid, maxHops, p.Render(t))
		}
		phys, err := sn.OutPort(sw, dlid)
		if err != nil {
			return p, fmt.Errorf("core: switch %s: %w", t.SwitchLabel(sw), err)
		}
		out := int(phys) - 1
		downPorts := t.DownPorts(sw)
		if out < downPorts {
			descending = true
		} else if descending {
			return p, fmt.Errorf("core: subnet route for DLID %d turns upward after descending at %s",
				dlid, t.SwitchLabel(sw))
		}
		p.Hops = append(p.Hops, Hop{Switch: sw, InPort: inPort, OutPort: out})
		ref := t.SwitchNeighbor(sw, out)
		switch ref.Kind {
		case topology.KindNode:
			p.Dst = ref.Node
			return p, nil
		case topology.KindSwitch:
			sw, inPort = ref.Switch, ref.Port
		default:
			return p, fmt.Errorf("core: subnet route for DLID %d fell off the fabric at %s port %d",
				dlid, t.SwitchLabel(sw), out)
		}
	}
}
