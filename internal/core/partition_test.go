package core

import (
	"testing"

	"mlid/internal/topology"
)

func TestDetectPartitionsHealthy(t *testing.T) {
	tr := topology.MustNew(4, 2)
	p := DetectPartitions(tr, nil)
	if p.Components != 1 || p.Severed != 0 || p.UnreachablePairs != 0 || p.Partitioned() {
		t.Fatalf("healthy fabric: %+v", p)
	}
	if !p.Reachable(0, topology.NodeID(tr.Nodes()-1)) {
		t.Fatal("healthy fabric: pair unreachable")
	}
}

func TestDetectPartitionsSeveredNode(t *testing.T) {
	tr := topology.MustNew(4, 2)
	n := tr.Nodes()
	sw, port := tr.NodeAttachment(3)
	fs := NewFaultSet()
	fs.FailLink(tr, sw, port)
	p := DetectPartitions(tr, fs)
	if p.Components != 1 || p.Severed != 1 {
		t.Fatalf("severed attach: %+v", p)
	}
	// Every ordered pair touching node 3 is unreachable: 2*(n-1).
	if want := 2 * (n - 1); p.UnreachablePairs != want {
		t.Fatalf("UnreachablePairs = %d, want %d", p.UnreachablePairs, want)
	}
	if p.Reachable(0, 3) || p.Reachable(3, 0) || p.Reachable(3, 3) {
		t.Fatal("severed node must be unreachable, even from itself")
	}
	if !p.Reachable(0, 1) {
		t.Fatal("unaffected pair must stay reachable")
	}
}

func TestDetectPartitionsIsolatedLeaf(t *testing.T) {
	tr := topology.MustNew(4, 2)
	n := tr.Nodes()
	// Kill every ascending link of node 0's leaf: its nodes become their own
	// component, still attached but cut off from the rest.
	leaf, _ := tr.NodeAttachment(0)
	fs := NewFaultSet()
	for port := tr.DownPorts(leaf); port < tr.M(); port++ {
		fs.FailLink(tr, leaf, port)
	}
	p := DetectPartitions(tr, fs)
	if p.Components != 2 || p.Severed != 0 {
		t.Fatalf("isolated leaf: %+v", p)
	}
	// The leaf holds h nodes; unreachable ordered pairs cross the cut both
	// ways.
	var leafNodes int
	for node := 0; node < n; node++ {
		if sw, _ := tr.NodeAttachment(topology.NodeID(node)); sw == leaf {
			leafNodes++
		}
	}
	if want := 2 * leafNodes * (n - leafNodes); p.UnreachablePairs != want {
		t.Fatalf("UnreachablePairs = %d, want %d", p.UnreachablePairs, want)
	}
	if !p.Reachable(0, 1) {
		t.Fatal("nodes on the isolated leaf must still reach each other")
	}
	if p.Reachable(0, topology.NodeID(n-1)) {
		t.Fatal("pair across the cut must be unreachable")
	}
}
