package core

import (
	"fmt"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// FaultSet records failed links. A link is named by either of its switch-side
// endpoints; node attachment links are named by the leaf-switch endpoint.
// Marking one direction marks the whole bidirectional link, matching how a
// subnet manager reacts to a dead port pair.
type FaultSet struct {
	dead map[linkEnd]bool
}

type linkEnd struct {
	sw   topology.SwitchID
	port int
}

// NewFaultSet returns an empty fault set.
func NewFaultSet() *FaultSet { return &FaultSet{dead: make(map[linkEnd]bool)} }

// FailLink marks the bidirectional link at (switch, abstract port) failed,
// registering both endpoints when the peer is a switch.
func (f *FaultSet) FailLink(t *topology.Tree, sw topology.SwitchID, port int) {
	f.dead[linkEnd{sw, port}] = true
	if ref := t.SwitchNeighbor(sw, port); ref.Kind == topology.KindSwitch {
		f.dead[linkEnd{ref.Switch, ref.Port}] = true
	}
}

// Len returns the number of registered failed endpoints.
func (f *FaultSet) Len() int { return len(f.dead) }

// Dead reports whether the endpoint at (switch, abstract port) is registered
// as failed. FailLink registers both switch-side endpoints of a link, so
// querying either side of an inter-switch link answers the same.
func (f *FaultSet) Dead(sw topology.SwitchID, port int) bool {
	return f.dead[linkEnd{sw, port}]
}

// Blocked reports whether the path crosses a failed link.
func (f *FaultSet) Blocked(p Path) bool {
	for _, h := range p.Hops {
		if f.dead[linkEnd{h.Switch, h.OutPort}] || f.dead[linkEnd{h.Switch, h.InPort}] {
			return true
		}
	}
	return false
}

// SelectDLID performs fault-avoiding path selection: the LMC-multipath
// failover that motivates multiple LIDs in practice. It first tries the
// scheme's canonical DLID; if that path crosses a failed link it scans
// cyclically from the canonical offset for the nearest surviving LID — the
// same order the simulator's source reselection uses, so a static analysis
// built on this function predicts the load the simulated sources actually
// place. The cyclic start matters: canonical offsets are spread across
// sources, so failover spreads too, instead of every affected source piling
// onto the lowest-numbered survivor. This is an extension beyond the paper
// (which assumes a healthy fabric): the MLID addressing makes recovery a
// source-local DLID rewrite, with no forwarding-table reprogramming, while
// SLID (one LID) has no alternative to offer.
//
// It returns the chosen DLID, the surviving path, and ok=false when every
// named path is blocked.
func SelectDLID(t *topology.Tree, s Scheme, src, dst topology.NodeID, faults *FaultSet) (ib.LID, Path, bool) {
	canonical := s.DLID(t, src, dst)
	if p, err := TraceLID(t, s, src, canonical); err == nil && p.Dst == dst && (faults == nil || !faults.Blocked(p)) {
		return canonical, p, true
	}
	base := s.BaseLID(t, dst)
	count := 1 << s.LMC(t)
	start := int(canonical) - int(base)
	if start < 0 || start >= count {
		start = 0
	}
	for i := 1; i < count; i++ {
		lid := base + ib.LID((start+i)%count)
		p, err := TraceLID(t, s, src, lid)
		if err != nil || p.Dst != dst {
			continue
		}
		if faults == nil || !faults.Blocked(p) {
			return lid, p, true
		}
	}
	return 0, Path{}, false
}

// UsableOffsets enumerates the candidate path offsets for (src, dst) exactly
// as a running simulation would present them to a path Selector: base is the
// destination's base LID, count the scheme's offset range (capped at 64 to
// match the mask width), canonical the scheme's static choice, and mask has
// bit i set when LID base+i traces to dst without crossing a failed link.
// The mask is zero only when the fault set disconnects the pair entirely.
func UsableOffsets(t *topology.Tree, s Scheme, src, dst topology.NodeID, faults *FaultSet) (base ib.LID, count, canonical int, mask uint64) {
	base = s.BaseLID(t, dst)
	count = 1 << s.LMC(t)
	if count > 64 {
		count = 64
	}
	canonical = int(s.DLID(t, src, dst) - base)
	if canonical < 0 || canonical >= count {
		canonical = 0
	}
	for off := 0; off < count; off++ {
		p, err := TraceLID(t, s, src, base+ib.LID(off))
		if err != nil || p.Dst != dst {
			continue
		}
		if faults != nil && faults.Blocked(p) {
			continue
		}
		mask |= 1 << uint(off)
	}
	return base, count, canonical, mask
}

// Reachability reports, for a given fault set, how many (src, dst) pairs the
// scheme can still serve through some named LID, over all ordered pairs of
// distinct nodes. It is used to compare MLID's and SLID's fault tolerance.
func Reachability(t *topology.Tree, s Scheme, faults *FaultSet) (served, total int, err error) {
	for a := 0; a < t.Nodes(); a++ {
		for b := 0; b < t.Nodes(); b++ {
			if a == b {
				continue
			}
			total++
			if _, _, ok := SelectDLID(t, s, topology.NodeID(a), topology.NodeID(b), faults); ok {
				served++
			}
		}
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("core: no node pairs in %v", t)
	}
	return served, total, nil
}
