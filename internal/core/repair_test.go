package core

import (
	"testing"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

func configured(t *testing.T, m, n int, s Scheme) *ib.Subnet {
	t.Helper()
	tr := topology.MustNew(m, n)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	return sn
}

// TestTraceSubnetMatchesScheme: on a healthy fabric the LFT walk and the
// closed-form walk agree for every (src, dst).
func TestTraceSubnetMatchesScheme(t *testing.T) {
	for _, s := range Schemes() {
		sn := configured(t, 4, 3, s)
		tr := sn.Tree
		for a := 0; a < tr.Nodes(); a++ {
			for b := 0; b < tr.Nodes(); b++ {
				if a == b {
					continue
				}
				dlid := sn.DLID(topology.NodeID(a), topology.NodeID(b))
				p1, err := TraceLID(tr, s, topology.NodeID(a), dlid)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := TraceSubnet(sn, topology.NodeID(a), dlid)
				if err != nil {
					t.Fatal(err)
				}
				if p1.Render(nil) != p2.Render(nil) {
					t.Fatalf("%s %d->%d: scheme %s vs subnet %s",
						s.Name(), a, b, p1.Render(tr), p2.Render(tr))
				}
			}
		}
	}
}

// TestRepairSubnetUpLinkFault: after failing an ascending link and running
// the repair, every pair that previously crossed it is delivered again via
// a detour — with no table entry left pointing at the dead link's up side.
func TestRepairSubnetUpLinkFault(t *testing.T) {
	sn := configured(t, 4, 3, NewMLID())
	tr := sn.Tree

	// Fail node 0's leaf switch's first up-port.
	leaf, _ := tr.NodeAttachment(0)
	failedPort := tr.DownPorts(leaf) // first up-port
	faults := NewFaultSet()
	faults.FailLink(tr, leaf, failedPort)

	remapped, broken, err := RepairSubnet(sn, faults)
	if err != nil {
		t.Fatal(err)
	}
	if remapped == 0 {
		t.Fatal("nothing remapped")
	}
	// The ascending side is fully repaired, but the same physical link's
	// descending direction (the parent's down-port into this leaf) has no
	// local alternative: those entries — the leaf's nodes' DLIDs at the
	// parent — must be reported broken, and nothing else.
	parent := tr.SwitchNeighbor(leaf, failedPort)
	if parent.Kind != topology.KindSwitch {
		t.Fatal("test setup: up-port does not reach a switch")
	}
	for _, be := range broken {
		if be.Switch != parent.Switch {
			t.Fatalf("broken entry at %s, want all at parent %s",
				tr.SwitchLabel(be.Switch), tr.SwitchLabel(parent.Switch))
		}
	}
	if len(broken) == 0 {
		t.Fatal("parent's descending entries not reported broken")
	}

	// Combined recovery: switch-level repair plus source-side LID
	// reselection serves every pair over the programmed tables.
	for a := 0; a < tr.Nodes(); a++ {
		for b := 0; b < tr.Nodes(); b++ {
			if a == b {
				continue
			}
			if !subnetPairServed(sn, faults, topology.NodeID(a), topology.NodeID(b)) {
				t.Fatalf("pair %d->%d unservable after repair + reselection", a, b)
			}
		}
	}
}

// subnetPairServed reports whether some LID of dst routes src's packet to
// dst over the subnet's programmed tables without crossing a failed link.
func subnetPairServed(sn *ib.Subnet, faults *FaultSet, src, dst topology.NodeID) bool {
	r := sn.Endports[dst]
	for off := 0; off < r.Count(); off++ {
		p, err := TraceSubnet(sn, src, r.Base+ib.LID(off))
		if err == nil && p.Dst == dst && !faults.Blocked(p) {
			return true
		}
	}
	return false
}

// TestRepairSubnetSpreadsDetours: repaired entries distribute over the
// surviving up-ports rather than piling onto one.
func TestRepairSubnetSpreadsDetours(t *testing.T) {
	sn := configured(t, 8, 2, NewMLID())
	tr := sn.Tree
	leaf, _ := tr.NodeAttachment(0)
	down := tr.DownPorts(leaf)
	faults := NewFaultSet()
	faults.FailLink(tr, leaf, down) // fail first of 4 up-ports

	if _, _, err := RepairSubnet(sn, faults); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	lft := sn.LFTs[leaf]
	for lid := 1; lid < lft.Size(); lid++ {
		phys, err := lft.Lookup(ib.LID(lid))
		if err != nil {
			continue
		}
		k := int(phys) - 1
		if k >= down {
			counts[k]++
		}
	}
	if counts[down] != 0 {
		t.Fatalf("entries still point at failed port: %v", counts)
	}
	used := 0
	for k, c := range counts {
		if k > down && c > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("detours not spread: %v", counts)
	}
}

// TestRepairSubnetDownLinkIrreparable: a failed descending link has no local
// alternative; the repair must report the affected entries as broken.
func TestRepairSubnetDownLinkIrreparable(t *testing.T) {
	sn := configured(t, 4, 2, NewMLID())
	tr := sn.Tree
	// Fail a root's down-link.
	roots := tr.SwitchesWithPrefix(nil, 0)
	faults := NewFaultSet()
	faults.FailLink(tr, roots[0], 0)

	_, broken, err := RepairSubnet(sn, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) == 0 {
		t.Fatal("down-link fault reported no broken entries")
	}
	for _, be := range broken {
		// The fault registered both endpoints; entries are broken at
		// whichever switch forwards downward across the cut.
		if !faults.FailedAt(be.Switch, 0) && be.Switch != roots[0] {
			// The lower endpoint ascends; its up entries were remappable,
			// so broken entries must sit at the root side.
			t.Fatalf("unexpected broken entry %+v", be)
		}
	}
	// Source-side reselection still serves every pair (MLID has other LCAs).
	served, total, err := Reachability(tr, NewMLID(), faults)
	if err != nil {
		t.Fatal(err)
	}
	if served != total {
		t.Fatalf("MLID reselection served %d/%d", served, total)
	}
}

// TestRepairSubnetAllUpLinksDead: when every up-port of a leaf is dead, its
// ascending entries are irreparable.
func TestRepairSubnetAllUpLinksDead(t *testing.T) {
	sn := configured(t, 4, 2, NewSLID())
	tr := sn.Tree
	leaf, _ := tr.NodeAttachment(0)
	faults := NewFaultSet()
	for k := tr.DownPorts(leaf); k < tr.M(); k++ {
		faults.FailLink(tr, leaf, k)
	}
	remapped, broken, err := RepairSubnet(sn, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) == 0 {
		t.Fatalf("isolated leaf reported no broken entries (remapped %d)", remapped)
	}
}
