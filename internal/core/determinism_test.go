package core

import (
	"reflect"
	"testing"

	"mlid/internal/topology"
)

// TestLinkLoadDeterministic runs the same load analysis twice and requires
// identical reports. The regression this guards: summaries used to fold the
// load map in map-iteration order, so MaxLink (tie-broken by encounter
// order) and Mean (float addition is not associative) could differ between
// runs. The shift permutation loads many links equally, so the maximum is a
// many-way tie and an order-dependent tie-break cannot hide.
func TestLinkLoadDeterministic(t *testing.T) {
	tr := topology.MustNew(8, 2)
	n := tr.Nodes()
	flows := Permutation(tr, func(i int) int { return (i + n/2) % n })
	for _, s := range []Scheme{NewSLID(), NewMLID()} {
		a, err := LinkLoad(tr, s, flows)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LinkLoad(tr, s, flows)
		if err != nil {
			t.Fatal(err)
		}
		if a.Max != b.Max || a.Mean != b.Mean || a.MaxLink != b.MaxLink {
			t.Fatalf("%s: summaries differ across runs: (%v, %v, %v) vs (%v, %v, %v)",
				s.Name(), a.Max, a.Mean, a.MaxLink, b.Max, b.Mean, b.MaxLink)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: reports differ across runs", s.Name())
		}
	}
}

// TestOptimizePathsDeterministic requires the greedy planner to make the
// same choices and compute the same summary twice — its cost scan and load
// summary both fold float maps, which must happen in a fixed order.
func TestOptimizePathsDeterministic(t *testing.T) {
	tr := topology.MustNew(4, 3)
	flows := AllToOne(tr, 0)
	s := NewMLID()
	a, err := OptimizePaths(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizePaths(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxLoad != b.MaxLoad || a.MeanLoad != b.MeanLoad {
		t.Fatalf("plan summaries differ: (%v, %v) vs (%v, %v)", a.MaxLoad, a.MeanLoad, b.MaxLoad, b.MeanLoad)
	}
	if !reflect.DeepEqual(a.dlid, b.dlid) {
		t.Fatal("planned DLID assignments differ across runs")
	}
}
