// Package core implements the paper's primary contribution: the Multiple LID
// (MLID) routing scheme for m-port n-tree InfiniBand networks, together with
// the Single LID (SLID) baseline scheme it is evaluated against.
//
// A routing scheme here is the triple the paper defines:
//
//  1. a processing-node addressing scheme — how many LIDs each endport owns
//     (the LMC value) and where its base LID sits;
//  2. a path selection scheme — which of the destination's LIDs a source
//     writes into a packet's DLID field, thereby pinning the packet to one
//     of the fabric's shortest paths; and
//  3. a forwarding table assignment scheme — a closed-form rule giving, for
//     every switch and every DLID, the output port, from which the subnet
//     manager fills every linear forwarding table.
//
// Both schemes implement ib.RoutingEngine and are consumed by the subnet
// manager in package ib and by the simulator in package sim. The package
// also provides path tracing, static link-load analysis, and LMC-multipath
// fault avoidance built on top of the schemes.
package core

import (
	"fmt"
	"math/bits"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Scheme is the routing-scheme abstraction used across the repository; it is
// exactly ib.RoutingEngine, re-exported under the paper's vocabulary.
type Scheme = ib.RoutingEngine

// log2 of a power of two.
func log2(v int) int { return bits.Len(uint(v)) - 1 }

// MLID is the paper's Multiple LID routing scheme.
//
// Addressing: every endport is assigned LMC = (n-1)*log2(m/2), so it owns
// 2^LMC = (m/2)^(n-1) consecutive LIDs — one per distinct ascending path from
// any source (equivalently, one per least common ancestor the fabric offers a
// pair of nodes in disjoint level-1 subtrees). BaseLID(P) = PID(P)*2^LMC + 1.
//
// Path selection: a source S sending to destination D with greatest common
// prefix length alpha uses DLID = BaseLID(D) + rank(S), where rank(S) is S's
// rank within its own gcpg at level alpha+1. Distinct sources in a group
// therefore address the same destination through distinct LIDs, and their
// packets climb to distinct least common ancestors over link-disjoint
// ascending paths — this is what removes the Figure 9(a) hot-port congestion
// of single-LID routing.
//
// Forwarding: for a switch SW<w, l> and DLID lid, let pid = (lid-1) >> LMC
// and j = (lid-1) mod 2^LMC. With p the digits of pid:
//
//	Case 1 (down): if w0..w[l-1] == p0..p[l-1], output abstract port p_l.
//	Case 2 (up):   output abstract port m/2 + floor(j / (m/2)^(n-1-l)) mod m/2.
//
// Case 2 reads base-(m/2) digit l-1 of the path index j, so the ascending hop
// at level l always steers toward the unique least common ancestor that j
// names, no matter which leaf injected the packet; per-switch deterministic
// tables thus realize a globally consistent multipath.
type MLID struct{}

// NewMLID returns the paper's MLID scheme.
func NewMLID() MLID { return MLID{} }

// Name implements Scheme.
func (MLID) Name() string { return "MLID" }

// LMC implements Scheme: (n-1) * log2(m/2).
func (MLID) LMC(t *topology.Tree) uint8 {
	return uint8((t.N() - 1) * log2(t.H()))
}

// PathsPerPair returns 2^LMC, the number of LIDs per endport and the maximum
// number of selectable paths between any pair of nodes.
func (s MLID) PathsPerPair(t *topology.Tree) int { return 1 << s.LMC(t) }

// BaseLID implements Scheme: PID * 2^LMC + 1.
func (s MLID) BaseLID(t *topology.Tree, n topology.NodeID) ib.LID {
	return ib.LID(int64(n)<<s.LMC(t) + 1)
}

// LIDSpace implements Scheme.
func (s MLID) LIDSpace(t *topology.Tree) int {
	return t.Nodes()<<s.LMC(t) + 1
}

// DLID implements Scheme's path selection. For src == dst it returns the
// destination's base LID.
func (s MLID) DLID(t *topology.Tree, src, dst topology.NodeID) ib.LID {
	base := s.BaseLID(t, dst)
	alpha := t.GCPLen(src, dst)
	if alpha >= t.N() {
		return base
	}
	return base + ib.LID(t.Rank(src, alpha+1))
}

// Decompose splits a DLID into the destination node and the path index j.
func (s MLID) Decompose(t *topology.Tree, lid ib.LID) (dst topology.NodeID, pathIndex int64, err error) {
	if lid == 0 || int(lid) >= s.LIDSpace(t) {
		return 0, 0, fmt.Errorf("core: MLID DLID %d outside assigned space [1,%d)", lid, s.LIDSpace(t))
	}
	lmc := s.LMC(t)
	v := int64(lid) - 1
	return topology.NodeID(v >> lmc), v & (1<<lmc - 1), nil
}

// OutPortAbstract implements Scheme's forwarding table assignment
// (Equations (1) and (2) of the paper), returning the abstract output port.
func (s MLID) OutPortAbstract(t *topology.Tree, sw topology.SwitchID, lid ib.LID) (int, bool) {
	dst, j, err := s.Decompose(t, lid)
	if err != nil || !t.ValidNode(dst) {
		return 0, false
	}
	level := t.SwitchLevel(sw)
	if down, ok := downPort(t, sw, level, dst); ok {
		return down, true // Equation (1): k = p_l
	}
	// Equation (2): ascend toward the LCA selected by digit l-1 of j.
	div := int64(1)
	for i := 0; i < t.N()-1-level; i++ {
		div *= int64(t.H())
	}
	return t.H() + int(j/div%int64(t.H())), true
}

// downPort evaluates Case 1: if dst lies in the switch's downward subtree,
// it returns the abstract down port p_level.
func downPort(t *topology.Tree, sw topology.SwitchID, level int, dst topology.NodeID) (int, bool) {
	if t.N() == 1 {
		return int(dst), true // single-switch fabric: every node is downward
	}
	// Stack buffer: downPort runs once per (switch, LID) pair during table
	// assignment, and a heap slice per call dominated the Configure profile.
	var buf [16]int
	d := buf[:]
	if n := t.N() - 1; n <= len(buf) {
		d = buf[:n]
	} else {
		d = make([]int, n)
	}
	t.SwitchDigitsInto(sw, d)
	for i := 0; i < level; i++ {
		if d[i] != t.NodeDigit(dst, i) {
			return 0, false
		}
	}
	return t.NodeDigit(dst, level), true
}

// SLID is the paper's baseline: one LID per endport.
//
// Addressing: LMC = 0 and LID(P) = PID(P) + 1. (The paper writes LID = PID;
// the +1 keeps LID 0 reserved as the IBA requires and shifts every node
// uniformly, which changes nothing about the scheme's behaviour.)
//
// Forwarding follows the paper's stated design goal of "evenly distributing
// possible traffic over available paths": descending uses Case 1 above, and
// the ascending hop at level l steers by the destination's own digit p_l, so
// different destinations spread over different roots — but every source uses
// the same path toward a given destination, which is precisely what congests
// under concentrated traffic (the paper's Figures 7 and 9(a)).
type SLID struct{}

// NewSLID returns the paper's single-LID baseline scheme.
func NewSLID() SLID { return SLID{} }

// Name implements Scheme.
func (SLID) Name() string { return "SLID" }

// LMC implements Scheme.
func (SLID) LMC(*topology.Tree) uint8 { return 0 }

// BaseLID implements Scheme: PID + 1.
func (SLID) BaseLID(_ *topology.Tree, n topology.NodeID) ib.LID {
	return ib.LID(int64(n) + 1)
}

// LIDSpace implements Scheme.
func (SLID) LIDSpace(t *topology.Tree) int { return t.Nodes() + 1 }

// DLID implements Scheme: the destination's sole LID.
func (s SLID) DLID(t *topology.Tree, _, dst topology.NodeID) ib.LID {
	return s.BaseLID(t, dst)
}

// OutPortAbstract implements Scheme.
func (s SLID) OutPortAbstract(t *topology.Tree, sw topology.SwitchID, lid ib.LID) (int, bool) {
	if lid == 0 || int(lid) >= s.LIDSpace(t) {
		return 0, false
	}
	dst := topology.NodeID(int64(lid) - 1)
	level := t.SwitchLevel(sw)
	if down, ok := downPort(t, sw, level, dst); ok {
		return down, true
	}
	// Ascend by the destination's digit at this level: destinations spread
	// evenly over the (m/2) parents, but the choice is source-independent.
	return t.H() + t.NodeDigit(dst, level)%t.H(), true
}

// ByName returns the scheme with the given (case-sensitive) name.
func ByName(name string) (Scheme, error) {
	switch name {
	case "MLID", "mlid":
		return NewMLID(), nil
	case "SLID", "slid":
		return NewSLID(), nil
	}
	return nil, fmt.Errorf("core: unknown routing scheme %q (want MLID or SLID)", name)
}

// Schemes returns the two schemes the paper evaluates, MLID first.
func Schemes() []Scheme { return []Scheme{NewMLID(), NewSLID()} }

var (
	_ Scheme = MLID{}
	_ Scheme = SLID{}
)
