package core

import (
	"fmt"
	"strings"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// Hop records one switch traversal of a traced path: the switch, the abstract
// port the packet entered on, and the abstract port it left through.
type Hop struct {
	Switch  topology.SwitchID
	InPort  int
	OutPort int
}

// Path is a fully resolved route of one DLID from a source node to the node
// owning the DLID.
type Path struct {
	Src, Dst topology.NodeID
	DLID     ib.LID
	Hops     []Hop
}

// Len returns the number of switches traversed.
func (p Path) Len() int { return len(p.Hops) }

// UpHops returns how many hops were ascending (the packet left through an
// up-port). A valid fat-tree route is a (possibly empty) ascending phase
// followed by a descending phase.
func (p Path) UpHops(t *topology.Tree) int {
	up := 0
	for _, h := range p.Hops {
		if h.OutPort >= t.DownPorts(h.Switch) {
			up++
		}
	}
	return up
}

// String renders the path in the paper's style, e.g.
// "P(000) -> SW<00,2>:2 -> SW<00,1>:2 -> SW<00,0>:1 -> SW<10,1>:0 -> SW<10,2>:0 -> P(100)".
func (p Path) String() string { return p.Render(nil) }

// Render renders the path using tree labels when t is non-nil.
func (p Path) Render(t *topology.Tree) string {
	var b strings.Builder
	if t != nil {
		b.WriteString(t.NodeLabel(p.Src))
	} else {
		fmt.Fprintf(&b, "node %d", p.Src)
	}
	for _, h := range p.Hops {
		if t != nil {
			fmt.Fprintf(&b, " -> %s:%d", t.SwitchLabel(h.Switch), h.OutPort)
		} else {
			fmt.Fprintf(&b, " -> sw%d:%d", h.Switch, h.OutPort)
		}
	}
	if t != nil {
		fmt.Fprintf(&b, " -> %s", t.NodeLabel(p.Dst))
	} else {
		fmt.Fprintf(&b, " -> node %d", p.Dst)
	}
	return b.String()
}

// TraceLID walks the fabric from src following the scheme's forwarding
// decisions for the given DLID, exactly as the programmed LFTs would forward
// a packet. It fails if the walk leaves the fabric, loops, violates the
// ascend-then-descend (up*/down*) discipline that keeps fat-tree routing
// deadlock free, or terminates at a node that does not own the DLID.
func TraceLID(t *topology.Tree, s Scheme, src topology.NodeID, dlid ib.LID) (Path, error) {
	p := Path{Src: src, DLID: dlid}
	sw, inPort := t.NodeAttachment(src)
	descending := false
	maxHops := 2*t.N() + 1
	for hop := 0; ; hop++ {
		if hop > maxHops {
			return p, fmt.Errorf("core: route for DLID %d from node %d exceeds %d hops (loop?): %s",
				dlid, src, maxHops, p.Render(t))
		}
		out, ok := s.OutPortAbstract(t, sw, dlid)
		if !ok {
			return p, fmt.Errorf("core: switch %s has no route for DLID %d", t.SwitchLabel(sw), dlid)
		}
		if out < 0 || out >= t.M() {
			return p, fmt.Errorf("core: switch %s routed DLID %d to invalid port %d", t.SwitchLabel(sw), dlid, out)
		}
		down := out < t.DownPorts(sw)
		if down {
			descending = true
		} else if descending {
			return p, fmt.Errorf("core: route for DLID %d turns upward after descending at %s (up*/down* violated)",
				dlid, t.SwitchLabel(sw))
		}
		p.Hops = append(p.Hops, Hop{Switch: sw, InPort: inPort, OutPort: out})
		ref := t.SwitchNeighbor(sw, out)
		switch ref.Kind {
		case topology.KindNode:
			p.Dst = ref.Node
			return p, nil
		case topology.KindSwitch:
			sw, inPort = ref.Switch, ref.Port
		default:
			return p, fmt.Errorf("core: route for DLID %d fell off the fabric at %s port %d",
				dlid, t.SwitchLabel(sw), out)
		}
	}
}

// Trace resolves the scheme's selected path from src to dst: it performs path
// selection (DLID) and then walks the forwarding decisions, verifying the
// packet is delivered to dst.
func Trace(t *topology.Tree, s Scheme, src, dst topology.NodeID) (Path, error) {
	dlid := s.DLID(t, src, dst)
	p, err := TraceLID(t, s, src, dlid)
	if err != nil {
		return p, err
	}
	if p.Dst != dst {
		return p, fmt.Errorf("core: scheme %s delivered node %d's packet for node %d (DLID %d) to node %d: %s",
			s.Name(), src, dst, dlid, p.Dst, p.Render(t))
	}
	return p, nil
}

// AllPaths enumerates every distinct path the scheme can name from src to the
// node owning baseLID..baseLID+2^LMC-1 — i.e. the routes of all of dst's
// LIDs. Offsets whose routes coincide (MLID offsets differing only in digits
// below the common-prefix level) are deduplicated.
func AllPaths(t *topology.Tree, s Scheme, src, dst topology.NodeID) ([]Path, error) {
	base := s.BaseLID(t, dst)
	count := 1 << s.LMC(t)
	var out []Path
	seen := make(map[string]bool)
	for off := 0; off < count; off++ {
		p, err := TraceLID(t, s, src, base+ib.LID(off))
		if err != nil {
			return nil, err
		}
		if p.Dst != dst {
			return nil, fmt.Errorf("core: LID %d of node %d delivered to node %d", base+ib.LID(off), dst, p.Dst)
		}
		key := p.Render(nil)
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out, nil
}
