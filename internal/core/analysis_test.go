package core

import (
	"testing"

	"mlid/internal/topology"
)

// TestAllToOneLinkLoad formalizes the Figure 9 comparison: with every node
// sending unit load to one destination, SLID piles the whole demand onto a
// single ascending port per leaf group, while MLID spreads each group's
// demand across its (m/2) up links.
func TestAllToOneLinkLoad(t *testing.T) {
	tr := topology.MustNew(8, 2)
	dst := topology.NodeID(tr.Nodes() - 1)
	flows := AllToOne(tr, dst)

	slid, err := LinkLoad(tr, NewSLID(), flows)
	if err != nil {
		t.Fatal(err)
	}
	mlid, err := LinkLoad(tr, NewMLID(), flows)
	if err != nil {
		t.Fatal(err)
	}
	if slid.Flows != tr.Nodes()-1 || mlid.Flows != tr.Nodes()-1 {
		t.Fatalf("flows = %d/%d", slid.Flows, mlid.Flows)
	}
	// Both schemes share the unavoidable bottleneck: the destination's own
	// attachment link carries all N-1 flows.
	want := float64(tr.Nodes() - 1)
	if slid.Max != want || mlid.Max != want {
		t.Fatalf("max loads %v/%v, want %v (destination link)", slid.Max, mlid.Max, want)
	}
	// Away from the terminal link, MLID's ascending spread must strictly beat
	// SLID: compare the heaviest *ascending* link.
	maxUp := func(r *LoadReport) float64 {
		var m float64
		for _, k := range SortedLinkKeys(r.Load) {
			if k.Kind != topology.KindSwitch {
				continue
			}
			if v := r.Load[k]; k.Port >= tr.DownPorts(topology.SwitchID(k.Entity)) && v > m {
				m = v
			}
		}
		return m
	}
	su, mu := maxUp(slid), maxUp(mlid)
	if mu >= su {
		t.Fatalf("max ascending load: MLID %v, SLID %v — MLID should be strictly lower", mu, su)
	}
	// MLID balances each source leaf group perfectly: every used ascending
	// link out of a leaf carries exactly 1 unit... except in the destination
	// group, whose members do not ascend to reach dst's leaf? They share the
	// leaf, so they do not ascend at all. All other groups: h sources over h
	// up links.
	for k, v := range mlid.Load {
		if k.Kind != topology.KindSwitch {
			continue
		}
		sw := topology.SwitchID(k.Entity)
		if tr.IsLeaf(sw) && k.Port >= tr.DownPorts(sw) && v != 1 {
			t.Fatalf("MLID leaf ascending link %v carries %v, want 1", k, v)
		}
	}
}

func TestLinkLoadSkipsSelfFlows(t *testing.T) {
	tr := topology.MustNew(4, 2)
	r, err := LinkLoad(tr, NewMLID(), []Flow{{Src: 1, Dst: 1, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Flows != 0 || len(r.Load) != 0 {
		t.Fatalf("self flow traced: %+v", r)
	}
}

func TestTopLinks(t *testing.T) {
	tr := topology.MustNew(4, 2)
	r, err := LinkLoad(tr, NewSLID(), AllToOne(tr, 0))
	if err != nil {
		t.Fatal(err)
	}
	top := r.TopLinks(3)
	if len(top) != 3 {
		t.Fatalf("TopLinks(3) = %d entries", len(top))
	}
	if top[0].Load < top[1].Load || top[1].Load < top[2].Load {
		t.Fatal("TopLinks not sorted")
	}
	if top[0].Load != r.Max {
		t.Fatalf("TopLinks[0] = %v, Max = %v", top[0].Load, r.Max)
	}
	if got := r.TopLinks(10_000); len(got) != len(r.Load) {
		t.Fatalf("TopLinks clamp: %d != %d", len(got), len(r.Load))
	}
	if top[0].Key.String() == "" || r.MaxLink.String() == "" {
		t.Error("empty link key rendering")
	}
}

func TestPermutationFlows(t *testing.T) {
	tr := topology.MustNew(4, 2)
	n := tr.Nodes()
	flows := Permutation(tr, func(i int) int { return (i + 1) % n })
	if len(flows) != n {
		t.Fatalf("%d flows, want %d", len(flows), n)
	}
	// Identity permutation produces nothing.
	if got := Permutation(tr, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("identity produced %d flows", len(got))
	}
	// Out-of-range destinations are skipped.
	if got := Permutation(tr, func(i int) int { return -1 }); len(got) != 0 {
		t.Fatalf("out-of-range produced %d flows", len(got))
	}
	r, err := LinkLoad(tr, NewMLID(), flows)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean <= 0 || r.Max < r.Mean {
		t.Fatalf("bad summary: max %v mean %v", r.Max, r.Mean)
	}
}

// TestBitComplementBalance: under the PID bit-complement permutation (alpha=0
// for every pair), MLID keeps the load perfectly balanced: every ascending
// link carries the same load.
func TestBitComplementBalance(t *testing.T) {
	tr := topology.MustNew(4, 3)
	n := tr.Nodes()
	flows := Permutation(tr, func(i int) int { return n - 1 - i })
	r, err := LinkLoad(tr, NewMLID(), flows)
	if err != nil {
		t.Fatal(err)
	}
	var first float64 = -1
	for _, k := range SortedLinkKeys(r.Load) {
		v := r.Load[k]
		if k.Kind != topology.KindSwitch || k.Port < tr.DownPorts(topology.SwitchID(k.Entity)) {
			continue
		}
		if first < 0 {
			first = v
		} else if v != first {
			t.Fatalf("unbalanced ascending loads: %v vs %v at %v", v, first, k)
		}
	}
	if first < 0 {
		t.Fatal("no ascending links used")
	}
}
