package core

import (
	"testing"

	"mlid/internal/topology"
)

func TestSelectDLIDHealthyFabric(t *testing.T) {
	tr := topology.MustNew(4, 3)
	for _, s := range Schemes() {
		lid, p, ok := SelectDLID(tr, s, 0, 9, nil)
		if !ok {
			t.Fatalf("%s: no path on healthy fabric", s.Name())
		}
		if lid != s.DLID(tr, 0, 9) {
			t.Fatalf("%s: healthy selection %d != canonical %d", s.Name(), lid, s.DLID(tr, 0, 9))
		}
		if p.Dst != 9 {
			t.Fatalf("%s: delivered to %d", s.Name(), p.Dst)
		}
	}
}

// TestMLIDSurvivesSingleUpLinkFault: failing the canonical path's first
// ascending link leaves MLID with alternatives but strands SLID for the pairs
// that crossed it.
func TestMLIDSurvivesSingleUpLinkFault(t *testing.T) {
	tr := topology.MustNew(4, 3)
	src, dst := topology.NodeID(0), topology.NodeID(9)

	for _, s := range Schemes() {
		canonical, err := Trace(tr, s, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		// Fail the first ascending hop of the canonical path.
		faults := NewFaultSet()
		h := canonical.Hops[0]
		faults.FailLink(tr, h.Switch, h.OutPort)
		if faults.Len() == 0 {
			t.Fatal("FailLink registered nothing")
		}

		lid, p, ok := SelectDLID(tr, s, src, dst, faults)
		switch s.Name() {
		case "MLID":
			if !ok {
				t.Fatal("MLID: no surviving path after one up-link fault")
			}
			if lid == s.DLID(tr, src, dst) {
				t.Fatal("MLID: returned the canonical (blocked) DLID")
			}
			if faults.Blocked(p) {
				t.Fatal("MLID: returned a blocked path")
			}
			if p.Dst != dst {
				t.Fatalf("MLID: delivered to %d", p.Dst)
			}
		case "SLID":
			if ok {
				t.Fatal("SLID: claims a surviving path with its only route cut")
			}
		}
	}
}

// TestReachabilityUnderFaults quantifies the comparison: with one root-level
// link down, MLID keeps all pairs reachable while SLID loses some.
func TestReachabilityUnderFaults(t *testing.T) {
	tr := topology.MustNew(4, 3)
	faults := NewFaultSet()
	// Fail a root's first down link.
	roots := tr.SwitchesWithPrefix(nil, 0)
	faults.FailLink(tr, roots[0], 0)

	mServed, total, err := Reachability(tr, NewMLID(), faults)
	if err != nil {
		t.Fatal(err)
	}
	sServed, _, err := Reachability(tr, NewSLID(), faults)
	if err != nil {
		t.Fatal(err)
	}
	if mServed != total {
		t.Fatalf("MLID served %d/%d with one faulty root link", mServed, total)
	}
	if sServed >= total {
		t.Fatalf("SLID served %d/%d — expected losses", sServed, total)
	}
}

// TestReachabilityLeafFaultStrandsBoth: cutting a node's only attachment link
// strands that node under any scheme.
func TestReachabilityLeafFaultStrandsBoth(t *testing.T) {
	tr := topology.MustNew(4, 2)
	sw, port := tr.NodeAttachment(3)
	faults := NewFaultSet()
	faults.FailLink(tr, sw, port)
	for _, s := range Schemes() {
		served, total, err := Reachability(tr, s, faults)
		if err != nil {
			t.Fatal(err)
		}
		// Node 3 is unreachable as destination and blocked as source:
		// 2*(N-1) pairs lost.
		want := total - 2*(tr.Nodes()-1)
		if served != want {
			t.Fatalf("%s: served %d, want %d", s.Name(), served, want)
		}
	}
}
