package core

import (
	"testing"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// TestDeadlockFreeBothSchemes: the up*/down* discipline of both schemes'
// tables yields an acyclic channel-dependency graph on every test fabric.
func TestDeadlockFreeBothSchemes(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {4, 2}, {4, 3}, {8, 2}, {8, 3}} {
		tr := topology.MustNew(dims[0], dims[1])
		for _, s := range Schemes() {
			sn, err := (&ib.SubnetManager{Tree: tr, Engine: s}).Configure()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := CheckDeadlockFree(sn)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Free() {
				t.Fatalf("%s %s: dependency cycle %v", tr, s.Name(), rep.Cycle)
			}
			if rep.Channels == 0 {
				t.Fatalf("%s %s: no channels", tr, s.Name())
			}
			// A single-switch fabric has one-hop routes and hence no
			// dependencies at all; taller trees must have some.
			if tr.N() >= 2 && rep.Dependencies == 0 {
				t.Fatalf("%s %s: empty dependency graph", tr, s.Name())
			}
		}
	}
}

// TestDeadlockDetectedInCyclicTables: rewiring two forwarding entries to
// create a down-then-up route (an up*/down* violation) must surface a cycle.
func TestDeadlockDetectedInCyclicTables(t *testing.T) {
	tr := topology.MustNew(4, 2)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: NewSLID()}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	// Build a cyclic dependency among the roots and two leaves:
	// route LID 1 (node 0, leaf A) so that packets entering root R descend
	// to leaf B and climb back up through root Q. With SLID, node 0's LID
	// is 1 and its leaf is A = attachment of node 0.
	leafA, _ := tr.NodeAttachment(0)
	// Choose the two roots.
	roots := tr.SwitchesWithPrefix(nil, 0)
	r0, r1 := roots[0], roots[1]
	// Leaf B: a different leaf.
	leafB, _ := tr.NodeAttachment(topology.NodeID(tr.Nodes() - 1))

	set := func(sw topology.SwitchID, lid ib.LID, abstract int) {
		if err := sn.LFTs[sw].Set(lid, uint8(abstract+1)); err != nil {
			t.Fatal(err)
		}
	}
	// At root r0, send LID 1 down to leaf B (instead of toward leaf A).
	// Find r0's port to leafB.
	portTo := func(from, to topology.SwitchID) int {
		for k := 0; k < tr.M(); k++ {
			ref := tr.SwitchNeighbor(from, k)
			if ref.Kind == topology.KindSwitch && ref.Switch == to {
				return k
			}
		}
		t.Fatalf("no link %d->%d", from, to)
		return -1
	}
	set(r0, 1, portTo(r0, leafB))
	// At leaf B, send LID 1 back up through r1.
	set(leafB, 1, portTo(leafB, r1))
	// At r1, continue toward leaf A (correct descent) — also route another
	// LID of leaf B's node through the reverse direction to close a cycle:
	// LID of node N-1 (= N) at r1 goes down to leaf A, and leaf A sends it
	// up through r0.
	lidB := ib.LID(tr.Nodes())
	set(r1, lidB, portTo(r1, leafA))
	set(leafA, lidB, portTo(leafA, r0)+0)
	// Ensure leafA's up port used is toward r0: portTo gives that.
	// Now: leafA->r0 (lidB climbing) ... r0->leafB (lid1) ... leafB->r1
	// (lid1) ... r1->leafA (lidB): a 4-channel cycle.

	rep, err := CheckDeadlockFree(sn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free() {
		t.Fatal("cyclic tables reported deadlock free")
	}
	if len(rep.Cycle) < 3 {
		t.Fatalf("implausible cycle %v", rep.Cycle)
	}
}

// TestDeadlockCheckRepairedSubnet: the fault-repair rewrites stay within
// up*/down*, so repaired tables remain deadlock free.
func TestDeadlockCheckRepairedSubnet(t *testing.T) {
	tr := topology.MustNew(8, 2)
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: NewMLID()}).Configure()
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaultSet()
	leaf, _ := tr.NodeAttachment(0)
	faults.FailLink(tr, leaf, tr.DownPorts(leaf))
	if _, _, err := RepairSubnet(sn, faults); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckDeadlockFree(sn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatalf("repaired subnet has cycle %v", rep.Cycle)
	}
}
