package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// randomTree maps two raw bytes to a valid small FT(m, n), so the property
// tests below roam over the family rather than a fixed list.
func randomTree(rawM, rawN uint8) *topology.Tree {
	ms := []int{4, 8, 16, 32}
	m := ms[int(rawM)%len(ms)]
	// Keep node counts small enough for per-iteration tracing.
	maxN := map[int]int{4: 4, 8: 3, 16: 2, 32: 2}[m]
	n := 1 + int(rawN)%maxN
	return topology.MustNew(m, n)
}

// TestQuickRandomTreesDeliver: on random family members, both schemes
// deliver random pairs over shortest paths.
func TestQuickRandomTreesDeliver(t *testing.T) {
	f := func(rawM, rawN uint8, rawA, rawB uint32) bool {
		tr := randomTree(rawM, rawN)
		a := topology.NodeID(rawA % uint32(tr.Nodes()))
		b := topology.NodeID(rawB % uint32(tr.Nodes()))
		if a == b {
			return true
		}
		for _, s := range Schemes() {
			p, err := Trace(tr, s, a, b)
			if err != nil || p.Dst != b {
				return false
			}
			if p.Len() != tr.Distance(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomTreesLIDPartition: on random family members the MLID
// addressing partitions the LID space with no gaps between nodes.
func TestQuickRandomTreesLIDPartition(t *testing.T) {
	f := func(rawM, rawN uint8) bool {
		tr := randomTree(rawM, rawN)
		s := NewMLID()
		if int(s.LMC(tr)) > ib.MaxLMC {
			return true // architecturally unconfigurable; SM rejects it
		}
		prevEnd := ib.LID(1)
		for p := 0; p < tr.Nodes(); p++ {
			base := s.BaseLID(tr, topology.NodeID(p))
			if base != prevEnd {
				return false
			}
			prevEnd = base + ib.LID(s.PathsPerPair(tr))
		}
		return int(prevEnd) == s.LIDSpace(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupSelectionBijective: within any gcpg, the path-selection
// offsets chosen by distinct sources toward one destination are distinct —
// the property that makes the group's ascending links disjoint.
func TestQuickGroupSelectionBijective(t *testing.T) {
	f := func(rawM, rawN uint8, rawDst uint32) bool {
		tr := randomTree(rawM, rawN)
		if tr.N() < 2 {
			return true
		}
		s := NewMLID()
		dst := topology.NodeID(rawDst % uint32(tr.Nodes()))
		// Group: all sources maximally distant from dst sharing digit 0.
		seen := map[ib.LID]bool{}
		wantDigit := -1
		for src := 0; src < tr.Nodes(); src++ {
			sid := topology.NodeID(src)
			if tr.GCPLen(sid, dst) != 0 {
				continue
			}
			d0 := tr.NodeDigit(sid, 0)
			if wantDigit == -1 {
				wantDigit = d0
			}
			if d0 != wantDigit {
				continue
			}
			dlid := s.DLID(tr, sid, dst)
			if seen[dlid] {
				return false
			}
			seen[dlid] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}
