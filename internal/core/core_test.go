package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

func mustNode(t *testing.T, tr *topology.Tree, d ...int) topology.NodeID {
	t.Helper()
	id, err := tr.NodeFromDigits(d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func testTrees() []*topology.Tree {
	return []*topology.Tree{
		topology.MustNew(4, 1), topology.MustNew(4, 2), topology.MustNew(4, 3),
		topology.MustNew(4, 4), topology.MustNew(8, 2), topology.MustNew(8, 3),
		topology.MustNew(16, 2),
	}
}

// TestPaperFigure10LIDAssignment reproduces the paper's Figure 10 example:
// in the 4-port 3-tree, LMC = 2, every node owns 4 LIDs, and
// BaseLID(P(010)) = 9 with LIDset {9, 10, 11, 12}.
func TestPaperFigure10LIDAssignment(t *testing.T) {
	tr := topology.MustNew(4, 3)
	s := NewMLID()
	if got := s.LMC(tr); got != 2 {
		t.Fatalf("LMC = %d, want 2", got)
	}
	if got := s.PathsPerPair(tr); got != 4 {
		t.Fatalf("PathsPerPair = %d, want 4", got)
	}
	n := mustNode(t, tr, 0, 1, 0)
	if got := s.BaseLID(tr, n); got != 9 {
		t.Fatalf("BaseLID(P(010)) = %d, want 9", got)
	}
	// Full Figure 10: base LIDs are 1, 5, 9, ... in PID order.
	for p := 0; p < tr.Nodes(); p++ {
		want := ib.LID(4*p + 1)
		if got := s.BaseLID(tr, topology.NodeID(p)); got != want {
			t.Fatalf("BaseLID(PID %d) = %d, want %d", p, got, want)
		}
	}
	if got := s.LIDSpace(tr); got != 16*4+1 {
		t.Fatalf("LIDSpace = %d, want 65", got)
	}
}

// TestPaperFigure11PathSelection reproduces the Figure 11 example: the four
// members of gcpg(0, 1) sending to P(100) select the four consecutive LIDs
// of P(100), in rank order, and the four selected routes climb to four
// distinct least common ancestors over disjoint links.
func TestPaperFigure11PathSelection(t *testing.T) {
	tr := topology.MustNew(4, 3)
	s := NewMLID()
	dst := mustNode(t, tr, 1, 0, 0) // P(100), BaseLID 17
	if s.BaseLID(tr, dst) != 17 {
		t.Fatalf("BaseLID(P(100)) = %d, want 17", s.BaseLID(tr, dst))
	}
	group, err := tr.GCPG([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 4 {
		t.Fatalf("gcpg(0,1) has %d members", len(group))
	}
	usedLinks := map[[2]int32]topology.NodeID{}
	usedLCAs := map[topology.SwitchID]bool{}
	for i, src := range group {
		dlid := s.DLID(tr, src, dst)
		if want := ib.LID(17 + i); dlid != want {
			t.Fatalf("DLID(%s -> P(100)) = %d, want %d", tr.NodeLabel(src), dlid, want)
		}
		p, err := Trace(tr, s, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending links must be disjoint across the group.
		for _, h := range p.Hops {
			if h.OutPort >= tr.DownPorts(h.Switch) {
				key := [2]int32{int32(h.Switch), int32(h.OutPort)}
				if prev, dup := usedLinks[key]; dup {
					t.Fatalf("sources %s and %s share ascending link %s:%d",
						tr.NodeLabel(prev), tr.NodeLabel(src), tr.SwitchLabel(h.Switch), h.OutPort)
				}
				usedLinks[key] = src
			}
		}
		// The top switch of the route is the LCA; all four must differ.
		top := p.Hops[0].Switch
		for _, h := range p.Hops {
			if tr.SwitchLevel(h.Switch) < tr.SwitchLevel(top) {
				top = h.Switch
			}
		}
		if usedLCAs[top] {
			t.Fatalf("duplicate LCA %s", tr.SwitchLabel(top))
		}
		usedLCAs[top] = true
		if lvl := tr.SwitchLevel(top); lvl != 0 {
			t.Fatalf("LCA %s at level %d, want 0", tr.SwitchLabel(top), lvl)
		}
	}
}

// TestPaperSection43Route replays the paper's Equation (1)/(2) verification:
// the packet from P(000) to P(100) uses DLID 17 (BaseLID of P(100), offset 0
// since rank(P(000)) = 0) and traverses leaf -> level 1 -> root -> level 1 ->
// leaf of the destination subtree.
func TestPaperSection43Route(t *testing.T) {
	tr := topology.MustNew(4, 3)
	s := NewMLID()
	src := mustNode(t, tr, 0, 0, 0)
	dst := mustNode(t, tr, 1, 0, 0)
	dlid := s.DLID(tr, src, dst)
	if dlid != 17 {
		t.Fatalf("DLID = %d, want 17", dlid)
	}
	p, err := Trace(tr, s, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 { // 2n-1 switches for alpha = 0
		t.Fatalf("route length %d, want 5: %s", p.Len(), p.Render(tr))
	}
	wantLabels := []string{"SW<00,2>", "SW<00,1>", "SW<00,0>", "SW<10,1>", "SW<10,2>"}
	for i, h := range p.Hops {
		if got := tr.SwitchLabel(h.Switch); got != wantLabels[i] {
			t.Fatalf("hop %d = %s, want %s (%s)", i, got, wantLabels[i], p.Render(tr))
		}
	}
	// Offset 0 ascends through up-port h+0 = 2 (physical 3) at every level.
	for i := 0; i < 2; i++ {
		if p.Hops[i].OutPort != 2 {
			t.Fatalf("ascending hop %d uses port %d, want 2", i, p.Hops[i].OutPort)
		}
	}
	// Descent follows the destination digits 1, 0, 0.
	if p.Hops[2].OutPort != 1 || p.Hops[3].OutPort != 0 || p.Hops[4].OutPort != 0 {
		t.Fatalf("descending ports = %d,%d,%d, want 1,0,0",
			p.Hops[2].OutPort, p.Hops[3].OutPort, p.Hops[4].OutPort)
	}
}

// TestDeliveryAllPairs: both schemes deliver every (src, dst) pair on every
// test tree, with the correct shortest length 2*(n-alpha)-1 switches.
func TestDeliveryAllPairs(t *testing.T) {
	for _, tr := range testTrees() {
		for _, s := range Schemes() {
			pairs := 0
			for a := 0; a < tr.Nodes() && pairs < 5000; a++ {
				for b := 0; b < tr.Nodes(); b++ {
					if a == b {
						continue
					}
					pairs++
					p, err := Trace(tr, s, topology.NodeID(a), topology.NodeID(b))
					if err != nil {
						t.Fatalf("%s %s: %v", tr, s.Name(), err)
					}
					alpha := tr.GCPLen(topology.NodeID(a), topology.NodeID(b))
					if want := 2*(tr.N()-alpha) - 1; p.Len() != want {
						t.Fatalf("%s %s %d->%d: %d switches, want %d",
							tr, s.Name(), a, b, p.Len(), want)
					}
					if up := p.UpHops(tr); up != tr.N()-alpha-1 {
						t.Fatalf("%s %s %d->%d: %d up hops, want %d",
							tr, s.Name(), a, b, up, tr.N()-alpha-1)
					}
				}
			}
		}
	}
}

// TestMLIDAllLIDsDeliver: every LID of every destination delivers from every
// source (any path index is routable, not only the selected one).
func TestMLIDAllLIDsDeliver(t *testing.T) {
	tr := topology.MustNew(4, 3)
	s := NewMLID()
	for src := 0; src < tr.Nodes(); src++ {
		for dst := 0; dst < tr.Nodes(); dst++ {
			if src == dst {
				continue
			}
			base := s.BaseLID(tr, topology.NodeID(dst))
			for off := 0; off < s.PathsPerPair(tr); off++ {
				p, err := TraceLID(tr, s, topology.NodeID(src), base+ib.LID(off))
				if err != nil {
					t.Fatal(err)
				}
				if p.Dst != topology.NodeID(dst) {
					t.Fatalf("LID %d of node %d delivered to %d", base+ib.LID(off), dst, p.Dst)
				}
			}
		}
	}
}

// TestMLIDDistinctPathCount: the number of distinct routes a source can name
// to a destination equals the fabric's path count (m/2)^(n-1-alpha).
func TestMLIDDistinctPathCount(t *testing.T) {
	for _, tr := range []*topology.Tree{topology.MustNew(4, 2), topology.MustNew(4, 3), topology.MustNew(8, 2)} {
		s := NewMLID()
		for src := 0; src < tr.Nodes(); src++ {
			for dst := 0; dst < tr.Nodes(); dst++ {
				if src == dst {
					continue
				}
				paths, err := AllPaths(tr, s, topology.NodeID(src), topology.NodeID(dst))
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(paths)) != tr.PathCount(topology.NodeID(src), topology.NodeID(dst)) {
					t.Fatalf("%s %d->%d: %d distinct paths, want %d",
						tr, src, dst, len(paths), tr.PathCount(topology.NodeID(src), topology.NodeID(dst)))
				}
			}
		}
	}
}

// TestSLIDSinglePath: under SLID every source reaches a destination through
// the destination's unique path suffix — all sources' routes to dst share
// the same LCA (the congestion the paper's Figure 9(a) illustrates).
func TestSLIDSinglePath(t *testing.T) {
	tr := topology.MustNew(8, 2)
	s := NewSLID()
	for dst := 0; dst < tr.Nodes(); dst++ {
		var lca topology.SwitchID = -1
		for src := 0; src < tr.Nodes(); src++ {
			if src == dst || tr.GCPLen(topology.NodeID(src), topology.NodeID(dst)) != 0 {
				continue
			}
			p, err := Trace(tr, s, topology.NodeID(src), topology.NodeID(dst))
			if err != nil {
				t.Fatal(err)
			}
			top := p.Hops[0].Switch
			for _, h := range p.Hops {
				if tr.SwitchLevel(h.Switch) < tr.SwitchLevel(top) {
					top = h.Switch
				}
			}
			if lca == -1 {
				lca = top
			} else if lca != top {
				t.Fatalf("SLID routes to %d via two roots %s and %s",
					dst, tr.SwitchLabel(lca), tr.SwitchLabel(top))
			}
		}
	}
}

// TestMLIDGroupAscentDisjoint is the paper's congestion-avoidance claim as a
// property: for any destination, the ascending links used by all sources of a
// common gcpg sending to it are pairwise disjoint.
func TestMLIDGroupAscentDisjoint(t *testing.T) {
	for _, tr := range []*topology.Tree{topology.MustNew(4, 3), topology.MustNew(8, 2), topology.MustNew(8, 3)} {
		s := NewMLID()
		for dst := 0; dst < tr.Nodes(); dst += 1 + tr.Nodes()/8 {
			dstID := topology.NodeID(dst)
			// Group: all sources with alpha = 0 w.r.t. dst and equal first digit.
			firstDigit := -1
			used := map[[2]int32]bool{}
			for src := 0; src < tr.Nodes(); src++ {
				srcID := topology.NodeID(src)
				if srcID == dstID || tr.GCPLen(srcID, dstID) != 0 {
					continue
				}
				d0 := tr.NodeDigit(srcID, 0)
				if firstDigit == -1 {
					firstDigit = d0
				}
				if d0 != firstDigit {
					continue
				}
				p, err := Trace(tr, s, srcID, dstID)
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range p.Hops {
					if h.OutPort >= tr.DownPorts(h.Switch) {
						key := [2]int32{int32(h.Switch), int32(h.OutPort)}
						if used[key] {
							t.Fatalf("%s: ascending link %s:%d reused within group (dst %d)",
								tr, tr.SwitchLabel(h.Switch), h.OutPort, dst)
						}
						used[key] = true
					}
				}
			}
		}
	}
}

// TestQuickUpDownDiscipline: random (src, lid) walks never violate the
// up*/down* discipline and always terminate (TraceLID enforces both).
func TestQuickUpDownDiscipline(t *testing.T) {
	tr := topology.MustNew(8, 3)
	s := NewMLID()
	space := s.LIDSpace(tr)
	f := func(rawSrc, rawLid uint32) bool {
		src := topology.NodeID(rawSrc % uint32(tr.Nodes()))
		lid := ib.LID(1 + rawLid%uint32(space-1))
		p, err := TraceLID(tr, s, src, lid)
		if err != nil {
			return false
		}
		dst, _, _ := s.Decompose(tr, lid)
		return p.Dst == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestQuickDLIDInRange: path selection always picks a LID the destination owns.
func TestQuickDLIDInRange(t *testing.T) {
	for _, tr := range testTrees() {
		for _, s := range Schemes() {
			lmc := s.LMC(tr)
			f := func(rawA, rawB uint32) bool {
				a := topology.NodeID(rawA % uint32(tr.Nodes()))
				b := topology.NodeID(rawB % uint32(tr.Nodes()))
				dlid := s.DLID(tr, a, b)
				r := ib.LIDRange{Base: s.BaseLID(tr, b), LMC: lmc}
				return r.Contains(dlid)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
				t.Errorf("%s %s: %v", tr, s.Name(), err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MLID", "mlid", "SLID", "slid"} {
		s, err := ByName(name)
		if err != nil || s == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus): expected error")
	}
}

func TestDecomposeErrors(t *testing.T) {
	tr := topology.MustNew(4, 2)
	s := NewMLID()
	if _, _, err := s.Decompose(tr, 0); err == nil {
		t.Error("Decompose(0): expected error")
	}
	if _, _, err := s.Decompose(tr, ib.LID(s.LIDSpace(tr))); err == nil {
		t.Error("Decompose(space): expected error")
	}
	dst, j, err := s.Decompose(tr, 4) // PID 1, offset 1 (LMC = 1)
	if err != nil || dst != 1 || j != 1 {
		t.Errorf("Decompose(4) = %d,%d,%v", dst, j, err)
	}
}

func TestOutPortAbstractRejectsBadLIDs(t *testing.T) {
	tr := topology.MustNew(4, 2)
	for _, s := range Schemes() {
		if _, ok := s.OutPortAbstract(tr, 0, 0); ok {
			t.Errorf("%s routed LID 0", s.Name())
		}
		if _, ok := s.OutPortAbstract(tr, 0, ib.LID(s.LIDSpace(tr))); ok {
			t.Errorf("%s routed out-of-space LID", s.Name())
		}
	}
}

// TestSingleSwitchFabric exercises the FT(m,1) degenerate case.
func TestSingleSwitchFabric(t *testing.T) {
	tr := topology.MustNew(8, 1)
	for _, s := range Schemes() {
		if s.LMC(tr) != 0 {
			t.Errorf("%s: LMC on FT(8,1) = %d, want 0", s.Name(), s.LMC(tr))
		}
		for a := 0; a < tr.Nodes(); a++ {
			for b := 0; b < tr.Nodes(); b++ {
				if a == b {
					continue
				}
				p, err := Trace(tr, s, topology.NodeID(a), topology.NodeID(b))
				if err != nil {
					t.Fatal(err)
				}
				if p.Len() != 1 {
					t.Fatalf("%s: single-switch route has %d hops", s.Name(), p.Len())
				}
			}
		}
	}
}

func TestPathRendering(t *testing.T) {
	tr := topology.MustNew(4, 2)
	p, err := Trace(tr, NewMLID(), 0, topology.NodeID(tr.Nodes()-1))
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" || p.Render(tr) == "" {
		t.Error("empty rendering")
	}
	if p.Render(tr) == p.Render(nil) {
		t.Error("labelled and unlabelled renderings identical")
	}
}
