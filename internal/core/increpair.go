package core

import (
	"fmt"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// This file is the incremental counterpart of RepairSubnet: instead of
// re-scanning every forwarding entry on every fault event, a RepairState
// carries a per-switch port→LIDs reverse index built once from the pristine
// tables, plus the current divergence (overlay) from pristine per switch.
// A fault-set change then only revisits the entries that could possibly be
// affected — the entries whose pristine port is dead at a dirty switch —
// and the repair is emitted directly as a delta against the previous repair
// target. RepairSubnet remains the equivalence oracle (see the property
// tests): for any fault set, pristine + overlay is byte-identical to what
// RepairSubnet produces on a pristine clone.

// RepairEntry is one forwarding-table rewrite: DLID → physical out-port.
type RepairEntry struct {
	LID  ib.LID
	Port uint8
}

// SwitchDelta is one switch's table delta between two repair targets,
// entries in ascending LID order.
type SwitchDelta struct {
	Switch  topology.SwitchID
	Entries []RepairEntry
}

// PortLIDIndex is the reverse index: for each (switch, abstract out-port),
// the ascending list of DLIDs whose pristine forwarding entry at that switch
// exits through the port. Built once at configure time; a dead link then
// names exactly the candidate entries instead of the whole LID space.
type PortLIDIndex struct {
	m    int
	lids [][]ib.LID
}

// BuildPortLIDIndex scans the subnet's (pristine) forwarding tables once.
func BuildPortLIDIndex(sn *ib.Subnet) *PortLIDIndex {
	t := sn.Tree
	m := t.M()
	x := &PortLIDIndex{m: m, lids: make([][]ib.LID, t.Switches()*m)}
	for s := 0; s < t.Switches(); s++ {
		lft := sn.LFTs[s]
		for lid := 1; lid < lft.Size(); lid++ {
			phys, err := lft.Lookup(ib.LID(lid))
			if err != nil {
				continue
			}
			k := int(phys) - 1
			if k < 0 || k >= m {
				continue
			}
			slot := s*m + k
			x.lids[slot] = append(x.lids[slot], ib.LID(lid))
		}
	}
	return x
}

// LIDs returns the DLIDs routed through (sw, abstract port) in the pristine
// tables, ascending. The returned slice is shared; callers must not mutate.
func (x *PortLIDIndex) LIDs(sw topology.SwitchID, port int) []ib.LID {
	return x.lids[int(sw)*x.m+port]
}

// RepairState evolves a subnet's repair target incrementally. The pristine
// subnet is read-only reference data; the state tracks, per switch, the
// overlay (entries diverging from pristine, i.e. remapped ascending entries)
// and the broken (irreparable descending) entries under the current fault
// set. The repair target at any moment is pristine + overlay.
type RepairState struct {
	sn      *ib.Subnet
	idx     *PortLIDIndex
	overlay [][]RepairEntry // per switch, ascending LID
	broken  [][]BrokenEntry // per switch, ascending LID

	remapped    int
	brokenCount int

	// scratch reused across RepairIncremental calls.
	cand []ib.LID
}

// NewRepairState builds the reverse index over the subnet's current tables,
// which must be pristine (unrepaired): they become the baseline every delta
// is computed against.
func NewRepairState(sn *ib.Subnet) *RepairState {
	n := sn.Tree.Switches()
	return &RepairState{
		sn:      sn,
		idx:     BuildPortLIDIndex(sn),
		overlay: make([][]RepairEntry, n),
		broken:  make([][]BrokenEntry, n),
	}
}

// DirtySwitches computes which switches' repair decisions can change between
// two dead-link views: both switch-side endpoints of every link in the
// symmetric difference, ascending and deduplicated. Views are slices of
// (switch, abstract port) pairs as the simulator's SM holds them; a repaired
// table is a pure function of (pristine table, dead ports at that switch),
// so every switch outside this set keeps its previous target byte for byte.
func (st *RepairState) DirtySwitches(prev, cur [][2]int32) []topology.SwitchID {
	inPrev := make(map[[2]int32]bool, len(prev))
	for _, e := range prev {
		inPrev[e] = true
	}
	inCur := make(map[[2]int32]bool, len(cur))
	for _, e := range cur {
		inCur[e] = true
	}
	t := st.sn.Tree
	var dirty []topology.SwitchID
	add := func(e [2]int32) {
		sw := topology.SwitchID(e[0])
		dirty = append(dirty, sw)
		if ref := t.SwitchNeighbor(sw, int(e[1])); ref.Kind == topology.KindSwitch {
			dirty = append(dirty, ref.Switch)
		}
	}
	for _, e := range cur {
		if !inPrev[e] {
			add(e)
		}
	}
	for _, e := range prev {
		if !inCur[e] {
			add(e)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	out := dirty[:1]
	for _, sw := range dirty[1:] {
		if sw != out[len(out)-1] {
			out = append(out, sw)
		}
	}
	return out
}

// RepairIncremental re-derives the repair decisions of the dirty switches
// against the full fault set and returns the delta from the previous repair
// target to the new one — remapped entries, changed remappings, and reverts
// back to pristine (newly broken entries keep their pristine value, exactly
// as RepairSubnet leaves them in place). Deltas come out in ascending
// (switch, LID) order; dirty must be ascending (as DirtySwitches returns).
// Switches outside dirty are assumed unaffected by the fault-set change.
func (st *RepairState) RepairIncremental(faults *FaultSet, dirty []topology.SwitchID) ([]SwitchDelta, error) {
	t := st.sn.Tree
	m := t.M()
	var deltas []SwitchDelta
	for _, sw := range dirty {
		s := int(sw)
		if s < 0 || s >= len(st.overlay) {
			return deltas, fmt.Errorf("core: incremental repair: switch %d out of range", s)
		}
		down := t.DownPorts(sw)
		// Live up-ports under the current fault set, ascending — the same
		// alternative set RepairSubnet spreads remapped traffic over.
		var liveUp []int
		for k := down; k < m; k++ {
			if !faults.FailedAt(sw, k) {
				liveUp = append(liveUp, k)
			}
		}
		// Candidate entries: only those whose pristine port is dead here.
		st.cand = st.cand[:0]
		for k := 0; k < m; k++ {
			if faults.FailedAt(sw, k) {
				st.cand = append(st.cand, st.idx.LIDs(sw, k)...)
			}
		}
		// Each LID has one pristine port, so candidates are disjoint across
		// ports; a sort restores the ascending scan order of the oracle.
		sort.Slice(st.cand, func(i, j int) bool { return st.cand[i] < st.cand[j] })
		var neu []RepairEntry
		var brk []BrokenEntry
		for _, lid := range st.cand {
			phys := st.sn.LFTs[s].Port(lid)
			k := int(phys) - 1
			if k < down || len(liveUp) == 0 {
				brk = append(brk, BrokenEntry{Switch: sw, DLID: lid})
				continue
			}
			alt := liveUp[int(lid)%len(liveUp)]
			neu = append(neu, RepairEntry{LID: lid, Port: uint8(alt + 1)})
		}
		old := st.overlay[s]
		st.remapped += len(neu) - len(old)
		st.brokenCount += len(brk) - len(st.broken[s])
		st.broken[s] = brk
		st.overlay[s] = neu
		if d := diffOverlays(old, neu, st.sn.LFTs[s]); len(d) > 0 {
			deltas = append(deltas, SwitchDelta{Switch: sw, Entries: d})
		}
	}
	return deltas, nil
}

// diffOverlays merge-diffs two ascending overlays into the delta that turns
// (pristine + old) into (pristine + neu): entries only in old revert to
// their pristine port, entries only in neu (or remapped differently) take
// the new port.
func diffOverlays(old, neu []RepairEntry, pristine *ib.LFT) []RepairEntry {
	var out []RepairEntry
	i, j := 0, 0
	for i < len(old) || j < len(neu) {
		switch {
		case j >= len(neu) || (i < len(old) && old[i].LID < neu[j].LID):
			out = append(out, RepairEntry{LID: old[i].LID, Port: pristine.Port(old[i].LID)})
			i++
		case i >= len(old) || neu[j].LID < old[i].LID:
			out = append(out, neu[j])
			j++
		default:
			if old[i].Port != neu[j].Port {
				out = append(out, neu[j])
			}
			i++
			j++
		}
	}
	return out
}

// TargetPort returns the current repair target's entry for (sw, lid):
// the overlay value when the entry is remapped, the pristine value
// otherwise. O(log overlay) — safe inside per-event SM handlers.
func (st *RepairState) TargetPort(sw topology.SwitchID, lid ib.LID) uint8 {
	ov := st.overlay[int(sw)]
	lo, hi := 0, len(ov)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ov[mid].LID < lid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ov) && ov[lo].LID == lid {
		return ov[lo].Port
	}
	return st.sn.LFTs[int(sw)].Port(lid)
}

// Remapped returns the total number of entries currently diverging from
// pristine (RepairSubnet's remapped count for the same fault set).
func (st *RepairState) Remapped() int { return st.remapped }

// Broken returns the current number of irreparable entries.
func (st *RepairState) Broken() int { return st.brokenCount }

// BrokenEntries flattens the per-switch broken lists into RepairSubnet's
// reporting order: ascending switch, ascending LID.
func (st *RepairState) BrokenEntries() []BrokenEntry {
	if st.brokenCount == 0 {
		return nil
	}
	out := make([]BrokenEntry, 0, st.brokenCount)
	for _, b := range st.broken {
		out = append(out, b...)
	}
	return out
}

// TargetLFTs materializes the current repair target (pristine + overlay) as
// freshly cloned tables — the equivalence-oracle hook for tests, not a hot
// path.
func (st *RepairState) TargetLFTs() ([]*ib.LFT, error) {
	out := make([]*ib.LFT, len(st.sn.LFTs))
	for i, lft := range st.sn.LFTs {
		out[i] = lft.Clone()
		for _, e := range st.overlay[i] {
			if err := out[i].Set(e.LID, e.Port); err != nil {
				return nil, fmt.Errorf("core: materializing repair target for switch %d: %w", i, err)
			}
		}
	}
	return out, nil
}
