package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// cloneLFTs deep-copies a configured subnet's tables so RepairSubnet can
// mutate a scratch copy while the pristine original backs the RepairState.
func cloneLFTs(sn *ib.Subnet) *ib.Subnet {
	out := &ib.Subnet{Tree: sn.Tree, Engine: sn.Engine, Endports: sn.Endports,
		LFTs: make([]*ib.LFT, len(sn.LFTs))}
	for i, lft := range sn.LFTs {
		out.LFTs[i] = lft.Clone()
	}
	return out
}

// randomLinks maps raw bytes to a deterministic set of switch-side links of
// tr, possibly overlapping, as (switch, abstract port) pairs.
func randomLinks(tr *topology.Tree, raw []uint16) [][2]int32 {
	var out [][2]int32
	for _, r := range raw {
		sw := int(r) % tr.Switches()
		port := (int(r) / tr.Switches()) % tr.M()
		out = append(out, [2]int32{int32(sw), int32(port)})
	}
	return out
}

// faultSetOf registers a dead-link view in a fresh FaultSet.
func faultSetOf(tr *topology.Tree, view [][2]int32) *FaultSet {
	fs := NewFaultSet()
	for _, e := range view {
		fs.FailLink(tr, topology.SwitchID(e[0]), int(e[1]))
	}
	return fs
}

// advance drives st from its previous view to cur and returns the deltas.
func advance(t *testing.T, st *RepairState, tr *topology.Tree, prev, cur [][2]int32) []SwitchDelta {
	t.Helper()
	deltas, err := st.RepairIncremental(faultSetOf(tr, cur), st.DirtySwitches(prev, cur))
	if err != nil {
		t.Fatalf("RepairIncremental: %v", err)
	}
	return deltas
}

// checkEquivalence runs the full-scan oracle on a pristine clone under the
// same view and demands identical remapped count, broken list, and tables.
func checkEquivalence(t *testing.T, st *RepairState, pristine *ib.Subnet, view [][2]int32) {
	t.Helper()
	tr := pristine.Tree
	scratch := cloneLFTs(pristine)
	remapped, broken, err := RepairSubnet(scratch, faultSetOf(tr, view))
	if err != nil {
		t.Fatalf("RepairSubnet: %v", err)
	}
	if got := st.Remapped(); got != remapped {
		t.Fatalf("remapped: incremental %d, oracle %d (view %v)", got, remapped, view)
	}
	gotBroken := st.BrokenEntries()
	if len(gotBroken) != len(broken) || st.Broken() != len(broken) {
		t.Fatalf("broken: incremental %d entries (count %d), oracle %d (view %v)",
			len(gotBroken), st.Broken(), len(broken), view)
	}
	for i := range broken {
		if gotBroken[i] != broken[i] {
			t.Fatalf("broken[%d]: incremental %+v, oracle %+v", i, gotBroken[i], broken[i])
		}
	}
	target, err := st.TargetLFTs()
	if err != nil {
		t.Fatalf("TargetLFTs: %v", err)
	}
	for sw := range target {
		want := scratch.LFTs[sw].Entries()
		got := target[sw].Entries()
		if len(want) != len(got) {
			t.Fatalf("switch %d: table sizes differ (%d vs %d)", sw, len(got), len(want))
		}
		for lid := range want {
			if got[lid] != want[lid] {
				t.Fatalf("switch %d lid %d: incremental port %d, oracle %d (view %v)",
					sw, lid, got[lid], want[lid], view)
			}
			if p := st.TargetPort(topology.SwitchID(sw), ib.LID(lid)); lid > 0 && p != want[lid] {
				t.Fatalf("TargetPort(%d, %d) = %d, oracle %d", sw, lid, p, want[lid])
			}
		}
	}
}

// propertyTrees are the fabrics the equivalence property roams over.
func propertyTrees() []*topology.Tree {
	return []*topology.Tree{
		topology.MustNew(4, 2),
		topology.MustNew(8, 3),
		topology.MustNew(16, 2),
	}
}

// TestQuickRepairIncrementalEquivalence: for random fault sets applied as a
// sequence of incrementally-composed views (links dying and reviving,
// overlapping at shared switches), the incremental repair state matches the
// one-shot full-scan oracle after every step — same remapped count, same
// broken set, byte-identical tables.
func TestQuickRepairIncrementalEquivalence(t *testing.T) {
	trees := propertyTrees()
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			pristine := make([]*ib.Subnet, len(trees))
			for i, tr := range trees {
				pristine[i] = configured(t, tr.M(), tr.N(), scheme)
			}
			f := func(rawTree uint8, raw []uint16, revive []uint8) bool {
				if len(raw) > 8 {
					raw = raw[:8]
				}
				if len(revive) > 5 {
					revive = revive[:5]
				}
				sn := pristine[int(rawTree)%len(pristine)]
				tr := sn.Tree
				links := randomLinks(tr, raw)
				st := NewRepairState(sn)
				var view [][2]int32
				// Grow the view link by link, checking after each step.
				for _, l := range links {
					prev := append([][2]int32(nil), view...)
					view = append(view, l)
					advance(t, st, tr, prev, view)
					checkEquivalence(t, st, sn, view)
				}
				// Revive a deterministic subset, one link at a time.
				for _, r := range revive {
					if len(view) == 0 {
						break
					}
					i := int(r) % len(view)
					prev := append([][2]int32(nil), view...)
					view = append(view[:i], view[i+1:]...)
					advance(t, st, tr, prev, view)
					checkEquivalence(t, st, sn, view)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1009))}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestRepairIncrementalComposedVsOneShot: a state evolved through a fault
// sequence equals a fresh state jumping straight to the final view, and the
// concatenated deltas replay onto pristine clones into the oracle's tables.
func TestRepairIncrementalComposedVsOneShot(t *testing.T) {
	for _, tr := range propertyTrees() {
		sn := configured(t, tr.M(), tr.N(), NewMLID())
		rng := rand.New(rand.NewSource(7331))
		var raw []uint16
		for i := 0; i < 12; i++ {
			raw = append(raw, uint16(rng.Intn(1<<16)))
		}
		links := randomLinks(tr, raw)

		evolved := NewRepairState(sn)
		replay := cloneLFTs(sn)
		var view [][2]int32
		for _, l := range links {
			prev := append([][2]int32(nil), view...)
			view = append(view, l)
			for _, d := range advance(t, evolved, tr, prev, view) {
				for _, e := range d.Entries {
					if err := replay.LFTs[int(d.Switch)].Set(e.LID, e.Port); err != nil {
						t.Fatalf("replaying delta: %v", err)
					}
				}
			}
		}

		oneShot := NewRepairState(sn)
		advance(t, oneShot, tr, nil, view)
		checkEquivalence(t, oneShot, sn, view)
		checkEquivalence(t, evolved, sn, view)

		// The replayed deltas alone must reconstruct the oracle's tables.
		scratch := cloneLFTs(sn)
		if _, _, err := RepairSubnet(scratch, faultSetOf(tr, view)); err != nil {
			t.Fatalf("RepairSubnet: %v", err)
		}
		for sw := range scratch.LFTs {
			want := scratch.LFTs[sw].Entries()
			got := replay.LFTs[sw].Entries()
			for lid := range want {
				if got[lid] != want[lid] {
					t.Fatalf("FT(%d,%d) switch %d lid %d: replayed %d, oracle %d",
						tr.M(), tr.N(), sw, lid, got[lid], want[lid])
				}
			}
		}
	}
}
