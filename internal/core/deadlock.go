package core

import (
	"fmt"
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// channel identifies a directed link by its transmitting endpoint, the unit
// of the channel-dependency graph. Node injection channels never appear in
// cycles (nothing depends on acquiring them), so only switch-side channels
// are tracked.
type channel struct {
	sw   topology.SwitchID
	port int
}

// DeadlockReport is the outcome of a channel-dependency analysis.
type DeadlockReport struct {
	// Channels and Dependencies count the graph's size.
	Channels, Dependencies int
	// Cycle, when non-nil, lists a dependency cycle's channels in order —
	// a potential deadlock under blocking flow control.
	Cycle []string
}

// Free reports whether no cycle was found.
func (r *DeadlockReport) Free() bool { return len(r.Cycle) == 0 }

// CheckDeadlockFree builds the channel-dependency graph induced by the
// subnet's forwarding tables — an edge from channel A to channel B whenever
// some packet can hold A while requesting B — and searches it for cycles.
// Per Dally & Seitz, an acyclic graph proves the routing deadlock free under
// credit-based (blocking) flow control for any single virtual lane; with
// per-VL buffering and no VL transitions the proof extends lane by lane.
//
// The dependency set is exact, not conservative: it is accumulated by
// walking every (source node, assigned DLID) route through the tables, so
// only reachable channel pairs create edges. The up*/down* structure of the
// paper's schemes makes the graph acyclic; the checker exists to verify
// that property mechanically for any table set, including repaired or
// hand-modified ones.
func CheckDeadlockFree(sn *ib.Subnet) (*DeadlockReport, error) {
	t := sn.Tree
	// Dense channel ids: switch * m + port.
	chanID := func(c channel) int { return int(c.sw)*t.M() + c.port }
	numChan := t.Switches() * t.M()
	adj := make(map[int]map[int]bool)
	used := make(map[int]bool)

	addDep := func(a, b channel) {
		ai, bi := chanID(a), chanID(b)
		used[ai], used[bi] = true, true
		edges, ok := adj[ai]
		if !ok {
			edges = make(map[int]bool)
			adj[ai] = edges
		}
		edges[bi] = true
	}

	for src := 0; src < t.Nodes(); src++ {
		for dst := 0; dst < t.Nodes(); dst++ {
			r := sn.Endports[dst]
			for off := 0; off < r.Count(); off++ {
				dlid := r.Base + ib.LID(off)
				sw, _ := t.NodeAttachment(topology.NodeID(src))
				var prev *channel
				for hop := 0; hop <= 2*t.N()+1; hop++ {
					phys, err := sn.OutPort(sw, dlid)
					if err != nil {
						return nil, fmt.Errorf("core: deadlock check: switch %d DLID %d: %w", sw, dlid, err)
					}
					cur := channel{sw: sw, port: int(phys) - 1}
					if prev != nil {
						addDep(*prev, cur)
					} else {
						used[chanID(cur)] = true
					}
					ref := t.SwitchNeighbor(sw, cur.port)
					if ref.Kind == topology.KindNode {
						break
					}
					if ref.Kind == topology.KindNone {
						return nil, fmt.Errorf("core: deadlock check: route fell off fabric at switch %d port %d", sw, cur.port)
					}
					sw = ref.Switch
					c := cur
					prev = &c
				}
			}
		}
	}

	rep := &DeadlockReport{Channels: len(used)}
	for _, edges := range adj {
		rep.Dependencies += len(edges)
	}

	// Iterative DFS cycle detection with path recovery.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, numChan)
	parent := make([]int, numChan)
	for i := range parent {
		parent[i] = -1
	}
	var cycleFrom func(start int) []int
	cycleFrom = func(start int) []int {
		type frame struct {
			node int
			next []int
		}
		keys := func(m map[int]bool) []int {
			out := make([]int, 0, len(m))
			for k := range m {
				out = append(out, k)
			}
			// Deterministic order for reproducible cycle reports.
			sort.Ints(out)
			return out
		}
		stack := []frame{{node: start, next: keys(adj[start])}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			n := f.next[0]
			f.next = f.next[1:]
			switch color[n] {
			case gray:
				// Cycle: walk the stack back to n.
				cyc := []int{n}
				for i := len(stack) - 1; i >= 0; i-- {
					cyc = append(cyc, stack[i].node)
					if stack[i].node == n {
						break
					}
				}
				return cyc
			case white:
				color[n] = gray
				parent[n] = f.node
				stack = append(stack, frame{node: n, next: keys(adj[n])})
			}
		}
		return nil
	}
	// Start DFS roots in sorted order: which cycle gets reported depends on
	// the traversal order, and the report must not vary run to run.
	roots := make([]int, 0, len(adj))
	for id := range adj {
		roots = append(roots, id)
	}
	sort.Ints(roots)
	for _, id := range roots {
		if color[id] != white {
			continue
		}
		if cyc := cycleFrom(id); cyc != nil {
			for _, ci := range cyc {
				c := channel{sw: topology.SwitchID(ci / t.M()), port: ci % t.M()}
				rep.Cycle = append(rep.Cycle, fmt.Sprintf("%s:%d", t.SwitchLabel(c.sw), c.port))
			}
			return rep, nil
		}
	}
	return rep, nil
}
