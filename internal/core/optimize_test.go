package core

import (
	"testing"

	"mlid/internal/topology"
)

// TestOptimizePermutationMatchesRank: on a balanced permutation the rank
// selection is already optimal (every link load 1), and the optimizer must
// match it.
func TestOptimizePermutationMatchesRank(t *testing.T) {
	tr := topology.MustNew(4, 3)
	n := tr.Nodes()
	flows := Permutation(tr, func(i int) int { return n - 1 - i })
	s := NewMLID()

	rank, err := LinkLoad(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizePaths(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Planned() != len(flows) {
		t.Fatalf("planned %d of %d", plan.Planned(), len(flows))
	}
	if plan.MaxLoad > rank.Max {
		t.Errorf("optimizer max load %v worse than rank %v", plan.MaxLoad, rank.Max)
	}
	rep, err := PlanLinkLoad(tr, s, plan, flows)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != plan.MaxLoad {
		t.Errorf("evaluated max %v != planned %v", rep.Max, plan.MaxLoad)
	}
}

// TestOptimizeBeatsRankOnSkew: with a skewed matrix (several group members
// all talking to the same few destinations *plus* heavy cross flows), the
// rank rule can pile unrelated heavy flows onto shared ascending links; the
// optimizer must do strictly better on max link load.
func TestOptimizeBeatsRankOnSkew(t *testing.T) {
	tr := topology.MustNew(8, 2)
	s := NewMLID()
	// Adversarial skew for the oblivious rank rule: pairs of heavy flows
	// from different leaves whose sources share the same rank digit (so
	// both ascend to the same root) and whose destinations share a leaf —
	// the two descents then collide on the root's single down-link into
	// that leaf. The optimizer can split them over different roots.
	var flows []Flow
	for pair := 0; pair < 3; pair++ {
		srcA, err := tr.NodeFromDigits([]int{2 * pair, 0})
		if err != nil {
			t.Fatal(err)
		}
		srcB, err := tr.NodeFromDigits([]int{2*pair + 1, 0})
		if err != nil {
			t.Fatal(err)
		}
		dstLeaf := 6
		dstA, err := tr.NodeFromDigits([]int{dstLeaf, 2 * (pair % 2)})
		if err != nil {
			t.Fatal(err)
		}
		dstB, err := tr.NodeFromDigits([]int{dstLeaf, 2*(pair%2) + 1})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows,
			Flow{Src: srcA, Dst: dstA, Weight: 10},
			Flow{Src: srcB, Dst: dstB, Weight: 10})
	}

	rank, err := LinkLoad(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizePaths(tr, s, flows)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxLoad >= rank.Max {
		t.Errorf("optimizer max %v not better than rank %v", plan.MaxLoad, rank.Max)
	}
	// All planned routes are still shortest paths (delivery verified).
	for _, f := range flows {
		lid := plan.DLID(tr, s, f.Src, f.Dst)
		p, err := TraceLID(tr, s, f.Src, lid)
		if err != nil || p.Dst != f.Dst {
			t.Fatalf("planned path broken for %d->%d: %v", f.Src, f.Dst, err)
		}
		if p.Len() != tr.Distance(f.Src, f.Dst) {
			t.Fatalf("planned path not shortest for %d->%d", f.Src, f.Dst)
		}
	}
}

// TestPlanFallsBackToRank: unplanned pairs use the canonical selection.
func TestPlanFallsBackToRank(t *testing.T) {
	tr := topology.MustNew(4, 2)
	s := NewMLID()
	plan, err := OptimizePaths(tr, s, []Flow{{Src: 0, Dst: 5, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.DLID(tr, s, 1, 6); got != s.DLID(tr, 1, 6) {
		t.Errorf("fallback DLID %d != canonical %d", got, s.DLID(tr, 1, 6))
	}
}

// TestOptimizeSkipsSelfFlows: self flows are ignored, not planned.
func TestOptimizeSkipsSelfFlows(t *testing.T) {
	tr := topology.MustNew(4, 2)
	plan, err := OptimizePaths(tr, NewMLID(), []Flow{{Src: 2, Dst: 2, Weight: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Planned() != 0 {
		t.Errorf("planned %d self flows", plan.Planned())
	}
}
