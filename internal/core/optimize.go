package core

import (
	"sort"

	"mlid/internal/ib"
	"mlid/internal/topology"
)

// PathPlan is a profile-guided path assignment: for each (src, dst) flow of
// a known traffic matrix, the DLID whose route minimizes the fabric's
// maximum link load. It extends the paper's rank-based selection — which is
// optimal for symmetric group traffic but oblivious to skew — with an
// offline optimization over the same MLID multipath mechanism: nothing
// changes in the switches, only the DLIDs sources use.
type PathPlan struct {
	dlid map[[2]topology.NodeID]ib.LID
	// MaxLoad and MeanLoad describe the planned assignment's link loads.
	MaxLoad, MeanLoad float64
}

// DLID returns the planned DLID for a flow, falling back to the scheme's
// canonical selection for unplanned pairs.
func (p *PathPlan) DLID(t *topology.Tree, s Scheme, src, dst topology.NodeID) ib.LID {
	if lid, ok := p.dlid[[2]topology.NodeID{src, dst}]; ok {
		return lid
	}
	return s.DLID(t, src, dst)
}

// Planned returns the number of planned flows.
func (p *PathPlan) Planned() int { return len(p.dlid) }

// OptimizePaths computes a path plan for the traffic matrix under the MLID
// scheme: flows are processed heaviest first, and each picks the LID offset
// whose route currently adds the least to the most-loaded link it crosses
// (greedy min-max). The returned plan never worsens a flow's path length —
// every candidate is a shortest path by construction.
func OptimizePaths(t *topology.Tree, s MLID, flows []Flow) (*PathPlan, error) {
	type linkKey struct {
		sw   topology.SwitchID
		port int
	}
	load := make(map[linkKey]float64)
	plan := &PathPlan{dlid: make(map[[2]topology.NodeID]ib.LID, len(flows))}

	ordered := append([]Flow{}, flows...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Weight != ordered[j].Weight {
			return ordered[i].Weight > ordered[j].Weight
		}
		if ordered[i].Src != ordered[j].Src {
			return ordered[i].Src < ordered[j].Src
		}
		return ordered[i].Dst < ordered[j].Dst
	})

	for _, f := range ordered {
		if f.Src == f.Dst {
			continue
		}
		base := s.BaseLID(t, f.Dst)
		count := s.PathsPerPair(t)
		bestLID := ib.LID(0)
		var bestPath Path
		bestCost := -1.0
		seen := map[string]bool{}
		for off := 0; off < count; off++ {
			lid := base + ib.LID(off)
			p, err := TraceLID(t, s, f.Src, lid)
			if err != nil {
				return nil, err
			}
			key := p.Render(nil)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Cost: the maximum load among the links this route would use
			// after adding the flow.
			cost := 0.0
			for _, h := range p.Hops {
				if l := load[linkKey{h.Switch, h.OutPort}] + f.Weight; l > cost {
					cost = l
				}
			}
			if bestCost < 0 || cost < bestCost {
				bestCost, bestLID, bestPath = cost, lid, p
			}
		}
		for _, h := range bestPath.Hops {
			load[linkKey{h.Switch, h.OutPort}] += f.Weight
		}
		plan.dlid[[2]topology.NodeID{f.Src, f.Dst}] = bestLID
	}

	// Summarize over sorted keys so the float sum accumulates in a fixed
	// order regardless of map iteration.
	lks := make([]linkKey, 0, len(load))
	for k := range load {
		lks = append(lks, k)
	}
	sort.Slice(lks, func(i, j int) bool {
		if lks[i].sw != lks[j].sw {
			return lks[i].sw < lks[j].sw
		}
		return lks[i].port < lks[j].port
	})
	var sum float64
	for _, k := range lks {
		v := load[k]
		sum += v
		if v > plan.MaxLoad {
			plan.MaxLoad = v
		}
	}
	if len(load) > 0 {
		plan.MeanLoad = sum / float64(len(load))
	}
	return plan, nil
}

// PlanLinkLoad evaluates a traffic matrix under a plan's selections (the
// counterpart of LinkLoad for canonical selection).
func PlanLinkLoad(t *topology.Tree, s MLID, plan *PathPlan, flows []Flow) (*LoadReport, error) {
	r := &LoadReport{Load: make(map[LinkKey]float64)}
	for _, f := range flows {
		if f.Src == f.Dst {
			continue
		}
		lid := plan.DLID(t, s, f.Src, f.Dst)
		p, err := TraceLID(t, s, f.Src, lid)
		if err != nil {
			return nil, err
		}
		r.Flows++
		r.Load[LinkKey{Kind: topology.KindNode, Entity: int32(f.Src)}] += f.Weight
		for _, h := range p.Hops {
			r.Load[LinkKey{Kind: topology.KindSwitch, Entity: int32(h.Switch), Port: h.OutPort}] += f.Weight
		}
	}
	r.summarize()
	return r, nil
}
