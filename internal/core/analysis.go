package core

import (
	"fmt"
	"sort"

	"mlid/internal/topology"
)

// Flow is one entry of a static traffic matrix: Weight units of load from
// Src to Dst.
type Flow struct {
	Src, Dst topology.NodeID
	Weight   float64
}

// LinkKey identifies a directed link by its transmitting endpoint. Links out
// of processing nodes use Kind topology.KindNode.
type LinkKey struct {
	Kind   topology.Kind
	Entity int32 // NodeID or SwitchID
	Port   int   // abstract port (0 for nodes)
}

// String renders the key for reports.
func (k LinkKey) String() string {
	if k.Kind == topology.KindNode {
		return fmt.Sprintf("node%d->", k.Entity)
	}
	return fmt.Sprintf("sw%d:%d->", k.Entity, k.Port)
}

// LoadReport summarizes the static per-link load a scheme induces for a
// traffic matrix, assuming every flow follows the scheme's selected path.
// It is the paper's congestion argument made computable without simulation:
// the maximum link load bounds the achievable throughput from above
// (throughput <= total demand / max load, for unit-capacity links).
type LoadReport struct {
	// Load maps every used directed link to its accumulated weight.
	Load map[LinkKey]float64
	// Max and Mean summarize over used links.
	Max, Mean float64
	// MaxLink is one link attaining Max.
	MaxLink LinkKey
	// Flows is the number of traced flows.
	Flows int
}

// LinkLoad traces every flow under the scheme and accumulates directed link
// loads. It returns an error if any flow cannot be routed.
func LinkLoad(t *topology.Tree, s Scheme, flows []Flow) (*LoadReport, error) {
	r := &LoadReport{Load: make(map[LinkKey]float64)}
	for _, f := range flows {
		if f.Src == f.Dst {
			continue
		}
		p, err := Trace(t, s, f.Src, f.Dst)
		if err != nil {
			return nil, err
		}
		r.Flows++
		r.Load[LinkKey{Kind: topology.KindNode, Entity: int32(f.Src)}] += f.Weight
		for _, h := range p.Hops {
			r.Load[LinkKey{Kind: topology.KindSwitch, Entity: int32(h.Switch), Port: h.OutPort}] += f.Weight
		}
	}
	r.summarize()
	return r, nil
}

// SortedLinkKeys returns a load map's keys in canonical (kind, entity, port)
// order — the iteration order every load summary uses.
func SortedLinkKeys(load map[LinkKey]float64) []LinkKey {
	keys := make([]LinkKey, 0, len(load))
	for k := range load {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Port < b.Port
	})
	return keys
}

// summarize fills Max, MaxLink and Mean from Load. It walks the keys in
// canonical order: the float sum then always accumulates in the same order
// (addition is not associative) and a tie for the maximum always resolves to
// the same MaxLink, keeping reports byte-identical across runs.
func (r *LoadReport) summarize() {
	var sum float64
	for _, k := range SortedLinkKeys(r.Load) {
		v := r.Load[k]
		sum += v
		if v > r.Max {
			r.Max, r.MaxLink = v, k
		}
	}
	if len(r.Load) > 0 {
		r.Mean = sum / float64(len(r.Load))
	}
}

// TopLinks returns the n most loaded links, heaviest first.
func (r *LoadReport) TopLinks(n int) []struct {
	Key  LinkKey
	Load float64
} {
	type kv struct {
		Key  LinkKey
		Load float64
	}
	all := make([]kv, 0, len(r.Load))
	for k, v := range r.Load {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Load != all[j].Load {
			return all[i].Load > all[j].Load
		}
		if all[i].Key.Entity != all[j].Key.Entity {
			return all[i].Key.Entity < all[j].Key.Entity
		}
		return all[i].Key.Port < all[j].Key.Port
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Key  LinkKey
		Load float64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Key  LinkKey
			Load float64
		}{all[i].Key, all[i].Load}
	}
	return out
}

// AllToOne builds the traffic matrix in which every node sends unit load to
// the single destination — the concentrated pattern behind the paper's
// Figure 9 congestion example and its 50%-centric workload.
func AllToOne(t *topology.Tree, dst topology.NodeID) []Flow {
	flows := make([]Flow, 0, t.Nodes()-1)
	for p := 0; p < t.Nodes(); p++ {
		if topology.NodeID(p) == dst {
			continue
		}
		flows = append(flows, Flow{Src: topology.NodeID(p), Dst: dst, Weight: 1})
	}
	return flows
}

// Permutation builds a unit-load flow per node from a permutation function.
// Fixed points are skipped.
func Permutation(t *topology.Tree, perm func(int) int) []Flow {
	flows := make([]Flow, 0, t.Nodes())
	for p := 0; p < t.Nodes(); p++ {
		d := perm(p)
		if d == p || d < 0 || d >= t.Nodes() {
			continue
		}
		flows = append(flows, Flow{Src: topology.NodeID(p), Dst: topology.NodeID(d), Weight: 1})
	}
	return flows
}
