package core

import (
	"mlid/internal/topology"
)

// PartitionFinding is the typed partition report a subnet manager emits when
// repair cannot restore reachability: the fabric's live connected components
// and which node pairs no forwarding table, however repaired, can serve. It
// is a pure function of the topology and a fault set, so both the in-band SM
// model (which evaluates its possibly-stale knowledge) and offline analyses
// (ground truth) produce one.
type PartitionFinding struct {
	// Components is the number of connected components the live inter-switch
	// links leave among switches that host reachable nodes; 1 means the node
	// population is mutually reachable (severed nodes aside).
	Components int
	// Severed counts nodes whose attachment link is dead: they are in no
	// component and can reach nothing.
	Severed int
	// UnreachablePairs counts ordered (src, dst) pairs of distinct nodes no
	// route can serve: pairs in different components plus every pair
	// involving a severed node.
	UnreachablePairs int

	// compOf maps each node to its component id (renumbered in node order),
	// -1 for severed nodes.
	compOf []int32
}

// Partitioned reports whether any node pair is unreachable.
func (p *PartitionFinding) Partitioned() bool { return p.UnreachablePairs > 0 }

// Reachable reports whether some live path can serve (src, dst). A node is
// trivially reachable from itself unless its attachment is severed.
func (p *PartitionFinding) Reachable(src, dst topology.NodeID) bool {
	a, b := p.compOf[src], p.compOf[dst]
	return a >= 0 && a == b
}

// DetectPartitions computes the fabric's connected components under a fault
// set: a breadth-first search over switches along live inter-switch links
// (visiting switches and ports in ascending order, so component ids are
// deterministic), then node membership via each node's attachment link.
// FailLink registers both endpoints of a link, so probing the out-end of
// each directed hop suffices.
func DetectPartitions(t *topology.Tree, fs *FaultSet) PartitionFinding {
	S := t.Switches()
	swComp := make([]int32, S)
	for i := range swComp {
		swComp[i] = -1
	}
	var queue []topology.SwitchID
	nComp := int32(0)
	for seed := 0; seed < S; seed++ {
		if swComp[seed] >= 0 {
			continue
		}
		comp := nComp
		nComp++
		swComp[seed] = comp
		queue = append(queue[:0], topology.SwitchID(seed))
		for len(queue) > 0 {
			sw := queue[0]
			queue = queue[1:]
			for port := 0; port < t.M(); port++ {
				if fs != nil && fs.Dead(sw, port) {
					continue
				}
				ref := t.SwitchNeighbor(sw, port)
				if ref.Kind != topology.KindSwitch || swComp[ref.Switch] >= 0 {
					continue
				}
				swComp[ref.Switch] = comp
				queue = append(queue, ref.Switch)
			}
		}
	}

	n := t.Nodes()
	p := PartitionFinding{compOf: make([]int32, n)}
	// Renumber components in first-node-appearance order so the finding is
	// independent of the switch-level BFS seeding.
	renum := make([]int32, nComp)
	for i := range renum {
		renum[i] = -1
	}
	sizes := make([]int64, 0, 4)
	for node := 0; node < n; node++ {
		sw, port := t.NodeAttachment(topology.NodeID(node))
		if fs != nil && fs.Dead(sw, port) {
			p.compOf[node] = -1
			p.Severed++
			continue
		}
		c := swComp[sw]
		if renum[c] < 0 {
			renum[c] = int32(len(sizes))
			sizes = append(sizes, 0)
		}
		p.compOf[node] = renum[c]
		sizes[renum[c]]++
	}
	p.Components = len(sizes)
	// Reachable ordered pairs are those within one component; everything
	// else — cross-component pairs and any pair touching a severed node —
	// is unreachable.
	reachable := int64(0)
	for _, sz := range sizes {
		reachable += sz * (sz - 1)
	}
	p.UnreachablePairs = int(int64(n)*int64(n-1) - reachable)
	return p
}
