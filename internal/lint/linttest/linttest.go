// Package linttest is the repository's analysistest: it runs one analyzer
// over a testdata package and checks its diagnostics against "// want"
// comments in the sources. The conventions match
// golang.org/x/tools/go/analysis/analysistest so the testdata files would
// work unchanged under the real harness:
//
//	m = rand.Intn(9) // want `global math/rand`
//
// Each quoted fragment after "want" is a regular expression that must match
// the message of a diagnostic reported on that line; lines without a want
// comment must produce no diagnostics.
package linttest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mlid/internal/lint/analysis"
	"mlid/internal/lint/load"
)

// expectation is one "// want" fragment: a message pattern expected on a
// specific file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// wantRe matches the comment tail; fragments are Go string literals
// (backquoted or double-quoted), scanned with strconv.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants reads the expectations of one source file.
func parseWants(t *testing.T, file string) []*expectation {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	defer f.Close()
	var out []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			lit, tail, ok := cutLiteral(rest)
			if !ok {
				t.Fatalf("linttest: %s:%d: malformed want comment %q", file, line, m[1])
			}
			pat, err := regexp.Compile(lit)
			if err != nil {
				t.Fatalf("linttest: %s:%d: bad pattern %q: %v", file, line, lit, err)
			}
			out = append(out, &expectation{file: file, line: line, pattern: pat})
			rest = strings.TrimSpace(tail)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("linttest: reading %s: %v", file, err)
	}
	return out
}

// cutLiteral splits one leading quoted string off s.
func cutLiteral(s string) (lit, rest string, ok bool) {
	if s == "" {
		return "", "", false
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", false
		}
		return s[1 : 1+end], s[2+end:], true
	case '"':
		// Walk to the closing unescaped quote, then unquote.
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				u, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", false
				}
				return u, s[i+1:], true
			}
		}
	}
	return "", "", false
}

// Run loads testdata/src/<pkg> relative to the caller's package directory,
// applies the analyzer, and fails the test on any mismatch between reported
// diagnostics and the "// want" expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	p, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	var wants []*expectation
	for _, fn := range p.FileNames {
		wants = append(wants, parseWants(t, fn)...)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Path:      p.ImportPath,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: running %s: %v", a.Name, err)
	}
diags:
	for _, d := range pass.Diagnostics() {
		pos := p.Fset.Position(d.Pos)
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.met = true
				continue diags
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
