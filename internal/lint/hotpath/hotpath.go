// Package hotpath enforces the simulator's cache-residency contract: the
// per-packet functions of internal/sim — the code that runs once per event,
// hundreds of millions of times per figure sweep — must stay allocation-free
// and branch-predictable. PR 5 rebuilt this path around dense index-addressed
// slices (compiled forwarding tables, struct-of-arrays switch state, pooled
// packets and typed events); this analyzer keeps the three regressions that
// most easily creep back out of it:
//
//   - sort.* calls — sorting is O(n log n) with data-dependent branches; any
//     order the hot path needs must be precomputed at build (or SM-update)
//     time;
//   - map construction (make(map...), map literals) — maps allocate, hash,
//     and iterate in randomized order; hot-path state is indexed by dense
//     (switch, port, VL) or (src, dst) keys into slices;
//   - function literals — a closure that captures variables allocates, and
//     the original closure-based event queue was the single largest line in
//     the allocation profile. Events are typed records now (see
//     internal/sim/engine.go); keep them that way.
//
// Only the functions named in hotFuncs are checked, and only inside package
// sim's non-test files: cold paths (build, reporting, fault staging) may use
// whatever shape is clearest. A justified exception is suppressed the usual
// way, with a reasoned directive:
//
//	//lint:ignore hotpath one-time table rebuild, not per-packet
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid sorting, map construction and closure allocation in the simulator's per-packet functions",
	Run:  run,
}

// hotFuncs names the per-packet functions: everything dispatch reaches on the
// data path (generation, switching, flow control, delivery, transport), plus
// the scheduler primitives under it. Cold entry points that merely neighbor
// them (build, compileLFT, smTrap, Run) are deliberately absent.
var hotFuncs = map[string]bool{
	// engine (engine.go)
	"schedule": true, "pop": true, "push": true,
	// event loop and packet pool (sim.go)
	"runUntil": true, "dispatch": true,
	"newPkt": true, "freePkt": true, "pktAt": true,
	// data path (sim.go)
	"generate": true, "selectDLID": true, "interarrival": true,
	"swArrive": true, "warmFlowHigh": true, "route": true, "fwdAt": true,
	"requestTransfer": true, "completeTransfer": true,
	"kick": true, "transmit": true, "releaseSlot": true, "creditArrive": true,
	"deliverIdeal": true, "nodeArrive": true, "deliver": true,
	"nodePid": true, "seriesBin": true,
	// live-fault fast path (faults.go): per-packet once a fault plan is active
	"dropPkt": true, "pathAlive": true, "usableMask": true, "reselectActive": true,
	// path selection (selector.go): every Select method plus the congestion
	// view it reads and the helpers under it, all once per generated packet
	"Select": true, "Occupancy": true, "Credits": true, "Load": true,
	"applyDLIDFunc": true, "nthSetBit": true,
	// transport (transport.go)
	"flowIdx": true, "txTrack": true, "armTimer": true, "retransmit": true,
	"rxAccept": true, "sendCtrl": true, "ctrlArrive": true, "rexmitTimer": true,
}

func run(pass *analysis.Pass) error {
	leaf := pass.Path
	if i := strings.LastIndexByte(leaf, '/'); i >= 0 {
		leaf = leaf[i+1:]
	}
	if strings.TrimSuffix(leaf, "_test") != "sim" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotFuncs[fn.Name.Name] {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in hot-path %s: a capturing func literal allocates per call; schedule a typed event record instead", name)
			// Keep walking: a sort or map inside the closure still runs on
			// the hot path and deserves its own diagnostic.
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pn := pass.PkgNameOf(sel.X); pn != nil && pn.Imported().Path() == "sort" {
					pass.Reportf(n.Pos(), "call to sort.%s in hot-path %s: per-packet code must not sort; precompute the order at build or SM-update time", sel.Sel.Name, name)
				}
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && isMapType(pass, n) {
					pass.Reportf(n.Pos(), "make(map) in hot-path %s: maps allocate and hash per access; index a dense slice by (switch, port, VL) or (src, dst) instead", name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal in hot-path %s: maps allocate and hash per access; index a dense slice by (switch, port, VL) or (src, dst) instead", name)
				}
			}
		}
		return true
	})
}

// isMapType reports whether the make call produces a map.
func isMapType(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
