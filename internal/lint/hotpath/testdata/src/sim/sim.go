// Package sim is a hotpath testdata fixture: its leaf name matches the
// simulator package, so per-packet functions named in hotFuncs must stay free
// of sorting, map construction and closure allocation.
package sim

import "sort"

type pkt struct {
	dst int
	vl  int
}

type Sim struct {
	queues  [][]pkt
	credits []int32
	seen    map[int]bool
}

// route is hot: every construct below is a violation.
func (s *Sim) route(p *pkt) int {
	order := []int{p.dst, p.vl}
	sort.Ints(order) // want `call to sort\.Ints in hot-path route`
	visited := make(map[int]bool) // want `make\(map\) in hot-path route`
	visited[p.dst] = true
	weights := map[int]float64{p.vl: 1} // want `map literal in hot-path route`
	_ = weights
	pick := func(q []pkt) int { // want `closure allocation in hot-path route`
		return len(q)
	}
	return pick(s.queues[p.vl])
}

// kick is hot; a sort hidden inside a closure is two findings, not one.
func (s *Sim) kick(pid int32) {
	defer func() { // want `closure allocation in hot-path kick`
		sort.Slice(s.credits, func(i, j int) bool { return s.credits[i] < s.credits[j] }) // want `call to sort\.Slice in hot-path kick` `closure allocation in hot-path kick`
	}()
}

// deliver is hot, but reading an existing map field is not construction: only
// make(map...) and literals are flagged. (The field still costs a hash per
// access — the analyzer leaves pre-existing state shapes to review.)
func (s *Sim) deliver(p *pkt) bool {
	return s.seen[p.dst]
}

// build is cold: identical constructs are allowed off the per-packet path.
func (s *Sim) build(n int) {
	s.seen = make(map[int]bool, n)
	labels := map[string]int{"a": 1}
	keys := []int{3, 1, 2}
	sort.Ints(keys)
	each := func(k int) { s.seen[k] = true }
	for _, k := range keys {
		each(k + len(labels))
	}
}

// transmit exercises the qualifier test: a local variable named sort must
// not be mistaken for the package.
func (s *Sim) transmit(pid int32, vl int) {
	type sorter struct{}
	var sort sorter
	_ = sort
}
