package hotpath

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, Analyzer, "sim")
}
