// Package missingflag is the goldendrift positive fixture: a golden
// comparison with no way to regenerate the fixture.
package missingflag

import (
	"os"
	"testing"
)

func TestGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_results.txt") // want `no regeneration flag`
	if err != nil {
		t.Fatal(err)
	}
	if got := run(); got != string(want) {
		t.Fatalf("golden mismatch:\n%s", got)
	}
}

func run() string { return "results" }
