// Package withflag is the goldendrift negative fixture: the same golden
// comparison, regenerable via -update.
package withflag

import (
	"flag"
	"os"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden fixtures")

func TestGolden(t *testing.T) {
	const golden = "testdata/golden_results.txt"
	got := run()
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("golden mismatch (rerun with -update to regenerate):\n%s", got)
	}
}

func run() string { return "results" }
