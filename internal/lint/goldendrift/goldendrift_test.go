package goldendrift

import (
	"testing"

	"mlid/internal/lint/linttest"
)

// TestMissingFlag is the positive case: golden comparison, no update flag.
func TestMissingFlag(t *testing.T) {
	linttest.Run(t, Analyzer, "missingflag")
}

// TestWithFlag is the negative case: the package registers the flag, so the
// same comparison is fine.
func TestWithFlag(t *testing.T) {
	linttest.Run(t, Analyzer, "withflag")
}
