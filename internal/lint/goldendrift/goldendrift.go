// Package goldendrift keeps golden-fixture tests regenerable: any test file
// that compares against a pinned fixture (a string literal naming
// golden_results.txt, or any testdata/golden* path) must belong to a test
// package that also registers a fixture-regeneration flag — the
// `var update = flag.Bool("update", ...)` convention. Without the flag, a
// legitimate behavior change turns the golden diff into a dead end: the
// fixture can only be rebuilt by hand, and stale-golden failures give the
// next engineer no hint how to proceed.
package goldendrift

import (
	"go/ast"
	"strconv"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goldendrift",
	Doc:  "require golden-fixture tests to register a regeneration flag",
	Run:  run,
}

// isGoldenLiteral reports whether a string literal names a golden fixture.
func isGoldenLiteral(s string) bool {
	return strings.Contains(s, "golden_results.txt") ||
		strings.Contains(s, "testdata/golden")
}

// registersUpdateFlag reports whether the file declares a flag whose name
// mentions "update" (flag.Bool("update", ...) or similar).
func registersUpdateFlag(pass *analysis.Pass, f *ast.File) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pass.PkgNameOf(sel.X)
		if pn == nil || pn.Imported().Path() != "flag" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err == nil && strings.Contains(strings.ToLower(name), "update") {
			found = true
		}
		return true
	})
	return found
}

func run(pass *analysis.Pass) error {
	// The flag may live in any file of the test package (determinism_test.go
	// registers it once for every golden consumer in the package).
	flagRegistered := false
	for _, f := range pass.Files {
		if registersUpdateFlag(pass, f) {
			flagRegistered = true
			break
		}
	}
	if flagRegistered {
		return nil
	}
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil || !isGoldenLiteral(s) {
				return true
			}
			pass.Reportf(lit.Pos(), "test compares against golden fixture %s but the package registers no regeneration flag: add `var update = flag.Bool(\"update\", false, ...)` and rewrite the fixture when it is set", s)
			return true
		})
	}
	return nil
}
