package simdeterminism

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestSimDeterminism(t *testing.T) {
	linttest.Run(t, Analyzer, "sim")
}

// TestSMPackage proves the subnet-manager package is covered: its state
// machines (sweep, SMP retransmit, failover) feed the simulator's event loop,
// so wall clocks, runtime timers and global entropy are as illegal there as
// in the engine itself.
func TestSMPackage(t *testing.T) {
	linttest.Run(t, Analyzer, "sm")
}

// TestExperimentPackage proves the harness package is covered: studies are
// pinned by determinism tests, so the same entropy rules apply there.
func TestExperimentPackage(t *testing.T) {
	linttest.Run(t, Analyzer, "experiment")
}

// TestOutsideCorePackages proves the analyzer is scoped: the same entropy
// sources are legal in packages outside internal/{sim,sm,core}.
func TestOutsideCorePackages(t *testing.T) {
	linttest.Run(t, Analyzer, "tools")
}
