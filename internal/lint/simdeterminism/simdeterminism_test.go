package simdeterminism

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestSimDeterminism(t *testing.T) {
	linttest.Run(t, Analyzer, "sim")
}

// TestOutsideCorePackages proves the analyzer is scoped: the same entropy
// sources are legal in packages outside internal/{sim,sm,core}.
func TestOutsideCorePackages(t *testing.T) {
	linttest.Run(t, Analyzer, "tools")
}
