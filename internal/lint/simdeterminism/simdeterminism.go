// Package simdeterminism flags sources of runtime nondeterminism inside the
// simulator's deterministic core (internal/sim — including its fault-event
// code — internal/sm, internal/core) and the experiment harness that drives
// it (internal/experiment). The golden fixtures and the fault-plan
// determinism suite pin results bit-for-bit for a given configuration and
// seed; that contract holds only while simulator code takes no entropy from
// outside the configuration. The analyzer rejects:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — simulated time
//     is sim.Time, derived from the event clock;
//   - runtime timers (time.Sleep, time.After, time.Tick, time.AfterFunc,
//     time.NewTimer, time.NewTicker) — retransmit/timeout work must be
//     scheduled as events on the simulation clock, where it is reproducible
//     and visible to the drain horizon, never on goroutine timers;
//   - the global math/rand generators (rand.Intn, rand.Float64, ...) —
//     randomness must flow from the run's seeded *rand.Rand;
//   - process-environment entropy (os.Getpid, os.Getenv, os.Hostname, ...)
//     and crypto/rand;
//   - host CPU-count reads (runtime.NumCPU, runtime.GOMAXPROCS) in the
//     simulator core (sim, sm, core): the sharded engine is bit-identical
//     across shard counts, but that holds because the shard count flows in
//     through sim.Config and nothing inside the engine consults the host.
//     The experiment harness is exempt — it legitimately sizes worker pools
//     and default shard counts from GOMAXPROCS, which affects wall-clock
//     only, never results;
//   - select statements with two or more channel cases: when several cases
//     are ready the runtime picks one uniformly at random.
//
// Test files are exempt — the invariant protects the hot path, and tests
// legitimately time themselves.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global-rand and environment entropy in simulator core packages",
	Run:  run,
}

// corePackages are the import-path leaf names the invariant covers. The
// experiment harness is included because its studies (figures, recovery
// transients) are themselves pinned by determinism tests.
var corePackages = map[string]bool{"sim": true, "sm": true, "core": true, "experiment": true}

// timeFuncs are the wall-clock reads; everything else in package time
// (constants, Duration arithmetic, parsing) is deterministic.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// timerFuncs start runtime timers. The transport's retransmit timers made
// "just sleep until the timeout" a tempting shortcut; timer goroutines fire
// on the wall clock, invisibly to the event engine and its drain horizon,
// so timeouts must be evRexmit-style events on the simulation clock instead.
var timerFuncs = map[string]bool{
	"Sleep": true, "After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// osFuncs read process-environment entropy.
var osFuncs = map[string]bool{
	"Getpid": true, "Getppid": true, "Getenv": true, "LookupEnv": true,
	"Environ": true, "Hostname": true,
}

// cpuFuncs read the host's CPU configuration. Forbidden in the engine core
// (the shard count must arrive via sim.Config so a run is reproducible from
// its configuration alone); allowed in the experiment harness, whose worker
// pools and auto shard defaults change wall-clock but never results.
var cpuFuncs = map[string]bool{"NumCPU": true, "GOMAXPROCS": true}

func run(pass *analysis.Pass) error {
	leaf := pass.Path
	if i := strings.LastIndexByte(leaf, '/'); i >= 0 {
		leaf = leaf[i+1:]
	}
	pkg := strings.TrimSuffix(leaf, "_test")
	if !corePackages[pkg] {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pn := pass.PkgNameOf(n.X)
				if pn == nil {
					return true
				}
				// Only function references carry entropy; type names
				// (rand.Rand) and constants (time.Millisecond) are inert.
				if _, isFunc := pass.ObjectOf(n.Sel).(*types.Func); !isFunc {
					return true
				}
				name := n.Sel.Name
				switch pn.Imported().Path() {
				case "time":
					if timeFuncs[name] {
						pass.Reportf(n.Pos(), "call to time.%s in simulator code: derive timing from the event clock (sim.Time), not the wall clock", name)
					}
					if timerFuncs[name] {
						pass.Reportf(n.Pos(), "time.%s in simulator code: schedule retransmit/timeout work as events on the simulation clock, not on runtime timers", name)
					}
				case "math/rand", "math/rand/v2":
					// Constructors are fine: rand.New(rand.NewSource(seed))
					// is exactly how runs get their seeded generator.
					if !strings.HasPrefix(name, "New") {
						pass.Reportf(n.Pos(), "global math/rand %s in simulator code: draw from the run's seeded *rand.Rand instead", name)
					}
				case "crypto/rand":
					pass.Reportf(n.Pos(), "crypto/rand %s in simulator code: results must be reproducible from the configuration seed", name)
				case "os":
					if osFuncs[name] {
						pass.Reportf(n.Pos(), "os.%s in simulator code: process-environment entropy breaks run reproducibility", name)
					}
				case "runtime":
					if cpuFuncs[name] && pkg != "experiment" {
						pass.Reportf(n.Pos(), "runtime.%s in the engine core: the shard count must flow in through sim.Config, not from the host CPU configuration", name)
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d channel cases: the runtime chooses among ready cases at random, which breaks event-order determinism", comm)
				}
			}
			return true
		})
	}
	return nil
}
