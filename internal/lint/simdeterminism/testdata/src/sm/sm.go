// Package sm is a simdeterminism testdata fixture: its leaf name matches the
// subnet-manager package, so the same entropy rules as the simulator core
// apply — sweep timers, retry backoff and failover must run on the simulation
// clock with seeded entropy only.
package sm

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

type sweeper struct {
	lastNs int64
	rng    *rand.Rand
}

func newSweeper(seed int64) *sweeper {
	// Negative case: seeding a private generator is the sanctioned pattern.
	return &sweeper{rng: rand.New(rand.NewSource(seed))}
}

func (s *sweeper) badSweepClock() int64 {
	// A sweep interval measured on the wall clock drifts with host load; the
	// sweep must be an event on the simulation clock.
	now := time.Now()                      // want `call to time\.Now in simulator code`
	_ = time.Since(time.Unix(0, s.lastNs)) // want `call to time\.Since in simulator code`
	return now.UnixNano()
}

func (s *sweeper) badRetryJitter() int64 {
	// SMP retransmit jitter from the global generator makes the backoff
	// schedule differ run to run.
	jitter := rand.Int63n(1000) // want `global math/rand Int63n in simulator code`
	_ = rand.Float64()          // want `global math/rand Float64 in simulator code`
	return jitter
}

func (s *sweeper) badHostIdentity() int {
	// Electing the master SM by host identity or environment makes failover
	// machine-dependent.
	pid := os.Getpid()       // want `os\.Getpid in simulator code`
	_ = os.Getenv("SM_NODE") // want `os\.Getenv in simulator code`
	return pid
}

func (s *sweeper) badSweepTimers() {
	// The periodic sweep must be a scheduled event, never a runtime timer.
	time.Sleep(25 * time.Microsecond)          // want `time\.Sleep in simulator code`
	_ = time.After(time.Microsecond)           // want `time\.After in simulator code`
	_ = time.NewTicker(25 * time.Microsecond)  // want `time\.NewTicker in simulator code`
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc in simulator code`
}

func (s *sweeper) badParallelSweep() int {
	// Sweep fan-out sized from the host makes the SMP schedule
	// machine-dependent.
	return runtime.NumCPU() // want `runtime\.NumCPU in the engine core`
}

func (s *sweeper) badResponseRace(acks, timeouts chan int) int {
	select { // want `select with 2 channel cases`
	case v := <-acks:
		return v
	case v := <-timeouts:
		return v
	}
}

func (s *sweeper) goodBackoff() int64 {
	// Negative cases: duration arithmetic, the seeded generator and the
	// simulation clock are all deterministic.
	d := 25 * time.Microsecond
	s.lastNs += int64(d) + s.rng.Int63n(3)
	return s.lastNs
}
