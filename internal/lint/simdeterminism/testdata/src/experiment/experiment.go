// Package experiment is a simdeterminism testdata fixture: the experiment
// harness drives the deterministic simulator and its studies are pinned by
// determinism tests, so entropy sources must be flagged here too.
package experiment

import (
	"math/rand"
	"runtime"
	"time"
)

type study struct {
	seed int64
}

func (s *study) badSeedPick() int64 {
	// A study must never derive its seeds or windows from the environment.
	base := time.Now().UnixNano()       // want `call to time\.Now in simulator code`
	return base + int64(rand.Intn(100)) // want `global math/rand Intn in simulator code`
}

func (s *study) goodWorkerPool() int {
	// Negative case: the harness may size worker pools and auto shard
	// defaults from the host — wall-clock only, results are shard-invariant.
	return runtime.GOMAXPROCS(0) + runtime.NumCPU()
}

func (s *study) goodSeedPick(i int) int64 {
	// Negative case: seeds derived from the configured base are fine, as is
	// a locally seeded generator.
	rng := rand.New(rand.NewSource(s.seed))
	return s.seed + int64(i) + rng.Int63()%7
}
