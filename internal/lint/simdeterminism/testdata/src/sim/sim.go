// Package sim is a simdeterminism testdata fixture: its leaf name matches a
// simulator core package, so entropy sources must be flagged.
package sim

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

type engine struct {
	now int64
	rng *rand.Rand
}

func newEngine(seed int64) *engine {
	// Negative case: seeding a private generator is the sanctioned pattern.
	return &engine{rng: rand.New(rand.NewSource(seed))}
}

func (e *engine) badEntropy() int64 {
	t := time.Now()                     // want `call to time\.Now in simulator code`
	_ = time.Since(time.Unix(0, e.now)) // want `call to time\.Since in simulator code`
	jitter := rand.Intn(10)             // want `global math/rand Intn in simulator code`
	_ = rand.Float64()                  // want `global math/rand Float64 in simulator code`
	pid := os.Getpid()                  // want `os\.Getpid in simulator code`
	_ = os.Getenv("SEED")               // want `os\.Getenv in simulator code`
	return t.UnixNano() + int64(jitter) + int64(pid)
}

func (e *engine) badTimers() {
	// A transport-style retransmit timeout must be an event on the
	// simulation clock, never a runtime timer.
	time.Sleep(10 * time.Millisecond)          // want `time\.Sleep in simulator code`
	_ = time.After(time.Second)                // want `time\.After in simulator code`
	_ = time.Tick(time.Second)                 // want `time\.Tick in simulator code`
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc in simulator code`
	_ = time.NewTimer(time.Second)             // want `time\.NewTimer in simulator code`
	_ = time.NewTicker(time.Second)            // want `time\.NewTicker in simulator code`
}

func (e *engine) badShardDefault() int {
	// The engine must take its shard count from the configuration; sizing it
	// from the host makes the partition machine-dependent.
	n := runtime.NumCPU()      // want `runtime\.NumCPU in the engine core`
	n += runtime.GOMAXPROCS(0) // want `runtime\.GOMAXPROCS in the engine core`
	return n
}

func (e *engine) goodEntropy() int64 {
	// Negative cases: the seeded generator, constants and duration
	// arithmetic are all deterministic.
	d := 10 * time.Millisecond
	v := e.rng.Int63()
	e.now += int64(d) + v
	return e.now
}

func (e *engine) racySelect(a, b chan int) int {
	select { // want `select with 2 channel cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func (e *engine) singleCaseSelect(a chan int) int {
	// Negative case: one channel case plus default cannot race.
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
