// Package tools is a simdeterminism negative fixture: its leaf name is not
// a simulator core package, so wall-clock and global-rand reads are fine
// (CLI tools time themselves and shuffle legitimately).
package tools

import (
	"math/rand"
	"time"
)

func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func Jitter() time.Duration {
	return time.Duration(rand.Intn(1000)) * time.Millisecond
}
