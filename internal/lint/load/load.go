// Package load turns package patterns ("./...") into parsed, type-checked
// packages for the ibvet analyzers. It is the offline counterpart of
// golang.org/x/tools/go/packages: the go command enumerates the build list
// and compiles export data ("go list -export"), and the target packages
// themselves are re-parsed from source so analyzers see full syntax trees
// with comments. Dependencies are never parsed — their types come from the
// compiler's export data, which keeps a whole-tree run fast.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit. A package with in-package test
// files is loaded as its augmented ("foo + foo_test.go") form; external test
// files ("package foo_test") form a second unit of their own.
type Package struct {
	// ImportPath is the unit's import path; external test units carry the
	// "_test" suffix the go tool prints for them.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	// FileNames holds the absolute path of each entry in Files.
	FileNames []string
	Types     *types.Package
	Info      *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	ForTest      string
	Error        *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap builds import path -> export data file for the full dependency
// closure (test imports included) of the patterns. The second map collects
// the test-variant compilations the go tool produces for external test
// packages: testVariants["p"]["q"] is the export of q recompiled against p's
// test-augmented form ("q [p.test]"), which is how an import of q from
// p_test must resolve for type identity to hold.
func exportMap(dir string, patterns []string) (map[string]string, map[string]map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string]string, len(pkgs))
	variants := make(map[string]map[string]string)
	for _, p := range pkgs {
		if p.Export == "" {
			continue
		}
		if p.ForTest != "" {
			plain, _, _ := strings.Cut(p.ImportPath, " [")
			if variants[p.ForTest] == nil {
				variants[p.ForTest] = make(map[string]string)
			}
			variants[p.ForTest][plain] = p.Export
			continue
		}
		if strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		m[p.ImportPath] = p.Export
	}
	return m, variants, nil
}

// exportImporter resolves imports from compiled export data.
type exportImporter struct {
	base types.ImporterFrom
}

// newBaseImporter builds the export-data importer. One instance must be
// shared across every unit of a load: the gc importer caches packages per
// instance, and sharing the cache is what makes *topology.Tree seen through
// export data the identical types.Package everywhere.
func newBaseImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

func (i exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return i.base.ImportFrom(path, dir, 0)
}

// newInfo allocates the resolution maps analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheck parses the named files and type-checks them as one package.
func TypeCheck(fset *token.FileSet, path, name string, fileNames []string, imp types.Importer) (*Package, error) {
	pkg := &Package{ImportPath: path, Fset: fset, Info: newInfo()}
	for _, fn := range fileNames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", fn, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, fn)
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	pkg.Types = tpkg
	return pkg, nil
}

// Packages loads every package matching the patterns (main, library and test
// files alike) from the module rooted at or above dir.
func Packages(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, variants, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	base := newBaseImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", t.ImportPath, t.Error.Err)
		}
		abs := func(names []string) []string {
			var fs []string
			for _, n := range names {
				fs = append(fs, filepath.Join(t.Dir, n))
			}
			return fs
		}
		// Unit 1: the package itself, augmented with in-package test files.
		files := append(abs(t.GoFiles), abs(t.CgoFiles)...)
		files = append(files, abs(t.TestGoFiles)...)
		sort.Strings(files)
		pkg, err := TypeCheck(fset, t.ImportPath, t.Name, files, exportImporter{base: base})
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		// Unit 2: the external test package. Its imports must resolve
		// through the test-variant export data ("q [p.test]") so that the
		// package under test carries its in-package test declarations and
		// every dependency agrees on one identity for it. The variant world
		// is disjoint from the plain one, so this unit gets a fresh
		// importer cache seeded with the overlaid export map.
		if len(t.XTestGoFiles) > 0 {
			xexports := make(map[string]string, len(exports)+len(variants[t.ImportPath]))
			for k, v := range exports {
				xexports[k] = v
			}
			for k, v := range variants[t.ImportPath] {
				xexports[k] = v
			}
			xfiles := abs(t.XTestGoFiles)
			sort.Strings(xfiles)
			xpkg, err := TypeCheck(fset, t.ImportPath+"_test", t.Name+"_test", xfiles, exportImporter{base: newBaseImporter(fset, xexports)})
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// Dir loads the single package found in dir (used by the linttest harness on
// testdata packages, which the go tool itself refuses to enumerate). The
// package's import path is taken from the directory base name, and its
// imports are resolved from compiled export data of the closure reported by
// the go command.
func Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	// A pre-parse pass collects the imports whose export data is needed.
	importSet := map[string]bool{}
	for _, fn := range files {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	var paths []string
	for p := range importSet {
		if p != "unsafe" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	exports := map[string]string{}
	if len(paths) > 0 {
		exports, _, err = exportMap(dir, paths)
		if err != nil {
			return nil, err
		}
	}
	imp := exportImporter{base: newBaseImporter(fset, exports)}
	return TypeCheck(fset, filepath.Base(dir), filepath.Base(dir), files, imp)
}
