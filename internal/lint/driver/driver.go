// Package driver runs a set of analyzers over loaded packages, applies
// "//lint:ignore" suppression directives, and renders the surviving
// diagnostics in the familiar vet format. It is the multichecker half of
// ibvet (cmd/ibvet owns flags and process exit).
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"mlid/internal/lint/analysis"
	"mlid/internal/lint/load"
)

// ignoreDirective is one parsed "//lint:ignore <analyzers> <reason>"
// comment. It suppresses diagnostics of the named analyzers (comma- or
// space-separated, "*" for all) on its own line and on the line below —
// the same placement staticcheck accepts.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
	hasReason bool
}

func (d ignoreDirective) matches(file string, line int, analyzer string) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == "*" || a == analyzer {
			return true
		}
	}
	return false
}

// parseIgnores extracts the suppression directives of one file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, ignoreDirective{
				file:      pos.Filename,
				line:      pos.Line,
				analyzers: strings.Split(fields[0], ","),
				hasReason: len(fields) > 1,
			})
		}
	}
	return out
}

// jsonDiag is one finding in the machine format: a flat object per line, the
// shape cmd/ibvet -json emits and .github/problem-matcher.json parses. Field
// order is fixed (encoding/json preserves struct order), so the matcher's
// regexp can anchor on it.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Run applies every analyzer to every package and writes surviving
// diagnostics to w in the vet text format. It returns the number of
// diagnostics printed; a non-nil error means a package failed to run, not
// that findings exist.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, w io.Writer) (int, error) {
	return run(pkgs, analyzers, w, false)
}

// RunJSON is Run with one JSON object per finding instead of vet text.
func RunJSON(pkgs []*load.Package, analyzers []*analysis.Analyzer, w io.Writer) (int, error) {
	return run(pkgs, analyzers, w, true)
}

func run(pkgs []*load.Package, analyzers []*analysis.Analyzer, w io.Writer, asJSON bool) (int, error) {
	type located struct {
		pos token.Position
		d   analysis.Diagnostic
	}
	var all []located
	for _, pkg := range pkgs {
		var ignores []ignoreDirective
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Path:      pkg.ImportPath,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		diags:
			for _, d := range pass.Diagnostics() {
				pos := pkg.Fset.Position(d.Pos)
				for _, ig := range ignores {
					if ig.matches(pos.Filename, pos.Line, d.Analyzer) && ig.hasReason {
						continue diags
					}
				}
				all = append(all, located{pos: pos, d: d})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].d.Analyzer < all[j].d.Analyzer
	})
	if asJSON {
		enc := json.NewEncoder(w)
		for _, l := range all {
			d := jsonDiag{
				File:     l.pos.Filename,
				Line:     l.pos.Line,
				Col:      l.pos.Column,
				Severity: "error",
				Analyzer: l.d.Analyzer,
				Message:  l.d.Message,
			}
			if err := enc.Encode(d); err != nil {
				return len(all), err
			}
		}
		return len(all), nil
	}
	for _, l := range all {
		fmt.Fprintf(w, "%s: %s (%s)\n", l.pos, l.d.Message, l.d.Analyzer)
	}
	return len(all), nil
}
