package driver_test

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"

	"mlid/internal/lint/analysis"
	"mlid/internal/lint/driver"
	"mlid/internal/lint/findingfmt"
	"mlid/internal/lint/load"
)

// fixture loads the findingfmt testdata package: 6 analyzer-level findings,
// one of which carries a reasoned //lint:ignore directive the driver must
// honor in both output modes.
func fixture(t *testing.T) []*load.Package {
	t.Helper()
	p, err := load.Dir("../findingfmt/testdata/src/verify")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return []*load.Package{p}
}

const wantFindings = 5 // 6 want-comments in the fixture, 1 suppressed

// TestRunTextAppliesIgnores pins the text mode: finding count after
// suppression and the "file:line:col: message (analyzer)" shape.
func TestRunTextAppliesIgnores(t *testing.T) {
	var buf bytes.Buffer
	n, err := driver.Run(fixture(t), []*analysis.Analyzer{findingfmt.Analyzer}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantFindings {
		t.Fatalf("Run reported %d findings, want %d:\n%s", n, wantFindings, buf.String())
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != wantFindings {
		t.Fatalf("printed %d lines for %d findings:\n%s", len(lines), n, buf.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "(findingfmt)") || !strings.Contains(l, "a.go:") {
			t.Errorf("line does not look like a vet diagnostic: %q", l)
		}
	}
}

// TestRunJSONMatchesProblemMatcher renders the same findings as JSON lines
// and holds every line against .github/problem-matcher.json's regexp — the
// CI annotation path — so the emitter and the matcher cannot drift apart.
func TestRunJSONMatchesProblemMatcher(t *testing.T) {
	var buf bytes.Buffer
	n, err := driver.RunJSON(fixture(t), []*analysis.Analyzer{findingfmt.Analyzer}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantFindings {
		t.Fatalf("RunJSON reported %d findings, want %d:\n%s", n, wantFindings, buf.String())
	}

	raw, err := os.ReadFile("../../../.github/problem-matcher.json")
	if err != nil {
		t.Fatal(err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Owner   string `json:"owner"`
			Pattern []struct {
				Regexp string `json:"regexp"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(raw, &matcher); err != nil {
		t.Fatalf("problem-matcher.json: %v", err)
	}
	if len(matcher.ProblemMatcher) == 0 || len(matcher.ProblemMatcher[0].Pattern) == 0 {
		t.Fatal("problem-matcher.json has no pattern")
	}
	re, err := regexp.Compile(matcher.ProblemMatcher[0].Pattern[0].Regexp)
	if err != nil {
		t.Fatalf("matcher regexp: %v", err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != wantFindings {
		t.Fatalf("emitted %d lines for %d findings:\n%s", len(lines), n, buf.String())
	}
	for _, l := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Severity string `json:"severity"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(l), &d); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", l, err)
		}
		if d.File == "" || d.Line == 0 || d.Severity != "error" || d.Analyzer != "findingfmt" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %q", l)
		}
		if !re.MatchString(l) {
			t.Errorf("problem matcher regexp does not match emitted line: %q", l)
		}
	}
}
