// Package pool is the pktpool testdata fixture: uses of a *pkt after the
// pool release call must be flagged; pre-release uses, re-seated variables
// and branch-local releases must not.
package pool

type pkt struct {
	src, dst int
	payload  []byte
}

type event struct {
	p *pkt
	t int64
}

type sim struct {
	free  []*pkt
	stats map[int]int
}

func (s *sim) freePkt(p *pkt) { s.free = append(s.free, p) }

func (s *sim) newPkt() *pkt {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		*p = pkt{}
		return p
	}
	return new(pkt)
}

// badReadAfterRelease reads fields after the release.
func (s *sim) badReadAfterRelease(p *pkt) int {
	s.freePkt(p)
	return p.dst // want `use of p after it was released to the packet pool`
}

// badStoreThrough writes through the released pointer.
func (s *sim) badStoreThrough(p *pkt) {
	s.freePkt(p)
	p.src = 1 // want `store through p after it was released to the packet pool`
}

// badEscape stores the released pointer into longer-lived state.
func (s *sim) badEscape(p *pkt, slots []*pkt) {
	s.freePkt(p)
	slots[0] = p // want `use of p after it was released to the packet pool`
}

// badSelectorChain releases through a field chain and reuses it.
func (s *sim) badSelectorChain(ev event) {
	s.freePkt(ev.p)
	s.stats[ev.p.dst]++ // want `use of ev\.p after it was released to the packet pool`
}

// badDoubleFree releases twice.
func (s *sim) badDoubleFree(p *pkt) {
	s.freePkt(p)
	s.freePkt(p) // want `use of p after it was released to the packet pool`
}

// goodUseBeforeRelease is the sanctioned shape: finish with the packet,
// then release it last.
func (s *sim) goodUseBeforeRelease(p *pkt) int {
	d := p.dst
	s.deliver(p)
	s.freePkt(p)
	return d
}

// goodReseat reuses the variable only after re-seating it.
func (s *sim) goodReseat(p *pkt) *pkt {
	s.freePkt(p)
	p = s.newPkt()
	p.src = 2
	return p
}

// goodFieldReseat re-seating the event kills the chain release.
func (s *sim) goodFieldReseat(ev event) int {
	s.freePkt(ev.p)
	ev.p = s.newPkt()
	return ev.p.dst
}

// goodBranchLocalRelease releases on an early-exit path only; the
// fallthrough still owns the packet.
func (s *sim) goodBranchLocalRelease(p *pkt, drop bool) int {
	if drop {
		s.freePkt(p)
		return 0
	}
	return p.dst
}

func (s *sim) deliver(p *pkt) {}
