package pktpool

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestPktPool(t *testing.T) {
	linttest.Run(t, Analyzer, "pool")
}
