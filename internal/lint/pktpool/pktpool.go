// Package pktpool enforces the packet-pool lifetime invariant: once a *pkt
// is handed to the pool release function (freePkt and friends), no later
// statement in the same block may read it, write through it, or store it —
// the pool may already have recycled and re-zeroed the object for another
// packet, so a late use silently corrupts an unrelated in-flight packet.
// DESIGN.md documents the contract ("the caller guarantees no live reference
// to p remains anywhere in the model"); this analyzer makes it mechanical.
//
// The check is a conservative straight-line dataflow pass per statement
// list: after a release of p (an identifier or a field chain like ev.p),
// every subsequent use of that chain in the same or a nested block is
// flagged until the chain is reassigned (p = s.newPkt(), p = nil, ev = ...).
// Releases inside a conditional branch do not poison the code after the
// branch — the fallthrough path may legitimately still own the packet.
package pktpool

import (
	"go/ast"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pktpool",
	Doc:  "flag uses of a pooled *pkt after it is passed to the pool release function",
	Run:  run,
}

// releaseNames are the pool release entry points.
var releaseNames = map[string]bool{"freePkt": true, "releasePkt": true, "putPkt": true}

// chain is a released lvalue: a root object plus a field path ("" for a bare
// identifier, "p" for ev.p).
type chain struct {
	root types.Object
	path string
}

// chainOf decomposes an expression into a root-object field chain.
func chainOf(pass *analysis.Pass, e ast.Expr) (chain, bool) {
	var fields []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(x)
			if obj == nil {
				return chain{}, false
			}
			return chain{root: obj, path: strings.Join(fields, ".")}, true
		case *ast.SelectorExpr:
			fields = append([]string{x.Sel.Name}, fields...)
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return chain{}, false
		}
	}
}

// extendsOrEquals reports whether use names the released chain itself or
// something reached through it (use "ev.p.dst" vs released "ev.p").
func extendsOrEquals(use, released chain) bool {
	if use.root != released.root {
		return false
	}
	return use.path == released.path ||
		strings.HasPrefix(use.path, released.path+".") ||
		released.path == "" && use.path != ""
}

// prefixOfReleased reports whether an assignment to lhs re-seats the
// released chain (assigning p or ev kills a release of ev.p).
func prefixOfReleased(lhs, released chain) bool {
	if lhs.root != released.root {
		return false
	}
	return lhs.path == released.path ||
		strings.HasPrefix(released.path, lhs.path+".") ||
		lhs.path == ""
}

// isPktPointer reports whether t is a *T with T's name ending in "pkt"
// (pkt, upPkt, ...): the pooled packet convention.
func isPktPointer(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	name := strings.ToLower(n.Obj().Name())
	return name == "pkt" || strings.HasSuffix(name, "pkt")
}

// releaseArg returns the released chain if call is a pool release of a *pkt.
func releaseArg(pass *analysis.Pass, call *ast.CallExpr) (chain, bool) {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return chain{}, false
	}
	if !releaseNames[name] || len(call.Args) != 1 {
		return chain{}, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || !isPktPointer(tv.Type) {
		return chain{}, false
	}
	return chainOf(pass, call.Args[0])
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBlock(pass, fn.Body.List, nil)
				}
				return false
			case *ast.FuncLit:
				checkBlock(pass, fn.Body.List, nil)
				return false
			}
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list in order. released carries the chains
// freed by *earlier statements of enclosing lists*; frees inside this list
// extend a local copy so they only poison later statements of this list and
// blocks nested under them.
func checkBlock(pass *analysis.Pass, stmts []ast.Stmt, released []chain) {
	rel := append([]chain(nil), released...)
	for _, stmt := range stmts {
		// 1. Uses of already-released chains in this statement. An
		// assignment needs care: its right side and indexed left sides are
		// reads, but a plain left side re-seats the chain (p = s.newPkt())
		// and must kill the release, not trip it — while a write *through*
		// the released pointer (p.dst = x) is still a violation.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				reportUses(pass, rhs, rel)
			}
			for _, lhs := range as.Lhs {
				c, ok := chainOf(pass, lhs)
				if !ok {
					reportUses(pass, lhs, rel) // arr[p.id] = ... reads p
					continue
				}
				for _, r := range rel {
					if extendsOrEquals(c, r) && !prefixOfReleased(c, r) {
						pass.Reportf(lhs.Pos(), "store through %s after it was released to the packet pool: the pool may already have recycled it", displayChain(r))
					}
				}
				rel = filterKilled(rel, c)
			}
		} else if len(rel) > 0 {
			reportUses(pass, stmt, rel)
		}
		// 2. New releases performed directly by this statement (not inside
		// a nested block, whose flow is handled by the recursion below).
		for _, c := range directReleases(pass, stmt) {
			rel = append(rel, c)
		}
		// 3. Nested blocks inherit the current released set.
		for _, body := range nestedBlocks(stmt) {
			checkBlock(pass, body, rel)
		}
	}
}

// filterKilled drops released chains re-seated by an assignment to lhs.
func filterKilled(rel []chain, lhs chain) []chain {
	out := rel[:0]
	for _, c := range rel {
		if !prefixOfReleased(lhs, c) {
			out = append(out, c)
		}
	}
	return out
}

// directReleases finds release calls in stmt that are not nested under an
// inner block (those are found by the recursive walk).
func directReleases(pass *analysis.Pass, stmt ast.Stmt) []chain {
	var out []chain
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c, ok := releaseArg(pass, call); ok {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// nestedBlocks lists the statement lists directly under stmt.
func nestedBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				out = append(out, b.List)
			} else {
				out = append(out, []ast.Stmt{s.Else})
			}
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

// reportUses flags reads of released chains within node, skipping the
// release calls themselves and skipping nested blocks (handled recursively
// with their own inherited set).
func reportUses(pass *analysis.Pass, node ast.Node, rel []chain) {
	if len(rel) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.CaseClause, *ast.CommClause:
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		c, ok := chainOf(pass, e)
		if !ok {
			return true
		}
		for _, r := range rel {
			if extendsOrEquals(c, r) {
				pass.Reportf(e.Pos(), "use of %s after it was released to the packet pool: the pool may already have recycled it", displayChain(r))
				return false
			}
		}
		return false // chainOf consumed the whole selector chain
	})
}

// displayChain renders a released chain for diagnostics.
func displayChain(c chain) string {
	if c.path == "" {
		return c.root.Name()
	}
	return c.root.Name() + "." + c.path
}
