// Package verify is the findingfmt testdata fixture: a stand-in for
// mlid/internal/verify with the same Finding shape. Literals that omit
// Severity or Witness must be flagged; complete keyed literals, complete
// positional literals, and non-Finding types must not.
package verify

// Severity mirrors the real verify.Severity.
type Severity int

// Info, Warning, Error mirror the real constants; Info is the zero value,
// which is why an omitted Severity is indistinguishable from a triaged one.
const (
	Info Severity = iota
	Warning
	Error
)

// Finding mirrors the real verify.Finding field-for-field.
type Finding struct {
	Analyzer string
	Severity Severity
	Location string
	Message  string
	Witness  []string
}

// report collects findings like the real Report does.
type report struct {
	findings []Finding
}

func (r *report) add(f Finding) { r.findings = append(r.findings, f) }

// good constructions: both fields explicit, in any container.
func good(r *report) {
	r.add(Finding{
		Analyzer: "reachability",
		Severity: Error,
		Location: "SW<0,0>:1",
		Message:  "forwarding loop",
		Witness:  []string{"SW<0,0>:1", "SW<0,1>:4"},
	})
	r.add(Finding{
		Analyzer: "quality",
		Severity: Info,
		Location: "fabric",
		Message:  "self-contained summary",
		Witness:  nil, // considered and declared empty: fine
	})
	// A complete positional literal names every field to compile.
	r.add(Finding{"addressing", Warning, "P(3)", "LMC overlap", nil})
	// Pointers and slices of findings are checked through the same literal.
	_ = &Finding{Analyzer: "deadlock", Severity: Error, Location: "VL0", Message: "cycle", Witness: []string{"a", "b"}}
	_ = []Finding{{Analyzer: "x", Severity: Info, Location: "y", Message: "z", Witness: nil}}
}

// bad constructions: one or both contract fields omitted.
func bad(r *report) {
	r.add(Finding{}) // want `must set Severity and Witness`
	r.add(Finding{   // want `must set Severity and Witness`
		Analyzer: "reachability",
		Location: "SW<1,0>:2",
		Message:  "dead end",
	})
	r.add(Finding{ // want `must set Witness explicitly`
		Analyzer: "deadlock",
		Severity: Error,
		Location: "VL1",
		Message:  "cycle with no witness recorded",
	})
	r.add(Finding{ // want `must set Severity explicitly`
		Analyzer: "addressing",
		Location: "P(9)",
		Message:  "duplicate LID",
		Witness:  []string{"P(9)", "P(12)"},
	})
	_ = []Finding{
		{Analyzer: "quality", Location: "root", Message: "imbalance", Witness: nil}, // want `must set Severity explicitly`
	}
}

// helper assembles a Finding field by field: the analyzer still reports the
// empty literal (this harness checks raw diagnostics), but the driver
// suppresses it through the reasoned directive — the sanctioned escape.
func helper() Finding {
	//lint:ignore findingfmt fields are filled in by the caller, field by field
	f := Finding{} // want `must set Severity and Witness`
	f.Severity = Warning
	f.Witness = nil
	return f
}

// notAFinding proves the analyzer keys on the type, not the field names.
type notAFinding struct {
	Analyzer string
	Severity Severity
	Witness  []string
}

func other() notAFinding {
	return notAFinding{Analyzer: "x"} // different type: not flagged
}
