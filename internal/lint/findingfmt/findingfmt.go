// Package findingfmt enforces the verify package's construction contract:
// every composite literal of type verify.Finding must set the Severity and
// Witness fields explicitly (by key, or by a complete positional literal).
// The zero Severity is Info and the zero Witness is nil — both legal values —
// so an omitted field is indistinguishable from a considered one. The
// contract makes the author's intent visible: "Severity: Info" means the
// finding was triaged, "Witness: nil" means the message is self-contained,
// and an empty Finding{} means someone forgot both.
//
// A deliberate exception (e.g. a test helper assembling findings field by
// field) is suppressed the usual way:
//
//	//lint:ignore findingfmt fields are filled in by the helper below
package findingfmt

import (
	"go/ast"
	"go/types"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "findingfmt",
	Doc:  "require verify.Finding literals to set Severity and Witness explicitly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			if !isFinding(tv.Type) {
				return true
			}
			check(pass, lit)
			return true
		})
	}
	return nil
}

// isFinding reports whether t is the verify package's Finding struct. The
// type is matched by name — a struct named Finding defined in a package
// named verify — so the analyzer works on the real mlid/internal/verify and
// on testdata fixtures alike.
func isFinding(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Finding" || obj.Pkg() == nil || obj.Pkg().Name() != "verify" {
		return false
	}
	_, ok = named.Underlying().(*types.Struct)
	return ok
}

func check(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			// A positional literal must name every field to compile when
			// complete; an incomplete one is a compile error, so anything
			// that type-checked here sets Severity and Witness.
			return
		}
	}
	hasSeverity, hasWitness := false, false
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		id, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch id.Name {
		case "Severity":
			hasSeverity = true
		case "Witness":
			hasWitness = true
		}
	}
	switch {
	case !hasSeverity && !hasWitness:
		pass.Reportf(lit.Pos(), "verify.Finding literal must set Severity and Witness explicitly (zero values are legal, so omission hides intent)")
	case !hasSeverity:
		pass.Reportf(lit.Pos(), "verify.Finding literal must set Severity explicitly (the zero value is Info)")
	case !hasWitness:
		pass.Reportf(lit.Pos(), "verify.Finding literal must set Witness explicitly (use Witness: nil when the message is self-contained)")
	}
}
