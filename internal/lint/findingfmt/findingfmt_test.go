package findingfmt

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestFindingFmt(t *testing.T) {
	linttest.Run(t, Analyzer, "verify")
}
