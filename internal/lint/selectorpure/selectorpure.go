// Package selectorpure enforces the path-selection purity contract: a
// Selector's Select method must be a pure function of its SelectContext.
// The shard-determinism matrix pins every built-in selector bit-for-bit
// across shard counts, and that holds only because Select consults nothing
// but the context — the candidate mask, the flow identity, the source's
// seeded RNG stream, and the read-only CongestionView. The analyzer checks
// every method named Select on a receiver type ending in "Selector" inside
// package sim's non-test files and rejects:
//
//   - calls into package time — a selector has no business on any clock;
//     even simulated time is withheld, so policies cannot key on phase;
//   - calls into package math/rand (including the constructors) — all
//     randomness must be drawn from SelectContext.RNG, the lane-local
//     seeded stream; a fresh or global generator breaks reproducibility
//     and shard determinism;
//   - any use of a value of type Sim or *Sim — the engine's state is
//     reachable only through the CongestionView window, whose counters are
//     mutated exclusively on the owning shard lane.
//
// A justified exception is suppressed the usual way, with a reasoned
// directive:
//
//	//lint:ignore selectorpure <why this read is shard-deterministic>
package selectorpure

import (
	"go/ast"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "selectorpure",
	Doc:  "forbid clocks, non-context randomness and engine-state access in Selector.Select methods",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	leaf := pass.Path
	if i := strings.LastIndexByte(leaf, '/'); i >= 0 {
		leaf = leaf[i+1:]
	}
	if strings.TrimSuffix(leaf, "_test") != "sim" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || fn.Name.Name != "Select" {
				continue
			}
			if !strings.HasSuffix(recvTypeName(fn), "Selector") {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// recvTypeName extracts the receiver's type name ("rankSelector" from
// "func (rankSelector) Select" or "func (s *fooSelector) Select").
func recvTypeName(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkBody walks one Select method and reports impurities.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if pn := pass.PkgNameOf(n.X); pn != nil {
				if _, isFunc := pass.ObjectOf(n.Sel).(*types.Func); !isFunc {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					pass.Reportf(n.Pos(), "time.%s in Select: a selector sees no clock — key decisions on SelectContext.Seq or the CongestionView", n.Sel.Name)
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "math/rand %s in Select: draw from SelectContext.RNG, the seeded lane-local stream", n.Sel.Name)
				}
				return true
			}
		case *ast.Ident:
			if usesSim(pass, n) {
				pass.Reportf(n.Pos(), "%s has type %s in Select: engine state is reachable only through the CongestionView", n.Name, typeName(pass, n))
			}
		}
		return true
	})
}

// usesSim reports whether the identifier denotes a value of type Sim or
// *Sim from the package under analysis.
func usesSim(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Sim" && named.Obj().Pkg() == pass.Pkg
}

// typeName renders the identifier's type for the diagnostic.
func typeName(pass *analysis.Pass, id *ast.Ident) string {
	if obj := pass.ObjectOf(id); obj != nil {
		return obj.Type().String()
	}
	return "?"
}
