package selectorpure

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestSelectorPure(t *testing.T) {
	linttest.Run(t, Analyzer, "sim")
}
