// Package sim is a selectorpure testdata fixture: its leaf name matches the
// simulator package, so Select methods on *Selector types are checked for
// purity violations.
package sim

import (
	"math/rand"
	"time"
)

// Sim stands in for the engine; Select must never reach it.
type Sim struct {
	clock int64
}

// SelectContext mirrors the real context shape.
type SelectContext struct {
	Seq  uint32
	RNG  *rand.Rand
	Mask uint64
	sim  *Sim
}

type badClockSelector struct{}

func (badClockSelector) Select(c *SelectContext) (int, bool) {
	if time.Now().UnixNano()%2 == 0 { // want `time\.Now in Select`
		return 1, false
	}
	time.Sleep(time.Millisecond) // want `time\.Sleep in Select`
	return 0, false
}

type badRandSelector struct{}

func (badRandSelector) Select(c *SelectContext) (int, bool) {
	k := rand.Intn(4)                         // want `math/rand Intn in Select`
	rng := rand.New(rand.NewSource(int64(k))) // want `math/rand New in Select` `math/rand NewSource in Select`
	return rng.Intn(2), false
}

type badEngineSelector struct{}

func (badEngineSelector) Select(c *SelectContext) (int, bool) {
	s := c.sim                     // want `s has type \*sim\.Sim` `sim has type \*sim\.Sim`
	return int(s.clock % 4), false // want `s has type \*sim\.Sim`
}

type goodSelector struct{}

// Negative case: drawing from the context's seeded stream and keying on the
// packet sequence is exactly the sanctioned shape.
func (goodSelector) Select(c *SelectContext) (int, bool) {
	if c.Seq%2 == 0 {
		return c.RNG.Intn(2), false
	}
	return 0, false
}

type ignoredSelector struct{}

// The driver honors a reasoned directive (linttest deliberately does not,
// so the want comment below documents the raw diagnostic).
func (ignoredSelector) Select(c *SelectContext) (int, bool) {
	//lint:ignore selectorpure fixture: demonstrates the suppression syntax
	return rand.Intn(2), false // want `math/rand Intn in Select`
}

// Negative case: a helper that is not a Select method may use whatever it
// wants — purity is enforced at the policy boundary.
func shuffleSeed() int64 { return time.Now().UnixNano() + int64(rand.Intn(9)) }

// Negative case: a Select method on a type not named *Selector is out of
// scope (it is not part of the policy family).
type router struct{}

func (router) Select(c *SelectContext) (int, bool) { return rand.Intn(2), false }
