// Package analysis defines the analyzer model for ibvet, the repository's
// static-analysis suite. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a name, a doc string and
// a Run function over a Pass — so each checker reads like a standard vet
// pass and could be ported to the real framework verbatim. The build runs
// hermetically offline, so the framework itself is reimplemented on the
// standard library (go/ast, go/types) instead of importing x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to a package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path as the build system knows it
	// (testdata packages use their directory name).
	Path string
	Fset *token.FileSet
	// Files holds the parsed syntax trees, comments included.
	Files []*ast.File
	Pkg   *types.Package
	// TypesInfo records type and object resolution for every expression
	// and identifier in Files.
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer names the originating check (filled by Report).
	Analyzer string
}

// Report records a diagnostic against the pass.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// ObjectOf resolves an identifier to its types.Object, consulting both uses
// and defs (the common lookup every analyzer needs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// PkgNameOf reports the imported package an identifier refers to, or nil:
// the qualifier test behind "is this call time.Now or a method on a local
// variable that happens to be named time".
func (p *Pass) PkgNameOf(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}
