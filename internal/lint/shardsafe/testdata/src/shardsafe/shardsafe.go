// Package shardsafe is the fixture for the shardsafe analyzer: a miniature
// sharded engine with barrier-only window buffers, audited barrier-protocol
// functions, and unaudited code that reaches into the buffers.
package shardsafe

type call struct {
	t   int64
	vgs uint64
}

type lane struct {
	id  int
	now int64
	// calls is the lane's window call log, appended while the lane runs its
	// window and read by the coordinator's replay.
	// shardsafe: barrier-only
	calls []call
	// outbox holds cross-shard handoffs, one slice per target lane.
	// shardsafe: barrier-only
	outbox [][]int32
	// scratch is lane-private; unmarked fields are never restricted.
	scratch []int
}

// record appends to the executing lane's own window log.
// shardsafe: barrier — runs inside the lane's window on its own buffers.
func (l *lane) record(c call) {
	l.calls = append(l.calls, c)
	l.outbox[0] = append(l.outbox[0], 1)
}

// replay merges every lane's log while the workers are parked.
// shardsafe: barrier — coordinator phase, workers parked.
func replay(lanes []*lane) {
	for _, l := range lanes {
		_ = l.calls
		_ = l.outbox
	}
}

// peek reads another lane's window log with no barrier held.
func peek(l *lane) int {
	n := len(l.calls)    // want `barrier-only field calls in peek`
	for range l.outbox { // want `barrier-only field outbox in peek`
		n++
	}
	l.scratch = append(l.scratch, n) // unmarked: fine
	return n
}

// build constructs a lane outside the protocol; keyed composite literals
// count as accesses too.
func build() *lane {
	return &lane{
		id:     1,
		calls:  nil, // want `barrier-only field calls in build`
		outbox: nil, // want `barrier-only field outbox in build`
	}
}

// newLane is the audited constructor.
// shardsafe: barrier — lanes are built before any worker starts.
func newLane(id int) *lane {
	return &lane{id: id, calls: nil, outbox: make([][]int32, 1)}
}

var bootstrap = &lane{
	calls: []call{{t: 1}}, // want `barrier-only field calls in package initialization`
}
