// Package shardsafe enforces the sharded engine's barrier discipline: state
// that one shard publishes for other shards — window call logs, cross-shard
// packet snapshots, outboxes — is only coherent while the worker goroutines
// are parked at a barrier (or while the owning lane is alone inside its
// window). Reading another lane's buffers from arbitrary code is a data race
// that the race detector only catches when the schedule happens to expose it;
// this analyzer makes the discipline static.
//
// The contract is comment-driven, like a lock annotation:
//
//   - a struct field whose doc (or trailing) comment contains the marker
//     "shardsafe: barrier-only" is declared barrier-protocol state;
//   - a function or method whose doc comment contains the marker
//     "shardsafe: barrier" is an audited participant in the barrier protocol
//     (it runs while workers are parked, or touches only the executing lane's
//     own buffers inside its window);
//   - every access to a marked field outside an audited function is reported.
//
// New code that reaches into the window buffers is therefore forced through
// an explicit audit: either it belongs to the protocol and gets the marker
// (with the reasoning in its doc comment), or it is a bug. Test files are
// exempt — they run the engine through Run, which serializes at barriers.
package shardsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc:  "restrict access to barrier-only sharded-engine state to audited barrier-protocol functions",
	Run:  run,
}

const (
	fieldMarker = "shardsafe: barrier-only"
	funcMarker  = "shardsafe: barrier"
)

func run(pass *analysis.Pass) error {
	marked := markedFields(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasMarker(d.Doc, funcMarker) || d.Body == nil {
					continue
				}
				checkBody(pass, marked, d)
			case *ast.GenDecl:
				// Package-level initializers never hold the barrier.
				checkInit(pass, marked, d)
			}
		}
	}
	return nil
}

// markedFields collects the objects of struct fields whose comments carry the
// barrier-only marker.
func markedFields(pass *analysis.Pass) map[types.Object]string {
	marked := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, fieldMarker) && !hasMarker(field.Comment, fieldMarker) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.ObjectOf(name); obj != nil {
						marked[obj] = name.Name
					}
				}
			}
			return true
		})
	}
	return marked
}

// hasMarker reports whether the comment group contains the marker string.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker)
}

// checkBody reports every selector access to a marked field inside an
// unaudited function.
func checkBody(pass *analysis.Pass, marked map[types.Object]string, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		reportMarkedUse(pass, marked, n, fd.Name.Name)
		return true
	})
}

// checkInit applies the same rule to package-level value specs.
func checkInit(pass *analysis.Pass, marked map[types.Object]string, gd *ast.GenDecl) {
	ast.Inspect(gd, func(n ast.Node) bool {
		reportMarkedUse(pass, marked, n, "package initialization")
		return true
	})
}

// reportMarkedUse flags one node if it is a reference to a marked field:
// either a selector access (x.f) or a keyed use in a composite literal
// (T{f: ...}).
func reportMarkedUse(pass *analysis.Pass, marked map[types.Object]string, n ast.Node, where string) {
	var id *ast.Ident
	switch x := n.(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.KeyValueExpr:
		k, ok := x.Key.(*ast.Ident)
		if !ok {
			return
		}
		id = k
	default:
		return
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return
	}
	if name, ok := marked[obj]; ok {
		pass.Reportf(id.Pos(), "access to barrier-only field %s in %s, which is not marked \"%s\": cross-shard window state is only coherent at barriers", name, where, funcMarker)
	}
}
