package shardsafe

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestShardsafe(t *testing.T) {
	linttest.Run(t, Analyzer, "shardsafe")
}
