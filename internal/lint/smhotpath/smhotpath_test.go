package smhotpath

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestSMHotPath(t *testing.T) {
	linttest.Run(t, Analyzer, "sim")
}
