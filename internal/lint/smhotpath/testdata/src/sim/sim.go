// Package sim is an smhotpath testdata fixture: its leaf name matches the
// simulator package, so the per-event SM handlers named in smHandlers must
// not clone, export, or scan whole forwarding tables.
package sim

type lft struct {
	entries []uint8
}

func (l *lft) Clone() *lft {
	out := &lft{entries: make([]uint8, len(l.entries))}
	copy(out.entries, l.entries)
	return out
}

func (l *lft) Entries() []uint8 { return l.entries }
func (l *lft) Size() int        { return len(l.entries) }

type delta struct {
	lid  int
	port uint8
}

type faultRun struct {
	lfts    []*lft
	staged  []delta
	lftSize int
}

type Sim struct {
	faults  *faultRun
	lftSize int
}

// smRepair is a handler: every construct below is a violation.
func (s *Sim) smRepair(deadView [][2]int32) {
	fr := s.faults
	for _, l := range fr.lfts { // want `per-switch table sweep in SM handler smRepair`
		shadow := l.Clone() // want `full-table Clone in SM handler smRepair`
		_ = shadow
	}
	for lid := 0; lid < s.lftSize; lid++ { // want `LID-space scan in SM handler smRepair`
		_ = lid
	}
	_ = deadView
}

// applySMP is a handler: a full diff via Entries and a Size-bounded scan are
// both flagged.
func (s *Sim) applySMP(idx int) {
	l := s.faults.lfts[idx]
	raw := l.Entries() // want `full-table Entries export in SM handler applySMP`
	for lid := 0; lid < l.Size(); lid++ { // want `LID-space scan in SM handler applySMP`
		_ = raw[lid]
	}
}

// applyLFTUpdate is a handler, but delta iteration, index arithmetic with
// lftSize, and dead-link loops are exactly what it should do: no findings.
func (s *Sim) applyLFTUpdate(idx int) {
	fwdBase := idx * s.lftSize
	for _, d := range s.faults.staged {
		_ = fwdBase + d.lid
	}
}

// rebuildTables is cold (not in smHandlers): identical constructs are fine.
func (s *Sim) rebuildTables() {
	for _, l := range s.faults.lfts {
		cp := l.Clone()
		for lid := 0; lid < cp.Size(); lid++ {
			_ = cp.Entries()[lid]
		}
	}
}
