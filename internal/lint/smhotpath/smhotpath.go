// Package smhotpath enforces the control-plane's incremental-repair
// contract: the simulator's per-event SM handlers — trap intake, repair
// recomputation, SMP transaction steps, table application — must do work
// proportional to the *change* (the dirty switches and their delta entries),
// never to the whole fabric. PR 10 rebuilt SM recovery around a persistent
// core.RepairState evolved by deltas; before that, every trap cloned every
// forwarding table and diffed the full LID space, which is O(switches x
// LID-space) per event and was the dominant cost of chaos campaigns at
// FT(32,2) scale. This analyzer keeps the full-table idioms from creeping
// back into the handlers:
//
//   - .Clone() calls — cloning a forwarding table copies the whole LID
//     space; the repair state already holds the evolving target, and the
//     fabric's live tables are updated entry-by-entry from staged deltas;
//   - .Entries() calls — exporting a table's dense backing array is how a
//     full-table diff starts; diff by delta instead (RepairIncremental
//     already emits exactly the entries that changed);
//   - for-loops whose condition scans the LID space (a .Size() call or the
//     compiled lftSize bound) — a per-event handler must iterate delta
//     entries or dead links, never all LIDs;
//   - ranging over a table set (.lfts / .LFTs fields) — per-switch sweeps
//     belong in configuration and end-of-run verification, not handlers.
//
// Only the functions named in smHandlers are checked, and only inside
// package sim's non-test files: configuration, verification and reporting
// code legitimately walks whole tables. A justified exception is suppressed
// the usual way, with a reasoned directive:
//
//	//lint:ignore smhotpath one-time rebuild after SM failover, not per-trap
package smhotpath

import (
	"go/ast"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "smhotpath",
	Doc:  "forbid full-table clones, exports and LID-space scans in the simulator's per-event SM handlers",
	Run:  run,
}

// smHandlers names the per-event SM functions: everything a trap, SMP, or
// sweep tick reaches. Cold entry points that neighbor them (build, Run, the
// fault-plan compiler) are deliberately absent.
var smHandlers = map[string]bool{
	// oracle SM (faults.go)
	"smTrap": true, "smRepair": true, "applyLFTUpdate": true,
	// in-band SM (insm.go)
	"trapArrive": true, "inbandRepair": true,
	"sendSMP": true, "smpArrive": true, "smpAck": true, "smpTimeout": true,
	"applySMP": true, "smSweep": true,
}

func run(pass *analysis.Pass) error {
	leaf := pass.Path
	if i := strings.LastIndexByte(leaf, '/'); i >= 0 {
		leaf = leaf[i+1:]
	}
	if strings.TrimSuffix(leaf, "_test") != "sim" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !smHandlers[fn.Name.Name] {
				continue
			}
			checkHandler(pass, fn)
		}
	}
	return nil
}

func checkHandler(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || len(n.Args) != 0 {
				return true
			}
			switch sel.Sel.Name {
			case "Clone":
				pass.Reportf(n.Pos(), "full-table Clone in SM handler %s: cloning copies the whole LID space per event; evolve the persistent repair state by delta instead", name)
			case "Entries":
				pass.Reportf(n.Pos(), "full-table Entries export in SM handler %s: a dense export is how an O(LID-space) diff starts; consume the repair delta instead", name)
			}
		case *ast.ForStmt:
			if n.Cond != nil && scansLIDSpace(n.Cond) {
				pass.Reportf(n.Pos(), "LID-space scan in SM handler %s: the loop bound covers every LID; iterate the delta entries or dead links instead", name)
			}
		case *ast.RangeStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				if nm := sel.Sel.Name; nm == "lfts" || nm == "LFTs" {
					pass.Reportf(n.Pos(), "per-switch table sweep in SM handler %s: ranging over every forwarding table is O(switches) per event; touch only the dirty switches' deltas", name)
				}
			}
		}
		return true
	})
}

// scansLIDSpace reports whether a loop condition's bound is the LID space: a
// .Size() call on a table, or the simulator's compiled lftSize bound.
func scansLIDSpace(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Size" && len(n.Args) == 0 {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "lftSize" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "lftSize" {
				found = true
			}
		}
		return !found
	})
	return found
}
