// Package maporder flags range-over-map loops whose bodies are sensitive to
// iteration order. Go randomizes map iteration per range statement, so any
// ordered effect produced inside such a loop — an appended slice, a scheduled
// event, an emitted report line, a floating-point accumulation, a
// tie-breaking assignment — varies run to run and breaks the simulator's
// bit-for-bit reproducibility contract.
//
// Ordered effects recognized inside a map-range body:
//
//   - append to a slice declared outside the loop (the slice's element order
//     becomes the map's iteration order), unless that slice is passed to a
//     sort.*/slices.* call after the loop — the standard collect-then-sort
//     idiom;
//   - a channel send;
//   - a call to an emitting function — names like schedule, send, push,
//     enqueue, emit, print/printf/println, fprintf, write/writestring, and
//     the subnet-manager sweep verbs diff/observe/stage/reset/redrive — when
//     the receiver or an argument refers outside the loop;
//   - a compound assignment (+=, *=, ...) to an outside variable of
//     floating-point, complex or string type: those operations are not
//     associative or not commutative, so the result depends on order (integer
//     accumulation is exact and commutative, hence exempt);
//   - a plain assignment to an outside, non-indexed lvalue — the
//     "if v > max { max, argmax = v, k }" pattern, whose tie-break follows
//     map order.
//
// Writes to indexed slots (m2[k] = v, slice[i] = v) are order-independent
// and never flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mlid/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops with iteration-order-dependent effects",
	Run:  run,
}

// sinkNames are callee names (lowercased) that emit in call order. The
// sharded engine's barrier verbs are included: insert feeds a calendar
// bucket whose slot order is append order, and merge/distribute move window
// buffers between lanes in their canonical (time, sequence) order — calling
// any of them per map key would replace that order with map iteration order.
// The subnet manager's sweep-diff verbs are included too: diff compares the
// discovered port state against the SM's shadow view and reports deltas in
// call order, observe feeds liveness samples to the failover automaton (whose
// takeover decision follows the first observation that sees the master down),
// and stage/reset/redrive open or re-open SMP transactions whose indices —
// and hence the whole retransmit schedule — are assigned in call order.
var sinkNames = map[string]bool{
	"schedule": true, "send": true, "push": true, "enqueue": true,
	"emit": true, "print": true, "printf": true, "println": true,
	"fprint": true, "fprintf": true, "fprintln": true,
	"write": true, "writestring": true, "writebyte": true, "writerune": true,
	"insert": true, "merge": true, "distribute": true,
	"diff": true, "diffdeadlinks": true, "observe": true,
	"stage": true, "reset": true, "redrive": true,
}

// sortCalls are qualified functions that establish a deterministic order for
// a collected slice.
var sortCalls = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Ints": true, "sort.Strings": true,
	"sort.Float64s": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc scans one function body for map ranges. fnBody is also the
// region searched for collect-then-sort exemptions.
func checkFunc(pass *analysis.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fnBody, rs)
		return true
	})
}

// outside reports whether the identifier's object is declared outside the
// range statement (loop variables and body-locals are inside).
func outside(pass *analysis.Pass, rs *ast.RangeStmt, id *ast.Ident) bool {
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// rootIdent walks to the base identifier of an lvalue/receiver chain:
// a, a.b.c, *a, a.b[i] all root at a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// hasIndexedStep reports whether the lvalue chain goes through an index
// expression (writes to distinct keyed slots are order-independent).
func hasIndexedStep(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			return true
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// calleeName extracts the called function or method's name, lowercased.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return strings.ToLower(fn.Name)
	case *ast.SelectorExpr:
		return strings.ToLower(fn.Sel.Name)
	}
	return ""
}

// isAppendTo reports whether the assignment is `x = append(x, ...)` and
// returns x's root identifier.
func isAppendTo(as *ast.AssignStmt) (*ast.Ident, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return nil, false
	}
	return rootIdent(as.Lhs[0]), true
}

// sortedAfter reports whether obj is passed to a sort call located after
// pos anywhere in the function body.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pass.PkgNameOf(sel.X)
		if pn == nil || !sortCalls[pn.Imported().Name()+"."+sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && pass.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// checkMapRange applies the ordered-effect rules to one map-range body.
func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: receivers observe map iteration order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkAssign(pass, fnBody, rs, n)
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	// x = append(x, ...): ordered collection — fine when the slice is sorted
	// after the loop (the collect-then-sort idiom), flagged otherwise.
	if root, ok := isAppendTo(as); ok {
		if root == nil || !outside(pass, rs, root) {
			return
		}
		if obj := pass.ObjectOf(root); obj != nil && sortedAfter(pass, fnBody, obj, rs.End()) {
			return
		}
		pass.Reportf(as.Pos(), "append to %s inside range over map without sorting afterwards: element order follows map iteration order", root.Name)
		return
	}
	if as.Tok == token.DEFINE {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		root := rootIdent(lhs)
		if root == nil || !outside(pass, rs, root) {
			continue
		}
		if hasIndexedStep(lhs) {
			// m2[k] = v / slice[i].f = v: distinct keyed slots commute.
			continue
		}
		if as.Tok == token.ASSIGN {
			pass.Reportf(as.Pos(), "assignment to %s inside range over map: last/tie-breaking writer follows map iteration order; iterate sorted keys instead", exprString(lhs))
			return
		}
		// Compound assignment: exact commutative accumulations (integers)
		// are order-independent; float, complex and string ones are not.
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsInteger != 0, b.Info()&types.IsBoolean != 0:
				continue
			case b.Info()&(types.IsFloat|types.IsComplex) != 0:
				pass.Reportf(as.Pos(), "floating-point accumulation into %s inside range over map: addition is not associative, so the result depends on iteration order", exprString(lhs))
				return
			case b.Info()&types.IsString != 0:
				pass.Reportf(as.Pos(), "string concatenation into %s inside range over map follows map iteration order", exprString(lhs))
				return
			}
		}
	}
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	name := calleeName(call)
	if !sinkNames[name] {
		return
	}
	// The sink must touch state that outlives the loop: an outside receiver
	// or an outside argument (&buf, sb, the engine, ...).
	touchesOutside := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pn := pass.PkgNameOf(sel.X); pn != nil {
			// fmt.Print*/log.Print* write to a process-global stream: an
			// ordered sink no matter what the arguments are. (Fprint* is
			// judged by its writer argument below.)
			if p := pn.Imported().Path(); (p == "fmt" || p == "log") &&
				(name == "print" || name == "printf" || name == "println") {
				touchesOutside = true
			}
		} else { // method call
			if id := rootIdent(sel.X); id != nil && outside(pass, rs, id) {
				touchesOutside = true
			}
		}
	}
	for _, arg := range call.Args {
		if id := rootIdent(arg); id != nil && outside(pass, rs, id) {
			// Only writable sinks matter; plain value reads of outside
			// variables are fine. Pointers, builders and writers are what
			// the sink list's functions mutate, which the root test plus
			// the name filter approximates well in practice.
			touchesOutside = true
		}
	}
	if touchesOutside {
		pass.Reportf(call.Pos(), "call to %s inside range over map emits in map iteration order; iterate sorted keys instead", calleeDisplay(call))
	}
}

// calleeDisplay renders the callee for diagnostics.
func calleeDisplay(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

// exprString renders simple expressions (identifier/selector chains) for
// messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	}
	return "expression"
}
