package maporder

import (
	"testing"

	"mlid/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, Analyzer, "maporder")
}
