// Package maporder is the maporder testdata fixture: ordered effects inside
// range-over-map loops must be flagged; sorted-key idioms and
// order-independent bodies must not.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

type engine struct {
	events []int
}

func (e *engine) schedule(t int) { e.events = append(e.events, t) }

// badSchedule schedules events in map iteration order.
func badSchedule(e *engine, deadlines map[string]int) {
	for _, t := range deadlines {
		e.schedule(t) // want `call to e\.schedule inside range over map`
	}
}

// goodSchedule collects and sorts the keys first — the sanctioned idiom.
func goodSchedule(e *engine, deadlines map[string]int) {
	keys := make([]string, 0, len(deadlines))
	for k := range deadlines {
		keys = append(keys, k) // collect-then-sort: not flagged
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.schedule(deadlines[k])
	}
}

// badCollect appends values that are never sorted afterwards.
func badCollect(loads map[int]float64) []float64 {
	var out []float64
	for _, v := range loads {
		out = append(out, v) // want `append to out inside range over map without sorting`
	}
	return out
}

// badReport renders a table in map iteration order.
func badReport(loads map[string]float64) string {
	var b strings.Builder
	for k, v := range loads {
		fmt.Fprintf(&b, "%s=%v\n", k, v) // want `call to fmt\.Fprintf inside range over map`
	}
	return b.String()
}

// badStdout prints directly to the process stream.
func badStdout(loads map[string]float64) {
	for k := range loads {
		fmt.Println(k) // want `call to fmt\.Println inside range over map`
	}
}

// badFloatSum accumulates floats in map order (non-associative).
func badFloatSum(loads map[string]float64) float64 {
	var sum float64
	for _, v := range loads {
		sum += v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

// badTieBreak lets map order pick among tied maxima.
func badTieBreak(loads map[string]float64) (string, float64) {
	var maxKey string
	var max float64
	for k, v := range loads {
		if v > max {
			max, maxKey = v, k // want `assignment to max inside range over map`
		}
	}
	return maxKey, max
}

// badSend forwards entries through a channel in map order.
func badSend(loads map[string]float64, out chan float64) {
	for _, v := range loads {
		out <- v // want `channel send inside range over map`
	}
}

// goodIndexedWrites stores into distinct keyed slots: order-independent.
func goodIndexedWrites(src map[int]float64, dst []float64, mirror map[int]float64) {
	for k, v := range src {
		dst[k] = v    // keyed slot: not flagged
		mirror[k] = v // map write: not flagged
	}
}

// goodIntSum accumulates integers: exact and commutative.
func goodIntSum(hist map[string]int) int {
	total := 0
	for _, n := range hist {
		total += n // integer accumulation: not flagged
	}
	return total
}

type scheduler struct {
	slots []int
}

func (s *scheduler) insert(t int)       { s.slots = append(s.slots, t) }
func (s *scheduler) merge(o *scheduler) { s.slots = append(s.slots, o.slots...) }

// badInsert feeds a calendar in map iteration order: bucket slot order is
// append order, so the resulting event order follows the map.
func badInsert(s *scheduler, pending map[int]int) {
	for _, t := range pending {
		s.insert(t) // want `call to s\.insert inside range over map`
	}
}

// badMerge merges per-shard buffers in map iteration order instead of the
// canonical lane order.
func badMerge(dst *scheduler, lanes map[int]*scheduler) {
	for _, l := range lanes {
		dst.merge(l) // want `call to dst\.merge inside range over map`
	}
}

// goodLocalBuilder builds a per-entry string stored by key.
func goodLocalBuilder(src map[int]string, dst map[int]string) {
	for k, v := range src {
		var b strings.Builder
		b.WriteString(v) // loop-local sink: not flagged
		dst[k] = b.String()
	}
}
