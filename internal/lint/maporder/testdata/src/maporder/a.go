// Package maporder is the maporder testdata fixture: ordered effects inside
// range-over-map loops must be flagged; sorted-key idioms and
// order-independent bodies must not.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

type engine struct {
	events []int
}

func (e *engine) schedule(t int) { e.events = append(e.events, t) }

// badSchedule schedules events in map iteration order.
func badSchedule(e *engine, deadlines map[string]int) {
	for _, t := range deadlines {
		e.schedule(t) // want `call to e\.schedule inside range over map`
	}
}

// goodSchedule collects and sorts the keys first — the sanctioned idiom.
func goodSchedule(e *engine, deadlines map[string]int) {
	keys := make([]string, 0, len(deadlines))
	for k := range deadlines {
		keys = append(keys, k) // collect-then-sort: not flagged
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.schedule(deadlines[k])
	}
}

// badCollect appends values that are never sorted afterwards.
func badCollect(loads map[int]float64) []float64 {
	var out []float64
	for _, v := range loads {
		out = append(out, v) // want `append to out inside range over map without sorting`
	}
	return out
}

// badReport renders a table in map iteration order.
func badReport(loads map[string]float64) string {
	var b strings.Builder
	for k, v := range loads {
		fmt.Fprintf(&b, "%s=%v\n", k, v) // want `call to fmt\.Fprintf inside range over map`
	}
	return b.String()
}

// badStdout prints directly to the process stream.
func badStdout(loads map[string]float64) {
	for k := range loads {
		fmt.Println(k) // want `call to fmt\.Println inside range over map`
	}
}

// badFloatSum accumulates floats in map order (non-associative).
func badFloatSum(loads map[string]float64) float64 {
	var sum float64
	for _, v := range loads {
		sum += v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

// badTieBreak lets map order pick among tied maxima.
func badTieBreak(loads map[string]float64) (string, float64) {
	var maxKey string
	var max float64
	for k, v := range loads {
		if v > max {
			max, maxKey = v, k // want `assignment to max inside range over map`
		}
	}
	return maxKey, max
}

// badSend forwards entries through a channel in map order.
func badSend(loads map[string]float64, out chan float64) {
	for _, v := range loads {
		out <- v // want `channel send inside range over map`
	}
}

// goodIndexedWrites stores into distinct keyed slots: order-independent.
func goodIndexedWrites(src map[int]float64, dst []float64, mirror map[int]float64) {
	for k, v := range src {
		dst[k] = v    // keyed slot: not flagged
		mirror[k] = v // map write: not flagged
	}
}

// goodIntSum accumulates integers: exact and commutative.
func goodIntSum(hist map[string]int) int {
	total := 0
	for _, n := range hist {
		total += n // integer accumulation: not flagged
	}
	return total
}

type scheduler struct {
	slots []int
}

func (s *scheduler) insert(t int)       { s.slots = append(s.slots, t) }
func (s *scheduler) merge(o *scheduler) { s.slots = append(s.slots, o.slots...) }

// badInsert feeds a calendar in map iteration order: bucket slot order is
// append order, so the resulting event order follows the map.
func badInsert(s *scheduler, pending map[int]int) {
	for _, t := range pending {
		s.insert(t) // want `call to s\.insert inside range over map`
	}
}

// badMerge merges per-shard buffers in map iteration order instead of the
// canonical lane order.
func badMerge(dst *scheduler, lanes map[int]*scheduler) {
	for _, l := range lanes {
		dst.merge(l) // want `call to dst\.merge inside range over map`
	}
}

type subnetManager struct {
	txns    []int
	added   [][2]int32
	removed [][2]int32
}

func (m *subnetManager) diff(e [2]int32) { m.added = append(m.added, e) }
func (m *subnetManager) observe(up bool) {}
func (m *subnetManager) stage(sw int32)  { m.txns = append(m.txns, int(sw)) }
func (m *subnetManager) reset(idx int)   { m.txns[idx] = 0 }
func (m *subnetManager) redrive(idx int) {}

// badSweepDiff diffs the discovered dead-link set against the shadow view by
// ranging the sets themselves: the delta order — and every SMP transaction
// opened from it — follows map iteration order.
func badSweepDiff(m *subnetManager, known, discovered map[[2]int32]bool) {
	for e := range discovered {
		if !known[e] {
			m.diff(e) // want `call to m\.diff inside range over map`
		}
	}
}

// badSweepStage opens one SMP transaction per discovered delta in map order:
// transaction indices, and hence the retransmit schedule, become random.
func badSweepStage(m *subnetManager, deltas map[int32]bool) {
	for sw := range deltas {
		m.stage(sw) // want `call to m\.stage inside range over map`
	}
}

// badSweepObserve feeds liveness samples to the failover automaton in map
// order: the takeover fires on whichever sample the map yields first.
func badSweepObserve(m *subnetManager, attachUp map[int32]bool) {
	for _, up := range attachUp {
		m.observe(up) // want `call to m\.observe inside range over map`
	}
}

// badSweepRedrive re-opens parked transactions in map order instead of the
// ascending index order TxnManager.Parked returns.
func badSweepRedrive(m *subnetManager, parked map[int]bool) {
	for idx := range parked {
		m.reset(idx)   // want `call to m\.reset inside range over map`
		m.redrive(idx) // want `call to m\.redrive inside range over map`
	}
}

// goodSweepDiff is the sanctioned sweep-diff: membership maps are read-only
// lookups, and both outputs are built by ranging the event-ordered slices —
// the shape of sm.DiffDeadLinks.
func goodSweepDiff(known, discovered [][2]int32) (added, removed [][2]int32) {
	inKnown := make(map[[2]int32]bool, len(known))
	for _, e := range known {
		inKnown[e] = true // map write: not flagged
	}
	inDisc := make(map[[2]int32]bool, len(discovered))
	for _, e := range discovered {
		inDisc[e] = true // map write: not flagged
	}
	for _, e := range discovered {
		if !inKnown[e] {
			added = append(added, e) // slice range: not a map loop
		}
	}
	for _, e := range known {
		if !inDisc[e] {
			removed = append(removed, e)
		}
	}
	return added, removed
}

// goodLocalBuilder builds a per-entry string stored by key.
func goodLocalBuilder(src map[int]string, dst map[int]string) {
	for k, v := range src {
		var b strings.Builder
		b.WriteString(v) // loop-local sink: not flagged
		dst[k] = b.String()
	}
}
