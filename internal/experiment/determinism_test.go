package experiment

import (
	"reflect"
	"testing"
)

// TestFigureRunDeterministic runs the same replicated figure twice and
// requires identical curves. The regression this guards: replica results
// used to be appended in goroutine-completion order, so meanPoint averaged
// floats in a scheduling-dependent order and figures could differ in the
// last bits between runs.
func TestFigureRunDeterministic(t *testing.T) {
	spec := FigureSpec{
		ID:        "DT",
		Network:   Network{4, 2},
		Pattern:   "uniform",
		Loads:     []float64{0.3},
		VLs:       []int{1},
		WarmupNs:  10_000,
		MeasureNs: 30_000,
		Replicas:  3,
		Seed:      42,
	}
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("figure differs across runs:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}
