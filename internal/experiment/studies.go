package experiment

import (
	"fmt"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/sm"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// ScalingRow is one network's MLID/SLID peak-throughput comparison at one
// virtual lane — the quantity behind the paper's Observation 5 / Remark 3.
type ScalingRow struct {
	Network      Network
	Nodes        int
	UniformRatio float64
	CentricRatio float64
}

// ScalingStudy measures, for each network, the MLID/SLID peak accepted
// traffic ratio under uniform and 50%-centric traffic with one VL.
func ScalingStudy(nets []Network, quick bool) ([]ScalingRow, error) {
	warm, meas := sim.Time(80_000), sim.Time(250_000)
	loads := []float64{0.1, 0.2, 0.3, 0.5, 0.8}
	if quick {
		warm, meas = 20_000, 60_000
		loads = []float64{0.2, 0.6}
	}
	rows := make([]ScalingRow, 0, len(nets))
	for _, nw := range nets {
		tr, err := topology.New(nw.M, nw.N)
		if err != nil {
			return nil, err
		}
		peak := func(scheme core.Scheme, pat traffic.Pattern) (float64, error) {
			sn, err := (&ib.SubnetManager{Tree: tr, Engine: scheme}).Configure()
			if err != nil {
				return 0, err
			}
			best := 0.0
			for i, load := range loads {
				res, err := sim.Run(sim.Config{
					Subnet:      sn,
					Pattern:     pat,
					OfferedLoad: load,
					WarmupNs:    warm,
					MeasureNs:   meas,
					Seed:        91 + int64(i),
				})
				if err != nil {
					return 0, err
				}
				if res.Accepted > best {
					best = res.Accepted
				}
			}
			return best, nil
		}
		uni := traffic.Uniform{Nodes: tr.Nodes()}
		cen := traffic.Centric{Nodes: tr.Nodes(), Hotspot: 0, Fraction: 0.5}
		mu, err := peak(core.NewMLID(), uni)
		if err != nil {
			return nil, err
		}
		su, err := peak(core.NewSLID(), uni)
		if err != nil {
			return nil, err
		}
		mc, err := peak(core.NewMLID(), cen)
		if err != nil {
			return nil, err
		}
		sc, err := peak(core.NewSLID(), cen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Network:      nw,
			Nodes:        tr.Nodes(),
			UniformRatio: ratioOf(mu, su),
			CentricRatio: ratioOf(mc, sc),
		})
	}
	return rows, nil
}

// FormatScaling renders the scaling rows as a markdown table.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("| network | nodes | MLID/SLID uniform | MLID/SLID centric |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %.2f | %.2f |\n", r.Network, r.Nodes, r.UniformRatio, r.CentricRatio)
	}
	return b.String()
}

// BringupRow records the subnet-manager cost of configuring one network
// through the management plane.
type BringupRow struct {
	Network  Network
	Nodes    int
	Switches int
	Stats    sm.BringupStats
}

// BringupStudy measures the MAD subnet manager's SMP traffic per network.
func BringupStudy(nets []Network) ([]BringupRow, error) {
	rows := make([]BringupRow, 0, len(nets))
	for _, nw := range nets {
		tr, err := topology.New(nw.M, nw.N)
		if err != nil {
			return nil, err
		}
		mgr := &sm.MADSubnetManager{Fabric: ib.NewSMAFabric(tr), Origin: 0, Engine: core.NewMLID()}
		if _, err := mgr.Configure(); err != nil {
			return nil, fmt.Errorf("experiment: bring-up of %s: %w", nw, err)
		}
		rows = append(rows, BringupRow{
			Network:  nw,
			Nodes:    tr.Nodes(),
			Switches: tr.Switches(),
			Stats:    mgr.Stats,
		})
	}
	return rows, nil
}

// FormatBringup renders the bring-up rows as a markdown table.
func FormatBringup(rows []BringupRow) string {
	var b strings.Builder
	b.WriteString("| network | nodes | switches | probes | sets | gets | total SMPs | max hops |\n|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %d |\n",
			r.Network, r.Nodes, r.Switches, r.Stats.Probes, r.Stats.Sets, r.Stats.Gets, r.Stats.Total(), r.Stats.MaxHops)
	}
	return b.String()
}
