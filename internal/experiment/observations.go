package experiment

import (
	"fmt"
	"strings"
)

// Observation is one of the paper's evaluation claims, checked against
// measured figures.
type Observation struct {
	// ID matches the paper's numbering (O1..O5) plus R-prefixed remarks.
	ID string
	// Claim paraphrases the paper's statement.
	Claim string
	// Holds reports whether the measurements support the claim.
	Holds bool
	// Detail carries the numbers behind the verdict.
	Detail string
}

// peak returns the named curve's peak accepted traffic, or 0.
func peak(f Figure, label string) float64 {
	if c := f.Curve(label); c != nil {
		return c.PeakAccepted()
	}
	return 0
}

// CheckObservations evaluates the paper's Observations 1-5 against a set of
// completed figures (any subset of the eight; checks that lack data report
// Holds = false with an explanatory detail).
func CheckObservations(figs []Figure) []Observation {
	var uniform, centric []Figure
	for _, f := range figs {
		switch f.Spec.Pattern {
		case "uniform":
			uniform = append(uniform, f)
		case "centric":
			centric = append(centric, f)
		}
	}
	var out []Observation

	// Observation 1: uniform traffic — MLID throughput >= SLID for small
	// port counts, strictly higher for large port counts.
	{
		holds := len(uniform) > 0
		var det []string
		for _, f := range uniform {
			m, s := peak(f, "MLID 1VL"), peak(f, "SLID 1VL")
			ratio := ratioOf(m, s)
			det = append(det, fmt.Sprintf("%s: MLID/SLID@1VL=%.2f", f.Spec.Network, ratio))
			if f.Spec.Network.M >= 16 {
				holds = holds && ratio > 1.02
			} else {
				holds = holds && ratio > 0.97
			}
		}
		out = append(out, Observation{
			ID:     "O1",
			Claim:  "Uniform traffic: MLID throughput is a little higher or equal to SLID for small port counts, and higher for large port counts.",
			Holds:  holds,
			Detail: strings.Join(det, "; "),
		})
	}

	// Observation 2: uniform traffic, low load — MLID latency <= SLID's.
	{
		holds := len(uniform) > 0
		var det []string
		for _, f := range uniform {
			mc, sc := f.Curve("MLID 1VL"), f.Curve("SLID 1VL")
			if mc == nil || sc == nil {
				holds = false
				continue
			}
			m, s := mc.LowLoadLatency(), sc.LowLoadLatency()
			det = append(det, fmt.Sprintf("%s: %.0f vs %.0f ns", f.Spec.Network, m, s))
			holds = holds && m <= s*1.05
		}
		out = append(out, Observation{
			ID:     "O2",
			Claim:  "Uniform traffic at low load: MLID average latency is less than or equal to SLID's.",
			Holds:  holds,
			Detail: strings.Join(det, "; "),
		})
	}

	// Observation 3: centric traffic — MLID throughput much higher than
	// SLID with one VL; still higher with more VLs; for large port counts,
	// MLID@1VL beats SLID@2VL.
	{
		holds := len(centric) > 0
		var det []string
		for _, f := range centric {
			m1, s1 := peak(f, "MLID 1VL"), peak(f, "SLID 1VL")
			det = append(det, fmt.Sprintf("%s: 1VL ratio %.2f", f.Spec.Network, ratioOf(m1, s1)))
			holds = holds && m1 > 1.5*s1
			for _, v := range f.Spec.VLs {
				if v == 1 {
					continue
				}
				holds = holds && peak(f, fmt.Sprintf("MLID %dVL", v)) > peak(f, fmt.Sprintf("SLID %dVL", v))
			}
			if f.Spec.Network.M >= 16 && hasVL(f.Spec.VLs, 2) {
				holds = holds && m1 > peak(f, "SLID 2VL")
			}
		}
		out = append(out, Observation{
			ID:     "O3",
			Claim:  "Centric traffic: MLID throughput is much higher than SLID's with one VL, still higher with more VLs, and MLID@1VL exceeds SLID@2VL on large port counts.",
			Holds:  holds,
			Detail: strings.Join(det, "; "),
		})
	}

	// Observation 4: centric traffic, small port counts, one VL — MLID
	// latency below SLID's (MLID utilizes the offered bandwidth better).
	{
		holds := false
		var det []string
		for _, f := range centric {
			if f.Spec.Network.M > 8 {
				continue
			}
			mc, sc := f.Curve("MLID 1VL"), f.Curve("SLID 1VL")
			if mc == nil || sc == nil {
				continue
			}
			m, s := mc.LowLoadLatency(), sc.LowLoadLatency()
			det = append(det, fmt.Sprintf("%s: %.0f vs %.0f ns", f.Spec.Network, m, s))
			holds = m <= s
		}
		out = append(out, Observation{
			ID:     "O4",
			Claim:  "Centric traffic, small port counts, one VL: MLID average latency is below SLID's at comparable load.",
			Holds:  holds,
			Detail: strings.Join(det, "; "),
		})
	}

	// Observation 5 / Remark 3: the MLID improvement grows with network
	// size — compare the smallest and largest centric networks' 1VL ratios.
	{
		holds := false
		det := "needs at least two centric figures"
		if len(centric) >= 2 {
			first, last := centric[0], centric[0]
			for _, f := range centric[1:] {
				if f.Spec.Network.M*nodesOf(f) < first.Spec.Network.M*nodesOf(first) {
					first = f
				}
				if nodesOf(f) > nodesOf(last) {
					last = f
				}
			}
			rFirst := ratioOf(peak(first, "MLID 1VL"), peak(first, "SLID 1VL"))
			rLast := ratioOf(peak(last, "MLID 1VL"), peak(last, "SLID 1VL"))
			holds = rLast >= rFirst*0.95 && rLast > 1.5
			det = fmt.Sprintf("%s ratio %.2f -> %s ratio %.2f", first.Spec.Network, rFirst, last.Spec.Network, rLast)
		}
		out = append(out, Observation{
			ID:     "O5",
			Claim:  "The MLID improvement over SLID stays pronounced (and tends to grow) as the network scales up.",
			Holds:  holds,
			Detail: det,
		})
	}
	return out
}

func ratioOf(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func hasVL(vls []int, v int) bool {
	for _, x := range vls {
		if x == v {
			return true
		}
	}
	return false
}

func nodesOf(f Figure) int {
	h := f.Spec.Network.M / 2
	n := 2
	for i := 0; i < f.Spec.Network.N; i++ {
		n *= h
	}
	return n
}

// Report renders a markdown reproduction report: Table 1, per-figure curve
// summaries, and the observation verdicts. It is the generator behind
// cmd/ibreport and the basis of EXPERIMENTS.md.
func Report(figs []Figure, obs []Observation) (string, error) {
	var b strings.Builder
	b.WriteString("# Reproduction report\n\n")

	rows, err := Table1(PaperNetworks())
	if err != nil {
		return "", err
	}
	b.WriteString("## Table 1 — simulated networks\n\n")
	b.WriteString("| network | nodes | switches | links | LMC | LIDs/node | LID space | paths (alpha=0) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %d |\n",
			r.Network.String(), r.Nodes, r.Switches, r.Links, r.LMC, r.LIDsPerNode, r.LIDSpace, r.PathsAlpha0)
	}
	b.WriteString("\n## Figures — peak accepted traffic (bytes/ns/node)\n\n")
	b.WriteString("| figure | network | traffic | series | peak accepted | low-load latency (ns) |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, f := range figs {
		for _, c := range f.Curves {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.4f | %.0f |\n",
				f.Spec.ID, f.Spec.Network, f.Spec.Pattern, c.Label, c.PeakAccepted(), c.LowLoadLatency())
		}
	}
	b.WriteString("\n## Observation verdicts\n\n")
	for _, o := range obs {
		mark := "FAIL"
		if o.Holds {
			mark = "ok"
		}
		fmt.Fprintf(&b, "- **%s** [%s] %s\n  - %s\n", o.ID, mark, o.Claim, o.Detail)
	}
	return b.String(), nil
}
