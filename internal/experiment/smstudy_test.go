package experiment

import (
	"reflect"
	"strings"
	"testing"
)

// TestSMStudyQuick runs the reduced in-band SM study end to end — which
// includes SMStudy's own invariant enforcement (conservation, one sticky
// failover, sweep detections, lost traps) — and checks the row shape.
func TestSMStudyQuick(t *testing.T) {
	spec := QuickSMSpec()
	rows, err := SMStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * (1 + len(spec.TrapLossProbs)) // schemes x (oracle + per-prob in-band)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.Mode == "oracle" {
			continue
		}
		if r.UnreachableDegraded == 0 {
			t.Errorf("%s/%s p=%v: severed master leaf degraded no packets", r.Scheme, r.Mode, r.TrapLossProb)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s/%s p=%v: no recovery-tail series", r.Scheme, r.Mode, r.TrapLossProb)
		}
	}
	if !strings.Contains(FormatSM(rows), "| SLID | oracle |") {
		t.Error("FormatSM lost the oracle row")
	}
	if got := strings.Count(SMCSV(rows), "\n"); got != wantRows+1 {
		t.Errorf("SMCSV has %d lines, want %d", got, wantRows+1)
	}
	if !strings.HasPrefix(SMSeriesCSV(rows), "scheme,mode,trap_loss_prob,start_ns,") {
		t.Error("SMSeriesCSV header changed")
	}
}

// TestSMStudyDeterministic reruns the quick study and requires identical
// rows — the whole point of keeping the SM's logic coordinator-side.
func TestSMStudyDeterministic(t *testing.T) {
	spec := QuickSMSpec()
	a, err := SMStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 2
	b, err := SMStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sm study rows differ between shard counts")
	}
}
