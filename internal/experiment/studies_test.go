package experiment

import (
	"strings"
	"testing"
)

func TestScalingStudyQuick(t *testing.T) {
	nets := []Network{{4, 2}, {8, 2}}
	rows, err := ScalingStudy(nets, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.UniformRatio <= 0 || r.CentricRatio <= 0 {
			t.Fatalf("empty row %+v", r)
		}
		// Centric ratio must clearly exceed 1 (Observation 3).
		if r.CentricRatio < 1.2 {
			t.Errorf("%s: centric ratio %.2f", r.Network, r.CentricRatio)
		}
	}
	// Remark 3: the larger network's centric ratio is at least the smaller's
	// (allowing a little noise).
	if rows[1].CentricRatio < rows[0].CentricRatio*0.9 {
		t.Errorf("centric ratio shrank with size: %.2f -> %.2f",
			rows[0].CentricRatio, rows[1].CentricRatio)
	}
	out := FormatScaling(rows)
	if !strings.Contains(out, "8-port 2-tree") {
		t.Errorf("table:\n%s", out)
	}
	if _, err := ScalingStudy([]Network{{3, 1}}, true); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestBringupStudy(t *testing.T) {
	nets := []Network{{4, 2}, {8, 2}, {8, 3}}
	rows, err := BringupStudy(nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		wantProbes := 2 + r.Switches*r.Network.M
		if r.Stats.Probes != wantProbes {
			t.Errorf("%s: probes %d, want %d", r.Network, r.Stats.Probes, wantProbes)
		}
		if i > 0 && r.Stats.Total() <= rows[i-1].Stats.Total() {
			t.Errorf("SMP count did not grow with network size")
		}
	}
	out := FormatBringup(rows)
	if !strings.Contains(out, "total SMPs") {
		t.Errorf("table:\n%s", out)
	}
	if _, err := BringupStudy([]Network{{5, 1}}); err == nil {
		t.Error("invalid network accepted")
	}
}
