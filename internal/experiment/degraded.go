package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
	"mlid/internal/verify"
)

// DegradedSpec describes the degraded-fabric quality study: at each fault
// rate, a seeded sample of the inter-switch links fails before the
// measurement window opens, the subnet-manager repair runs its course, and
// the study records two independent views of the surviving fabric:
//
//   - static: a fresh Configure + core.RepairSubnet per scheme, analyzed by
//     the ibverify quality pass (per-link maximal load, dilation, unrouted
//     flows under all-to-all) with core.SelectDLID standing in for MLID's
//     fault-avoiding source reselection;
//   - dynamic: a full simulation of the same outage (faults early, SM
//     recovery, Reselect on, epoch verification on), recording accepted
//     throughput.
//
// The point of the study is the cross-validation the two views afford: the
// static max-load ranking of SLID vs MLID must match the simulated
// accepted-throughput ordering at every rate (DegradedOrderingConsistent),
// or the static analyzer is measuring the wrong thing.
type DegradedSpec struct {
	Network Network
	// Rates are the fractions of inter-switch links to fail, e.g.
	// 0.01..0.10. Each rate draws its own seeded sample; both schemes see
	// the identical sample.
	Rates []float64
	// SwitchOuts are whole-switch outage counts — the second axis of the
	// study. Each count draws a seeded sample of non-leaf switches (leaves
	// never fail: the study degrades the interior, not the endpoints) and
	// takes every one of their links down before warmup; the dynamic view
	// reuses FaultPlan.SwitchFaults, so its whole-switch validation and
	// atomic down semantics apply.
	SwitchOuts []int
	// DataVLs is the virtual-lane count for both views.
	DataVLs int
	// OfferedLoad is the per-node injection rate of the dynamic view.
	OfferedLoad float64
	// FaultNs is when the sampled links die — before WarmupNs, so the SM
	// has converged when measurement opens and the window sees the steady
	// degraded fabric, not the transient.
	FaultNs, WarmupNs, MeasureNs sim.Time
	// Shards is the per-run shard count (see ResolveShards).
	Shards int
	// Seed drives the link samples and every simulation.
	Seed int64
}

// DegradedStudySpec is the full-fidelity degraded-fabric study.
func DegradedStudySpec() DegradedSpec {
	return DegradedSpec{
		Network:     Network{8, 3},
		Rates:       []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10},
		SwitchOuts:  []int{1, 2, 4},
		DataVLs:     2,
		OfferedLoad: 0.3,
		FaultNs:     2_000, WarmupNs: 50_000, MeasureNs: 200_000,
		Seed: 1789,
	}
}

// QuickDegradedSpec is the reduced-cost variant for test suites and CI.
func QuickDegradedSpec() DegradedSpec {
	return DegradedSpec{
		Network:     Network{8, 2},
		Rates:       []float64{0.02, 0.06, 0.10},
		SwitchOuts:  []int{1},
		DataVLs:     2,
		OfferedLoad: 0.3,
		FaultNs:     2_000, WarmupNs: 20_000, MeasureNs: 80_000,
		Seed: 1789,
	}
}

// DegradedRow is one (scheme, fault scenario) outcome of the study.
type DegradedRow struct {
	Scheme string
	// Axis names the fault scenario family: "links" (sampled link rate) or
	// "switches" (whole non-leaf switch outages). Rate is set on the links
	// axis, SwitchesOut on the switches axis.
	Axis        string
	Rate        float64
	SwitchesOut int
	// FailedLinks is the realized dead-link count of the scenario.
	FailedLinks int
	// Static view: the ibverify quality pass over the repaired tables.
	// StaticMaxLoad is the per-link maximal load under all-to-all (the
	// congestion bound), StaticUnrouted the flows no surviving LID serves,
	// StaticMeanDilation the mean path stretch vs the minimal up*/down*
	// path. StaticWarnings counts the dead-link findings (broken
	// descending entries); error-severity findings abort the study.
	StaticMaxLoad      float64
	StaticMeanLoad     float64
	StaticMeanDilation float64
	StaticUnrouted     int
	StaticWarnings     int
	// StaticServedFrac is the routed fraction of all-to-all flows, and
	// StaticPredictedAccepted the throughput bound the static view implies:
	// OfferedLoad x served fraction, scaled down when the max-load link
	// would saturate (each routed flow demands OfferedLoad/(nodes-1) B/ns
	// of a 1 B/ns link, so demand beyond capacity rescales every flow).
	// Max load alone ranks congestion; this bound also charges SLID for
	// the flows it cannot route at all, which is what accepted throughput
	// sees — the ordering check compares this, the full static prediction.
	StaticServedFrac        float64
	StaticPredictedAccepted float64
	// BrokenEntries is RepairSubnet's irreparable-descending-entry count.
	BrokenEntries int
	// Dynamic view: the simulated run over the same outage.
	Accepted       float64
	DroppedWindow  int64
	Reroutes       int64
	MeanLatencyNs  float64
	VerifiedEpochs int
}

// degradedSample draws the failed inter-switch links for one rate:
// rate x (inter-switch link count) of them, at least one, chosen by a
// seeded shuffle over the canonical (lower switch id) link list. Node
// attachment links never fail — the study degrades the fabric's interior,
// not its endpoints.
func degradedSample(tr *topology.Tree, rate float64, rng *rand.Rand) [][2]int32 {
	type link struct {
		sw   int32
		port int
	}
	var candidates []link
	for sw := 0; sw < tr.Switches(); sw++ {
		for port := 0; port < tr.M(); port++ {
			ref := tr.SwitchNeighbor(topology.SwitchID(sw), port)
			if ref.Kind != topology.KindSwitch || int32(ref.Switch) < int32(sw) {
				continue
			}
			candidates = append(candidates, link{int32(sw), port})
		}
	}
	k := int(rate*float64(len(candidates)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	out := make([][2]int32, 0, k)
	for _, i := range rng.Perm(len(candidates))[:k] {
		out = append(out, [2]int32{candidates[i].sw, int32(candidates[i].port)})
	}
	return out
}

// degradedSwitchSample draws k distinct non-leaf switches by a seeded
// shuffle. Leaves are excluded (killing one just unplugs its nodes), and k
// must leave at least one switch per non-leaf level standing so the fabric
// retains some spine capacity to study.
func degradedSwitchSample(tr *topology.Tree, k int, rng *rand.Rand) ([]int32, error) {
	var candidates []int32
	for sw := 0; sw < tr.Switches(); sw++ {
		if !tr.IsLeaf(topology.SwitchID(sw)) {
			candidates = append(candidates, int32(sw))
		}
	}
	if k < 1 || k >= len(candidates) {
		return nil, fmt.Errorf("experiment: degraded switch-out count %d outside [1, %d)", k, len(candidates))
	}
	out := make([]int32, 0, k)
	for _, i := range rng.Perm(len(candidates))[:k] {
		out = append(out, candidates[i])
	}
	return out, nil
}

// DegradedStudy runs the degraded-fabric sweep for both schemes across the
// spec's fault rates. Any error-severity verify finding on the repaired
// tables, or any failed simulation (which includes per-epoch verification),
// fails the study.
func DegradedStudy(spec DegradedSpec) ([]DegradedRow, error) {
	tr, err := topology.New(spec.Network.M, spec.Network.N)
	if err != nil {
		return nil, err
	}
	if spec.FaultNs <= 0 || spec.FaultNs >= spec.WarmupNs {
		return nil, fmt.Errorf("experiment: degraded FaultNs %d must fall inside (0, WarmupNs %d)", spec.FaultNs, spec.WarmupNs)
	}
	shards := ResolveShards(tr, spec.Shards)

	// Each scenario is one fault draw both schemes run against. The links
	// axis samples individual inter-switch links; the switches axis takes
	// whole non-leaf switches out, expressed to the simulator as
	// FaultPlan.SwitchFaults so its validation and atomic-outage semantics
	// are reused rather than re-implemented.
	type scenario struct {
		axis        string
		rate        float64
		switchesOut int
		label       string
		links       [][2]int32
		plan        *sim.FaultPlan
		seed        int64
	}
	scenarios := make([]scenario, 0, len(spec.Rates)+len(spec.SwitchOuts))
	for ri, rate := range spec.Rates {
		if rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("experiment: degraded fault rate %v out of (0, 1]", rate)
		}
		rng := rand.New(rand.NewSource(spec.Seed*6151 + int64(ri)))
		sc := scenario{
			axis: "links", rate: rate,
			label: fmt.Sprintf("link rate %v", rate),
			links: degradedSample(tr, rate, rng),
			plan:  &sim.FaultPlan{Reselect: true},
			seed:  spec.Seed + int64(ri),
		}
		for _, l := range sc.links {
			sc.plan.Faults = append(sc.plan.Faults, sim.LinkFault{Switch: l[0], Port: int(l[1]), DownNs: spec.FaultNs})
		}
		scenarios = append(scenarios, sc)
	}
	for si, k := range spec.SwitchOuts {
		rng := rand.New(rand.NewSource(spec.Seed*9311 + int64(si)))
		switches, err := degradedSwitchSample(tr, k, rng)
		if err != nil {
			return nil, err
		}
		sc := scenario{
			axis: "switches", switchesOut: k,
			label: fmt.Sprintf("%d switch(es) out", k),
			plan:  &sim.FaultPlan{Reselect: true},
			seed:  spec.Seed + int64(1000+si),
		}
		for _, sw := range switches {
			sc.plan.SwitchFaults = append(sc.plan.SwitchFaults, sim.SwitchFault{Switch: sw, DownNs: spec.FaultNs})
			for port := 0; port < tr.M(); port++ {
				if ref := tr.SwitchNeighbor(topology.SwitchID(sw), port); ref.Kind != topology.KindNone {
					sc.links = append(sc.links, [2]int32{sw, int32(port)})
				}
			}
		}
		scenarios = append(scenarios, sc)
	}

	// One pristine configuration per (tree, scheme), shared copy-on-write by
	// every scenario: offline repairs mutate a cloneSubnetLFTs working copy,
	// and the simulator clones the tables itself under a FaultPlan, so the
	// pristine subnets are only ever read concurrently.
	schemes := []core.Scheme{core.NewSLID(), core.NewMLID()}
	pristine := make([]*ib.Subnet, len(schemes))
	for i, scheme := range schemes {
		sn, err := (&ib.SubnetManager{Tree: tr, Engine: scheme}).Configure()
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", scheme.Name(), spec.Network, err)
		}
		pristine[i] = sn
	}

	// One sweep point per (scenario, scheme), scenario-major — the serial
	// row order — executed on the campaign worker pool.
	points := len(scenarios) * len(schemes)
	return campaignRun(points, campaignWorkers(points), func(pt int) (DegradedRow, error) {
		sc := scenarios[pt/len(schemes)]
		scheme := schemes[pt%len(schemes)]
		fs := core.NewFaultSet()
		for _, l := range sc.links {
			fs.FailLink(tr, topology.SwitchID(l[0]), int(l[1]))
		}
		rate, links, plan := sc.rate, sc.links, sc.plan
		row := DegradedRow{
			Scheme: scheme.Name(),
			Axis:   sc.axis, Rate: rate, SwitchesOut: sc.switchesOut,
			FailedLinks: len(links),
		}

		// Static view: repair a working copy of the pristine configuration
		// offline and run the verifier's quality pass over it, with
		// fault-avoiding source selection standing in for what reselection
		// does live.
		sn := cloneSubnetLFTs(pristine[pt%len(schemes)])
		_, broken, err := core.RepairSubnet(sn, fs)
		if err != nil {
			return row, fmt.Errorf("experiment: degraded repair %s at %s: %w", scheme.Name(), sc.label, err)
		}
		row.BrokenEntries = len(broken)
		in := verify.Input{
			Tree:      tr,
			Endports:  sn.Endports,
			LFTs:      sn.LFTs,
			Engine:    scheme,
			DeadLinks: links,
			SelectDLID: func(src, dst topology.NodeID) (ib.LID, bool) {
				lid, _, ok := core.SelectDLID(tr, scheme, src, dst, fs)
				return lid, ok
			},
		}
		rep, err := verify.Run(in, verify.Options{VLs: spec.DataVLs, Parallelism: campaignWorkers(tr.Switches())})
		if err != nil {
			return row, fmt.Errorf("experiment: degraded verify %s at %s: %w", scheme.Name(), sc.label, err)
		}
		if n := rep.Errors(); n > 0 {
			return row, fmt.Errorf("experiment: degraded verify %s at %s: %d error finding(s); first: %s",
				scheme.Name(), sc.label, n, firstError(rep))
		}
		row.StaticWarnings = rep.Warnings()
		if len(rep.Stats.Quality) == 0 {
			return row, fmt.Errorf("experiment: degraded verify %s at %s: no quality report", scheme.Name(), sc.label)
		}
		q := rep.Stats.Quality[0] // the all-to-all matrix
		row.StaticMaxLoad = q.MaxLoad
		row.StaticMeanLoad = q.MeanLoad
		row.StaticMeanDilation = q.MeanDilation
		row.StaticUnrouted = q.Unrouted
		if q.Flows > 0 {
			row.StaticServedFrac = float64(q.Flows-q.Unrouted) / float64(q.Flows)
		}
		perFlow := spec.OfferedLoad / float64(tr.Nodes()-1)
		scale := 1.0
		if demand := q.MaxLoad * perFlow; demand > 1 {
			scale = 1 / demand
		}
		row.StaticPredictedAccepted = spec.OfferedLoad * row.StaticServedFrac * scale

		// Dynamic view: the same outage simulated end to end, straight off
		// the shared pristine subnet (the simulator's fault path clones the
		// tables before mutating them).
		res, err := sim.Run(sim.Config{
			Subnet:       pristine[pt%len(schemes)],
			Pattern:      traffic.Uniform{Nodes: tr.Nodes()},
			DataVLs:      spec.DataVLs,
			OfferedLoad:  spec.OfferedLoad,
			WarmupNs:     spec.WarmupNs,
			MeasureNs:    spec.MeasureNs,
			FaultPlan:    plan,
			VerifyEpochs: true,
			Shards:       shards,
			Seed:         sc.seed,
		})
		if err != nil {
			return row, fmt.Errorf("experiment: degraded run %s at %s: %w", scheme.Name(), sc.label, err)
		}
		row.Accepted = res.Accepted
		row.DroppedWindow = res.DroppedWindow
		row.Reroutes = res.Reroutes
		row.MeanLatencyNs = res.MeanLatencyNs
		row.VerifiedEpochs = res.VerifiedEpochs
		return row, nil
	})
}

// firstError returns the first error-severity finding's rendering.
func firstError(rep *verify.Report) string {
	for _, f := range rep.Findings {
		if f.Severity == verify.Error {
			return f.String()
		}
	}
	return "(none)"
}

// DegradedOrderingConsistent checks the study's cross-validation claim: in
// every fault scenario, the static ranking of the two schemes — the
// max-load-and-unrouted throughput bound StaticPredictedAccepted — must
// agree with the simulated accepted-throughput ordering: the scheme the
// analyzer predicts serves more must not deliver less. Near-ties (within
// 2% relative) on either side are treated as agreement, since neither view
// resolves finer than that.
func DegradedOrderingConsistent(rows []DegradedRow) error {
	// Scenarios are keyed by the full axis coordinate, so link-rate and
	// switch-out rows never pair up across axes.
	key := func(r DegradedRow) string { return fmt.Sprintf("%s|%v|%d", r.Axis, r.Rate, r.SwitchesOut) }
	byScenario := map[string]map[string]DegradedRow{}
	for _, r := range rows {
		k := key(r)
		if byScenario[k] == nil {
			byScenario[k] = map[string]DegradedRow{}
		}
		byScenario[k][r.Scheme] = r
	}
	for _, r := range rows {
		pair := byScenario[key(r)]
		s, sOK := pair["SLID"]
		m, mOK := pair["MLID"]
		if !sOK || !mOK {
			return fmt.Errorf("experiment: degraded scenario %s missing a scheme", key(r))
		}
		predGap := relGap(m.StaticPredictedAccepted, s.StaticPredictedAccepted)
		accGap := relGap(m.Accepted, s.Accepted)
		// predGap > 0: the analyzer predicts MLID serves more.
		// accGap  > 0: the simulator delivered more under MLID.
		// A conflict is both gaps decisive (beyond the 2% tie band) with
		// opposite signs.
		const tie = 0.02
		if predGap > tie && accGap < -tie {
			return fmt.Errorf("experiment: degraded scenario %s: static predicts MLID serves more (%.4f vs %.4f) but simulation delivered less (%.4f vs %.4f)",
				key(r), m.StaticPredictedAccepted, s.StaticPredictedAccepted, m.Accepted, s.Accepted)
		}
		if predGap < -tie && accGap > tie {
			return fmt.Errorf("experiment: degraded scenario %s: static predicts SLID serves more (%.4f vs %.4f) but simulation delivered less (%.4f vs %.4f)",
				key(r), s.StaticPredictedAccepted, m.StaticPredictedAccepted, s.Accepted, m.Accepted)
		}
	}
	return nil
}

// relGap is (a-b) normalized by the larger magnitude; 0 when both are 0.
func relGap(a, b float64) float64 {
	den := a
	if b > den {
		den = b
	}
	if den == 0 {
		return 0
	}
	return (a - b) / den
}

// FormatDegraded renders the study as a markdown table.
func FormatDegraded(rows []DegradedRow) string {
	var b strings.Builder
	b.WriteString("| scheme | axis | rate | sw out | links | static max load | mean load | dilation | unrouted | served | predicted B/ns | broken | warnings | accepted B/ns | dropped | reroutes | lat (ns) | epochs |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %d | %d | %.1f | %.1f | %.3f | %d | %.3f | %.4f | %d | %d | %.4f | %d | %d | %.0f | %d |\n",
			r.Scheme, r.Axis, r.Rate, r.SwitchesOut, r.FailedLinks, r.StaticMaxLoad, r.StaticMeanLoad,
			r.StaticMeanDilation, r.StaticUnrouted, r.StaticServedFrac, r.StaticPredictedAccepted,
			r.BrokenEntries, r.StaticWarnings,
			r.Accepted, r.DroppedWindow, r.Reroutes, r.MeanLatencyNs, r.VerifiedEpochs)
	}
	return b.String()
}

// DegradedCSV renders the study in long form.
func DegradedCSV(rows []DegradedRow) string {
	var b strings.Builder
	b.WriteString("scheme,axis,rate,switches_out,failed_links,static_max_load,static_mean_load,static_mean_dilation,static_unrouted,static_served_frac,static_predicted_accepted,broken_entries,static_warnings,accepted,dropped_window,reroutes,mean_latency_ns,verified_epochs\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.4f,%d,%d,%.2f,%.2f,%.4f,%d,%.4f,%.6f,%d,%d,%.6f,%d,%d,%.2f,%d\n",
			r.Scheme, r.Axis, r.Rate, r.SwitchesOut, r.FailedLinks, r.StaticMaxLoad, r.StaticMeanLoad,
			r.StaticMeanDilation, r.StaticUnrouted, r.StaticServedFrac, r.StaticPredictedAccepted,
			r.BrokenEntries, r.StaticWarnings,
			r.Accepted, r.DroppedWindow, r.Reroutes, r.MeanLatencyNs, r.VerifiedEpochs)
	}
	return b.String()
}
