package experiment

import (
	"sort"
	"strings"
	"testing"

	"mlid/internal/stats"
)

// synthFigure fabricates a figure with given peak accepted values per curve
// label (low-load latency = the first point's latency).
func synthFigure(id string, nw Network, pattern string, peaks map[string]float64, lowLat map[string]float64) Figure {
	spec := FigureSpec{ID: id, Network: nw, Pattern: pattern, VLs: []int{1, 2, 4}, Loads: []float64{0.1, 0.8}}
	labels := make([]string, 0, len(peaks))
	for label := range peaks {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var curves []stats.Curve
	for _, label := range labels {
		curves = append(curves, stats.Curve{Label: label, Points: []stats.Point{
			{OfferedLoad: 0.1, Accepted: 0.02, MeanLatencyNs: lowLat[label]},
			{OfferedLoad: 0.8, Accepted: peaks[label], MeanLatencyNs: 50000},
		}})
	}
	return Figure{Spec: spec, Curves: curves}
}

func goodFigures() []Figure {
	mkPeaks := func(m1, s1 float64) map[string]float64 {
		return map[string]float64{
			"MLID 1VL": m1, "SLID 1VL": s1,
			"MLID 2VL": m1 * 1.1, "SLID 2VL": s1 * 1.1,
			"MLID 4VL": m1 * 1.2, "SLID 4VL": s1 * 1.2,
		}
	}
	lat := func(m, s float64) map[string]float64 {
		return map[string]float64{
			"MLID 1VL": m, "SLID 1VL": s,
			"MLID 2VL": m, "SLID 2VL": s,
			"MLID 4VL": m, "SLID 4VL": s,
		}
	}
	return []Figure{
		synthFigure("F1", Network{4, 4}, "uniform", mkPeaks(0.60, 0.59), lat(800, 820)),
		synthFigure("F3", Network{16, 2}, "uniform", mkPeaks(0.65, 0.52), lat(640, 660)),
		synthFigure("F5", Network{4, 4}, "centric", mkPeaks(0.25, 0.10), lat(900, 950)),
		synthFigure("F7", Network{16, 2}, "centric", mkPeaks(0.16, 0.06), lat(700, 750)),
	}
}

func TestCheckObservationsAllHold(t *testing.T) {
	obs := CheckObservations(goodFigures())
	if len(obs) != 5 {
		t.Fatalf("%d observations", len(obs))
	}
	for _, o := range obs {
		if !o.Holds {
			t.Errorf("%s failed: %s (%s)", o.ID, o.Claim, o.Detail)
		}
		if o.Detail == "" || o.Claim == "" {
			t.Errorf("%s missing narrative", o.ID)
		}
	}
}

func TestCheckObservationsDetectsViolations(t *testing.T) {
	figs := goodFigures()
	// Make SLID beat MLID on the large-port uniform figure: O1 must fail.
	for i := range figs {
		if figs[i].Spec.ID == "F3" {
			c := figs[i].Curve("MLID 1VL")
			c.Points[1].Accepted = 0.40 // below SLID's 0.52
		}
	}
	obs := CheckObservations(figs)
	var o1 *Observation
	for i := range obs {
		if obs[i].ID == "O1" {
			o1 = &obs[i]
		}
	}
	if o1 == nil || o1.Holds {
		t.Fatalf("O1 not failed: %+v", o1)
	}
}

func TestCheckObservationsEmptyInput(t *testing.T) {
	obs := CheckObservations(nil)
	if len(obs) != 5 {
		t.Fatalf("%d observations", len(obs))
	}
	for _, o := range obs {
		if o.Holds {
			t.Errorf("%s holds with no data", o.ID)
		}
	}
}

func TestReportRenders(t *testing.T) {
	figs := goodFigures()
	obs := CheckObservations(figs)
	rep, err := Report(figs, obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Reproduction report",
		"## Table 1",
		"8-port 3-tree",
		"## Figures",
		"MLID 1VL",
		"## Observation verdicts",
		"**O3** [ok]",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestObservationsOnRealQuickFigure ties the checker to actual simulation
// output on a small network: run a centric quick figure and require the O3
// core claim (MLID >> SLID at 1 VL) to hold on real data.
func TestObservationsOnRealQuickFigure(t *testing.T) {
	spec := FigureSpec{
		ID:        "F5",
		Network:   Network{8, 2},
		Pattern:   "centric",
		Loads:     []float64{0.1, 0.5},
		VLs:       []int{1, 2},
		WarmupNs:  30_000,
		MeasureNs: 100_000,
		Seed:      5,
	}
	fig, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, s := fig.Curve("MLID 1VL").PeakAccepted(), fig.Curve("SLID 1VL").PeakAccepted()
	if m <= 1.5*s {
		t.Errorf("real centric quick figure: MLID %.4f not >> SLID %.4f", m, s)
	}
}
