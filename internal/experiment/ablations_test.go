package experiment

import (
	"strings"
	"testing"
)

func TestRunAblationsQuick(t *testing.T) {
	rows, err := RunAblations(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		if r.AcceptedBns <= 0 || r.MeanLatencyNs <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
		byKey[r.Experiment+"/"+r.Setting] = r
	}
	// EX-F: ideal reception separates the schemes; link-limited converges.
	mi := byKey["EX-F reception/MLID ideal"].AcceptedBns
	si := byKey["EX-F reception/SLID ideal"].AcceptedBns
	ml := byKey["EX-F reception/MLID link-limited"].AcceptedBns
	sl := byKey["EX-F reception/SLID link-limited"].AcceptedBns
	if mi < 1.5*si {
		t.Errorf("ideal reception: MLID %.4f not >> SLID %.4f", mi, si)
	}
	if r := ml / sl; r < 0.9 || r > 1.1 {
		t.Errorf("link-limited ratio %.2f, expected ~1", r)
	}
	// EX-G: rank selection beats random on the permutation.
	if byKey["EX-G pathselect/MLID rank (paper)"].AcceptedBns <=
		byKey["EX-G pathselect/MLID random offset"].AcceptedBns {
		t.Error("random offsets beat rank selection on bit-complement")
	}
	// Switching: store-and-forward is slower at equal accepted load.
	if byKey["switching/MLID store-and-forward"].MeanLatencyNs <=
		byKey["switching/MLID cut-through (paper)"].MeanLatencyNs {
		t.Error("SAF not slower than VCT")
	}
	// Rendering.
	table := AblationTable(rows)
	if !strings.Contains(table, "EX-A vl-count") || !strings.Contains(table, "| experiment |") {
		t.Errorf("table:\n%s", table)
	}
}
