package experiment

import (
	"fmt"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// SMSpec describes the in-band subnet-management study: the same two faults
// — a permanent spine-link loss on a victim leaf, then a transient outage of
// the switch hosting the master SM — replayed under the oracle SM (fiat
// traps, fiat table writes) and under the in-band SM at increasing trap-loss
// rates, for each routing scheme. The master-switch outage is the stress
// case the in-band model exists for: while it lasts, every trap addressed to
// the master is lost, repair stalls until a sweep fails over to the standby,
// and the severed leaf's nodes surface as a typed partition that sources
// degrade against instead of burning retries.
type SMSpec struct {
	Network Network
	// DataVLs is the virtual-lane count; OfferedLoad the per-node injection
	// rate (bytes/ns).
	DataVLs     int
	OfferedLoad float64
	// WarmupNs / MeasureNs size the run window.
	WarmupNs, MeasureNs sim.Time
	// LinkFaultNs is when the victim leaf's first ascending link dies (for
	// the rest of the run). The victim leaf is the leaf of node Nodes/2 —
	// far from both SM attachment points.
	LinkFaultNs sim.Time
	// SMDownNs / SMUpNs bound the outage of the master SM's leaf switch.
	SMDownNs, SMUpNs sim.Time
	// SeriesIntervalNs bins the recovery-tail view.
	SeriesIntervalNs sim.Time
	// SweepIntervalNs is the in-band SM's discovery-sweep period.
	SweepIntervalNs sim.Time
	// TrapLossProbs are the in-band trap-loss rates to sweep; each value
	// yields one in-band row per scheme, alongside the oracle row. 1.0
	// silences every trap — the sweep-only extreme.
	TrapLossProbs []float64
	// VerifyEpochs re-verifies forwarding state at every applied epoch.
	VerifyEpochs bool
	// Shards is the per-run shard count (see ResolveShards).
	Shards int
	// Seed drives all runs of the study.
	Seed int64
}

// SMStudySpec is the full-fidelity in-band SM study. Fault instants are
// deliberately off the 20k sweep grid so discovery latency is visible.
func SMStudySpec() SMSpec {
	return SMSpec{
		Network:     Network{8, 3},
		DataVLs:     2,
		OfferedLoad: 0.3,
		WarmupNs:    50_000, MeasureNs: 300_000,
		LinkFaultNs: 105_000,
		SMDownNs:    151_000, SMUpNs: 221_000,
		SeriesIntervalNs: 10_000,
		SweepIntervalNs:  20_000,
		TrapLossProbs:    []float64{0, 0.5, 1},
		Seed:             4099,
	}
}

// QuickSMSpec is the reduced-cost variant for test suites and CI smoke
// runs; the qualitative story (lost traps, sweep recovery, failover,
// degradation) is preserved on the small network.
func QuickSMSpec() SMSpec {
	return SMSpec{
		Network:     Network{4, 2},
		DataVLs:     2,
		OfferedLoad: 0.3,
		WarmupNs:    20_000, MeasureNs: 120_000,
		LinkFaultNs: 43_000,
		SMDownNs:    61_000, SMUpNs: 93_000,
		SeriesIntervalNs: 5_000,
		SweepIntervalNs:  10_000,
		TrapLossProbs:    []float64{1},
		VerifyEpochs:     true,
		Seed:             4099,
	}
}

// SMRow is one (scheme, SM mode) cell of the study.
type SMRow struct {
	Scheme string
	// Mode is "oracle" (fiat SM) or "inband"; TrapLossProb only applies to
	// in-band rows.
	Mode         string
	TrapLossProb float64
	// Management-plane counters (zero on oracle rows).
	TrapsSent, TrapsLost, TrapsDelivered int64
	SMSweeps, SweepDetections            int64
	SMPsSent, SMPRetries, SMPFailed      int64
	Failovers, PartitionEvents           int64
	// UnreachableDegraded counts packets written off against provably
	// unreachable destinations; Failed the transport retry-budget
	// exhaustions — the waste degradation exists to avoid.
	UnreachableDegraded, Failed int64
	LFTUpdates                  int64
	// RecoveryNs is first-failure to last-applied table update.
	RecoveryNs sim.Time
	// PreAccepted / OutageAccepted / PostAccepted are mean accepted rates
	// (bytes/ns/node) before the first fault, during the master-SM outage,
	// and after revival plus two sweep intervals of settling.
	PreAccepted, OutageAccepted, PostAccepted float64
	// Series is the recovery-tail view (see SMSeriesCSV).
	Series []sim.SeriesPoint
}

// smScheme is one routing configuration the study sweeps.
type smScheme struct {
	label  string
	scheme func() core.Scheme
	sel    sim.Selector
}

func smSchemes() []smScheme {
	return []smScheme{
		{"SLID", func() core.Scheme { return core.NewSLID() }, nil},
		{"MLID", func() core.Scheme { return core.NewMLID() }, nil},
		{"MLID+adaptive", func() core.Scheme { return core.NewMLID() }, sim.SelectAdaptive()},
	}
}

// SMStudy runs the in-band SM study and enforces its invariants on every
// run: exact packet conservation (generated = delivered + failed +
// unreachable-degraded + in-flight), a clean oracle (no management-plane
// counters), and on in-band rows exactly one sticky failover, at least one
// sweep detection, and — at trap-loss 1 — zero delivered traps.
func SMStudy(spec SMSpec) ([]SMRow, error) {
	tr, err := topology.New(spec.Network.M, spec.Network.N)
	if err != nil {
		return nil, err
	}
	if spec.LinkFaultNs <= 0 || spec.SMDownNs <= spec.LinkFaultNs || spec.SMUpNs <= spec.SMDownNs {
		return nil, fmt.Errorf("experiment: sm study wants 0 < LinkFaultNs %d < SMDownNs %d < SMUpNs %d",
			spec.LinkFaultNs, spec.SMDownNs, spec.SMUpNs)
	}
	victimLeaf, _ := tr.NodeAttachment(topology.NodeID(tr.Nodes() / 2))
	masterLeaf, _ := tr.NodeAttachment(0) // the default master SM node
	shards := ResolveShards(tr, spec.Shards)

	type mode struct {
		name string
		prob float64
	}
	modes := []mode{{"oracle", 0}}
	for _, p := range spec.TrapLossProbs {
		modes = append(modes, mode{"inband", p})
	}

	// One pristine configuration per routing scheme, shared read-only by all
	// of that scheme's modes (every run carries a FaultPlan, so the
	// simulator clones the tables itself).
	schemes := smSchemes()
	pristine := make([]*ib.Subnet, len(schemes))
	for i, sc := range schemes {
		sn, err := (&ib.SubnetManager{Tree: tr, Engine: sc.scheme()}).Configure()
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", sc.label, spec.Network, err)
		}
		pristine[i] = sn
	}

	// One sweep point per (scheme, mode), scheme-major — the serial row
	// order — executed on the campaign worker pool.
	points := len(schemes) * len(modes)
	return campaignRun(points, campaignWorkers(points), func(pt int) (SMRow, error) {
		sc := schemes[pt/len(modes)]
		mi := pt % len(modes)
		md := modes[mi]
		plan := &sim.FaultPlan{
			Faults: []sim.LinkFault{
				{Switch: int32(victimLeaf), Port: tr.DownPorts(victimLeaf), DownNs: spec.LinkFaultNs},
			},
			SwitchFaults: []sim.SwitchFault{
				{Switch: int32(masterLeaf), DownNs: spec.SMDownNs, UpNs: spec.SMUpNs},
			},
			Reselect: true,
		}
		if md.name == "inband" {
			plan.InBandSM = &sim.InBandSMConfig{
				SweepIntervalNs: spec.SweepIntervalNs,
				TrapLossProb:    md.prob,
			}
		}
		res, err := sim.Run(sim.Config{
			Subnet:           pristine[pt/len(modes)],
			Pattern:          traffic.Uniform{Nodes: tr.Nodes()},
			DataVLs:          spec.DataVLs,
			OfferedLoad:      spec.OfferedLoad,
			WarmupNs:         spec.WarmupNs,
			MeasureNs:        spec.MeasureNs,
			SeriesIntervalNs: spec.SeriesIntervalNs,
			PathSelect:       sc.sel,
			FaultPlan:        plan,
			Transport:        &sim.TransportConfig{BaseTimeoutNs: 5_000, MaxRetries: 3, MaxTimeoutNs: 20_000},
			VerifyEpochs:     spec.VerifyEpochs,
			Shards:           shards,
			Seed:             spec.Seed + int64(mi),
		})
		if err != nil {
			return SMRow{}, fmt.Errorf("experiment: sm run %s/%s p=%v: %w", sc.label, md.name, md.prob, err)
		}
		if err := smInvariants(sc.label, md.name, md.prob, res); err != nil {
			return SMRow{}, err
		}
		row := SMRow{
			Scheme: sc.label, Mode: md.name, TrapLossProb: md.prob,
			TrapsSent: res.TrapsSent, TrapsLost: res.TrapsLost, TrapsDelivered: res.TrapsDelivered,
			SMSweeps: res.SMSweeps, SweepDetections: res.SweepDetections,
			SMPsSent: res.SMPsSent, SMPRetries: res.SMPRetries, SMPFailed: res.SMPFailed,
			Failovers: res.Failovers, PartitionEvents: res.PartitionEvents,
			UnreachableDegraded: res.UnreachableDegraded, Failed: res.Failed,
			LFTUpdates: res.LFTUpdates, RecoveryNs: res.RecoveryNs,
			Series: res.Series,
		}
		// Windowed accepted rates: before the link fault, during the
		// master-SM outage, and after revival plus two sweeps of settling.
		postFrom := spec.SMUpNs + 2*spec.SweepIntervalNs
		end := spec.WarmupNs + spec.MeasureNs
		row.PreAccepted = meanAccepted(res.Series, spec.WarmupNs, spec.LinkFaultNs)
		row.OutageAccepted = meanAccepted(res.Series, spec.SMDownNs, spec.SMUpNs)
		row.PostAccepted = meanAccepted(res.Series, postFrom, end)
		return row, nil
	})
}

// smInvariants enforces the per-run acceptance checks of the study.
func smInvariants(scheme, mode string, prob float64, res sim.Result) error {
	id := fmt.Sprintf("%s/%s p=%v", scheme, mode, prob)
	if got := res.TotalDelivered + res.Failed + res.UnreachableDegraded + res.InFlightAtEnd; got != res.TotalGenerated {
		return fmt.Errorf("experiment: sm run %s violates packet conservation: delivered %d + failed %d + unreachable %d + inflight %d != generated %d",
			id, res.TotalDelivered, res.Failed, res.UnreachableDegraded, res.InFlightAtEnd, res.TotalGenerated)
	}
	if mode == "oracle" {
		if res.TrapsSent != 0 || res.SMSweeps != 0 || res.SMPsSent != 0 || res.Failovers != 0 ||
			res.PartitionEvents != 0 || res.UnreachableDegraded != 0 {
			return fmt.Errorf("experiment: sm run %s: oracle mode leaked in-band counters", id)
		}
		return nil
	}
	// The master-leaf outage must force exactly one (sticky) failover, and
	// the traps it silences must come back through sweep discovery.
	if res.Failovers != 1 {
		return fmt.Errorf("experiment: sm run %s: %d failovers, want exactly 1", id, res.Failovers)
	}
	if res.SweepDetections == 0 {
		return fmt.Errorf("experiment: sm run %s: no sweep ever discovered hidden state", id)
	}
	if res.TrapsLost == 0 {
		return fmt.Errorf("experiment: sm run %s: the master outage lost no traps", id)
	}
	if res.PartitionEvents == 0 {
		return fmt.Errorf("experiment: sm run %s: severing the master leaf raised no partition finding", id)
	}
	if prob >= 1 && res.TrapsDelivered != 0 {
		return fmt.Errorf("experiment: sm run %s: %d traps delivered at loss probability 1", id, res.TrapsDelivered)
	}
	return nil
}

// meanAccepted averages the Accepted rate of the series bins whose start
// falls in [from, to).
func meanAccepted(series []sim.SeriesPoint, from, to sim.Time) float64 {
	var sum float64
	var n int
	for _, sp := range series {
		if sp.StartNs >= from && sp.StartNs < to {
			sum += sp.Accepted
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatSM renders the study as a markdown table.
func FormatSM(rows []SMRow) string {
	var b strings.Builder
	b.WriteString("| scheme | mode | loss | traps s/l/d | sweeps | detects | SMPs | rexmit | failed | failover | partition | degraded | tx failed | LFT updates | recovery (ns) | pre B/ns | outage B/ns | post B/ns |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %d/%d/%d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %.4f | %.4f | %.4f |\n",
			r.Scheme, r.Mode, r.TrapLossProb, r.TrapsSent, r.TrapsLost, r.TrapsDelivered,
			r.SMSweeps, r.SweepDetections, r.SMPsSent, r.SMPRetries, r.SMPFailed,
			r.Failovers, r.PartitionEvents, r.UnreachableDegraded, r.Failed,
			r.LFTUpdates, r.RecoveryNs, r.PreAccepted, r.OutageAccepted, r.PostAccepted)
	}
	return b.String()
}

// SMCSV renders the study rows in long form.
func SMCSV(rows []SMRow) string {
	var b strings.Builder
	b.WriteString("scheme,mode,trap_loss_prob,traps_sent,traps_lost,traps_delivered,sm_sweeps,sweep_detections,smps_sent,smp_retries,smp_failed,failovers,partition_events,unreachable_degraded,failed,lft_updates,recovery_ns,pre_accepted,outage_accepted,post_accepted\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f\n",
			r.Scheme, r.Mode, r.TrapLossProb, r.TrapsSent, r.TrapsLost, r.TrapsDelivered,
			r.SMSweeps, r.SweepDetections, r.SMPsSent, r.SMPRetries, r.SMPFailed,
			r.Failovers, r.PartitionEvents, r.UnreachableDegraded, r.Failed,
			r.LFTUpdates, r.RecoveryNs, r.PreAccepted, r.OutageAccepted, r.PostAccepted)
	}
	return b.String()
}

// SMSeriesCSV renders every row's per-interval recovery tail in long form:
// one line per (scheme, mode, loss, bin) with the delivered / dropped /
// retransmit / failed / unreachable counts of the bin.
func SMSeriesCSV(rows []SMRow) string {
	var b strings.Builder
	b.WriteString("scheme,mode,trap_loss_prob,start_ns,accepted,delivered,dropped,reroutes,retransmits,failed,unreachable\n")
	for _, r := range rows {
		for _, sp := range r.Series {
			fmt.Fprintf(&b, "%s,%s,%.4f,%d,%.6f,%d,%d,%d,%d,%d,%d\n",
				r.Scheme, r.Mode, r.TrapLossProb, sp.StartNs, sp.Accepted,
				sp.Delivered, sp.Dropped, sp.Reroutes, sp.Retransmits, sp.Failed, sp.Unreachable)
		}
	}
	return b.String()
}
