package experiment

import (
	"reflect"
	"strings"
	"testing"
)

// TestRecoveryStudyQuick runs the reduced recovery study and checks the
// qualitative contrast the figure exists to show: MLID with reselection rides
// through the fault (traffic recovers, no post-recovery drops), SLID keeps
// losing packets to its irreparable descending entries.
func TestRecoveryStudyQuick(t *testing.T) {
	rows, err := RecoveryStudy(QuickRecoverySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 2 schemes x 2 VLs = 4 rows, got %d", len(rows))
	}
	byKey := map[string]RecoveryRow{}
	for _, r := range rows {
		byKey[r.Scheme] = r // last VL wins; scheme-level properties hold for all
		if r.DroppedWindow == 0 {
			t.Errorf("%s %dVL: expected drops during the transient", r.Scheme, r.VLs)
		}
		if r.LFTUpdates == 0 {
			t.Errorf("%s %dVL: expected SM table updates", r.Scheme, r.VLs)
		}
		if r.RecoveryNs <= 0 {
			t.Errorf("%s %dVL: non-positive recovery time %d", r.Scheme, r.VLs, r.RecoveryNs)
		}
	}
	mlid, slid := byKey["MLID"], byKey["SLID"]
	if mlid.DropsAfterRecovery != 0 {
		t.Errorf("MLID: %d drops after recovery, want 0", mlid.DropsAfterRecovery)
	}
	if mlid.RecoveredFrac < 0.95 {
		t.Errorf("MLID: recovered fraction %.3f, want >= 0.95", mlid.RecoveredFrac)
	}
	if mlid.Reroutes == 0 {
		t.Errorf("MLID: expected reselection reroutes")
	}
	if slid.DropsAfterRecovery == 0 {
		t.Errorf("SLID: expected persistent post-recovery drops")
	}

	out := FormatRecovery(rows)
	if !strings.Contains(out, "| MLID |") || !strings.Contains(out, "| SLID |") {
		t.Errorf("FormatRecovery missing scheme rows:\n%s", out)
	}
	csv := RecoveryCSV(rows)
	if got := strings.Count(csv, "\n"); got != len(rows)+1 {
		t.Errorf("RecoveryCSV has %d lines, want %d", got, len(rows)+1)
	}

	// The recovery-tail view: every row carries its series, and the long
	// form has one line per (row, bin) plus the header.
	var bins int
	for _, r := range rows {
		if len(r.Series) == 0 {
			t.Errorf("%s %dVL: no transient series", r.Scheme, r.VLs)
		}
		bins += len(r.Series)
	}
	if got := strings.Count(RecoverySeriesCSV(rows), "\n"); got != bins+1 {
		t.Errorf("RecoverySeriesCSV has %d lines, want %d", got, bins+1)
	}
}

// TestRecoveryStudyDeterminism pins the study as reproducible run-to-run.
func TestRecoveryStudyDeterminism(t *testing.T) {
	a, err := RecoveryStudy(QuickRecoverySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecoveryStudy(QuickRecoverySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("recovery study not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}
