package experiment

import (
	"errors"
	"strings"
	"testing"

	"mlid/internal/sim"
)

func TestPaperNetworksAndFigures(t *testing.T) {
	nets := PaperNetworks()
	if len(nets) != 4 {
		t.Fatalf("%d networks", len(nets))
	}
	figs := Figures()
	if len(figs) != 8 {
		t.Fatalf("%d figures, want 8", len(figs))
	}
	uniform, centric := 0, 0
	ids := map[string]bool{}
	for _, f := range figs {
		if ids[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		ids[f.ID] = true
		switch f.Pattern {
		case "uniform":
			uniform++
		case "centric":
			centric++
		default:
			t.Fatalf("bad pattern %q", f.Pattern)
		}
		if len(f.VLs) != 3 || len(f.Loads) == 0 {
			t.Fatalf("figure %s incomplete: %+v", f.ID, f)
		}
	}
	if uniform != 4 || centric != 4 {
		t.Fatalf("uniform/centric = %d/%d", uniform, centric)
	}
}

func TestFigureByID(t *testing.T) {
	f, err := FigureByID("F1")
	if err != nil || f.ID != "F1" {
		t.Fatalf("F1: %v %+v", err, f)
	}
	f, err = FigureByID("c-16x2")
	if err != nil || f.Pattern != "centric" || f.Network.M != 16 {
		t.Fatalf("c-16x2: %v %+v", err, f)
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(PaperNetworks())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Spot-check FT(8,3): 128 nodes, 80 switches, LMC 4, 16 LIDs/node.
	var found bool
	for _, r := range rows {
		if r.Network.M == 8 && r.Network.N == 3 {
			found = true
			if r.Nodes != 128 || r.Switches != 80 || r.LMC != 4 || r.LIDsPerNode != 16 {
				t.Fatalf("FT(8,3) row: %+v", r)
			}
			if r.LIDSpace != 128*16+1 || r.PathsAlpha0 != 16 {
				t.Fatalf("FT(8,3) LID row: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("FT(8,3) missing")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "8-port 3-tree") || !strings.Contains(out, "Table 1") {
		t.Errorf("FormatTable1:\n%s", out)
	}
	if _, err := Table1([]Network{{3, 1}}); err == nil {
		t.Error("invalid network accepted")
	}
}

// TestRunSmallFigure runs a reduced sweep end to end and checks the curve
// structure plus the basic physical sanity of every point.
func TestRunSmallFigure(t *testing.T) {
	spec := FigureSpec{
		ID:        "TEST",
		Network:   Network{4, 2},
		Pattern:   "uniform",
		Loads:     []float64{0.1, 0.5},
		VLs:       []int{1, 2},
		WarmupNs:  10_000,
		MeasureNs: 40_000,
		Seed:      7,
	}
	fig, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 4 { // 2 schemes x 2 VL counts
		t.Fatalf("%d curves", len(fig.Curves))
	}
	labels := map[string]bool{}
	for _, c := range fig.Curves {
		labels[c.Label] = true
		if len(c.Points) != 2 {
			t.Fatalf("curve %s has %d points", c.Label, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Accepted <= 0 || p.Accepted > 1.01 {
				t.Fatalf("curve %s: accepted %v", c.Label, p.Accepted)
			}
			if p.MeanLatencyNs <= 0 {
				t.Fatalf("curve %s: latency %v", c.Label, p.MeanLatencyNs)
			}
		}
	}
	for _, want := range []string{"MLID 1VL", "MLID 2VL", "SLID 1VL", "SLID 2VL"} {
		if !labels[want] {
			t.Fatalf("missing curve %s (have %v)", want, labels)
		}
	}
	if fig.Curve("MLID 1VL") == nil || fig.Curve("nope") != nil {
		t.Error("Curve lookup broken")
	}
	if !strings.Contains(fig.CSV(), "MLID 1VL") {
		t.Error("CSV missing curve")
	}
	if !strings.Contains(fig.Chart(), "TEST") {
		t.Error("Chart missing title")
	}
	sum := fig.Summary()
	if !strings.Contains(sum, "MLID/SLID peak ratio @1VL") {
		t.Errorf("Summary:\n%s", sum)
	}
}

// TestRunDeterministicAcrossParallelism: the sweep's parallel execution must
// not affect results.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	spec := FigureSpec{
		ID:        "DET",
		Network:   Network{4, 2},
		Pattern:   "centric",
		Loads:     []float64{0.2, 0.6},
		VLs:       []int{1},
		WarmupNs:  5_000,
		MeasureNs: 20_000,
		Seed:      3,
	}
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Errorf("non-deterministic sweep:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	bad := FigureSpec{Network: Network{3, 2}, Pattern: "uniform", Loads: []float64{0.1}, VLs: []int{1}}
	if _, err := bad.Run(); err == nil {
		t.Error("invalid network accepted")
	}
	bad2 := FigureSpec{Network: Network{4, 2}, Pattern: "weird", Loads: []float64{0.1}, VLs: []int{1}}
	if _, err := bad2.Run(); err == nil {
		t.Error("invalid pattern accepted")
	}
	// MLID on FT(8,5) needs LMC 8 > 7: the sweep must surface the SM error.
	bad3 := FigureSpec{Network: Network{8, 5}, Pattern: "uniform", Loads: []float64{0.1}, VLs: []int{1},
		WarmupNs: 1000, MeasureNs: 1000}
	if _, err := bad3.Run(); err == nil {
		t.Error("LMC-overflow network accepted")
	}
}

func TestQuickFiguresSmaller(t *testing.T) {
	q := QuickFigures()
	full := Figures()
	if len(q) != len(full) {
		t.Fatalf("quick %d vs full %d", len(q), len(full))
	}
	for i := range q {
		if len(q[i].Loads) >= len(full[i].Loads) {
			t.Error("quick figures not smaller")
		}
		if q[i].MeasureNs >= full[i].MeasureNs {
			t.Error("quick windows not shorter")
		}
	}
	var _ sim.Time = q[0].MeasureNs
}

// TestReplicasAveraging: replicated points average distinct seeds; the run
// still succeeds and points remain physical.
func TestReplicasAveraging(t *testing.T) {
	spec := FigureSpec{
		ID:        "REP",
		Network:   Network{4, 2},
		Pattern:   "uniform",
		Loads:     []float64{0.3},
		VLs:       []int{1},
		Replicas:  3,
		WarmupNs:  5_000,
		MeasureNs: 20_000,
		Seed:      31,
	}
	fig, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := fig.Curves[0].Points[0]
	if p.Accepted < 0.28 || p.Accepted > 0.32 || p.MeanLatencyNs <= 0 {
		t.Fatalf("averaged point %+v", p)
	}
	// Replicated results differ from a single-seed run (averaging happened).
	spec.Replicas = 1
	one, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if one.Curves[0].Points[0].MeanLatencyNs == p.MeanLatencyNs {
		t.Log("averaged equals single run (possible but unlikely); not failing")
	}
}

func TestJoinWorkerErrors(t *testing.T) {
	empty := make(chan error, 1)
	close(empty)
	if err := joinWorkerErrors(empty); err != nil {
		t.Fatalf("empty channel: %v", err)
	}

	// Three failures from two distinct causes, delivered out of order: the
	// join must surface both, once each, in sorted order — not just whichever
	// worker lost the race.
	ch := make(chan error, 3)
	ch <- errors.New("sim: vl out of range")
	ch <- errors.New("sim: bad load 2.0")
	ch <- errors.New("sim: vl out of range")
	close(ch)
	err := joinWorkerErrors(ch)
	if err == nil {
		t.Fatal("joined error is nil")
	}
	got := err.Error()
	want := "sim: bad load 2.0\nsim: vl out of range"
	if got != want {
		t.Fatalf("joined error:\n%q\nwant\n%q", got, want)
	}
}
