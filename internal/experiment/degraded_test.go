package experiment

import (
	"strings"
	"testing"
)

// TestDegradedStudyOrderingConsistent is the cross-validation acceptance
// test: at every sampled fault rate, the static max-load ranking of SLID vs
// MLID (ibverify's quality pass over the repaired tables) must match the
// simulated accepted-throughput ordering. It also pins the study's basic
// shape: both schemes at every rate, zero error-severity findings (the study
// would have failed), epoch verification actually ran, and MLID's
// fault-avoiding selection leaves fewer flows unrouted than SLID's single
// path.
func TestDegradedStudyOrderingConsistent(t *testing.T) {
	spec := QuickDegradedSpec()
	rows, err := DegradedStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (len(spec.Rates) + len(spec.SwitchOuts))
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	var switchRows int
	for _, r := range rows {
		if r.Axis == "switches" {
			switchRows++
			if r.SwitchesOut < 1 {
				t.Errorf("switches-axis row with SwitchesOut %d", r.SwitchesOut)
			}
		}
	}
	if switchRows != 2*len(spec.SwitchOuts) {
		t.Errorf("got %d switch-out rows, want %d", switchRows, 2*len(spec.SwitchOuts))
	}
	if err := DegradedOrderingConsistent(rows); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]DegradedRow{}
	for _, r := range rows {
		if r.FailedLinks < 1 {
			t.Errorf("%s rate %v: no failed links sampled", r.Scheme, r.Rate)
		}
		if r.VerifiedEpochs < 1 {
			t.Errorf("%s rate %v: simulation ran without epoch verification", r.Scheme, r.Rate)
		}
		if r.StaticMaxLoad <= 0 {
			t.Errorf("%s rate %v: static max load %v", r.Scheme, r.Rate, r.StaticMaxLoad)
		}
		byKey[r.Scheme] = r
	}
	if _, ok := byKey["SLID"]; !ok {
		t.Fatal("no SLID rows")
	}
	if _, ok := byKey["MLID"]; !ok {
		t.Fatal("no MLID rows")
	}
	// At every rate MLID's multipath leaves no more flows stranded than
	// SLID's single path, and repair leaves it no more broken entries'
	// worth of unreachability.
	perRate := map[float64]map[string]DegradedRow{}
	for _, r := range rows {
		if perRate[r.Rate] == nil {
			perRate[r.Rate] = map[string]DegradedRow{}
		}
		perRate[r.Rate][r.Scheme] = r
	}
	for rate, pair := range perRate {
		if pair["MLID"].StaticUnrouted > pair["SLID"].StaticUnrouted {
			t.Errorf("rate %v: MLID leaves %d flows unrouted vs SLID's %d — multipath should not lose paths",
				rate, pair["MLID"].StaticUnrouted, pair["SLID"].StaticUnrouted)
		}
	}
}

// TestDegradedStudyDeterministic: the same spec yields identical rows.
func TestDegradedStudyDeterministic(t *testing.T) {
	spec := QuickDegradedSpec()
	spec.Rates = spec.Rates[:1]
	a, err := DegradedStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradedStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if DegradedCSV(a) != DegradedCSV(b) {
		t.Fatalf("non-deterministic study:\n%s\nvs\n%s", DegradedCSV(a), DegradedCSV(b))
	}
}

// TestDegradedRendering: the table and CSV renderers cover every row.
func TestDegradedRendering(t *testing.T) {
	rows := []DegradedRow{
		{Scheme: "SLID", Rate: 0.02, FailedLinks: 1, StaticMaxLoad: 40, StaticPredictedAccepted: 0.24, Accepted: 0.25},
		{Scheme: "MLID", Rate: 0.02, FailedLinks: 1, StaticMaxLoad: 22, StaticPredictedAccepted: 0.30, Accepted: 0.29},
	}
	md := FormatDegraded(rows)
	if !strings.Contains(md, "| SLID |") || !strings.Contains(md, "| MLID |") {
		t.Fatalf("markdown table missing rows:\n%s", md)
	}
	csv := DegradedCSV(rows)
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", got, csv)
	}
	if err := DegradedOrderingConsistent(rows); err != nil {
		t.Fatal(err)
	}
	// A deliberately contradictory pair must be rejected.
	bad := []DegradedRow{
		{Scheme: "SLID", Rate: 0.5, StaticPredictedAccepted: 0.20, Accepted: 0.30},
		{Scheme: "MLID", Rate: 0.5, StaticPredictedAccepted: 0.30, Accepted: 0.20},
	}
	if err := DegradedOrderingConsistent(bad); err == nil {
		t.Fatal("contradictory ordering accepted")
	}
}
