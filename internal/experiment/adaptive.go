package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// AdaptiveSpec configures the path-selection family study: every pluggable
// selector (rank — the paper's static MLID policy — random, flowspray,
// adaptive, pktspray) runs over the same MLID-routed fabric on workloads
// chosen to separate the policies — a multi-hotspot concentration, the
// class-aligned shuffle (the structural worst case for any static
// source-indexed assignment), the tornado permutation, and an incast — and,
// when FaultRate is
// positive, repeats each point on a persistently degraded fabric: a seeded
// sample of inter-switch links dies before the warmup closes, fault-avoiding
// reselection filters the candidates every selector then chooses among, and
// the reliable transport rides the transient. rank's rows are the paper
// baseline the others are judged against; the degraded rows are where the
// policies structurally separate — rank's cyclic reselection piles every
// displaced flow onto the nearest surviving offset while adaptive balances
// the survivors by measured load.
type AdaptiveSpec struct {
	Network Network
	// DataVLs is the data virtual-lane count.
	DataVLs int
	// OfferedLoad is the per-node injection rate (bytes/ns).
	OfferedLoad float64
	// WarmupNs / MeasureNs size the run window.
	WarmupNs, MeasureNs sim.Time
	// Selectors names the policies to run (sim.SelectorNames order when
	// empty).
	Selectors []string
	// FaultRate, when positive, adds a degraded-fabric variant of every
	// (workload, selector) point: the fraction of inter-switch links that die
	// (persistently) at FaultNs, with fault-avoiding reselection active and
	// the reliable transport on.
	FaultRate float64
	// FaultNs is when the sampled links die — inside the warmup, so the SM
	// has converged when measurement opens and the window sees the steady
	// degraded fabric, not the transient.
	FaultNs sim.Time
	// Transport parameterizes the degraded variant's reliable transport; the
	// zero value takes every default.
	Transport sim.TransportConfig
	// Shards is the per-run parallel shard count (0 = auto); results are
	// identical for every value.
	Shards int
	// Seed drives the traffic, the fault schedules, and the runs.
	Seed int64
	// HeapOnlyScheduler forces the engine's fallback heap path.
	HeapOnlyScheduler bool
}

// AdaptiveStudySpec is the full-fidelity family study on the 8-port 3-tree
// (128 nodes): hot enough that congestion-aware selection has something to
// dodge, with a degraded-fabric axis at a 5% flap rate plus one root kill.
func AdaptiveStudySpec() AdaptiveSpec {
	return AdaptiveSpec{
		Network:     Network{8, 3},
		DataVLs:     2,
		OfferedLoad: 0.6,
		WarmupNs:    50_000, MeasureNs: 200_000,
		FaultRate: 0.05,
		FaultNs:   2_000,
		Transport: sim.TransportConfig{
			BaseTimeoutNs: 150_000, MaxTimeoutNs: 300_000, MaxRetries: 4,
			DrainNs: 1_500_000,
		},
		Seed: 131,
	}
}

// QuickAdaptiveSpec is the reduced-cost variant for test suites and the CI
// smoke: a small fabric and short windows, keeping one faulted point so the
// selector × faults × transport composition stays exercised. The 4-ary
// 3-tree (16 nodes) is the smallest fabric where the class-aligned shuffle
// exists (h^(n-1) = 4 classes over m = 4 groups).
func QuickAdaptiveSpec() AdaptiveSpec {
	return AdaptiveSpec{
		Network:     Network{4, 3},
		DataVLs:     2,
		OfferedLoad: 0.6,
		WarmupNs:    20_000, MeasureNs: 60_000,
		FaultRate: 0.25,
		FaultNs:   2_000,
		Transport: sim.TransportConfig{
			BaseTimeoutNs: 50_000, MaxTimeoutNs: 100_000, MaxRetries: 4,
			DrainNs: 500_000,
		},
		Seed: 131,
	}
}

// AdaptiveRow is one (workload, selector, faulted?) measurement.
type AdaptiveRow struct {
	Workload string
	Selector string
	// Faulted marks the degraded-fabric variant (persistent link sample +
	// transport).
	Faulted bool
	// AcceptedBns is the measured accepted traffic (bytes/ns/node).
	AcceptedBns float64
	// MeanLatencyNs / P99LatencyNs cover window deliveries.
	MeanLatencyNs, P99LatencyNs float64
	// Delivered / Dropped / Failed account the run; Reroutes counts
	// fault-displaced choices, OutOfOrder quantifies spray reordering, and
	// Retransmits the transport's recovery traffic (faulted rows only).
	Delivered, Dropped, Failed        int64
	Reroutes, OutOfOrder, Retransmits int64
}

// classShuffle builds the class-aligned adversarial permutation for the
// static rank policy. For cross-group traffic (gcp length 0) the canonical
// MLID offset of a source is Rank(src, 1) = src mod h^(n-1) — a function of
// the source alone — so every member of an offset class c ascends to the
// same root switch for all of its distant traffic. The permutation sends the
// entire class into one destination group G = c mod m: under rank those m-1
// cross-group flows converge on that root's single down-link toward G, a
// worst-case static collision the paper's assignment cannot see; selectors
// that randomize or measure load spread the class across the h^(n-1) roots
// and restore near-full throughput. The construction maps one source per
// class to itself; those are deranged among each other so Dest never
// consults the RNG. It requires h^(n-1) to be a multiple of m (true for
// FT(8,3) and FT(4,3); the caller skips the workload otherwise).
func classShuffle(tr *topology.Tree) (traffic.PermutationPattern, bool) {
	nodes, m := tr.Nodes(), tr.M()
	classes := nodes / m // h^(n-1) offset classes, one member per group
	if classes%m != 0 {
		return traffic.PermutationPattern{}, false
	}
	perm := make([]int, nodes)
	var fixed []int
	for src := range perm {
		g, c := src/classes, src%classes
		dst := (c%m)*classes + (c/m)*m + g
		if dst == src {
			fixed = append(fixed, src)
		}
		perm[src] = dst
	}
	for i, src := range fixed {
		perm[src] = fixed[(i+1)%len(fixed)]
	}
	return traffic.PermutationPattern{Label: "shuffle", Perm: perm}, true
}

// adaptiveWorkloads are the study's traffic patterns: a four-way hotspot
// (half of every source's traffic into four hot sinks on distinct leaves),
// the class-aligned shuffle permutation (the static policy's structural
// worst case), the tornado permutation, and a two-sink incast at 90%
// concentration.
func adaptiveWorkloads(tr *topology.Tree) []struct {
	name string
	pat  traffic.Pattern
} {
	nodes := tr.Nodes()
	leaf := tr.M() / 2
	spread := func(k int) []int {
		hs := make([]int, k)
		for i := range hs {
			hs[i] = (i * leaf * (nodes / (k * leaf))) % nodes
		}
		return hs
	}
	ws := []struct {
		name string
		pat  traffic.Pattern
	}{
		{"hotspot", traffic.MultiHotspot{Nodes: nodes, Hotspots: spread(4), Fraction: 0.5}},
	}
	if shuffle, ok := classShuffle(tr); ok {
		ws = append(ws, struct {
			name string
			pat  traffic.Pattern
		}{"shuffle", shuffle})
	}
	return append(ws, []struct {
		name string
		pat  traffic.Pattern
	}{
		{"tornado", traffic.Tornado(nodes)},
		{"incast", traffic.MultiHotspot{Nodes: nodes, Hotspots: spread(2), Fraction: 0.9}},
	}...)
}

// AdaptiveStudy runs the family study. Every selector of a (workload,
// faulted?) block runs the identical subnet, traffic, seed, and (for faulted
// blocks) fault schedule, so rows within a block differ only by policy. The
// runner asserts packet conservation after every run.
func AdaptiveStudy(spec AdaptiveSpec) ([]AdaptiveRow, error) {
	tr, err := topology.New(spec.Network.M, spec.Network.N)
	if err != nil {
		return nil, err
	}
	sn, err := (&ib.SubnetManager{Tree: tr, Engine: core.NewMLID()}).Configure()
	if err != nil {
		return nil, fmt.Errorf("experiment: MLID on %s: %w", spec.Network, err)
	}
	names := spec.Selectors
	if len(names) == 0 {
		names = sim.SelectorNames()
	}
	selectors := make([]sim.Selector, len(names))
	for i, name := range names {
		if selectors[i], err = sim.SelectorByName(name); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	shards := ResolveShards(tr, spec.Shards)
	var rows []AdaptiveRow
	for wi, w := range adaptiveWorkloads(tr) {
		variants := []bool{false}
		if spec.FaultRate > 0 {
			variants = append(variants, true)
		}
		for _, faulted := range variants {
			var plan *sim.FaultPlan
			var transport *sim.TransportConfig
			if faulted {
				// One seeded link sample per workload, shared by every
				// selector, dead from FaultNs for the rest of the run.
				rng := rand.New(rand.NewSource(spec.Seed*6961 + int64(wi)))
				plan = &sim.FaultPlan{Reselect: true}
				for _, l := range degradedSample(tr, spec.FaultRate, rng) {
					plan.Faults = append(plan.Faults, sim.LinkFault{
						Switch: l[0], Port: int(l[1]), DownNs: spec.FaultNs,
					})
				}
				tc := spec.Transport
				transport = &tc
			}
			for si, sel := range selectors {
				res, err := sim.Run(sim.Config{
					Subnet:            sn,
					Pattern:           w.pat,
					DataVLs:           spec.DataVLs,
					OfferedLoad:       spec.OfferedLoad,
					WarmupNs:          spec.WarmupNs,
					MeasureNs:         spec.MeasureNs,
					PathSelect:        sel,
					FaultPlan:         plan,
					Transport:         transport,
					VerifyEpochs:      faulted,
					Shards:            shards,
					Seed:              spec.Seed + int64(wi),
					HeapOnlyScheduler: spec.HeapOnlyScheduler,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: adaptive study %s/%s: %w", w.name, names[si], err)
				}
				unaccounted := res.TotalGenerated - res.TotalDelivered - res.InFlightAtEnd
				if faulted {
					unaccounted -= res.Failed
				} else {
					unaccounted -= res.DroppedTotal
				}
				if unaccounted != 0 {
					return nil, fmt.Errorf("experiment: adaptive study %s/%s: %d packets unaccounted",
						w.name, names[si], unaccounted)
				}
				rows = append(rows, AdaptiveRow{
					Workload:      w.name,
					Selector:      names[si],
					Faulted:       faulted,
					AcceptedBns:   res.Accepted,
					MeanLatencyNs: res.MeanLatencyNs,
					P99LatencyNs:  res.P99LatencyNs,
					Delivered:     res.TotalDelivered,
					Dropped:       res.DroppedTotal,
					Failed:        res.Failed,
					Reroutes:      res.Reroutes,
					OutOfOrder:    res.OutOfOrder,
					Retransmits:   res.Retransmits,
				})
			}
		}
	}
	return rows, nil
}

// FormatAdaptive renders the rows as a markdown table.
func FormatAdaptive(rows []AdaptiveRow) string {
	var b strings.Builder
	b.WriteString("| workload | selector | faults | accepted (B/ns/node) | mean (ns) | p99 (ns) | delivered | dropped | failed | reroutes | out-of-order | rexmit |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		faults := "—"
		if r.Faulted {
			faults = "chaos"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %.4f | %.0f | %.0f | %d | %d | %d | %d | %d | %d |\n",
			r.Workload, r.Selector, faults, r.AcceptedBns, r.MeanLatencyNs, r.P99LatencyNs,
			r.Delivered, r.Dropped, r.Failed, r.Reroutes, r.OutOfOrder, r.Retransmits)
	}
	return b.String()
}

// AdaptiveCSV renders the rows in long form.
func AdaptiveCSV(rows []AdaptiveRow) string {
	var b strings.Builder
	b.WriteString("workload,selector,faulted,accepted_bns,mean_latency_ns,p99_latency_ns,delivered,dropped,failed,reroutes,out_of_order,retransmits\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%t,%.6f,%.2f,%.2f,%d,%d,%d,%d,%d,%d\n",
			r.Workload, r.Selector, r.Faulted, r.AcceptedBns, r.MeanLatencyNs, r.P99LatencyNs,
			r.Delivered, r.Dropped, r.Failed, r.Reroutes, r.OutOfOrder, r.Retransmits)
	}
	return b.String()
}
