package experiment

import (
	"reflect"
	"testing"
)

// TestChaosStudyQuick runs the reduced chaos campaign and checks the
// acceptance properties: the runner's conservation assertion held (it errors
// otherwise), every rate produced a comparable SLID/MLID pair on the same
// schedule, and MLID — whose retransmissions re-select a fault-avoiding LID —
// retransmits strictly less than SLID at every rate.
func TestChaosStudyQuick(t *testing.T) {
	spec := QuickChaosSpec()
	rows, err := ChaosStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(spec.FaultRates) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(spec.FaultRates))
	}
	for i := 0; i < len(rows); i += 2 {
		slid, mlid := rows[i], rows[i+1]
		if slid.Scheme == mlid.Scheme || slid.FaultRate != mlid.FaultRate {
			t.Fatalf("rows %d/%d are not a scheme pair at one rate: %+v %+v", i, i+1, slid, mlid)
		}
		if slid.Scheme != "SLID" {
			slid, mlid = mlid, slid
		}
		if slid.Flaps != mlid.Flaps || slid.SwitchKills != mlid.SwitchKills {
			t.Errorf("rate %v: schemes ran different schedules", slid.FaultRate)
		}
		if slid.Delivered == 0 || mlid.Delivered == 0 {
			t.Errorf("rate %v: a scheme delivered nothing", slid.FaultRate)
		}
		if slid.Retransmits == 0 {
			t.Errorf("rate %v: SLID never retransmitted — the chaos schedule did not bite", slid.FaultRate)
		}
		if mlid.Retransmits >= slid.Retransmits {
			t.Errorf("rate %v: MLID retransmits %d, SLID %d: want strictly fewer under MLID",
				slid.FaultRate, mlid.Retransmits, slid.Retransmits)
		}
	}
}

// TestChaosSoakDeterminism is the CI soak: two seeds, each run twice per
// scheduler path (calendar and heap-only), every result diffed bit for bit.
// Each campaign internally asserts packet conservation, so the soak also
// proves zero silent loss across dozens of seeded fault schedules.
func TestChaosSoakDeterminism(t *testing.T) {
	for _, seed := range []int64{99, 1234} {
		spec := QuickChaosSpec()
		spec.Seed = seed
		base, err := ChaosStudy(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := ChaosStudy(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(base, again) {
			t.Fatalf("seed %d: chaos campaign is not reproducible", seed)
		}
		spec.HeapOnlyScheduler = true
		heap, err := ChaosStudy(spec)
		if err != nil {
			t.Fatalf("seed %d (heap-only): %v", seed, err)
		}
		heap2, err := ChaosStudy(spec)
		if err != nil {
			t.Fatalf("seed %d (heap-only): %v", seed, err)
		}
		if !reflect.DeepEqual(heap, heap2) {
			t.Fatalf("seed %d: heap-only campaign is not reproducible", seed)
		}
		if !reflect.DeepEqual(base, heap) {
			t.Fatalf("seed %d: calendar and heap-only scheduler paths disagree", seed)
		}
	}
}
