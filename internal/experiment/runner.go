package experiment

import (
	"runtime"
	"sync"

	"mlid/internal/ib"
)

// Campaign runner: the sweep studies (-degraded, -smstudy, -chaos,
// -recovery) are lists of independent sweep points — (scenario, scheme) or
// (scheme, mode) cells — whose outputs must not depend on execution order.
// campaignRun executes the points on a bounded worker pool with
// point-indexed result assembly, the same determinism contract as
// FigureSpec.Run's replica slots: every point writes only results[i], rows
// come out in serial-loop order, and the first error by point index is
// returned, so serial (workers=1) and parallel runs are byte-identical.

// campaignWorkerCap, when positive, bounds every campaign pool. Tests use it
// to force the serial path and prove serial/parallel byte-identity.
var campaignWorkerCap int

// campaignWorkers is the default pool size for a campaign of n points.
func campaignWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if campaignWorkerCap > 0 && w > campaignWorkerCap {
		w = campaignWorkerCap
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// campaignRun executes fn(0..n-1) on workers goroutines and returns the
// results in point order. Every point runs to completion even when an
// earlier one fails (they are independent by contract); the error returned
// is the lowest-indexed one, matching what a serial loop would surface.
func campaignRun[R any](n, workers int, fn func(i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cloneSubnetLFTs makes a copy-on-write working copy of a pristine
// configuration: the tree, engine, and endport plan are shared (read-only),
// only the forwarding tables are deep-copied. This is what lets one
// Configure per (tree, scheme) back every sweep scenario — offline repairs
// mutate the clone, simulations clone again internally under a FaultPlan.
func cloneSubnetLFTs(sn *ib.Subnet) *ib.Subnet {
	out := &ib.Subnet{
		Tree:     sn.Tree,
		Engine:   sn.Engine,
		Endports: sn.Endports,
		LFTs:     make([]*ib.LFT, len(sn.LFTs)),
	}
	for i, lft := range sn.LFTs {
		out.LFTs[i] = lft.Clone()
	}
	return out
}
