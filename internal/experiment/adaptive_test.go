package experiment

import (
	"reflect"
	"testing"

	"mlid/internal/sim"
	"mlid/internal/topology"
)

// TestClassShuffleProperties pins the adversarial construction: a bijection
// with no fixed points whose every non-deranged class member sends into the
// group indexed by its own offset class — the alignment that collapses the
// static rank policy onto one root down-link per class.
func TestClassShuffleProperties(t *testing.T) {
	tr := topology.MustNew(8, 3)
	pat, ok := classShuffle(tr)
	if !ok {
		t.Fatal("classShuffle unavailable on FT(8,3)")
	}
	nodes, m := tr.Nodes(), tr.M()
	classes := nodes / m
	seen := make([]bool, nodes)
	deranged := 0
	for src, dst := range pat.Perm {
		if dst == src {
			t.Fatalf("fixed point at %d", src)
		}
		if seen[dst] {
			t.Fatalf("destination %d hit twice", dst)
		}
		seen[dst] = true
		c := src % classes
		if dst/classes != c%m {
			// Deranged former fixed points are the only exceptions, and
			// there is exactly one per class.
			deranged++
		}
	}
	if deranged > classes {
		t.Errorf("%d sources escape their class group, want at most %d", deranged, classes)
	}
	// FT(4,2) has fewer offset classes than groups; the construction must
	// bow out rather than emit a partial alignment.
	if _, ok := classShuffle(topology.MustNew(4, 2)); ok {
		t.Error("classShuffle accepted FT(4,2)")
	}
}

// TestAdaptiveStudyQuick runs the reduced family study and checks shape and
// composition: every (workload, variant) block carries one row per selector,
// conservation held (the runner errors otherwise), the degraded variant
// actually bit (reroutes under reselection, retransmits under transport),
// and the spray selectors reordered while rank stayed in order on the
// quiet permutation.
func TestAdaptiveStudyQuick(t *testing.T) {
	spec := QuickAdaptiveSpec()
	rows, err := AdaptiveStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	selectors := sim.SelectorNames()
	workloads := 4 // hotspot, shuffle, tornado, incast on FT(4,3)
	if want := workloads * 2 * len(selectors); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	var faultedReroutes, faultedRexmit int64
	for i, r := range rows {
		if r.Selector != selectors[i%len(selectors)] {
			t.Fatalf("row %d: selector %q out of order", i, r.Selector)
		}
		if r.Delivered == 0 {
			t.Errorf("%s/%s faulted=%t delivered nothing", r.Workload, r.Selector, r.Faulted)
		}
		if r.Faulted {
			faultedReroutes += r.Reroutes
			faultedRexmit += r.Retransmits
		} else if r.Retransmits != 0 {
			t.Errorf("%s/%s: retransmits without transport", r.Workload, r.Selector)
		}
	}
	if faultedReroutes == 0 {
		t.Error("degraded variants never rerouted — the link sample did not bite")
	}
	if faultedRexmit == 0 {
		t.Error("degraded variants never retransmitted")
	}
}

// TestAdaptiveShuffleSeparates is the acceptance regression: on the
// class-aligned shuffle the congestion-aware selector must strictly beat the
// paper's static rank assignment, whose class members all collide on one
// root down-link. Short windows keep this cheap; the margin at full fidelity
// (EXPERIMENTS.md) is ≈1.45×, so a strict > here has enormous headroom.
func TestAdaptiveShuffleSeparates(t *testing.T) {
	spec := AdaptiveSpec{
		Network:     Network{8, 3},
		DataVLs:     2,
		OfferedLoad: 0.6,
		WarmupNs:    10_000, MeasureNs: 40_000,
		Selectors: []string{"rank", "adaptive"},
		Seed:      131,
	}
	rows, err := AdaptiveStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	accepted := map[string]map[string]float64{}
	for _, r := range rows {
		if accepted[r.Workload] == nil {
			accepted[r.Workload] = map[string]float64{}
		}
		accepted[r.Workload][r.Selector] = r.AcceptedBns
	}
	sh := accepted["shuffle"]
	if sh["adaptive"] <= sh["rank"] {
		t.Errorf("shuffle: adaptive %.4f does not beat rank %.4f", sh["adaptive"], sh["rank"])
	}
	// Tornado is statically balanced under MLID: adaptive must not lose
	// ground where rank is already optimal.
	to := accepted["tornado"]
	if to["adaptive"] < 0.99*to["rank"] {
		t.Errorf("tornado: adaptive %.4f regressed below rank %.4f", to["adaptive"], to["rank"])
	}
}

// TestAdaptiveStudyDeterminism runs the quick campaign twice per scheduler
// path and diffs bit for bit: the whole family — including the stateful and
// congestion-coupled selectors under faults and transport — must be
// reproducible.
func TestAdaptiveStudyDeterminism(t *testing.T) {
	spec := QuickAdaptiveSpec()
	base, err := AdaptiveStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := AdaptiveStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("adaptive campaign is not reproducible")
	}
	spec.HeapOnlyScheduler = true
	heap, err := AdaptiveStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, heap) {
		t.Fatal("calendar and heap-only scheduler paths disagree")
	}
}
