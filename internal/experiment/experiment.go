// Package experiment is the reproduction harness for the paper's evaluation
// section: it defines the simulated network configurations (Table 1), the
// eight latency-vs-accepted-traffic figures (SLID/MLID x 1/2/4 virtual lanes,
// under uniform and 50%-centric traffic, across four network sizes), runs the
// parameter sweeps in parallel, and renders tables, CSV and ASCII charts.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/stats"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// Network names one m-port n-tree configuration of the evaluation.
type Network struct {
	M, N int
}

// String returns the paper's naming, e.g. "8-port 3-tree".
func (n Network) String() string { return fmt.Sprintf("%d-port %d-tree", n.M, n.N) }

// PaperNetworks are the four network sizes the evaluation sweeps. The paper's
// exact sizes were lost to OCR; these span the axes its observations discuss:
// small vs large switch port counts, and low vs high tree dimension n.
func PaperNetworks() []Network {
	return []Network{{4, 4}, {8, 3}, {16, 2}, {32, 2}}
}

// PaperVLs are the virtual-lane counts the paper simulates.
func PaperVLs() []int { return []int{1, 2, 4} }

// FigureSpec describes one figure: a network, a traffic pattern, and the
// load sweep; every figure carries six curves (SLID/MLID x VL counts).
type FigureSpec struct {
	// ID is the experiment identifier, e.g. "F1".
	ID      string
	Network Network
	// Pattern is "uniform" or "centric" (50% hotspot).
	Pattern string
	// Loads are the offered loads to sweep, in bytes/ns per node.
	Loads []float64
	// VLs are the virtual-lane counts to sweep.
	VLs []int
	// WarmupNs and MeasureNs size each run's windows.
	WarmupNs, MeasureNs sim.Time
	// Reception selects the endnode consumption model.
	Reception sim.ReceptionModel
	// Replicas runs each point this many times with distinct seeds and
	// averages the measurements (0 or 1 means a single run per point).
	Replicas int
	// Shards is the per-run parallel shard count handed to sim.Config.
	// 0 selects the auto default min(GOMAXPROCS, leaf groups); results are
	// bit-identical for every value, so it only affects wall-clock.
	Shards int
	// Seed drives all runs of the figure.
	Seed int64
}

// ResolveShards maps a spec's requested shard count to sim.Config.Shards:
// 0 selects the auto default min(GOMAXPROCS, leaf-switch groups of the tree);
// any other value passes through unchanged (the engine clamps it to the leaf
// count). The sharded engine is bit-for-bit deterministic across shard
// counts, so the choice only affects wall-clock, never results.
func ResolveShards(tr *topology.Tree, requested int) int {
	if requested != 0 {
		return requested
	}
	n := runtime.GOMAXPROCS(0)
	if max := tr.MaxShards(); n > max {
		n = max
	}
	return n
}

// Title renders the figure caption, mirroring the paper's.
func (f FigureSpec) Title() string {
	return fmt.Sprintf("%s: %s, %s traffic, 256-byte packets", f.ID, f.Network, f.Pattern)
}

// Figure is a completed figure: the spec plus its measured curves.
type Figure struct {
	Spec   FigureSpec
	Curves []stats.Curve
}

// Figures returns the full-fidelity specs for the paper's eight evaluation
// figures: F1..F4 uniform, F5..F8 50%-centric, over PaperNetworks.
func Figures() []FigureSpec {
	return buildFigures(defaultLoads(), 100_000, 300_000)
}

// QuickFigures returns reduced-cost specs (fewer load points, shorter
// windows) for test suites and benchmarks; the curve shapes are preserved.
func QuickFigures() []FigureSpec {
	return buildFigures([]float64{0.1, 0.4, 0.8}, 30_000, 80_000)
}

func defaultLoads() []float64 {
	return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

func buildFigures(loads []float64, warm, meas sim.Time) []FigureSpec {
	var out []FigureSpec
	id := 1
	for _, pattern := range []string{"uniform", "centric"} {
		for _, nw := range PaperNetworks() {
			out = append(out, FigureSpec{
				ID:        fmt.Sprintf("F%d", id),
				Network:   nw,
				Pattern:   pattern,
				Loads:     loads,
				VLs:       PaperVLs(),
				WarmupNs:  warm,
				MeasureNs: meas,
				Seed:      1000 + int64(id),
			})
			id++
		}
	}
	return out
}

// FigureByID finds a spec among Figures() by its ID or by a short name of the
// form "u-8x3" / "c-16x2" (pattern prefix, then MxN).
func FigureByID(name string) (FigureSpec, error) {
	for _, f := range Figures() {
		if f.ID == name {
			return f, nil
		}
		short := fmt.Sprintf("%c-%dx%d", f.Pattern[0], f.Network.M, f.Network.N)
		if short == name {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiment: unknown figure %q (want F1..F8 or e.g. u-8x3)", name)
}

// pattern builds the figure's traffic pattern for a node count.
func (f FigureSpec) pattern(nodes int) (traffic.Pattern, error) {
	switch f.Pattern {
	case "uniform":
		return traffic.Uniform{Nodes: nodes}, nil
	case "centric":
		// The hotspot sits at node 0, as in the paper's Figure 9 example
		// where a single destination draws concentrated traffic.
		return traffic.Centric{Nodes: nodes, Hotspot: 0, Fraction: 0.5}, nil
	}
	return nil, fmt.Errorf("experiment: unknown pattern %q", f.Pattern)
}

// Run executes the figure's sweep: for each scheme and VL count, one
// simulation per load point. Runs execute in parallel across the machine's
// cores; results are deterministic regardless of scheduling because every
// run is independently seeded.
func (f FigureSpec) Run() (Figure, error) {
	tree, err := topology.New(f.Network.M, f.Network.N)
	if err != nil {
		return Figure{}, err
	}
	pat, err := f.pattern(tree.Nodes())
	if err != nil {
		return Figure{}, err
	}

	replicas := f.Replicas
	if replicas < 1 {
		replicas = 1
	}
	shards := ResolveShards(tree, f.Shards)
	type job struct {
		curve, point, replica int
		cfg                   sim.Config
	}
	var jobs []job
	var curves []stats.Curve
	// (curve, point) -> per-replica results. Slots are preallocated and each
	// worker stores at its job's replica index, so the slice order — and
	// therefore meanPoint's float accumulation order — does not depend on
	// goroutine completion order.
	acc := make(map[[2]int][]stats.Point)
	var accMu sync.Mutex
	for _, scheme := range []core.Scheme{core.NewSLID(), core.NewMLID()} {
		sn, err := (&ib.SubnetManager{Tree: tree, Engine: scheme}).Configure()
		if err != nil {
			return Figure{}, fmt.Errorf("experiment: %s on %s: %w", scheme.Name(), f.Network, err)
		}
		for _, vls := range f.VLs {
			ci := len(curves)
			curves = append(curves, stats.Curve{
				Label:  fmt.Sprintf("%s %dVL", scheme.Name(), vls),
				Points: make([]stats.Point, len(f.Loads)),
			})
			for pi, load := range f.Loads {
				acc[[2]int{ci, pi}] = make([]stats.Point, replicas)
				for r := 0; r < replicas; r++ {
					jobs = append(jobs, job{curve: ci, point: pi, replica: r, cfg: sim.Config{
						Subnet:      sn,
						Pattern:     pat,
						DataVLs:     vls,
						OfferedLoad: load,
						WarmupNs:    f.WarmupNs,
						MeasureNs:   f.MeasureNs,
						Reception:   f.Reception,
						Shards:      shards,
						Seed:        f.Seed + int64(ci*100_000+pi*100+r),
					}})
				}
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan job)
	errCh := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				res, err := sim.Run(j.cfg)
				if err != nil {
					errCh <- err
					continue
				}
				p := stats.Point{
					OfferedLoad:   res.OfferedLoad,
					Accepted:      res.Accepted,
					MeanLatencyNs: res.MeanLatencyNs,
					P99LatencyNs:  res.P99LatencyNs,
					Delivered:     res.DeliveredWindow,
					Generated:     res.GeneratedWindow,
					Saturated:     res.Saturated,
				}
				accMu.Lock()
				acc[[2]int{j.curve, j.point}][j.replica] = p
				accMu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	close(errCh)
	if err := joinWorkerErrors(errCh); err != nil {
		return Figure{}, err
	}
	for key, results := range acc {
		curves[key[0]].Points[key[1]] = meanPoint(results)
	}
	return Figure{Spec: f, Curves: curves}, nil
}

// joinWorkerErrors drains a closed error channel and joins every distinct
// failure. Workers keep pulling jobs after an error, so several load points
// can fail in one sweep; reporting only the first (the old behavior) hid the
// rest, and which one arrived first depended on goroutine scheduling. Errors
// are deduplicated by message and sorted so the joined error is deterministic.
func joinWorkerErrors(errCh <-chan error) error {
	seen := map[string]bool{}
	var msgs []string
	for err := range errCh {
		if msg := err.Error(); !seen[msg] {
			seen[msg] = true
			msgs = append(msgs, msg)
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	sort.Strings(msgs)
	errs := make([]error, len(msgs))
	for i, msg := range msgs {
		errs[i] = errors.New(msg)
	}
	return errors.Join(errs...)
}

// meanPoint averages replica measurements; the point is flagged saturated
// when a majority of replicas were.
func meanPoint(results []stats.Point) stats.Point {
	var out stats.Point
	sat := 0
	for _, r := range results {
		out.OfferedLoad = r.OfferedLoad
		out.Accepted += r.Accepted
		out.MeanLatencyNs += r.MeanLatencyNs
		out.P99LatencyNs += r.P99LatencyNs
		out.Delivered += r.Delivered
		out.Generated += r.Generated
		if r.Saturated {
			sat++
		}
	}
	n := float64(len(results))
	out.Accepted /= n
	out.MeanLatencyNs /= n
	out.P99LatencyNs /= n
	out.Delivered /= int64(len(results))
	out.Generated /= int64(len(results))
	out.Saturated = sat*2 > len(results)
	return out
}

// Curve returns the named curve ("MLID 1VL", ...), or nil.
func (fig Figure) Curve(label string) *stats.Curve {
	for i := range fig.Curves {
		if fig.Curves[i].Label == label {
			return &fig.Curves[i]
		}
	}
	return nil
}

// CSV renders the figure's curves in long form.
func (fig Figure) CSV() string { return stats.CSV(fig.Curves) }

// Chart renders the figure as an ASCII latency-vs-accepted-traffic plot.
func (fig Figure) Chart() string {
	return stats.ASCIIChart(fig.Spec.Title(), fig.Curves, 72, 20)
}

// Summary compares peak accepted traffic across the figure's curves and
// states the MLID/SLID ratio per VL count — the quantity behind the paper's
// Observations 1, 3 and 5.
func (fig Figure) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig.Spec.Title())
	peaks := map[string]float64{}
	for _, c := range fig.Curves {
		peaks[c.Label] = c.PeakAccepted()
		fmt.Fprintf(&b, "  %-10s peak accepted %.4f B/ns/node, low-load latency %.0f ns\n",
			c.Label, c.PeakAccepted(), c.LowLoadLatency())
	}
	var vls []int
	seen := map[int]bool{}
	for _, v := range fig.Spec.VLs {
		if !seen[v] {
			seen[v] = true
			vls = append(vls, v)
		}
	}
	sort.Ints(vls)
	for _, v := range vls {
		m := peaks[fmt.Sprintf("MLID %dVL", v)]
		s := peaks[fmt.Sprintf("SLID %dVL", v)]
		if s > 0 {
			fmt.Fprintf(&b, "  MLID/SLID peak ratio @%dVL: %.2f\n", v, m/s)
		}
	}
	return b.String()
}

// Table1Row is one row of the reproduced Table 1: the simulated network
// configurations and their MLID addressing parameters.
type Table1Row struct {
	Network         Network
	Nodes, Switches int
	Links           int
	LMC             uint8
	LIDsPerNode     int
	LIDSpace        int
	PathsAlpha0     int64 // distinct paths between maximally distant nodes
}

// Table1 computes the configuration table for the evaluation networks.
func Table1(nets []Network) ([]Table1Row, error) {
	mlidScheme := core.NewMLID()
	rows := make([]Table1Row, 0, len(nets))
	for _, nw := range nets {
		t, err := topology.New(nw.M, nw.N)
		if err != nil {
			return nil, err
		}
		lmc := mlidScheme.LMC(t)
		rows = append(rows, Table1Row{
			Network:     nw,
			Nodes:       t.Nodes(),
			Switches:    t.Switches(),
			Links:       t.Links(),
			LMC:         lmc,
			LIDsPerNode: 1 << lmc,
			LIDSpace:    mlidScheme.LIDSpace(t),
			PathsAlpha0: t.PathCount(0, topology.NodeID(t.Nodes()-1)),
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: simulated m-port n-tree InfiniBand networks\n")
	fmt.Fprintf(&b, "%-16s %7s %9s %7s %4s %10s %9s %12s\n",
		"network", "nodes", "switches", "links", "LMC", "LIDs/node", "LIDspace", "paths(a=0)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %7d %9d %7d %4d %10d %9d %12d\n",
			r.Network.String(), r.Nodes, r.Switches, r.Links, r.LMC, r.LIDsPerNode, r.LIDSpace, r.PathsAlpha0)
	}
	return b.String()
}
