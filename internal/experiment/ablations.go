package experiment

import (
	"fmt"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// AblationRow is one measured ablation point.
type AblationRow struct {
	// Experiment ids follow DESIGN.md's index (EX-A, EX-B, ...).
	Experiment string
	Setting    string
	// AcceptedBns is the measured accepted traffic (bytes/ns/node) and
	// MeanLatencyNs the mean latency of the run.
	AcceptedBns   float64
	MeanLatencyNs float64
}

// ablationSpec is one simulation of the ablation suite.
type ablationSpec struct {
	experiment, setting string
	scheme              core.Scheme
	pattern             func(t *topology.Tree) traffic.Pattern
	mutate              func(cfg *sim.Config)
}

// RunAblations executes the repository's ablation suite (DESIGN.md EX-A,
// EX-B, EX-C, EX-F, EX-G, EX-H and the switching-mode study) on the 8-port
// 2-tree and returns the measured rows in execution order. quick shortens
// the windows.
func RunAblations(quick bool) ([]AblationRow, error) {
	tr, err := topology.New(8, 2)
	if err != nil {
		return nil, err
	}
	warm, meas := sim.Time(60_000), sim.Time(200_000)
	if quick {
		warm, meas = 20_000, 60_000
	}
	centric := func(t *topology.Tree) traffic.Pattern {
		return traffic.Centric{Nodes: t.Nodes(), Hotspot: 0, Fraction: 0.5}
	}
	uniform := func(t *topology.Tree) traffic.Pattern {
		return traffic.Uniform{Nodes: t.Nodes()}
	}
	bitcomp := func(t *topology.Tree) traffic.Pattern {
		return traffic.BitComplement(t.Nodes())
	}

	var specs []ablationSpec
	// EX-A: virtual lanes beyond the paper's 4.
	for _, vls := range []int{1, 4, 8} {
		vls := vls
		for _, s := range core.Schemes() {
			specs = append(specs, ablationSpec{
				experiment: "EX-A vl-count", setting: fmt.Sprintf("%s %dVL", s.Name(), vls),
				scheme: s, pattern: centric,
				mutate: func(cfg *sim.Config) { cfg.DataVLs = vls },
			})
		}
	}
	// EX-B: buffer depth.
	for _, buf := range []int{1, 2, 4} {
		buf := buf
		specs = append(specs, ablationSpec{
			experiment: "EX-B buffers", setting: fmt.Sprintf("MLID %d-pkt buffers", buf),
			scheme: core.NewMLID(), pattern: centric,
			mutate: func(cfg *sim.Config) { cfg.BufPackets = buf },
		})
	}
	// EX-C: packet size.
	for _, size := range []int{64, 256, 1024} {
		size := size
		specs = append(specs, ablationSpec{
			experiment: "EX-C pktsize", setting: fmt.Sprintf("MLID %dB packets", size),
			scheme: core.NewMLID(), pattern: uniform,
			mutate: func(cfg *sim.Config) { cfg.PacketSize = size; cfg.OfferedLoad = 0.3 },
		})
	}
	// EX-F: reception model.
	for _, s := range core.Schemes() {
		s := s
		specs = append(specs,
			ablationSpec{
				experiment: "EX-F reception", setting: s.Name() + " ideal",
				scheme: s, pattern: centric,
				mutate: func(cfg *sim.Config) { cfg.Reception = sim.ReceptionIdeal },
			},
			ablationSpec{
				experiment: "EX-F reception", setting: s.Name() + " link-limited",
				scheme: s, pattern: centric,
				mutate: func(cfg *sim.Config) { cfg.Reception = sim.ReceptionLink },
			})
	}
	// EX-G: path selection on a permutation.
	specs = append(specs,
		ablationSpec{
			experiment: "EX-G pathselect", setting: "MLID rank (paper)",
			scheme: core.NewMLID(), pattern: bitcomp,
			mutate: func(cfg *sim.Config) { cfg.OfferedLoad = 0.7 },
		},
		ablationSpec{
			experiment: "EX-G pathselect", setting: "MLID random offset",
			scheme: core.NewMLID(), pattern: bitcomp,
			mutate: func(cfg *sim.Config) { cfg.OfferedLoad = 0.7; cfg.PathSelect = sim.SelectRandom() },
		})
	// EX-H: VL mapping under the hotspot.
	for _, s := range core.Schemes() {
		s := s
		specs = append(specs,
			ablationSpec{
				experiment: "EX-H vlmap", setting: s.Name() + " round-robin (default)",
				scheme: s, pattern: centric,
				mutate: func(cfg *sim.Config) { cfg.DataVLs = 2 },
			},
			ablationSpec{
				experiment: "EX-H vlmap", setting: s.Name() + " DLID-pinned",
				scheme: s, pattern: centric,
				mutate: func(cfg *sim.Config) { cfg.DataVLs = 2; cfg.VLSelect = sim.VLByDLID },
			})
	}
	// Switching discipline.
	specs = append(specs,
		ablationSpec{
			experiment: "switching", setting: "MLID cut-through (paper)",
			scheme: core.NewMLID(), pattern: uniform,
			mutate: func(cfg *sim.Config) { cfg.OfferedLoad = 0.3 },
		},
		ablationSpec{
			experiment: "switching", setting: "MLID store-and-forward",
			scheme: core.NewMLID(), pattern: uniform,
			mutate: func(cfg *sim.Config) { cfg.OfferedLoad = 0.3; cfg.Switching = sim.SwitchingSAF },
		})

	subnets := map[string]*ib.Subnet{}
	rows := make([]AblationRow, 0, len(specs))
	for _, spec := range specs {
		sn, ok := subnets[spec.scheme.Name()]
		if !ok {
			sn, err = (&ib.SubnetManager{Tree: tr, Engine: spec.scheme}).Configure()
			if err != nil {
				return nil, err
			}
			subnets[spec.scheme.Name()] = sn
		}
		cfg := sim.Config{
			Subnet:      sn,
			Pattern:     spec.pattern(tr),
			OfferedLoad: 0.5,
			WarmupNs:    warm,
			MeasureNs:   meas,
			Seed:        71,
		}
		spec.mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation %s/%s: %w", spec.experiment, spec.setting, err)
		}
		rows = append(rows, AblationRow{
			Experiment:    spec.experiment,
			Setting:       spec.setting,
			AcceptedBns:   res.Accepted,
			MeanLatencyNs: res.MeanLatencyNs,
		})
	}
	return rows, nil
}

// AblationTable renders the rows as a markdown table.
func AblationTable(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("| experiment | setting | accepted (B/ns/node) | mean latency (ns) |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %.4f | %.0f |\n", r.Experiment, r.Setting, r.AcceptedBns, r.MeanLatencyNs)
	}
	return b.String()
}
