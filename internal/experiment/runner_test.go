package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestCampaignRunOrdering: results come back in point order regardless of
// worker count, and a worker pool computes exactly what the serial loop does.
func TestCampaignRunOrdering(t *testing.T) {
	const n = 37
	fn := func(i int) (int, error) {
		// Vary per-point cost so parallel workers finish out of order.
		v := i
		for k := 0; k < (i%7)*10_000; k++ {
			v = v*31 + 7
		}
		return v, nil
	}
	serial, err := campaignRun(n, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := campaignRun(n, workers, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
}

// TestCampaignRunErrors: every point runs even when one fails, and the error
// surfaced is the lowest-indexed one — the same error a serial loop that
// kept going would report first.
func TestCampaignRunErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 9)
		_, err := campaignRun(9, workers, func(i int) (int, error) {
			ran[i] = true
			if i == 2 || i == 6 {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 2 failed" {
			t.Fatalf("workers=%d: got error %v, want lowest-indexed point 2", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: point %d never ran", workers, i)
			}
		}
	}
	if _, err := campaignRun(3, 1, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("boom")
		}
		return i, nil
	}); err == nil {
		t.Fatal("error swallowed")
	}
}

// TestCampaignSerialParallelIdentity is the determinism contract for the
// parallel sweep campaigns: every study must produce byte-identical rows
// whether its points run on one worker or the full pool. The chaos and SM
// studies are additionally soaked run-to-run elsewhere; this test pins the
// serial/parallel axis specifically by capping the pool to one worker.
func TestCampaignSerialParallelIdentity(t *testing.T) {
	runCapped := func(cap int, f func() (any, error)) any {
		t.Helper()
		campaignWorkerCap = cap
		defer func() { campaignWorkerCap = 0 }()
		out, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	check := func(name string, f func() (any, error)) {
		serial := runCapped(1, f)
		parallel := runCapped(0, f)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial and parallel campaign outputs differ", name)
		}
	}

	dspec := QuickDegradedSpec()
	dspec.Rates = dspec.Rates[:1]
	check("degraded", func() (any, error) { return DegradedStudy(dspec) })

	cspec := QuickChaosSpec()
	cspec.FaultRates = cspec.FaultRates[:1]
	check("chaos", func() (any, error) { return ChaosStudy(cspec) })

	check("sm", func() (any, error) { return SMStudy(QuickSMSpec()) })
}
