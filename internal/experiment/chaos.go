package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// ChaosSpec describes a seeded chaos campaign: reproducible link-flap
// schedules (plus optional whole-switch kills) generated from a seed and
// swept over fault rates, run for both routing schemes with the reliable
// transport on. The campaign quantifies how MLID's path diversity shortens
// recovery tails: retransmissions re-enter path selection, so an MLID source
// steers each retry onto a surviving LID while a SLID source repeats its
// single path until the fabric heals or the retry budget runs out.
type ChaosSpec struct {
	Network Network
	// DataVLs is the data virtual-lane count (the transport adds one
	// management VL on top).
	DataVLs int
	// OfferedLoad is the per-node injection rate (bytes/ns).
	OfferedLoad float64
	// WarmupNs / MeasureNs size the run window.
	WarmupNs, MeasureNs sim.Time
	// SeriesIntervalNs bins the transient view.
	SeriesIntervalNs sim.Time
	// FaultRates are the fractions of inter-switch links to flap per
	// campaign; one pair of (SLID, MLID) rows is produced per rate.
	FaultRates []float64
	// MinDownNs / MaxDownNs bound each flap's outage duration.
	MinDownNs, MaxDownNs sim.Time
	// SwitchKills is the number of root switches killed (and later revived)
	// per campaign, on top of the link flaps.
	SwitchKills int
	// Transport parameterizes the reliable transport; the zero value takes
	// every default.
	Transport sim.TransportConfig
	// Shards is the per-run parallel shard count handed to sim.Config;
	// 0 selects the auto default (see ResolveShards). Results are identical
	// for every value.
	Shards int
	// Seed drives both the fault-schedule generation and the runs; the same
	// seed reproduces the same campaign bit for bit.
	Seed int64
	// HeapOnlyScheduler forces the engine's fallback heap path (the
	// determinism soak diffs it against the calendar path).
	HeapOnlyScheduler bool
}

// ChaosStudySpec is the full-fidelity chaos campaign configuration. The
// retransmit timer is sized above the longest flap (80us): a packet parked
// behind a flapped link by credit backpressure is delivered on revival, so a
// timeout shorter than the outages the campaign rides through would
// retransmit merely-stalled packets and feed the very congestion that
// stalled them. Sized this way, retransmissions track real losses — which
// is what the SLID-versus-MLID comparison is about.
func ChaosStudySpec() ChaosSpec {
	return ChaosSpec{
		Network:     Network{8, 3},
		DataVLs:     2,
		OfferedLoad: 0.3,
		WarmupNs:    50_000, MeasureNs: 300_000,
		SeriesIntervalNs: 10_000,
		FaultRates:       []float64{0.02, 0.05, 0.10},
		MinDownNs:        20_000, MaxDownNs: 80_000,
		SwitchKills: 1,
		Transport: sim.TransportConfig{
			BaseTimeoutNs: 150_000, MaxTimeoutNs: 300_000, MaxRetries: 4,
			DrainNs: 1_500_000,
		},
		Seed: 99,
	}
}

// QuickChaosSpec is a reduced-cost variant for test suites and the CI soak:
// a small fabric, short windows, and a trimmed retry budget so the drain
// stays cheap. As in ChaosStudySpec, the base timeout sits above the longest
// flap (40us) so the timer fires for lost packets, not for packets parked
// behind a flapping link. The qualitative contrast — MLID retransmits less
// and recovers faster than SLID — is preserved.
func QuickChaosSpec() ChaosSpec {
	return ChaosSpec{
		Network:     Network{4, 2},
		DataVLs:     2,
		OfferedLoad: 0.3,
		WarmupNs:    20_000, MeasureNs: 100_000,
		SeriesIntervalNs: 5_000,
		FaultRates:       []float64{0.10, 0.25},
		MinDownNs:        10_000, MaxDownNs: 40_000,
		SwitchKills: 0,
		Transport: sim.TransportConfig{
			BaseTimeoutNs: 50_000, MaxTimeoutNs: 100_000, MaxRetries: 4,
			DrainNs: 500_000,
		},
		Seed: 99,
	}
}

// ChaosRow is one (scheme, fault rate) campaign outcome.
type ChaosRow struct {
	Scheme    string
	FaultRate float64
	// Flaps / SwitchKills are the schedule's realized event counts.
	Flaps, SwitchKills int
	// Conservation: Generated = Delivered + Failed + InFlight, checked by
	// the runner after every campaign.
	Generated, Delivered, Failed, InFlight int64
	// Retransmits / Dropped / DupDeliveries count the recovery traffic;
	// AcksSent/NaksSent/CtrlBytes its acknowledgment overhead.
	Retransmits, Dropped, DupDeliveries int64
	AcksSent, NaksSent, CtrlBytes       int64
	// MeanLatencyNs and the p99/p999 tails cover window deliveries; the
	// tails are where retransmission delays surface.
	MeanLatencyNs, P99LatencyNs, P999LatencyNs float64
	// LastRecoveredNs is the time of the last accepted retransmission —
	// the campaign's time-to-last-recovered-delivery.
	LastRecoveredNs sim.Time
}

// chaosPlan generates the seeded fault schedule for one campaign: SwitchKills
// distinct root switches die and revive, and rate×(remaining inter-switch
// links) flap, each with a random onset inside the first three quarters of
// the measurement window and a random duration in [MinDownNs, MaxDownNs].
// Kills are chosen first and their incident links excluded from the flap
// candidates, so the schedule always passes FaultPlan validation. The same
// rng state yields the same schedule.
func chaosPlan(tr *topology.Tree, spec ChaosSpec, rate float64, rng *rand.Rand) *sim.FaultPlan {
	plan := &sim.FaultPlan{Reselect: true}
	killed := make(map[int32]bool)
	var roots []int32
	for sw := 0; sw < tr.Switches(); sw++ {
		if tr.IsRoot(topology.SwitchID(sw)) {
			roots = append(roots, int32(sw))
		}
	}
	kills := spec.SwitchKills
	if kills > len(roots) {
		kills = len(roots)
	}
	onset := func() (down, up sim.Time) {
		window := spec.MeasureNs * 3 / 4
		down = spec.WarmupNs + sim.Time(rng.Int63n(int64(window)))
		dur := spec.MinDownNs
		if spread := spec.MaxDownNs - spec.MinDownNs; spread > 0 {
			dur += sim.Time(rng.Int63n(int64(spread + 1)))
		}
		return down, down + dur
	}
	for _, i := range rng.Perm(len(roots))[:kills] {
		down, up := onset()
		plan.SwitchFaults = append(plan.SwitchFaults, sim.SwitchFault{
			Switch: roots[i], DownNs: down, UpNs: up,
		})
		killed[roots[i]] = true
	}
	// Candidate flap links: every inter-switch link once (canonical side:
	// the lower switch ID), excluding links of killed switches.
	type link struct {
		sw   int32
		port int
	}
	var candidates []link
	for sw := 0; sw < tr.Switches(); sw++ {
		for port := 0; port < tr.M(); port++ {
			ref := tr.SwitchNeighbor(topology.SwitchID(sw), port)
			if ref.Kind != topology.KindSwitch || int32(ref.Switch) < int32(sw) {
				continue
			}
			if killed[int32(sw)] || killed[int32(ref.Switch)] {
				continue
			}
			candidates = append(candidates, link{int32(sw), port})
		}
	}
	flaps := int(rate*float64(len(candidates)) + 0.5)
	if flaps < 1 {
		flaps = 1
	}
	if flaps > len(candidates) {
		flaps = len(candidates)
	}
	for _, i := range rng.Perm(len(candidates))[:flaps] {
		down, up := onset()
		plan.Faults = append(plan.Faults, sim.LinkFault{
			Switch: candidates[i].sw, Port: candidates[i].port, DownNs: down, UpNs: up,
		})
	}
	return plan
}

// ChaosStudy runs the chaos campaign for both schemes across the spec's
// fault rates. Each (rate) index derives its own fault schedule from the
// seed; both schemes run the identical schedule and simulation seed, so
// their rows are directly comparable. The runner asserts the conservation
// identity generated = delivered + failed + in-flight after every campaign
// and fails loudly if any packet went silently missing.
func ChaosStudy(spec ChaosSpec) ([]ChaosRow, error) {
	tr, err := topology.New(spec.Network.M, spec.Network.N)
	if err != nil {
		return nil, err
	}
	shards := ResolveShards(tr, spec.Shards)
	// One schedule per rate, shared by both schemes; one pristine
	// configuration per scheme, shared read-only by every rate (chaos runs
	// always carry a FaultPlan, so the simulator clones the tables).
	plans := make([]*sim.FaultPlan, len(spec.FaultRates))
	for ri, rate := range spec.FaultRates {
		if rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("experiment: chaos fault rate %v out of (0, 1]", rate)
		}
		rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ri)))
		plans[ri] = chaosPlan(tr, spec, rate, rng)
	}
	schemes := []core.Scheme{core.NewSLID(), core.NewMLID()}
	pristine := make([]*ib.Subnet, len(schemes))
	for i, scheme := range schemes {
		sn, err := (&ib.SubnetManager{Tree: tr, Engine: scheme}).Configure()
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", scheme.Name(), spec.Network, err)
		}
		pristine[i] = sn
	}

	// One sweep point per (rate, scheme), rate-major — the serial row order.
	points := len(spec.FaultRates) * len(schemes)
	return campaignRun(points, campaignWorkers(points), func(pt int) (ChaosRow, error) {
		ri := pt / len(schemes)
		rate := spec.FaultRates[ri]
		plan := plans[ri]
		scheme := schemes[pt%len(schemes)]
		tc := spec.Transport
		res, err := sim.Run(sim.Config{
			Subnet:           pristine[pt%len(schemes)],
			Pattern:          traffic.Uniform{Nodes: tr.Nodes()},
			DataVLs:          spec.DataVLs,
			OfferedLoad:      spec.OfferedLoad,
			WarmupNs:         spec.WarmupNs,
			MeasureNs:        spec.MeasureNs,
			SeriesIntervalNs: spec.SeriesIntervalNs,
			FaultPlan:        plan,
			Transport:        &tc,
			// Statically verify the forwarding tables at every SM epoch
			// of every campaign: a chaos schedule that drives the repair
			// logic into a loop, credit-cycle, or unexplained dead end
			// fails the study instead of silently dropping packets.
			VerifyEpochs:      true,
			Shards:            shards,
			Seed:              spec.Seed + int64(ri),
			HeapOnlyScheduler: spec.HeapOnlyScheduler,
		})
		if err != nil {
			return ChaosRow{}, fmt.Errorf("experiment: chaos run %s rate %v: %w", scheme.Name(), rate, err)
		}
		if got := res.TotalDelivered + res.Failed + res.InFlightAtEnd; got != res.TotalGenerated {
			return ChaosRow{}, fmt.Errorf(
				"experiment: chaos conservation violated (%s rate %v): delivered %d + failed %d + in-flight %d != generated %d",
				scheme.Name(), rate, res.TotalDelivered, res.Failed, res.InFlightAtEnd, res.TotalGenerated)
		}
		return ChaosRow{
			Scheme:          scheme.Name(),
			FaultRate:       rate,
			Flaps:           len(plan.Faults),
			SwitchKills:     len(plan.SwitchFaults),
			Generated:       res.TotalGenerated,
			Delivered:       res.TotalDelivered,
			Failed:          res.Failed,
			InFlight:        res.InFlightAtEnd,
			Retransmits:     res.Retransmits,
			Dropped:         res.DroppedTotal,
			DupDeliveries:   res.DupDeliveries,
			AcksSent:        res.AcksSent,
			NaksSent:        res.NaksSent,
			CtrlBytes:       res.CtrlBytesSent,
			MeanLatencyNs:   res.MeanLatencyNs,
			P99LatencyNs:    res.P99LatencyNs,
			P999LatencyNs:   res.P999LatencyNs,
			LastRecoveredNs: res.LastRecoveredNs,
		}, nil
	})
}

// FormatChaos renders the chaos rows as a markdown table.
func FormatChaos(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("| scheme | rate | flaps | kills | generated | delivered | failed | in-flight | rexmit | dropped | dups | acks | naks | mean (ns) | p99 (ns) | p999 (ns) | last recovery (ns) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.2f | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %.0f | %.0f | %.0f | %d |\n",
			r.Scheme, r.FaultRate, r.Flaps, r.SwitchKills,
			r.Generated, r.Delivered, r.Failed, r.InFlight,
			r.Retransmits, r.Dropped, r.DupDeliveries, r.AcksSent, r.NaksSent,
			r.MeanLatencyNs, r.P99LatencyNs, r.P999LatencyNs, r.LastRecoveredNs)
	}
	return b.String()
}

// ChaosCSV renders the chaos rows in long form.
func ChaosCSV(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("scheme,fault_rate,flaps,switch_kills,generated,delivered,failed,in_flight,retransmits,dropped,dup_deliveries,acks_sent,naks_sent,ctrl_bytes,mean_latency_ns,p99_latency_ns,p999_latency_ns,last_recovered_ns\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%d\n",
			r.Scheme, r.FaultRate, r.Flaps, r.SwitchKills,
			r.Generated, r.Delivered, r.Failed, r.InFlight,
			r.Retransmits, r.Dropped, r.DupDeliveries, r.AcksSent, r.NaksSent, r.CtrlBytes,
			r.MeanLatencyNs, r.P99LatencyNs, r.P999LatencyNs, r.LastRecoveredNs)
	}
	return b.String()
}
