package experiment

import (
	"fmt"
	"strings"

	"mlid/internal/core"
	"mlid/internal/ib"
	"mlid/internal/sim"
	"mlid/internal/topology"
	"mlid/internal/traffic"
)

// RecoverySpec describes the recovery-transient study: one spine link dies
// mid-measurement and the live subnet-manager model repairs the fabric; the
// study contrasts how the single-LID and multiple-LID schemes ride through
// the transient, across virtual-lane counts. The failed link is always the
// first ascending link of node 0's leaf switch — the canonical "one spine
// path lost" fault, which leaves every destination reachable but breaks the
// descending half of the paths through that spine.
type RecoverySpec struct {
	Network Network
	// VLs are the virtual-lane counts to compare.
	VLs []int
	// OfferedLoad is the per-node injection rate (bytes/ns).
	OfferedLoad float64
	// WarmupNs / MeasureNs size the run window; FaultNs (inside the window)
	// is when the link dies.
	WarmupNs, MeasureNs, FaultNs sim.Time
	// SeriesIntervalNs bins the transient view.
	SeriesIntervalNs sim.Time
	// Reselect enables fault-avoiding source reselection after the first
	// SM trap (it only helps schemes with multiple LIDs per destination).
	Reselect bool
	// Shards is the per-run parallel shard count handed to sim.Config;
	// 0 selects the auto default (see ResolveShards). Results are identical
	// for every value.
	Shards int
	// Seed drives all runs of the study.
	Seed int64
}

// RecoveryStudySpec is the full-fidelity recovery study configuration.
func RecoveryStudySpec() RecoverySpec {
	return RecoverySpec{
		Network:     Network{8, 3},
		VLs:         []int{1, 4},
		OfferedLoad: 0.3,
		WarmupNs:    50_000, MeasureNs: 300_000, FaultNs: 150_000,
		SeriesIntervalNs: 10_000,
		Reselect:         true,
		Seed:             77,
	}
}

// QuickRecoverySpec is a reduced-cost variant (small network, short windows)
// for test suites and CI figure smoke runs; the qualitative contrast —
// MLID recovers, SLID keeps dropping — is preserved.
func QuickRecoverySpec() RecoverySpec {
	return RecoverySpec{
		Network:     Network{4, 2},
		VLs:         []int{1, 2},
		OfferedLoad: 0.3,
		WarmupNs:    20_000, MeasureNs: 100_000, FaultNs: 50_000,
		SeriesIntervalNs: 5_000,
		Reselect:         true,
		Seed:             77,
	}
}

// RecoveryRow is one (scheme, VL count) cell of the recovery study.
type RecoveryRow struct {
	Scheme string
	VLs    int
	// DroppedWindow counts packets lost inside the measurement window;
	// Reroutes the packets reselection steered off the dead paths.
	DroppedWindow, Reroutes int64
	// BrokenEntries is the SM's count of irreparable descending entries;
	// LFTUpdates the staged per-switch table rewrites it applied.
	BrokenEntries int
	LFTUpdates    int64
	// RecoveryNs is first-failure to last-applied-update.
	RecoveryNs sim.Time
	// PreAccepted / PostAccepted are the mean accepted rates (bytes/ns/node)
	// before the failure and after the SM converged (plus a drain interval);
	// RecoveredFrac is their ratio. PreLatencyNs / PostLatencyNs are the
	// delivery-weighted mean latencies of the same windows.
	PreAccepted, PostAccepted   float64
	RecoveredFrac               float64
	PreLatencyNs, PostLatencyNs float64
	// DropsAfterRecovery counts drops after the post-window opened: zero
	// means the scheme fully rode through the fault.
	DropsAfterRecovery int64
	// Series is the run's per-interval transient view; RecoverySeriesCSV
	// renders it as recovery-tail curves.
	Series []sim.SeriesPoint
}

// RecoveryStudy runs the recovery transient for both schemes across the
// spec's VL counts and summarizes each run's transient into a row.
func RecoveryStudy(spec RecoverySpec) ([]RecoveryRow, error) {
	tr, err := topology.New(spec.Network.M, spec.Network.N)
	if err != nil {
		return nil, err
	}
	leaf, _ := tr.NodeAttachment(0)
	plan := &sim.FaultPlan{
		Faults:   []sim.LinkFault{{Switch: int32(leaf), Port: tr.DownPorts(leaf), DownNs: spec.FaultNs}},
		Reselect: spec.Reselect,
	}
	end := spec.WarmupNs + spec.MeasureNs
	shards := ResolveShards(tr, spec.Shards)
	rows := make([]RecoveryRow, 0, 2*len(spec.VLs))
	for _, scheme := range []core.Scheme{core.NewSLID(), core.NewMLID()} {
		sn, err := (&ib.SubnetManager{Tree: tr, Engine: scheme}).Configure()
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", scheme.Name(), spec.Network, err)
		}
		for vi, vls := range spec.VLs {
			res, err := sim.Run(sim.Config{
				Subnet:           sn,
				Pattern:          traffic.Uniform{Nodes: tr.Nodes()},
				DataVLs:          vls,
				OfferedLoad:      spec.OfferedLoad,
				WarmupNs:         spec.WarmupNs,
				MeasureNs:        spec.MeasureNs,
				SeriesIntervalNs: spec.SeriesIntervalNs,
				FaultPlan:        plan,
				Shards:           shards,
				Seed:             spec.Seed + int64(vi),
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: recovery run %s %dVL: %w", scheme.Name(), vls, err)
			}
			row := RecoveryRow{
				Scheme:        scheme.Name(),
				VLs:           vls,
				DroppedWindow: res.DroppedWindow,
				Reroutes:      res.Reroutes,
				BrokenEntries: res.BrokenEntries,
				LFTUpdates:    res.LFTUpdates,
				RecoveryNs:    res.RecoveryNs,
				Series:        res.Series,
			}
			// The post window opens after the SM converged plus two series
			// bins of drain for in-flight stale packets.
			postFrom := spec.FaultNs + res.RecoveryNs + 2*spec.SeriesIntervalNs
			var preSum, postSum, preLat, postLat float64
			var preN, postN int
			var preDel, postDel int64
			for _, sp := range res.Series {
				switch {
				case sp.StartNs >= spec.WarmupNs && sp.StartNs < spec.FaultNs:
					preSum += sp.Accepted
					preN++
					preLat += sp.MeanLatencyNs * float64(sp.Delivered)
					preDel += sp.Delivered
				case sp.StartNs >= postFrom && sp.StartNs < end:
					postSum += sp.Accepted
					postN++
					postLat += sp.MeanLatencyNs * float64(sp.Delivered)
					postDel += sp.Delivered
					row.DropsAfterRecovery += sp.Dropped
				}
			}
			if preN > 0 {
				row.PreAccepted = preSum / float64(preN)
			}
			if postN > 0 {
				row.PostAccepted = postSum / float64(postN)
			}
			if preDel > 0 {
				row.PreLatencyNs = preLat / float64(preDel)
			}
			if postDel > 0 {
				row.PostLatencyNs = postLat / float64(postDel)
			}
			row.RecoveredFrac = ratioOf(row.PostAccepted, row.PreAccepted)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatRecovery renders the recovery rows as a markdown table.
func FormatRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	b.WriteString("| scheme | VLs | dropped | reroutes | broken | LFT updates | recovery (ns) | pre B/ns | post B/ns | recovered | pre lat (ns) | post lat (ns) | drops after |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %.4f | %.4f | %.2f | %.0f | %.0f | %d |\n",
			r.Scheme, r.VLs, r.DroppedWindow, r.Reroutes, r.BrokenEntries, r.LFTUpdates,
			r.RecoveryNs, r.PreAccepted, r.PostAccepted, r.RecoveredFrac,
			r.PreLatencyNs, r.PostLatencyNs, r.DropsAfterRecovery)
	}
	return b.String()
}

// RecoverySeriesCSV renders every row's per-interval transient in long
// form: one line per (scheme, VLs, bin) with the bin's delivered, dropped,
// rerouted, retransmitted, failed, and unreachable-degraded counts — the
// recovery-tail curves behind the summary columns.
func RecoverySeriesCSV(rows []RecoveryRow) string {
	var b strings.Builder
	b.WriteString("scheme,vls,start_ns,accepted,mean_latency_ns,delivered,dropped,reroutes,retransmits,failed,unreachable\n")
	for _, r := range rows {
		for _, sp := range r.Series {
			fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.2f,%d,%d,%d,%d,%d,%d\n",
				r.Scheme, r.VLs, sp.StartNs, sp.Accepted, sp.MeanLatencyNs,
				sp.Delivered, sp.Dropped, sp.Reroutes, sp.Retransmits, sp.Failed, sp.Unreachable)
		}
	}
	return b.String()
}

// RecoveryCSV renders the recovery rows in long form.
func RecoveryCSV(rows []RecoveryRow) string {
	var b strings.Builder
	b.WriteString("scheme,vls,dropped_window,reroutes,broken_entries,lft_updates,recovery_ns,pre_accepted,post_accepted,recovered_frac,pre_latency_ns,post_latency_ns,drops_after_recovery\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.4f,%.2f,%.2f,%d\n",
			r.Scheme, r.VLs, r.DroppedWindow, r.Reroutes, r.BrokenEntries, r.LFTUpdates,
			r.RecoveryNs, r.PreAccepted, r.PostAccepted, r.RecoveredFrac,
			r.PreLatencyNs, r.PostLatencyNs, r.DropsAfterRecovery)
	}
	return b.String()
}
