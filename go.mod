module mlid

go 1.22
