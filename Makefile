GO ?= go

.PHONY: build test ci bench bench-engine vet race

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages with internal concurrency
# (the experiment worker pool) and the simulator it drives.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiment/...

# ci is the gate for every change: tier-1 tests plus vet and the race pass.
ci: build vet test race

# bench regenerates the figure-level benchmarks with allocation counts.
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig' -benchmem -benchtime 1x .

# bench-engine runs the scheduler micro-benchmarks (ns/event, allocs/op).
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngineSchedule|BenchmarkRunSmall' -benchmem ./internal/sim/
