GO ?= go

.PHONY: build test ci bench bench-json bench-engine vet lint lint-fix race soak shard-smoke verify-smoke adaptive-smoke sm-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs ibvet: the standard go vet passes plus the repo's own
# determinism and pooling analyzers (internal/lint). CI passes
# LINT_FLAGS=-json so findings come out as JSON lines the registered
# .github/problem-matcher.json turns into file annotations.
LINT_FLAGS ?=
lint:
	$(GO) run ./cmd/ibvet $(LINT_FLAGS) ./...

# lint-fix has no auto-fixer; it reruns ibvet so the findings to address are
# the last thing on screen. Fix each by sorting map keys / moving the access,
# or suppress a deliberate one with a reasoned "//lint:ignore <analyzer> why".
lint-fix: lint

# race runs the race detector over the packages with internal concurrency
# (the experiment worker pool, the sharded simulation engine and its worker
# goroutines, the single-engine simulator) and the packages the determinism
# analyzers guard (sm, core), whose order-sensitive paths the race pass
# exercises twice via the determinism regression tests. The sim suite
# includes the shard-determinism matrix (lanes at 2/4/8 under faults and the
# reliable transport), the fault-injection paths (link death, SM traps,
# staged table updates, reselection) and the quick recovery study.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiment/... ./internal/sm/... ./internal/core/...

# soak runs the deterministic chaos campaigns: two seeds of link-flap
# schedules with the reliable transport on, each executed twice per scheduler
# path (calendar and heap-only) and diffed bit for bit, with packet
# conservation (generated = delivered + failed + in-flight) asserted inside
# every campaign.
soak:
	$(GO) test -run 'TestChaosSoakDeterminism' -count=1 ./internal/experiment/

# shard-smoke is the sharded engine's bit-compare: every determinism-matrix
# configuration (uniform, hotspot, live faults, reliable transport) run at
# 2/4/8 lanes must equal the single-engine result exactly, plus a repeated
# sharded run to catch run-to-run scheduling nondeterminism.
shard-smoke:
	$(GO) test -run 'TestShardDeterminism' -count=1 ./internal/sim/

# verify-smoke proves the static guarantees on every golden fabric: ibverify
# must find zero error-severity findings (reachability, per-VL deadlock
# freedom, addressing) for both schemes on the four paper networks, and on an
# SM-repaired FT(8,2) carrying a two-link fault plan — dead-link warnings
# are expected there, errors never. MLID on FT(16,3) is the deliberate
# negative: the LID plan overflows the 16-bit space, so ibverify must exit
# non-zero with the addressing finding.
verify-smoke:
	$(GO) run ./cmd/ibverify -m 4 -n 4 -scheme MLID -vls 4
	$(GO) run ./cmd/ibverify -m 4 -n 4 -scheme SLID -vls 4
	$(GO) run ./cmd/ibverify -m 8 -n 3 -scheme MLID -vls 2
	$(GO) run ./cmd/ibverify -m 8 -n 3 -scheme SLID -vls 2
	$(GO) run ./cmd/ibverify -m 16 -n 2 -scheme MLID -vls 2
	$(GO) run ./cmd/ibverify -m 16 -n 2 -scheme SLID -vls 2
	$(GO) run ./cmd/ibverify -m 32 -n 2 -scheme MLID -vls 1
	$(GO) run ./cmd/ibverify -m 32 -n 2 -scheme SLID -vls 1
	$(GO) run ./cmd/ibverify -m 8 -n 2 -scheme MLID -vls 2 -fault 2:2,9:3
	! $(GO) run ./cmd/ibverify -m 16 -n 3 -scheme MLID

# adaptive-smoke runs the reduced path-selection family study: every
# pluggable selector (rank, random, flowspray, adaptive, pktspray) over the
# same MLID fabric on the policy-separating workloads, quiet and degraded,
# with packet conservation asserted inside every run.
adaptive-smoke:
	$(GO) run ./cmd/ibsweep -adaptive -quick

# sm-smoke exercises the in-band subnet-management model: the regression
# suite (lost-trap edge, sweep-only recovery, failover determinism across
# shard counts on both scheduler paths, exact oracle equivalence when the
# feature is off), then the reduced FT(4,2) campaign, whose invariants —
# exact packet conservation, one failover per in-band run, sweep-recovered
# trap loss — are asserted inside every run.
sm-smoke:
	$(GO) test -run 'TestInBandSM' -count=1 ./internal/sim/
	$(GO) run ./cmd/ibsweep -smstudy -quick

# ci is the gate for every change: tier-1 tests plus vet, ibvet, the race
# pass, the chaos soak, the shard-determinism smoke, the static verification
# smoke, the path-selection family smoke and the in-band SM smoke.
ci: build vet lint test race soak shard-smoke verify-smoke adaptive-smoke sm-smoke

# BENCH_TIME / BENCH_COUNT tune the figure benchmarks: the committed defaults
# (one iteration, run once) keep `make ci` cheap, but single-iteration numbers
# are noisy — override both for comparable measurements, e.g.
#   make bench-json BENCH_TIME=3x BENCH_COUNT=5
BENCH_TIME ?= 1x
BENCH_COUNT ?= 1

# bench regenerates the figure-level benchmarks with allocation counts, plus
# the control-plane repair benchmarks (incremental repair and SM recovery).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFig|BenchmarkRepairIncremental|BenchmarkSMRecovery' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) .

# bench-json runs the figure benchmarks and records ns/op and allocs/op as
# committed JSON (BENCH_$(BENCH_PR).json), so perf gates diff against a file
# instead of a number in a commit message. The JSON also records GOMAXPROCS
# and the shard count per entry, so files are comparable across machines. The
# raw text lands in bench.out for inspection; only the JSON is meant to be
# committed.
BENCH_PR ?= 10
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkFig|BenchmarkRepairIncremental|BenchmarkSMRecovery' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_$(BENCH_PR).json
	@rm -f bench.out
	@echo wrote BENCH_$(BENCH_PR).json

# bench-engine runs the scheduler micro-benchmarks (ns/event, allocs/op).
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngineSchedule|BenchmarkRunSmall' -benchmem ./internal/sim/
