// Command ibvet is the repository's vet: it runs the standard go vet passes
// (as a subprocess) and the custom determinism/pooling analyzers from
// internal/lint over the named packages. It exits non-zero when any pass
// reports a finding, which makes it a CI gate:
//
//	go run ./cmd/ibvet ./...
//
// Individual findings can be suppressed with a reasoned directive on the
// offending line or the line above:
//
//	//lint:ignore maporder replicas commute: every slot is written once
//
// A directive without a reason is ignored. Flags:
//
//	-vet=false   skip the standard `go vet` subprocess
//	-list        print the custom analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"mlid/internal/lint/analysis"
	"mlid/internal/lint/driver"
	"mlid/internal/lint/findingfmt"
	"mlid/internal/lint/goldendrift"
	"mlid/internal/lint/hotpath"
	"mlid/internal/lint/load"
	"mlid/internal/lint/maporder"
	"mlid/internal/lint/pktpool"
	"mlid/internal/lint/selectorpure"
	"mlid/internal/lint/shardsafe"
	"mlid/internal/lint/simdeterminism"
	"mlid/internal/lint/smhotpath"
)

// analyzers is the ibvet suite. Order is display order in -list.
var analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	shardsafe.Analyzer,
	maporder.Analyzer,
	pktpool.Analyzer,
	hotpath.Analyzer,
	smhotpath.Analyzer,
	selectorpure.Analyzer,
	goldendrift.Analyzer,
	findingfmt.Analyzer,
}

func main() {
	runVet := flag.Bool("vet", true, "also run the standard `go vet` passes")
	list := flag.Bool("list", false, "list the custom analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit custom-analyzer findings as JSON lines (file, line, col, severity, analyzer, message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ibvet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *runVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibvet: %v\n", err)
		os.Exit(2)
	}
	runDriver := driver.Run
	if *jsonOut {
		runDriver = driver.RunJSON
	}
	n, err := runDriver(pkgs, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibvet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 || failed {
		os.Exit(1)
	}
}
